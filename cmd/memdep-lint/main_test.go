package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the memdep-lint binary once per test binary.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "memdep-lint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building memdep-lint: %v\n%s", err, out)
	}
	return bin
}

func runIn(t *testing.T, dir, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	// The testdata modules have no vendor directory; make sure inherited
	// flags cannot force vendor (or any other) mode onto them.
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func runInBadmod(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	return runIn(t, dir, bin, args...)
}

// TestBadModuleFails runs the multichecker over the known-bad testdata module
// and asserts the expected diagnostics and a nonzero exit.
func TestBadModuleFails(t *testing.T) {
	bin := buildLint(t)
	out, err := runInBadmod(t, bin, "./...")
	if err == nil {
		t.Fatalf("memdep-lint exited 0 on the bad module; output:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("memdep-lint did not run to a diagnostic exit: %v\n%s", err, out)
	}
	for _, want := range []string{
		"make([]int64) allocates",
		"map literal allocates",
		"//memdep:soa struct Padded occupies 24 bytes",
		// resetcomplete: both stale fields, individually.
		"field hits of //memdep:resettable type Stale is never cleared",
		"field tags of //memdep:resettable type Stale is never cleared",
		// poollifecycle: the leaked Get and the double Put.
		"v obtained from the pool is not returned to it on every return path",
		"v may be returned to the pool twice",
		// guardedby: both unguarded accesses.
		"r.vals is accessed without holding r.mu",
		"r.n is accessed without holding r.mu",
		// guardedby on the store-shaped counter index: the unlocked Peek.
		"t.perKind is accessed without holding t.mu",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output does not mention %q:\n%s", want, out)
		}
	}
}

// TestAnalyzerFlagsForwarded pins the standalone entry point's flag
// forwarding: scoping maporder onto the bad module surfaces the unsorted map
// iteration that the default package set would not cover.
func TestAnalyzerFlagsForwarded(t *testing.T) {
	bin := buildLint(t)
	out, err := runInBadmod(t, bin, "-maporder.pkgs=badmod", "./...")
	if err == nil {
		t.Fatalf("memdep-lint exited 0 with maporder scoped to the bad module; output:\n%s", out)
	}
	if !strings.Contains(out, "range over map m has nondeterministic iteration order") {
		t.Errorf("output does not mention the maporder diagnostic:\n%s", out)
	}
}

// TestJSONOutput pins the -json mode: the diagnostics come out as one JSON
// tree keyed by package and analyzer, suggested fixes included, and the exit
// status still gates.
func TestJSONOutput(t *testing.T) {
	bin := buildLint(t)
	out, err := runInBadmod(t, bin, "-json", "./...")
	if err == nil {
		t.Fatalf("memdep-lint -json exited 0 on the bad module; output:\n%s", out)
	}
	var tree map[string]map[string][]struct {
		Posn           string `json:"posn"`
		Message        string `json:"message"`
		SuggestedFixes []struct {
			Message string `json:"message"`
			Edits   []struct {
				Filename string `json:"filename"`
				Start    int    `json:"start"`
				End      int    `json:"end"`
				New      string `json:"new"`
			} `json:"edits"`
		} `json:"suggested_fixes"`
	}
	if err := json.Unmarshal([]byte(out), &tree); err != nil {
		t.Fatalf("-json output is not a JSON tree: %v\n%s", err, out)
	}
	byAnalyzer := tree["badmod"]
	if byAnalyzer == nil {
		t.Fatalf("-json output lacks the badmod package:\n%s", out)
	}
	for _, analyzer := range []string{"fieldalign", "hotalloc", "resetcomplete", "poollifecycle", "guardedby"} {
		if len(byAnalyzer[analyzer]) == 0 {
			t.Errorf("-json output lacks %s diagnostics:\n%s", analyzer, out)
		}
	}
	fixes := 0
	for _, d := range byAnalyzer["fieldalign"] {
		fixes += len(d.SuggestedFixes)
	}
	if fixes == 0 {
		t.Errorf("-json output carries no fieldalign suggested fix:\n%s", out)
	}
}

// TestFixRoundTrip copies the fixable module aside, applies -fix, and
// asserts the rewritten sources re-lint clean and stay gofmt'd.
func TestFixRoundTrip(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	for _, name := range []string{"go.mod", "fix.go"} {
		data, err := os.ReadFile(filepath.Join("testdata", "fixmod", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	out, err := runIn(t, dir, bin, "-maporder.pkgs=fixmod", "./...")
	if err == nil {
		t.Fatalf("fixmod lints clean before the fix; output:\n%s", out)
	}

	out, err = runIn(t, dir, bin, "-fix", "-maporder.pkgs=fixmod", "./...")
	if err != nil {
		t.Fatalf("memdep-lint -fix failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "applied") {
		t.Fatalf("-fix did not report applying edits:\n%s", out)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"slices.Sorted(maps.Keys(m))",
		"B int64",
	} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source does not contain %q:\n%s", want, fixed)
		}
	}

	out, err = runIn(t, dir, bin, "-maporder.pkgs=fixmod", "./...")
	if err != nil {
		t.Errorf("fixed module does not re-lint clean: %v\n%s\nsource:\n%s", err, out, fixed)
	}

	fmtOut, err := exec.Command("gofmt", "-l", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("gofmt: %v\n%s", err, fmtOut)
	}
	if strings.TrimSpace(string(fmtOut)) != "" {
		t.Errorf("-fix left non-gofmt'd files: %s", fmtOut)
	}
}
