package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the memdep-lint binary once per test binary.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "memdep-lint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building memdep-lint: %v\n%s", err, out)
	}
	return bin
}

func runInBadmod(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	// The bad module has no vendor directory; make sure inherited flags
	// cannot force vendor (or any other) mode onto it.
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestBadModuleFails runs the multichecker over the known-bad testdata module
// and asserts the expected diagnostics and a nonzero exit.
func TestBadModuleFails(t *testing.T) {
	bin := buildLint(t)
	out, err := runInBadmod(t, bin, "./...")
	if err == nil {
		t.Fatalf("memdep-lint exited 0 on the bad module; output:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("memdep-lint did not run to a diagnostic exit: %v\n%s", err, out)
	}
	for _, want := range []string{
		"make([]int64) allocates",
		"map literal allocates",
		"//memdep:soa struct Padded occupies 24 bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output does not mention %q:\n%s", want, out)
		}
	}
}

// TestAnalyzerFlagsForwarded pins the standalone entry point's flag
// forwarding: scoping maporder onto the bad module surfaces the unsorted map
// iteration that the default package set would not cover.
func TestAnalyzerFlagsForwarded(t *testing.T) {
	bin := buildLint(t)
	out, err := runInBadmod(t, bin, "-maporder.pkgs=badmod", "./...")
	if err == nil {
		t.Fatalf("memdep-lint exited 0 with maporder scoped to the bad module; output:\n%s", out)
	}
	if !strings.Contains(out, "range over map m has nondeterministic iteration order") {
		t.Errorf("output does not mention the maporder diagnostic:\n%s", out)
	}
}
