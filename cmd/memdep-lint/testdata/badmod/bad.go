// Package badmod deliberately violates the memdep-lint invariants; the
// memdep-lint main test runs the multichecker over this module and asserts
// the diagnostics and the nonzero exit.
package badmod

import "sync"

//memdep:hotpath
func Hot(n int) []int64 {
	out := make([]int64, n)
	m := map[int]bool{}
	_ = m
	return out
}

//memdep:soa
type Padded struct {
	A bool
	B int64
	C bool
}

// Sum iterates a map; it is only flagged when -maporder.pkgs names this
// module, which the flag-forwarding subtest does.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Stale is missing two fields from its Reset: resetcomplete flags each.
//
//memdep:resettable
type Stale struct {
	entries []int
	clock   uint64
	hits    uint64
	tags    map[int]int
}

func (s *Stale) Reset() {
	s.entries = s.entries[:0]
	s.clock = 0
}

var pool = sync.Pool{New: func() interface{} { return new(int) }}

// Leak loses the pooled value on the early return and hands it back twice on
// the fallthrough: two poollifecycle diagnostics.
func Leak(flag bool) int {
	v := pool.Get().(*int)
	if flag {
		return 0
	}
	pool.Put(v)
	pool.Put(v)
	return 1
}

// Registry carries guarded fields that Unlocked and HalfLocked touch without
// the mutex: two guardedby diagnostics.
type Registry struct {
	mu sync.Mutex
	//memdep:guardedby mu
	vals map[string]int
	n    int //memdep:guardedby mu
}

func Unlocked(r *Registry) int {
	return r.vals["a"]
}

func HalfLocked(r *Registry) {
	r.mu.Lock()
	r.mu.Unlock()
	r.n++
}

// TierIndex mirrors the shape of the persistent store's counter map; Peek
// reads it without the mutex, proving the guardedby analyzer has teeth on
// exactly the store's locking discipline: one diagnostic.
type TierIndex struct {
	mu sync.Mutex
	//memdep:guardedby mu
	perKind map[string]int
}

func Peek(t *TierIndex, kind string) int {
	return t.perKind[kind]
}
