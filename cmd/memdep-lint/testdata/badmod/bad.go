// Package badmod deliberately violates the memdep-lint invariants; the
// memdep-lint main test runs the multichecker over this module and asserts
// the diagnostics and the nonzero exit.
package badmod

//memdep:hotpath
func Hot(n int) []int64 {
	out := make([]int64, n)
	m := map[int]bool{}
	_ = m
	return out
}

//memdep:soa
type Padded struct {
	A bool
	B int64
	C bool
}

// Sum iterates a map; it is only flagged when -maporder.pkgs names this
// module, which the flag-forwarding subtest does.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
