// Package fixmod violates only the auto-fixable invariants; the memdep-lint
// main test copies it aside, runs -fix over the copy and asserts the result
// re-lints clean and stays gofmt'd.
package fixmod

import (
	"fmt"
)

// Padded wastes a full word to padding; fieldalign suggests the reorder.
//
//memdep:soa
type Padded struct {
	// A leads the struct for no reason.
	A bool
	B int64
	C bool // trailing comment rides along
}

// Keys ranges a map in key-only form; maporder rewrites it to iterate the
// sorted keys (splicing slices and maps into the import block above).
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}
