// Memdep-lint runs the repo's custom static-analysis suite
// (internal/analysis): arenaescape, ctxflow, fieldalign, guardedby,
// hotalloc, maporder, poollifecycle and resetcomplete -- the machine-checked
// forms of the determinism, arena-ownership, hot-path-allocation,
// cancellation, reset-completeness, pool-lifecycle and lock-discipline
// invariants DESIGN.md documents.
//
// It has two entry points:
//
//	go run ./cmd/memdep-lint ./...        # standalone: re-execs go vet with itself as the tool
//	go vet -vettool=$(memdep-lint) ./...  # as a vet tool, speaking the unitchecker protocol
//
// Standalone mode forwards its arguments (package patterns and analyzer
// flags such as -maporder.pkgs=...) to go vet verbatim and exits with vet's
// status, so both entry points run the identical modular analysis.  Two
// standalone-only flags post-process the run:
//
//	-json   emit the diagnostics as a JSON object keyed by package and
//	        analyzer (the vet JSON tree, suggested fixes included) on stdout
//	-fix    apply every suggested fix (fieldalign reorders, maporder sorted-
//	        key rewrites) to the source files and report what changed
//
// In unitchecker mode the tool only ever reports: fixes are applied by the
// standalone driver, never behind go vet's back.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/format"
	"os"
	"os/exec"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"memdep/internal/analysis"
)

func main() {
	// The unitchecker protocol invokes the tool with -V=full (version
	// fingerprint), -flags (flag description) or a single *.cfg argument
	// (one compilation unit).  Anything else is the standalone entry point.
	for _, arg := range os.Args[1:] {
		if strings.HasSuffix(arg, ".cfg") || arg == "-flags" || strings.HasPrefix(arg, "-V") || arg == "help" {
			unitchecker.Main(analysis.All()...)
		}
	}

	var fix, jsonOut bool
	var fwd []string
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-fix", "--fix":
			fix = true
		case "-json", "--json":
			jsonOut = true
		default:
			fwd = append(fwd, arg)
		}
	}
	if len(fwd) == 0 {
		fwd = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}

	if !fix && !jsonOut {
		// Plain gating mode: stream vet's human-readable output through.
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, fwd...)...)
		cmd.Stdout, cmd.Stderr, cmd.Stdin = os.Stdout, os.Stderr, os.Stdin
		exitWith(cmd.Run(), "running go vet")
	}

	// -json and -fix both need the machine-readable tree.  go vet -json
	// prints it on stderr (interleaved with "# pkg" progress lines) and
	// exits 0 even when there are diagnostics; a nonzero status therefore
	// means a build or driver error, which we surface verbatim.
	cmd := exec.Command("go", append([]string{"vet", "-json", "-vettool=" + exe}, fwd...)...)
	var out bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(out.Bytes())
		var exit *exec.ExitError
		if !errors.As(err, &exit) {
			fatalf("running go vet -json: %v", err)
		}
		os.Exit(exit.ExitCode())
	}

	tree, err := parseTree(out.Bytes())
	if err != nil {
		fatalf("parsing go vet -json output: %v", err)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			fatalf("encoding JSON: %v", err)
		}
	}
	if fix {
		applyFixes(tree)
	}
	if jsonOut && !fix && len(tree) > 0 {
		// Mirror plain mode's exit status so CI can gate on the same command
		// that produces the artifact.
		os.Exit(1)
	}
}

// The vet JSON tree: package ID -> analyzer -> diagnostics (or an error
// object, which unmarshals to zero diagnostics and is dropped).
type tree map[string]map[string][]jsonDiagnostic

type jsonDiagnostic struct {
	Category       string    `json:"category,omitempty"`
	Posn           string    `json:"posn"`
	Message        string    `json:"message"`
	SuggestedFixes []jsonFix `json:"suggested_fixes,omitempty"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"` // zero-based byte offsets, half-open
	End      int    `json:"end"`
	New      string `json:"new"`
}

// parseTree merges the stream of per-package JSON objects (separated by
// "# pkg" comment lines) that go vet -json emits into one tree.
func parseTree(raw []byte) (tree, error) {
	merged := make(tree)
	dec := json.NewDecoder(bytes.NewReader(stripComments(raw)))
	for dec.More() {
		var t map[string]map[string]json.RawMessage
		if err := dec.Decode(&t); err != nil {
			return nil, err
		}
		for pkg, byAnalyzer := range t {
			for name, msg := range byAnalyzer {
				var diags []jsonDiagnostic
				if err := json.Unmarshal(msg, &diags); err != nil {
					continue // a {"error": ...} leaf, not a diagnostic list
				}
				if len(diags) == 0 {
					continue
				}
				if merged[pkg] == nil {
					merged[pkg] = make(map[string][]jsonDiagnostic)
				}
				merged[pkg][name] = append(merged[pkg][name], diags...)
			}
		}
	}
	return merged, nil
}

func stripComments(raw []byte) []byte {
	var out bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// applyFixes gathers every suggested edit in the tree, deduplicates and
// applies them file by file (rejecting overlaps), gofmts the result and
// rewrites the sources in place.
func applyFixes(t tree) {
	type editKey struct {
		start, end int
		text       string
	}
	byFile := make(map[string][]jsonEdit)
	seen := make(map[string]map[editKey]bool)
	fixes := 0
	for _, byAnalyzer := range t {
		for _, diags := range byAnalyzer {
			for _, d := range diags {
				for _, f := range d.SuggestedFixes {
					fixes++
					for _, e := range f.Edits {
						k := editKey{e.Start, e.End, e.New}
						if seen[e.Filename] == nil {
							seen[e.Filename] = make(map[editKey]bool)
						}
						if seen[e.Filename][k] {
							continue // e.g. two fixes adding the same import
						}
						seen[e.Filename][k] = true
						byFile[e.Filename] = append(byFile[e.Filename], e)
					}
				}
			}
		}
	}
	if fixes == 0 {
		fmt.Println("memdep-lint -fix: no suggested fixes")
		return
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, filename := range files {
		edits := byFile[filename]
		src, err := os.ReadFile(filename)
		if err != nil {
			fatalf("%v", err)
		}
		// Apply bottom-up so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start > edits[j].Start
			}
			return edits[i].End > edits[j].End
		})
		applied := 0
		prevStart := len(src) + 1
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(src) {
				fatalf("%s: suggested edit out of range [%d,%d)", filename, e.Start, e.End)
			}
			if e.End > prevStart {
				fmt.Fprintf(os.Stderr, "memdep-lint -fix: %s: skipping edit at [%d,%d) overlapping a later one\n", filename, e.Start, e.End)
				continue
			}
			var next []byte
			next = append(next, src[:e.Start]...)
			next = append(next, e.New...)
			next = append(next, src[e.End:]...)
			src = next
			prevStart = e.Start
			applied++
		}
		if formatted, err := format.Source(src); err == nil {
			src = formatted
		} else {
			fmt.Fprintf(os.Stderr, "memdep-lint -fix: %s: result does not gofmt (%v); writing unformatted\n", filename, err)
		}
		if err := os.WriteFile(filename, src, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("memdep-lint -fix: %s: applied %d edit(s)\n", filename, applied)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "memdep-lint: "+format+"\n", args...)
	os.Exit(1)
}

func exitWith(err error, context string) {
	if err == nil {
		os.Exit(0)
	}
	var exit *exec.ExitError
	if errors.As(err, &exit) {
		os.Exit(exit.ExitCode())
	}
	fatalf("%s: %v", context, err)
}
