// Memdep-lint runs the repo's custom static-analysis suite
// (internal/analysis): maporder, arenaescape, hotalloc, ctxflow and
// fieldalign -- the machine-checked forms of the determinism,
// arena-ownership, hot-path-allocation and cancellation invariants DESIGN.md
// documents.
//
// It has two entry points:
//
//	go run ./cmd/memdep-lint ./...        # standalone: re-execs go vet with itself as the tool
//	go vet -vettool=$(memdep-lint) ./...  # as a vet tool, speaking the unitchecker protocol
//
// Standalone mode forwards its arguments (package patterns and analyzer
// flags such as -maporder.pkgs=...) to go vet verbatim and exits with vet's
// status, so both entry points run the identical modular analysis.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"memdep/internal/analysis"
)

func main() {
	// The unitchecker protocol invokes the tool with -V=full (version
	// fingerprint), -flags (flag description) or a single *.cfg argument
	// (one compilation unit).  Anything else is the standalone entry point.
	for _, arg := range os.Args[1:] {
		if strings.HasSuffix(arg, ".cfg") || arg == "-flags" || strings.HasPrefix(arg, "-V") || arg == "help" {
			unitchecker.Main(analysis.All()...)
		}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "memdep-lint: %v\n", err)
		os.Exit(1)
	}
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout, cmd.Stderr, cmd.Stdin = os.Stdout, os.Stderr, os.Stdin
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "memdep-lint: running go vet: %v\n", err)
		os.Exit(1)
	}
}
