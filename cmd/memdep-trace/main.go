// Command memdep-trace inspects the synthetic workloads through the public
// facade (memdep/sim): it can disassemble a benchmark, summarise its
// committed instruction stream, report its dynamic task structure, and
// profile its memory dependences under the unrealistic OOO window model of
// the paper's section 5.3.
//
// Usage:
//
//	memdep-trace -bench compress -mode summary
//	memdep-trace -bench espresso -mode disasm | head -50
//	memdep-trace -bench sc -mode deps -window 64
//	memdep-trace -bench xlisp -mode tasks
//	memdep-trace -synth -synth-seed 7 -mode summary   # generated workload
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"memdep/cmd/internal/storeflag"
	"memdep/cmd/internal/synthflag"
	"memdep/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memdep-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench    = fs.String("bench", "compress", "benchmark name")
		mode     = fs.String("mode", "summary", "one of: summary, disasm, deps, tasks")
		scale    = fs.Int("scale", 0, "workload scale (0 = benchmark default)")
		maxInstr = fs.Uint64("max-instructions", 0, "cap committed instructions (0 = unlimited)")
		ws       = fs.Int("window", 64, "window size for -mode deps")
		top      = fs.Int("top", 10, "number of hottest dependences to print for -mode deps")
		jobs     = fs.Int("jobs", 0, "session worker-pool size (0 = GOMAXPROCS)")
	)
	synth := synthflag.Register(fs)
	storeFlags := storeflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	benchName, synthSpec, err := synth.ResolveBench(*bench)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// All inspection modes resolve their inputs through one session, so a
	// shell loop over modes shares programs and functional runs via the
	// session cache.
	session := sim.NewSession(append([]sim.Option{sim.WithWorkers(*jobs)}, storeFlags.Options()...)...)
	ctx := context.Background()
	treq := sim.TraceRequest{Bench: benchName, Synth: synthSpec, Scale: *scale, MaxInstructions: *maxInstr}

	switch *mode {
	case "disasm":
		asm, err := session.Disassemble(ctx, treq)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprint(stdout, asm)

	case "summary":
		sum, err := session.Trace(ctx, treq)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "benchmark     %s (%s)\n", sum.Bench, sum.Suite)
		fmt.Fprintf(stdout, "description   %s\n", sum.Description)
		fmt.Fprintf(stdout, "static size   %d instructions, %d loads, %d stores\n",
			sum.StaticInstructions, sum.StaticLoads, sum.StaticStores)
		fmt.Fprintf(stdout, "dynamic size  %d instructions (%d loads, %d stores, %d branches)\n",
			sum.Instructions, sum.Loads, sum.Stores, sum.Branches)
		fmt.Fprintf(stdout, "tasks         %d (%.1f instructions per task)\n",
			sum.Tasks, sum.AvgTaskSize())

	case "tasks":
		hist, err := session.TaskSizes(ctx, treq)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		t := sim.NewTable(fmt.Sprintf("dynamic task sizes for %s", sim.Workload{Bench: benchName, Synth: synthSpec}.Name()), "size", "tasks")
		for _, b := range hist {
			t.AddRow(b.Label, fmt.Sprint(b.Tasks))
		}
		fmt.Fprint(stdout, t.Render())

	case "deps":
		results, err := session.Window(ctx, sim.WindowRequest{
			Bench:           benchName,
			Synth:           synthSpec,
			Scale:           *scale,
			MaxInstructions: *maxInstr,
			WindowSizes:     []int{*ws},
			DDCSizes:        sim.DefaultDDCSizes(),
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		res := results[0]
		fmt.Fprintf(stdout, "window size %d: %d loads, %d worst-case mis-speculations (%.4f per load)\n",
			res.WindowSize, res.Loads, res.Misspeculations, res.MisspecsPerLoad)
		fmt.Fprintf(stdout, "static dependences: %d total, %d cover 99.9%% of mis-speculations\n",
			res.StaticPairs, res.PairsForCoverage)
		for _, cs := range sim.DefaultDDCSizes() {
			fmt.Fprintf(stdout, "DDC %4d entries: %.2f%% miss rate\n", cs, res.DDCMissRate[cs])
		}
		fmt.Fprintln(stdout, "hottest static dependences:")
		for i, pc := range res.Pairs {
			if i >= *top {
				break
			}
			fmt.Fprintf(stdout, "  %7d  store @%d (%s)  ->  load @%d (%s)\n",
				pc.Count, pc.StoreIndex, pc.Store, pc.LoadIndex, pc.Load)
		}

	default:
		fmt.Fprintf(stderr, "unknown mode %q (want summary, disasm, deps or tasks)\n", *mode)
		return 1
	}
	return 0
}
