// Command memdep-trace inspects the synthetic workloads: it can disassemble a
// benchmark, summarise its committed instruction stream, report its dynamic
// task structure, and profile its memory dependences under the unrealistic
// OOO window model of the paper's section 5.3.
//
// Usage:
//
//	memdep-trace -bench compress -mode summary
//	memdep-trace -bench espresso -mode disasm | head -50
//	memdep-trace -bench sc -mode deps -window 64
//	memdep-trace -bench xlisp -mode tasks
package main

import (
	"flag"
	"fmt"
	"os"

	"memdep/internal/engine"
	"memdep/internal/experiments"
	"memdep/internal/memdep"
	"memdep/internal/program"
	"memdep/internal/stats"
	"memdep/internal/trace"
	"memdep/internal/window"
	"memdep/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "compress", "benchmark name")
		mode     = flag.String("mode", "summary", "one of: summary, disasm, deps, tasks")
		scale    = flag.Int("scale", 0, "workload scale (0 = benchmark default)")
		maxInstr = flag.Uint64("max-instructions", 0, "cap committed instructions (0 = unlimited)")
		ws       = flag.Int("window", 64, "window size for -mode deps")
		top      = flag.Int("top", 10, "number of hottest dependences to print for -mode deps")
		jobs     = flag.Int("jobs", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	wl, err := workload.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := *scale
	if s <= 0 {
		s = wl.DefaultScale
	}
	traceCfg := trace.Config{MaxInstructions: *maxInstr}

	// All inspection modes resolve their inputs through the job engine, so a
	// shell loop over modes (or several benchmarks in future) shares programs
	// and functional runs.
	eng := experiments.NewEngine(*jobs)
	progSpec := workload.BuildJob{Name: *bench, Scale: s}
	prog, err := engine.Resolve[*program.Program](eng, progSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *mode {
	case "disasm":
		fmt.Print(prog.Disassemble())

	case "summary":
		st, err := engine.Resolve[trace.Stats](eng, trace.RunJob{Program: progSpec, Config: traceCfg})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchmark     %s (%s)\n", wl.Name, wl.Suite)
		fmt.Printf("description   %s\n", wl.Description)
		fmt.Printf("static size   %d instructions, %d loads, %d stores\n",
			prog.Len(), len(prog.StaticLoads()), len(prog.StaticStores()))
		fmt.Printf("dynamic size  %d instructions (%d loads, %d stores, %d branches)\n",
			st.Instructions, st.Loads, st.Stores, st.Branches)
		fmt.Printf("tasks         %d (%.1f instructions per task)\n",
			st.Tasks, float64(st.Instructions)/float64(st.Tasks))

	case "tasks":
		sizes := map[uint64]uint64{}
		var current uint64
		var count uint64
		_, err := trace.Run(prog, traceCfg, func(d trace.DynInst) bool {
			if d.TaskStart && count > 0 {
				sizes[current] = count
				count = 0
			}
			current = d.TaskID
			count++
			return true
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if count > 0 {
			sizes[current] = count
		}
		hist := map[string]int{}
		buckets := []struct {
			label string
			max   uint64
		}{
			{"1-16", 16}, {"17-32", 32}, {"33-64", 64}, {"65-128", 128},
			{"129-256", 256}, {"257-512", 512}, {"513+", ^uint64(0)},
		}
		for _, n := range sizes {
			for _, b := range buckets {
				if n <= b.max {
					hist[b.label]++
					break
				}
			}
		}
		t := stats.NewTable(fmt.Sprintf("dynamic task sizes for %s", wl.Name), "size", "tasks")
		for _, b := range buckets {
			t.AddRow(b.label, fmt.Sprint(hist[b.label]))
		}
		fmt.Print(t.Render())

	case "deps":
		results, err := engine.Resolve[[]window.Result](eng, window.AnalyzeJob{
			Program: progSpec,
			Config: window.Config{
				WindowSizes: []int{*ws},
				DDCSizes:    window.DefaultDDCSizes(),
				Trace:       traceCfg,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := results[0]
		fmt.Printf("window size %d: %d loads, %d worst-case mis-speculations (%.4f per load)\n",
			res.WindowSize, res.Loads, res.Misspeculations, res.MisspecRate())
		fmt.Printf("static dependences: %d total, %d cover 99.9%% of mis-speculations\n",
			res.StaticPairs, res.PairsForCoverage)
		for _, cs := range window.DefaultDDCSizes() {
			fmt.Printf("DDC %4d entries: %.2f%% miss rate\n", cs, res.DDCMissRate[cs])
		}
		fmt.Println("hottest static dependences:")
		for i, pc := range memdep.SortedPairCounts(res.PairCounts) {
			if i >= *top {
				break
			}
			si, li := prog.Index(pc.Pair.StorePC), prog.Index(pc.Pair.LoadPC)
			fmt.Printf("  %7d  store @%d (%s)  ->  load @%d (%s)\n",
				pc.N, si, prog.Code[si], li, prog.Code[li])
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want summary, disasm, deps or tasks)\n", *mode)
		os.Exit(1)
	}
}
