package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden files were captured from the pre-facade CLI; these tests pin
// the facade-backed rewrite to byte-identical output.  (disasm40.golden is
// the first 40 lines of the disassembly, as captured with `| head -40`.)
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
		lines  int // truncate output to this many lines (0 = all)
	}{
		{"summary.golden", []string{"-bench", "compress", "-mode", "summary", "-max-instructions", "40000"}, 0},
		{"tasks.golden", []string{"-bench", "compress", "-mode", "tasks", "-max-instructions", "40000"}, 0},
		{"deps.golden", []string{"-bench", "compress", "-mode", "deps", "-window", "64", "-max-instructions", "40000"}, 0},
		{"disasm40.golden", []string{"-bench", "compress", "-mode", "disasm"}, 40},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
			}
			got := stdout.String()
			if tc.lines > 0 {
				got = strings.Join(strings.SplitAfter(got, "\n")[:tc.lines], "")
			}
			if got != string(want) {
				t.Errorf("output differs from the pre-redesign golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestBadInputsFail pins the error paths.
func TestBadInputsFail(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "no-such-benchmark"},
		{"-mode", "no-such-mode"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("args %v: want non-zero exit", args)
		}
	}
}
