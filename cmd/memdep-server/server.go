package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"memdep/internal/fleet"
	"memdep/sim"
)

// server serves the sim facade over HTTP/JSON.  All requests share one
// session, so concurrent and repeated simulations hit the same memoized
// cache, and every handler runs under the request context: a disconnected
// client cancels its in-flight simulation.
type server struct {
	session *sim.Session
	// limiter bounds admitted simulate/grid requests; nil (the default when
	// -max-inflight is unset) admits everything, preserving the historical
	// standalone behavior byte for byte.
	limiter *fleet.Limiter
}

// errorResponse is the JSON shape of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	// Fields carries the per-field validation errors, when the failure is a
	// malformed request.
	Fields []sim.FieldError `json:"fields,omitempty"`
}

// gridRequest is the body of POST /v1/grid.
type gridRequest struct {
	Requests []sim.Request `json:"requests"`
	// Stream requests NDJSON output: one cell per line as it completes,
	// then a summary record (equivalent to Accept: application/x-ndjson).
	Stream bool `json:"stream,omitempty"`
}

// gridResponse is the response of a buffered POST /v1/grid.
type gridResponse struct {
	Results []*sim.Result `json:"results"`
	// Stats snapshots the session cache after the grid ran.
	Stats sim.Stats `json:"stats"`
}

// benchmarksResponse is the response of GET /v1/benchmarks.
type benchmarksResponse struct {
	Benchmarks []sim.Benchmark `json:"benchmarks"`
}

// healthResponse is the response of GET /v1/healthz.
type healthResponse struct {
	Status string    `json:"status"`
	Stats  sim.Stats `json:"stats"`
}

// statzResponse is the response of GET /v1/statz: the same session stats as
// /v1/healthz, served on its own path so dashboards scraping store counters
// do not double as liveness probes.
type statzResponse struct {
	Stats sim.Stats `json:"stats"`
	// Admission snapshots the limiter when one is configured.
	Admission *fleet.LimiterStats `json:"admission,omitempty"`
}

// serverRoutes lists every endpoint a standalone or worker server serves;
// the docs tests assert each one appears in docs/API.md and answers
// requests.  Coordinator routes live in fleet.CoordinatorRoutes.
func serverRoutes() []fleet.Route {
	return []fleet.Route{
		{Method: "POST", Pattern: "/v1/simulate"},
		{Method: "POST", Pattern: "/v1/grid"},
		{Method: "GET", Pattern: "/v1/benchmarks"},
		{Method: "GET", Pattern: "/v1/healthz"},
		{Method: "GET", Pattern: "/v1/statz"},
	}
}

// newHandler builds the route table; the routes are exactly serverRoutes.
func newHandler(s *sim.Session, limiter *fleet.Limiter) http.Handler {
	srv := &server{session: s, limiter: limiter}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", srv.handleSimulate)
	mux.HandleFunc("POST /v1/grid", srv.handleGrid)
	mux.HandleFunc("GET /v1/benchmarks", srv.handleBenchmarks)
	mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	mux.HandleFunc("GET /v1/statz", srv.handleStatz)
	return mux
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// writeError maps an error to its HTTP shape: validation failures are 400s
// with structured fields, overload is a 429 with Retry-After, cancellations
// mean the client has gone away, and everything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	var verr *sim.ValidationError
	var oerr *fleet.OverloadError
	switch {
	case errors.As(err, &verr):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Fields: verr.Fields})
	case errors.As(err, &oerr):
		w.Header().Set("Retry-After", strconv.Itoa(int(oerr.RetryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The request context died: the response writer is dead too, but
		// flush a status for the tests and any proxy still listening.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// maxBodyBytes bounds a request body; the largest legitimate payload (a full
// grid of requests) is a few kilobytes, so 1 MiB is generous headroom while
// keeping a hostile body from buffering unbounded memory.
const maxBodyBytes = 1 << 20

// decodeBody decodes a JSON request body strictly: the size is capped and
// unknown fields are rejected, so typos in configuration names fail loudly
// instead of silently simulating the default.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("malformed request body: %v", err)})
		return false
	}
	return true
}

// handleSimulate runs one simulation: POST /v1/simulate {"bench": ...}.
func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req sim.Request
	if !decodeBody(w, r, &req) {
		return
	}
	release, err := s.limiter.Acquire(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	res, err := s.session.Run(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleGrid runs a request grid as one job set: POST /v1/grid
// {"requests": [...]}.  Buffered (the default) is all-or-nothing; with
// "stream": true or Accept: application/x-ndjson, each cell is written as
// an NDJSON line the moment it completes, ending with a summary record.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req gridRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if ok, errResp := fleet.CheckGridShape(len(req.Requests)); !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: errResp.Error, Fields: errResp.Fields})
		return
	}
	release, err := s.limiter.Acquire(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	if req.Stream || fleet.WantsStream(r) {
		s.streamGrid(w, r, req.Requests)
		return
	}
	results, err := s.session.RunGrid(r.Context(), req.Requests)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, gridResponse{Results: results, Stats: s.session.Stats()})
}

// streamGrid runs the cells concurrently on the shared session and writes
// each result as it lands.  Unlike the buffered mode, cell failures are
// per-line, not fatal: a grid with one invalid cell still streams the
// other results, and the trailing summary counts both.
func (s *server) streamGrid(w http.ResponseWriter, r *http.Request, reqs []sim.Request) {
	sw := fleet.NewStreamWriter(w)
	start := time.Now()
	fanout := s.session.Stats().Workers
	if fanout < 1 {
		fanout = 1
	}
	sem := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, failed := 0, 0
	ctx := r.Context()
	for i := range reqs {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cell := fleet.GridCell{Index: i}
			res, err := s.session.Run(ctx, reqs[i])
			if err != nil {
				cell.Error = err.Error()
				var verr *sim.ValidationError
				if errors.As(err, &verr) {
					cell.Fields = verr.Fields
				}
			} else if data, merr := json.Marshal(res); merr != nil {
				cell.Error = merr.Error()
			} else {
				cell.Result = data
			}
			mu.Lock()
			if cell.Error == "" {
				ok++
			} else {
				failed++
			}
			mu.Unlock()
			sw.Write(cell) //nolint:errcheck // a dead client cancels the context
		}(i)
	}
	wg.Wait()
	stats := s.session.Stats()
	sw.Write(fleet.GridSummaryLine{Summary: fleet.GridSummary{ //nolint:errcheck
		Cells:     len(reqs),
		OK:        ok,
		Errors:    failed,
		ElapsedMS: time.Since(start).Milliseconds(),
		Stats:     &stats,
	}})
}

// handleBenchmarks lists the workload suite: GET /v1/benchmarks.
func (s *server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, benchmarksResponse{Benchmarks: sim.Benchmarks()})
}

// handleHealthz reports liveness and the cache counters: GET /v1/healthz.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: s.session.Stats()})
}

// handleStatz reports the full session stats, the persistent store's
// per-kind hit/miss/bypass/corrupt counters included: GET /v1/statz.
func (s *server) handleStatz(w http.ResponseWriter, r *http.Request) {
	resp := statzResponse{Stats: s.session.Stats()}
	if s.limiter != nil {
		ls := s.limiter.Stats()
		resp.Admission = &ls
	}
	writeJSON(w, http.StatusOK, resp)
}
