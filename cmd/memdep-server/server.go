package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"memdep/sim"
)

// server serves the sim facade over HTTP/JSON.  All requests share one
// session, so concurrent and repeated simulations hit the same memoized
// cache, and every handler runs under the request context: a disconnected
// client cancels its in-flight simulation.
type server struct {
	session *sim.Session
}

// errorResponse is the JSON shape of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	// Fields carries the per-field validation errors, when the failure is a
	// malformed request.
	Fields []sim.FieldError `json:"fields,omitempty"`
}

// gridRequest is the body of POST /v1/grid.
type gridRequest struct {
	Requests []sim.Request `json:"requests"`
}

// gridResponse is the response of POST /v1/grid.
type gridResponse struct {
	Results []*sim.Result `json:"results"`
	// Stats snapshots the session cache after the grid ran.
	Stats sim.Stats `json:"stats"`
}

// benchmarksResponse is the response of GET /v1/benchmarks.
type benchmarksResponse struct {
	Benchmarks []sim.Benchmark `json:"benchmarks"`
}

// healthResponse is the response of GET /v1/healthz.
type healthResponse struct {
	Status string    `json:"status"`
	Stats  sim.Stats `json:"stats"`
}

// statzResponse is the response of GET /v1/statz: the same session stats as
// /v1/healthz, served on its own path so dashboards scraping store counters
// do not double as liveness probes.
type statzResponse struct {
	Stats sim.Stats `json:"stats"`
}

// newHandler builds the route table.
func newHandler(s *sim.Session) http.Handler {
	srv := &server{session: s}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", srv.handleSimulate)
	mux.HandleFunc("POST /v1/grid", srv.handleGrid)
	mux.HandleFunc("GET /v1/benchmarks", srv.handleBenchmarks)
	mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	mux.HandleFunc("GET /v1/statz", srv.handleStatz)
	return mux
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// writeError maps an error to its HTTP shape: validation failures are 400s
// with structured fields, cancellations mean the client has gone away, and
// everything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	var verr *sim.ValidationError
	switch {
	case errors.As(err, &verr):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Fields: verr.Fields})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The request context died: the response writer is dead too, but
		// flush a status for the tests and any proxy still listening.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// maxBodyBytes bounds a request body; the largest legitimate payload (a full
// grid of requests) is a few kilobytes, so 1 MiB is generous headroom while
// keeping a hostile body from buffering unbounded memory.
const maxBodyBytes = 1 << 20

// maxGridRequests bounds one /v1/grid call; larger studies should be split
// into several grids (they still share the session cache).
const maxGridRequests = 1024

// decodeBody decodes a JSON request body strictly: the size is capped and
// unknown fields are rejected, so typos in configuration names fail loudly
// instead of silently simulating the default.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("malformed request body: %v", err)})
		return false
	}
	return true
}

// handleSimulate runs one simulation: POST /v1/simulate {"bench": ...}.
func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req sim.Request
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.session.Run(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleGrid runs a request grid as one job set: POST /v1/grid
// {"requests": [...]}.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req gridRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "invalid request: requests: at least one request is required",
			Fields: []sim.FieldError{
				{Field: "requests", Msg: "at least one request is required"},
			},
		})
		return
	}
	if len(req.Requests) > maxGridRequests {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("invalid request: requests: a grid is limited to %d requests", maxGridRequests),
			Fields: []sim.FieldError{
				{Field: "requests", Value: fmt.Sprint(len(req.Requests)),
					Msg: fmt.Sprintf("a grid is limited to %d requests", maxGridRequests)},
			},
		})
		return
	}
	results, err := s.session.RunGrid(r.Context(), req.Requests)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, gridResponse{Results: results, Stats: s.session.Stats()})
}

// handleBenchmarks lists the workload suite: GET /v1/benchmarks.
func (s *server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, benchmarksResponse{Benchmarks: sim.Benchmarks()})
}

// handleHealthz reports liveness and the cache counters: GET /v1/healthz.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: s.session.Stats()})
}

// handleStatz reports the full session stats, the persistent store's
// per-kind hit/miss/bypass/corrupt counters included: GET /v1/statz.
func (s *server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statzResponse{Stats: s.session.Stats()})
}
