package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memdep/internal/fleet"
	"memdep/sim"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newHandler(sim.NewSession(sim.WithWorkers(2)), nil))
	t.Cleanup(ts.Close)
	return ts
}

// do issues a request and returns status and body.
func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// checkGolden compares got against the named golden file (or rewrites it
// with -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: response differs from golden file\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestSimulateGolden pins the full JSON response of POST /v1/simulate for a
// bounded, deterministic request.
func TestSimulateGolden(t *testing.T) {
	ts := newTestServer(t)
	status, body := do(t, "POST", ts.URL+"/v1/simulate",
		`{"bench":"compress","stages":8,"policy":"ESYNC","max_instructions":40000}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	checkGolden(t, "simulate.json.golden", body)
}

// TestGridGolden pins POST /v1/grid: positional results and a shared cache
// (the stats block shows one work item serving all four simulations).
func TestGridGolden(t *testing.T) {
	ts := newTestServer(t)
	status, body := do(t, "POST", ts.URL+"/v1/grid",
		`{"requests":[
			{"bench":"compress","stages":4,"policy":"ALWAYS","max_instructions":40000},
			{"bench":"compress","stages":4,"policy":"ESYNC","max_instructions":40000},
			{"bench":"compress","stages":8,"policy":"ALWAYS","max_instructions":40000},
			{"bench":"compress","stages":8,"policy":"ESYNC","max_instructions":40000}]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	checkGolden(t, "grid.json.golden", body)

	var grid gridResponse
	if err := json.Unmarshal(body, &grid); err != nil {
		t.Fatal(err)
	}
	// 1 build + 1 preprocess + 4 simulations.
	if grid.Stats.Executed != 6 {
		t.Errorf("grid executed %d jobs, want 6 (shared work item)", grid.Stats.Executed)
	}
}

// TestBenchmarksGolden pins GET /v1/benchmarks.
func TestBenchmarksGolden(t *testing.T) {
	ts := newTestServer(t)
	status, body := do(t, "GET", ts.URL+"/v1/benchmarks", "")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	checkGolden(t, "benchmarks.json.golden", body)
}

// TestHealthz checks liveness (the stats block varies, so no golden).
func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	status, body := do(t, "GET", ts.URL+"/v1/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var health healthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Stats.Workers < 1 {
		t.Errorf("health = %+v", health)
	}
}

// TestMalformedRequests pins the 400 paths: invalid JSON, unknown fields,
// structured validation errors, empty grids and wrong methods.
func TestMalformedRequests(t *testing.T) {
	ts := newTestServer(t)

	status, body := do(t, "POST", ts.URL+"/v1/simulate", `{"bench":`)
	if status != http.StatusBadRequest {
		t.Errorf("truncated JSON: status = %d", status)
	}
	checkGolden(t, "malformed.json.golden", body)

	status, body = do(t, "POST", ts.URL+"/v1/simulate", `{"bench":"nope","stages":-1,"policy":"SOMETIMES"}`)
	if status != http.StatusBadRequest {
		t.Errorf("invalid fields: status = %d", status)
	}
	checkGolden(t, "invalid-fields.json.golden", body)
	var errResp errorResponse
	if err := json.Unmarshal(body, &errResp); err != nil {
		t.Fatal(err)
	}
	if len(errResp.Fields) != 3 {
		t.Errorf("structured fields = %+v, want bench/stages/policy", errResp.Fields)
	}

	if status, _ := do(t, "POST", ts.URL+"/v1/simulate", `{"bench":"compress","stage":8}`); status != http.StatusBadRequest {
		t.Errorf("unknown field (typo) accepted: status = %d", status)
	}
	if status, _ := do(t, "POST", ts.URL+"/v1/grid", `{"requests":[]}`); status != http.StatusBadRequest {
		t.Errorf("empty grid: status = %d", status)
	}
	big := `{"requests":[` + strings.Repeat(`{"bench":"compress"},`, fleet.MaxGridRequests) + `{"bench":"compress"}]}`
	if status, _ := do(t, "POST", ts.URL+"/v1/grid", big); status != http.StatusBadRequest {
		t.Errorf("oversized grid: status = %d", status)
	}
	huge := `{"bench":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	if status, _ := do(t, "POST", ts.URL+"/v1/simulate", huge); status != http.StatusBadRequest {
		t.Errorf("oversized body: status = %d", status)
	}
	if status, _ := do(t, "GET", ts.URL+"/v1/simulate", ""); status != http.StatusMethodNotAllowed {
		t.Errorf("GET simulate: status = %d", status)
	}
	if status, _ := do(t, "POST", ts.URL+"/v1/healthz", `{}`); status != http.StatusMethodNotAllowed {
		t.Errorf("POST healthz: status = %d", status)
	}
}

// TestServerMatchesFacade checks the acceptance-criteria parity: the cycle
// count served over HTTP equals a direct facade run of the same request.
func TestServerMatchesFacade(t *testing.T) {
	ts := newTestServer(t)
	status, body := do(t, "POST", ts.URL+"/v1/simulate", `{"bench":"compress","stages":8,"policy":"ESYNC"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var served sim.Result
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatal(err)
	}
	direct, err := sim.NewSession().Run(context.Background(),
		sim.Request{Bench: "compress", Stages: 8, Policy: sim.PolicyESync})
	if err != nil {
		t.Fatal(err)
	}
	if served.Cycles == 0 || served.Cycles != direct.Cycles {
		t.Errorf("served %d cycles, direct facade run %d", served.Cycles, direct.Cycles)
	}
}

// TestConcurrentRequestsShareCache fires identical and overlapping requests
// from many goroutines and checks they all succeed and the session cache
// deduplicated the work.
func TestConcurrentRequestsShareCache(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		pol := []string{"ALWAYS", "SYNC", "ESYNC", "NEVER"}[i%4]
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := do(t, "POST", ts.URL+"/v1/simulate",
				fmt.Sprintf(`{"bench":"sc","policy":%q,"max_instructions":30000}`, pol))
			if status != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", status, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	_, body := do(t, "GET", ts.URL+"/v1/healthz", "")
	var health healthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	// 1 build + 1 preprocess + 4 distinct simulations; the other 12 requests
	// were deduplicated onto the cache.
	if health.Stats.Executed != 6 {
		t.Errorf("executed %d jobs for 16 overlapping requests, want 6", health.Stats.Executed)
	}
	if health.Stats.Hits == 0 {
		t.Error("no cache hits recorded")
	}
}

// TestGracefulShutdown starts a real server, opens an in-flight request,
// then shuts down: the in-flight request must complete and the listener must
// close.
func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newHandler(sim.NewSession(sim.WithWorkers(2)), nil)}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Wait until the server answers.
	for i := 0; ; i++ {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if i > 100 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Open an in-flight simulation (unbounded run: long enough to still be
	// in flight when Shutdown begins).
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"bench":"xlisp","policy":"ESYNC"}`))
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight request got status %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	time.Sleep(20 * time.Millisecond)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request during shutdown: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("listener still accepting connections after shutdown")
	}
}

// TestSynthSimulate drives a synthetic-workload request through the service:
// the same spec+seed must be seed-reproducible over HTTP (identical bodies
// across calls and across a server restart), different seeds must differ,
// and spec problems must come back as structured 400s.
func TestSynthSimulate(t *testing.T) {
	ts := newTestServer(t)
	body := `{"synth":{"seed":7,"ops":8192,"body":128,"alias_set_size":4},"policy":"ESYNC"}`

	status, first := do(t, "POST", ts.URL+"/v1/simulate", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, first)
	}
	var res sim.Result
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Errorf("empty result: %d cycles, %d instructions", res.Cycles, res.Instructions)
	}
	if res.Request.Synth == nil || res.Request.Synth.Seed != 7 || res.Request.Synth.Name != "synth" {
		t.Errorf("result does not echo the normalized spec: %+v", res.Request.Synth)
	}

	// Repeating the request (memoized) and replaying it against a fresh
	// server (recomputed) both reproduce the response byte for byte.
	if _, again := do(t, "POST", ts.URL+"/v1/simulate", body); string(again) != string(first) {
		t.Error("repeated synthetic request changed the response")
	}
	ts2 := newTestServer(t)
	if _, fresh := do(t, "POST", ts2.URL+"/v1/simulate", body); string(fresh) != string(first) {
		t.Error("synthetic request is not reproducible across server instances")
	}

	// A different seed is a different workload.
	otherBody := strings.Replace(body, `"seed":7`, `"seed":8`, 1)
	if _, other := do(t, "POST", ts.URL+"/v1/simulate", otherBody); string(other) == string(first) {
		t.Error("different seeds served identical results")
	}

	// bench+synth together and bad spec fields are structured 400s.
	status, errBody := do(t, "POST", ts.URL+"/v1/simulate", `{"bench":"compress","synth":{}}`)
	if status != http.StatusBadRequest {
		t.Errorf("bench+synth: status = %d", status)
	}
	var errResp errorResponse
	if err := json.Unmarshal(errBody, &errResp); err != nil || len(errResp.Fields) == 0 {
		t.Errorf("bench+synth: unstructured error %s", errBody)
	}
	status, errBody = do(t, "POST", ts.URL+"/v1/simulate", `{"synth":{"ops":-1,"load_frac":2}}`)
	if status != http.StatusBadRequest {
		t.Errorf("bad spec: status = %d", status)
	}
	errResp = errorResponse{}
	if err := json.Unmarshal(errBody, &errResp); err != nil || len(errResp.Fields) < 2 {
		t.Errorf("bad spec: want per-field errors, got %s", errBody)
	}
}

// TestStatz pins GET /v1/statz: without a store it mirrors the session
// stats, and with -store wired it exposes the persistent tier's counters,
// including the disk hits of a restarted server replaying the same request.
func TestStatz(t *testing.T) {
	ts := newTestServer(t)
	status, body := do(t, "GET", ts.URL+"/v1/statz", "")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var resp statzResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if resp.Stats.Workers != 2 || resp.Stats.Store != nil {
		t.Fatalf("stats = %+v, want 2 workers and no store section", resp.Stats)
	}

	// A store-backed server counts its disk traffic; a second instance on
	// the same directory serves the replayed request from disk.
	dir := t.TempDir()
	req := `{"synth":{"seed":3,"ops":2048},"stages":4,"policy":"ESYNC"}`
	storeServer := func() (*httptest.Server, func() sim.Stats) {
		session := sim.NewSession(sim.WithWorkers(2), sim.WithStore(dir))
		s := httptest.NewServer(newHandler(session, nil))
		t.Cleanup(s.Close)
		return s, session.Stats
	}
	ts1, _ := storeServer()
	if status, _ := do(t, "POST", ts1.URL+"/v1/simulate", req); status != http.StatusOK {
		t.Fatalf("cold simulate: status = %d", status)
	}
	_, body = do(t, "GET", ts1.URL+"/v1/statz", "")
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Store == nil || resp.Stats.Store.Counters.Writes == 0 {
		t.Fatalf("cold statz missing store writes: %s", body)
	}

	ts2, _ := storeServer()
	if status, _ := do(t, "POST", ts2.URL+"/v1/simulate", req); status != http.StatusOK {
		t.Fatalf("warm simulate: status = %d", status)
	}
	_, body = do(t, "GET", ts2.URL+"/v1/statz", "")
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	st := resp.Stats
	if st.Store == nil || st.Store.Counters.Hits == 0 {
		t.Fatalf("warm statz missing store hits: %s", body)
	}
	if st.Executed != 0 {
		t.Fatalf("restarted server executed %d jobs, want 0 (served from disk)", st.Executed)
	}
	if kc := st.Store.Kinds["multiscalar/simulate"]; kc.Hits == 0 {
		t.Fatalf("no per-kind simulate hits: %s", body)
	}
}
