// Command memdep-server serves the memdep simulator as a long-running
// HTTP/JSON service on top of the public sim facade (memdep/sim).
//
// Endpoints:
//
//	POST /v1/simulate    run one simulation        (body: sim.Request JSON)
//	POST /v1/grid        run a simulation grid     (body: {"requests": [...]})
//	GET  /v1/benchmarks  list the workload suite
//	GET  /v1/healthz     liveness + cache counters
//	GET  /v1/statz       full session stats, persistent-store counters included
//
// Example:
//
//	memdep-server -addr :8080 &
//	curl -d '{"bench":"compress","stages":8,"policy":"ESYNC"}' localhost:8080/v1/simulate
//
// All requests share one sim.Session: concurrent clients hit the same
// memoized result cache, grids fan out over the -jobs worker pool, and each
// request is cancellable -- a client that disconnects aborts its in-flight
// simulation.  SIGINT/SIGTERM drain in-flight requests before exit
// (graceful shutdown).
//
// With -store DIR (default $MEMDEP_STORE), the session layers the persistent
// content-addressed result store under its in-memory cache, so results
// survive server restarts and are shared with the CLIs pointing at the same
// directory; GET /v1/statz exposes the store's hit/miss/corrupt counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memdep/sim"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		jobs        = flag.Int("jobs", 0, "engine worker-pool size shared by all requests (0 = GOMAXPROCS)")
		drainwindow = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight requests")
		storeDir    = flag.String("store", os.Getenv("MEMDEP_STORE"), "persistent result-store directory shared with the CLIs; results survive restarts (default $MEMDEP_STORE; \"\" = in-memory cache only)")
	)
	flag.Parse()

	opts := []sim.Option{sim.WithWorkers(*jobs)}
	if *storeDir != "" {
		opts = append(opts, sim.WithStore(*storeDir))
	}
	session := sim.NewSession(opts...)
	srv := &http.Server{
		Addr:    *addr,
		Handler: newHandler(session),
		// Bound how long a client may dribble its request in; responses are
		// unbounded because a full-scale simulation legitimately takes a
		// while to compute before the first byte.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if st := session.Stats(); st.Store != nil {
			fmt.Fprintf(os.Stderr, "[memdep-server listening on %s, %d workers, store %s]\n", *addr, st.Workers, st.Store.Dir)
		} else {
			fmt.Fprintf(os.Stderr, "[memdep-server listening on %s, %d workers]\n", *addr, st.Workers)
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "[memdep-server draining]")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainwindow)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "[memdep-server stopped]")
}
