// Command memdep-server serves the memdep simulator as a long-running
// HTTP/JSON service on top of the public sim facade (memdep/sim).
//
// Endpoints (standalone and worker roles):
//
//	POST /v1/simulate    run one simulation        (body: sim.Request JSON)
//	POST /v1/grid        run a simulation grid     (body: {"requests": [...]});
//	                     add "stream": true or Accept: application/x-ndjson
//	                     for one NDJSON line per cell as it completes
//	GET  /v1/benchmarks  list the workload suite
//	GET  /v1/healthz     liveness + cache counters
//	GET  /v1/statz       full session stats, persistent-store counters included
//
// A coordinator (-role coordinator) serves the same simulate/grid/benchmarks
// surface but owns no session: it consistent-hash-routes each request on its
// canonical normalized JSON to the owning worker, plus the membership
// endpoints POST /v1/fleet/register, POST /v1/fleet/deregister and
// GET /v1/fleet/workers.  A worker (-role worker -coordinator URL) is a
// standalone server that additionally registers itself and heartbeats.
// docs/API.md documents every endpoint; docs/OPERATIONS.md covers running
// the topologies.
//
// Example:
//
//	memdep-server -addr :8080 &
//	curl -d '{"bench":"compress","stages":8,"policy":"ESYNC"}' localhost:8080/v1/simulate
//
// All requests share one sim.Session: concurrent clients hit the same
// memoized result cache, grids fan out over the -jobs worker pool, and each
// request is cancellable -- a client that disconnects aborts its in-flight
// simulation.  SIGINT/SIGTERM drain in-flight requests before exit
// (graceful shutdown); a worker deregisters from its coordinator first, so
// no new request routes to it while it drains.
//
// With -store DIR (default $MEMDEP_STORE), the session layers the persistent
// content-addressed result store under its in-memory cache, so results
// survive server restarts and are shared with the CLIs pointing at the same
// directory; GET /v1/statz exposes the store's hit/miss/corrupt counters.
//
// With -max-inflight N, at most N simulate/grid requests run at once and at
// most -max-queue more wait; beyond that the server answers 429 with a
// Retry-After estimate instead of queueing unboundedly.  Unset (0), the
// standalone server keeps its historical unbounded admission.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memdep/internal/fleet"
	"memdep/sim"
)

// config collects the parsed flag values.
type config struct {
	addr        string
	role        string
	coordinator string
	name        string
	advertise   string
	jobs        int
	drain       time.Duration
	store       string
	maxInflight int
	maxQueue    int
	heartbeat   time.Duration
	workerTTL   time.Duration
}

// newFlagSet declares the full flag surface; the docs tests enumerate it to
// hold docs/OPERATIONS.md to account.
func newFlagSet() (*flag.FlagSet, *config) {
	cfg := &config{}
	fs := flag.NewFlagSet("memdep-server", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.role, "role", "standalone", "process role: standalone, coordinator or worker")
	fs.StringVar(&cfg.coordinator, "coordinator", "", "coordinator base URL a worker registers with (required for -role worker)")
	fs.StringVar(&cfg.name, "name", "", "worker's fleet name (default: hostname + listen address)")
	fs.StringVar(&cfg.advertise, "advertise", "", "worker's own base URL as the coordinator should reach it (default: http://127.0.0.1 + the listen address)")
	fs.IntVar(&cfg.jobs, "jobs", 0, "engine worker-pool size shared by all requests (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.drain, "drain", 30*time.Second, "graceful-shutdown drain window for in-flight requests")
	fs.StringVar(&cfg.store, "store", os.Getenv("MEMDEP_STORE"), "persistent result-store directory shared with the CLIs; results survive restarts (default $MEMDEP_STORE; \"\" = in-memory cache only)")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 0, "max concurrently admitted simulate/grid requests (0 = role default: unlimited standalone/worker, 64 on a coordinator)")
	fs.IntVar(&cfg.maxQueue, "max-queue", 0, "max requests waiting for an in-flight slot before 429s start (0 = role default: none standalone/worker, 256 on a coordinator)")
	fs.DurationVar(&cfg.heartbeat, "heartbeat", 2*time.Second, "fleet heartbeat: worker re-registration period and coordinator health-probe period")
	fs.DurationVar(&cfg.workerTTL, "worker-ttl", 30*time.Second, "coordinator drops a worker silent for longer than this")
	return fs, cfg
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main with its environment injected, so tests can drive it.
func run(args []string, stderr io.Writer) int {
	fs, cfg := newFlagSet()
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		handler    http.Handler
		banner     string
		preDrain   func() // runs before the HTTP drain (worker deregistration)
		afterDrain func() // runs after the HTTP drain (coordinator teardown)
	)

	switch cfg.role {
	case "standalone", "worker":
		opts := []sim.Option{sim.WithWorkers(cfg.jobs)}
		if cfg.store != "" {
			opts = append(opts, sim.WithStore(cfg.store))
		}
		session := sim.NewSession(opts...)
		handler = newHandler(session, fleet.NewLimiter(cfg.maxInflight, cfg.maxQueue))
		st := session.Stats()
		if st.Store != nil {
			banner = fmt.Sprintf("[memdep-server %s listening on %s, %d workers, store %s]", cfg.role, cfg.addr, st.Workers, st.Store.Dir)
		} else {
			banner = fmt.Sprintf("[memdep-server %s listening on %s, %d workers]", cfg.role, cfg.addr, st.Workers)
		}
		if cfg.role == "worker" {
			if cfg.coordinator == "" {
				fmt.Fprintln(stderr, "memdep-server: -role worker requires -coordinator")
				return 2
			}
			agent, err := fleet.NewAgent(fleet.AgentConfig{
				Coordinator: cfg.coordinator,
				Name:        workerName(cfg),
				URL:         advertiseURL(cfg),
				Interval:    cfg.heartbeat,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(stderr, "[memdep-server] "+format+"\n", args...)
				},
			})
			if err != nil {
				fmt.Fprintf(stderr, "memdep-server: %v\n", err)
				return 2
			}
			actx, acancel := context.WithCancel(context.Background())
			adone := make(chan struct{})
			go func() {
				defer close(adone)
				agent.Run(actx)
			}()
			// Leave the ring (so nothing new routes here) before draining the
			// in-flight requests.
			preDrain = func() {
				acancel()
				<-adone
			}
		}
	case "coordinator":
		coord := fleet.NewCoordinator(fleet.Config{
			Registry:       fleet.RegistryConfig{TTL: cfg.workerTTL},
			HealthInterval: cfg.heartbeat,
			MaxInflight:    cfg.maxInflight,
			MaxQueue:       cfg.maxQueue,
		})
		handler = coord.Handler()
		banner = fmt.Sprintf("[memdep-server coordinator listening on %s]", cfg.addr)
		afterDrain = coord.Close
	default:
		fmt.Fprintf(stderr, "memdep-server: unknown -role %q (want standalone, coordinator or worker)\n", cfg.role)
		return 2
	}

	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: handler,
		// Bound how long a client may dribble its request in; responses are
		// unbounded because a full-scale simulation legitimately takes a
		// while to compute before the first byte.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintln(stderr, banner)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, err)
		return 1
	case <-ctx.Done():
	}

	if preDrain != nil {
		preDrain()
	}
	fmt.Fprintln(stderr, "[memdep-server draining]")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if afterDrain != nil {
		afterDrain()
	}
	fmt.Fprintln(stderr, "[memdep-server stopped]")
	return 0
}

// workerName resolves the worker's fleet name: the -name flag, or
// hostname + listen address.
func workerName(cfg *config) string {
	if cfg.name != "" {
		return cfg.name
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return host + cfg.addr
}

// advertiseURL resolves the base URL the coordinator reaches the worker at:
// the -advertise flag, or loopback plus the listen address.
func advertiseURL(cfg *config) string {
	if cfg.advertise != "" {
		return cfg.advertise
	}
	if strings.HasPrefix(cfg.addr, ":") {
		return "http://127.0.0.1" + cfg.addr
	}
	return "http://" + cfg.addr
}
