package main

// Docs-freshness tests: the documented surface is generated from the same
// tables the server actually serves (serverRoutes, fleet.CoordinatorRoutes,
// newFlagSet), so a route or flag added without documentation fails CI.

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memdep/internal/fleet"
	"memdep/sim"
)

// repoFile reads a file relative to the repository root.
func repoFile(t *testing.T, rel string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatalf("reading %s: %v", rel, err)
	}
	return string(data)
}

// TestAPIDocCoversServerRoutes asserts every route any role serves appears
// in docs/API.md as a literal `METHOD /path` string.
func TestAPIDocCoversServerRoutes(t *testing.T) {
	doc := repoFile(t, filepath.Join("docs", "API.md"))
	seen := map[string]bool{}
	for _, r := range append(serverRoutes(), fleet.CoordinatorRoutes()...) {
		key := fmt.Sprintf("`%s %s`", r.Method, r.Pattern)
		if seen[key] {
			continue
		}
		seen[key] = true
		if !strings.Contains(doc, key) {
			t.Errorf("docs/API.md does not document %s", key)
		}
	}
}

// TestServerServesDeclaredRoutes asserts the standalone handler actually
// serves every route serverRoutes declares: no dead documentation, no
// undeclared handler.
func TestServerServesDeclaredRoutes(t *testing.T) {
	ts := httptest.NewServer(newHandler(sim.NewSession(), nil))
	defer ts.Close()
	for _, r := range serverRoutes() {
		req, err := http.NewRequest(r.Method, ts.URL+r.Pattern, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", r.Method, r.Pattern, err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, the declared route is not served", r.Method, r.Pattern, resp.StatusCode)
		}
	}
}

// TestREADMECoversCommands asserts every cmd/ binary is mentioned in the
// README's command overview.
func TestREADMECoversCommands(t *testing.T) {
	readme := repoFile(t, "README.md")
	entries, err := os.ReadDir(filepath.Join("..", "..", "cmd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(readme, e.Name()) {
			t.Errorf("README.md does not mention cmd/%s", e.Name())
		}
	}
}

// TestOperationsDocCoversServerFlags asserts every memdep-server flag is
// documented in docs/OPERATIONS.md.
func TestOperationsDocCoversServerFlags(t *testing.T) {
	doc := repoFile(t, filepath.Join("docs", "OPERATIONS.md"))
	fs, _ := newFlagSet()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "`-"+f.Name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document memdep-server -%s", f.Name)
		}
	})
}
