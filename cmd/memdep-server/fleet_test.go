package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memdep/internal/fleet"
	"memdep/sim"
)

// crashableWorker is a real worker server (full sim session) on a manual
// listener, so tests can kill it abruptly mid-request.
type crashableWorker struct {
	url string
	srv *http.Server
}

func startWorker(t *testing.T) *crashableWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := &crashableWorker{
		url: "http://" + ln.Addr().String(),
		srv: &http.Server{Handler: newHandler(sim.NewSession(sim.WithWorkers(2)), nil)},
	}
	go w.srv.Serve(ln) //nolint:errcheck // closed by crash/cleanup
	t.Cleanup(func() { w.srv.Close() })
	return w
}

// crash closes the listener and every active connection at once: in-flight
// proxied requests fail at the transport level, exactly like a killed
// process.
func (w *crashableWorker) crash() { w.srv.Close() }

func newFleet(t *testing.T, workers ...*crashableWorker) (*fleet.Coordinator, *httptest.Server) {
	t.Helper()
	coord := fleet.NewCoordinator(fleet.Config{HealthInterval: time.Hour})
	t.Cleanup(coord.Close)
	for i, w := range workers {
		if err := coord.Registry().Register(fmt.Sprintf("w%d", i+1), w.url); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	return coord, ts
}

// TestFleetRoutedSimulateMatchesDirect runs one request through a
// 1-coordinator/2-worker fleet and checks the routed result equals a direct
// facade run: the fleet changes where work runs, never what it computes.
func TestFleetRoutedSimulateMatchesDirect(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	_, ts := newFleet(t, w1, w2)

	body := `{"bench":"compress","stages":8,"policy":"ESYNC","max_instructions":40000}`
	status, routed := do(t, "POST", ts.URL+"/v1/simulate", body)
	if status != http.StatusOK {
		t.Fatalf("routed simulate: status = %d, body %s", status, routed)
	}
	var res sim.Result
	if err := json.Unmarshal(routed, &res); err != nil {
		t.Fatal(err)
	}
	direct, err := sim.NewSession().Run(context.Background(), sim.Request{
		Bench: "compress", Stages: 8, Policy: sim.PolicyESync, MaxInstructions: 40000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Cycles != direct.Cycles {
		t.Errorf("routed run: %d cycles, direct run: %d", res.Cycles, direct.Cycles)
	}
}

// gridCells posts a grid and decodes the NDJSON stream into cells + summary.
func gridCells(t *testing.T, url, body string) ([]fleet.GridCell, fleet.GridSummary) {
	t.Helper()
	resp, err := http.Post(url+"/v1/grid", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != fleet.NDJSONContentType {
		t.Fatalf("content type = %q, want %q", ct, fleet.NDJSONContentType)
	}
	var cells []fleet.GridCell
	var summary fleet.GridSummary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var sl fleet.GridSummaryLine
		if err := json.Unmarshal(line, &sl); err == nil && sl.Summary.Cells > 0 {
			summary = sl.Summary
			sawSummary = true
			continue
		}
		var cell fleet.GridCell
		if err := json.Unmarshal(line, &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		cells = append(cells, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary record")
	}
	return cells, summary
}

// TestFleetWorkerCrashMidGrid kills one of two workers while a streaming
// grid is in flight: every cell must arrive exactly once (rerouted, not
// duplicated or lost) and the killed worker must be demoted.
func TestFleetWorkerCrashMidGrid(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	coord, ts := newFleet(t, w1, w2)

	const cells = 12
	var reqs []string
	for i := 0; i < cells; i++ {
		reqs = append(reqs, fmt.Sprintf(`{"synth":{"seed":%d,"ops":30000},"stages":4}`, i+1))
	}
	body := `{"requests":[` + strings.Join(reqs, ",") + `],"stream":true}`

	// Crash the first worker shortly after the grid starts.
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		time.Sleep(50 * time.Millisecond)
		w1.crash()
	}()

	got, summary := gridCells(t, ts.URL, body)
	<-crashed

	seen := map[int]int{}
	for _, cell := range got {
		seen[cell.Index]++
		if cell.Error != "" {
			t.Errorf("cell %d errored despite a surviving worker: %s", cell.Index, cell.Error)
		}
	}
	for i := 0; i < cells; i++ {
		if seen[i] != 1 {
			t.Errorf("cell %d arrived %d times, want exactly once", i, seen[i])
		}
	}
	if summary.Cells != cells || summary.OK != cells || summary.Errors != 0 {
		t.Errorf("summary = %+v, want all %d cells ok", summary, cells)
	}
	st := coord.Stats()
	if st.Rerouted == 0 {
		// The crash may land after w1's share already finished on a fast
		// machine, but with 12 cells and a 50ms fuse some should be caught.
		t.Logf("note: no reroutes recorded (crash landed after w1's cells finished); stats = %+v", st)
	}
	if coord.Registry().Healthy() == 2 && st.Rerouted > 0 {
		t.Errorf("worker rerouted around but not demoted: %+v", st)
	}
}

// TestFleetCoordinatorRestart replaces the coordinator with a fresh one on
// the same address: the workers' heartbeats repopulate the new registry
// without any operator action.
func TestFleetCoordinatorRestart(t *testing.T) {
	w1 := startWorker(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	coord1 := fleet.NewCoordinator(fleet.Config{HealthInterval: time.Hour})
	srv1 := &http.Server{Handler: coord1.Handler()}
	go srv1.Serve(ln) //nolint:errcheck

	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Coordinator: "http://" + addr,
		Name:        "w1",
		URL:         w1.url,
		Interval:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	agentDone := make(chan struct{})
	go func() { defer close(agentDone); agent.Run(actx) }()

	waitForCond(t, time.Second, func() bool { return coord1.Registry().Healthy() == 1 })

	// Kill the coordinator, then bring a fresh one up on the same address
	// with an empty registry.
	srv1.Close()
	coord1.Close()
	coord2 := fleet.NewCoordinator(fleet.Config{HealthInterval: time.Hour})
	t.Cleanup(coord2.Close)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: coord2.Handler()}
	go srv2.Serve(ln2) //nolint:errcheck
	t.Cleanup(func() { srv2.Close() })

	// The worker's next heartbeat re-registers it with the new coordinator.
	waitForCond(t, 2*time.Second, func() bool { return coord2.Registry().Healthy() == 1 })

	// And the rebuilt fleet serves requests.
	status, body := do(t, "POST", "http://"+addr+"/v1/simulate", `{"synth":{"seed":1,"ops":4096}}`)
	if status != http.StatusOK {
		t.Fatalf("simulate after restart: status = %d, body %s", status, body)
	}

	// Agent shutdown drains the worker out of the new registry too.
	acancel()
	<-agentDone
	if coord2.Registry().Len() != 0 {
		t.Errorf("worker still registered after agent shutdown")
	}
}

// TestStandaloneStreamingFirstCellBeforeCompletion checks the point of the
// streaming mode: with one cheap and one expensive cell, the cheap cell's
// line arrives long before the stream finishes.
func TestStandaloneStreamingFirstCellBeforeCompletion(t *testing.T) {
	ts := httptest.NewServer(newHandler(sim.NewSession(sim.WithWorkers(2)), nil))
	t.Cleanup(ts.Close)

	body := `{"requests":[
		{"synth":{"seed":1,"ops":512},"stages":4},
		{"synth":{"seed":2,"ops":400000}}],"stream":true}`
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/grid", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	rd := bufio.NewReader(resp.Body)
	first, err := rd.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	firstAt := time.Since(start)
	var cell fleet.GridCell
	if err := json.Unmarshal(first, &cell); err != nil {
		t.Fatalf("first line %q: %v", first, err)
	}
	if cell.Error != "" {
		t.Fatalf("first cell errored: %s", cell.Error)
	}
	rest, err := io_ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	total := time.Since(start)
	if !bytes.Contains(rest, []byte(`"summary"`)) {
		t.Fatalf("stream missing summary: %s", rest)
	}
	// The cheap cell must beat the whole stream by a wide margin; 2x is
	// conservative (the expensive cell is ~800x the work).
	if firstAt*2 >= total {
		t.Errorf("first cell at %v of %v total: streaming did not deliver early", firstAt, total)
	}
}

// io_ReadAll reads the remainder of a bufio.Reader.
func io_ReadAll(rd *bufio.Reader) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(rd)
	return buf.Bytes(), err
}

// TestStandaloneStreamingMatchesBuffered checks the two grid modes compute
// identical results for the same requests.
func TestStandaloneStreamingMatchesBuffered(t *testing.T) {
	ts := newTestServer(t)
	reqs := `[{"synth":{"seed":1,"ops":8192},"stages":4},{"synth":{"seed":2,"ops":8192},"stages":8}]`

	status, buffered := do(t, "POST", ts.URL+"/v1/grid", `{"requests":`+reqs+`}`)
	if status != http.StatusOK {
		t.Fatalf("buffered grid: status = %d", status)
	}
	var bresp gridResponse
	if err := json.Unmarshal(buffered, &bresp); err != nil {
		t.Fatal(err)
	}

	cells, summary := gridCells(t, ts.URL, `{"requests":`+reqs+`,"stream":true}`)
	if len(cells) != len(bresp.Results) || summary.OK != len(cells) {
		t.Fatalf("streamed %d cells (summary %+v), buffered %d", len(cells), summary, len(bresp.Results))
	}
	if summary.Stats == nil {
		t.Fatal("streaming summary missing session stats")
	}
	for _, cell := range cells {
		var streamed sim.Result
		if err := json.Unmarshal(cell.Result, &streamed); err != nil {
			t.Fatal(err)
		}
		want := bresp.Results[cell.Index]
		if streamed.Cycles != want.Cycles || streamed.Instructions != want.Instructions {
			t.Errorf("cell %d: streamed %d cycles / %d instructions, buffered %d / %d",
				cell.Index, streamed.Cycles, streamed.Instructions, want.Cycles, want.Instructions)
		}
	}
}

// TestStandaloneAdmission saturates a limited server: the extra request is
// rejected with 429 + Retry-After, and capacity frees up afterwards.
func TestStandaloneAdmission(t *testing.T) {
	lim := fleet.NewLimiter(1, 0)
	ts := httptest.NewServer(newHandler(sim.NewSession(sim.WithWorkers(2)), lim))
	t.Cleanup(ts.Close)

	// Hold the only in-flight slot, exactly as a long-running admitted
	// request would.
	release, err := lim.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/simulate", strings.NewReader(`{"synth":{"seed":9,"ops":1024}}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// With the slot free again, the same request is admitted.
	release()
	if status, body := do(t, "POST", ts.URL+"/v1/simulate", `{"synth":{"seed":9,"ops":1024}}`); status != http.StatusOK {
		t.Fatalf("post-saturation request: status %d, body %s", status, body)
	}
}

// waitForCond polls cond until it holds or the deadline passes.
func waitForCond(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
