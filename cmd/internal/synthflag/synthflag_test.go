package synthflag

import (
	"flag"
	"io"
	"reflect"
	"testing"

	"memdep/sim"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnused(t *testing.T) {
	spec, err := parse(t).Spec()
	if err != nil || spec != nil {
		t.Fatalf("no flags: spec %+v err %v", spec, err)
	}
}

func TestEnableAlone(t *testing.T) {
	spec, err := parse(t, "-synth").Spec()
	if err != nil || spec == nil {
		t.Fatalf("-synth: spec %+v err %v", spec, err)
	}
	if !reflect.DeepEqual(spec, &sim.SynthSpec{}) {
		t.Errorf("-synth alone should give the zero spec, got %+v", spec)
	}
}

func TestParameterImpliesSynth(t *testing.T) {
	spec, err := parse(t, "-synth-seed", "9", "-synth-alias", "4").Spec()
	if err != nil || spec == nil {
		t.Fatalf("spec %+v err %v", spec, err)
	}
	if spec.Seed != 9 || spec.AliasSetSize != 4 {
		t.Errorf("got %+v", spec)
	}
}

func TestDistHistogram(t *testing.T) {
	spec, err := parse(t, "-synth-dist", "8:4, 32:2 ,128").Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.DistBucket{{Dist: 8, Weight: 4}, {Dist: 32, Weight: 2}, {Dist: 128, Weight: 1}}
	if !reflect.DeepEqual(spec.DepDists, want) {
		t.Errorf("got %+v want %+v", spec.DepDists, want)
	}
	for _, bad := range []string{"x", "8:y", ","} {
		if _, err := parse(t, "-synth-dist", bad).Spec(); err == nil {
			t.Errorf("dist %q: expected an error", bad)
		}
	}
}

func TestResolveBench(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	bench := fs.String("bench", "compress", "")
	f := Register(fs)
	if err := fs.Parse([]string{"-synth-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	name, spec, err := f.ResolveBench(*bench)
	if err != nil || name != "" || spec == nil || spec.Seed != 3 {
		t.Fatalf("name %q spec %+v err %v", name, spec, err)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	bench = fs.String("bench", "compress", "")
	f = Register(fs)
	if err := fs.Parse([]string{"-bench", "sc", "-synth"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ResolveBench(*bench); err == nil {
		t.Fatal("explicit -bench with -synth should conflict")
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	bench = fs.String("bench", "compress", "")
	f = Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	name, spec, err = f.ResolveBench(*bench)
	if err != nil || name != "compress" || spec != nil {
		t.Fatalf("default bench: name %q spec %+v err %v", name, spec, err)
	}
}
