// Package synthflag provides the shared -synth flag family of the CLIs:
// every binary that accepts a workload can swap the named benchmark for an
// inline synthetic spec (memdep/sim.SynthSpec) described entirely on the
// command line.
package synthflag

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"memdep/sim"
)

// Flags holds the registered -synth flag family.
type Flags struct {
	enabled bool

	name       string
	seed       uint64
	ops        int
	body       int
	taskSize   int
	taskSpread int
	loads      float64
	stores     float64
	deps       float64
	dist       string
	alias      int
	carried    float64

	fs *flag.FlagSet
}

// Register installs the -synth flag family on fs.  Zero values leave the
// generator defaults in place, so `-synth` alone selects the default
// synthetic workload.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{fs: fs}
	fs.BoolVar(&f.enabled, "synth", false, "simulate a generated synthetic workload instead of a named benchmark (the -synth-* flags parameterize it; any of them implies -synth)")
	fs.StringVar(&f.name, "synth-name", "", "synthetic workload display name (default \"synth\")")
	fs.Uint64Var(&f.seed, "synth-seed", 0, "synthetic generator seed; the same spec and seed always reproduce the same workload")
	fs.IntVar(&f.ops, "synth-ops", 0, "approximate committed dynamic instructions (0 = 32768)")
	fs.IntVar(&f.body, "synth-body", 0, "approximate static loop-body length (0 = 512)")
	fs.IntVar(&f.taskSize, "synth-task", 0, "mean task size in instructions (0 = 28)")
	fs.IntVar(&f.taskSpread, "synth-task-spread", 0, "half-width of the task-size distribution (0 = 12)")
	fs.Float64Var(&f.loads, "synth-loads", 0, "fraction of body slots that are loads (0 = 0.25)")
	fs.Float64Var(&f.stores, "synth-stores", 0, "fraction of body slots that are stores (0 = 0.15)")
	fs.Float64Var(&f.deps, "synth-deps", 0, "fraction of loads given an engineered store→load dependence (0 = 0.5)")
	fs.StringVar(&f.dist, "synth-dist", "", "dependence-distance histogram as dist:weight pairs, e.g. \"8:4,32:2,128:1\" (\"\" = that default)")
	fs.IntVar(&f.alias, "synth-alias", 0, "alias-set size: each dependence fires every k-th iteration only (0 = 1, every iteration)")
	fs.Float64Var(&f.carried, "synth-carried", 0, "fraction of dependences carried from the previous loop iteration (0 = 0.25)")
	return f
}

// ResolveBench combines the family with a -bench flag value: it returns the
// effective (bench, spec) workload selection, where the bench name is
// emptied when the family is in use.  An explicitly set -bench together
// with the family is an error; the bench flag's default value is not a
// conflict.
func (f *Flags) ResolveBench(bench string) (string, *sim.SynthSpec, error) {
	spec, err := f.Spec()
	if err != nil || spec == nil {
		return bench, spec, err
	}
	benchSet := false
	f.fs.Visit(func(fl *flag.Flag) { benchSet = benchSet || fl.Name == "bench" })
	if benchSet {
		return "", nil, fmt.Errorf("set either -bench or the -synth family, not both")
	}
	return "", spec, nil
}

// Spec returns the synthetic spec described by the flags, or nil when the
// family was not used.  Passing any -synth-* parameter implies -synth.
func (f *Flags) Spec() (*sim.SynthSpec, error) {
	used := f.enabled
	f.fs.Visit(func(fl *flag.Flag) {
		if strings.HasPrefix(fl.Name, "synth-") {
			used = true
		}
	})
	if !used {
		return nil, nil
	}
	spec := &sim.SynthSpec{
		Name:         f.name,
		Seed:         f.seed,
		Ops:          f.ops,
		Body:         f.body,
		TaskSize:     f.taskSize,
		TaskSpread:   f.taskSpread,
		LoadFrac:     f.loads,
		StoreFrac:    f.stores,
		DepFrac:      f.deps,
		AliasSetSize: f.alias,
		LoopCarried:  f.carried,
	}
	if f.dist != "" {
		dists, err := ParseDist(f.dist)
		if err != nil {
			return nil, err
		}
		spec.DepDists = dists
	}
	return spec, nil
}

// ParseDist parses a dependence-distance histogram of the form
// "dist:weight,dist:weight,..."; a bare "dist" means weight 1.
func ParseDist(s string) ([]sim.DistBucket, error) {
	var out []sim.DistBucket
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		distStr, weightStr, hasWeight := strings.Cut(part, ":")
		dist, err := strconv.Atoi(strings.TrimSpace(distStr))
		if err != nil {
			return nil, fmt.Errorf("invalid -synth-dist entry %q: bad distance", part)
		}
		weight := 1
		if hasWeight {
			weight, err = strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil {
				return nil, fmt.Errorf("invalid -synth-dist entry %q: bad weight", part)
			}
		}
		out = append(out, sim.DistBucket{Dist: dist, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("invalid -synth-dist %q: no buckets", s)
	}
	return out, nil
}
