// Package storeflag provides the shared -store flag family of the CLIs:
// every binary that runs simulations can point a persistent,
// content-addressed result store at a directory, so repeated identical runs
// -- across invocations, processes and CI jobs -- read their simulation
// results, synthetic programs and preprocessed work items back from disk
// instead of recomputing them.
package storeflag

import (
	"flag"
	"fmt"
	"io"

	"memdep/sim"
)

// Flags holds the registered -store flag family.
type Flags struct {
	dir string
}

// Register installs the -store flag family on fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.dir, "store", "",
		"persistent result-store directory shared across runs and processes; repeated identical simulations are read back from disk instead of recomputed (\"\" = in-memory cache only)")
	return f
}

// Dir returns the selected store directory ("" = disabled).
func (f *Flags) Dir() string { return f.dir }

// Options returns the session options selected by the family: empty when the
// store is disabled, sim.WithStore otherwise.
func (f *Flags) Options() []sim.Option {
	if f.dir == "" {
		return nil
	}
	return []sim.Option{sim.WithStore(f.dir)}
}

// PrintStats writes the store counter line for a finished run, one
// machine-greppable key=value list, when the session has a store attached.
// CI's warm-replay assertion parses it.
func PrintStats(w io.Writer, st sim.Stats) {
	if st.Store == nil {
		return
	}
	c := st.Store.Counters
	fmt.Fprintf(w, "[store: dir=%s hits=%d misses=%d bypassed=%d corrupt=%d writes=%d write_errors=%d]\n",
		st.Store.Dir, c.Hits, c.Misses, c.Bypassed, c.Corrupt, c.Writes, c.WriteErrors)
}
