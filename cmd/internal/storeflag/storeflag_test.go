package storeflag

import (
	"context"
	"flag"
	"io"
	"strings"
	"testing"

	"memdep/sim"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDisabledByDefault(t *testing.T) {
	f := parse(t)
	if f.Dir() != "" || len(f.Options()) != 0 {
		t.Fatalf("dir=%q options=%d, want disabled", f.Dir(), len(f.Options()))
	}
}

func TestOptionsEnableTheStore(t *testing.T) {
	dir := t.TempDir()
	f := parse(t, "-store", dir)
	if f.Dir() != dir {
		t.Fatalf("dir = %q", f.Dir())
	}
	opts := f.Options()
	if len(opts) != 1 {
		t.Fatalf("options = %d, want 1", len(opts))
	}
	s := sim.NewSession(opts...)
	if _, err := s.Run(context.Background(), sim.Request{Synth: &sim.SynthSpec{Seed: 2, Ops: 2048}}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Store == nil || st.Store.Dir != dir {
		t.Fatalf("stats store = %+v, want dir %q", st.Store, dir)
	}
}

func TestPrintStats(t *testing.T) {
	var b strings.Builder
	PrintStats(&b, sim.Stats{}) // no store: silent
	if b.Len() != 0 {
		t.Fatalf("output without a store: %q", b.String())
	}
	st := sim.Stats{Store: &sim.StoreStats{
		Dir:      "/tmp/cache",
		Counters: sim.StoreCounters{Hits: 3, Misses: 2, Writes: 2},
	}}
	PrintStats(&b, st)
	got := b.String()
	want := "[store: dir=/tmp/cache hits=3 misses=2 bypassed=0 corrupt=0 writes=2 write_errors=0]\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}
