package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a benchmark report into dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `{
  "go": "go1.24.0",
  "benchmarks": [
    {"name": "simulate/event", "ns_per_op": 1000, "allocs_per_op": 100},
    {"name": "simulate/event/setassoc", "ns_per_op": 800, "allocs_per_op": 100},
    {"name": "simulate/stepped", "ns_per_op": 1100, "allocs_per_op": 100},
    {"name": "sweep/quick/event/jobs=1", "seconds": 1.5}
  ]
}`

func runGate(t *testing.T, baselineJSON, candidateJSON string, extra ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	args := append([]string{
		"-baseline", write(t, dir, "base.json", baselineJSON),
		"-candidate", write(t, dir, "cand.json", candidateJSON),
	}, extra...)
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestPassWithinTolerance(t *testing.T) {
	cand := strings.ReplaceAll(baseline, `"ns_per_op": 1000`, `"ns_per_op": 1400`) // +40% < 50%
	code, out, stderr := runGate(t, baseline, cand)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "benchgate: ok") || strings.Contains(out, "FAIL") {
		t.Errorf("output:\n%s", out)
	}
}

func TestImprovementAlwaysPasses(t *testing.T) {
	cand := strings.ReplaceAll(baseline, `"ns_per_op": 1000`, `"ns_per_op": 100`)
	if code, _, stderr := runGate(t, baseline, cand); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

func TestTimeRegressionFails(t *testing.T) {
	cand := strings.ReplaceAll(baseline, `"ns_per_op": 800`, `"ns_per_op": 2000`) // +150%
	code, out, _ := runGate(t, baseline, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "FAIL simulate/event/setassoc: ns/op") {
		t.Errorf("output:\n%s", out)
	}
	// A wider tolerance lets the same candidate through.
	if code, _, _ := runGate(t, baseline, cand, "-time-tolerance", "2.0"); code != 0 {
		t.Error("tolerance 2.0 should pass a +150% regression")
	}
}

func TestAllocRegressionFails(t *testing.T) {
	cand := strings.ReplaceAll(baseline, `"allocs_per_op": 100}`, `"allocs_per_op": 120}`) // +20% > 10%
	code, out, _ := runGate(t, baseline, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "allocs/op") {
		t.Errorf("output:\n%s", out)
	}
}

func TestMissingEntryFails(t *testing.T) {
	cand := strings.Replace(baseline, `{"name": "simulate/event/setassoc", "ns_per_op": 800, "allocs_per_op": 100},`, "", 1)
	code, out, _ := runGate(t, baseline, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "missing from candidate") {
		t.Errorf("output:\n%s", out)
	}
}

func TestPrefixSelectsGatedEntries(t *testing.T) {
	// A stepped-core regression is outside the default simulate/event gate...
	cand := strings.ReplaceAll(baseline, `"ns_per_op": 1100`, `"ns_per_op": 9000`)
	if code, _, _ := runGate(t, baseline, cand); code != 0 {
		t.Fatal("simulate/stepped should not be gated by default")
	}
	// ...but fails under -prefix simulate/.
	if code, _, _ := runGate(t, baseline, cand, "-prefix", "simulate/"); code != 1 {
		t.Fatal("-prefix simulate/ should gate the stepped core")
	}
}

func TestZeroGatedEntriesFails(t *testing.T) {
	// A baseline with no entry under the gate prefix must fail hard: a
	// renamed prefix or truncated baseline would otherwise make the gate
	// vacuously pass every PR.
	empty := `{"go": "go1.24.0", "benchmarks": [{"name": "sweep/quick/event/jobs=1", "seconds": 1.5}]}`
	code, out, stderr := runGate(t, empty, empty)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(stderr, "no baseline entry matches prefix") {
		t.Errorf("stderr:\n%s", stderr)
	}
	if strings.Contains(out, "benchgate: ok") {
		t.Errorf("an empty gate must not report ok; stdout:\n%s", out)
	}
	// The same hard failure when only the prefix is wrong.
	if code, _, stderr := runGate(t, baseline, baseline, "-prefix", "simulate/renamed"); code != 1 {
		t.Fatalf("exit %d, want 1 for an unmatched prefix; stderr:\n%s", code, stderr)
	}
}

func TestBadInputs(t *testing.T) {
	if code, _, _ := runGate(t, "{not json", baseline); code != 2 {
		t.Error("malformed baseline should exit 2")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", "nope.json"}, &stdout, &stderr); code != 2 {
		t.Error("missing -candidate should exit 2")
	}
	if code := run([]string{"-baseline", "does-not-exist.json", "-candidate", "also-missing.json"}, &stdout, &stderr); code != 2 {
		t.Error("unreadable files should exit 2")
	}
}

func TestZeroMetricFails(t *testing.T) {
	// A gated metric that stops being emitted must not read as an
	// infinite improvement.
	cand := strings.ReplaceAll(baseline, `"ns_per_op": 1000`, `"ns_per_op": 0`)
	code, out, _ := runGate(t, baseline, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "metric missing from candidate") {
		t.Errorf("output:\n%s", out)
	}
}

func TestAllocCeilingFails(t *testing.T) {
	// Identical to the baseline, so the relative gates all pass; only the
	// absolute ceiling trips.
	code, out, _ := runGate(t, baseline, baseline, "-alloc-ceiling", "50")
	if code != 1 {
		t.Fatalf("exit %d, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "exceeds the absolute ceiling of 50") {
		t.Errorf("output:\n%s", out)
	}
	// At or under the ceiling the same comparison passes.
	if code, out, _ := runGate(t, baseline, baseline, "-alloc-ceiling", "100"); code != 0 {
		t.Fatalf("exit %d, want 0\noutput:\n%s", code, out)
	}
}
