// Command benchgate is the CI benchmark-regression gate: it compares a
// freshly generated BENCH_multiscalar.json (cmd/memdep-perf) against the
// committed baseline and fails when a gated entry regresses beyond the
// configured tolerance.
//
// Only entries whose name matches -prefix are gated (default: the
// simulate/event micro-benchmarks, the repo's hot path).  Time regressions
// are judged per-op (ns_per_op) against -time-tolerance; allocation
// regressions (allocs_per_op) against the much tighter -alloc-tolerance,
// because allocation counts are deterministic where wall-clock time is
// noisy.  -alloc-ceiling additionally enforces an absolute allocs/op bound
// on every gated entry, so the arena-reuse floor cannot erode gradually
// inside the relative tolerance.  Entries that are faster or leaner than
// the baseline always pass the relative gates; a gated baseline entry
// missing from the candidate fails, so a benchmark cannot dodge the gate by
// disappearing.
//
// Usage:
//
//	benchgate -baseline BENCH_multiscalar.json -candidate /tmp/new.json
//	benchgate -baseline ... -candidate ... -time-tolerance 0.5 -prefix simulate/
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// record mirrors the benchmark records of cmd/memdep-perf.
type record struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	Seconds     float64 `json:"seconds,omitempty"`
}

// report mirrors the file shape of cmd/memdep-perf.
type report struct {
	Go         string   `json:"go"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "BENCH_multiscalar.json", "committed benchmark file")
		candidate = fs.String("candidate", "", "freshly generated benchmark file (required)")
		prefix    = fs.String("prefix", "simulate/event", "gate entries whose name starts with this prefix")
		timeTol   = fs.Float64("time-tolerance", 0.5, "allowed fractional ns/op regression (0.5 = +50%)")
		allocTol  = fs.Float64("alloc-tolerance", 0.05, "allowed fractional allocs/op regression")
		allocCap  = fs.Int64("alloc-ceiling", 0, "absolute allocs/op ceiling for gated entries (0 = no ceiling)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *candidate == "" {
		fmt.Fprintln(stderr, "benchgate: -candidate is required")
		return 2
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	gated, failures := gate(base, cand, *prefix, *timeTol, *allocTol, *allocCap, stdout)
	if gated == 0 {
		// An empty gate is a broken gate, not a green one: a renamed prefix or
		// a truncated baseline must fail loudly instead of passing every PR.
		fmt.Fprintf(stderr, "benchgate: no baseline entry matches prefix %q in %s; the gate would vacuously pass\n",
			*prefix, *baseline)
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "benchgate: %d regression(s) beyond tolerance (time +%.0f%%, allocs +%.0f%%)\n",
			failures, *timeTol*100, *allocTol*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: ok (%d entries gated)\n", gated)
	return 0
}

// load reads and decodes one benchmark report.
func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return &rep, nil
}

// gate compares every gated baseline entry against the candidate, printing
// one verdict line per entry, and returns how many baseline entries were
// gated and how many failed.  A gated count of zero means the gate checked
// nothing; callers must treat that as a failure, not a pass.
func gate(base, cand *report, prefix string, timeTol, allocTol float64, allocCap int64, w io.Writer) (gated, failures int) {
	byName := make(map[string]record, len(cand.Benchmarks))
	for _, r := range cand.Benchmarks {
		byName[r.Name] = r
	}
	for _, b := range base.Benchmarks {
		if !strings.HasPrefix(b.Name, prefix) {
			continue
		}
		gated++
		c, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: present in baseline, missing from candidate\n", b.Name)
			failures++
			continue
		}
		ok = true
		if bad := exceeds(b.NsPerOp, c.NsPerOp, timeTol); bad != "" {
			fmt.Fprintf(w, "FAIL %s: ns/op %s\n", b.Name, bad)
			failures++
			ok = false
		}
		if bad := exceeds(b.AllocsPerOp, c.AllocsPerOp, allocTol); bad != "" {
			fmt.Fprintf(w, "FAIL %s: allocs/op %s\n", b.Name, bad)
			failures++
			ok = false
		}
		if allocCap > 0 && c.AllocsPerOp > allocCap {
			fmt.Fprintf(w, "FAIL %s: allocs/op %d exceeds the absolute ceiling of %d\n",
				b.Name, c.AllocsPerOp, allocCap)
			failures++
			ok = false
		}
		if ok {
			fmt.Fprintf(w, "ok   %s: ns/op %d -> %d (%+.1f%%), allocs/op %d -> %d, B/op %d -> %d\n",
				b.Name, b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp)*100,
				b.AllocsPerOp, c.AllocsPerOp, b.BytesPerOp, c.BytesPerOp)
		}
	}
	return gated, failures
}

// delta returns the fractional change from base to cand.
func delta(base, cand int64) float64 {
	if base <= 0 {
		return 0
	}
	return float64(cand-base) / float64(base)
}

// exceeds reports a non-empty description when cand regresses past the
// tolerance relative to base.  A base of 0 gates nothing (the metric was not
// recorded); a candidate of 0 against a live baseline fails -- a metric that
// stops being emitted must not read as an infinite improvement.
// Improvements never fail.
func exceeds(base, cand int64, tol float64) string {
	if base <= 0 {
		return ""
	}
	if cand <= 0 {
		return fmt.Sprintf("%d -> %d (metric missing from candidate)", base, cand)
	}
	if d := delta(base, cand); d > tol {
		return fmt.Sprintf("%d -> %d (%+.1f%%, tolerance +%.0f%%)", base, cand, d*100, tol*100)
	}
	return ""
}
