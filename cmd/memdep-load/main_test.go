package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"memdep/internal/fleet"
	"memdep/sim"
)

// fakeServer implements just enough of the memdep-server API for load
// tests: instant canned results, real NDJSON streaming.
func fakeServer(t *testing.T, simulateStatus int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		if simulateStatus != http.StatusOK {
			w.WriteHeader(simulateStatus)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"cycles": 123}`)
	})
	mux.HandleFunc("POST /v1/grid", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Requests []sim.Request `json:"requests"`
			Stream   bool          `json:"stream"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || !req.Stream {
			t.Errorf("grid request not streamed: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		sw := fleet.NewStreamWriter(w)
		for i := range req.Requests {
			cell := fleet.GridCell{Index: i, Result: json.RawMessage(`{"cycles": 123}`)}
			if req.Requests[i].Stages == 64 { // the error-injection marker
				cell = fleet.GridCell{Index: i, Error: "boom"}
			}
			sw.Write(cell) //nolint:errcheck
			time.Sleep(time.Millisecond)
		}
		sw.Write(fleet.GridSummaryLine{Summary: fleet.GridSummary{Cells: len(req.Requests), OK: len(req.Requests)}}) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func runLoad(t *testing.T, args ...string) (report, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d\nstderr: %s", args, code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, stdout.String())
	}
	return rep, stderr.String()
}

func TestGridMode(t *testing.T) {
	ts := fakeServer(t, http.StatusOK)
	rep, _ := runLoad(t, "-mode", "grid", "-cells", "16", "-target", "a="+ts.URL)
	if rep.Mode != "grid" || rep.Cells != 16 || rep.HostCPUs < 1 {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Targets) != 1 {
		t.Fatalf("targets = %+v", rep.Targets)
	}
	tr := rep.Targets[0]
	if tr.OK != 16 || tr.Errors != 0 {
		t.Errorf("ok=%d errors=%d, want 16/0", tr.OK, tr.Errors)
	}
	if tr.FirstCellMS <= 0 || tr.FirstCellMS > tr.WallMS {
		t.Errorf("first_cell_ms=%v wall_ms=%v", tr.FirstCellMS, tr.WallMS)
	}
	if tr.Throughput <= 0 || tr.ThroughputVsFirst != 1 {
		t.Errorf("throughput=%v ratio=%v", tr.Throughput, tr.ThroughputVsFirst)
	}
}

func TestSimulateMode(t *testing.T) {
	ts := fakeServer(t, http.StatusOK)
	rep, _ := runLoad(t, "-mode", "simulate", "-requests", "24", "-concurrency", "4", "-target", "a="+ts.URL)
	tr := rep.Targets[0]
	if tr.OK != 24 || tr.Errors != 0 {
		t.Errorf("ok=%d errors=%d, want 24/0", tr.OK, tr.Errors)
	}
	if tr.Latency == nil || tr.Latency.P50 <= 0 || tr.Latency.P99 < tr.Latency.P50 || tr.Latency.Max < tr.Latency.P99 {
		t.Errorf("latency = %+v", tr.Latency)
	}
}

func TestSimulateModeCountsErrors(t *testing.T) {
	ts := fakeServer(t, http.StatusInternalServerError)
	rep, _ := runLoad(t, "-mode", "simulate", "-requests", "8", "-target", "a="+ts.URL)
	if tr := rep.Targets[0]; tr.Errors != 8 || tr.OK != 0 {
		t.Errorf("ok=%d errors=%d, want 0/8", tr.OK, tr.Errors)
	}
}

func TestMultipleTargetsComputeRatio(t *testing.T) {
	a := fakeServer(t, http.StatusOK)
	b := fakeServer(t, http.StatusOK)
	rep, _ := runLoad(t, "-mode", "grid", "-cells", "8",
		"-target", "baseline="+a.URL, "-target", "fleet="+b.URL)
	if len(rep.Targets) != 2 {
		t.Fatalf("targets = %+v", rep.Targets)
	}
	if rep.Targets[0].ThroughputVsFirst != 1 {
		t.Errorf("baseline ratio = %v, want 1", rep.Targets[0].ThroughputVsFirst)
	}
	if rep.Targets[1].ThroughputVsFirst <= 0 {
		t.Errorf("fleet ratio = %v, want > 0", rep.Targets[1].ThroughputVsFirst)
	}
	if rep.Targets[0].Name != "baseline" || rep.Targets[1].Name != "fleet" {
		t.Errorf("target names = %q, %q", rep.Targets[0].Name, rep.Targets[1].Name)
	}
}

func TestBothMode(t *testing.T) {
	a := fakeServer(t, http.StatusOK)
	b := fakeServer(t, http.StatusOK)
	rep, _ := runLoad(t, "-mode", "both", "-cells", "4", "-requests", "6",
		"-target", "baseline="+a.URL, "-target", "fleet="+b.URL)
	if len(rep.Targets) != 4 {
		t.Fatalf("got %d target entries, want 2 targets x 2 modes", len(rep.Targets))
	}
	byKey := map[string]targetReport{}
	for _, tr := range rep.Targets {
		byKey[tr.Name+"/"+tr.Mode] = tr
	}
	for _, key := range []string{"baseline/grid", "baseline/simulate", "fleet/grid", "fleet/simulate"} {
		if _, ok := byKey[key]; !ok {
			t.Fatalf("missing entry %s in %+v", key, rep.Targets)
		}
	}
	if byKey["baseline/grid"].ThroughputVsFirst != 1 || byKey["baseline/simulate"].ThroughputVsFirst != 1 {
		t.Errorf("baseline ratios not 1: %+v", rep.Targets)
	}
	if byKey["fleet/simulate"].Latency == nil || byKey["fleet/grid"].FirstCellMS <= 0 {
		t.Errorf("mode-specific fields missing: %+v", rep.Targets)
	}
}

func TestOutFlagWritesFile(t *testing.T) {
	ts := fakeServer(t, http.StatusOK)
	path := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	if code := run([]string{"-mode", "grid", "-cells", "4", "-target", "a=" + ts.URL, "-out", path},
		&bytes.Buffer{}, &stderr); code != 0 {
		t.Fatalf("run = %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad file JSON: %v", err)
	}
	if rep.Targets[0].OK != 4 {
		t.Errorf("file report = %+v", rep)
	}
}

func TestBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-mode", "nope"}, &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("bad -mode exit = %d, want 2", code)
	}
	if code := run([]string{"-target", "missing-equals"}, &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("bad -target exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "NAME=URL") {
		t.Errorf("stderr missing -target usage hint: %s", stderr.String())
	}
}

func TestUnreachableTargetFails(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-mode", "grid", "-cells", "2", "-timeout", "2s",
		"-target", "down=http://127.0.0.1:1"}, &bytes.Buffer{}, &stderr)
	if code != 1 {
		t.Errorf("unreachable target exit = %d, want 1", code)
	}
}

// TestFlagSurface checks the full advertised flag surface parses and is
// echoed into the report.
func TestFlagSurface(t *testing.T) {
	ts := fakeServer(t, http.StatusOK)
	rep, _ := runLoad(t,
		"-mode", "grid", "-cells", "4", "-requests", "4", "-concurrency", "2",
		"-ops", "1000", "-seed", "42", "-timeout", "1m", "-target", "a="+ts.URL)
	if rep.Seed != 42 || rep.Ops != 1000 {
		t.Errorf("report did not echo flags: %+v", rep)
	}
}
