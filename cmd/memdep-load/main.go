// Command memdep-load drives synthetic request mixes against running
// memdep-server deployments -- standalone servers or coordinator-fronted
// fleets, which serve the same API -- and records latency and throughput.
//
// Each -target NAME=URL names one deployment; the same workload runs
// against every target in order, and each later target's throughput is
// reported as a ratio over the first, so a fleet can be compared against a
// standalone baseline in one invocation:
//
//	memdep-load -mode grid -cells 256 \
//	    -target standalone=http://127.0.0.1:8080 \
//	    -target fleet=http://127.0.0.1:9090 \
//	    -out BENCH_fleet.json
//
// Modes:
//
//   - grid: one streaming POST /v1/grid of -cells synthetic cells (distinct
//     seeds, a small stage/policy mix); records wall time, time to first
//     streamed cell, and cells/second.
//   - simulate: -requests individual POST /v1/simulate calls from
//     -concurrency workers; records p50/p99/mean/max latency and
//     requests/second.
//
// Every cell is a distinct seed derived from -seed, so a run computes real
// work instead of replaying one memoized result.  Repeating an invocation
// against the same server re-measures warm caches; pick a fresh -seed for
// cold numbers.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// target is one deployment under test.
type target struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// targetsFlag collects repeated -target NAME=URL flags.
type targetsFlag []target

// String renders the accumulated flags for -help.
func (f *targetsFlag) String() string {
	parts := make([]string, len(*f))
	for i, t := range *f {
		parts[i] = t.Name + "=" + t.URL
	}
	return strings.Join(parts, ",")
}

// Set parses one NAME=URL occurrence.
func (f *targetsFlag) Set(s string) error {
	name, url, ok := strings.Cut(s, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want NAME=URL, got %q", s)
	}
	*f = append(*f, target{Name: name, URL: url})
	return nil
}

// latencyStats summarizes per-request latencies in milliseconds.
type latencyStats struct {
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// targetReport is one target's measured results for one mode.
type targetReport struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Mode is the workload shape this entry measured (grid or simulate).
	Mode string `json:"mode"`
	// OK and Errors count request (or cell) outcomes.
	OK     int `json:"ok"`
	Errors int `json:"errors"`
	// WallMS is the wall-clock duration of the whole run.
	WallMS float64 `json:"wall_ms"`
	// Throughput is requests (simulate mode) or cells (grid mode) per second.
	Throughput float64 `json:"throughput_per_second"`
	// FirstCellMS is the time to the first streamed cell (grid mode only):
	// the streaming win is FirstCellMS << WallMS.
	FirstCellMS float64 `json:"first_cell_ms,omitempty"`
	// Latency summarizes per-request latency (simulate mode only).
	Latency *latencyStats `json:"latency,omitempty"`
	// ThroughputVsFirst is this target's throughput over the first target's
	// in the same mode (1 for the first target itself).
	ThroughputVsFirst float64 `json:"throughput_vs_first,omitempty"`
}

// report is the JSON document memdep-load writes.
type report struct {
	Go          string `json:"go"`
	MaxProcs    int    `json:"maxprocs"`
	HostCPUs    int    `json:"host_cpus"`
	Mode        string `json:"mode"`
	Cells       int    `json:"cells,omitempty"`
	Requests    int    `json:"requests,omitempty"`
	Concurrency int    `json:"concurrency,omitempty"`
	Ops         int    `json:"ops"`
	Seed        int    `json:"seed"`
	// Note carries free-form provenance (host caveats and the like).
	Note    string         `json:"note,omitempty"`
	Targets []targetReport `json:"targets"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config collects the parsed flag values.
type config struct {
	targets     targetsFlag
	mode        string
	cells       int
	requests    int
	concurrency int
	ops         int
	seed        int
	out         string
	note        string
	timeout     time.Duration
}

// newFlagSet declares the full flag surface; the docs tests enumerate it to
// hold docs/OPERATIONS.md to account.
func newFlagSet() (*flag.FlagSet, *config) {
	cfg := &config{}
	fs := flag.NewFlagSet("memdep-load", flag.ContinueOnError)
	fs.Var(&cfg.targets, "target", "deployment under test as NAME=URL (repeatable; the first is the ratio baseline; default server=http://127.0.0.1:8080)")
	fs.StringVar(&cfg.mode, "mode", "grid", "workload shape: grid (one streaming /v1/grid), simulate (individual /v1/simulate calls) or both")
	fs.IntVar(&cfg.cells, "cells", 64, "grid cells per run (grid mode)")
	fs.IntVar(&cfg.requests, "requests", 64, "total requests per run (simulate mode)")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "concurrent in-flight requests (simulate mode)")
	fs.IntVar(&cfg.ops, "ops", 20000, "dynamic instructions per synthetic cell")
	fs.IntVar(&cfg.seed, "seed", 1, "base seed; cell i uses seed+i, so every cell is distinct work")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report here instead of stdout")
	fs.StringVar(&cfg.note, "note", "", "free-form provenance note recorded in the report (e.g. host caveats)")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Minute, "per-target run timeout")
	return fs, cfg
}

// run is main with its environment injected, so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs, cfg := newFlagSet()
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(cfg.targets) == 0 {
		cfg.targets = targetsFlag{{Name: "server", URL: "http://127.0.0.1:8080"}}
	}
	modes := []string{cfg.mode}
	switch cfg.mode {
	case "grid", "simulate":
	case "both":
		modes = []string{"grid", "simulate"}
	default:
		fmt.Fprintf(stderr, "memdep-load: unknown -mode %q (want grid, simulate or both)\n", cfg.mode)
		return 2
	}

	rep := report{
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
		HostCPUs: runtime.NumCPU(),
		Mode:     cfg.mode,
		Ops:      cfg.ops,
		Seed:     cfg.seed,
		Note:     cfg.note,
	}
	client := &http.Client{Timeout: cfg.timeout}
	baseline := map[string]float64{} // first target's throughput, per mode
	for _, tgt := range cfg.targets {
		for _, m := range modes {
			var tr targetReport
			var err error
			switch m {
			case "grid":
				rep.Cells = cfg.cells
				tr, err = runGrid(client, tgt, cfg.cells, cfg.ops, cfg.seed)
			case "simulate":
				rep.Requests = cfg.requests
				rep.Concurrency = cfg.concurrency
				// Offset past the grid cells' seed range so in -mode both the
				// simulate phase computes fresh work instead of replaying the
				// grid's memoized results.
				tr, err = runSimulate(client, tgt, cfg.requests, cfg.concurrency, cfg.ops, cfg.seed+cfg.cells)
			}
			if err != nil {
				fmt.Fprintf(stderr, "memdep-load: target %s (%s): %v\n", tgt.Name, m, err)
				return 1
			}
			tr.Mode = m
			if base, ok := baseline[m]; !ok {
				baseline[m] = tr.Throughput
				tr.ThroughputVsFirst = 1
			} else if base > 0 {
				tr.ThroughputVsFirst = tr.Throughput / base
			}
			rep.Targets = append(rep.Targets, tr)
			fmt.Fprintf(stderr, "[memdep-load] %s %s: %.1f/s over %.0fms (%d ok, %d errors)\n",
				tgt.Name, m, tr.Throughput, tr.WallMS, tr.OK, tr.Errors)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data = append(data, '\n')
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	stdout.Write(data) //nolint:errcheck
	return 0
}

// cellBody builds the i-th synthetic request of the mix: a distinct seed
// and a small rotation of stage counts and speculation policies, so the
// fleet sees heterogeneous configurations rather than one repeated shape.
func cellBody(seed, i, ops int) string {
	stages := []int{4, 8}[i%2]
	policy := []string{"ESYNC", "ALWAYS"}[(i/2)%2]
	return fmt.Sprintf(`{"synth":{"seed":%d,"ops":%d},"stages":%d,"policy":%q}`, seed+i, ops, stages, policy)
}

// runGrid measures one streaming grid against the target.
func runGrid(client *http.Client, tgt target, cells, ops, seed int) (targetReport, error) {
	tr := targetReport{Name: tgt.Name, URL: tgt.URL}
	bodies := make([]string, cells)
	for i := range bodies {
		bodies[i] = cellBody(seed, i, ops)
	}
	body := `{"requests":[` + strings.Join(bodies, ",") + `],"stream":true}`

	start := time.Now()
	resp, err := client.Post(tgt.URL+"/v1/grid", "application/json", strings.NewReader(body))
	if err != nil {
		return tr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return tr, fmt.Errorf("grid returned %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}

	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Index   *int            `json:"index"`
			Error   string          `json:"error"`
			Summary json.RawMessage `json:"summary"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return tr, fmt.Errorf("bad stream line %q: %v", line, err)
		}
		switch {
		case rec.Summary != nil:
			sawSummary = true
		case rec.Error != "":
			tr.Errors++
		default:
			if tr.OK == 0 && tr.Errors == 0 {
				tr.FirstCellMS = ms(time.Since(start))
			}
			tr.OK++
		}
	}
	if err := sc.Err(); err != nil {
		return tr, err
	}
	if !sawSummary {
		return tr, fmt.Errorf("stream ended without a summary record")
	}
	tr.WallMS = ms(time.Since(start))
	if tr.WallMS > 0 {
		tr.Throughput = float64(tr.OK+tr.Errors) / (tr.WallMS / 1000)
	}
	return tr, nil
}

// runSimulate measures individual simulate calls from a worker pool.
func runSimulate(client *http.Client, tgt target, requests, concurrency, ops, seed int) (targetReport, error) {
	tr := targetReport{Name: tgt.Name, URL: tgt.URL}
	if concurrency < 1 {
		concurrency = 1
	}
	latencies := make([]time.Duration, requests)
	errs := make([]bool, requests)
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				resp, err := client.Post(tgt.URL+"/v1/simulate", "application/json",
					strings.NewReader(cellBody(seed, i, ops)))
				latencies[i] = time.Since(t0)
				if err != nil {
					errs[i] = true
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				errs[i] = resp.StatusCode != http.StatusOK
			}
		}()
	}
	for i := 0; i < requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	tr.WallMS = ms(time.Since(start))

	for _, bad := range errs {
		if bad {
			tr.Errors++
		} else {
			tr.OK++
		}
	}
	if tr.WallMS > 0 {
		tr.Throughput = float64(requests) / (tr.WallMS / 1000)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	tr.Latency = &latencyStats{
		P50:  ms(percentile(latencies, 0.50)),
		P99:  ms(percentile(latencies, 0.99)),
		Mean: ms(sum / time.Duration(len(latencies))),
		Max:  ms(latencies[len(latencies)-1]),
	}
	return tr, nil
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
