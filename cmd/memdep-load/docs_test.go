package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOperationsDocCoversLoadFlags asserts every memdep-load flag is
// documented in docs/OPERATIONS.md, so the harness's surface cannot drift
// out of the operator guide.
func TestOperationsDocCoversLoadFlags(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	fs, _ := newFlagSet()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "`-"+f.Name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document memdep-load -%s", f.Name)
		}
	})
}
