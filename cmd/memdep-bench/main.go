// Command memdep-bench regenerates the tables and figures of the paper's
// evaluation on the synthetic workload suite.
//
// Usage:
//
//	memdep-bench                     # run every experiment at full scale
//	memdep-bench -quick              # truncated runs (fast sanity check)
//	memdep-bench -experiment table3  # run a single experiment
//	memdep-bench -list               # list experiment identifiers
//	memdep-bench -csv                # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memdep/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id to run (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		quick      = flag.Bool("quick", false, "run truncated workloads (fast)")
		scale      = flag.Int("scale", 0, "override workload scale (0 = per-benchmark default)")
		maxInstr   = flag.Uint64("max-instructions", 0, "cap committed instructions per benchmark (0 = unlimited)")
		entries    = flag.Int("mdpt-entries", 64, "MDPT entries")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *maxInstr > 0 {
		opts.MaxInstructions = *maxInstr
	}
	opts.MDPTEntries = *entries
	runner := experiments.NewRunner(opts)

	var selected []experiments.NamedExperiment
	if *experiment == "all" {
		selected = experiments.All()
	} else {
		e, err := experiments.Lookup(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see the available experiments")
			os.Exit(1)
		}
		selected = []experiments.NamedExperiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", e.ID, tab.CSV())
		} else {
			fmt.Println(tab.Render())
			fmt.Printf("[%s completed in %.2fs]\n\n", e.ID, time.Since(start).Seconds())
		}
	}
}
