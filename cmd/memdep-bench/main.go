// Command memdep-bench regenerates the tables and figures of the paper's
// evaluation on the synthetic workload suite.  It is a thin client of the
// public facade (memdep/sim): every experiment runs through one sim.Session,
// so the tables share workloads, traces and timing results via the session
// cache, exactly like concurrent /v1/grid requests against memdep-server.
//
// Usage:
//
//	memdep-bench                     # run every experiment at full scale
//	memdep-bench -quick              # truncated runs (fast sanity check)
//	memdep-bench -experiment table3  # run a single experiment (see -list)
//	memdep-bench -list               # list experiment identifiers
//	memdep-bench -csv                # emit CSV instead of aligned text
//	memdep-bench -jobs 16            # size of the parallel worker pool
//	memdep-bench -md EXPERIMENTS.md  # regenerate the markdown results file
//
// The -synth flag family rebases the sensitivity-synth experiment on a
// custom generated workload:
//
//	memdep-bench -experiment sensitivity-synth -synth-seed 9 -synth-ops 100000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"memdep/cmd/internal/storeflag"
	"memdep/cmd/internal/synthflag"
	"memdep/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memdep-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", "experiment id to run (see -list), or \"all\"")
		list       = fs.Bool("list", false, "list available experiments and exit")
		quick      = fs.Bool("quick", false, "run truncated workloads (fast)")
		scale      = fs.Int("scale", 0, "override workload scale (0 = per-benchmark default)")
		maxInstr   = fs.Uint64("max-instructions", 0, "cap committed instructions per benchmark (0 = unlimited)")
		entries    = fs.Int("mdpt-entries", 64, "MDPT entries")
		predName   = fs.String("predictor", "full", "MDPT organization for the standard grids: \"full\", \"setassoc\" or \"storeset\"")
		ways       = fs.Int("mdpt-ways", 0, "associativity for the setassoc/storeset organizations (0 = default 4)")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned text")
		jobs       = fs.Int("jobs", 0, "session worker-pool size (0 = GOMAXPROCS)")
		md         = fs.String("md", "", "write the results as markdown to this file (e.g. EXPERIMENTS.md)")
		core       = fs.String("core", "event", "timing-simulator run loop: \"event\" or the \"stepped\" reference (identical output)")
	)
	synth := synthflag.Register(fs)
	storeFlags := storeflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range sim.Experiments() {
			fmt.Fprintf(stdout, "%-20s %s\n", e.ID, e.Description)
		}
		return 0
	}

	synthSpec, err := synth.Spec()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	opts := sim.SuiteOptions{
		Quick:           *quick,
		Scale:           *scale,
		MaxInstructions: *maxInstr,
		MDPTEntries:     *entries,
		Predictor:       sim.TableKind(*predName),
		MDPTWays:        *ways,
		Core:            sim.CoreMode(*core),
		Synth:           synthSpec,
	}
	session := sim.NewSession(append([]sim.Option{sim.WithWorkers(*jobs)}, storeFlags.Options()...)...)

	var selected []sim.Experiment
	if *experiment == "all" {
		selected = sim.Experiments()
	} else {
		e, err := sim.LookupExperiment(*experiment)
		if err != nil {
			fmt.Fprintln(stderr, err)
			fmt.Fprintln(stderr, "use -list to see the available experiments")
			return 1
		}
		selected = []sim.Experiment{e}
	}

	var mdOut *strings.Builder
	if *md != "" {
		mdOut = &strings.Builder{}
		writeMarkdownHeader(mdOut, opts)
	}

	for _, e := range selected {
		start := time.Now()
		tab, err := session.RunExperiment(context.Background(), e.ID, opts)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", e.ID, err)
			return 1
		}
		switch {
		case mdOut != nil:
			writeMarkdownTable(mdOut, e, tab)
			fmt.Fprintf(stderr, "[%s completed in %.2fs]\n", e.ID, time.Since(start).Seconds())
		case *csv:
			fmt.Fprintf(stdout, "# %s\n%s\n", e.ID, tab.CSV())
		default:
			fmt.Fprintln(stdout, tab.Render())
			fmt.Fprintf(stdout, "[%s completed in %.2fs]\n\n", e.ID, time.Since(start).Seconds())
		}
	}

	st := session.Stats()
	fmt.Fprintf(stderr, "[engine: %d workers, %d jobs executed, %d cache hits]\n",
		st.Workers, st.Executed, st.Hits)
	storeflag.PrintStats(stderr, st)

	if mdOut != nil {
		if err := os.WriteFile(*md, []byte(mdOut.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "[wrote %s]\n", *md)
	}
	return 0
}

// writeMarkdownHeader emits the preamble of EXPERIMENTS.md.  The run bounds
// report the effective options (quick preset materialized, table geometry
// clamped), not the raw flags.
func writeMarkdownHeader(b *strings.Builder, opts sim.SuiteOptions) {
	opts = opts.Effective()
	b.WriteString("# EXPERIMENTS\n\n")
	b.WriteString("Tables and figures of \"Dynamic Speculation and Synchronization of Data\n")
	b.WriteString("Dependences\" (Moshovos, Breach, Vijaykumar, Sohi; ISCA 1997), regenerated\n")
	b.WriteString("on the synthetic workload suite by `cmd/memdep-bench`.\n\n")
	if opts.Quick {
		b.WriteString("> Generated with `-quick` (truncated runs); regenerate at full scale with\n")
		b.WriteString("> `go run ./cmd/memdep-bench -md EXPERIMENTS.md`.\n\n")
	} else {
		b.WriteString("Generated with `go run ./cmd/memdep-bench -md EXPERIMENTS.md`.\n\n")
	}
	var bounds []string
	if opts.Scale > 0 {
		bounds = append(bounds, fmt.Sprintf("scale override %d", opts.Scale))
	}
	if opts.MaxInstructions > 0 {
		bounds = append(bounds, fmt.Sprintf("%d committed instructions per benchmark", opts.MaxInstructions))
	}
	if opts.Predictor != sim.TableFullAssoc {
		// Normalize applies the same geometry rules as the predictor, so the
		// reported ways are the clamped values the tables ran with.
		eff := sim.Request{MDPTEntries: opts.MDPTEntries, Predictor: opts.Predictor, MDPTWays: opts.MDPTWays}.Normalize()
		bounds = append(bounds, fmt.Sprintf("%s predictor organization (%d ways)", eff.Predictor, eff.MDPTWays))
	}
	if opts.Synth != nil {
		bounds = append(bounds, fmt.Sprintf("sensitivity-synth base spec %s", opts.Synth.CanonicalJSON()))
	}
	if len(bounds) > 0 {
		fmt.Fprintf(b, "Run bounds: %s.\n\n", strings.Join(bounds, ", "))
	}
}

// writeMarkdownTable emits one experiment as a fenced block (the aligned text
// rendering is already tabular; fencing keeps it intact in markdown).
func writeMarkdownTable(b *strings.Builder, e sim.Experiment, tab *sim.Table) {
	fmt.Fprintf(b, "## %s — %s\n\n", e.ID, e.Description)
	b.WriteString("```\n")
	b.WriteString(tab.Render())
	b.WriteString("```\n\n")
}
