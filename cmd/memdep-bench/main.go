// Command memdep-bench regenerates the tables and figures of the paper's
// evaluation on the synthetic workload suite.
//
// Usage:
//
//	memdep-bench                     # run every experiment at full scale
//	memdep-bench -quick              # truncated runs (fast sanity check)
//	memdep-bench -experiment table3  # run a single experiment
//	memdep-bench -list               # list experiment identifiers
//	memdep-bench -csv                # emit CSV instead of aligned text
//	memdep-bench -jobs 16            # size of the parallel worker pool
//	memdep-bench -md EXPERIMENTS.md  # regenerate the markdown results file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"memdep/internal/experiments"
	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id to run (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		quick      = flag.Bool("quick", false, "run truncated workloads (fast)")
		scale      = flag.Int("scale", 0, "override workload scale (0 = per-benchmark default)")
		maxInstr   = flag.Uint64("max-instructions", 0, "cap committed instructions per benchmark (0 = unlimited)")
		entries    = flag.Int("mdpt-entries", 64, "MDPT entries")
		predName   = flag.String("predictor", "full", "MDPT organization for the standard grids: \"full\", \"setassoc\" or \"storeset\"")
		ways       = flag.Int("mdpt-ways", 0, "associativity for the setassoc/storeset organizations (0 = default 4)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jobs       = flag.Int("jobs", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		md         = flag.String("md", "", "write the results as markdown to this file (e.g. EXPERIMENTS.md)")
		core       = flag.String("core", "event", "timing-simulator run loop: \"event\" or the \"stepped\" reference (identical output)")
	)
	flag.Parse()

	coreMode, err := multiscalar.ParseCoreMode(*core)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	table, err := memdep.ParseTableKind(*predName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *maxInstr > 0 {
		opts.MaxInstructions = *maxInstr
	}
	opts.MDPTEntries = *entries
	opts.PredictorTable = table
	opts.MDPTWays = *ways
	opts.Jobs = *jobs
	opts.Core = coreMode
	runner := experiments.NewRunner(opts)

	var selected []experiments.NamedExperiment
	if *experiment == "all" {
		selected = experiments.All()
	} else {
		e, err := experiments.Lookup(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see the available experiments")
			os.Exit(1)
		}
		selected = []experiments.NamedExperiment{e}
	}

	var mdOut *strings.Builder
	if *md != "" {
		mdOut = &strings.Builder{}
		writeMarkdownHeader(mdOut, opts, *quick)
	}

	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case mdOut != nil:
			writeMarkdownTable(mdOut, e, tab)
			fmt.Fprintf(os.Stderr, "[%s completed in %.2fs]\n", e.ID, time.Since(start).Seconds())
		case *csv:
			fmt.Printf("# %s\n%s\n", e.ID, tab.CSV())
		default:
			fmt.Println(tab.Render())
			fmt.Printf("[%s completed in %.2fs]\n\n", e.ID, time.Since(start).Seconds())
		}
	}

	eng := runner.Engine()
	fmt.Fprintf(os.Stderr, "[engine: %d workers, %d jobs executed, %d cache hits]\n",
		eng.Workers(), eng.Executed(), eng.Hits())

	if mdOut != nil {
		if err := os.WriteFile(*md, []byte(mdOut.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", *md)
	}
}

// writeMarkdownHeader emits the preamble of EXPERIMENTS.md.
func writeMarkdownHeader(b *strings.Builder, opts experiments.Options, quick bool) {
	b.WriteString("# EXPERIMENTS\n\n")
	b.WriteString("Tables and figures of \"Dynamic Speculation and Synchronization of Data\n")
	b.WriteString("Dependences\" (Moshovos, Breach, Vijaykumar, Sohi; ISCA 1997), regenerated\n")
	b.WriteString("on the synthetic workload suite by `cmd/memdep-bench`.\n\n")
	if quick {
		b.WriteString("> Generated with `-quick` (truncated runs); regenerate at full scale with\n")
		b.WriteString("> `go run ./cmd/memdep-bench -md EXPERIMENTS.md`.\n\n")
	} else {
		b.WriteString("Generated with `go run ./cmd/memdep-bench -md EXPERIMENTS.md`.\n\n")
	}
	var bounds []string
	if opts.Scale > 0 {
		bounds = append(bounds, fmt.Sprintf("scale override %d", opts.Scale))
	}
	if opts.MaxInstructions > 0 {
		bounds = append(bounds, fmt.Sprintf("%d committed instructions per benchmark", opts.MaxInstructions))
	}
	if opts.PredictorTable != memdep.TableFullAssoc {
		eff := memdep.Config{Entries: opts.MDPTEntries, Table: opts.PredictorTable, Ways: opts.MDPTWays}.Effective()
		bounds = append(bounds, fmt.Sprintf("%s predictor organization (%d ways)", opts.PredictorTable, eff.Ways))
	}
	if len(bounds) > 0 {
		fmt.Fprintf(b, "Run bounds: %s.\n\n", strings.Join(bounds, ", "))
	}
}

// writeMarkdownTable emits one experiment as a fenced block (the aligned text
// rendering is already tabular; fencing keeps it intact in markdown).
func writeMarkdownTable(b *strings.Builder, e experiments.NamedExperiment, tab *stats.Table) {
	fmt.Fprintf(b, "## %s — %s\n\n", e.ID, e.Description)
	b.WriteString("```\n")
	b.WriteString(tab.Render())
	b.WriteString("```\n\n")
}
