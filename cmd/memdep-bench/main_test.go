package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The golden files were captured from the pre-facade CLI; these tests pin
// the facade-backed rewrite to byte-identical output.  (The default text
// mode prints wall-clock timings, so the goldens use -csv and -list.)
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"table3.csv.golden", []string{"-quick", "-csv", "-experiment", "table3", "-jobs", "1"}},
		{"figure6.csv.golden", []string{"-quick", "-csv", "-experiment", "figure6", "-jobs", "1"}},
		{"list.golden", []string{"-list"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
			}
			if stdout.String() != string(want) {
				t.Errorf("output differs from the pre-redesign golden\n--- got ---\n%s\n--- want ---\n%s",
					stdout.String(), want)
			}
		})
	}
}

// TestMarkdownMode checks the -md path writes the EXPERIMENTS.md shape.
func TestMarkdownMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "EXPERIMENTS.md")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-quick", "-experiment", "table6", "-md", path, "-jobs", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"# EXPERIMENTS", "-quick", "## table6", "```"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("markdown output missing %q:\n%s", want, md)
		}
	}
}

// TestUnknownExperimentFails pins the error path.
func TestUnknownExperimentFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-experiment", "table99"}, &stdout, &stderr); code == 0 {
		t.Error("unknown experiment must fail")
	}
	if !bytes.Contains(stderr.Bytes(), []byte("-list")) {
		t.Errorf("error should point at -list: %s", stderr.String())
	}
}
