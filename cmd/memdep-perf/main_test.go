package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestReportStructure runs the micro-benchmarks (sweep skipped: its timings
// dominate test time) and checks the JSON trajectory keeps the names and
// fields CI asserts on.
func TestReportStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark runs are slow; skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	if code := run([]string{"-out", path, "-skip-sweep"}, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Go == "" || rep.MaxProcs < 1 {
		t.Errorf("incomplete report header: %+v", rep)
	}
	want := map[string]bool{
		"simulate/event":          false,
		"simulate/stepped":        false,
		"simulate/event/setassoc": false,
		"simulate/event/storeset": false,
	}
	for _, rec := range rep.Benchmarks {
		if _, ok := want[rec.Name]; ok {
			want[rec.Name] = true
			if rec.NsPerOp <= 0 || rec.Iterations <= 0 || rec.AllocsPerTask <= 0 {
				t.Errorf("%s: degenerate record %+v", rec.Name, rec)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trajectory record %q missing", name)
		}
	}
}
