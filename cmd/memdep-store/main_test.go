package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memdep/internal/store"
	"memdep/sim"
)

// seedStore runs a tiny simulation grid against dir so the store holds real
// objects of every persisted kind.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	s := sim.NewSession(sim.WithStore(dir))
	spec := &sim.SynthSpec{Seed: 5, Ops: 2048}
	_, err := s.RunGrid(context.Background(), []sim.Request{
		{Synth: spec, Stages: 4, Policy: sim.PolicyAlways},
		{Synth: spec, Stages: 4, Policy: sim.PolicyESync},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageAndBadSubcommand(t *testing.T) {
	if code, _, stderr := runCmd(t); code != 2 || !strings.Contains(stderr, "Subcommands") {
		t.Fatalf("no args: code=%d stderr=%q", code, stderr)
	}
	if code, _, _ := runCmd(t, "frobnicate"); code != 2 {
		t.Fatal("unknown subcommand must exit 2")
	}
	if code, out, _ := runCmd(t, "help"); code != 0 || !strings.Contains(out, "gc") {
		t.Fatalf("help: code=%d out=%q", code, out)
	}
}

func TestMissingStoreDir(t *testing.T) {
	t.Setenv("MEMDEP_STORE", "")
	for _, sub := range []string{"stats", "gc", "verify"} {
		if code, _, stderr := runCmd(t, sub); code != 2 || !strings.Contains(stderr, "MEMDEP_STORE") {
			t.Fatalf("%s without a dir: code=%d stderr=%q", sub, code, stderr)
		}
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	code, out, stderr := runCmd(t, "stats", "-store", dir)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{"objects", "multiscalar-simulate", "multiscalar-preprocess", "synth-build"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}

	// -json is machine-readable and agrees with the package walk.
	code, out, _ = runCmd(t, "stats", "-store", dir, "-json")
	if code != 0 {
		t.Fatal("stats -json failed")
	}
	var u store.DiskUsage
	if err := json.Unmarshal([]byte(out), &u); err != nil {
		t.Fatalf("stats -json not JSON: %v\n%s", err, out)
	}
	want, err := store.Usage(dir)
	if err != nil || u.Objects != want.Objects || u.Bytes != want.Bytes {
		t.Fatalf("json usage %+v, want %+v (err %v)", u, want, err)
	}

	// The env default stands in for -store.
	t.Setenv("MEMDEP_STORE", dir)
	if code, _, _ := runCmd(t, "stats"); code != 0 {
		t.Fatal("stats via MEMDEP_STORE failed")
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	if code, _, stderr := runCmd(t, "gc", "-store", dir); code != 2 || !strings.Contains(stderr, "-max-bytes") {
		t.Fatalf("gc without -max-bytes: code=%d stderr=%q", code, stderr)
	}
	code, out, _ := runCmd(t, "gc", "-store", dir, "-max-bytes", "0", "-json")
	if code != 0 {
		t.Fatalf("gc failed:\n%s", out)
	}
	var res store.GCResult
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatal(err)
	}
	if res.Kept != 0 || res.Evicted == 0 {
		t.Fatalf("gc to zero = %+v", res)
	}
	if u, _ := store.Usage(dir); u.Objects != 0 {
		t.Fatalf("%d objects survived gc to zero", u.Objects)
	}
}

func TestVerify(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	code, out, _ := runCmd(t, "verify", "-store", dir)
	if code != 0 || !strings.Contains(out, "checked") {
		t.Fatalf("clean verify: code=%d\n%s", code, out)
	}

	// Damage one object: verify fails, -delete repairs.
	var victim string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && victim == "" {
			victim = path
		}
		return err
	})
	if err != nil || victim == "" {
		t.Fatalf("no object to damage: %v", err)
	}
	if err := os.WriteFile(victim, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCmd(t, "verify", "-store", dir)
	if code != 1 || !strings.Contains(out, "bad") || !strings.Contains(stderr, "failed validation") {
		t.Fatalf("damaged verify: code=%d\n%s\n%s", code, out, stderr)
	}
	if code, _, _ := runCmd(t, "verify", "-store", dir, "-delete"); code != 1 {
		t.Fatal("verify -delete must still exit 1 on the pass that found damage")
	}
	if code, _, _ := runCmd(t, "verify", "-store", dir); code != 0 {
		t.Fatal("store not clean after verify -delete")
	}
}
