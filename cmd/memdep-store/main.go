// Command memdep-store maintains a persistent result-store directory (the
// -store directory of the simulation CLIs and $MEMDEP_STORE of
// memdep-server) from outside any simulation: it reports disk usage, evicts
// least-recently-used objects to a byte budget, and checksum-walks every
// object.
//
// Usage:
//
//	memdep-store stats  [-store DIR] [-json]
//	memdep-store gc     [-store DIR] -max-bytes N [-json]
//	memdep-store verify [-store DIR] [-delete] [-json]
//
// The store directory defaults to $MEMDEP_STORE.  All subcommands are safe
// to run while simulations use the directory: readers that lose an object to
// gc or verify -delete take a cache miss and recompute.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"memdep/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "stats":
		return runStats(args[1:], stdout, stderr)
	case "gc":
		return runGC(args[1:], stdout, stderr)
	case "verify":
		return runVerify(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `memdep-store maintains a persistent result-store directory.

Subcommands:
  stats   report object counts and bytes, split by job kind
  gc      evict least-recently-used objects until the store fits -max-bytes
  verify  checksum-walk every object; exit 1 if any fails validation

Common flags:
  -store DIR   store directory (default $MEMDEP_STORE)
  -json        emit machine-readable JSON instead of text
`)
}

// storeFS builds a subcommand flag set with the common -store/-json flags.
func storeFS(name string, stderr io.Writer) (*flag.FlagSet, *string, *bool) {
	fs := flag.NewFlagSet("memdep-store "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("store", os.Getenv("MEMDEP_STORE"), "store directory (default $MEMDEP_STORE)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	return fs, dir, jsonOut
}

// parse runs fs over args and checks the store directory was given.
func parse(fs *flag.FlagSet, args []string, dir *string, stderr io.Writer) (int, bool) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, false
		}
		return 2, false
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "no store directory: set -store or $MEMDEP_STORE")
		return 2, false
	}
	return 0, true
}

// printJSON writes v as indented JSON.
func printJSON(w io.Writer, v any) {
	data, _ := json.MarshalIndent(v, "", "  ")
	fmt.Fprintf(w, "%s\n", data)
}

func runStats(args []string, stdout, stderr io.Writer) int {
	fs, dir, jsonOut := storeFS("stats", stderr)
	if code, ok := parse(fs, args, dir, stderr); !ok {
		return code
	}
	u, err := store.Usage(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *jsonOut {
		printJSON(stdout, u)
		return 0
	}
	fmt.Fprintf(stdout, "store     %s\n", *dir)
	fmt.Fprintf(stdout, "objects   %d (%d bytes)\n", u.Objects, u.Bytes)
	kinds := make([]string, 0, len(u.Kinds))
	for k := range u.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ku := u.Kinds[k]
		fmt.Fprintf(stdout, "  %-24s %6d objects  %12d bytes\n", k, ku.Objects, ku.Bytes)
	}
	return 0
}

func runGC(args []string, stdout, stderr io.Writer) int {
	fs, dir, jsonOut := storeFS("gc", stderr)
	maxBytes := fs.Int64("max-bytes", -1, "evict least-recently-used objects until the store fits this many bytes")
	if code, ok := parse(fs, args, dir, stderr); !ok {
		return code
	}
	if *maxBytes < 0 {
		fmt.Fprintln(stderr, "gc requires -max-bytes")
		return 2
	}
	res, err := store.GC(*dir, *maxBytes)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *jsonOut {
		printJSON(stdout, res)
		return 0
	}
	fmt.Fprintf(stdout, "evicted   %d objects (%d bytes)\n", res.Evicted, res.EvictedBytes)
	fmt.Fprintf(stdout, "kept      %d objects (%d bytes, budget %d)\n", res.Kept, res.KeptBytes, *maxBytes)
	return 0
}

func runVerify(args []string, stdout, stderr io.Writer) int {
	fs, dir, jsonOut := storeFS("verify", stderr)
	deleteBad := fs.Bool("delete", false, "remove objects that fail validation")
	if code, ok := parse(fs, args, dir, stderr); !ok {
		return code
	}
	res, err := store.Verify(*dir, *deleteBad)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *jsonOut {
		printJSON(stdout, res)
	} else {
		fmt.Fprintf(stdout, "checked   %d objects (%d stale)\n", res.Checked, res.Stale)
		for _, b := range res.Bad {
			fmt.Fprintf(stdout, "bad       %s: %s\n", b.Path, b.Reason)
		}
	}
	if len(res.Bad) > 0 {
		action := "rewritten on their next miss"
		if *deleteBad {
			action = "deleted"
		}
		fmt.Fprintf(stderr, "%d objects failed validation (%s)\n", len(res.Bad), action)
		return 1
	}
	return 0
}
