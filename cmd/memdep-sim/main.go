// Command memdep-sim runs one benchmark on one or more Multiscalar
// configurations and prints the timing and dependence statistics.  It is a
// thin client of the public facade (memdep/sim): flags map one-to-one onto
// sim.Request fields, and a stage × policy grid becomes a single
// sim.Session.RunGrid call that fans out over the -jobs worker pool with the
// preprocessed work item shared by every simulation.
//
// Usage:
//
//	memdep-sim -bench compress -stages 8 -policy ESYNC
//	memdep-sim -bench 101.tomcatv -policy ALWAYS -max-instructions 200000
//	memdep-sim -bench compress -stages 4,8 -policy ALWAYS,ESYNC  # grid, in parallel
//	memdep-sim -synth -synth-seed 7 -synth-alias 4 -policy ESYNC # generated workload
//	memdep-sim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"memdep/cmd/internal/storeflag"
	"memdep/cmd/internal/synthflag"
	"memdep/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memdep-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench    = fs.String("bench", "compress", "benchmark name (see -list)")
		list     = fs.Bool("list", false, "list the benchmarks of the synthetic suite and exit")
		stages   = fs.String("stages", "8", "number of processing units; a comma-separated list runs the whole grid")
		polName  = fs.String("policy", "ESYNC", "speculation policy (NEVER, ALWAYS, WAIT, PSYNC a.k.a. PERFECT-SYNC, SYNC, ESYNC; case-insensitive); a comma-separated list runs the whole grid")
		scale    = fs.Int("scale", 0, "workload scale (0 = benchmark default)")
		maxInstr = fs.Uint64("max-instructions", 0, "cap committed instructions (0 = unlimited)")
		entries  = fs.Int("mdpt-entries", 64, "MDPT entries")
		predName = fs.String("predictor", "full", "MDPT organization: \"full\" (fully associative), \"setassoc\" (set-associative, load-PC-indexed) or \"storeset\"")
		ways     = fs.Int("mdpt-ways", 0, "associativity for the setassoc/storeset organizations (0 = default 4)")
		topPairs = fs.Int("top-pairs", 5, "print the N most frequently mis-speculated static pairs")
		jobs     = fs.Int("jobs", 0, "session worker-pool size for grid runs (0 = GOMAXPROCS)")
		core     = fs.String("core", "event", "timing-simulator run loop: \"event\" or the \"stepped\" reference (identical output)")
	)
	synth := synthflag.Register(fs)
	storeFlags := storeflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, b := range sim.Benchmarks() {
			fmt.Fprintf(stdout, "%-14s (%s, default scale %d)\n", b.Name, b.Suite, b.DefaultScale)
		}
		return 0
	}

	stageList, err := parseStages(*stages)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// A synthetic spec replaces the named benchmark for every grid cell.
	benchName, synthSpec, err := synth.ResolveBench(*bench)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var pols []sim.Policy
	for _, p := range strings.Split(*polName, ",") {
		pols = append(pols, sim.Policy(strings.TrimSpace(p)))
	}

	// Declare the stage × policy grid as one facade call.
	var reqs []sim.Request
	for _, st := range stageList {
		for _, pol := range pols {
			reqs = append(reqs, sim.Request{
				Bench:           benchName,
				Synth:           synthSpec,
				Stages:          st,
				Policy:          pol,
				Core:            sim.CoreMode(*core),
				Scale:           *scale,
				MaxInstructions: *maxInstr,
				MDPTEntries:     *entries,
				Predictor:       sim.TableKind(*predName),
				MDPTWays:        *ways,
			})
		}
	}
	session := sim.NewSession(append([]sim.Option{sim.WithWorkers(*jobs)}, storeFlags.Options()...)...)
	results, err := session.RunGrid(context.Background(), reqs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	for i, res := range results {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		printResult(stdout, res, *topPairs)
	}
	st := session.Stats()
	if len(results) > 1 {
		fmt.Fprintf(stdout, "\n[engine: %d workers, %d jobs executed, %d cache hits]\n",
			st.Workers, st.Executed, st.Hits)
	}
	storeflag.PrintStats(stderr, st)
	return 0
}

func parseStages(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			// Explicitly rejected rather than defaulted: the facade's
			// zero-value default (8) differs from the old internal one (4),
			// so a silent fallback would quietly simulate another machine.
			return nil, fmt.Errorf("invalid -stages value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func printResult(w io.Writer, res *sim.Result, topPairs int) {
	req := res.Request
	fmt.Fprintf(w, "benchmark        %s (scale %d)\n", req.WorkloadName(), req.Scale)
	cfgLine := fmt.Sprintf("%d stages, policy %v, %d MDPT entries", req.Stages, req.Policy, req.MDPTEntries)
	if req.Predictor != sim.TableFullAssoc {
		// The request echoes the effective geometry (defaults applied, ways
		// clamped), not the raw flag values.
		cfgLine += fmt.Sprintf(", %s organization (%d ways)", req.Predictor, req.MDPTWays)
	}
	fmt.Fprintf(w, "configuration    %s\n", cfgLine)
	fmt.Fprintf(w, "instructions     %d (%d loads, %d stores, %d tasks, %.1f instr/task)\n",
		res.Instructions, res.Loads, res.Stores, res.Tasks, res.AvgTaskSize)
	fmt.Fprintf(w, "cycles           %d\n", res.Cycles)
	fmt.Fprintf(w, "IPC              %.3f\n", res.IPC)
	fmt.Fprintf(w, "mis-speculations %d (%.4f per committed load)\n",
		res.Misspeculations, res.MisspecsPerLoad)
	fmt.Fprintf(w, "squashes         %d (%d instructions of work discarded)\n",
		res.Squashes, res.SquashedInstructions)
	fmt.Fprintf(w, "loads delayed    %d (%d cycles total, %d released without a signal)\n",
		res.LoadsWaited, res.WaitCycles, res.FalseDependenceReleases)
	if res.UsesPredictor() {
		fmt.Fprintf(w, "prediction breakdown (P/A %% of loads): N/N %.2f  N/Y %.2f  Y/N %.2f  Y/Y %.2f\n",
			res.Breakdown.Percent(0, 0), res.Breakdown.Percent(0, 1),
			res.Breakdown.Percent(1, 0), res.Breakdown.Percent(1, 1))
		fmt.Fprintf(w, "MDPT/MDST        %d mis-speculations learned, %d loads made to wait, %d released by stores\n",
			res.MemDep.Misspeculations, res.MemDep.LoadsMadeToWait, res.MemDep.LoadsReleasedByStore)
	}
	fmt.Fprintf(w, "memory           %d data accesses (%d misses), %d instruction misses, %d bus transfers\n",
		res.Cache.DataAccesses, res.Cache.DataMisses, res.Cache.InstrMisses, res.Cache.BusTransfers)
	fmt.Fprintf(w, "ARB              %d loads, %d stores, %d violations, %d bypasses (bank overflow)\n",
		res.ARB.Loads, res.ARB.Stores, res.ARB.Violations, res.ARBBypasses)
	fmt.Fprintf(w, "sequencer        %d dispatches, %d mispredictions (%.1f%% accuracy)\n",
		res.Sequencer.TaskDispatches, res.Sequencer.Mispredictions, res.Sequencer.PredictorAcc*100)

	if topPairs > 0 && len(res.MisspecPairs) > 0 {
		fmt.Fprintf(w, "hottest mis-speculated static pairs:\n")
		for i, pc := range res.MisspecPairs {
			if i >= topPairs {
				break
			}
			fmt.Fprintf(w, "  %6d  store @%d (%s)  ->  load @%d (%s)\n",
				pc.Count, pc.StoreIndex, pc.Store, pc.LoadIndex, pc.Load)
		}
	}
}
