// Command memdep-sim runs a single benchmark on a single Multiscalar
// configuration and prints the timing and dependence statistics.
//
// Usage:
//
//	memdep-sim -bench compress -stages 8 -policy ESYNC
//	memdep-sim -bench 101.tomcatv -policy ALWAYS -max-instructions 200000
//	memdep-sim -bench compress -stages 4,8 -policy ALWAYS,ESYNC  # grid, in parallel
//	memdep-sim -list
//
// When -stages or -policy lists several values the full cross product is
// submitted to the job engine as one job set and executed on -jobs workers;
// the work item is preprocessed once and shared by every simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"memdep/internal/engine"
	"memdep/internal/experiments"
	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/program"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "compress", "benchmark name")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		stages   = flag.String("stages", "8", "number of processing units (comma-separated list for a grid)")
		polName  = flag.String("policy", "ESYNC", "speculation policy (NEVER, ALWAYS, WAIT, PSYNC a.k.a. PERFECT-SYNC, SYNC, ESYNC; case-insensitive); comma-separated list for a grid")
		scale    = flag.Int("scale", 0, "workload scale (0 = benchmark default)")
		maxInstr = flag.Uint64("max-instructions", 0, "cap committed instructions (0 = unlimited)")
		entries  = flag.Int("mdpt-entries", 64, "MDPT entries")
		predName = flag.String("predictor", "full", "MDPT organization: \"full\" (fully associative), \"setassoc\" (set-associative, load-PC-indexed) or \"storeset\"")
		ways     = flag.Int("mdpt-ways", 0, "associativity for the setassoc/storeset organizations (0 = default 4)")
		topPairs = flag.Int("top-pairs", 5, "print the N most frequently mis-speculated static pairs")
		jobs     = flag.Int("jobs", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		core     = flag.String("core", "event", "timing-simulator run loop: \"event\" or the \"stepped\" reference (identical output)")
	)
	flag.Parse()

	coreMode, err := multiscalar.ParseCoreMode(*core)
	if err != nil {
		fatal(err)
	}
	table, err := memdep.ParseTableKind(*predName)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, name := range workload.Names() {
			w := workload.MustGet(name)
			fmt.Printf("%-14s (%s, default scale %d)\n", name, w.Suite, w.DefaultScale)
		}
		return
	}

	wl, err := workload.Get(*bench)
	if err != nil {
		fatal(err)
	}
	stageList, err := parseStages(*stages)
	if err != nil {
		fatal(err)
	}
	var pols []policy.Kind
	for _, p := range strings.Split(*polName, ",") {
		pol, err := policy.Parse(strings.TrimSpace(p))
		if err != nil {
			fatal(err)
		}
		pols = append(pols, pol)
	}
	s := *scale
	if s <= 0 {
		s = wl.DefaultScale
	}

	eng := experiments.NewEngine(*jobs)
	progSpec := workload.BuildJob{Name: *bench, Scale: s}
	itemSpec := multiscalar.PreprocessJob{
		Program: progSpec,
		Trace:   trace.Config{MaxInstructions: *maxInstr},
	}

	// Declare the stage × policy grid as one job set.
	b := eng.NewBatch()
	type run struct {
		stages int
		pol    policy.Kind
		ref    engine.Ref
	}
	var runs []run
	for _, st := range stageList {
		for _, pol := range pols {
			cfg := multiscalar.DefaultConfig(st, pol)
			cfg.MemDep.Entries = *entries
			cfg.MemDep.Table = table
			cfg.MemDep.Ways = *ways
			cfg.Core = coreMode
			runs = append(runs, run{st, pol, b.Add(multiscalar.SimulateJob{Item: itemSpec, Config: cfg})})
		}
	}
	if err := b.Run(); err != nil {
		fatal(err)
	}
	prog, err := engine.Resolve[*program.Program](eng, progSpec)
	if err != nil {
		fatal(err)
	}
	item, err := engine.Resolve[*multiscalar.WorkItem](eng, itemSpec)
	if err != nil {
		fatal(err)
	}

	for i, rn := range runs {
		if i > 0 {
			fmt.Println()
		}
		res := engine.Get[multiscalar.Result](b, rn.ref)
		// Report the effective geometry (defaults applied, ways clamped),
		// not the raw flag values.
		effMD := memdep.Config{Entries: *entries, Table: table, Ways: *ways}.Effective()
		printResult(*bench, s, rn.stages, rn.pol, *entries, table, effMD.Ways, item, prog, res, *topPairs)
	}
	if len(runs) > 1 {
		fmt.Printf("\n[engine: %d workers, %d jobs executed, %d cache hits]\n",
			eng.Workers(), eng.Executed(), eng.Hits())
	}
}

func parseStages(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid -stages value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func printResult(bench string, scale, stages int, pol policy.Kind, entries int,
	table memdep.TableKind, ways int,
	item *multiscalar.WorkItem, prog *program.Program, res multiscalar.Result, topPairs int) {
	fmt.Printf("benchmark        %s (scale %d)\n", bench, scale)
	cfgLine := fmt.Sprintf("%d stages, policy %v, %d MDPT entries", stages, pol, entries)
	if table != memdep.TableFullAssoc {
		cfgLine += fmt.Sprintf(", %s organization (%d ways)", table, ways)
	}
	fmt.Printf("configuration    %s\n", cfgLine)
	fmt.Printf("instructions     %d (%d loads, %d stores, %d tasks, %.1f instr/task)\n",
		res.Instructions, res.Loads, res.Stores, res.Tasks, item.AvgTaskSize())
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("IPC              %.3f\n", res.IPC())
	fmt.Printf("mis-speculations %d (%.4f per committed load)\n",
		res.Misspeculations, res.MisspecsPerCommittedLoad())
	fmt.Printf("squashes         %d (%d instructions of work discarded)\n",
		res.Squashes, res.SquashedInstructions)
	fmt.Printf("loads delayed    %d (%d cycles total, %d released without a signal)\n",
		res.LoadsWaited, res.WaitCycles, res.FalseDependenceReleases)
	if pol.UsesPredictor() {
		fmt.Printf("prediction breakdown (P/A %% of loads): N/N %.2f  N/Y %.2f  Y/N %.2f  Y/Y %.2f\n",
			res.Breakdown.Percent(0, 0), res.Breakdown.Percent(0, 1),
			res.Breakdown.Percent(1, 0), res.Breakdown.Percent(1, 1))
		fmt.Printf("MDPT/MDST        %d mis-speculations learned, %d loads made to wait, %d released by stores\n",
			res.MemDep.Misspeculations, res.MemDep.LoadsMadeToWait, res.MemDep.LoadsReleasedByStore)
	}
	fmt.Printf("memory           %d data accesses (%d misses), %d instruction misses, %d bus transfers\n",
		res.Cache.DataAccesses, res.Cache.DataMisses, res.Cache.InstrMisses, res.Cache.BusTransfers)
	fmt.Printf("ARB              %d loads, %d stores, %d violations, %d bypasses (bank overflow)\n",
		res.ARB.Loads, res.ARB.Stores, res.ARB.Violations, res.ARBBypasses)
	fmt.Printf("sequencer        %d dispatches, %d mispredictions (%.1f%% accuracy)\n",
		res.Sequencer.TaskDispatches, res.Sequencer.Mispredictions, res.Sequencer.PredictorAcc*100)

	if topPairs > 0 && len(res.MisspecPairs) > 0 {
		fmt.Printf("hottest mis-speculated static pairs:\n")
		for i, pc := range memdep.SortedPairCounts(res.MisspecPairs) {
			if i >= topPairs {
				break
			}
			si, li := prog.Index(pc.Pair.StorePC), prog.Index(pc.Pair.LoadPC)
			fmt.Printf("  %6d  store @%d (%s)  ->  load @%d (%s)\n",
				pc.N, si, prog.Code[si], li, prog.Code[li])
		}
	}
}
