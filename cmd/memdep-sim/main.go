// Command memdep-sim runs a single benchmark on a single Multiscalar
// configuration and prints the timing and dependence statistics.
//
// Usage:
//
//	memdep-sim -bench compress -stages 8 -policy ESYNC
//	memdep-sim -bench 101.tomcatv -policy ALWAYS -max-instructions 200000
//	memdep-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "compress", "benchmark name")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		stages   = flag.Int("stages", 8, "number of processing units")
		polName  = flag.String("policy", "ESYNC", "speculation policy (NEVER, ALWAYS, WAIT, PSYNC, SYNC, ESYNC)")
		scale    = flag.Int("scale", 0, "workload scale (0 = benchmark default)")
		maxInstr = flag.Uint64("max-instructions", 0, "cap committed instructions (0 = unlimited)")
		entries  = flag.Int("mdpt-entries", 64, "MDPT entries")
		topPairs = flag.Int("top-pairs", 5, "print the N most frequently mis-speculated static pairs")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			w := workload.MustGet(name)
			fmt.Printf("%-14s (%s, default scale %d)\n", name, w.Suite, w.DefaultScale)
		}
		return
	}

	wl, err := workload.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pol, err := policy.Parse(*polName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := *scale
	if s <= 0 {
		s = wl.DefaultScale
	}
	prog := wl.Build(s)

	item, err := multiscalar.Preprocess(prog, trace.Config{MaxInstructions: *maxInstr})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := multiscalar.DefaultConfig(*stages, pol)
	cfg.MemDep.Entries = *entries
	res, err := multiscalar.Simulate(item, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s (scale %d)\n", *bench, s)
	fmt.Printf("configuration    %d stages, policy %v, %d MDPT entries\n", *stages, pol, *entries)
	fmt.Printf("instructions     %d (%d loads, %d stores, %d tasks, %.1f instr/task)\n",
		res.Instructions, res.Loads, res.Stores, res.Tasks, item.AvgTaskSize())
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("IPC              %.3f\n", res.IPC())
	fmt.Printf("mis-speculations %d (%.4f per committed load)\n",
		res.Misspeculations, res.MisspecsPerCommittedLoad())
	fmt.Printf("squashes         %d (%d instructions of work discarded)\n",
		res.Squashes, res.SquashedInstructions)
	fmt.Printf("loads delayed    %d (%d cycles total, %d released without a signal)\n",
		res.LoadsWaited, res.WaitCycles, res.FalseDependenceReleases)
	if pol.UsesPredictor() {
		fmt.Printf("prediction breakdown (P/A %% of loads): N/N %.2f  N/Y %.2f  Y/N %.2f  Y/Y %.2f\n",
			res.Breakdown.Percent(0, 0), res.Breakdown.Percent(0, 1),
			res.Breakdown.Percent(1, 0), res.Breakdown.Percent(1, 1))
		fmt.Printf("MDPT/MDST        %d mis-speculations learned, %d loads made to wait, %d released by stores\n",
			res.MemDep.Misspeculations, res.MemDep.LoadsMadeToWait, res.MemDep.LoadsReleasedByStore)
	}
	fmt.Printf("memory           %d data accesses (%d misses), %d instruction misses, %d bus transfers\n",
		res.Cache.DataAccesses, res.Cache.DataMisses, res.Cache.InstrMisses, res.Cache.BusTransfers)
	fmt.Printf("sequencer        %d dispatches, %d mispredictions (%.1f%% accuracy)\n",
		res.Sequencer.TaskDispatches, res.Sequencer.Mispredictions, res.Sequencer.PredictorAcc*100)

	if *topPairs > 0 && len(res.MisspecPairs) > 0 {
		type pairCount struct {
			pair memdep.PairKey
			n    uint64
		}
		pairs := make([]pairCount, 0, len(res.MisspecPairs))
		for k, v := range res.MisspecPairs {
			pairs = append(pairs, pairCount{k, v})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].n > pairs[j].n })
		fmt.Printf("hottest mis-speculated static pairs:\n")
		for i, pc := range pairs {
			if i >= *topPairs {
				break
			}
			si, li := prog.Index(pc.pair.StorePC), prog.Index(pc.pair.LoadPC)
			fmt.Printf("  %6d  store @%d (%s)  ->  load @%d (%s)\n",
				pc.n, si, prog.Code[si], li, prog.Code[li])
		}
	}
}
