package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The golden files were captured from the pre-facade CLI (flag→config
// assembly by hand); these tests pin the facade-backed rewrite to
// byte-identical output.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"single.golden", []string{"-bench", "compress", "-stages", "8", "-policy", "ESYNC", "-max-instructions", "40000"}},
		{"grid.golden", []string{"-bench", "compress", "-stages", "4,8", "-policy", "ALWAYS,ESYNC", "-max-instructions", "40000", "-jobs", "1"}},
		{"setassoc.golden", []string{"-bench", "sc", "-stages", "8", "-policy", "SYNC", "-predictor", "setassoc", "-mdpt-ways", "2", "-max-instructions", "40000"}},
		{"list.golden", []string{"-list"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
			}
			if stdout.String() != string(want) {
				t.Errorf("output differs from the pre-redesign golden\n--- got ---\n%s\n--- want ---\n%s",
					stdout.String(), want)
			}
		})
	}
}

// TestBadFlagsFail pins the error paths.
func TestBadFlagsFail(t *testing.T) {
	cases := [][]string{
		{"-bench", "no-such-benchmark"},
		{"-policy", "SOMETIMES"},
		{"-stages", "eight"},
		{"-core", "polling"},
		{"-predictor", "cam"},
		{"-bench", "compress", "-synth"},
		{"-synth-dist", "bogus"},
		{"-synth-ops", "-4"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("args %v: want non-zero exit", args)
		}
		if stderr.Len() == 0 {
			t.Errorf("args %v: no error message", args)
		}
	}
}
