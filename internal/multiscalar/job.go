package multiscalar

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/program"
	"memdep/internal/trace"
)

// PreprocessKind is the engine job kind that turns a program into a WorkItem.
const PreprocessKind = "multiscalar/preprocess"

// SimulateKind is the engine job kind for a Multiscalar timing simulation.
const SimulateKind = "multiscalar/simulate"

// PreprocessJob is the engine spec for running a program on the functional
// simulator and building the task-structured work item.  Program must resolve
// to a *program.Program (typically a workload.BuildJob).  The job resolves to
// a *multiscalar.WorkItem, which is immutable and shared by every simulation
// that consumes it.
type PreprocessJob struct {
	Program engine.Spec
	Trace   trace.Config
}

// JobKind implements engine.Spec.
func (PreprocessJob) JobKind() string { return PreprocessKind }

// CacheKey implements engine.Spec.
func (j PreprocessJob) CacheKey() string {
	return fmt.Sprintf("%s|max=%d,tasklen=%d",
		engine.Key(j.Program), j.Trace.MaxInstructions, j.Trace.MaxTaskLen)
}

// preprocessSimulator executes PreprocessJob specs.
type preprocessSimulator struct{}

// PreprocessSimulator returns the engine simulator for the
// multiscalar/preprocess kind.
func PreprocessSimulator() engine.Simulator { return preprocessSimulator{} }

func (preprocessSimulator) JobKind() string { return PreprocessKind }

func (preprocessSimulator) Simulate(ctx context.Context, eng *engine.Engine, spec engine.Spec) (any, error) {
	job, ok := spec.(PreprocessJob)
	if !ok {
		return nil, fmt.Errorf("multiscalar: spec %T is not a PreprocessJob", spec)
	}
	p, err := engine.Resolve[*program.Program](ctx, eng, job.Program)
	if err != nil {
		return nil, err
	}
	return Preprocess(p, job.Trace)
}

// SimulateJob is the engine spec for one timing simulation.  Item must
// resolve to a *multiscalar.WorkItem (typically a PreprocessJob).  The job
// resolves to a multiscalar.Result.
type SimulateJob struct {
	Item   engine.Spec
	Config Config
}

// JobKind implements engine.Spec.
func (SimulateJob) JobKind() string { return SimulateKind }

// CacheKey implements engine.Spec.  The configuration is normalized first so
// that two configurations differing only in unset-defaulted fields share one
// cache entry; every distinguishing field (policy, stages, MDPT geometry,
// tagging scheme, DDC sizes, latencies, core mode, ...) participates in the
// key.  Keying the core mode keeps event-driven and stepped runs distinct,
// which is what lets the equivalence tests compare the two through one
// engine without cache aliasing.
func (j SimulateJob) CacheKey() string {
	return fmt.Sprintf("%s|%+v", engine.Key(j.Item), j.Config.withDefaults())
}

// simulateSimulator executes SimulateJob specs.
type simulateSimulator struct{}

// SimulateSimulator returns the engine simulator for the multiscalar/simulate
// kind.
func SimulateSimulator() engine.Simulator { return simulateSimulator{} }

func (simulateSimulator) JobKind() string { return SimulateKind }

func (simulateSimulator) Simulate(ctx context.Context, eng *engine.Engine, spec engine.Spec) (any, error) {
	job, ok := spec.(SimulateJob)
	if !ok {
		return nil, fmt.Errorf("multiscalar: spec %T is not a SimulateJob", spec)
	}
	w, err := engine.Resolve[*WorkItem](ctx, eng, job.Item)
	if err != nil {
		return nil, err
	}
	// Engine workers carry a per-goroutine scratch store: reuse the worker's
	// simulator arena across the jobs it executes.  Without one (a bare Do
	// outside a worker pool), fall back to the package pool.
	if sc := engine.ScratchFrom(ctx); sc != nil {
		sm, _ := sc.Get(SimulateKind).(*Simulator)
		if sm == nil {
			sm = NewSimulator()
			sc.Put(SimulateKind, sm)
		}
		return sm.Simulate(ctx, w, job.Config)
	}
	return SimulateContext(ctx, w, job.Config)
}
