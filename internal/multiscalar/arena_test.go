package multiscalar

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"memdep/internal/memdep"
	"memdep/internal/policy"
	"memdep/internal/workload"
)

// TestSimulatorReuseMatchesFresh is the arena-reuse regression gate: running
// the same work item twice on one reused Simulator must produce Results
// deeply equal to each other and to a fresh, unpooled simulation -- for both
// cores and all three predictor-table organizations.  Any state leaking
// across Reset (table contents, counters, SoA slices, the wake heap, the
// pair arena) shows up here as a diverging second run.
func TestSimulatorReuseMatchesFresh(t *testing.T) {
	w := prep(t, workload.MustGet("compress").Build(1), 20_000)
	ctx := context.Background()
	for _, core := range []CoreMode{CoreEvent, CoreStepped} {
		for _, table := range []memdep.TableKind{memdep.TableFullAssoc, memdep.TableSetAssoc, memdep.TableStoreSet} {
			t.Run(fmt.Sprintf("%v/%v", core, table), func(t *testing.T) {
				cfg := DefaultConfig(8, policy.ESync)
				cfg.Core = core
				cfg.MemDep.Table = table
				if table != memdep.TableFullAssoc {
					cfg.MemDep.Ways = 4
				}

				sm := NewSimulator()
				first, err := sm.Simulate(ctx, w, cfg)
				if err != nil {
					t.Fatalf("first run: %v", err)
				}
				second, err := sm.Simulate(ctx, w, cfg)
				if err != nil {
					t.Fatalf("second (reused) run: %v", err)
				}
				fresh, err := Simulate(w, cfg)
				if err != nil {
					t.Fatalf("fresh run: %v", err)
				}
				if !reflect.DeepEqual(first, second) {
					t.Errorf("reused arena diverged from its own first run:\nfirst:  %+v\nsecond: %+v", first, second)
				}
				if !reflect.DeepEqual(first, fresh) {
					t.Errorf("arena run diverged from fresh simulation:\narena: %+v\nfresh: %+v", first, fresh)
				}
			})
		}
	}
}

// TestSimulatorReuseAcrossConfigs exercises the arena's config-change paths:
// alternating policies (predictor parked and restored), stage counts (FU and
// SoA re-carving) and work items on one Simulator must still match fresh
// simulations every time.
func TestSimulatorReuseAcrossConfigs(t *testing.T) {
	ctx := context.Background()
	items := []*WorkItem{
		prep(t, workload.MustGet("compress").Build(1), 10_000),
		prep(t, workload.MustGet("xlisp").Build(1), 20_000),
	}
	runs := []struct {
		item   int
		stages int
		pol    policy.Kind
	}{
		{0, 4, policy.ESync},
		{0, 4, policy.Always}, // predictor parked
		{0, 4, policy.ESync},  // predictor restored (rebuilt state must not leak)
		{1, 8, policy.Sync},   // bigger item + more stages: everything re-carved
		{0, 2, policy.Never},
		{1, 8, policy.Sync}, // shrink back up again
	}
	sm := NewSimulator()
	for i, r := range runs {
		cfg := DefaultConfig(r.stages, r.pol)
		got, err := sm.Simulate(ctx, items[r.item], cfg)
		if err != nil {
			t.Fatalf("run %d (%v, %d stages): %v", i, r.pol, r.stages, err)
		}
		want, err := Simulate(items[r.item], cfg)
		if err != nil {
			t.Fatalf("run %d fresh: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("run %d (%v, %d stages) diverged from fresh simulation:\narena: %+v\nfresh: %+v",
				i, r.pol, r.stages, got, want)
		}
	}
}
