package multiscalar

import (
	"fmt"
	"strings"

	"memdep/internal/arb"
	"memdep/internal/cache"
	"memdep/internal/ctrlflow"
	"memdep/internal/isa"
	"memdep/internal/memdep"
	"memdep/internal/policy"
)

// CoreMode selects the run-loop implementation of the timing simulator.
// Both cores produce identical results for every configuration; the
// event-driven core is simply faster because it never simulates cycles in
// which no task can make progress.
type CoreMode int

const (
	// CoreEvent (the default) advances the clock directly to the earliest
	// pending event: a task's restart cycle, a fetch or operand becoming
	// ready, a functional unit freeing up, or the head task's completion.
	CoreEvent CoreMode = iota
	// CoreStepped is the reference core: the clock advances one cycle at a
	// time and every in-flight task is polled each cycle.  It exists so
	// tests can assert that the event-driven core is cycle-for-cycle
	// identical to the straightforward implementation.
	CoreStepped
)

// String returns the flag spelling of the mode.
func (m CoreMode) String() string {
	switch m {
	case CoreEvent:
		return "event"
	case CoreStepped:
		return "stepped"
	default:
		return fmt.Sprintf("CoreMode(%d)", int(m))
	}
}

// Valid reports whether the mode is one of the defined cores.
func (m CoreMode) Valid() bool { return m == CoreEvent || m == CoreStepped }

// ParseCoreMode parses the -core flag values "event" and "stepped",
// case-insensitively (matching policy.Parse); String always canonicalizes
// back to the lower-case spelling.
func ParseCoreMode(s string) (CoreMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "event":
		return CoreEvent, nil
	case "stepped":
		return CoreStepped, nil
	default:
		return 0, fmt.Errorf("multiscalar: unknown core mode %q (want \"event\" or \"stepped\")", s)
	}
}

// MarshalText implements encoding.TextMarshaler using the flag spelling, so
// CoreMode fields encode as "event"/"stepped" in JSON.
func (m CoreMode) MarshalText() ([]byte, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("multiscalar: cannot marshal invalid core mode %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseCoreMode, so the
// JSON encoding round-trips (case-insensitively).
func (m *CoreMode) UnmarshalText(text []byte) error {
	v, err := ParseCoreMode(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Config describes one Multiscalar processor configuration and speculation
// policy.  Zero values take the defaults of section 5.2 of the paper.
type Config struct {
	// Stages is the number of processing units (4 or 8 in the paper).
	Stages int
	// Core selects the run-loop implementation (default: event-driven).
	Core CoreMode
	// Policy selects the data dependence speculation policy.
	Policy policy.Kind
	// MemDep configures the MDPT/MDST system for the SYNC and ESYNC
	// policies.  The Predictor and SyncSlots fields are overridden from the
	// policy and stage count; Entries defaults to 64.
	MemDep memdep.Config
	// IssueWidth is the per-unit issue width (2).
	IssueWidth int
	// Latencies are the functional unit latencies (Table 2).
	Latencies isa.LatencyTable
	// FUs is the per-unit functional unit mix.
	FUs isa.FUCount
	// Cache configures the memory hierarchy.
	Cache cache.Config
	// ARB configures the address resolution buffer.
	ARB arb.Config
	// Sequencer configures the task predictor, descriptor cache and RAS.
	Sequencer ctrlflow.SequencerConfig
	// RingHop is the per-hop latency of the unidirectional register ring (1).
	RingHop int
	// DispatchLatency is the cost of assigning a task to a freed unit (1).
	DispatchLatency int
	// MispredictPenalty is the extra dispatch cost charged when the
	// sequencer's next-task prediction was wrong (8).
	MispredictPenalty int
	// DescriptorMissPenalty is the extra dispatch cost of a task descriptor
	// cache miss (4).
	DescriptorMissPenalty int
	// SquashPenalty is the cost of restarting a squashed task (5).
	SquashPenalty int
	// DDCSizes optionally requests that the stream of mis-speculated static
	// pairs be fed into data dependence caches of these sizes (Table 7).
	DDCSizes []int
	// MaxCycles bounds the simulation as a safety net (default 200M).
	MaxCycles int64
}

// DefaultConfig returns the configuration of the paper for the given number
// of stages and policy.
func DefaultConfig(stages int, pol policy.Kind) Config {
	return Config{Stages: stages, Policy: pol}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.Stages <= 0 {
		c.Stages = 4
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = 2
	}
	var zeroLat isa.LatencyTable
	if c.Latencies == zeroLat {
		c.Latencies = isa.DefaultLatencies()
	}
	var zeroFU isa.FUCount
	if c.FUs == zeroFU {
		c.FUs = isa.DefaultFUCount()
	}
	if c.Cache.Units <= 0 {
		cc := c.Cache
		cc.Units = c.Stages
		c.Cache = cc
	}
	if c.ARB.Banks <= 0 {
		c.ARB = arb.DefaultConfig(c.Stages)
	}
	if c.RingHop <= 0 {
		c.RingHop = 1
	}
	if c.DispatchLatency <= 0 {
		c.DispatchLatency = 1
	}
	if c.MispredictPenalty <= 0 {
		c.MispredictPenalty = 8
	}
	if c.DescriptorMissPenalty <= 0 {
		c.DescriptorMissPenalty = 4
	}
	if c.SquashPenalty <= 0 {
		c.SquashPenalty = 5
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 200_000_000
	}
	// Memory dependence system defaults.
	md := c.MemDep
	if md.Entries <= 0 {
		md.Entries = 64
	}
	md.SyncSlots = c.Stages
	if pk, ok := c.Policy.PredictorKind(); ok {
		md.Predictor = pk
	}
	c.MemDep = md
	return c
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	d := c.withDefaults()
	if !d.Policy.Valid() {
		return fmt.Errorf("multiscalar: invalid policy %d", int(d.Policy))
	}
	if !d.Core.Valid() {
		return fmt.Errorf("multiscalar: invalid core mode %d", int(d.Core))
	}
	if d.Stages > 64 {
		return fmt.Errorf("multiscalar: %d stages is unreasonably large", d.Stages)
	}
	if err := d.MemDep.Validate(); err != nil {
		return err
	}
	return nil
}

// PredictionBreakdown counts committed loads by predicted-vs-actual
// dependence outcome, the four rows of Table 8.  Indexing is
// [predicted][actual] with 0 = no dependence, 1 = dependence.
type PredictionBreakdown [2][2]uint64

// Total returns the number of classified loads.
func (p PredictionBreakdown) Total() uint64 {
	return p[0][0] + p[0][1] + p[1][0] + p[1][1]
}

// Percent returns the percentage of loads in the given cell.
func (p PredictionBreakdown) Percent(predicted, actual int) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(p[predicted][actual]) / float64(t)
}

// Result summarises one simulation run.  Results escape into the engine's
// memoization cache and outlive the run that produced them: nothing stored
// in one may alias the Simulator arena's backing storage.
//
//memdep:escapes
type Result struct {
	// Benchmark is the work item name.
	Benchmark string
	// Stages and Policy echo the configuration.
	Stages int
	Policy policy.Kind

	// Cycles is the total execution time.
	Cycles int64
	// Instructions, Loads and Stores are committed counts (identical across
	// policies for the same work item).
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// Tasks is the number of committed tasks.
	Tasks uint64

	// Misspeculations is the number of memory dependence violations detected
	// (each one squashes the offending task and its successors).
	Misspeculations uint64
	// Squashes is the number of task squash events (>= Misspeculations may
	// differ because one violation squashes several tasks).
	Squashes uint64
	// SquashedInstructions is the amount of issued work discarded by
	// squashes.
	SquashedInstructions uint64
	// LoadsWaited counts loads that were made to wait by the policy.
	LoadsWaited uint64
	// WaitCycles is the total number of cycles loads spent waiting.
	WaitCycles uint64
	// FalseDependenceReleases counts loads that waited for a synchronization
	// that never came and were released when all prior stores resolved.
	FalseDependenceReleases uint64
	// ARBBypasses counts memory operations that could not be tracked because
	// their ARB bank was full and proceeded unmonitored (a potential source
	// of undetected mis-speculation; the paper's configuration makes this
	// rare, but the counter keeps it observable).
	ARBBypasses uint64

	// Breakdown classifies committed loads for Table 8.
	Breakdown PredictionBreakdown

	// DDCMissRate reports, for each requested DDC size, the percentage of
	// mis-speculations whose static pair missed in the DDC (Table 7).
	DDCMissRate map[int]float64

	// MisspecPairs counts detected violations per static store→load pair
	// (diagnostic; also the input of the Table 7 DDC study).
	MisspecPairs map[memdep.PairKey]uint64

	// Subsystem statistics.
	MemDep    memdep.SystemStats
	ARB       arb.Stats
	Cache     cache.Stats
	Sequencer ctrlflow.SequencerStats
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MisspecsPerCommittedLoad returns the Table 9 metric.
func (r Result) MisspecsPerCommittedLoad() float64 {
	if r.Loads == 0 {
		return 0
	}
	return float64(r.Misspeculations) / float64(r.Loads)
}

// SpeedupOver returns the percentage speedup of r relative to base (positive
// when r is faster).
func (r Result) SpeedupOver(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Cycles)/float64(r.Cycles) - 1)
}
