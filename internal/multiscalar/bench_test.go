package multiscalar

import (
	"context"
	"testing"

	"memdep/internal/policy"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

// benchWork preprocesses the same xlisp stand-in the memdep-perf tool
// measures (50k instructions).
func benchWork(b *testing.B) *WorkItem {
	b.Helper()
	w, err := Preprocess(workload.MustGet("xlisp").Build(1), trace.Config{MaxInstructions: 50_000})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchConfig(core CoreMode) Config {
	cfg := DefaultConfig(8, policy.ESync)
	cfg.Core = core
	return cfg
}

// BenchmarkSimulatePooled measures SimulateContext, the pooled entry point
// every driver goes through.
func BenchmarkSimulatePooled(b *testing.B) {
	for _, core := range []CoreMode{CoreEvent, CoreStepped} {
		b.Run(core.String(), func(b *testing.B) {
			w := benchWork(b)
			cfg := benchConfig(core)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateContext(ctx, w, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulateReused measures a single warmed arena run back-to-back on
// the same work item: the zero-allocation steady state of a reused Simulator.
func BenchmarkSimulateReused(b *testing.B) {
	w := benchWork(b)
	cfg := benchConfig(CoreEvent)
	ctx := context.Background()
	sm := NewSimulator()
	if _, err := sm.Simulate(ctx, w, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.Simulate(ctx, w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
