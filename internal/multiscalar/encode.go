package multiscalar

import (
	"encoding/binary"
	"fmt"

	"memdep/internal/isa"
)

// workItemVersion versions the binary WorkItem encoding below.  Bump it
// whenever the wire layout or the meaning of a field changes; the persistent
// store treats a decode failure as a cache miss, so readers of an older
// format simply recompute.
const workItemVersion = 1

// AppendWorkItem appends a compact binary encoding of w to dst and returns
// the extended slice.  The encoding stores only the irreducible fields of the
// preprocessed stream -- task boundaries, per-instruction op/pc/address and
// the resolved register and memory producers; everything Preprocess derives
// (instruction classes, load ordinals, per-task and global op counts) is
// reconstructed by DecodeWorkItem, so the two can never disagree.
func AppendWorkItem(dst []byte, w *WorkItem) []byte {
	dst = binary.AppendUvarint(dst, workItemVersion)
	dst = binary.AppendUvarint(dst, uint64(len(w.Name)))
	dst = append(dst, w.Name...)
	dst = binary.AppendUvarint(dst, uint64(len(w.tasks)))
	for ti := range w.tasks {
		t := &w.tasks[ti]
		dst = binary.AppendUvarint(dst, t.pc)
		dst = binary.AppendUvarint(dst, uint64(len(t.insts)))
		for i := range t.insts {
			r := &t.insts[i]
			dst = append(dst, byte(r.op))
			var flags byte
			if r.hasMemProd {
				flags |= 1
			}
			dst = append(dst, flags)
			dst = binary.AppendUvarint(dst, r.pc)
			dst = binary.AppendUvarint(dst, r.addr)
			for s := 0; s < r.nSrc; s++ {
				dst = binary.AppendVarint(dst, int64(r.srcProd[s].taskIdx))
				dst = binary.AppendVarint(dst, int64(r.srcProd[s].idx))
			}
			if r.hasMemProd {
				dst = binary.AppendVarint(dst, int64(r.memProd.taskIdx))
				dst = binary.AppendVarint(dst, int64(r.memProd.idx))
				dst = binary.AppendUvarint(dst, r.memProdPC)
			}
		}
	}
	return dst
}

// wiReader is a bounds-checked cursor over an encoded WorkItem; the first
// failed read latches err and every later read returns zero, so the decode
// loop stays linear instead of threading errors through every call.
type wiReader struct {
	data []byte
	off  int
	err  error
}

func (d *wiReader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *wiReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("multiscalar: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wiReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("multiscalar: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wiReader) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("multiscalar: truncated byte at offset %d", d.off)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *wiReader) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("multiscalar: %d-byte field exceeds the %d remaining bytes", n, len(d.data)-d.off)
		return nil
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// remaining returns how many input bytes are left, for sanity-capping length
// claims before allocating.
func (d *wiReader) remaining() uint64 { return uint64(len(d.data) - d.off) }

// DecodeWorkItem decodes an AppendWorkItem encoding.  It never panics on
// malformed input: every length claim is capped against the remaining bytes
// before allocating, every producer reference is range-checked against the
// stream decoded so far (producers only ever point backwards), and any
// violation returns an error.  Derived state (classes, load ordinals, op
// counts) is recomputed exactly as Preprocess computes it.
func DecodeWorkItem(data []byte) (*WorkItem, error) {
	d := &wiReader{data: data}
	if v := d.uvarint(); d.err == nil && v != workItemVersion {
		return nil, fmt.Errorf("multiscalar: work-item encoding version %d, want %d", v, workItemVersion)
	}
	w := &WorkItem{Name: string(d.bytes(d.uvarint()))}

	numTasks := d.uvarint()
	// A task costs at least two bytes on the wire.
	if numTasks > d.remaining()/2 {
		return nil, fmt.Errorf("multiscalar: task count %d exceeds the input size", numTasks)
	}
	if d.err == nil {
		w.tasks = make([]taskRec, 0, numTasks)
	}
	for ti := uint64(0); ti < numTasks && d.err == nil; ti++ {
		t := taskRec{id: int(ti), pc: d.uvarint()}
		numInsts := d.uvarint()
		// An instruction costs at least four bytes on the wire.
		if numInsts > d.remaining()/4 {
			return nil, fmt.Errorf("multiscalar: instruction count %d exceeds the input size", numInsts)
		}
		if d.err == nil {
			t.insts = make([]dynRec, 0, numInsts)
		}
		for i := uint64(0); i < numInsts && d.err == nil; i++ {
			op := isa.Op(d.byte())
			if d.err == nil && !op.Valid() {
				return nil, fmt.Errorf("multiscalar: invalid op %d in task %d", op, ti)
			}
			flags := d.byte()
			if flags&^byte(1) != 0 {
				return nil, fmt.Errorf("multiscalar: unknown flag bits %#x in task %d", flags, ti)
			}
			r := dynRec{
				op:      op,
				class:   isa.ClassOf(op),
				pc:      d.uvarint(),
				addr:    d.uvarint(),
				isLoad:  isa.IsLoad(op),
				isStore: isa.IsStore(op),
			}
			// The source count is a function of the opcode, exactly as
			// Preprocess derives it from the static instruction.
			_, nSrc := isa.Instruction{Op: op}.Uses()
			for s := 0; s < nSrc && d.err == nil; s++ {
				ref := prodRef{taskIdx: int(d.varint()), idx: int(d.varint())}
				if d.err == nil {
					if err := checkRef(ref, w.tasks, len(t.insts)); err != nil {
						return nil, err
					}
				}
				r.srcProd[r.nSrc] = ref
				r.nSrc++
			}
			if flags&1 != 0 {
				r.memProd = prodRef{taskIdx: int(d.varint()), idx: int(d.varint())}
				r.hasMemProd = true
				r.memProdPC = d.uvarint()
				if d.err == nil {
					if err := checkRef(r.memProd, w.tasks, len(t.insts)); err != nil {
						return nil, err
					}
					if r.memProd == noProducer {
						return nil, fmt.Errorf("multiscalar: memory producer flagged but absent in task %d", ti)
					}
				}
			}
			if r.isLoad {
				r.loadOrd = t.loads
				t.loads++
				w.Loads++
			}
			if r.isStore {
				t.stores++
				w.Stores++
			}
			t.insts = append(t.insts, r)
			w.Instructions++
		}
		w.tasks = append(w.tasks, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("multiscalar: %d trailing bytes after the work item", len(data)-d.off)
	}
	if len(w.tasks) == 0 {
		return nil, fmt.Errorf("multiscalar: encoded work item has no tasks")
	}
	return w, nil
}

// checkRef validates a producer reference against the stream decoded so far:
// producers are either noProducer or point strictly backwards -- into a fully
// decoded earlier task (done holds those), or to an earlier instruction of
// the task currently being decoded, which has curIdx instructions built.
func checkRef(ref prodRef, done []taskRec, curIdx int) error {
	if ref == noProducer {
		return nil
	}
	valid := ref.taskIdx >= 0 && ref.idx >= 0 &&
		((ref.taskIdx < len(done) && ref.idx < len(done[ref.taskIdx].insts)) ||
			(ref.taskIdx == len(done) && ref.idx < curIdx))
	if !valid {
		return fmt.Errorf("multiscalar: producer (%d,%d) does not precede instruction %d of task %d",
			ref.taskIdx, ref.idx, curIdx, len(done))
	}
	return nil
}
