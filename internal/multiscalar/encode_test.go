package multiscalar

import (
	"reflect"
	"strings"
	"testing"

	"memdep/internal/policy"
	"memdep/internal/trace"
)

// TestWorkItemEncodeRoundTrip pins the binary work-item codec loss-free:
// a preprocessed stream must survive encode/decode bit-for-bit, derived
// fields included, because the persistent store feeds decoded work items to
// the same simulations as computed ones.
func TestWorkItemEncodeRoundTrip(t *testing.T) {
	p := buildRecurrence(20)
	w := prep(t, p, 0)

	enc := AppendWorkItem(nil, w)
	got, err := DecodeWorkItem(enc)
	if err != nil {
		t.Fatalf("DecodeWorkItem: %v", err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("decoded work item differs from the preprocessed one:\ngot  %+v\nwant %+v", got, w)
	}

	// The decoded item must simulate identically to the original.
	want := simulate(t, w, 8, policy.Sync)
	have := simulate(t, got, 8, policy.Sync)
	if !reflect.DeepEqual(have, want) {
		t.Fatal("simulation of the decoded work item differs from the original")
	}

	// Encoding is deterministic, and round-trips byte-identically.
	if again := AppendWorkItem(nil, got); !reflect.DeepEqual(again, enc) {
		t.Fatal("re-encoding the decoded work item changed the bytes")
	}
}

// TestWorkItemEncodeAppends pins the append contract: encoding extends dst
// rather than replacing it.
func TestWorkItemEncodeAppends(t *testing.T) {
	w := prep(t, buildRecurrence(3), 0)
	prefix := []byte("prefix")
	enc := AppendWorkItem(prefix, w)
	if !strings.HasPrefix(string(enc), "prefix") {
		t.Fatal("AppendWorkItem did not preserve dst")
	}
	if _, err := DecodeWorkItem(enc[len(prefix):]); err != nil {
		t.Fatalf("decoding after the prefix: %v", err)
	}
}

// TestWorkItemDecodeRejectsMalformed feeds the decoder systematically
// damaged encodings; every one must return an error (never panic, never a
// bogus item).
func TestWorkItemDecodeRejectsMalformed(t *testing.T) {
	w := prep(t, buildRecurrence(5), 0)
	enc := AppendWorkItem(nil, w)

	// Every truncation must fail: the encoding is self-delimiting, so a
	// prefix is never a valid work item.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeWorkItem(enc[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(enc))
		}
	}

	// Trailing garbage must fail too.
	if _, err := DecodeWorkItem(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}

	// A version bump must be rejected up front.
	bumped := append([]byte{workItemVersion + 1}, enc[1:]...)
	if _, err := DecodeWorkItem(bumped); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch: err = %v", err)
	}

	// An empty stream is not a work item.
	if _, err := DecodeWorkItem([]byte{workItemVersion, 0, 0}); err == nil {
		t.Fatal("zero-task encoding decoded successfully")
	}
}

// TestWorkItemDecodeRejectsForwardProducers corrupts a producer reference to
// point forwards; the decoder must reject it rather than hand the simulator
// a reference it would index out of bounds.
func TestWorkItemDecodeRejectsForwardProducers(t *testing.T) {
	// A one-instruction-deep handmade item: one task, one store then one load
	// whose memory producer claims to be instruction 99 of task 7.
	w := prep(t, buildRecurrence(2), 0)
	var victim *dynRec
	for ti := range w.tasks {
		for i := range w.tasks[ti].insts {
			if w.tasks[ti].insts[i].hasMemProd {
				victim = &w.tasks[ti].insts[i]
			}
		}
	}
	if victim == nil {
		t.Fatal("no load with a memory producer in the recurrence workload")
	}
	victim.memProd = prodRef{taskIdx: 7_000, idx: 99}
	if _, err := DecodeWorkItem(AppendWorkItem(nil, w)); err == nil ||
		!strings.Contains(err.Error(), "does not precede") {
		t.Fatalf("forward producer: err = %v", err)
	}
}

// TestWorkItemEncodeMaxInstructions pins that a truncated trace (the quick
// presets) round-trips too: task boundaries near the cap are preserved.
func TestWorkItemEncodeMaxInstructions(t *testing.T) {
	p := buildRecurrence(50)
	w, err := Preprocess(p, trace.Config{MaxInstructions: 100})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWorkItem(AppendWorkItem(nil, w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatal("bounded work item did not round-trip")
	}
}
