package multiscalar

// eventQueue is a pooled indexed min-heap of per-task wake events, ordered by
// cycle.  The event-driven core records an entry whenever it caches a timed
// wake cycle for a task (sim.setWake); the jump-target computation peeks the
// minimum instead of re-deriving it by scanning the window every pass.
//
// The heap is indexed: pos maps each task to its heap slot (or -1), so a task
// re-stalling on a new cycle updates its existing entry in place rather than
// pushing a duplicate.  The heap therefore never exceeds the number of
// in-flight tasks, and its operations stay a handful of swaps.  Entries whose
// task advanced without re-stalling (wake cleared) or committed are
// invalidated lazily: sim.nextWake validates each minimum against the SoA
// wake/committed arrays and discards stale ones as they surface.  All three
// backing slices are arena-owned and reused across runs, so steady-state
// operation never allocates.
//
//memdep:soa
type eventQueue struct {
	cy  []int64 // heap-ordered wake cycles
	id  []int32 // task of each heap slot, parallel to cy
	pos []int32 // heap slot of each task, -1 when absent
}

// reset empties the queue and sizes the task index, keeping backing storage.
//
//memdep:hotpath
func (q *eventQueue) reset(tasks int) {
	q.cy = q.cy[:0]
	q.id = q.id[:0]
	if cap(q.pos) < tasks {
		q.pos = make([]int32, tasks) //lint:alloc-ok task index grows to the largest window once, then reused
	}
	q.pos = q.pos[:tasks]
	for i := range q.pos {
		q.pos[i] = -1
	}
}

// set records (or updates) the wake cycle of a task.
//
//memdep:hotpath
func (q *eventQueue) set(c int64, task int32) {
	i := int(q.pos[task])
	if i < 0 {
		i = len(q.cy)
		q.cy = append(q.cy, c)    //lint:alloc-ok pooled heap storage, bounded by in-flight tasks
		q.id = append(q.id, task) //lint:alloc-ok pooled heap storage, bounded by in-flight tasks
		q.pos[task] = int32(i)
		q.up(i)
		return
	}
	old := q.cy[i]
	q.cy[i] = c
	if c < old {
		q.up(i)
	} else if c > old {
		q.down(i)
	}
}

// pop removes the minimum entry.
//
//memdep:hotpath
func (q *eventQueue) pop() {
	last := len(q.cy) - 1
	q.pos[q.id[0]] = -1
	if last > 0 {
		q.cy[0], q.id[0] = q.cy[last], q.id[last]
		q.pos[q.id[0]] = 0
	}
	q.cy, q.id = q.cy[:last], q.id[:last]
	if last > 0 {
		q.down(0)
	}
}

//memdep:hotpath
func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.cy[parent] <= q.cy[i] {
			break
		}
		q.swap(parent, i)
		i = parent
	}
}

//memdep:hotpath
func (q *eventQueue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.cy) && q.cy[l] < q.cy[min] {
			min = l
		}
		if r < len(q.cy) && q.cy[r] < q.cy[min] {
			min = r
		}
		if min == i {
			return
		}
		q.swap(min, i)
		i = min
	}
}

//memdep:hotpath
func (q *eventQueue) swap(i, j int) {
	q.cy[i], q.cy[j] = q.cy[j], q.cy[i]
	q.id[i], q.id[j] = q.id[j], q.id[i]
	q.pos[q.id[i]], q.pos[q.id[j]] = int32(i), int32(j)
}
