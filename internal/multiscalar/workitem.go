// Package multiscalar implements a timing simulator for a Multiscalar
// processor in the style of the evaluation platform of section 5 of the
// paper: a number of processing units (stages) execute consecutive tasks of a
// sequential program concurrently, inter-task register values are forwarded
// over a unidirectional ring, memory accesses go through a banked data cache
// and an address resolution buffer, and inter-task memory dependences are
// speculated according to a configurable policy (internal/policy).
//
// The simulator is trace driven: the committed dynamic instruction stream of
// the functional simulator (internal/trace) is first preprocessed into tasks
// with resolved register and memory producers (Preprocess), and the timing
// model then replays that stream under different processor configurations and
// speculation policies (Simulate).  The committed result is by construction
// identical across policies -- only the timing differs -- mirroring the
// paper's methodology of comparing policies on the same binaries and inputs.
package multiscalar

import (
	"fmt"

	"memdep/internal/isa"
	"memdep/internal/program"
	"memdep/internal/trace"
)

// prodRef names the dynamic instruction that produces a value: the taskIdx-th
// task's idx-th instruction.  A taskIdx of -1 means "no producer inside the
// analysed stream" (the value is available at program start).
type prodRef struct {
	taskIdx int
	idx     int
}

// noProducer is the prodRef for values with no in-stream producer.
var noProducer = prodRef{taskIdx: -1, idx: -1}

// dynRec is one dynamic instruction prepared for timing simulation.
type dynRec struct {
	op      isa.Op
	class   isa.Class
	pc      uint64
	addr    uint64
	isLoad  bool
	isStore bool

	// srcProd holds the producers of the instruction's register sources.
	srcProd [2]prodRef
	nSrc    int

	// memProd is the most recent store (in program order) to the same
	// address, when the instruction is a load and such a store exists.
	memProd    prodRef
	hasMemProd bool
	// memProdPC is the PC of that store (for predictor updates).
	memProdPC uint64

	// loadOrd is the load's ordinal within its task (0-based, ascending
	// instruction order); it indexes the simulator's per-task loadRecord
	// slice.  Only meaningful when isLoad is set.
	loadOrd int
}

// taskRec is one dynamic Multiscalar task.
type taskRec struct {
	id     int
	pc     uint64 // task start PC
	insts  []dynRec
	loads  int
	stores int
}

// WorkItem is a preprocessed committed instruction stream, ready to be
// simulated under any processor configuration.  It is immutable once built
// and can be shared by concurrent simulations.
type WorkItem struct {
	// Name is the benchmark name.
	Name string
	// Instructions is the number of committed instructions.
	Instructions uint64
	// Loads and Stores count committed memory operations.
	Loads  uint64
	Stores uint64

	tasks []taskRec
}

// Tasks returns the number of dynamic tasks.
func (w *WorkItem) Tasks() int { return len(w.tasks) }

// AvgTaskSize returns the average dynamic task size in instructions.
func (w *WorkItem) AvgTaskSize() float64 {
	if len(w.tasks) == 0 {
		return 0
	}
	return float64(w.Instructions) / float64(len(w.tasks))
}

// Preprocess runs the program in the functional simulator and builds the
// task-structured work item the timing simulator consumes.
func Preprocess(p *program.Program, cfg trace.Config) (*WorkItem, error) {
	w := &WorkItem{Name: p.Name}

	var lastRegWriter [isa.NumRegs]prodRef
	for i := range lastRegWriter {
		lastRegWriter[i] = noProducer
	}
	lastStore := make(map[uint64]prodRef)
	lastStorePC := make(map[uint64]uint64)

	cur := -1 // index of the task being built
	_, err := trace.Run(p, cfg, func(d trace.DynInst) bool {
		if d.TaskStart || cur < 0 {
			w.tasks = append(w.tasks, taskRec{id: len(w.tasks), pc: d.TaskPC})
			cur = len(w.tasks) - 1
		}
		t := &w.tasks[cur]

		ins := p.Code[d.Index]
		r := dynRec{
			op:      d.Op,
			class:   isa.ClassOf(d.Op),
			pc:      d.PC,
			addr:    d.Addr,
			isLoad:  d.IsLoad(),
			isStore: d.IsStore(),
		}
		uses, n := ins.Uses()
		for i := 0; i < n; i++ {
			if uses[i] == isa.Zero {
				r.srcProd[r.nSrc] = noProducer
			} else {
				r.srcProd[r.nSrc] = lastRegWriter[uses[i]]
			}
			r.nSrc++
		}
		if r.isLoad {
			if prod, ok := lastStore[d.Addr]; ok {
				r.memProd = prod
				r.hasMemProd = true
				r.memProdPC = lastStorePC[d.Addr]
			}
			r.loadOrd = t.loads
			t.loads++
			w.Loads++
		}
		myRef := prodRef{taskIdx: cur, idx: len(t.insts)}
		if r.isStore {
			lastStore[d.Addr] = myRef
			lastStorePC[d.Addr] = d.PC
			t.stores++
			w.Stores++
		}
		if dst, ok := ins.Writes(); ok && dst != isa.Zero {
			lastRegWriter[dst] = myRef
		}
		t.insts = append(t.insts, r)
		w.Instructions++
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("multiscalar: preprocessing %q failed: %w", p.Name, err)
	}
	if len(w.tasks) == 0 {
		return nil, fmt.Errorf("multiscalar: program %q produced no instructions", p.Name)
	}
	return w, nil
}
