package multiscalar

import (
	"context"
	"fmt"
	"math"

	"memdep/internal/arb"
	"memdep/internal/cache"
	"memdep/internal/ctrlflow"
	"memdep/internal/isa"
	"memdep/internal/memdep"
	"memdep/internal/policy"
)

// idEncode builds the load/store identifier (LDID/STID) for a dynamic memory
// operation from its task index and instruction index.  The identifier is
// stable across squash/re-execution, which is exactly what the MDST needs to
// invalidate the entries of squashed instructions.
func idEncode(taskIdx, instIdx int) int64 {
	return int64(taskIdx)*1_000_000 + int64(instIdx)
}

// idDecode is the inverse of idEncode.
func idDecode(id int64) (taskIdx, instIdx int) {
	return int(id / 1_000_000), int(id % 1_000_000)
}

type waitKind int

const (
	waitAllPrior waitKind = iota // wait until all earlier in-flight stores executed
	waitProducer                 // wait for a specific producer store (PSYNC)
	waitSignal                   // wait for an MDST signal (SYNC/ESYNC)
)

// waitState records why a task's next instruction is stalled.  It is
// embedded in every execTask, so its layout is part of the per-task working
// set; the flag bytes trail the word-aligned fields to avoid padding.
//
//memdep:soa
type waitState struct {
	kind     waitKind
	since    int64
	ldid     int64
	producer prodRef
	active   bool
	signaled bool
}

// loadRecord captures, for one load, what was predicted and what was actually
// the case -- the raw material of Table 8 and of the non-speculative
// predictor updates.  Records live in a flat per-task slice indexed by the
// load's ordinal (dynRec.loadOrd), so commit- and squash-time walks visit
// them in ascending instruction order -- deterministically, unlike the map
// they replace.  The predicted wait pairs are stored as an (offset, length)
// window into the simulator's shared pairBuf arena rather than a per-record
// slice, which removes the last per-dispatch allocation from the hot path.
//
//memdep:soa
type loadRecord struct {
	seen       bool // the load has reached issue at least once this attempt
	predicted  bool
	actualDep  bool
	queried    bool
	producerPC uint64
	pairsOff   int32
	pairsLen   int32
	ldid       int64
}

// execTask is the execution state of one task on its processing unit.  The
// two fields the scheduling pass reads for every in-flight task every pass --
// the wake cycle and the committed flag -- live in dense structure-of-arrays
// slices on the sim (sim.wake, sim.committed) instead, so the skip checks
// walk two small arrays rather than striding across task structs.
//
//memdep:soa
type execTask struct {
	rec  *taskRec
	unit int

	next       int
	done       []int64
	storesLeft int
	startAt    int64
	finishedAt int64

	// fuNext points at the per-unit functional-unit reservation pool; at
	// most one task executes on a unit at a time, so tasks sharing a unit
	// reuse the same backing arrays (zeroed by resetExecState).
	fuNext         *[isa.NumClasses][]int64
	lastFetchBlock uint64
	fetchReady     int64

	wait     waitState
	loadInfo []loadRecord
}

// never is the "no pending event" sentinel of the event-driven core.
const never = int64(math.MaxInt64)

// sim is the per-run execution state.  Every slice, map and subsystem it
// holds is backing storage owned by the enclosing Simulator arena: reset()
// re-slices and clears in place rather than re-allocating, so a reused
// simulator's steady-state hot path performs no heap allocations.  The one
// exception is the result maps (Result.MisspecPairs / DDCMissRate), which
// escape into the engine's memoization cache and therefore must be freshly
// allocated per run (see result()).
type sim struct {
	ctx   context.Context
	cfg   Config
	w     *WorkItem
	tasks []execTask

	// Structure-of-arrays per-task state, indexed by task id.
	//
	// wake caches the cycle at which a task's current stall resolves when
	// that stall is purely timed (fetch latency, operand forwarding, FU
	// occupancy, restart delay); the event-driven core skips the task's
	// advance before then.  Zero means "poll every pass" -- the stall (if
	// any) depends on another task's action.  Timed wake values never move
	// earlier: the inputs they are computed from (producer completion
	// times, FU reservations, fetch latency) are only reset by a squash,
	// and a squash squashes every younger task -- including any task whose
	// wake depended on the squashed state -- clearing their wake via
	// resetExecState.
	wake      []int64
	committed []bool

	hier *cache.Hierarchy
	arb  *arb.ARB
	seq  *ctrlflow.Sequencer
	mds  *memdep.System
	ddcs []*memdep.DDC

	cycle        int64
	head         int
	nextDispatch int
	stepped      bool

	// Event-driven bookkeeping for one scheduling pass: changed records
	// whether any architectural state was mutated (in which case the next
	// cycle must be simulated), nextEvent accumulates the earliest cycle at
	// which a non-wake condition (head-task completion) can resolve by time
	// alone, and events holds the pending per-task wake cycles as a pooled
	// min-heap so the jump target is a peek instead of a window re-scan.
	changed   bool
	nextEvent int64
	events    eventQueue

	// fuPool holds one functional-unit reservation table per processing
	// unit, shared by the successive tasks dispatched to that unit.  All
	// tables are carved from the flat fuAll arena array.
	fuPool []([isa.NumClasses][]int64)
	iBlock uint64

	// pairBuf is the flat arena behind every loadRecord's predicted-pair
	// window.  It only grows within a run (windows of squashed attempts
	// leak until reset -- bounded by the number of load queries, and far
	// cheaper than per-record slices); reset truncates it to zero.
	//
	//memdep:arena
	pairBuf []memdep.PairKey

	// Flat backing arrays for the per-task done/loadInfo slices and the FU
	// pools, retained across runs.
	doneAll []int64      //memdep:arena
	loadAll []loadRecord //memdep:arena
	fuAll   []int64      //memdep:arena

	arbBypasses uint64
	res         Result
}

// Simulate runs the work item on the configured processor and returns the
// timing and dependence statistics.
func Simulate(w *WorkItem, cfg Config) (Result, error) {
	return SimulateContext(context.Background(), w, cfg)
}

// post offers a cycle at which a currently stalled condition resolves by the
// passage of time alone; run() jumps to the earliest such cycle when a
// scheduling pass makes no progress.
//
//memdep:hotpath
func (s *sim) post(cycle int64) {
	if cycle > s.cycle && cycle < s.nextEvent {
		s.nextEvent = cycle
	}
}

// setWake caches a task's timed wake cycle and, in the event-driven core,
// records it in the wake heap so the jump-target peek sees it.  (The stepped
// core never reads wake state, so the heap is left untouched there.)
//
//memdep:hotpath
func (s *sim) setWake(t *execTask, cycle int64) {
	s.wake[t.rec.id] = cycle
	if !s.stepped {
		s.events.set(cycle, int32(t.rec.id))
	}
}

// nextWake returns the earliest still-valid wake event.  Entries whose task
// has committed, or whose cycle no longer matches the task's current wake
// (the stall was superseded or cleared), are discarded as they surface.
//
//memdep:hotpath
func (s *sim) nextWake() (int64, bool) {
	q := &s.events
	for len(q.cy) > 0 {
		c, id := q.cy[0], q.id[0]
		if s.committed[id] || s.wake[id] != c {
			q.pop()
			continue
		}
		return c, true
	}
	return 0, false
}

// run drives the simulation to completion.
//
// Both cores execute the same scheduling pass (advance every in-flight task
// in ascending order, then try to commit the head); they differ only in how
// the clock moves between passes.  The stepped core increments it by one --
// the classic polling loop.  The event-driven core distinguishes two cases:
// if the pass mutated any state, the next cycle must be simulated (the
// mutation may enable more work immediately); if the pass was a pure poll --
// every task stalled -- nothing can happen until the earliest pending event
// (the wake heap's minimum, or a posted head-task completion), so the clock
// jumps there directly.  Stall reasons that resolve by time (fetch latency,
// operand forwarding, FU occupancy, squash restart, task completion) record
// their resolution cycle; stall reasons that resolve only through another
// task's action (producer not yet executed, MDST waits, unresolved prior
// stores) record nothing, because the enabling action is itself a mutation
// that schedules the following cycle.  The two cores are therefore
// cycle-for-cycle identical, which TestCoresCycleIdentical and the
// experiment-table equivalence test assert.
func (s *sim) run() error {
	// Dispatch the initial window.
	for i := 0; i < s.cfg.Stages && i < len(s.tasks); i++ {
		s.dispatch(i, int64(i)*int64(s.cfg.DispatchLatency))
	}
	stepped := s.stepped
	var passes uint
	for s.head < len(s.tasks) {
		if s.cycle > s.cfg.MaxCycles {
			return fmt.Errorf("multiscalar: %q exceeded the cycle limit of %d under %v",
				s.w.Name, s.cfg.MaxCycles, s.cfg.Policy)
		}
		if passes++; passes&0x1fff == 0 {
			if err := s.ctx.Err(); err != nil {
				return err
			}
		}
		s.changed = false
		s.nextEvent = never
		for i := s.head; i < s.nextDispatch; i++ {
			if s.committed[i] {
				continue
			}
			if !stepped && s.cycle < s.wake[i] {
				// Timed stall still pending; re-advancing would be a no-op.
				// The wake heap already holds the resolution cycle.
				continue
			}
			s.advance(&s.tasks[i])
		}
		s.tryCommit()
		switch {
		case stepped || s.changed:
			s.cycle++
		default:
			next := s.nextEvent
			if w, ok := s.nextWake(); ok && w < next {
				next = w
			}
			if next == never {
				// No timed event pending and no progress made: the window can
				// never advance again.  (The stepped core would spin here until
				// the cycle limit; report the deadlock it is actually in.)
				return fmt.Errorf("multiscalar: %q wedged at cycle %d under %v: no task can progress and no event is pending",
					s.w.Name, s.cycle, s.cfg.Policy)
			}
			s.cycle = next
		}
	}
	return nil
}

// dispatch assigns the task to its processing unit and charges the sequencer
// costs (next-task prediction, descriptor cache).
func (s *sim) dispatch(taskIdx int, when int64) {
	t := &s.tasks[taskIdx]
	t.unit = taskIdx % s.cfg.Stages
	t.fuNext = &s.fuPool[t.unit]
	prevPC := uint64(0)
	prevKnown := false
	if taskIdx > 0 {
		prevPC = s.tasks[taskIdx-1].rec.pc
		prevKnown = true
	}
	out := s.seq.Dispatch(prevPC, prevKnown, t.rec.pc)
	start := when + int64(s.cfg.DispatchLatency)
	if !out.PredictedCorrectly {
		start += int64(s.cfg.MispredictPenalty)
	}
	if !out.DescriptorHit {
		start += int64(s.cfg.DescriptorMissPenalty)
	}
	s.resetExecState(t, start)
	s.nextDispatch = taskIdx + 1
}

// resetExecState prepares (or re-prepares, after a squash) a task for
// execution starting at the given cycle.  It only clears values: the done,
// loadInfo and fuNext backing arrays are allocated once and reused across
// squash-restarts.
func (s *sim) resetExecState(t *execTask, start int64) {
	for i := range t.done {
		t.done[i] = -1
	}
	t.next = 0
	t.storesLeft = t.rec.stores
	t.startAt = start
	t.finishedAt = start
	t.wait = waitState{}
	for i := range t.loadInfo {
		t.loadInfo[i] = loadRecord{}
	}
	t.lastFetchBlock = ^uint64(0)
	t.fetchReady = 0
	s.wake[t.rec.id] = 0
	for c := range t.fuNext {
		for i := range t.fuNext[c] {
			t.fuNext[c][i] = 0
		}
	}
}

// tryCommit retires the head task if it has finished (one commit per cycle).
//
//memdep:hotpath
func (s *sim) tryCommit() {
	if s.head >= len(s.tasks) {
		return
	}
	t := &s.tasks[s.head]
	if s.head >= s.nextDispatch || t.next < len(t.rec.insts) {
		return
	}
	if t.finishedAt > s.cycle {
		s.post(t.finishedAt)
		return
	}
	s.commitTask(t)
	s.head++
	s.changed = true
	if s.nextDispatch < len(s.tasks) {
		s.dispatch(s.nextDispatch, s.cycle)
	}
}

//memdep:hotpath
func (s *sim) commitTask(t *execTask) {
	s.committed[t.rec.id] = true
	s.res.Tasks++
	s.arb.CommitTask(uint64(t.rec.id))
	// Walk the loads in ascending instruction order so MDPT updates are
	// applied in a deterministic order.
	for idx := range t.rec.insts {
		r := &t.rec.insts[idx]
		if !r.isLoad {
			continue
		}
		info := &t.loadInfo[r.loadOrd]
		if !info.seen {
			continue
		}
		pred, act := 0, 0
		if info.predicted {
			pred = 1
		}
		if info.actualDep {
			act = 1
		}
		s.res.Breakdown[pred][act]++
		if s.mds != nil && info.queried {
			actualPC := uint64(0)
			if info.actualDep {
				actualPC = info.producerPC
			}
			s.mds.CommitLoad(r.pc, actualPC, s.loadPairs(info))
		}
	}
}

// loadPairs resolves a load record's predicted-pair window in the pairBuf
// arena.  The slice aliases arena storage: it is valid for immediate reads
// only and must never be retained.
//
//memdep:hotpath
func (s *sim) loadPairs(info *loadRecord) []memdep.PairKey {
	return s.pairBuf[info.pairsOff : info.pairsOff+info.pairsLen]
}

// ringLatency is the forwarding delay between the units of two tasks over the
// unidirectional ring.
func (s *sim) ringLatency(prodTask, consTask int) int64 {
	if prodTask == consTask {
		return 0
	}
	prodUnit := prodTask % s.cfg.Stages
	consUnit := consTask % s.cfg.Stages
	hops := (consUnit - prodUnit + s.cfg.Stages) % s.cfg.Stages
	return int64(hops) * int64(s.cfg.RingHop)
}

// operandReady computes the earliest cycle at which the instruction's
// register operands are available.  ok is false when a producer has not
// executed yet.
//
//memdep:hotpath
func (s *sim) operandReady(t *execTask, r *dynRec) (int64, bool) {
	ready := t.startAt
	for i := 0; i < r.nSrc; i++ {
		p := r.srcProd[i]
		if p.taskIdx < 0 {
			continue
		}
		var avail int64
		if p.taskIdx == t.rec.id {
			avail = t.done[p.idx]
		} else {
			avail = s.tasks[p.taskIdx].done[p.idx]
			if avail >= 0 {
				avail += s.ringLatency(p.taskIdx, t.rec.id)
			}
		}
		if avail < 0 {
			return 0, false
		}
		if avail > ready {
			ready = avail
		}
	}
	return ready, true
}

// allPriorStoresResolved reports whether every store of every earlier
// in-flight task has executed.
func (s *sim) allPriorStoresResolved(t *execTask) bool {
	for i := s.head; i < t.rec.id; i++ {
		if !s.committed[i] && s.tasks[i].storesLeft > 0 {
			return false
		}
	}
	return true
}

// actualDependence reports whether the load depends on a store of an earlier
// task that is still in flight, and the PC of that store.
func (s *sim) actualDependence(t *execTask, r *dynRec) (bool, uint64) {
	if !r.hasMemProd || r.memProd.taskIdx == t.rec.id {
		return false, 0
	}
	if s.committed[r.memProd.taskIdx] {
		return false, 0
	}
	return true, r.memProdPC
}

// taskPCAt lets the ESYNC predictor look up the task PC at a given instance
// (task) number.
func (s *sim) taskPCAt(instance uint64) (uint64, bool) {
	if instance >= uint64(len(s.tasks)) {
		return 0, false
	}
	return s.tasks[instance].rec.pc, true
}

// beginWait transitions the load into the given wait state.
func (s *sim) beginWait(t *execTask, w waitState) {
	w.active = true
	w.since = s.cycle
	t.wait = w
	s.res.LoadsWaited++
	s.changed = true
}

// loadMayIssue applies the speculation policy to a load whose operands are
// ready.  It returns true when the load may access memory this cycle; when it
// returns false the load (and, because issue is in order, the rest of its
// task) stalls.  Wait states resolve only through the actions of other tasks
// (store issue, MDST signal, commit), so a stalled load posts no timed event;
// the enabling action itself schedules the re-evaluation.
//
//memdep:hotpath
func (s *sim) loadMayIssue(t *execTask, r *dynRec, instIdx int) bool {
	info := &t.loadInfo[r.loadOrd]
	if !info.seen {
		info.seen = true
		info.actualDep, info.producerPC = s.actualDependence(t, r)
		s.changed = true
	}

	if !t.wait.active {
		switch s.cfg.Policy {
		case policy.Always:
			return true

		case policy.Never:
			if s.allPriorStoresResolved(t) {
				return true
			}
			s.beginWait(t, waitState{kind: waitAllPrior})
			return false

		case policy.Wait:
			if !info.actualDep {
				return true
			}
			if s.allPriorStoresResolved(t) {
				return true
			}
			s.beginWait(t, waitState{kind: waitAllPrior})
			return false

		case policy.PerfectSync:
			if !info.actualDep {
				return true
			}
			// Ideal synchronization: the load proceeds as soon as the
			// producing store has issued (the value is forwarded).
			p := r.memProd
			if s.tasks[p.taskIdx].done[p.idx] >= 0 {
				return true
			}
			s.beginWait(t, waitState{kind: waitProducer, producer: p})
			return false

		case policy.Sync, policy.ESync:
			if info.queried {
				// The prediction was already made for this execution attempt
				// (the load was then stalled by a structural hazard, or has
				// been released from its wait); do not re-query the tables.
				return true
			}
			ldid := idEncode(t.rec.id, instIdx)
			d := s.mds.LoadIssue(memdep.LoadQuery{
				PC:       r.pc,
				Instance: uint64(t.rec.id),
				LDID:     ldid,
				Addr:     r.addr,
				TaskPCAt: s.taskPCAt,
			})
			info.predicted = d.Predicted
			info.queried = true
			info.ldid = ldid
			// Copy the decision's pairs (which alias memdep.System scratch)
			// into a fresh window of the pairBuf arena.
			info.pairsOff = int32(len(s.pairBuf))
			info.pairsLen = int32(len(d.WaitPairs))
			s.pairBuf = append(s.pairBuf, d.WaitPairs...) //lint:alloc-ok pairBuf arena growth, amortized across runs
			s.changed = true
			if !d.Wait {
				return true
			}
			s.beginWait(t, waitState{kind: waitSignal, ldid: ldid})
			return false

		default:
			return true
		}
	}

	// The load is already waiting: evaluate its release condition.
	switch t.wait.kind {
	case waitAllPrior:
		if s.allPriorStoresResolved(t) {
			s.release(t)
			return true
		}
	case waitProducer:
		p := t.wait.producer
		if s.tasks[p.taskIdx].done[p.idx] >= 0 {
			s.release(t)
			return true
		}
	case waitSignal:
		if t.wait.signaled {
			s.release(t)
			return true
		}
		if s.allPriorStoresResolved(t) {
			// Incomplete synchronization (section 4.4.2): the predicted store
			// never signalled; free the entry and weaken the prediction.
			s.mds.ReleaseLoad(t.wait.ldid)
			s.res.FalseDependenceReleases++
			s.release(t)
			return true
		}
	}
	return false
}

func (s *sim) release(t *execTask) {
	s.res.WaitCycles += uint64(s.cycle - t.wait.since)
	t.wait = waitState{}
	s.changed = true
}

// wakeLoad marks a waiting load as signalled.  It is registered as the
// memdep.System release hook, so a store's MDST signal pushes the release to
// the waiting task instead of the task polling the table.
func (s *sim) wakeLoad(ldid int64) {
	taskIdx, _ := idDecode(ldid)
	if taskIdx < 0 || taskIdx >= len(s.tasks) {
		return
	}
	t := &s.tasks[taskIdx]
	if t.wait.active && t.wait.kind == waitSignal && t.wait.ldid == ldid {
		t.wait.signaled = true
		s.changed = true
	}
}

// acquireFU reserves a functional unit of the class at the given cycle,
// returning false when all instances are busy.
//
//memdep:hotpath
func (s *sim) acquireFU(t *execTask, class isa.Class, op isa.Op, cycle int64) bool {
	insts := t.fuNext[class]
	for i := range insts {
		if insts[i] <= cycle {
			occupancy := int64(1)
			if !s.cfg.Latencies[class].Pipelined {
				occupancy = int64(s.cfg.Latencies.OpLatency(op))
			}
			insts[i] = cycle + occupancy
			return true
		}
	}
	return false
}

// fuFreeAt returns the earliest cycle at which a unit of the class frees up.
//
//memdep:hotpath
func (s *sim) fuFreeAt(t *execTask, class isa.Class) int64 {
	insts := t.fuNext[class]
	free := insts[0]
	for _, c := range insts[1:] {
		if c < free {
			free = c
		}
	}
	return free
}

// advance issues up to IssueWidth instructions of the task this cycle.  Every
// early return either marks progress (s.changed) or caches the cycle at which
// the blocking condition resolves via setWake, so the event-driven core knows
// when the task next becomes actionable and skips it until then.
//
//memdep:hotpath
func (s *sim) advance(t *execTask) {
	s.wake[t.rec.id] = 0
	if s.cycle < t.startAt {
		s.setWake(t, t.startAt)
		return
	}
	if t.next >= len(t.rec.insts) {
		return
	}
	for issued := 0; issued < s.cfg.IssueWidth && t.next < len(t.rec.insts); issued++ {
		idx := t.next
		r := &t.rec.insts[idx]

		// A waiting load already passed the fetch and operand checks when
		// its wait began, and their inputs cannot regress without a squash
		// (which clears the wait); go straight to the release condition.
		if !t.wait.active {
			// Instruction supply: one cache access per 64-byte block.
			block := r.pc / s.iBlock
			if block != t.lastFetchBlock {
				t.fetchReady = s.hier.InstrFetch(t.unit, r.pc, s.cycle)
				t.lastFetchBlock = block
				s.changed = true
			}
			if s.cycle < t.fetchReady {
				s.setWake(t, t.fetchReady)
				return
			}

			ready, ok := s.operandReady(t, r)
			if !ok {
				// Blocked on a producer that has not executed; its issue will
				// mark progress and schedule the re-evaluation.
				return
			}
			if ready > s.cycle {
				s.setWake(t, ready)
				return
			}
		}

		if r.isLoad && !s.loadMayIssue(t, r, idx) {
			return
		}

		if !s.acquireFU(t, r.class, r.op, s.cycle) {
			s.setWake(t, s.fuFreeAt(t, r.class))
			return
		}

		var done int64
		switch {
		case r.isLoad:
			if !s.arbLoad(t, r) {
				// ARB bank overflow: proceed untracked (counted).
			}
			done = s.hier.DataAccess(r.addr, s.cycle+1)
		case r.isStore:
			t.storesLeft--
			s.handleStore(t, r, idx)
			// The stored value is visible to consumers one cycle after issue;
			// the cache/bus occupancy is charged separately.
			complete := s.hier.DataAccess(r.addr, s.cycle+1)
			if complete > t.finishedAt {
				t.finishedAt = complete
			}
			done = s.cycle + 1
		default:
			done = s.cycle + int64(s.cfg.Latencies.OpLatency(r.op))
		}

		t.done[idx] = done
		if done > t.finishedAt {
			t.finishedAt = done
		}
		t.next++
		s.changed = true
	}
}

// arbLoad records the load in the address resolution buffer.
//
//memdep:hotpath
func (s *sim) arbLoad(t *execTask, r *dynRec) bool {
	ok := s.arb.Load(r.addr, uint64(t.rec.id), r.pc)
	if !ok {
		s.arbBypasses++
	}
	return ok
}

// handleStore performs the store-side dependence work: ARB violation
// detection (and the resulting squash) and MDST signalling.
//
//memdep:hotpath
func (s *sim) handleStore(t *execTask, r *dynRec, instIdx int) {
	v, violated, ok := s.arb.Store(r.addr, uint64(t.rec.id))
	if !ok {
		s.arbBypasses++
	}
	if violated {
		s.handleViolation(t, r, v)
	}
	if s.mds != nil {
		// Released loads are delivered through the wakeLoad hook.
		s.mds.StoreIssue(memdep.StoreQuery{
			PC:       r.pc,
			Instance: uint64(t.rec.id),
			STID:     idEncode(t.rec.id, instIdx),
			TaskPC:   t.rec.pc,
			Addr:     r.addr,
		})
	}
}

// handleViolation records a detected mis-speculation and squashes the
// offending task and all younger in-flight tasks.
func (s *sim) handleViolation(storeTask *execTask, storeRec *dynRec, v arb.Violation) {
	s.res.Misspeculations++
	pair := memdep.PairKey{LoadPC: v.LoadPC, StorePC: storeRec.pc}
	if s.res.MisspecPairs == nil {
		// Freshly allocated per run (never arena-owned): the Result escapes
		// into the engine's memoization cache and must not alias reused
		// storage.  Most runs see only a handful of distinct pairs.
		s.res.MisspecPairs = make(map[memdep.PairKey]uint64, 8)
	}
	s.res.MisspecPairs[pair]++
	for _, ddc := range s.ddcs {
		ddc.Access(pair)
	}
	if s.mds != nil {
		dist := v.LoadTask - v.StoreTask
		s.mds.RecordMisspeculation(pair, dist, storeTask.rec.pc)
	}
	// Squashed tasks are restarted in order: the sequencer re-walks and
	// re-dispatches them one after another, so each successive task restarts
	// a little later.  (Restarting them all in the same cycle would recreate
	// the zero-stagger situation that caused the violation in the first
	// place and lock the processor into a squash-restart resonance.)
	delay := int64(s.cfg.SquashPenalty)
	for idx := int(v.LoadTask); idx < s.nextDispatch; idx++ {
		s.squashTask(&s.tasks[idx], delay)
		delay += int64(s.cfg.SquashPenalty)
	}
}

// squashTask discards the task's speculative work and schedules its restart
// after the given delay.
func (s *sim) squashTask(t *execTask, delay int64) {
	if s.committed[t.rec.id] {
		return
	}
	s.res.Squashes++
	s.res.SquashedInstructions += uint64(t.next)
	if s.mds != nil {
		// Ascending instruction order keeps MDST invalidations (and any
		// predictor effects) deterministic.
		for idx := range t.rec.insts {
			r := &t.rec.insts[idx]
			if r.isLoad {
				if info := &t.loadInfo[r.loadOrd]; info.seen && info.queried {
					s.mds.SquashLoad(info.ldid)
				}
			}
		}
		for i := 0; i < t.next; i++ {
			if t.rec.insts[i].isStore {
				s.mds.SquashStore(idEncode(t.rec.id, i))
			}
		}
	}
	s.arb.SquashTask(uint64(t.rec.id))
	s.resetExecState(t, s.cycle+delay)
	s.changed = true
}

func (s *sim) result() Result {
	r := s.res
	r.Benchmark = s.w.Name
	r.Stages = s.cfg.Stages
	r.Policy = s.cfg.Policy
	r.Cycles = s.cycle
	r.Instructions = s.w.Instructions
	r.Loads = s.w.Loads
	r.Stores = s.w.Stores
	r.ARBBypasses = s.arbBypasses
	r.ARB = s.arb.Stats()
	r.Cache = s.hier.Stats()
	r.Sequencer = s.seq.Stats()
	if s.mds != nil {
		r.MemDep = s.mds.Stats()
	}
	if len(s.ddcs) > 0 {
		// Freshly allocated per run for the same escape reason as
		// MisspecPairs above.
		r.DDCMissRate = make(map[int]float64, len(s.ddcs))
		for _, ddc := range s.ddcs {
			r.DDCMissRate[ddc.Capacity()] = ddc.MissRate() * 100
		}
	}
	return r
}
