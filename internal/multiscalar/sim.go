package multiscalar

import (
	"fmt"

	"memdep/internal/arb"
	"memdep/internal/cache"
	"memdep/internal/ctrlflow"
	"memdep/internal/isa"
	"memdep/internal/memdep"
	"memdep/internal/policy"
)

// idEncode builds the load/store identifier (LDID/STID) for a dynamic memory
// operation from its task index and instruction index.  The identifier is
// stable across squash/re-execution, which is exactly what the MDST needs to
// invalidate the entries of squashed instructions.
func idEncode(taskIdx, instIdx int) int64 {
	return int64(taskIdx)*1_000_000 + int64(instIdx)
}

// idDecode is the inverse of idEncode.
func idDecode(id int64) (taskIdx, instIdx int) {
	return int(id / 1_000_000), int(id % 1_000_000)
}

type waitKind int

const (
	waitAllPrior waitKind = iota // wait until all earlier in-flight stores executed
	waitProducer                 // wait for a specific producer store (PSYNC)
	waitSignal                   // wait for an MDST signal (SYNC/ESYNC)
)

type waitState struct {
	kind     waitKind
	since    int64
	ldid     int64
	producer prodRef
	signaled bool
}

// loadRecord captures, for one committed load, what was predicted and what
// was actually the case -- the raw material of Table 8 and of the
// non-speculative predictor updates.
type loadRecord struct {
	predicted  bool
	actualDep  bool
	producerPC uint64
	pairs      []memdep.PairKey
	ldid       int64
	queried    bool
}

// execTask is the execution state of one task on its processing unit.
type execTask struct {
	rec  *taskRec
	unit int

	next       int
	done       []int64
	storesLeft int
	startAt    int64
	finishedAt int64
	committed  bool

	fuNext         [isa.NumClasses][]int64
	lastFetchBlock uint64
	fetchReady     int64

	wait     *waitState
	loadInfo map[int]*loadRecord
}

type sim struct {
	cfg   Config
	w     *WorkItem
	tasks []execTask

	hier *cache.Hierarchy
	arb  *arb.ARB
	seq  *ctrlflow.Sequencer
	mds  *memdep.System
	ddcs []*memdep.DDC

	cycle        int64
	head         int
	nextDispatch int

	arbBypasses uint64
	res         Result
}

// Simulate runs the work item on the configured processor and returns the
// timing and dependence statistics.
func Simulate(w *WorkItem, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := &sim{
		cfg:  cfg,
		w:    w,
		hier: cache.NewHierarchy(cfg.Cache),
		arb:  arb.New(cfg.ARB),
		seq:  ctrlflow.NewSequencer(cfg.Sequencer),
	}
	if cfg.Policy.UsesPredictor() {
		s.mds = memdep.NewSystem(cfg.MemDep)
	}
	for _, size := range cfg.DDCSizes {
		s.ddcs = append(s.ddcs, memdep.NewDDC(size))
	}
	s.tasks = make([]execTask, len(w.tasks))
	for i := range s.tasks {
		s.tasks[i].rec = &w.tasks[i]
	}
	if err := s.run(); err != nil {
		return Result{}, err
	}
	return s.result(), nil
}

func (s *sim) run() error {
	// Dispatch the initial window.
	for i := 0; i < s.cfg.Stages && i < len(s.tasks); i++ {
		s.dispatch(i, int64(i)*int64(s.cfg.DispatchLatency))
	}
	for s.head < len(s.tasks) {
		if s.cycle > s.cfg.MaxCycles {
			return fmt.Errorf("multiscalar: %q exceeded the cycle limit of %d under %v",
				s.w.Name, s.cfg.MaxCycles, s.cfg.Policy)
		}
		for i := s.head; i < s.nextDispatch; i++ {
			t := &s.tasks[i]
			if !t.committed {
				s.advance(t)
			}
		}
		s.tryCommit()
		s.cycle++
	}
	return nil
}

// dispatch assigns the task to its processing unit and charges the sequencer
// costs (next-task prediction, descriptor cache).
func (s *sim) dispatch(taskIdx int, when int64) {
	t := &s.tasks[taskIdx]
	t.unit = taskIdx % s.cfg.Stages
	prevPC := uint64(0)
	prevKnown := false
	if taskIdx > 0 {
		prevPC = s.tasks[taskIdx-1].rec.pc
		prevKnown = true
	}
	out := s.seq.Dispatch(prevPC, prevKnown, t.rec.pc)
	start := when + int64(s.cfg.DispatchLatency)
	if !out.PredictedCorrectly {
		start += int64(s.cfg.MispredictPenalty)
	}
	if !out.DescriptorHit {
		start += int64(s.cfg.DescriptorMissPenalty)
	}
	t.done = make([]int64, len(t.rec.insts))
	s.resetExecState(t, start)
	s.nextDispatch = taskIdx + 1
}

// resetExecState prepares (or re-prepares, after a squash) a task for
// execution starting at the given cycle.
func (s *sim) resetExecState(t *execTask, start int64) {
	for i := range t.done {
		t.done[i] = -1
	}
	t.next = 0
	t.storesLeft = t.rec.stores
	t.startAt = start
	t.finishedAt = start
	t.wait = nil
	t.loadInfo = make(map[int]*loadRecord, t.rec.loads)
	t.lastFetchBlock = ^uint64(0)
	t.fetchReady = 0
	for c := 0; c < int(isa.NumClasses); c++ {
		n := s.cfg.FUs[c]
		if n < 1 {
			n = 1
		}
		if len(t.fuNext[c]) != n {
			t.fuNext[c] = make([]int64, n)
		}
		for i := range t.fuNext[c] {
			t.fuNext[c][i] = 0
		}
	}
}

// tryCommit retires the head task if it has finished (one commit per cycle).
func (s *sim) tryCommit() {
	if s.head >= len(s.tasks) {
		return
	}
	t := &s.tasks[s.head]
	if s.head >= s.nextDispatch || t.next < len(t.rec.insts) || t.finishedAt > s.cycle {
		return
	}
	s.commitTask(t)
	s.head++
	if s.nextDispatch < len(s.tasks) {
		s.dispatch(s.nextDispatch, s.cycle)
	}
}

func (s *sim) commitTask(t *execTask) {
	t.committed = true
	s.res.Tasks++
	s.arb.CommitTask(uint64(t.rec.id))
	for instIdx, info := range t.loadInfo {
		pred, act := 0, 0
		if info.predicted {
			pred = 1
		}
		if info.actualDep {
			act = 1
		}
		s.res.Breakdown[pred][act]++
		if s.mds != nil && info.queried {
			actualPC := uint64(0)
			if info.actualDep {
				actualPC = info.producerPC
			}
			s.mds.CommitLoad(t.rec.insts[instIdx].pc, actualPC, info.pairs)
		}
	}
}

// ringLatency is the forwarding delay between the units of two tasks over the
// unidirectional ring.
func (s *sim) ringLatency(prodTask, consTask int) int64 {
	if prodTask == consTask {
		return 0
	}
	prodUnit := prodTask % s.cfg.Stages
	consUnit := consTask % s.cfg.Stages
	hops := (consUnit - prodUnit + s.cfg.Stages) % s.cfg.Stages
	return int64(hops) * int64(s.cfg.RingHop)
}

// operandReady computes the earliest cycle at which the instruction's
// register operands are available.  ok is false when a producer has not
// executed yet.
func (s *sim) operandReady(t *execTask, r *dynRec) (int64, bool) {
	ready := t.startAt
	for i := 0; i < r.nSrc; i++ {
		p := r.srcProd[i]
		if p.taskIdx < 0 {
			continue
		}
		var avail int64
		if p.taskIdx == t.rec.id {
			avail = t.done[p.idx]
		} else {
			avail = s.tasks[p.taskIdx].done[p.idx]
			if avail >= 0 {
				avail += s.ringLatency(p.taskIdx, t.rec.id)
			}
		}
		if avail < 0 {
			return 0, false
		}
		if avail > ready {
			ready = avail
		}
	}
	return ready, true
}

// allPriorStoresResolved reports whether every store of every earlier
// in-flight task has executed.
func (s *sim) allPriorStoresResolved(t *execTask) bool {
	for i := s.head; i < t.rec.id; i++ {
		if !s.tasks[i].committed && s.tasks[i].storesLeft > 0 {
			return false
		}
	}
	return true
}

// actualDependence reports whether the load depends on a store of an earlier
// task that is still in flight, and the PC of that store.
func (s *sim) actualDependence(t *execTask, r *dynRec) (bool, uint64) {
	if !r.hasMemProd || r.memProd.taskIdx == t.rec.id {
		return false, 0
	}
	if s.tasks[r.memProd.taskIdx].committed {
		return false, 0
	}
	return true, r.memProdPC
}

// taskPCAt lets the ESYNC predictor look up the task PC at a given instance
// (task) number.
func (s *sim) taskPCAt(instance uint64) (uint64, bool) {
	if instance >= uint64(len(s.tasks)) {
		return 0, false
	}
	return s.tasks[instance].rec.pc, true
}

// loadMayIssue applies the speculation policy to a load whose operands are
// ready.  It returns true when the load may access memory this cycle; when it
// returns false the load (and, because issue is in order, the rest of its
// task) stalls.
func (s *sim) loadMayIssue(t *execTask, r *dynRec, instIdx int) bool {
	info := t.loadInfo[instIdx]
	if info == nil {
		info = &loadRecord{}
		info.actualDep, info.producerPC = s.actualDependence(t, r)
		t.loadInfo[instIdx] = info
	}

	if t.wait == nil {
		switch s.cfg.Policy {
		case policy.Always:
			return true

		case policy.Never:
			if s.allPriorStoresResolved(t) {
				return true
			}
			t.wait = &waitState{kind: waitAllPrior, since: s.cycle}
			s.res.LoadsWaited++
			return false

		case policy.Wait:
			if !info.actualDep {
				return true
			}
			if s.allPriorStoresResolved(t) {
				return true
			}
			t.wait = &waitState{kind: waitAllPrior, since: s.cycle}
			s.res.LoadsWaited++
			return false

		case policy.PerfectSync:
			if !info.actualDep {
				return true
			}
			// Ideal synchronization: the load proceeds as soon as the
			// producing store has issued (the value is forwarded).
			p := r.memProd
			if s.tasks[p.taskIdx].done[p.idx] >= 0 {
				return true
			}
			t.wait = &waitState{kind: waitProducer, since: s.cycle, producer: p}
			s.res.LoadsWaited++
			return false

		case policy.Sync, policy.ESync:
			if info.queried {
				// The prediction was already made for this execution attempt
				// (the load was then stalled by a structural hazard, or has
				// been released from its wait); do not re-query the tables.
				return true
			}
			ldid := idEncode(t.rec.id, instIdx)
			d := s.mds.LoadIssue(memdep.LoadQuery{
				PC:       r.pc,
				Instance: uint64(t.rec.id),
				LDID:     ldid,
				Addr:     r.addr,
				TaskPCAt: s.taskPCAt,
			})
			info.predicted = d.Predicted
			info.queried = true
			info.ldid = ldid
			info.pairs = append([]memdep.PairKey(nil), d.WaitPairs...)
			if !d.Wait {
				return true
			}
			t.wait = &waitState{kind: waitSignal, since: s.cycle, ldid: ldid}
			s.res.LoadsWaited++
			return false

		default:
			return true
		}
	}

	// The load is already waiting: evaluate its release condition.
	w := t.wait
	switch w.kind {
	case waitAllPrior:
		if s.allPriorStoresResolved(t) {
			s.release(t)
			return true
		}
	case waitProducer:
		p := w.producer
		if s.tasks[p.taskIdx].done[p.idx] >= 0 {
			s.release(t)
			return true
		}
	case waitSignal:
		if w.signaled {
			s.release(t)
			return true
		}
		if s.allPriorStoresResolved(t) {
			// Incomplete synchronization (section 4.4.2): the predicted store
			// never signalled; free the entry and weaken the prediction.
			s.mds.ReleaseLoad(w.ldid)
			s.res.FalseDependenceReleases++
			s.release(t)
			return true
		}
	}
	return false
}

func (s *sim) release(t *execTask) {
	s.res.WaitCycles += uint64(s.cycle - t.wait.since)
	t.wait = nil
}

// wakeLoad marks a waiting load as signalled (called when a store's MDST
// signal releases it).
func (s *sim) wakeLoad(ldid int64) {
	taskIdx, _ := idDecode(ldid)
	if taskIdx < 0 || taskIdx >= len(s.tasks) {
		return
	}
	t := &s.tasks[taskIdx]
	if t.wait != nil && t.wait.kind == waitSignal && t.wait.ldid == ldid {
		t.wait.signaled = true
	}
}

// acquireFU reserves a functional unit of the class at the given cycle,
// returning false when all instances are busy.
func (s *sim) acquireFU(t *execTask, class isa.Class, op isa.Op, cycle int64) bool {
	insts := t.fuNext[class]
	for i := range insts {
		if insts[i] <= cycle {
			occupancy := int64(1)
			if !s.cfg.Latencies[class].Pipelined {
				occupancy = int64(s.cfg.Latencies.OpLatency(op))
			}
			insts[i] = cycle + occupancy
			return true
		}
	}
	return false
}

// advance issues up to IssueWidth instructions of the task this cycle.
func (s *sim) advance(t *execTask) {
	if s.cycle < t.startAt || t.next >= len(t.rec.insts) {
		return
	}
	blockSize := uint64(s.hier.Config().ICacheBlock)
	for issued := 0; issued < s.cfg.IssueWidth && t.next < len(t.rec.insts); issued++ {
		idx := t.next
		r := &t.rec.insts[idx]

		// Instruction supply: one cache access per 64-byte block.
		block := r.pc / blockSize
		if block != t.lastFetchBlock {
			t.fetchReady = s.hier.InstrFetch(t.unit, r.pc, s.cycle)
			t.lastFetchBlock = block
		}
		if s.cycle < t.fetchReady {
			return
		}

		ready, ok := s.operandReady(t, r)
		if !ok || ready > s.cycle {
			return
		}

		if r.isLoad && !s.loadMayIssue(t, r, idx) {
			return
		}

		if !s.acquireFU(t, r.class, r.op, s.cycle) {
			return
		}

		var done int64
		switch {
		case r.isLoad:
			if !s.arbLoad(t, r) {
				// ARB bank overflow: proceed untracked (counted).
			}
			done = s.hier.DataAccess(r.addr, s.cycle+1)
		case r.isStore:
			t.storesLeft--
			s.handleStore(t, r, idx)
			// The stored value is visible to consumers one cycle after issue;
			// the cache/bus occupancy is charged separately.
			complete := s.hier.DataAccess(r.addr, s.cycle+1)
			if complete > t.finishedAt {
				t.finishedAt = complete
			}
			done = s.cycle + 1
		default:
			done = s.cycle + int64(s.cfg.Latencies.OpLatency(r.op))
		}

		t.done[idx] = done
		if done > t.finishedAt {
			t.finishedAt = done
		}
		t.next++
	}
}

// arbLoad records the load in the address resolution buffer.
func (s *sim) arbLoad(t *execTask, r *dynRec) bool {
	ok := s.arb.Load(r.addr, uint64(t.rec.id), r.pc)
	if !ok {
		s.arbBypasses++
	}
	return ok
}

// handleStore performs the store-side dependence work: ARB violation
// detection (and the resulting squash) and MDST signalling.
func (s *sim) handleStore(t *execTask, r *dynRec, instIdx int) {
	v, ok := s.arb.Store(r.addr, uint64(t.rec.id))
	if !ok {
		s.arbBypasses++
	}
	if v != nil {
		s.handleViolation(t, r, v)
	}
	if s.mds != nil {
		sd := s.mds.StoreIssue(memdep.StoreQuery{
			PC:       r.pc,
			Instance: uint64(t.rec.id),
			STID:     idEncode(t.rec.id, instIdx),
			TaskPC:   t.rec.pc,
			Addr:     r.addr,
		})
		for _, ldid := range sd.ReleasedLoads {
			s.wakeLoad(ldid)
		}
	}
}

// handleViolation records a detected mis-speculation and squashes the
// offending task and all younger in-flight tasks.
func (s *sim) handleViolation(storeTask *execTask, storeRec *dynRec, v *arb.Violation) {
	s.res.Misspeculations++
	pair := memdep.PairKey{LoadPC: v.LoadPC, StorePC: storeRec.pc}
	if s.res.MisspecPairs == nil {
		s.res.MisspecPairs = make(map[memdep.PairKey]uint64)
	}
	s.res.MisspecPairs[pair]++
	for _, ddc := range s.ddcs {
		ddc.Access(pair)
	}
	if s.mds != nil {
		dist := v.LoadTask - v.StoreTask
		s.mds.RecordMisspeculation(pair, dist, storeTask.rec.pc)
	}
	// Squashed tasks are restarted in order: the sequencer re-walks and
	// re-dispatches them one after another, so each successive task restarts
	// a little later.  (Restarting them all in the same cycle would recreate
	// the zero-stagger situation that caused the violation in the first
	// place and lock the processor into a squash-restart resonance.)
	delay := int64(s.cfg.SquashPenalty)
	for idx := int(v.LoadTask); idx < s.nextDispatch; idx++ {
		s.squashTask(&s.tasks[idx], delay)
		delay += int64(s.cfg.SquashPenalty)
	}
}

// squashTask discards the task's speculative work and schedules its restart
// after the given delay.
func (s *sim) squashTask(t *execTask, delay int64) {
	if t.committed {
		return
	}
	s.res.Squashes++
	s.res.SquashedInstructions += uint64(t.next)
	if s.mds != nil {
		for _, info := range t.loadInfo {
			if info.queried {
				s.mds.SquashLoad(info.ldid)
			}
		}
		for i := 0; i < t.next; i++ {
			if t.rec.insts[i].isStore {
				s.mds.SquashStore(idEncode(t.rec.id, i))
			}
		}
	}
	s.arb.SquashTask(uint64(t.rec.id))
	s.resetExecState(t, s.cycle+delay)
}

func (s *sim) result() Result {
	r := s.res
	r.Benchmark = s.w.Name
	r.Stages = s.cfg.Stages
	r.Policy = s.cfg.Policy
	r.Cycles = s.cycle
	r.Instructions = s.w.Instructions
	r.Loads = s.w.Loads
	r.Stores = s.w.Stores
	r.ARB = s.arb.Stats()
	r.Cache = s.hier.Stats()
	r.Sequencer = s.seq.Stats()
	if s.mds != nil {
		r.MemDep = s.mds.Stats()
	}
	if len(s.ddcs) > 0 {
		r.DDCMissRate = make(map[int]float64, len(s.ddcs))
		for _, ddc := range s.ddcs {
			r.DDCMissRate[ddc.Capacity()] = ddc.MissRate() * 100
		}
	}
	return r
}
