package multiscalar

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"memdep/internal/policy"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

// TestParseCoreModeRoundTrip checks that String and ParseCoreMode invert each
// other for every defined core, case-insensitively (matching policy.Parse).
func TestParseCoreModeRoundTrip(t *testing.T) {
	for _, m := range []CoreMode{CoreEvent, CoreStepped} {
		mixed := strings.ToUpper(m.String()[:1]) + m.String()[1:]
		for _, spelling := range []string{
			m.String(),
			strings.ToUpper(m.String()),
			"  " + mixed + " ",
		} {
			got, err := ParseCoreMode(spelling)
			if err != nil {
				t.Fatalf("ParseCoreMode(%q): %v", spelling, err)
			}
			if got != m {
				t.Fatalf("ParseCoreMode(%q) = %v, want %v", spelling, got, m)
			}
		}
	}
	if _, err := ParseCoreMode("polling"); err == nil {
		t.Fatal("ParseCoreMode accepted an unknown mode")
	}
}

// TestCoreModeJSONRoundTrip checks the text encoding used in JSON payloads.
func TestCoreModeJSONRoundTrip(t *testing.T) {
	for _, m := range []CoreMode{CoreEvent, CoreStepped} {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal %v: %v", m, err)
		}
		var back CoreMode
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != m {
			t.Fatalf("round trip of %v gave %v", m, back)
		}
	}
	if _, err := json.Marshal(CoreMode(99)); err == nil {
		t.Fatal("marshal accepted an invalid core mode")
	}
}

// TestResultJSONRoundTrip encodes a real simulation result -- including the
// PairKey-keyed mis-speculation map and the DDC miss rates -- and checks the
// decoded value is deeply equal.
func TestResultJSONRoundTrip(t *testing.T) {
	item, err := Preprocess(workload.MustGet("compress").Build(1),
		trace.Config{MaxInstructions: 40_000})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	for _, pol := range []policy.Kind{policy.Always, policy.ESync} {
		cfg := DefaultConfig(8, pol)
		cfg.DDCSizes = []int{32, 128}
		res, err := Simulate(item, cfg)
		if err != nil {
			t.Fatalf("Simulate(%v): %v", pol, err)
		}
		if len(res.MisspecPairs) == 0 {
			t.Fatalf("%v: no mis-speculated pairs; test needs a non-trivial map", pol)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal result: %v", err)
		}
		var back Result
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal result: %v", err)
		}
		if !reflect.DeepEqual(res, back) {
			t.Fatalf("result did not round trip through JSON:\n got %+v\nwant %+v", back, res)
		}
	}
}
