package multiscalar

import (
	"context"
	"slices"
	"sync"

	"memdep/internal/arb"
	"memdep/internal/cache"
	"memdep/internal/ctrlflow"
	"memdep/internal/isa"
	"memdep/internal/memdep"
)

// Simulator is a reusable timing-simulation arena.  It owns all per-run
// backing storage -- the per-task execution state and its flat SoA arrays,
// the subsystem models (cache hierarchy, ARB, sequencer, dependence
// predictor, DDCs), the functional-unit pools, the wake-event heap and the
// predicted-pair buffer -- and re-slices rather than re-allocates it on every
// Simulate call, so a warmed-up simulator runs with essentially zero heap
// allocations per simulation (the per-run Result maps are the deliberate
// exception; see sim.result).
//
// A Simulator is NOT safe for concurrent use; use one per goroutine (the
// engine keeps one per worker) or go through SimulateContext, which draws
// from a shared pool.
//
//memdep:resettable
type Simulator struct {
	s sim

	// The effective (post-defaults) configurations the current subsystem
	// instances were built with.  When a run's configuration matches, the
	// subsystem is Reset in place; otherwise it is rebuilt.  They must
	// survive reset: the config diff against them is what decides reuse.
	hierCfg  cache.Config             //lint:reset-exempt config-diff baseline, compared before state is cleared
	arbCfg   arb.Config               //lint:reset-exempt config-diff baseline, compared before state is cleared
	seqCfg   ctrlflow.SequencerConfig //lint:reset-exempt config-diff baseline, compared before state is cleared
	mdsCfg   memdep.Config            //lint:reset-exempt config-diff baseline, compared before state is cleared
	ddcSizes []int                    //lint:reset-exempt config-diff baseline, compared before state is cleared

	// mdsCache parks the dependence-predictor system while runs alternate
	// to a policy that does not use one, so flipping policies on a reused
	// arena does not discard (and later rebuild) the tables.
	mdsCache *memdep.System //lint:reset-exempt deliberately parked across runs, see doc comment
}

// NewSimulator returns an empty arena.  The first Simulate call sizes it.
func NewSimulator() *Simulator { return &Simulator{} }

// Simulate runs the work item on the configured processor, reusing the
// arena's storage from previous runs.  Results are self-contained copies and
// remain valid after subsequent runs.
func (sm *Simulator) Simulate(ctx context.Context, w *WorkItem, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	sm.reset(ctx, w, cfg)
	s := &sm.s
	err := s.run()
	s.ctx = nil
	if err != nil {
		return Result{}, err
	}
	return s.result(), nil
}

// reset prepares the arena for one run: subsystems whose configuration is
// unchanged are cleared in place, per-task state is re-carved from the flat
// backing arrays (grown only when the work item outsizes every previous
// one), and all scalar state is zeroed.
func (sm *Simulator) reset(ctx context.Context, w *WorkItem, cfg Config) {
	s := &sm.s
	s.ctx, s.cfg, s.w = ctx, cfg, w
	s.stepped = cfg.Core == CoreStepped

	if s.hier == nil || sm.hierCfg != cfg.Cache {
		s.hier = cache.NewHierarchy(cfg.Cache)
		sm.hierCfg = cfg.Cache
	} else {
		s.hier.Reset()
	}
	s.iBlock = uint64(s.hier.Config().ICacheBlock)

	if s.arb == nil || sm.arbCfg != cfg.ARB {
		s.arb = arb.New(cfg.ARB)
		sm.arbCfg = cfg.ARB
	} else {
		s.arb.Reset()
	}

	if s.seq == nil || sm.seqCfg != cfg.Sequencer {
		s.seq = ctrlflow.NewSequencer(cfg.Sequencer)
		sm.seqCfg = cfg.Sequencer
	} else {
		s.seq.Reset()
	}

	if cfg.Policy.UsesPredictor() {
		if s.mds == nil {
			s.mds, sm.mdsCache = sm.mdsCache, nil
		}
		if s.mds == nil || sm.mdsCfg != cfg.MemDep {
			s.mds = memdep.NewSystem(cfg.MemDep)
			sm.mdsCfg = cfg.MemDep
			// The hook captures &sm.s, which is stable for the life of the
			// arena, so it is installed once per build rather than per run.
			s.mds.SetReleaseHook(s.wakeLoad)
		} else {
			s.mds.Reset()
		}
	} else if s.mds != nil {
		sm.mdsCache, s.mds = s.mds, nil
	}

	if !slices.Equal(sm.ddcSizes, cfg.DDCSizes) {
		s.ddcs = s.ddcs[:0]
		for _, size := range cfg.DDCSizes {
			s.ddcs = append(s.ddcs, memdep.NewDDC(size))
		}
		sm.ddcSizes = append(sm.ddcSizes[:0], cfg.DDCSizes...)
	} else {
		for _, ddc := range s.ddcs {
			ddc.Reset()
		}
	}

	// Per-task execution state, carved out of flat backing arrays sized by
	// the largest work item seen so far.
	n := len(w.tasks)
	if cap(s.tasks) < n {
		s.tasks = make([]execTask, n)
	}
	s.tasks = s.tasks[:n]
	if cap(s.wake) < n {
		s.wake = make([]int64, n)
	}
	s.wake = s.wake[:n]
	if cap(s.committed) < n {
		s.committed = make([]bool, n)
	}
	s.committed = s.committed[:n]
	for i := range s.wake {
		s.wake[i] = 0
		s.committed[i] = false
	}
	if cap(s.doneAll) < int(w.Instructions) {
		s.doneAll = make([]int64, w.Instructions)
	}
	if cap(s.loadAll) < int(w.Loads) {
		s.loadAll = make([]loadRecord, w.Loads)
	}
	done := s.doneAll[:w.Instructions]
	loads := s.loadAll[:w.Loads]
	for i := range s.tasks {
		t := &s.tasks[i]
		*t = execTask{rec: &w.tasks[i]}
		ni := len(t.rec.insts)
		t.done = done[:ni:ni]
		done = done[ni:]
		l := t.rec.loads
		t.loadInfo = loads[:l:l]
		loads = loads[l:]
	}

	// Functional-unit reservation tables: one per class per unit, all carved
	// from one flat array.  resetExecState zeroes a unit's tables when a
	// task is (re-)dispatched to it, so stale cycles never leak.
	var fuN [isa.NumClasses]int
	fuTotal := 0
	for c := range fuN {
		k := cfg.FUs[c]
		if k < 1 {
			k = 1
		}
		fuN[c] = k
		fuTotal += k
	}
	fuTotal *= cfg.Stages
	if cap(s.fuAll) < fuTotal {
		s.fuAll = make([]int64, fuTotal)
	}
	fu := s.fuAll[:fuTotal]
	if cap(s.fuPool) < cfg.Stages {
		s.fuPool = make([]([isa.NumClasses][]int64), cfg.Stages)
	}
	s.fuPool = s.fuPool[:cfg.Stages]
	for u := range s.fuPool {
		for c := range fuN {
			k := fuN[c]
			s.fuPool[u][c] = fu[:k:k]
			fu = fu[k:]
		}
	}

	s.cycle, s.head, s.nextDispatch = 0, 0, 0
	s.changed, s.nextEvent = false, never
	s.events.reset(n)
	s.pairBuf = s.pairBuf[:0]
	s.arbBypasses = 0
	s.res = Result{}
}

// simulatorPool backs SimulateContext: one-shot callers still amortise arena
// construction across calls without managing Simulator lifetimes themselves.
var simulatorPool = sync.Pool{New: func() any { return NewSimulator() }}

// SimulateContext is Simulate with cooperative cancellation: the run loop
// checks the context every few thousand scheduling passes and aborts with
// ctx.Err(), so a cancelled service request stops burning CPU promptly
// without a per-cycle branch on the hot path.  It draws a pooled Simulator
// arena, so repeated calls reuse backing storage; callers with a natural
// per-worker home for an arena should hold a Simulator directly instead.
func SimulateContext(ctx context.Context, w *WorkItem, cfg Config) (Result, error) {
	sm := simulatorPool.Get().(*Simulator)
	res, err := sm.Simulate(ctx, w, cfg)
	simulatorPool.Put(sm)
	return res, err
}
