package multiscalar

import (
	"fmt"
	"reflect"
	"testing"

	"memdep/internal/arb"
	"memdep/internal/isa"
	"memdep/internal/policy"
	"memdep/internal/program"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

// buildRecurrence builds a small program with one hot cross-task store→load
// recurrence: each loop iteration (one task) loads a global, does some work,
// and stores it back late in the iteration.
func buildRecurrence(iters int64) *program.Program {
	b := program.NewBuilder("recurrence")
	b.AllocWords("acc", 1)
	b.AllocWords("scratch", 64)
	b.LoadAddr(27, "acc")
	b.LoadAddr(26, "scratch")
	b.LoadImm(25, iters)
	b.Loop(24, 25, true, func() {
		b.Load(2, 27, 0) // early load of the accumulator
		// Filler work so the store lands late in the task.
		for i := 0; i < 10; i++ {
			b.AddI(3, 24, int64(i))
			b.Mul(3, 3, 3)
			b.AndI(3, 3, 0xff)
			b.SllI(4, 3, 3)
			b.Add(4, 4, 26)
			b.Store(3, 4, 0)
			b.Load(5, 4, 0)
			b.Add(2, 2, 5)
		}
		b.Store(2, 27, 0) // late store of the accumulator
	})
	b.Load(isa.RV, 27, 0)
	b.Halt()
	return b.MustBuild()
}

func prep(t *testing.T, p *program.Program, max uint64) *WorkItem {
	t.Helper()
	w, err := Preprocess(p, trace.Config{MaxInstructions: max})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return w
}

func simulate(t *testing.T, w *WorkItem, stages int, pol policy.Kind) Result {
	t.Helper()
	res, err := Simulate(w, DefaultConfig(stages, pol))
	if err != nil {
		t.Fatalf("Simulate(%v, %d stages): %v", pol, stages, err)
	}
	return res
}

func TestPreprocessCounts(t *testing.T) {
	p := buildRecurrence(20)
	w := prep(t, p, 0)
	if w.Instructions == 0 || w.Loads == 0 || w.Stores == 0 {
		t.Fatalf("work item empty: %+v", w)
	}
	if w.Tasks() < 20 {
		t.Errorf("tasks = %d, want >= 20 (one per iteration)", w.Tasks())
	}
	if w.AvgTaskSize() <= 0 {
		t.Error("average task size must be positive")
	}
	// Committed counts must match an independent functional run.
	st, err := trace.Run(p, trace.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != w.Instructions || st.Loads != w.Loads || st.Stores != w.Stores {
		t.Errorf("work item counts %d/%d/%d do not match functional run %d/%d/%d",
			w.Instructions, w.Loads, w.Stores, st.Instructions, st.Loads, st.Stores)
	}
}

func TestPreprocessFindsCrossTaskProducers(t *testing.T) {
	p := buildRecurrence(10)
	w := prep(t, p, 0)
	cross := 0
	for ti := range w.tasks {
		for _, r := range w.tasks[ti].insts {
			if r.isLoad && r.hasMemProd && r.memProd.taskIdx != w.tasks[ti].id {
				cross++
			}
		}
	}
	if cross < 5 {
		t.Errorf("cross-task memory producers = %d, want >= 5", cross)
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	cfg := DefaultConfig(8, policy.Sync)
	if cfg.Stages != 8 || cfg.IssueWidth != 2 {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.MemDep.SyncSlots != 8 {
		t.Errorf("memdep sync slots = %d, want 8", cfg.MemDep.SyncSlots)
	}
	if pk := cfg.MemDep.Predictor; pk.String() != "SYNC" {
		t.Errorf("predictor = %v", pk)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := Config{Policy: policy.Kind(99)}
	if err := bad.Validate(); err == nil {
		t.Error("invalid policy must fail validation")
	}
}

func TestSimulateCompletesAndCommitsEverything(t *testing.T) {
	w := prep(t, buildRecurrence(50), 0)
	for _, pol := range policy.All() {
		res := simulate(t, w, 4, pol)
		if res.Instructions != w.Instructions {
			t.Errorf("%v: committed %d instructions, want %d", pol, res.Instructions, w.Instructions)
		}
		if res.Tasks != uint64(w.Tasks()) {
			t.Errorf("%v: committed %d tasks, want %d", pol, res.Tasks, w.Tasks())
		}
		if res.Cycles <= 0 || res.IPC() <= 0 {
			t.Errorf("%v: cycles=%d ipc=%v", pol, res.Cycles, res.IPC())
		}
	}
}

func TestOraclePoliciesNeverMisspeculate(t *testing.T) {
	w := prep(t, buildRecurrence(60), 0)
	for _, stages := range []int{4, 8} {
		for _, pol := range []policy.Kind{policy.Never, policy.Wait, policy.PerfectSync} {
			res := simulate(t, w, stages, pol)
			if res.Misspeculations != 0 {
				t.Errorf("%v/%d stages: %d mis-speculations, want 0", pol, stages, res.Misspeculations)
			}
			if res.SquashedInstructions != 0 {
				t.Errorf("%v/%d stages: squashed %d instructions, want 0", pol, stages, res.SquashedInstructions)
			}
		}
	}
}

func TestBlindSpeculationMisspeculatesOnRecurrence(t *testing.T) {
	w := prep(t, buildRecurrence(60), 0)
	res := simulate(t, w, 4, policy.Always)
	if res.Misspeculations == 0 {
		t.Error("blind speculation on a tight recurrence must mis-speculate")
	}
	if len(res.MisspecPairs) == 0 {
		t.Error("mis-speculation pairs must be recorded")
	}
}

func TestPerfectSyncIsUpperBound(t *testing.T) {
	w := prep(t, workload.MustGet("compress").Build(1), 40_000)
	for _, stages := range []int{4, 8} {
		psync := simulate(t, w, stages, policy.PerfectSync)
		for _, pol := range []policy.Kind{policy.Never, policy.Always, policy.Wait, policy.Sync, policy.ESync} {
			res := simulate(t, w, stages, pol)
			// Allow a 2% tolerance: PSYNC is an idealised policy, not a
			// strict bound on every cycle-level interaction.
			if float64(res.Cycles) < float64(psync.Cycles)*0.98 {
				t.Errorf("%v/%d stages: %d cycles beats PSYNC's %d", pol, stages, res.Cycles, psync.Cycles)
			}
		}
	}
}

func TestAlwaysBeatsNeverOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping workload timing comparison in -short mode")
	}
	for _, name := range []string{"compress", "espresso", "xlisp"} {
		w := prep(t, workload.MustGet(name).Build(1), 40_000)
		never := simulate(t, w, 4, policy.Never)
		always := simulate(t, w, 4, policy.Always)
		if always.Cycles >= never.Cycles {
			t.Errorf("%s: ALWAYS (%d cycles) must beat NEVER (%d cycles)",
				name, always.Cycles, never.Cycles)
		}
	}
}

func TestMechanismReducesMisspeculations(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping workload timing comparison in -short mode")
	}
	w := prep(t, workload.MustGet("compress").Build(1), 40_000)
	always := simulate(t, w, 4, policy.Always)
	sync := simulate(t, w, 4, policy.Sync)
	if always.Misspeculations == 0 {
		t.Fatal("expected mis-speculations under blind speculation")
	}
	if sync.Misspeculations*4 > always.Misspeculations {
		t.Errorf("SYNC misspeculations %d not much lower than ALWAYS %d",
			sync.Misspeculations, always.Misspeculations)
	}
	if sync.Cycles >= always.Cycles {
		t.Errorf("SYNC (%d cycles) should beat ALWAYS (%d cycles) on compress",
			sync.Cycles, always.Cycles)
	}
}

func TestCommittedWorkIdenticalAcrossPolicies(t *testing.T) {
	w := prep(t, buildRecurrence(40), 0)
	var ref Result
	for i, pol := range policy.All() {
		res := simulate(t, w, 4, pol)
		if i == 0 {
			ref = res
			continue
		}
		if res.Instructions != ref.Instructions || res.Loads != ref.Loads ||
			res.Stores != ref.Stores || res.Tasks != ref.Tasks {
			t.Errorf("%v: committed work differs from %v", pol, ref.Policy)
		}
	}
}

// TestSimulationRunToRunDeterministic is the regression test for the
// map-iteration-order bug: commitTask/squashTask used to walk a
// map[int]*loadRecord while updating the MDPT/MDST, so predictor state --
// and therefore every downstream statistic -- could vary run to run.  The
// full Result (including the MemDep counters) must now be identical across
// in-process reruns, for every policy and both cores.
func TestSimulationRunToRunDeterministic(t *testing.T) {
	w := prep(t, buildRecurrence(40), 0)
	for _, core := range []CoreMode{CoreEvent, CoreStepped} {
		for _, pol := range policy.All() {
			cfg := DefaultConfig(4, pol)
			cfg.Core = core
			a, err := Simulate(w, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", core, pol, err)
			}
			b, err := Simulate(w, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", core, pol, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v/%v: results differ between identical runs:\n%+v\nvs\n%+v", core, pol, a, b)
			}
		}
	}
}

// TestCoresCycleIdentical asserts the central guarantee of the event-driven
// rewrite: skipping cycles in which no task can make progress changes
// nothing.  The full Result -- cycles, squashes, wait accounting, predictor
// breakdown, cache/ARB/sequencer/MDPT counters -- must be identical between
// the event-driven and the stepped reference core.
func TestCoresCycleIdentical(t *testing.T) {
	items := map[string]*WorkItem{
		"recurrence": prep(t, buildRecurrence(60), 0),
		"compress":   prep(t, workload.MustGet("compress").Build(1), 20_000),
		"xlisp":      prep(t, workload.MustGet("xlisp").Build(1), 20_000),
	}
	for name, w := range items {
		for _, stages := range []int{4, 8} {
			for _, pol := range policy.All() {
				event := DefaultConfig(stages, pol)
				event.Core = CoreEvent
				stepped := DefaultConfig(stages, pol)
				stepped.Core = CoreStepped
				re, err := Simulate(w, event)
				if err != nil {
					t.Fatalf("%s/%d/%v event: %v", name, stages, pol, err)
				}
				rs, err := Simulate(w, stepped)
				if err != nil {
					t.Fatalf("%s/%d/%v stepped: %v", name, stages, pol, err)
				}
				if !reflect.DeepEqual(re, rs) {
					t.Errorf("%s/%d stages/%v: event and stepped cores disagree:\nevent:   %+v\nstepped: %+v",
						name, stages, pol, re, rs)
				}
			}
		}
	}
}

// goldenFingerprint compresses the deterministic scalar core of a Result
// into one comparable line.
func goldenFingerprint(r Result) string {
	return fmt.Sprintf("cycles=%d tasks=%d misspec=%d squashes=%d squashedInstr=%d waited=%d waitCycles=%d falseRel=%d breakdown=%v arbBypass=%d",
		r.Cycles, r.Tasks, r.Misspeculations, r.Squashes, r.SquashedInstructions,
		r.LoadsWaited, r.WaitCycles, r.FalseDependenceReleases, r.Breakdown, r.ARBBypasses)
}

// TestGoldenResults pins the simulator's observable behaviour on one small
// benchmark under every policy.  The values come from the stepped reference
// core after the deterministic-update-order fix (the event-driven core
// produces the same ones, and the regenerated EXPERIMENTS.md matches the
// seed's byte for byte) and must survive any future optimization unchanged;
// an intentional semantic change must update them in the same commit.
func TestGoldenResults(t *testing.T) {
	golden := map[policy.Kind]string{
		policy.Never:       "cycles=5139 tasks=32 misspec=0 squashes=0 squashedInstr=0 waited=30 waitCycles=14493 falseRel=0 breakdown=[[301 30] [0 0]] arbBypass=0",
		policy.Always:      "cycles=5165 tasks=32 misspec=30 squashes=87 squashedInstr=6631 waited=0 waitCycles=0 falseRel=0 breakdown=[[331 0] [0 0]] arbBypass=0",
		policy.Wait:        "cycles=5139 tasks=32 misspec=0 squashes=0 squashedInstr=0 waited=30 waitCycles=14493 falseRel=0 breakdown=[[301 30] [0 0]] arbBypass=0",
		policy.PerfectSync: "cycles=5139 tasks=32 misspec=0 squashes=0 squashedInstr=0 waited=30 waitCycles=14493 falseRel=0 breakdown=[[301 30] [0 0]] arbBypass=0",
		policy.Sync:        "cycles=4954 tasks=32 misspec=4 squashes=6 squashedInstr=233 waited=28 waitCycles=12773 falseRel=0 breakdown=[[301 0] [2 28]] arbBypass=0",
		policy.ESync:       "cycles=4954 tasks=32 misspec=4 squashes=6 squashedInstr=233 waited=28 waitCycles=12773 falseRel=0 breakdown=[[301 0] [2 28]] arbBypass=0",
	}
	w := prep(t, buildRecurrence(30), 0)
	for _, pol := range policy.All() {
		res := simulate(t, w, 4, pol)
		got := goldenFingerprint(res)
		want, ok := golden[pol]
		if !ok {
			t.Errorf("no golden entry for %v; current fingerprint:\n%q", pol, got)
			continue
		}
		if got != want {
			t.Errorf("%v fingerprint drifted:\ngot  %s\nwant %s", pol, got, want)
		}
	}
}

// TestARBBypassesSurfaced forces ARB bank overflow with a one-entry buffer
// and checks the previously dropped counter reaches the Result.
func TestARBBypassesSurfaced(t *testing.T) {
	w := prep(t, buildRecurrence(20), 0)
	cfg := DefaultConfig(4, policy.Always)
	cfg.ARB = arb.Config{Banks: 1, EntriesPerBank: 1, BlockSize: 64}
	res, err := Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ARBBypasses == 0 {
		t.Error("a one-entry ARB on a multi-address workload must overflow, ARBBypasses = 0")
	}
	if res.ARBBypasses != res.ARB.StallsFull {
		t.Errorf("ARBBypasses = %d, want ARB.StallsFull = %d (every overflow is a bypass)",
			res.ARBBypasses, res.ARB.StallsFull)
	}
	// The paper-sized ARB must not overflow on the same workload.
	big := simulate(t, w, 4, policy.Always)
	if big.ARBBypasses != 0 {
		t.Errorf("default ARB overflowed %d times on a small workload", big.ARBBypasses)
	}
}

func TestPredictionBreakdownCoversAllLoads(t *testing.T) {
	w := prep(t, buildRecurrence(40), 0)
	res := simulate(t, w, 4, policy.Sync)
	if res.Breakdown.Total() != res.Loads {
		t.Errorf("breakdown total %d != committed loads %d", res.Breakdown.Total(), res.Loads)
	}
	sum := 0.0
	for p := 0; p < 2; p++ {
		for a := 0; a < 2; a++ {
			sum += res.Breakdown.Percent(p, a)
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("breakdown percentages sum to %v", sum)
	}
}

func TestDDCFeedOnMultiscalarMisspecs(t *testing.T) {
	w := prep(t, buildRecurrence(60), 0)
	cfg := DefaultConfig(4, policy.Always)
	cfg.DDCSizes = []int{4, 64}
	res, err := Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misspeculations == 0 {
		t.Skip("no mis-speculations observed; DDC feed not exercised")
	}
	if len(res.DDCMissRate) != 2 {
		t.Fatalf("DDC miss rates = %v", res.DDCMissRate)
	}
	if res.DDCMissRate[64] > res.DDCMissRate[4] {
		t.Errorf("larger DDC must not miss more: %v", res.DDCMissRate)
	}
}

func TestMoreStagesMoreMisspeculations(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping workload timing comparison in -short mode")
	}
	w := prep(t, workload.MustGet("xlisp").Build(1), 40_000)
	s4 := simulate(t, w, 4, policy.Always)
	s8 := simulate(t, w, 8, policy.Always)
	if s8.Misspeculations < s4.Misspeculations {
		t.Errorf("8 stages (%d) should see at least as many mis-speculations as 4 (%d)",
			s8.Misspeculations, s4.Misspeculations)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Cycles: 1000, Instructions: 2500, Loads: 500, Misspeculations: 25}
	if r.IPC() != 2.5 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.MisspecsPerCommittedLoad() != 0.05 {
		t.Errorf("misspec/load = %v", r.MisspecsPerCommittedLoad())
	}
	base := Result{Cycles: 1200}
	if got := r.SpeedupOver(base); got < 19.9 || got > 20.1 {
		t.Errorf("speedup = %v, want 20%%", got)
	}
	var zero Result
	if zero.IPC() != 0 || zero.MisspecsPerCommittedLoad() != 0 || zero.SpeedupOver(base) != 0 {
		t.Error("zero result metrics must be zero")
	}
}

func TestIDEncodeDecode(t *testing.T) {
	cases := []struct{ task, inst int }{{0, 0}, {1, 5}, {999, 123}, {12345, 999_999}}
	for _, c := range cases {
		id := idEncode(c.task, c.inst)
		ta, in := idDecode(id)
		if ta != c.task || in != c.inst {
			t.Errorf("round trip (%d,%d) -> %d -> (%d,%d)", c.task, c.inst, id, ta, in)
		}
	}
}

func TestStagesAffectThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping workload timing comparison in -short mode")
	}
	w := prep(t, workload.MustGet("espresso").Build(1), 40_000)
	s4 := simulate(t, w, 4, policy.PerfectSync)
	s8 := simulate(t, w, 8, policy.PerfectSync)
	if s8.Cycles >= s4.Cycles {
		t.Errorf("8 stages (%d cycles) should not be slower than 4 stages (%d cycles) under PSYNC",
			s8.Cycles, s4.Cycles)
	}
}

func TestSimulateErrorOnCycleLimit(t *testing.T) {
	w := prep(t, buildRecurrence(50), 0)
	cfg := DefaultConfig(4, policy.Always)
	cfg.MaxCycles = 10
	if _, err := Simulate(w, cfg); err == nil {
		t.Error("expected an error when the cycle limit is exceeded")
	}
}
