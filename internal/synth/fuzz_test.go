package synth

import (
	"bytes"
	"fmt"
	"maps"
	"slices"
	"testing"

	"memdep/internal/program"
)

// digestProgram renders a program into a canonical byte form -- every field,
// map keys sorted -- so two structurally identical programs digest
// byte-identically and any divergence (an extra instruction, a shifted data
// word, a moved task boundary) shows up as a byte difference.
func digestProgram(p *program.Program) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "name=%q entry=%d base=%d size=%d stack=%d\n",
		p.Name, p.Entry, p.DataBase, p.DataSize, p.StackBase)
	for i, ins := range p.Code {
		fmt.Fprintf(&b, "%d: %+v\n", i, ins)
	}
	for _, addr := range slices.Sorted(maps.Keys(p.DataInit)) {
		fmt.Fprintf(&b, "data %d = %d\n", addr, p.DataInit[addr])
	}
	for _, idx := range slices.Sorted(maps.Keys(p.TaskEntries)) {
		fmt.Fprintf(&b, "task %d\n", idx)
	}
	for _, name := range slices.Sorted(maps.Keys(p.Labels)) {
		fmt.Fprintf(&b, "label %s = %d\n", name, p.Labels[name])
	}
	for _, name := range slices.Sorted(maps.Keys(p.Symbols)) {
		fmt.Fprintf(&b, "sym %s = %d\n", name, p.Symbols[name])
	}
	return b.Bytes()
}

// FuzzSynthBuild checks the generator's determinism contract on random
// specs: a valid spec builds a byte-identical program on every call, the
// normalized spec builds the same program as the raw one, and the cache key
// is stable across normalization.  Any platform- or iteration-order
// dependence in generation breaks workload memoization and run-to-run
// reproducibility, so it must show up here first.
func FuzzSynthBuild(f *testing.F) {
	f.Add(uint64(1), 4096, 64, 12, 4, 0.25, 0.15, 0.5, 1, 0.25, 1)
	f.Add(uint64(99), 0, 0, 0, 0, 0.0, 0.0, 0.0, 0, 0.0, 2)
	f.Add(uint64(7), 8192, 128, 20, 19, 0.4, 0.3, 1.0, 5, 1.0, 3)
	f.Add(uint64(1234567), 1000, 16, 3, 1, 0.9, 0.05, 0.1, 64, 0.5, 1)
	f.Fuzz(func(t *testing.T, seed uint64, ops, body, taskSize, taskSpread int,
		loadFrac, storeFrac, depFrac float64, alias int, loopCarried float64, scale int) {
		spec := Spec{
			Seed:         seed,
			Ops:          ops,
			Body:         body,
			TaskSize:     taskSize,
			TaskSpread:   taskSpread,
			LoadFrac:     loadFrac,
			StoreFrac:    storeFrac,
			DepFrac:      depFrac,
			AliasSetSize: alias,
			LoopCarried:  loopCarried,
		}
		if spec.Validate() != nil {
			t.Skip("invalid spec; the facade rejects it before Build")
		}
		norm := spec.Normalize()
		// Keep the fuzz budget on spec variety, not giant programs.
		if norm.Ops > 65536 || norm.Body > 2048 || norm.AliasSetSize > 1024 {
			t.Skip("oversized workload")
		}
		if scale < 1 || scale > 3 {
			scale = 1
		}

		if specKey, normKey := spec.Key(), norm.Key(); specKey != normKey {
			t.Errorf("cache key changed across Normalize:\nraw:  %s\nnorm: %s", specKey, normKey)
		}
		first := digestProgram(spec.Build(scale))
		if again := digestProgram(spec.Build(scale)); !bytes.Equal(first, again) {
			t.Errorf("Build is not deterministic: two builds of %+v at scale %d differ", spec, scale)
		}
		if normed := digestProgram(norm.Build(scale)); !bytes.Equal(first, normed) {
			t.Errorf("normalized spec builds a different program than the raw spec: %+v", spec)
		}
	})
}
