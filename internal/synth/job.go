package synth

import (
	"context"
	"fmt"

	"memdep/internal/engine"
)

// BuildKind is the engine job kind that builds a synthetic workload program.
const BuildKind = "synth/build"

// BuildJob is the engine spec for constructing a synthetic workload's program
// at a scale.  A Scale of 0 (or negative) runs at scale 1.  The job resolves
// to a *program.Program and is keyed on the full normalized spec (including
// the seed), so every request naming the same spec shares one build -- and,
// through it, one functional trace and one preprocessed work item.
type BuildJob struct {
	Spec  Spec
	Scale int
}

// JobKind implements engine.Spec.
func (BuildJob) JobKind() string { return BuildKind }

// CacheKey implements engine.Spec.
func (j BuildJob) CacheKey() string { return fmt.Sprintf("%s@%d", j.Spec.Key(), j.Scale) }

// buildSimulator executes BuildJob specs.
type buildSimulator struct{}

// BuildSimulator returns the engine simulator for the synth/build kind.
func BuildSimulator() engine.Simulator { return buildSimulator{} }

func (buildSimulator) JobKind() string { return BuildKind }

func (buildSimulator) Simulate(_ context.Context, _ *engine.Engine, spec engine.Spec) (any, error) {
	job, ok := spec.(BuildJob)
	if !ok {
		return nil, fmt.Errorf("synth: spec %T is not a BuildJob", spec)
	}
	if err := job.Spec.Validate(); err != nil {
		return nil, err
	}
	return job.Spec.Build(job.Scale), nil
}
