package synth

// rng is a self-contained splitmix64 generator.  The generator is part of
// the workload-identity contract: a Spec's program must be byte-identical
// across Go versions, platforms and time, so the package cannot depend on
// math/rand sequence stability.
type rng struct {
	state uint64
}

// newRNG seeds a generator.  Every seed (including 0) is a distinct stream.
func newRNG(seed uint64) *rng {
	return &rng{state: seed}
}

// next returns the next 64 random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).  The slight modulo bias is irrelevant for
// workload generation (n is always far below 2^32).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a value in [0, 1) with 53 random bits.
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
