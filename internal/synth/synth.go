// Package synth generates synthetic workloads from a seeded, parameterized
// model of memory-dependence behaviour.
//
// The committed benchmark suite (internal/workload) mimics the paper's fixed
// SPEC stand-ins; this package opens the scenario space beyond it: a Spec
// describes the *dependence structure* of a workload -- trace length, task
// sizes, instruction mix, a store→load dependence-distance histogram, alias
// intensity and a loop-carried-dependence rate -- and Build deterministically
// assembles a program (internal/program) whose committed instruction stream
// exhibits that structure.  The program is an ordinary program of the
// repository's ISA, so every downstream layer (functional trace, window
// analysis, Multiscalar preprocess + simulate, predictors, experiments)
// consumes it unchanged.
//
// Determinism is the core contract: the same Spec and Seed produce a
// byte-identical program -- and therefore a byte-identical committed trace
// and DeepEqual simulation results -- on every platform and at every engine
// worker count.  All randomness comes from a self-contained splitmix64
// generator (no dependence on math/rand sequences), and all sampling happens
// at build time; the generated program itself is branch-deterministic.
//
// The generated shape is a single counted loop over a straight-line body:
// recurring static PCs are what make the dependences *learnable* (the MDPT
// and store-set predictors key on static load/store PCs), exactly like the
// paper's hot static pairs.  Each store owns a small "alias set" of
// addresses; with AliasSetSize 1 the store hits the same word every
// iteration (a stable, perfectly predictable dependence), while larger sets
// rotate the store over the set so its dependent load -- which always reads
// the set's first element -- collides only every AliasSetSize-th iteration:
// an intermittent, mispredict-prone dependence that stresses the prediction
// counters.  Loop-carried dependences read words whose producing store sits
// *later* in the body, so the value arrives from the previous iteration,
// crossing the loop latch (and, for per-iteration tasks, a task boundary).
package synth

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"memdep/internal/isa"
	"memdep/internal/program"
)

// DistBucket is one bucket of the dependence-distance histogram: Weight
// relative units of dependences at (approximately) Dist dynamic instructions
// between the producing store and the dependent load.
type DistBucket struct {
	// Dist is the target store→load distance in dynamic instructions.
	Dist int `json:"dist"`
	// Weight is the relative frequency of the bucket.
	Weight int `json:"weight"`
}

// Default model parameters, applied by Normalize to zero fields.
const (
	DefaultName         = "synth"
	DefaultOps          = 32768
	DefaultBody         = 512
	DefaultTaskSize     = 28
	DefaultTaskSpread   = 12
	DefaultLoadFrac     = 0.25
	DefaultStoreFrac    = 0.15
	DefaultDepFrac      = 0.5
	DefaultAliasSetSize = 1
	DefaultLoopCarried  = 0.25
)

// MaxOps bounds a workload's dynamic length: both the Ops field and the
// scaled run (Build multiplies iterations by scale) are capped here, so a
// request cannot generate unbounded simulation work.
const MaxOps = 5_000_000

// DefaultDepDists returns the default dependence-distance histogram: mostly
// short dependences with a tail reaching across several tasks.
func DefaultDepDists() []DistBucket {
	return []DistBucket{{Dist: 8, Weight: 4}, {Dist: 32, Weight: 2}, {Dist: 128, Weight: 1}}
}

// Spec parameterizes one synthetic workload.  The zero value of every field
// selects the default above, so the empty Spec is a complete, valid workload
// description.  The canonical JSON encoding of the normalized Spec (Key) is
// the workload's identity: it seeds the program generator and keys the
// engine's memoized cache, so two requests naming the same spec and seed
// share one build, one trace and one preprocessed work item.
type Spec struct {
	// Name labels the workload in output (0 = "synth").  It participates in
	// the cache key but not in generation: renaming a spec re-runs nothing
	// but the label.
	Name string `json:"name,omitempty"`
	// Seed seeds the generator.  Different seeds produce structurally
	// different programs under the same model parameters.
	Seed uint64 `json:"seed,omitempty"`
	// Ops is the approximate committed dynamic instruction count (0 = 32768).
	Ops int `json:"ops,omitempty"`
	// Body is the approximate static loop-body length in instructions
	// (0 = 512).  It bounds the number of distinct static load/store PCs and
	// hence the predictor working set.
	Body int `json:"body,omitempty"`
	// TaskSize is the mean task size in instructions (0 = 28); task
	// boundaries are sampled uniformly from TaskSize ± TaskSpread.
	TaskSize int `json:"task_size,omitempty"`
	// TaskSpread is the half-width of the task-size distribution (0 = 12).
	TaskSpread int `json:"task_spread,omitempty"`
	// LoadFrac is the fraction of body slots that are loads (0 = 0.25).
	LoadFrac float64 `json:"load_frac,omitempty"`
	// StoreFrac is the fraction of body slots that are stores (0 = 0.15).
	StoreFrac float64 `json:"store_frac,omitempty"`
	// DepFrac is the fraction of loads that participate in an engineered
	// store→load dependence (0 = 0.5); the rest read a never-written pool.
	DepFrac float64 `json:"dep_frac,omitempty"`
	// DepDists is the dependence-distance histogram (nil = 8:4, 32:2, 128:1).
	DepDists []DistBucket `json:"dep_dists,omitempty"`
	// AliasSetSize is the number of addresses each store rotates over
	// (0 = 1).  1 makes every engineered dependence fire on every iteration;
	// k > 1 makes it fire on every k-th iteration only, which is the
	// mispredict-prone regime.  Normalize rounds it up to a power of two.
	AliasSetSize int `json:"alias_set_size,omitempty"`
	// LoopCarried is the fraction of engineered dependences whose producing
	// store executes in the previous loop iteration (0 = 0.25).
	LoopCarried float64 `json:"loop_carried,omitempty"`
}

// Normalize returns the spec with every defaulted field materialized and the
// alias-set size rounded up to a power of two, without touching the receiver.
// Invalid fields are left as they are; Validate reports them.
func (s Spec) Normalize() Spec {
	if s.Name == "" {
		s.Name = DefaultName
	}
	if s.Ops == 0 {
		s.Ops = DefaultOps
	}
	if s.Body == 0 {
		s.Body = DefaultBody
	}
	if s.TaskSize == 0 {
		s.TaskSize = DefaultTaskSize
	}
	if s.TaskSpread == 0 {
		s.TaskSpread = DefaultTaskSpread
	}
	if s.TaskSpread >= s.TaskSize && s.TaskSize > 0 {
		s.TaskSpread = s.TaskSize - 1
	}
	if s.LoadFrac == 0 {
		s.LoadFrac = DefaultLoadFrac
	}
	if s.StoreFrac == 0 {
		s.StoreFrac = DefaultStoreFrac
	}
	if s.DepFrac == 0 {
		s.DepFrac = DefaultDepFrac
	}
	if len(s.DepDists) == 0 {
		s.DepDists = DefaultDepDists()
	} else {
		s.DepDists = append([]DistBucket(nil), s.DepDists...)
	}
	if s.AliasSetSize == 0 {
		s.AliasSetSize = DefaultAliasSetSize
	}
	if s.AliasSetSize > 0 {
		s.AliasSetSize = ceilPow2(s.AliasSetSize)
	}
	return s
}

// ceilPow2 rounds n up to the next power of two.  The result is capped at
// 2^30 so that absurd (validation-rejected) sizes cannot overflow p into an
// endless loop -- Normalize runs on raw specs before Validate.
func ceilPow2(n int) int {
	p := 1
	for p < n && p < 1<<30 {
		p <<= 1
	}
	return p
}

// Problem describes one invalid Spec field.
type Problem struct {
	// Field is the JSON name of the offending field.
	Field string
	// Value is the offending value.
	Value string
	// Msg says what is wrong with it.
	Msg string
}

// Problems reports every invalid field of the raw (un-normalized) spec.
func (s Spec) Problems() []Problem {
	var out []Problem
	add := func(field string, value any, msg string) {
		out = append(out, Problem{Field: field, Value: fmt.Sprint(value), Msg: msg})
	}
	if len(s.Name) > 64 {
		add("name", s.Name[:16]+"...", "at most 64 characters")
	}
	if s.Ops < 0 || s.Ops > MaxOps {
		add("ops", s.Ops, fmt.Sprintf("must be in [1, %d] (0 = default)", MaxOps))
	}
	if s.Body < 0 || (s.Body > 0 && s.Body < 16) || s.Body > 8192 {
		add("body", s.Body, "must be in [16, 8192] (0 = default)")
	}
	if s.TaskSize < 0 || (s.TaskSize > 0 && s.TaskSize < 4) || s.TaskSize > 1024 {
		add("task_size", s.TaskSize, "must be in [4, 1024] (0 = default)")
	}
	if s.TaskSpread < 0 || s.TaskSpread > 1024 {
		add("task_spread", s.TaskSpread, "must be in [0, 1024]")
	}
	checkFrac := func(field string, v float64) {
		if v < 0 || v > 1 {
			add(field, v, "must be in [0, 1]")
		}
	}
	checkFrac("load_frac", s.LoadFrac)
	checkFrac("store_frac", s.StoreFrac)
	checkFrac("dep_frac", s.DepFrac)
	checkFrac("loop_carried", s.LoopCarried)
	// The mix bound is checked on the *effective* (defaulted) fractions:
	// a zero field means the default, so {store_frac: 0.9} alone would
	// otherwise slip past the cap and normalize to a 1.15 mix.
	lf, sf := s.LoadFrac, s.StoreFrac
	if lf == 0 {
		lf = DefaultLoadFrac
	}
	if sf == 0 {
		sf = DefaultStoreFrac
	}
	if lf >= 0 && sf >= 0 && lf+sf > 0.95 {
		add("load_frac", lf+sf, "effective load_frac + store_frac must not exceed 0.95")
	}
	if len(s.DepDists) > 16 {
		add("dep_dists", len(s.DepDists), "at most 16 histogram buckets")
	}
	for i, b := range s.DepDists {
		if b.Dist < 1 || b.Dist > 1_000_000 {
			add("dep_dists", fmt.Sprintf("[%d].dist=%d", i, b.Dist), "distances must be in [1, 1000000]")
		}
		if b.Weight < 1 || b.Weight > 1_000_000 {
			add("dep_dists", fmt.Sprintf("[%d].weight=%d", i, b.Weight), "weights must be in [1, 1000000]")
		}
	}
	if s.AliasSetSize < 0 || s.AliasSetSize > 4096 {
		add("alias_set_size", s.AliasSetSize, "must be in [1, 4096] (0 = default)")
	}
	return out
}

// Validate reports the spec's problems as one error (nil when well-formed).
func (s Spec) Validate() error {
	probs := s.Problems()
	if len(probs) == 0 {
		return nil
	}
	msgs := make([]string, len(probs))
	for i, p := range probs {
		msgs[i] = fmt.Sprintf("%s: %s (%s)", p.Field, p.Msg, p.Value)
	}
	return errors.New("synth: invalid spec: " + strings.Join(msgs, "; "))
}

// Key returns the canonical JSON encoding of the normalized spec: the
// workload's identity for caching and reporting.  Two specs with the same
// key build byte-identical programs.
func (s Spec) Key() string {
	data, err := json.Marshal(s.Normalize())
	if err != nil {
		// A Spec contains only plain values; Marshal cannot fail.
		panic(fmt.Sprintf("synth: marshal spec: %v", err))
	}
	return string(data)
}

// Register conventions of the generated programs (compatible with the loop
// helpers of internal/program).
const (
	regBaseAlias = isa.Reg(27) // base of the alias-set region (stores + dependent loads)
	regBasePool  = isa.Reg(26) // base of the never-written read pool (independent loads)
	regLimit     = isa.Reg(25) // loop limit
	regCount     = isa.Reg(24) // loop counter (iteration index)
	regScratch   = isa.Reg(19) // address scratch for rotating stores
	tempLo       = isa.Reg(2)  // temps are r2..r18, written round-robin
	tempHi       = isa.Reg(18)
)

// poolWords is the size of the read-only pool independent loads draw from.
const poolWords = 256

// slot kinds of the body plan.
type slotKind int

const (
	slotALU slotKind = iota
	slotLoad
	slotStore
)

// slot is one planned body position.
type slot struct {
	kind slotKind
	pos  int // emitted-instruction offset of the slot within the body

	// Store fields.
	group int // alias-group index (offset group*aliasSetSize words)

	// Load fields.
	dep     bool  // engineered dependence (false: read the independent pool)
	prodOff int64 // byte offset of the producer group's first element
	poolOff int64 // byte offset into the read pool for independent loads
}

// latchOverhead is the per-iteration loop overhead (exit check, counter
// increment, back jump) separating the last body instruction of one
// iteration from the first of the next; loop-carried distance targeting
// accounts for it.
const latchOverhead = 3

// Build assembles the workload's program.  Scale values below 1 are treated
// as 1; larger scales multiply the iteration count (and hence the dynamic
// instruction count) linearly, mirroring workload.Workload.Build.
func (s Spec) Build(scale int) *program.Program {
	s = s.Normalize()
	if scale < 1 {
		scale = 1
	}
	r := newRNG(s.Seed)
	k := s.AliasSetSize

	// Pass A: sample the kind of every body slot.
	kinds := make([]slotKind, s.Body)
	for i := range kinds {
		switch u := r.float(); {
		case u < s.LoadFrac:
			kinds[i] = slotLoad
		case u < s.LoadFrac+s.StoreFrac:
			kinds[i] = slotStore
		default:
			kinds[i] = slotALU
		}
	}

	// Pass B: lay the slots out in emitted-instruction positions.  Rotating
	// stores expand to an address computation plus the store itself.
	storeLen := 1
	if k > 1 {
		storeLen = 4
	}
	slots := make([]slot, s.Body)
	type storeRef struct {
		pos   int
		group int
	}
	var stores []storeRef
	pos := 0
	for i, kind := range kinds {
		slots[i] = slot{kind: kind, pos: pos}
		switch kind {
		case slotStore:
			slots[i].group = len(stores)
			stores = append(stores, storeRef{pos: pos, group: len(stores)})
			pos += storeLen
		default:
			pos++
		}
	}
	bodyLen := pos

	// Pass C: choose each load's producer so that the realized store→load
	// distances follow the histogram.  Intra-iteration dependences pick a
	// store *earlier* in the body (distance = load pos - store pos);
	// loop-carried dependences pick a store *later* in the body, whose most
	// recent write when the load executes happened in the previous iteration
	// (distance = body length + latch - store pos + load pos).
	groupBytes := int64(k) * isa.WordSize
	for i := range slots {
		sl := &slots[i]
		if sl.kind != slotLoad {
			continue
		}
		if r.float() >= s.DepFrac || len(stores) == 0 {
			sl.poolOff = int64(r.intn(poolWords)) * isa.WordSize
			continue
		}
		d := s.sampleDist(r)
		carried := r.float() < s.LoopCarried
		// Candidate filter; fall back to the other direction when the body
		// has no store on the wanted side of the load.
		var best storeRef
		bestErr := -1
		consider := func(ref storeRef, dist int) {
			e := dist - d
			if e < 0 {
				e = -e
			}
			if bestErr < 0 || e < bestErr {
				best, bestErr = ref, e
			}
		}
		for _, ref := range stores {
			switch {
			case carried && ref.pos > sl.pos:
				consider(ref, bodyLen+latchOverhead-ref.pos+sl.pos)
			case !carried && ref.pos < sl.pos:
				consider(ref, sl.pos-ref.pos)
			}
		}
		if bestErr < 0 {
			// No store on the wanted side: take the nearest-distance match
			// over all stores, whichever side it falls on.
			for _, ref := range stores {
				if ref.pos < sl.pos {
					consider(ref, sl.pos-ref.pos)
				} else if ref.pos > sl.pos {
					consider(ref, bodyLen+latchOverhead-ref.pos+sl.pos)
				}
			}
		}
		if bestErr < 0 {
			sl.poolOff = int64(r.intn(poolWords)) * isa.WordSize
			continue
		}
		sl.dep = true
		sl.prodOff = int64(best.group) * groupBytes
	}

	// The iteration count targets the requested dynamic length.  The scaled
	// run is clamped to MaxOps as a safety net (the facade rejects
	// over-scaled requests before they reach a build): the cap both bounds
	// the work a job can represent and keeps iters*scale from overflowing.
	iters := 1
	if bodyLen > 0 {
		iters = (s.Ops + bodyLen - 1) / bodyLen
		if iters < 1 {
			iters = 1
		}
		if maxIters := MaxOps / bodyLen; maxIters >= 1 && scale > maxIters/iters+1 {
			scale = maxIters/iters + 1
		}
	}
	iters *= scale

	// Pass D: emit.
	b := program.NewBuilder(s.Name)
	aliasWords := len(stores) * k
	if aliasWords == 0 {
		aliasWords = 1
	}
	alias := b.AllocWords("alias", aliasWords)
	b.AllocWords("pool", poolWords)
	// Deterministic non-zero "input data": the alias region and the first
	// temporaries start at seed-derived values.
	for w := 0; w < aliasWords; w++ {
		b.InitWord(alias+uint64(w)*isa.WordSize, int64(r.intn(1<<20)))
	}

	b.LoadAddr(regBaseAlias, "alias")
	b.LoadAddr(regBasePool, "pool")
	temps := int(tempHi - tempLo + 1)
	for t := 0; t < 4; t++ {
		b.LoadImm(tempLo+isa.Reg(t), int64(r.intn(1<<12)))
	}
	b.LoadImm(regLimit, int64(iters))

	tempIdx := 0
	nextTemp := func() isa.Reg {
		reg := tempLo + isa.Reg(tempIdx%temps)
		tempIdx++
		return reg
	}
	lastTemp := func() isa.Reg {
		if tempIdx == 0 {
			return tempLo
		}
		return tempLo + isa.Reg((tempIdx-1)%temps)
	}
	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.SLT}

	sinceTask := 0
	nextTask := s.sampleTaskSize(r)
	b.Loop(regCount, regLimit, false, func() {
		for _, sl := range slots {
			if sinceTask >= nextTask {
				b.TaskEntry()
				sinceTask = 0
				nextTask = s.sampleTaskSize(r)
			}
			switch sl.kind {
			case slotALU:
				op := aluOps[r.intn(len(aluOps))]
				src1 := tempLo + isa.Reg(r.intn(temps))
				src2 := tempLo + isa.Reg(r.intn(temps))
				b.Op3(op, nextTemp(), src1, src2)
				sinceTask++
			case slotLoad:
				if sl.dep {
					// Dependent loads always read the first element of the
					// producer's alias set.
					b.Load(nextTemp(), regBaseAlias, sl.prodOff)
				} else {
					b.Load(nextTemp(), regBasePool, sl.poolOff)
				}
				sinceTask++
			case slotStore:
				groupOff := int64(sl.group) * groupBytes
				if k > 1 {
					// The store rotates over its alias set with the
					// iteration index: it hits the set's first element (the
					// dependent loads' target) every k-th iteration only.
					b.AndI(regScratch, regCount, int64(k-1))
					b.SllI(regScratch, regScratch, 3)
					b.Add(regScratch, regScratch, regBaseAlias)
					b.Store(lastTemp(), regScratch, groupOff)
					sinceTask += 4
				} else {
					b.Store(lastTemp(), regBaseAlias, groupOff)
					sinceTask++
				}
			}
		}
	})

	b.Load(isa.RV, regBaseAlias, 0)
	b.Halt()
	return b.MustBuild()
}

// sampleDist draws a target dependence distance from the histogram.
func (s Spec) sampleDist(r *rng) int {
	total := 0
	for _, bkt := range s.DepDists {
		total += bkt.Weight
	}
	if total <= 0 {
		return 1
	}
	pick := r.intn(total)
	for _, bkt := range s.DepDists {
		pick -= bkt.Weight
		if pick < 0 {
			return bkt.Dist
		}
	}
	return s.DepDists[len(s.DepDists)-1].Dist
}

// sampleTaskSize draws a task size from TaskSize ± TaskSpread.
func (s Spec) sampleTaskSize(r *rng) int {
	size := s.TaskSize
	if s.TaskSpread > 0 {
		size += r.intn(2*s.TaskSpread+1) - s.TaskSpread
	}
	if size < 1 {
		size = 1
	}
	return size
}
