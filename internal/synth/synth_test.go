package synth

import (
	"reflect"
	"strings"
	"testing"

	"memdep/internal/trace"
	"memdep/internal/window"
)

// TestBuildDeterministic pins the core contract: the same spec and seed
// produce a byte-identical program (and hence a byte-identical committed
// trace), on every call.
func TestBuildDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, AliasSetSize: 4, LoopCarried: 0.5}
	a := spec.Build(1)
	b := spec.Build(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two builds of the same spec differ")
	}
	if a.Disassemble() != b.Disassemble() {
		t.Fatal("disassemblies of the same spec differ")
	}
	// The committed streams are identical too.
	sa := mustTrace(t, spec)
	sb := mustTrace(t, spec)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("trace stats differ: %+v vs %+v", sa, sb)
	}
}

// TestSeedsDiffer checks that different seeds produce structurally different
// programs with different dependence profiles.
func TestSeedsDiffer(t *testing.T) {
	a := Spec{Seed: 1}
	b := Spec{Seed: 2}
	if a.Build(1).Disassemble() == b.Build(1).Disassemble() {
		t.Fatal("seeds 1 and 2 built identical programs")
	}
	ra := analyze(t, a)
	rb := analyze(t, b)
	if ra.Misspeculations == rb.Misspeculations && ra.StaticPairs == rb.StaticPairs {
		t.Fatalf("seeds 1 and 2 have identical dependence profiles: %+v", ra)
	}
}

// TestKnobsShapeProfile checks that the model's knobs move the observable
// dependence profile in the expected direction.
func TestKnobsShapeProfile(t *testing.T) {
	base := Spec{Seed: 7}
	// A dependence-free spec misses every engineered dependence.
	none := base
	none.DepFrac = 0.0001
	if rn, rb := analyze(t, none), analyze(t, base); rn.Misspeculations >= rb.Misspeculations {
		t.Errorf("dep_frac ~0 should shrink window mis-speculations: %d vs %d",
			rn.Misspeculations, rb.Misspeculations)
	}
	// Large alias sets make dependences fire on a fraction of iterations.
	sparse := base
	sparse.AliasSetSize = 16
	if rs, rb := analyze(t, sparse), analyze(t, base); rs.Misspeculations >= rb.Misspeculations {
		t.Errorf("alias_set_size 16 should shrink realized dependences: %d vs %d",
			rs.Misspeculations, rb.Misspeculations)
	}
}

// TestBuildTargetsOps checks the dynamic length lands near the requested
// trace length and that scale multiplies it.
func TestBuildTargetsOps(t *testing.T) {
	spec := Spec{Seed: 3, Ops: 10_000}
	st := mustTrace(t, spec)
	if st.Instructions < 8_000 || st.Instructions > 20_000 {
		t.Errorf("ops target 10000: committed %d instructions", st.Instructions)
	}
	if !st.Halted {
		t.Error("run did not halt")
	}
	if st.Tasks < 10 {
		t.Errorf("only %d tasks", st.Tasks)
	}
	stScaled := mustTraceScaled(t, spec, 3)
	if stScaled.Instructions < 2*st.Instructions {
		t.Errorf("scale 3 did not scale the run: %d vs %d", stScaled.Instructions, st.Instructions)
	}
}

// TestTaskSizes checks the task-size distribution tracks the spec.
func TestTaskSizes(t *testing.T) {
	spec := Spec{Seed: 11, TaskSize: 20, TaskSpread: 4}
	st := mustTrace(t, spec)
	avg := float64(st.Instructions) / float64(st.Tasks)
	if avg < 10 || avg > 40 {
		t.Errorf("task size target 20±4: average %.1f", avg)
	}
}

// TestNormalizeAndKey pins default materialization and key stability.
func TestNormalizeAndKey(t *testing.T) {
	n := Spec{}.Normalize()
	if n.Name != DefaultName || n.Ops != DefaultOps || n.Body != DefaultBody {
		t.Fatalf("zero spec normalized to %+v", n)
	}
	if len(n.DepDists) == 0 || n.AliasSetSize != 1 {
		t.Fatalf("zero spec normalized to %+v", n)
	}
	// Alias sizes round up to powers of two.
	if got := (Spec{AliasSetSize: 5}).Normalize().AliasSetSize; got != 8 {
		t.Errorf("alias 5 normalized to %d, want 8", got)
	}
	// The key is the canonical JSON of the normalized spec: the zero spec
	// and its normalized form share one identity.
	if (Spec{}).Key() != (Spec{}).Normalize().Key() {
		t.Error("zero spec and normalized spec have different keys")
	}
	if !strings.Contains((Spec{}).Key(), `"name":"synth"`) {
		t.Errorf("key is not canonical JSON: %s", (Spec{}).Key())
	}
	if (Spec{Seed: 1}).Key() == (Spec{Seed: 2}).Key() {
		t.Error("different seeds share a key")
	}
}

// TestValidate is table-driven over the field bounds.
func TestValidate(t *testing.T) {
	valid := []Spec{
		{},
		{Seed: 9, Ops: 1000, Body: 64, TaskSize: 16, TaskSpread: 4},
		{LoadFrac: 0.5, StoreFrac: 0.45},
		{DepDists: []DistBucket{{Dist: 1, Weight: 1}}},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid[%d]: %v", i, err)
		}
	}
	invalid := map[string]Spec{
		"ops":          {Ops: 50_000_000},
		"body":         {Body: 4},
		"task_size":    {TaskSize: 2},
		"load_frac":    {LoadFrac: 1.5},
		"frac_sum":     {LoadFrac: 0.6, StoreFrac: 0.6},
		"dep_dists":    {DepDists: []DistBucket{{Dist: 0, Weight: 1}}},
		"dist_weight":  {DepDists: []DistBucket{{Dist: 8, Weight: -1}}},
		"alias":        {AliasSetSize: 100_000},
		"default_sum":  {StoreFrac: 0.9}, // defaulted load_frac 0.25 pushes the mix past 0.95
		"loop_carried": {LoopCarried: -0.5},
	}
	for name, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected a validation error for %+v", name, s)
		}
		if len(s.Problems()) == 0 {
			t.Errorf("%s: no problems reported", name)
		}
	}
}

// mustTrace builds and functionally executes a spec at scale 1.
func mustTrace(t *testing.T, spec Spec) trace.Stats {
	t.Helper()
	return mustTraceScaled(t, spec, 1)
}

func mustTraceScaled(t *testing.T, spec Spec, scale int) trace.Stats {
	t.Helper()
	st, err := trace.Run(spec.Build(scale), trace.Config{}, nil)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return st
}

// analyze runs the unrealistic-OOO window model over a spec's committed
// stream, returning the 64-instruction window result.
func analyze(t *testing.T, spec Spec) window.Result {
	t.Helper()
	results, err := window.Analyze(spec.Build(1), window.Config{WindowSizes: []int{64}})
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	return results[0]
}

// TestNormalizeRobustToAbsurdAlias pins the ceilPow2 guard: Normalize runs
// on raw specs before validation and must terminate for any input.
func TestNormalizeRobustToAbsurdAlias(t *testing.T) {
	n := Spec{AliasSetSize: 1<<62 + 1}.Normalize()
	if n.AliasSetSize < 1 {
		t.Fatalf("normalized alias %d", n.AliasSetSize)
	}
	if err := (Spec{AliasSetSize: 1<<62 + 1}).Validate(); err == nil {
		t.Fatal("absurd alias size validated")
	}
}

// TestBuildClampsScale pins the Build safety net: an over-scaled build is
// clamped near MaxOps instead of running unbounded.
func TestBuildClampsScale(t *testing.T) {
	p := Spec{Ops: 1000, Body: 100}.Build(1 << 40)
	st, err := trace.Run(p, trace.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions > 2*MaxOps {
		t.Fatalf("clamped build still committed %d instructions", st.Instructions)
	}
	if !st.Halted {
		t.Fatal("clamped build did not halt")
	}
}
