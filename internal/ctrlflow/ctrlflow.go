// Package ctrlflow provides the control-flow machinery of the Multiscalar
// sequencer: a path-based next-task predictor (after Jacobson et al.,
// reference [13] of the paper), a return address stack, and a task descriptor
// cache.  The sequencer of section 5.2 uses a 1024-entry 2-way set
// associative task descriptor cache, a path-based control flow predictor, and
// a 64-entry return address stack.
package ctrlflow

import "memdep/internal/cache"

// PathPredictor predicts the next task's starting PC from a hashed history of
// recent task PCs.  It is a tagless first-level table indexed by the path
// hash; each entry holds the predicted successor and a hysteresis bit.
//
//memdep:resettable
type PathPredictor struct {
	tableBits  int //lint:reset-exempt table geometry fixed at construction
	historyLen int //lint:reset-exempt table geometry fixed at construction
	entries    []pathEntry
	// history is a fixed-capacity ring buffer of the last historyLen task
	// PCs: histCount live elements starting at histStart, oldest first.  A
	// ring (rather than an appended-and-trimmed slice) keeps Update free of
	// steady-state allocations.
	history     []uint64 //lint:reset-exempt ring storage dead once histCount is zeroed
	histStart   int
	histCount   int
	predictions uint64
	correct     uint64
}

type pathEntry struct {
	valid     bool
	target    uint64
	confident bool
}

// NewPathPredictor creates a predictor with 2^tableBits entries and the given
// path history length.
func NewPathPredictor(tableBits, historyLen int) *PathPredictor {
	if tableBits < 4 {
		tableBits = 4
	}
	if tableBits > 24 {
		tableBits = 24
	}
	if historyLen < 1 {
		historyLen = 1
	}
	return &PathPredictor{
		tableBits:  tableBits,
		historyLen: historyLen,
		entries:    make([]pathEntry, 1<<tableBits),
		history:    make([]uint64, historyLen),
	}
}

// index hashes the current task PC and the path history into the table.  The
// ring is walked oldest→newest with i as the position from the oldest entry,
// reproducing the original slice-ordered hash exactly.
func (p *PathPredictor) index(currentTaskPC uint64) uint64 {
	h := currentTaskPC * 0x9e3779b97f4a7c15
	for i := 0; i < p.histCount; i++ {
		pc := p.history[(p.histStart+i)%p.historyLen]
		h ^= (pc + uint64(i)*0x517cc1b727220a95) << (uint64(i%7) + 1)
	}
	return (h >> 3) & uint64(len(p.entries)-1)
}

// Predict returns the predicted starting PC of the task that follows the task
// at currentTaskPC, and whether the predictor has an opinion at all.
func (p *PathPredictor) Predict(currentTaskPC uint64) (next uint64, known bool) {
	e := p.entries[p.index(currentTaskPC)]
	if !e.valid {
		return 0, false
	}
	return e.target, true
}

// Update trains the predictor with the observed successor of the task at
// currentTaskPC and advances the path history.  It returns whether the
// prediction (if any) was correct, which the caller typically uses to charge
// a misprediction penalty.
func (p *PathPredictor) Update(currentTaskPC, actualNext uint64) bool {
	idx := p.index(currentTaskPC)
	e := &p.entries[idx]
	p.predictions++
	wasCorrect := e.valid && e.target == actualNext
	if wasCorrect {
		p.correct++
		e.confident = true
	} else {
		if e.valid && e.confident {
			// First mispredict only clears the hysteresis bit.
			e.confident = false
		} else {
			*e = pathEntry{valid: true, target: actualNext, confident: false}
		}
	}
	// Advance the path history with the task we just left, overwriting the
	// oldest entry once the window is full.
	if p.histCount < p.historyLen {
		p.history[(p.histStart+p.histCount)%p.historyLen] = currentTaskPC
		p.histCount++
	} else {
		p.history[p.histStart] = currentTaskPC
		p.histStart = (p.histStart + 1) % p.historyLen
	}
	return wasCorrect
}

// Accuracy returns the fraction of Update calls whose prior prediction was
// correct.
func (p *PathPredictor) Accuracy() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.predictions)
}

// Predictions returns the number of Update calls.
func (p *PathPredictor) Predictions() uint64 { return p.predictions }

// Reset clears the table, history and counters.
func (p *PathPredictor) Reset() {
	for i := range p.entries {
		p.entries[i] = pathEntry{}
	}
	p.histStart, p.histCount = 0, 0
	p.predictions, p.correct = 0, 0
}

// ReturnAddressStack is the sequencer's 64-entry return address stack.  It is
// a circular stack: pushes beyond the capacity overwrite the oldest entries,
// and pops of an empty stack return ok == false.
//
//memdep:resettable
type ReturnAddressStack struct {
	entries []uint64 //lint:reset-exempt stack storage dead once depth is zeroed
	top     int
	depth   int
}

// NewReturnAddressStack creates a RAS with the given capacity (64 in the
// paper's configuration).
func NewReturnAddressStack(capacity int) *ReturnAddressStack {
	if capacity < 1 {
		capacity = 1
	}
	return &ReturnAddressStack{entries: make([]uint64, capacity)}
}

// Push records a return address.
func (r *ReturnAddressStack) Push(addr uint64) {
	r.entries[r.top] = addr
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop removes and returns the most recently pushed address.
func (r *ReturnAddressStack) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top], true
}

// Depth returns the number of live entries.
func (r *ReturnAddressStack) Depth() int { return r.depth }

// Capacity returns the stack capacity.
func (r *ReturnAddressStack) Capacity() int { return len(r.entries) }

// Reset empties the stack.
func (r *ReturnAddressStack) Reset() { r.top, r.depth = 0, 0 }

// Sequencer bundles the control-flow structures of the Multiscalar global
// sequencer: the path-based next-task predictor, the task descriptor cache
// and the return address stack.
//
//memdep:resettable
type Sequencer struct {
	predictor *PathPredictor
	descCache *cache.SetAssoc
	ras       *ReturnAddressStack

	descriptorMisses uint64
	mispredictions   uint64
	taskDispatches   uint64
}

// SequencerConfig describes the sequencer structures.
type SequencerConfig struct {
	// PredictorBits sizes the path predictor table (2^bits entries).
	PredictorBits int
	// PathLength is the number of task PCs in the path history.
	PathLength int
	// DescriptorEntries is the number of task descriptors cached (1024).
	DescriptorEntries int
	// DescriptorWays is the associativity of the descriptor cache (2).
	DescriptorWays int
	// RASEntries is the return address stack depth (64).
	RASEntries int
}

// DefaultSequencerConfig returns the paper's sequencer configuration.
func DefaultSequencerConfig() SequencerConfig {
	return SequencerConfig{
		PredictorBits:     14,
		PathLength:        4,
		DescriptorEntries: 1024,
		DescriptorWays:    2,
		RASEntries:        64,
	}
}

func (c SequencerConfig) withDefaults() SequencerConfig {
	d := DefaultSequencerConfig()
	if c.PredictorBits <= 0 {
		c.PredictorBits = d.PredictorBits
	}
	if c.PathLength <= 0 {
		c.PathLength = d.PathLength
	}
	if c.DescriptorEntries <= 0 {
		c.DescriptorEntries = d.DescriptorEntries
	}
	if c.DescriptorWays <= 0 {
		c.DescriptorWays = d.DescriptorWays
	}
	if c.RASEntries <= 0 {
		c.RASEntries = d.RASEntries
	}
	return c
}

// NewSequencer creates the sequencer structures.
func NewSequencer(cfg SequencerConfig) *Sequencer {
	cfg = cfg.withDefaults()
	// Model each task descriptor as one 64-byte block: entries*64 bytes total.
	desc := cache.MustNewSetAssoc(cfg.DescriptorEntries*64, cfg.DescriptorWays, 64)
	return &Sequencer{
		predictor: NewPathPredictor(cfg.PredictorBits, cfg.PathLength),
		descCache: desc,
		ras:       NewReturnAddressStack(cfg.RASEntries),
	}
}

// Predictor exposes the path predictor.
func (s *Sequencer) Predictor() *PathPredictor { return s.predictor }

// RAS exposes the return address stack.
func (s *Sequencer) RAS() *ReturnAddressStack { return s.ras }

// DispatchOutcome reports the cost drivers of dispatching one task.
type DispatchOutcome struct {
	// PredictedCorrectly is false when the sequencer's next-task prediction
	// for the previous task did not name this task.
	PredictedCorrectly bool
	// DescriptorHit is false when the task descriptor had to be fetched from
	// memory.
	DescriptorHit bool
}

// Dispatch records the dispatch of the task at nextTaskPC following the task
// at prevTaskPC, training the predictor and touching the descriptor cache.
// For the very first task pass prevKnown == false.
func (s *Sequencer) Dispatch(prevTaskPC uint64, prevKnown bool, nextTaskPC uint64) DispatchOutcome {
	s.taskDispatches++
	out := DispatchOutcome{PredictedCorrectly: true, DescriptorHit: true}
	if prevKnown {
		if !s.predictor.Update(prevTaskPC, nextTaskPC) {
			out.PredictedCorrectly = false
			s.mispredictions++
		}
	}
	if !s.descCache.Access(nextTaskPC) {
		out.DescriptorHit = false
		s.descriptorMisses++
	}
	return out
}

// SequencerStats summarises sequencer activity.
type SequencerStats struct {
	TaskDispatches   uint64
	Mispredictions   uint64
	DescriptorMisses uint64
	PredictorAcc     float64
}

// Stats returns a snapshot of the counters.
func (s *Sequencer) Stats() SequencerStats {
	return SequencerStats{
		TaskDispatches:   s.taskDispatches,
		Mispredictions:   s.mispredictions,
		DescriptorMisses: s.descriptorMisses,
		PredictorAcc:     s.predictor.Accuracy(),
	}
}

// Reset clears all structures and counters.
func (s *Sequencer) Reset() {
	s.predictor.Reset()
	s.descCache.Reset()
	s.ras.Reset()
	s.descriptorMisses, s.mispredictions, s.taskDispatches = 0, 0, 0
}
