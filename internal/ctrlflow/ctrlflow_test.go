package ctrlflow

import (
	"testing"
	"testing/quick"
)

func TestPathPredictorLearnsRepeatingSequence(t *testing.T) {
	p := NewPathPredictor(10, 2)
	seq := []uint64{0x100, 0x200, 0x300, 0x400}
	// Train over the repeating sequence; after warm-up the predictor should
	// predict nearly every transition correctly.
	var correct, total int
	for round := 0; round < 50; round++ {
		for i := range seq {
			cur := seq[i]
			next := seq[(i+1)%len(seq)]
			if got, known := p.Predict(cur); known && got == next && round > 2 {
				correct++
			}
			if round > 2 {
				total++
			}
			p.Update(cur, next)
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.95 {
		t.Errorf("predictor learned %d/%d of a fixed sequence", correct, total)
	}
	if p.Accuracy() < 0.8 {
		t.Errorf("accuracy = %v, want >= 0.8", p.Accuracy())
	}
}

func TestPathPredictorPathSensitivity(t *testing.T) {
	// The successor of task B depends on which task preceded it (A1 or A2).
	// A plain last-target predictor cannot get both right; a path-based one
	// can.
	p := NewPathPredictor(12, 3)
	var correct, total int
	for round := 0; round < 200; round++ {
		if round%2 == 0 {
			p.Update(0xA1, 0xB0)
			if got, known := p.Predict(0xB0); known && round > 20 {
				total++
				if got == 0xC1 {
					correct++
				}
			}
			p.Update(0xB0, 0xC1)
			p.Update(0xC1, 0xA2)
		} else {
			p.Update(0xA2, 0xB0)
			if got, known := p.Predict(0xB0); known && round > 20 {
				total++
				if got == 0xC2 {
					correct++
				}
			}
			p.Update(0xB0, 0xC2)
			p.Update(0xC2, 0xA1)
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.9 {
		t.Errorf("path-sensitive prediction %d/%d", correct, total)
	}
}

func TestPathPredictorUnknownInitially(t *testing.T) {
	p := NewPathPredictor(8, 2)
	if _, known := p.Predict(0x100); known {
		t.Error("untrained predictor must not claim to know")
	}
}

func TestPathPredictorHysteresis(t *testing.T) {
	p := NewPathPredictor(8, 1)
	// Warm up: once the path history is stable (always the same task PC), the
	// same table entry is trained repeatedly and gains confidence.
	for i := 0; i < 4; i++ {
		p.Update(0x100, 0x200)
	}
	if got, known := p.Predict(0x100); !known || got != 0x200 {
		t.Fatalf("trained prediction = %#x (known=%v), want 0x200", got, known)
	}
	// One outlier must not immediately retrain the confident entry.
	p.Update(0x100, 0x999)
	if got, known := p.Predict(0x100); !known || got != 0x200 {
		t.Errorf("after one outlier prediction = %#x (known=%v), want 0x200", got, known)
	}
	// A second consecutive mispredict retrains it.
	p.Update(0x100, 0x999)
	if got, _ := p.Predict(0x100); got != 0x999 {
		t.Errorf("after two outliers prediction = %#x, want 0x999", got)
	}
}

func TestPathPredictorBoundsClamped(t *testing.T) {
	p := NewPathPredictor(0, 0)
	if len(p.entries) != 1<<4 {
		t.Errorf("table size = %d, want %d", len(p.entries), 1<<4)
	}
	big := NewPathPredictor(30, 1)
	if len(big.entries) != 1<<24 {
		t.Errorf("table size = %d, want clamped to 2^24", len(big.entries))
	}
}

func TestPathPredictorReset(t *testing.T) {
	p := NewPathPredictor(8, 2)
	p.Update(1, 2)
	p.Reset()
	if _, known := p.Predict(1); known {
		t.Error("reset must clear the table")
	}
	if p.Predictions() != 0 {
		t.Error("reset must clear counters")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewReturnAddressStack(4)
	r.Push(0x10)
	r.Push(0x20)
	if a, ok := r.Pop(); !ok || a != 0x20 {
		t.Errorf("pop = %#x/%v", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x10 {
		t.Errorf("pop = %#x/%v", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty pop must fail")
	}
}

func TestRASOverflowWrapsAround(t *testing.T) {
	r := NewReturnAddressStack(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if r.Depth() != 2 {
		t.Errorf("depth = %d, want 2", r.Depth())
	}
	if a, _ := r.Pop(); a != 3 {
		t.Errorf("pop = %d, want 3", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Errorf("pop = %d, want 2", a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("the overwritten entry must not reappear")
	}
}

func TestRASCapacityClamp(t *testing.T) {
	if NewReturnAddressStack(0).Capacity() != 1 {
		t.Error("capacity must clamp to 1")
	}
}

// Property: a RAS never reports more entries than its capacity, and pops
// return pushes in LIFO order for stacks that never overflow.
func TestRASLIFO(t *testing.T) {
	f := func(values []uint64) bool {
		if len(values) > 32 {
			values = values[:32]
		}
		r := NewReturnAddressStack(64)
		for _, v := range values {
			r.Push(v)
		}
		if r.Depth() != len(values) {
			return false
		}
		for i := len(values) - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != values[i] {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequencerDispatch(t *testing.T) {
	s := NewSequencer(SequencerConfig{})
	// First task: nothing known about the predecessor.
	out := s.Dispatch(0, false, 0x100)
	if !out.PredictedCorrectly {
		t.Error("first dispatch must not be charged as a misprediction")
	}
	if out.DescriptorHit {
		t.Error("first descriptor access must miss")
	}
	// Train the A->B->A alternation long enough for the path history to
	// stabilise, then check the steady state.
	for i := 0; i < 10; i++ {
		s.Dispatch(0x100, true, 0x200)
		out = s.Dispatch(0x200, true, 0x100)
	}
	if !out.PredictedCorrectly {
		t.Error("trained transition must be predicted correctly")
	}
	if !out.DescriptorHit {
		t.Error("warm descriptor must hit")
	}
	st := s.Stats()
	if st.TaskDispatches != 21 {
		t.Errorf("dispatches = %d, want 21", st.TaskDispatches)
	}
	if st.DescriptorMisses == 0 {
		t.Error("expected at least one descriptor miss")
	}
}

func TestSequencerReset(t *testing.T) {
	s := NewSequencer(SequencerConfig{})
	s.Dispatch(0, false, 0x100)
	s.RAS().Push(5)
	s.Reset()
	st := s.Stats()
	if st.TaskDispatches != 0 || s.RAS().Depth() != 0 {
		t.Error("reset must clear all structures")
	}
}

func TestDefaultSequencerConfig(t *testing.T) {
	c := DefaultSequencerConfig()
	if c.DescriptorEntries != 1024 || c.DescriptorWays != 2 || c.RASEntries != 64 {
		t.Errorf("config = %+v does not match the paper", c)
	}
}
