package ctrlflow

import (
	"reflect"
	"testing"
)

// xorshift64 with a fixed seed keeps the drives deterministic.
type resetRand uint64

func (r *resetRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = resetRand(x)
	return x
}

// TestResetEquivalence drives each control-flow structure, Resets it and
// drives it again: the second drive must observably match a fresh instance.
// A leaked path-history ring, predictor entry or RAS depth diverges the
// digests.
func TestResetEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		fresh func() interface{ Reset() }
		drive func(r interface{ Reset() }) any
	}{
		{
			name:  "PathPredictor",
			fresh: func() interface{ Reset() } { return NewPathPredictor(6, 3) },
			drive: func(r interface{ Reset() }) any {
				p := r.(*PathPredictor)
				rnd := resetRand(1)
				var digest []any
				for i := 0; i < 300; i++ {
					cur := 0x100 + (rnd.next()%16)*8
					next, known := p.Predict(cur)
					digest = append(digest, next, known, p.Update(cur, 0x100+(rnd.next()%16)*8))
				}
				return append(digest, p.Predictions(), p.Accuracy())
			},
		},
		{
			name:  "ReturnAddressStack",
			fresh: func() interface{ Reset() } { return NewReturnAddressStack(8) },
			drive: func(r interface{ Reset() }) any {
				ras := r.(*ReturnAddressStack)
				rnd := resetRand(2)
				var digest []any
				for i := 0; i < 100; i++ {
					if rnd.next()%3 == 0 {
						addr, ok := ras.Pop()
						digest = append(digest, addr, ok)
					} else {
						ras.Push(0x400 + (rnd.next()%64)*4)
					}
				}
				return append(digest, ras.Depth())
			},
		},
		{
			name: "Sequencer",
			fresh: func() interface{ Reset() } {
				return NewSequencer(SequencerConfig{PredictorBits: 6, PathLength: 2, DescriptorEntries: 16, DescriptorWays: 2, RASEntries: 8})
			},
			drive: func(r interface{ Reset() }) any {
				s := r.(*Sequencer)
				rnd := resetRand(3)
				var digest []any
				prev, known := uint64(0x100), false
				for i := 0; i < 300; i++ {
					next := 0x100 + (rnd.next()%12)*8
					digest = append(digest, s.Dispatch(prev, known, next))
					prev, known = next, true
				}
				return append(digest, s.Stats())
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reused := tc.fresh()
			tc.drive(reused)
			reused.Reset()
			got := tc.drive(reused)
			want := tc.drive(tc.fresh())
			if !reflect.DeepEqual(got, want) {
				t.Errorf("drive after Reset diverges from fresh instance:\nreset: %+v\nfresh: %+v", got, want)
			}
		})
	}
}
