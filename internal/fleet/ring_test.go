package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`{"bench":"compress","stages":%d}`, i)
	}
	return out
}

func TestRingDeterministicInMemberOrder(t *testing.T) {
	a := buildRing(64, []string{"w1", "w2", "w3", "w4"})
	b := buildRing(64, []string{"w4", "w2", "w1", "w3"})
	for _, k := range keys(500) {
		ao, bo := a.owners(k), b.owners(k)
		if len(ao) != len(bo) {
			t.Fatalf("owner count differs for %q: %v vs %v", k, ao, bo)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("owner order differs for %q: %v vs %v", k, ao, bo)
			}
		}
	}
}

func TestRingOwnersCoverAllMembersOnce(t *testing.T) {
	members := []string{"w1", "w2", "w3"}
	r := buildRing(64, members)
	for _, k := range keys(100) {
		o := r.owners(k)
		if len(o) != len(members) {
			t.Fatalf("owners(%q) = %v, want %d distinct members", k, o, len(members))
		}
		seen := map[string]bool{}
		for _, name := range o {
			if seen[name] {
				t.Fatalf("owners(%q) repeats %q: %v", k, name, o)
			}
			seen[name] = true
		}
	}
}

func TestRingConsistencyUnderMembershipChange(t *testing.T) {
	all := []string{"w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9", "w10"}
	before := buildRing(64, all)
	after := buildRing(64, all[:9]) // w10 leaves

	ks := keys(2000)
	moved := 0
	for _, k := range ks {
		oldOwner := before.owners(k)[0]
		newOwner := after.owners(k)[0]
		if oldOwner != "w10" && oldOwner != newOwner {
			t.Fatalf("key %q moved from surviving %q to %q", k, oldOwner, newOwner)
		}
		if oldOwner == "w10" {
			moved++
		}
	}
	// Expect roughly 1/10 of the key space to have belonged to the departed
	// member; allow generous slack around the expectation.
	if moved < len(ks)/30 || moved > len(ks)/3 {
		t.Fatalf("departed member owned %d/%d keys, want roughly 1/10", moved, len(ks))
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4"}
	r := buildRing(64, members)
	counts := map[string]int{}
	ks := keys(4000)
	for _, k := range ks {
		counts[r.owners(k)[0]]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / float64(len(ks))
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %q owns %.1f%% of keys, want a roughly even split: %v", m, 100*frac, counts)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if got := buildRing(64, nil).owners("anything"); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
}
