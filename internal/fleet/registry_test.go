package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// fakeProbe reports health per worker URL.
type fakeProbe struct {
	mu   sync.Mutex
	down map[string]bool
}

func (p *fakeProbe) probe(_ context.Context, url string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down[url] {
		return errors.New("down")
	}
	return nil
}

func (p *fakeProbe) setDown(url string, down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down == nil {
		p.down = map[string]bool{}
	}
	p.down[url] = down
}

func newTestRegistry(t *testing.T) (*Registry, *fakeClock, *fakeProbe) {
	t.Helper()
	clock := &fakeClock{now: time.Unix(1000, 0)}
	probe := &fakeProbe{}
	reg := NewRegistry(RegistryConfig{TTL: 10 * time.Second, Probe: probe.probe, Now: clock.Now})
	return reg, clock, probe
}

func TestRegistryRegisterValidation(t *testing.T) {
	reg, _, _ := newTestRegistry(t)
	if err := reg.Register("", "http://x:1"); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := reg.Register("w1", "not a url"); err == nil {
		t.Fatal("relative url accepted")
	}
	if err := reg.Register("w1", "http://x:1"); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	if reg.Len() != 1 || reg.Healthy() != 1 {
		t.Fatalf("len=%d healthy=%d after one registration", reg.Len(), reg.Healthy())
	}
}

func TestRegistryRouteAndFailover(t *testing.T) {
	reg, _, _ := newTestRegistry(t)
	for i := 1; i <= 3; i++ {
		if err := reg.Register(fmt.Sprintf("w%d", i), fmt.Sprintf("http://w%d:1", i)); err != nil {
			t.Fatal(err)
		}
	}
	key := `{"bench":"compress"}`
	first, err := reg.Route(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Routing is sticky: the same key lands on the same worker.
	again, err := reg.Route(key, nil)
	if err != nil || again.Name != first.Name {
		t.Fatalf("route(%q) = %q then %q (err %v), want sticky", key, first.Name, again.Name, err)
	}
	// Walking the failover order visits each worker exactly once.
	tried := map[string]bool{}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		w, err := reg.Route(key, tried)
		if err != nil {
			t.Fatalf("route attempt %d: %v", i, err)
		}
		if seen[w.Name] {
			t.Fatalf("failover revisited %q", w.Name)
		}
		seen[w.Name] = true
		tried[w.Name] = true
	}
	if _, err := reg.Route(key, tried); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("exhausted failover returned %v, want ErrNoWorkers", err)
	}
}

func TestRegistryReportFailureDemotes(t *testing.T) {
	reg, _, _ := newTestRegistry(t)
	reg.Register("w1", "http://w1:1")
	reg.Register("w2", "http://w2:1")
	key := `{"bench":"compress"}`
	w, _ := reg.Route(key, nil)
	reg.ReportFailure(w.Name)
	if reg.Healthy() != 1 {
		t.Fatalf("healthy=%d after failure report, want 1", reg.Healthy())
	}
	other, err := reg.Route(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.Name == w.Name {
		t.Fatalf("demoted worker %q still routed to", w.Name)
	}
	// Re-registration (the heartbeat) revives it.
	reg.Register(w.Name, "http://"+w.Name+":1")
	if reg.Healthy() != 2 {
		t.Fatalf("healthy=%d after revival, want 2", reg.Healthy())
	}
}

func TestRegistryHealthCheckTransitions(t *testing.T) {
	reg, clock, probe := newTestRegistry(t)
	reg.Register("w1", "http://w1:1")
	reg.Register("w2", "http://w2:1")

	probe.setDown("http://w2:1", true)
	clock.Advance(time.Second)
	reg.CheckOnce(context.Background())
	if reg.Healthy() != 1 || reg.Len() != 2 {
		t.Fatalf("healthy=%d len=%d after failed probe, want 1/2", reg.Healthy(), reg.Len())
	}

	// Recovery before the TTL revives without losing the registration.
	probe.setDown("http://w2:1", false)
	clock.Advance(time.Second)
	reg.CheckOnce(context.Background())
	if reg.Healthy() != 2 {
		t.Fatalf("healthy=%d after recovery, want 2", reg.Healthy())
	}
}

func TestRegistryTTLPrunesSilentWorkers(t *testing.T) {
	reg, clock, probe := newTestRegistry(t)
	reg.Register("w1", "http://w1:1")
	reg.Register("w2", "http://w2:1")
	probe.setDown("http://w2:1", true)

	clock.Advance(5 * time.Second)
	reg.CheckOnce(context.Background())
	if reg.Len() != 2 {
		t.Fatalf("len=%d before TTL, want 2 (demoted but registered)", reg.Len())
	}

	clock.Advance(6 * time.Second) // 11s silent > 10s TTL
	reg.CheckOnce(context.Background())
	if reg.Len() != 1 {
		t.Fatalf("len=%d after TTL, want the silent worker pruned", reg.Len())
	}
	if snap := reg.Snapshot(); len(snap) != 1 || snap[0].Name != "w1" {
		t.Fatalf("snapshot = %+v, want only w1", snap)
	}
}

func TestRegistryDeregisterDrains(t *testing.T) {
	reg, _, _ := newTestRegistry(t)
	reg.Register("w1", "http://w1:1")
	if !reg.Deregister("w1") {
		t.Fatal("deregister of a registered worker returned false")
	}
	if reg.Deregister("w1") {
		t.Fatal("double deregister returned true")
	}
	if _, err := reg.Route("k", nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("route after drain returned %v, want ErrNoWorkers", err)
	}
}

// TestRegistryConcurrentUpdatesDuringRouting exercises the registry under
// -race: routing, membership churn and health checks all at once.
func TestRegistryConcurrentUpdatesDuringRouting(t *testing.T) {
	reg, _, probe := newTestRegistry(t)
	for i := 0; i < 4; i++ {
		reg.Register(fmt.Sprintf("w%d", i), fmt.Sprintf("http://w%d:1", i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("key-%d-%d", g, i)
				if w, err := reg.Route(key, nil); err == nil && i%7 == 0 {
					reg.ReportFailure(w.Name)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("w%d", i%4)
			switch i % 3 {
			case 0:
				reg.Register(name, fmt.Sprintf("http://%s:1", name))
			case 1:
				reg.Deregister(name)
			default:
				probe.setDown(fmt.Sprintf("http://%s:1", name), i%2 == 0)
				reg.CheckOnce(context.Background())
			}
			reg.Snapshot()
			reg.Healthy()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
