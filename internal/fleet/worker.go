package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// AgentConfig configures a worker's registration Agent.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL (required), e.g.
	// "http://10.0.0.1:8080".
	Coordinator string
	// Name is the worker's unique fleet name (required).
	Name string
	// URL is the worker's own advertised base URL (required); the
	// coordinator proxies requests to it and probes <URL>/v1/healthz.
	URL string
	// Interval is the heartbeat period (0 = 2s).  Each heartbeat is a full
	// re-registration, so a restarted coordinator relearns its fleet within
	// one interval.
	Interval time.Duration
	// Client issues the registration calls (nil = a 5s-timeout client).
	Client *http.Client
	// Logf receives registration-loop events (nil = discard).
	Logf func(format string, args ...any)
}

// Agent is the worker side of fleet membership: it registers the worker
// with the coordinator, re-registers on an interval as a heartbeat, and
// deregisters (drains) on shutdown.  Run it in its own goroutine for the
// life of the worker process.
type Agent struct {
	cfg AgentConfig
}

// NewAgent validates the config and builds an agent.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	for _, f := range []struct{ name, val string }{
		{"coordinator", cfg.Coordinator},
		{"name", cfg.Name},
		{"url", cfg.URL},
	} {
		if f.val == "" {
			return nil, fmt.Errorf("fleet: agent %s must not be empty", f.name)
		}
	}
	for _, f := range []struct{ name, val string }{
		{"coordinator", cfg.Coordinator},
		{"url", cfg.URL},
	} {
		u, err := url.Parse(f.val)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: agent %s %q is not an absolute URL", f.name, f.val)
		}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Agent{cfg: cfg}, nil
}

// Run registers immediately, re-registers every Interval, and deregisters
// when the context is cancelled.  It returns after the deregistration
// attempt.  Registration failures are logged and retried on the next tick:
// a coordinator that is down or restarting is expected, not fatal.
func (a *Agent) Run(ctx context.Context) {
	if err := a.RegisterOnce(ctx); err != nil && !errors.Is(err, context.Canceled) {
		a.cfg.Logf("fleet: register %s with %s: %v", a.cfg.Name, a.cfg.Coordinator, err)
	}
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			// Drain: remove ourselves from the ring so no new request routes
			// here while the server's own graceful shutdown finishes the
			// in-flight ones.  Best effort, on a fresh context -- ours is
			// already cancelled.
			dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := a.Deregister(dctx); err != nil {
				a.cfg.Logf("fleet: deregister %s: %v", a.cfg.Name, err)
			}
			return
		case <-t.C:
			if err := a.RegisterOnce(ctx); err != nil && !errors.Is(err, context.Canceled) {
				a.cfg.Logf("fleet: heartbeat %s: %v", a.cfg.Name, err)
			}
		}
	}
}

// RegisterOnce performs one registration (also the heartbeat).
func (a *Agent) RegisterOnce(ctx context.Context) error {
	return a.post(ctx, "/v1/fleet/register", RegisterRequest{Name: a.cfg.Name, URL: a.cfg.URL})
}

// Deregister drains the worker out of the coordinator's ring.
func (a *Agent) Deregister(ctx context.Context) error {
	return a.post(ctx, "/v1/fleet/deregister", DeregisterRequest{Name: a.cfg.Name})
}

// post sends one membership call and checks for a 2xx.
func (a *Agent) post(ctx context.Context, path string, body any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s returned %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}
