package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// ErrNoWorkers is returned by Registry.Route when the fleet has no healthy
// worker to route to; the coordinator maps it to a 503.
var ErrNoWorkers = errors.New("fleet: no healthy workers registered")

// Probe checks one worker's liveness; the default probe issues
// GET <url>/v1/healthz and treats any 2xx as alive.  Tests inject their own.
type Probe func(ctx context.Context, url string) error

// Worker is a point-in-time snapshot of one registered worker, as served by
// GET /v1/fleet/workers.
type Worker struct {
	// Name is the worker's unique registry key.
	Name string `json:"name"`
	// URL is the base URL requests are proxied to.
	URL string `json:"url"`
	// Healthy reports whether the worker is currently in the routing ring.
	Healthy bool `json:"healthy"`
	// LastSeen is the time of the last successful registration, heartbeat
	// or health check.
	LastSeen time.Time `json:"last_seen"`
	// Failures counts consecutive failed health checks or proxied requests
	// since the worker was last seen healthy.
	Failures int `json:"failures,omitempty"`
	// Routed counts the requests routed to this worker since it registered.
	Routed uint64 `json:"routed"`
}

// workerState is the registry's mutable record of one worker.
type workerState struct {
	name     string
	url      string
	healthy  bool
	lastSeen time.Time
	failures int
	routed   uint64
}

// RegistryConfig configures a Registry.  The zero value selects the
// defaults documented on each field.
type RegistryConfig struct {
	// Replicas is the number of virtual nodes per worker on the hash ring
	// (0 = 64: smooth key distribution at negligible rebuild cost).
	Replicas int
	// TTL is how long a worker may go without a successful registration,
	// heartbeat or health check before it is dropped from the registry
	// entirely (0 = 30s).  Unhealthy-but-recent workers stay registered --
	// and revive on the next passing check -- only silent ones are pruned.
	TTL time.Duration
	// Probe checks a worker's liveness (nil = GET /v1/healthz with a 2s
	// timeout).
	Probe Probe
	// Now supplies the clock (nil = time.Now); tests freeze it.
	Now func() time.Time
}

// Registry is the coordinator's worker set: membership, health, and the
// consistent-hash ring over the healthy members.  All methods are safe for
// concurrent use.
type Registry struct {
	cfg RegistryConfig

	mu sync.RWMutex
	//memdep:guardedby mu
	workers map[string]*workerState
	// ring spans exactly the healthy workers; rebuilt on every membership
	// or health transition.
	//memdep:guardedby mu
	ring *ring
}

// NewRegistry creates an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 30 * time.Second
	}
	if cfg.Probe == nil {
		cfg.Probe = httpProbe
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Registry{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		ring:    buildRing(cfg.Replicas, nil),
	}
}

// httpProbe is the default liveness probe: GET <url>/v1/healthz, any 2xx
// within 2 seconds is alive.
func httpProbe(ctx context.Context, base string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// Register adds a worker (or refreshes an existing one: workers re-register
// periodically as their heartbeat, which also repopulates a restarted
// coordinator's registry).  Registration marks the worker healthy
// immediately; the next health-check pass demotes it if it lied.
func (r *Registry) Register(name, rawURL string) error {
	if name == "" {
		return errors.New("fleet: worker name must not be empty")
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fleet: worker url %q is not an absolute URL", rawURL)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[name]
	if w == nil {
		w = &workerState{name: name}
		r.workers[name] = w
	}
	rebuild := !w.healthy || w.url != rawURL
	w.url = rawURL
	w.healthy = true
	w.failures = 0
	w.lastSeen = r.cfg.Now()
	if rebuild {
		r.rebuildLocked()
	}
	return nil
}

// Deregister removes a worker and reports whether it was registered.  The
// removal is the drain: the worker leaves the ring at once, so no new
// request routes to it, while requests already proxied to it run to
// completion undisturbed.
func (r *Registry) Deregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[name]; !ok {
		return false
	}
	delete(r.workers, name)
	r.rebuildLocked()
	return true
}

// Route picks the worker owning the key: the first member of the key's
// ring order that is not in tried.  Callers retrying a failed forward pass
// the names already attempted, walking the failover order.
func (r *Registry) Route(key string, tried map[string]bool) (Worker, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.ring.owners(key) {
		if tried[name] {
			continue
		}
		w := r.workers[name]
		if w == nil || !w.healthy {
			// The ring is rebuilt on health transitions, so this is a
			// transient snapshot mismatch at worst; skip.
			continue
		}
		w.routed++
		return snapshotWorker(w), nil
	}
	return Worker{}, ErrNoWorkers
}

// ReportFailure records a failed proxied request: the worker leaves the
// ring immediately (subsequent requests reroute) and stays demoted until a
// health check or re-registration passes.
func (r *Registry) ReportFailure(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[name]
	if w == nil {
		return
	}
	w.failures++
	if w.healthy {
		w.healthy = false
		r.rebuildLocked()
	}
}

// CheckOnce runs one health-check pass: every registered worker is probed,
// transitions are applied to the ring, and workers silent for longer than
// the TTL are pruned.  The Coordinator calls this on a ticker; tests call
// it directly.
func (r *Registry) CheckOnce(ctx context.Context) {
	r.mu.RLock()
	targets := make([]Worker, 0, len(r.workers))
	for _, w := range r.workers { //lint:deterministic probe order does not affect the resulting health state
		targets = append(targets, Worker{Name: w.name, URL: w.url})
	}
	r.mu.RUnlock()

	now := r.cfg.Now()
	for _, t := range targets {
		err := r.cfg.Probe(ctx, t.URL)
		r.mu.Lock()
		w := r.workers[t.Name]
		if w == nil {
			r.mu.Unlock()
			continue
		}
		switch {
		case err == nil:
			w.failures = 0
			w.lastSeen = now
			if !w.healthy {
				w.healthy = true
				r.rebuildLocked()
			}
		default:
			w.failures++
			if w.healthy {
				w.healthy = false
				r.rebuildLocked()
			}
			if now.Sub(w.lastSeen) > r.cfg.TTL {
				delete(r.workers, w.name)
				r.rebuildLocked()
			}
		}
		r.mu.Unlock()
	}
}

// Run health-checks on the given interval until the context is cancelled.
func (r *Registry) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.CheckOnce(ctx)
		}
	}
}

// Snapshot returns every registered worker, healthy or not, sorted by name.
func (r *Registry) Snapshot() []Worker {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Worker, 0, len(r.workers))
	for _, w := range r.workers { //lint:deterministic collected then sorted by name below
		out = append(out, snapshotWorker(w))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Healthy returns the number of workers currently in the routing ring.
func (r *Registry) Healthy() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, w := range r.workers { //lint:deterministic commutative count
		if w.healthy {
			n++
		}
	}
	return n
}

// Len returns the number of registered workers, healthy or not.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.workers)
}

// rebuildLocked rebuilds the ring from the healthy workers; the caller
// holds mu.
//
//memdep:locked mu
func (r *Registry) rebuildLocked() {
	names := make([]string, 0, len(r.workers))
	for name, w := range r.workers { //lint:deterministic buildRing sorts its points; ring identity is order-independent
		if w.healthy {
			names = append(names, name)
		}
	}
	r.ring = buildRing(r.cfg.Replicas, names)
}

func snapshotWorker(w *workerState) Worker {
	return Worker{
		Name:     w.name,
		URL:      w.url,
		Healthy:  w.healthy,
		LastSeen: w.lastSeen,
		Failures: w.failures,
		Routed:   w.routed,
	}
}
