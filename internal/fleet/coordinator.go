package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memdep/sim"
)

// MaxGridRequests bounds one /v1/grid call, matching the standalone
// server's limit; larger studies are split into several grids.
const MaxGridRequests = 1024

// maxBodyBytes caps a decoded request body, matching the standalone server.
const maxBodyBytes = 1 << 20

// maxProxiedBody caps a relayed worker response; the largest legitimate
// result (a fully annotated simulation) is well under a megabyte.
const maxProxiedBody = 64 << 20

// NDJSONContentType is the media type of a streaming grid response: one
// JSON document per line, cells in completion order, a trailing summary.
const NDJSONContentType = "application/x-ndjson"

// ErrorResponse is the JSON shape of every non-2xx fleet response; it
// matches the standalone server's error shape field for field.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
	// Fields carries per-field validation errors for malformed requests.
	Fields []sim.FieldError `json:"fields,omitempty"`
}

// Route names one registered HTTP endpoint (method + pattern); the docs
// tests assert every route appears in docs/API.md.
type Route struct {
	// Method is the HTTP method the pattern is registered under.
	Method string
	// Pattern is the URL path.
	Pattern string
}

// CoordinatorRoutes lists every endpoint a coordinator serves.
func CoordinatorRoutes() []Route {
	return []Route{
		{Method: "POST", Pattern: "/v1/simulate"},
		{Method: "POST", Pattern: "/v1/grid"},
		{Method: "GET", Pattern: "/v1/benchmarks"},
		{Method: "GET", Pattern: "/v1/healthz"},
		{Method: "GET", Pattern: "/v1/statz"},
		{Method: "POST", Pattern: "/v1/fleet/register"},
		{Method: "POST", Pattern: "/v1/fleet/deregister"},
		{Method: "GET", Pattern: "/v1/fleet/workers"},
	}
}

// Config configures a Coordinator.  The zero value selects the defaults
// documented on each field.
type Config struct {
	// Registry configures the worker registry (replicas, TTL, probe).
	Registry RegistryConfig
	// HealthInterval is the period of the background health-check loop
	// (0 = 2s).
	HealthInterval time.Duration
	// MaxInflight bounds concurrently admitted requests (0 = 64,
	// negative = unlimited).
	MaxInflight int
	// MaxQueue bounds requests waiting for an in-flight slot (0 = 256,
	// negative = no queue).
	MaxQueue int
	// GridFanout bounds how many cells of one grid are proxied at once
	// (0 = 16).
	GridFanout int
	// Client issues the proxied requests (nil = a fresh client with the
	// default transport and no overall timeout, since a full-scale
	// simulation legitimately takes a while).
	Client *http.Client
}

// Coordinator fronts a fleet of workers: it validates requests locally,
// consistent-hash-routes them on their canonical normalized JSON, proxies
// them to the owning worker with failover, applies admission control, and
// streams grid results as NDJSON when asked to.  Create one with
// NewCoordinator and serve Handler(); Close stops the health-check loop.
type Coordinator struct {
	cfg    Config
	reg    *Registry
	lim    *Limiter
	client *http.Client

	cancel context.CancelFunc
	done   chan struct{}

	routed     atomic.Uint64
	rerouted   atomic.Uint64
	unroutable atomic.Uint64
}

// CoordinatorStats is the body of a coordinator's GET /v1/statz.
type CoordinatorStats struct {
	// Role is always "coordinator".
	Role string `json:"role"`
	// Workers snapshots the registry, sorted by name.
	Workers []Worker `json:"workers"`
	// Healthy counts the workers currently in the routing ring.
	Healthy int `json:"healthy"`
	// Routed counts proxied requests (grid cells count individually).
	Routed uint64 `json:"routed"`
	// Rerouted counts failovers: a forward that failed at the transport
	// level and was retried on the next worker in ring order.
	Rerouted uint64 `json:"rerouted"`
	// Unroutable counts requests that found no healthy worker at all.
	Unroutable uint64 `json:"unroutable"`
	// Admission snapshots the limiter.
	Admission LimiterStats `json:"admission"`
}

// CoordinatorHealth is the body of a coordinator's GET /v1/healthz.
type CoordinatorHealth struct {
	// Status is "ok" whenever the coordinator itself is serving; a
	// degraded fleet shows up in Healthy, not here.
	Status string `json:"status"`
	// Role is always "coordinator".
	Role string `json:"role"`
	// Workers counts registered workers, healthy or not.
	Workers int `json:"workers"`
	// Healthy counts the workers currently in the routing ring.
	Healthy int `json:"healthy"`
}

// GridRequest is the body of POST /v1/grid.
type GridRequest struct {
	// Requests are the grid cells; results are positional.
	Requests []sim.Request `json:"requests"`
	// Stream requests NDJSON output (equivalent to sending
	// Accept: application/x-ndjson).
	Stream bool `json:"stream,omitempty"`
}

// GridCell is one line of a streaming grid response: the positional index
// of the cell in the request, and either its result or its error.
type GridCell struct {
	// Index is the cell's position in the request's Requests array.
	Index int `json:"index"`
	// Result is the cell's sim.Result, present on success.
	Result json.RawMessage `json:"result,omitempty"`
	// Error describes the cell's failure, present instead of Result.
	Error string `json:"error,omitempty"`
	// Fields carries per-field validation errors for an invalid cell.
	Fields []sim.FieldError `json:"fields,omitempty"`
}

// GridSummary is the payload of the trailing record of a streaming grid
// response.
type GridSummary struct {
	// Cells is the number of requested cells.
	Cells int `json:"cells"`
	// OK counts cells that returned a result.
	OK int `json:"ok"`
	// Errors counts cells that returned an error line.
	Errors int `json:"errors"`
	// ElapsedMS is the wall-clock duration of the whole grid.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Stats snapshots the serving session's cache counters; standalone and
	// worker servers fill it, the coordinator (which owns no session)
	// omits it.
	Stats *sim.Stats `json:"stats,omitempty"`
}

// GridSummaryLine wraps the summary so the trailing record is structurally
// distinguishable from cell records ({"summary": {...}} vs {"index": ...}).
type GridSummaryLine struct {
	// Summary is the grid's closing accounting.
	Summary GridSummary `json:"summary"`
}

// RegisterRequest is the body of POST /v1/fleet/register (and the periodic
// heartbeat workers re-send).
type RegisterRequest struct {
	// Name uniquely identifies the worker in the registry.
	Name string `json:"name"`
	// URL is the worker's base URL, e.g. "http://10.0.0.7:8081".
	URL string `json:"url"`
}

// DeregisterRequest is the body of POST /v1/fleet/deregister.
type DeregisterRequest struct {
	// Name is the registry key to remove.
	Name string `json:"name"`
}

// MembershipResponse answers the fleet membership endpoints.
type MembershipResponse struct {
	// Status is "ok".
	Status string `json:"status"`
	// Workers counts registered workers after the operation.
	Workers int `json:"workers"`
	// Healthy counts ring members after the operation.
	Healthy int `json:"healthy"`
}

// WorkersResponse is the body of GET /v1/fleet/workers.
type WorkersResponse struct {
	// Workers snapshots the registry, sorted by name.
	Workers []Worker `json:"workers"`
	// Healthy counts the workers currently in the routing ring.
	Healthy int `json:"healthy"`
}

// BenchmarksResponse is the body of GET /v1/benchmarks, matching the
// standalone server's shape.
type BenchmarksResponse struct {
	// Benchmarks lists the committed workload suite.
	Benchmarks []sim.Benchmark `json:"benchmarks"`
}

// NewCoordinator builds a coordinator and starts its background
// health-check loop; Close stops it.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 256
	}
	if cfg.GridFanout <= 0 {
		cfg.GridFanout = 16
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	c := &Coordinator{
		cfg:    cfg,
		reg:    NewRegistry(cfg.Registry),
		lim:    NewLimiter(cfg.MaxInflight, cfg.MaxQueue),
		client: cfg.Client,
		done:   make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go func() {
		defer close(c.done)
		c.reg.Run(ctx, cfg.HealthInterval)
	}()
	return c
}

// Close stops the health-check loop.  In-flight proxied requests are not
// interrupted.
func (c *Coordinator) Close() {
	c.cancel()
	<-c.done
}

// Registry exposes the worker registry (the server's worker role and tests
// reach membership through it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Stats snapshots the coordinator's routing and admission counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Role:       "coordinator",
		Workers:    c.reg.Snapshot(),
		Healthy:    c.reg.Healthy(),
		Routed:     c.routed.Load(),
		Rerouted:   c.rerouted.Load(),
		Unroutable: c.unroutable.Load(),
		Admission:  c.lim.Stats(),
	}
}

// Handler builds the coordinator's route table; the routes are exactly
// CoordinatorRoutes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", c.handleSimulate)
	mux.HandleFunc("POST /v1/grid", c.handleGrid)
	mux.HandleFunc("GET /v1/benchmarks", c.handleBenchmarks)
	mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
	mux.HandleFunc("GET /v1/statz", c.handleStatz)
	mux.HandleFunc("POST /v1/fleet/register", c.handleRegister)
	mux.HandleFunc("POST /v1/fleet/deregister", c.handleDeregister)
	mux.HandleFunc("GET /v1/fleet/workers", c.handleWorkers)
	return mux
}

// WriteJSON writes v as an indented JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// WriteError maps an error to its HTTP shape: validation failures are
// structured 400s, overload is 429 with Retry-After, an empty fleet is 503
// with Retry-After, cancellation is 503, a worker that could not be
// reached after failover is 502, anything else a 500.
func WriteError(w http.ResponseWriter, err error) {
	var verr *sim.ValidationError
	var oerr *OverloadError
	switch {
	case errors.As(err, &verr):
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Fields: verr.Fields})
	case errors.As(err, &oerr):
		w.Header().Set("Retry-After", strconv.Itoa(int(oerr.RetryAfter.Seconds())))
		WriteJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
	case errors.Is(err, ErrNoWorkers):
		w.Header().Set("Retry-After", "1")
		WriteJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		WriteJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
	case errors.As(err, new(*forwardError)):
		WriteJSON(w, http.StatusBadGateway, ErrorResponse{Error: err.Error()})
	default:
		WriteJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	}
}

// DecodeBody decodes a JSON request body strictly (size-capped, unknown
// fields rejected), writing the 400 itself on failure.
func DecodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("malformed request body: %v", err)})
		return false
	}
	return true
}

// WantsStream reports whether the client asked for NDJSON grid output via
// the Accept header.  The body's "stream" field is the other way in.
func WantsStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), NDJSONContentType)
}

// forwardError is a proxying failure after failover was exhausted; it maps
// to 502 Bad Gateway.
type forwardError struct {
	msg string
}

// Error implements the error interface.
func (e *forwardError) Error() string { return e.msg }

// forwarded is one relayed worker response.
type forwarded struct {
	status      int
	contentType string
	body        []byte
	worker      string
}

// forward proxies payload to the worker owning key, walking the ring's
// failover order on transport errors.  A response -- any status -- ends the
// walk: the worker is alive, and retrying elsewhere would duplicate work.
func (c *Coordinator) forward(ctx context.Context, path, key string, payload []byte) (*forwarded, error) {
	c.routed.Add(1)
	tried := make(map[string]bool)
	for {
		wkr, err := c.reg.Route(key, tried)
		if err != nil {
			c.unroutable.Add(1)
			return nil, err
		}
		resp, err := c.post(ctx, wkr.URL+path, payload)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The worker is unreachable: demote it and walk on.  The
			// registry health loop revives it when it answers again.
			tried[wkr.Name] = true
			c.reg.ReportFailure(wkr.Name)
			c.rerouted.Add(1)
			continue
		}
		resp.worker = wkr.Name
		return resp, nil
	}
}

// post issues one proxied POST and reads the full response.
func (c *Coordinator) post(ctx context.Context, url string, payload []byte) (*forwarded, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxiedBody))
	if err != nil {
		return nil, err
	}
	return &forwarded{status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: body}, nil
}

// handleSimulate validates locally, routes on the canonical normalized
// JSON, and relays the owning worker's response verbatim.
func (c *Coordinator) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req sim.Request
	if !DecodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		WriteError(w, err)
		return
	}
	release, err := c.lim.Acquire(r.Context())
	if err != nil {
		WriteError(w, err)
		return
	}
	defer release()
	key := req.CanonicalJSON()
	fwd, err := c.forward(r.Context(), "/v1/simulate", key, []byte(key))
	if err != nil {
		WriteError(w, err)
		return
	}
	relay(w, fwd)
}

// relay copies a worker response through to the client.
func relay(w http.ResponseWriter, fwd *forwarded) {
	if fwd.contentType != "" {
		w.Header().Set("Content-Type", fwd.contentType)
	}
	w.WriteHeader(fwd.status)
	w.Write(fwd.body) //nolint:errcheck // the client is gone if this fails
}

// handleGrid routes each cell to its owning worker.  Buffered mode is
// all-or-nothing (any failed cell fails the grid); streaming mode reports
// per-cell errors as lines and always ends with a summary.
func (c *Coordinator) handleGrid(w http.ResponseWriter, r *http.Request) {
	var greq GridRequest
	if !DecodeBody(w, r, &greq) {
		return
	}
	if ok, errResp := CheckGridShape(len(greq.Requests)); !ok {
		WriteJSON(w, http.StatusBadRequest, errResp)
		return
	}
	release, err := c.lim.Acquire(r.Context())
	if err != nil {
		WriteError(w, err)
		return
	}
	defer release()

	if greq.Stream || WantsStream(r) {
		c.streamGrid(w, r, greq.Requests)
		return
	}

	// Buffered: validate every cell up front so a malformed grid is a
	// structured 400 before any work is proxied, matching the standalone
	// server's semantics.
	for i, req := range greq.Requests {
		if err := req.Validate(); err != nil {
			WriteError(w, fmt.Errorf("request %d: %w", i, err))
			return
		}
	}
	results := make([]json.RawMessage, len(greq.Requests))
	errs := make([]error, len(greq.Requests))
	c.eachCell(r.Context(), greq.Requests, func(i int, req sim.Request) {
		fwd, err := c.forwardCell(r.Context(), req)
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = fwd
	})
	for i, err := range errs {
		if err != nil {
			WriteError(w, &forwardError{msg: fmt.Sprintf("cell %d: %v", i, err)})
			return
		}
	}
	WriteJSON(w, http.StatusOK, struct {
		Results []json.RawMessage `json:"results"`
	}{Results: results})
}

// CheckGridShape validates the cell count of a grid request, returning the
// 400 body to serve when it is invalid.  Shared by the coordinator and the
// standalone server so both reject identically.
func CheckGridShape(n int) (ok bool, errResp ErrorResponse) {
	if n == 0 {
		return false, ErrorResponse{
			Error: "invalid request: requests: at least one request is required",
			Fields: []sim.FieldError{
				{Field: "requests", Msg: "at least one request is required"},
			},
		}
	}
	if n > MaxGridRequests {
		return false, ErrorResponse{
			Error: fmt.Sprintf("invalid request: requests: a grid is limited to %d requests", MaxGridRequests),
			Fields: []sim.FieldError{
				{Field: "requests", Value: fmt.Sprint(n),
					Msg: fmt.Sprintf("a grid is limited to %d requests", MaxGridRequests)},
			},
		}
	}
	return true, ErrorResponse{}
}

// forwardCell validates, routes and proxies one grid cell, returning the
// raw result document.
func (c *Coordinator) forwardCell(ctx context.Context, req sim.Request) (json.RawMessage, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	key := req.CanonicalJSON()
	fwd, err := c.forward(ctx, "/v1/simulate", key, []byte(key))
	if err != nil {
		return nil, err
	}
	if fwd.status != http.StatusOK {
		return nil, &forwardError{msg: fmt.Sprintf("worker %s returned %d: %s", fwd.worker, fwd.status, truncate(fwd.body, 512))}
	}
	return json.RawMessage(fwd.body), nil
}

// eachCell runs fn for every cell with at most GridFanout in flight.
func (c *Coordinator) eachCell(ctx context.Context, reqs []sim.Request, fn func(int, sim.Request)) {
	sem := make(chan struct{}, c.cfg.GridFanout)
	var wg sync.WaitGroup
	for i, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, req sim.Request) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i, req)
		}(i, req)
	}
	wg.Wait()
}

// streamGrid proxies cells concurrently and writes each as an NDJSON line
// the moment it completes, closing with a summary record.
func (c *Coordinator) streamGrid(w http.ResponseWriter, r *http.Request, reqs []sim.Request) {
	sw := NewStreamWriter(w)
	start := time.Now()
	var mu sync.Mutex
	ok, failed := 0, 0
	c.eachCell(r.Context(), reqs, func(i int, req sim.Request) {
		cell := GridCell{Index: i}
		res, err := c.forwardCell(r.Context(), req)
		var verr *sim.ValidationError
		switch {
		case err == nil:
			cell.Result = res
		case errors.As(err, &verr):
			cell.Error = err.Error()
			cell.Fields = verr.Fields
		default:
			cell.Error = err.Error()
		}
		mu.Lock()
		if cell.Error == "" {
			ok++
		} else {
			failed++
		}
		mu.Unlock()
		sw.Write(cell) //nolint:errcheck // a dead client cancels the context
	})
	sw.Write(GridSummaryLine{Summary: GridSummary{ //nolint:errcheck
		Cells:     len(reqs),
		OK:        ok,
		Errors:    failed,
		ElapsedMS: time.Since(start).Milliseconds(),
	}})
}

// handleBenchmarks serves the workload catalogue locally: it is static and
// identical on every fleet member.
func (c *Coordinator) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, BenchmarksResponse{Benchmarks: sim.Benchmarks()})
}

// handleHealthz reports coordinator liveness and fleet capacity.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, CoordinatorHealth{
		Status:  "ok",
		Role:    "coordinator",
		Workers: c.reg.Len(),
		Healthy: c.reg.Healthy(),
	})
}

// handleStatz reports the routing and admission counters.
func (c *Coordinator) handleStatz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, c.Stats())
}

// handleRegister admits a worker into the fleet (idempotent; workers
// re-send it as their heartbeat).
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !DecodeBody(w, r, &req) {
		return
	}
	if err := c.reg.Register(req.Name, req.URL); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	WriteJSON(w, http.StatusOK, MembershipResponse{Status: "ok", Workers: c.reg.Len(), Healthy: c.reg.Healthy()})
}

// handleDeregister drains a worker out of the ring.
func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req DeregisterRequest
	if !DecodeBody(w, r, &req) {
		return
	}
	c.reg.Deregister(req.Name)
	WriteJSON(w, http.StatusOK, MembershipResponse{Status: "ok", Workers: c.reg.Len(), Healthy: c.reg.Healthy()})
}

// handleWorkers lists the registry.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, WorkersResponse{Workers: c.reg.Snapshot(), Healthy: c.reg.Healthy()})
}

// truncate clips a relayed body for inclusion in an error message.
func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// StreamWriter serializes NDJSON records onto an HTTP response, one per
// line, flushing after each so cells reach the client the moment they
// complete.  Safe for concurrent use.
type StreamWriter struct {
	mu    sync.Mutex
	w     http.ResponseWriter
	flush http.Flusher
}

// NewStreamWriter sets the NDJSON content type and wraps the writer.
func NewStreamWriter(w http.ResponseWriter) *StreamWriter {
	sw := &StreamWriter{w: w}
	w.Header().Set("Content-Type", NDJSONContentType)
	if f, ok := w.(http.Flusher); ok {
		sw.flush = f
	}
	return sw
}

// Write marshals one record, appends the newline and flushes.
func (s *StreamWriter) Write(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return err
	}
	if s.flush != nil {
		s.flush.Flush()
	}
	return nil
}
