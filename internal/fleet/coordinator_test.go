package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"memdep/sim"
)

// echoWorker is a stub worker: it answers /v1/healthz and echoes back the
// posted body under its own name from /v1/simulate, so tests can see which
// worker served a request without running real simulations.
func echoWorker(t *testing.T, name string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		WriteJSON(w, http.StatusOK, map[string]any{"worker": name, "echo": json.RawMessage(body)})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour // tests drive CheckOnce themselves
	}
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	return c
}

func postJSON(t *testing.T, h http.Handler, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestCoordinatorRoutesSticky(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	w1 := echoWorker(t, "w1")
	w2 := echoWorker(t, "w2")
	c.Registry().Register("w1", w1.URL)
	c.Registry().Register("w2", w2.URL)
	h := c.Handler()

	served := func(body string) string {
		rec := postJSON(t, h, "/v1/simulate", body, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("simulate returned %d: %s", rec.Code, rec.Body)
		}
		var resp struct {
			Worker string `json:"worker"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Worker
	}

	// The same simulation -- in any spelling -- lands on the same worker,
	// because routing keys on the canonical normalized JSON.
	a := served(`{"bench": "compress"}`)
	b := served(`{"bench": "compress", "stages": 8, "policy": "esync"}`)
	if a != b {
		t.Fatalf("equivalent requests routed to %q and %q", a, b)
	}

	// Distinct simulations spread across the fleet.
	owners := map[string]bool{}
	for i := 1; i <= 32; i++ {
		owners[served(fmt.Sprintf(`{"bench": "compress", "scale": %d}`, i))] = true
	}
	if len(owners) != 2 {
		t.Fatalf("32 distinct requests used %d workers, want both", len(owners))
	}
	if st := c.Stats(); st.Routed < 34 || st.Unroutable != 0 {
		t.Fatalf("stats = %+v, want >= 34 routed and none unroutable", st)
	}
}

func TestCoordinatorReroutesAroundDeadWorker(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	live := echoWorker(t, "live")
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens: every forward is a transport error
	c.Registry().Register("live", live.URL)
	c.Registry().Register("dead", dead.URL)
	h := c.Handler()

	// Every request must succeed regardless of which worker the key hashes
	// to, because transport failures walk the failover order.
	for i := 0; i < 16; i++ {
		rec := postJSON(t, h, "/v1/simulate", fmt.Sprintf(`{"bench": "compress", "scale": %d}`, i+1), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d returned %d: %s", i, rec.Code, rec.Body)
		}
	}
	st := c.Stats()
	if st.Rerouted == 0 {
		t.Fatalf("stats = %+v, want at least one reroute around the dead worker", st)
	}
	if c.Registry().Healthy() != 1 {
		t.Fatalf("healthy = %d after reroutes, want the dead worker demoted", c.Registry().Healthy())
	}
}

func TestCoordinatorNoWorkersIs503(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	rec := postJSON(t, c.Handler(), "/v1/simulate", `{"bench": "compress"}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet returned %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
}

func TestCoordinatorValidatesLocally(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	// No workers registered: a 400 here proves validation happened locally,
	// before any routing.
	rec := postJSON(t, c.Handler(), "/v1/simulate", `{"bench": "compress", "stages": -1}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid request returned %d: %s", rec.Code, rec.Body)
	}
	var resp ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Fields) == 0 || resp.Fields[0].Field != "stages" {
		t.Fatalf("error fields = %+v, want a stages field error", resp.Fields)
	}
	// Unknown fields are rejected strictly, matching the standalone server.
	rec = postJSON(t, c.Handler(), "/v1/simulate", `{"bench": "compress", "bogus": 1}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field returned %d, want 400", rec.Code)
	}
}

func TestCoordinatorAdmissionRejectsWith429(t *testing.T) {
	c := newTestCoordinator(t, Config{MaxInflight: 1, MaxQueue: -1})
	release := make(chan struct{})
	blocked := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		blocked <- struct{}{}
		<-release
		WriteJSON(w, http.StatusOK, map[string]string{"worker": "slow"})
	})
	slow := httptest.NewServer(mux)
	t.Cleanup(slow.Close)
	t.Cleanup(func() { close(release) })
	c.Registry().Register("slow", slow.URL)
	h := c.Handler()

	done := make(chan int, 1)
	go func() {
		rec := postJSON(t, h, "/v1/simulate", `{"bench": "compress"}`, nil)
		done <- rec.Code
	}()
	<-blocked // the single in-flight slot is now held

	rec := postJSON(t, h, "/v1/simulate", `{"bench": "compress", "scale": 2}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated coordinator returned %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	release <- struct{}{}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("admitted request returned %d", code)
	}
	if st := c.Stats(); st.Admission.Rejected != 1 {
		t.Fatalf("admission stats = %+v, want rejected=1", st.Admission)
	}
}

func TestCoordinatorBufferedGrid(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	w1 := echoWorker(t, "w1")
	w2 := echoWorker(t, "w2")
	c.Registry().Register("w1", w1.URL)
	c.Registry().Register("w2", w2.URL)

	body := `{"requests": [{"bench": "compress", "scale": 1}, {"bench": "compress", "scale": 2}, {"bench": "compress", "scale": 3}]}`
	rec := postJSON(t, c.Handler(), "/v1/grid", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("grid returned %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Results []struct {
			Worker string          `json:"worker"`
			Echo   json.RawMessage `json:"echo"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	// Results are positional: cell i echoes request i's canonical form.
	for i, res := range resp.Results {
		var echoed sim.Request
		if err := json.Unmarshal(res.Echo, &echoed); err != nil {
			t.Fatal(err)
		}
		wantScale := i + 1
		if echoed.Scale != wantScale {
			t.Fatalf("cell %d echoed scale %d, want %d", i, echoed.Scale, wantScale)
		}
	}

	// An invalid cell fails the whole buffered grid with a 400 naming it.
	rec = postJSON(t, c.Handler(), "/v1/grid", `{"requests": [{"bench": "compress"}, {"bench": "compress", "stages": -1}]}`, nil)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "request 1") {
		t.Fatalf("grid with invalid cell returned %d: %s", rec.Code, rec.Body)
	}

	// Shape limits match the standalone server.
	rec = postJSON(t, c.Handler(), "/v1/grid", `{"requests": []}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty grid returned %d, want 400", rec.Code)
	}
}

// decodeStream parses an NDJSON grid response into cells and the summary.
func decodeStream(t *testing.T, body *bytes.Buffer) ([]GridCell, GridSummary) {
	t.Helper()
	var cells []GridCell
	var summary GridSummary
	sawSummary := false
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("record after the summary: %s", line)
		}
		var sl GridSummaryLine
		if err := json.Unmarshal(line, &sl); err == nil && sl.Summary.Cells > 0 {
			summary = sl.Summary
			sawSummary = true
			continue
		}
		var cell GridCell
		if err := json.Unmarshal(line, &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		cells = append(cells, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary record")
	}
	return cells, summary
}

func TestCoordinatorStreamingGrid(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	w1 := echoWorker(t, "w1")
	c.Registry().Register("w1", w1.URL)

	// Both opt-ins work: the Accept header and the body field.
	for name, tc := range map[string]struct {
		body string
		hdr  map[string]string
	}{
		"accept-header": {`{"requests": [{"bench": "compress"}, {"bench": "compress", "scale": 2}]}`,
			map[string]string{"Accept": NDJSONContentType}},
		"body-field": {`{"requests": [{"bench": "compress"}, {"bench": "compress", "scale": 2}], "stream": true}`, nil},
	} {
		rec := postJSON(t, c.Handler(), "/v1/grid", tc.body, tc.hdr)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: streaming grid returned %d: %s", name, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("Content-Type"); got != NDJSONContentType {
			t.Fatalf("%s: content type %q, want %q", name, got, NDJSONContentType)
		}
		cells, summary := decodeStream(t, rec.Body)
		if len(cells) != 2 {
			t.Fatalf("%s: got %d cells, want 2", name, len(cells))
		}
		seen := map[int]bool{}
		for _, cell := range cells {
			if cell.Error != "" {
				t.Fatalf("%s: cell %d errored: %s", name, cell.Index, cell.Error)
			}
			if seen[cell.Index] {
				t.Fatalf("%s: duplicate cell index %d", name, cell.Index)
			}
			seen[cell.Index] = true
		}
		if !seen[0] || !seen[1] {
			t.Fatalf("%s: cell indices incomplete: %v", name, seen)
		}
		if summary.Cells != 2 || summary.OK != 2 || summary.Errors != 0 {
			t.Fatalf("%s: summary = %+v", name, summary)
		}
	}
}

func TestCoordinatorStreamingGridReportsPerCellErrors(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	w1 := echoWorker(t, "w1")
	c.Registry().Register("w1", w1.URL)

	body := `{"requests": [{"bench": "compress"}, {"bench": "compress", "stages": -1}], "stream": true}`
	rec := postJSON(t, c.Handler(), "/v1/grid", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("streaming grid returned %d: %s", rec.Code, rec.Body)
	}
	cells, summary := decodeStream(t, rec.Body)
	if len(cells) != 2 || summary.OK != 1 || summary.Errors != 1 {
		t.Fatalf("cells=%d summary=%+v, want one ok and one error", len(cells), summary)
	}
	for _, cell := range cells {
		if cell.Index == 1 {
			if cell.Error == "" || len(cell.Fields) == 0 || cell.Fields[0].Field != "stages" {
				t.Fatalf("invalid cell reported as %+v, want a stages field error", cell)
			}
		}
	}
}

func TestCoordinatorMembershipEndpoints(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	w1 := echoWorker(t, "w1")
	h := c.Handler()

	rec := postJSON(t, h, "/v1/fleet/register", fmt.Sprintf(`{"name": "w1", "url": %q}`, w1.URL), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("register returned %d: %s", rec.Code, rec.Body)
	}
	rec = postJSON(t, h, "/v1/fleet/register", `{"name": "", "url": "http://x"}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("register with empty name returned %d, want 400", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/fleet/workers", nil)
	list := httptest.NewRecorder()
	h.ServeHTTP(list, req)
	var workers WorkersResponse
	if err := json.Unmarshal(list.Body.Bytes(), &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers.Workers) != 1 || workers.Workers[0].Name != "w1" || workers.Healthy != 1 {
		t.Fatalf("workers = %+v", workers)
	}

	rec = postJSON(t, h, "/v1/fleet/deregister", `{"name": "w1"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("deregister returned %d: %s", rec.Code, rec.Body)
	}
	if c.Registry().Len() != 0 {
		t.Fatalf("len = %d after deregister, want 0", c.Registry().Len())
	}
}

func TestCoordinatorServesDeclaredRoutes(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	h := c.Handler()
	for _, rt := range CoordinatorRoutes() {
		req := httptest.NewRequest(rt.Method, rt.Pattern, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusNotFound || rec.Code == http.StatusMethodNotAllowed {
			t.Errorf("declared route %s %s is not served (got %d)", rt.Method, rt.Pattern, rec.Code)
		}
	}
}

func TestAgentLifecycle(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	coord := httptest.NewServer(c.Handler())
	t.Cleanup(coord.Close)
	w1 := echoWorker(t, "w1")

	agent, err := NewAgent(AgentConfig{
		Coordinator: coord.URL,
		Name:        "w1",
		URL:         w1.URL,
		Interval:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		agent.Run(ctx)
		close(done)
	}()

	waitFor(t, time.Second, func() bool { return c.Registry().Healthy() == 1 })

	// A coordinator restart loses the registry; the heartbeat repopulates it.
	c.Registry().Deregister("w1")
	waitFor(t, time.Second, func() bool { return c.Registry().Healthy() == 1 })

	// Shutdown drains: the agent deregisters before returning.
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("agent.Run did not return after cancellation")
	}
	if c.Registry().Len() != 0 {
		t.Fatalf("len = %d after agent shutdown, want the worker drained out", c.Registry().Len())
	}
}

func TestAgentConfigValidation(t *testing.T) {
	if _, err := NewAgent(AgentConfig{Name: "w", URL: "http://w:1"}); err == nil {
		t.Fatal("missing coordinator accepted")
	}
	if _, err := NewAgent(AgentConfig{Coordinator: "http://c:1", URL: "http://w:1"}); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, err := NewAgent(AgentConfig{Coordinator: "http://c:1", Name: "w", URL: "nope"}); err == nil {
		t.Fatal("relative worker url accepted")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestStreamWriterConcurrent exercises the line writer under -race.
func TestStreamWriterConcurrent(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := NewStreamWriter(rec)
	var wrote atomic.Int64
	doneCh := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { doneCh <- struct{}{} }()
			for i := 0; i < 50; i++ {
				if err := sw.Write(GridCell{Index: g*50 + i}); err != nil {
					t.Error(err)
					return
				}
				wrote.Add(1)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-doneCh
	}
	lines := bytes.Count(rec.Body.Bytes(), []byte("\n"))
	if int64(lines) != wrote.Load() {
		t.Fatalf("wrote %d records but body has %d lines (interleaved writes?)", wrote.Load(), lines)
	}
}
