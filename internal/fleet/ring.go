// Package fleet implements the sharded simulation fleet: the
// coordinator/worker topology that lets grid throughput scale with machines
// instead of cores (ROADMAP item 1).
//
// A fleet is one coordinator process and N worker processes, all running the
// same cmd/memdep-server binary under different -role flags.  Workers are
// ordinary standalone servers (full sim.Session, in-memory cache, optional
// persistent store tier) that additionally announce themselves to the
// coordinator; the coordinator owns no session at all -- it validates
// requests locally, consistent-hashes each request's canonical normalized
// JSON (sim.Request.CanonicalJSON, the same identity the engine cache and
// the persistent store key on) and proxies the request to the owning
// worker.  Routing on the cache key is what makes the fleet share work, not
// just load: repeats of a request always land on the worker whose caches
// already hold the result.
//
// The moving parts:
//
//   - ring: the consistent-hash ring (this file).
//   - Registry: the worker set, with periodic health checks, TTL expiry of
//     silent workers and drain-on-deregister.
//   - Limiter: bounded admission control; overload is a 429 with a
//     Retry-After estimate, not an unbounded queue.
//   - Coordinator: the HTTP handler tying the three together, including the
//     streaming NDJSON grid mode and the /v1/fleet/* membership endpoints.
//   - Agent: the worker-side registration loop (register, heartbeat,
//     deregister on shutdown).
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over worker names.  Each member is hashed
// at `replicas` points; a key belongs to the first point at or clockwise
// from the key's own hash.  Membership changes therefore move only the keys
// that hashed to the departed (or arrived) member's points -- about 1/N of
// the key space -- while everything else keeps its owner, preserving the
// workers' warm session caches.
//
// A ring is immutable once built; the Registry builds a fresh one on every
// membership or health change and swaps it in under its lock.
type ring struct {
	points []point // sorted by (hash, name)
}

// point is one virtual node: a member name hashed with a replica index.
type point struct {
	hash uint64
	name string
}

// buildRing constructs the ring for the given member names, at `replicas`
// points per member.  The ring is deterministic in the member set: the same
// names produce the same ring regardless of insertion order.
func buildRing(replicas int, names []string) *ring {
	pts := make([]point, 0, replicas*len(names))
	for _, name := range names {
		for i := 0; i < replicas; i++ {
			pts = append(pts, point{hash: hashString(name + "#" + strconv.Itoa(i)), name: name})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Equal hashes are astronomically rare but must not leave the
		// ring order (and therefore routing) dependent on insertion order.
		return pts[i].name < pts[j].name
	})
	return &ring{points: pts}
}

// owners returns the distinct members in ring order starting at the key's
// successor: owners(key)[0] is the primary owner and the remainder is the
// failover order a rerouted request walks.  An empty ring returns nil.
func (r *ring) owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool)
	var out []string
	for n := 0; n < len(r.points); n++ {
		p := r.points[(start+n)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}

// hashString hashes a routing key or a virtual node label: FNV-1a 64-bit
// (cheap, dependency-free and stable across platforms and Go versions,
// which keeps routing deterministic fleet-wide) followed by a murmur-style
// finalizer.  The finalizer matters: a member's replica labels share a long
// prefix and differ only in their last bytes, and raw FNV gives those
// inputs clustered, lattice-like hashes -- skewed enough that one of four
// members can end up owning under 5% of the key space.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 64-bit finalizer: a bijective avalanche so nearby
// inputs land far apart on the ring.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
