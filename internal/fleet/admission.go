package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// OverloadError is returned by Limiter.Acquire when both the in-flight
// budget and the wait queue are full.  HTTP handlers map it to
// 429 Too Many Requests with a Retry-After header, the backpressure signal
// that tells well-behaved clients to slow down instead of piling on.
type OverloadError struct {
	// RetryAfter is a coarse estimate of when capacity may free up, derived
	// from the queue depth; it is a hint, not a reservation.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("overloaded: in-flight budget and queue are full (retry after %s)", e.RetryAfter)
}

// Limiter bounds concurrent admissions: up to MaxInflight requests run at
// once, up to MaxQueue more wait their turn, and everything beyond that is
// rejected immediately with an OverloadError.  A nil *Limiter admits
// everything, which is how the standalone server keeps its historical
// unbounded behavior.
type Limiter struct {
	inflight chan struct{}
	maxQueue int

	queued   atomic.Int64
	admitted atomic.Uint64
	rejected atomic.Uint64
}

// LimiterStats is a point-in-time snapshot of a Limiter's counters, served
// under /v1/statz.
type LimiterStats struct {
	MaxInflight int    `json:"max_inflight"` // MaxInflight echoes the configured concurrency bound.
	MaxQueue    int    `json:"max_queue"`    // MaxQueue echoes the configured queue bound.
	InFlight    int    `json:"in_flight"`    // InFlight is the number of currently admitted requests.
	Queued      int    `json:"queued"`       // Queued is the number of requests waiting for a slot.
	Admitted    uint64 `json:"admitted"`     // Admitted counts successful Acquires since construction.
	Rejected    uint64 `json:"rejected"`     // Rejected counts overload rejections since construction.
}

// NewLimiter builds a limiter admitting maxInflight concurrent requests
// with a wait queue of maxQueue.  maxInflight <= 0 returns nil: unlimited.
// maxQueue < 0 is treated as 0 (no queue: reject the moment the in-flight
// budget is full).
func NewLimiter(maxInflight, maxQueue int) *Limiter {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{inflight: make(chan struct{}, maxInflight), maxQueue: maxQueue}
}

// Acquire admits the caller, blocking in the bounded queue when the
// in-flight budget is full.  It returns the release function the caller
// must invoke when its request finishes, or an error: an *OverloadError
// when the queue is full too, the context's error if the caller gave up
// while queued.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	select {
	case l.inflight <- struct{}{}:
		l.admitted.Add(1)
		return l.release, nil
	default:
	}
	// The budget is full: take a queue slot or reject.
	for {
		q := l.queued.Load()
		if int(q) >= l.maxQueue {
			l.rejected.Add(1)
			return nil, &OverloadError{RetryAfter: l.retryAfter(q)}
		}
		if l.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	defer l.queued.Add(-1)
	select {
	case l.inflight <- struct{}{}:
		l.admitted.Add(1)
		return l.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *Limiter) release() { <-l.inflight }

// retryAfter estimates the backoff to advertise: one second per full
// queue's worth of waiters ahead of the rejected caller, capped at 30s.
func (l *Limiter) retryAfter(queued int64) time.Duration {
	d := time.Second * time.Duration(1+int(queued)/cap(l.inflight))
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Stats snapshots the limiter.  A nil limiter returns the zero snapshot.
func (l *Limiter) Stats() LimiterStats {
	if l == nil {
		return LimiterStats{}
	}
	return LimiterStats{
		MaxInflight: cap(l.inflight),
		MaxQueue:    l.maxQueue,
		InFlight:    len(l.inflight),
		Queued:      int(l.queued.Load()),
		Admitted:    l.admitted.Load(),
		Rejected:    l.rejected.Load(),
	}
}
