package fleet

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterNilAdmitsEverything(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		release, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("nil limiter rejected: %v", err)
		}
		release()
	}
	if s := l.Stats(); s != (LimiterStats{}) {
		t.Fatalf("nil limiter stats = %+v, want zero", s)
	}
}

func TestLimiterUnlimitedConstructor(t *testing.T) {
	if NewLimiter(0, 10) != nil {
		t.Fatal("NewLimiter(0, _) should return the nil (unlimited) limiter")
	}
	if NewLimiter(-1, 10) != nil {
		t.Fatal("NewLimiter(-1, _) should return the nil (unlimited) limiter")
	}
}

func TestLimiterRejectsWhenSaturated(t *testing.T) {
	l := NewLimiter(1, 0)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Acquire(context.Background())
	var oerr *OverloadError
	if !errors.As(err, &oerr) {
		t.Fatalf("saturated Acquire returned %v, want *OverloadError", err)
	}
	if oerr.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", oerr.RetryAfter)
	}
	release()
	release2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	release2()
	s := l.Stats()
	if s.Admitted != 2 || s.Rejected != 1 {
		t.Fatalf("stats = %+v, want admitted=2 rejected=1", s)
	}
}

func TestLimiterQueuesThenAdmits(t *testing.T) {
	l := NewLimiter(1, 1)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := l.Acquire(context.Background())
		if err == nil {
			r2()
		}
		got <- err
	}()
	// Give the queued acquirer time to park, then free the slot.
	time.Sleep(20 * time.Millisecond)
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued Acquire returned %v, want admission", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued Acquire never completed")
	}
}

func TestLimiterQueueRespectsContext(t *testing.T) {
	l := NewLimiter(1, 1)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled queued Acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled queued Acquire never returned")
	}
	if q := l.Stats().Queued; q != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", q)
	}
}
