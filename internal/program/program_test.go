package program

import (
	"strings"
	"testing"

	"memdep/internal/isa"
)

func buildCountdown(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("countdown")
	arr := b.AllocWords("arr", 8)
	b.InitWord(arr, 42)
	b.LoadImm(10, 4)      // limit
	b.LoadAddr(11, "arr") // base pointer
	b.Loop(12, 10, true, func() {
		b.SllI(13, 12, 3) // byte offset
		b.Add(13, 13, 11)
		b.Store(12, 13, 0)
		b.Load(14, 13, 0)
	})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderBasicProgram(t *testing.T) {
	p := buildCountdown(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Len() == 0 {
		t.Fatal("program has no code")
	}
	if !p.IsTaskEntry(p.Entry) {
		t.Error("entry must be a task entry")
	}
	if len(p.StaticLoads()) == 0 || len(p.StaticStores()) == 0 {
		t.Error("expected at least one load and one store")
	}
	if got := p.Symbols["arr"]; got != DefaultDataBase {
		t.Errorf("arr symbol = %#x, want %#x", got, DefaultDataBase)
	}
	if p.DataSize != 8*isa.WordSize {
		t.Errorf("data size = %d, want %d", p.DataSize, 8*isa.WordSize)
	}
	if p.DataInit[p.Symbols["arr"]] != 42 {
		t.Error("data initialisation lost")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jump("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	} else if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error %q does not mention the label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestBuilderDuplicateSymbol(t *testing.T) {
	b := NewBuilder("dupsym")
	b.AllocWords("d", 1)
	b.AllocWords("d", 1)
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate data symbol")
	}
}

func TestBuilderUndefinedSymbol(t *testing.T) {
	b := NewBuilder("nosym")
	b.LoadAddr(5, "missing")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined data symbol")
	}
}

func TestBuilderEntryLabel(t *testing.T) {
	b := NewBuilder("entry")
	b.Label("data_setup")
	b.Nop()
	b.Halt()
	b.Label("main")
	b.Nop()
	b.Halt()
	b.SetEntry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Entry != p.Labels["main"] {
		t.Errorf("entry = %d, want %d", p.Entry, p.Labels["main"])
	}
	if !p.IsTaskEntry(p.Entry) {
		t.Error("entry label must be marked as task entry")
	}
}

func TestBuilderUndefinedEntry(t *testing.T) {
	b := NewBuilder("badentry")
	b.Halt()
	b.SetEntry("main")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined entry label")
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{
		Name:      "bad",
		Code:      []isa.Instruction{{Op: isa.J, Target: 99}},
		StackBase: DefaultStackBase,
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for out-of-range branch target")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for empty program")
	}
}

func TestValidateRejectsDataStackOverlap(t *testing.T) {
	p := &Program{
		Name:      "overlap",
		Code:      []isa.Instruction{{Op: isa.HALT}},
		DataBase:  100,
		DataSize:  DefaultStackBase,
		StackBase: DefaultStackBase,
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for data/stack overlap")
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	p := buildCountdown(t)
	for i := 0; i < p.Len(); i++ {
		if got := p.Index(p.PC(i)); got != i {
			t.Fatalf("Index(PC(%d)) = %d", i, got)
		}
	}
}

func TestLoadImmRanges(t *testing.T) {
	// LoadImm must produce code for small, 32-bit and 64-bit constants.
	values := []int64{0, 1, -1, 1234, -20000, 65536, 1 << 20, 0x1234_5678, 0x7fff_0000, 1 << 40}
	for _, v := range values {
		b := NewBuilder("imm")
		b.LoadImm(5, v)
		b.Halt()
		if _, err := b.Build(); err != nil {
			t.Errorf("LoadImm(%d): %v", v, err)
		}
	}
}

func TestDisassembleMentionsLabelsAndTasks(t *testing.T) {
	b := NewBuilder("dis")
	b.Label("main")
	b.TaskEntry()
	b.AddI(1, isa.Zero, 7)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	d := p.Disassemble()
	if !strings.Contains(d, "main:") {
		t.Errorf("disassembly missing label:\n%s", d)
	}
	if !strings.Contains(d, "T>") {
		t.Errorf("disassembly missing task marker:\n%s", d)
	}
	if !strings.Contains(d, "addi r1, zero, 7") {
		t.Errorf("disassembly missing instruction:\n%s", d)
	}
}

func TestPushPopSymmetry(t *testing.T) {
	b := NewBuilder("stack")
	b.Push(5)
	b.Pop(6)
	b.PushRA()
	b.PopRA()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Push/Pop pairs are 2 instructions each; 8 + halt total.
	if p.Len() != 9 {
		t.Errorf("program length = %d, want 9", p.Len())
	}
}

func TestFuncEmitsTaskEntryAndReturn(t *testing.T) {
	b := NewBuilder("fn")
	b.Jump("main")
	b.Func("callee", func() {
		b.AddI(isa.RV, isa.Zero, 1)
	})
	b.Label("main")
	b.Call("callee")
	b.Halt()
	b.SetEntry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	calleeIdx := p.Labels["callee"]
	if !p.IsTaskEntry(calleeIdx) {
		t.Error("function label must be a task entry")
	}
	// The instruction before "main" must be the function's return.
	ret := p.Code[p.Labels["main"]-1]
	if ret.Op != isa.JR || ret.Src1 != isa.RA {
		t.Errorf("expected jr ra before main, got %v", ret)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("panic")
	b.Jump("missing")
	b.MustBuild()
}

func TestLoopStructure(t *testing.T) {
	b := NewBuilder("loop")
	b.LoadImm(10, 3)
	bodyCount := 0
	b.Loop(11, 10, false, func() {
		bodyCount++
		b.Nop()
	})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if bodyCount != 1 {
		t.Errorf("loop body emitted %d times statically, want 1", bodyCount)
	}
	// The loop must contain a backward jump.
	backward := false
	for i, ins := range p.Code {
		if ins.Op == isa.J && ins.Target < i {
			backward = true
		}
	}
	if !backward {
		t.Error("loop did not produce a backward jump")
	}
}
