// Package program provides the static program representation executed by the
// simulators in this repository, together with a small builder/assembler used
// by the synthetic workloads to construct programs.
//
// A Program is a flat sequence of isa.Instructions plus a description of its
// statically allocated data segment and a set of task boundary annotations.
// Task annotations play the role of the Multiscalar compiler's task
// partitioning: an instruction index marked as a task entry starts a new
// Multiscalar task when control reaches it.
package program

import (
	"fmt"
	"sort"

	"memdep/internal/isa"
)

// Program is an assembled program ready for execution.
type Program struct {
	// Name identifies the program (the benchmark name for workloads).
	Name string
	// Code is the instruction sequence.  Instruction i resides at byte
	// address i*isa.InstrBytes.
	Code []isa.Instruction
	// Entry is the index of the first instruction to execute.
	Entry int
	// DataBase is the lowest byte address of the statically allocated data
	// segment.
	DataBase uint64
	// DataSize is the size of the data segment in bytes.
	DataSize uint64
	// DataInit holds initial word values for data addresses (byte address to
	// word value).  Uninitialised data reads as zero.
	DataInit map[uint64]int64
	// StackBase is the initial value of the stack pointer.  The stack grows
	// downwards.
	StackBase uint64
	// TaskEntries marks the instruction indices that begin a new Multiscalar
	// task.  The entry point is always a task entry.
	TaskEntries map[int]bool
	// Labels maps symbolic labels to instruction indices (for debugging and
	// for the trace tooling).
	Labels map[string]int
	// Symbols maps data symbol names to byte addresses.
	Symbols map[string]uint64
}

// PC returns the byte address of instruction index idx.
func (p *Program) PC(idx int) uint64 { return uint64(idx) * isa.InstrBytes }

// Index returns the instruction index of byte address pc.
func (p *Program) Index(pc uint64) int { return int(pc / isa.InstrBytes) }

// Len returns the number of static instructions in the program.
func (p *Program) Len() int { return len(p.Code) }

// IsTaskEntry reports whether instruction index idx begins a task.
func (p *Program) IsTaskEntry(idx int) bool { return p.TaskEntries[idx] }

// Validate checks the structural integrity of the program: every branch
// target is in range, every register is architectural, the entry point and
// all task entries are valid instruction indices, and the data segment does
// not overlap the stack.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q has no code", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		return fmt.Errorf("program %q entry %d out of range [0,%d)", p.Name, p.Entry, len(p.Code))
	}
	for i, ins := range p.Code {
		if !ins.Op.Valid() {
			return fmt.Errorf("instruction %d: invalid op %d", i, ins.Op)
		}
		if !ins.Dst.Valid() || !ins.Src1.Valid() || !ins.Src2.Valid() {
			return fmt.Errorf("instruction %d (%v): invalid register", i, ins)
		}
		switch ins.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.J, isa.JAL:
			if ins.Target < 0 || ins.Target >= len(p.Code) {
				return fmt.Errorf("instruction %d (%v): branch target %d out of range", i, ins, ins.Target)
			}
		}
	}
	for idx := range p.TaskEntries {
		if idx < 0 || idx >= len(p.Code) {
			return fmt.Errorf("task entry %d out of range", idx)
		}
	}
	if p.DataBase+p.DataSize > p.StackBase && p.DataSize > 0 {
		// The stack grows down from StackBase; require a gap so that stack
		// frames do not silently alias statically allocated data.
		return fmt.Errorf("data segment [%#x,%#x) overlaps stack base %#x",
			p.DataBase, p.DataBase+p.DataSize, p.StackBase)
	}
	return nil
}

// StaticLoads returns the instruction indices of all load instructions.
func (p *Program) StaticLoads() []int {
	var out []int
	for i, ins := range p.Code {
		if isa.IsLoad(ins.Op) {
			out = append(out, i)
		}
	}
	return out
}

// StaticStores returns the instruction indices of all store instructions.
func (p *Program) StaticStores() []int {
	var out []int
	for i, ins := range p.Code {
		if isa.IsStore(ins.Op) {
			out = append(out, i)
		}
	}
	return out
}

// Disassemble renders the program as readable assembly, one instruction per
// line, annotated with labels and task entry markers.
func (p *Program) Disassemble() string {
	labelAt := map[int][]string{}
	for name, idx := range p.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	for idx := range labelAt {
		sort.Strings(labelAt[idx])
	}
	out := ""
	for i, ins := range p.Code {
		for _, l := range labelAt[i] {
			out += fmt.Sprintf("%s:\n", l)
		}
		marker := "    "
		if p.TaskEntries[i] {
			marker = " T> "
		}
		out += fmt.Sprintf("%5d%s%s\n", i, marker, ins)
	}
	return out
}
