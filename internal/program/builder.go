package program

import (
	"fmt"

	"memdep/internal/isa"
)

// DefaultStackBase is the initial stack pointer used by assembled programs.
// The data segment is allocated upwards from DefaultDataBase and must stay
// below the stack.
const (
	DefaultDataBase  uint64 = 0x0001_0000
	DefaultStackBase uint64 = 0x7fff_0000
)

// Builder incrementally constructs a Program.  It supports forward label
// references (resolved at Build time), named data allocation and task entry
// annotations.  The zero value is not usable; call NewBuilder.
type Builder struct {
	name        string
	code        []isa.Instruction
	fixups      []fixup
	labels      map[string]int
	symbols     map[string]uint64
	dataInit    map[uint64]int64
	dataBase    uint64
	dataNext    uint64
	stackBase   uint64
	taskEntries map[int]bool
	entryLabel  string
	errs        []error
	// taskLoopDepth tracks the nesting depth of task-per-iteration loops so
	// that each level uses its own carry register (see Loop).
	taskLoopDepth int
}

type fixup struct {
	instr int    // index of the instruction whose Target needs patching
	label string // label the target refers to
}

// NewBuilder creates a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:        name,
		labels:      map[string]int{},
		symbols:     map[string]uint64{},
		dataInit:    map[uint64]int64{},
		dataBase:    DefaultDataBase,
		dataNext:    DefaultDataBase,
		stackBase:   DefaultStackBase,
		taskEntries: map[int]bool{},
	}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Here returns the index of the next instruction to be emitted.
func (b *Builder) Here() int { return len(b.code) }

// Label defines a label at the current position.  Defining the same label
// twice is an error reported at Build time.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errorf("label %q defined twice", name)
		return
	}
	b.labels[name] = len(b.code)
}

// TaskEntry marks the current position as the start of a Multiscalar task.
func (b *Builder) TaskEntry() {
	b.taskEntries[len(b.code)] = true
}

// SetEntry sets the program entry point to the given label.  If never called,
// execution starts at instruction 0.
func (b *Builder) SetEntry(label string) { b.entryLabel = label }

// Alloc reserves size bytes of zero-initialised data, rounded up to a whole
// number of words, under the given symbol name and returns its base address.
func (b *Builder) Alloc(symbol string, size uint64) uint64 {
	if size == 0 {
		size = isa.WordSize
	}
	if rem := size % isa.WordSize; rem != 0 {
		size += isa.WordSize - rem
	}
	addr := b.dataNext
	b.dataNext += size
	if symbol != "" {
		if _, dup := b.symbols[symbol]; dup {
			b.errorf("data symbol %q defined twice", symbol)
		}
		b.symbols[symbol] = addr
	}
	return addr
}

// AllocWords reserves n words of data under symbol and returns the base
// address.
func (b *Builder) AllocWords(symbol string, n int) uint64 {
	return b.Alloc(symbol, uint64(n)*isa.WordSize)
}

// InitWord sets the initial value of the word at addr.
func (b *Builder) InitWord(addr uint64, value int64) {
	b.dataInit[addr] = value
}

// Symbol returns the address previously allocated under name.  Referencing an
// unknown symbol is an error reported at Build time.
func (b *Builder) Symbol(name string) uint64 {
	addr, ok := b.symbols[name]
	if !ok {
		b.errorf("reference to undefined data symbol %q", name)
	}
	return addr
}

// emit appends an instruction and returns its index.
func (b *Builder) emit(ins isa.Instruction) int {
	b.code = append(b.code, ins)
	return len(b.code) - 1
}

// --- raw instruction emitters -------------------------------------------------

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instruction{Op: isa.NOP}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.emit(isa.Instruction{Op: isa.HALT}) }

// Op3 emits a three-register ALU operation dst = src1 op src2.
func (b *Builder) Op3(op isa.Op, dst, src1, src2 isa.Reg) {
	b.emit(isa.Instruction{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// OpI emits an immediate ALU operation dst = src1 op imm.
func (b *Builder) OpI(op isa.Op, dst, src1 isa.Reg, imm int64) {
	b.emit(isa.Instruction{Op: op, Dst: dst, Src1: src1, Imm: imm})
}

// Add emits dst = src1 + src2.
func (b *Builder) Add(dst, src1, src2 isa.Reg) { b.Op3(isa.ADD, dst, src1, src2) }

// Sub emits dst = src1 - src2.
func (b *Builder) Sub(dst, src1, src2 isa.Reg) { b.Op3(isa.SUB, dst, src1, src2) }

// Mul emits dst = src1 * src2.
func (b *Builder) Mul(dst, src1, src2 isa.Reg) { b.Op3(isa.MUL, dst, src1, src2) }

// Div emits dst = src1 / src2.
func (b *Builder) Div(dst, src1, src2 isa.Reg) { b.Op3(isa.DIV, dst, src1, src2) }

// Rem emits dst = src1 % src2.
func (b *Builder) Rem(dst, src1, src2 isa.Reg) { b.Op3(isa.REM, dst, src1, src2) }

// And emits dst = src1 & src2.
func (b *Builder) And(dst, src1, src2 isa.Reg) { b.Op3(isa.AND, dst, src1, src2) }

// Or emits dst = src1 | src2.
func (b *Builder) Or(dst, src1, src2 isa.Reg) { b.Op3(isa.OR, dst, src1, src2) }

// Xor emits dst = src1 ^ src2.
func (b *Builder) Xor(dst, src1, src2 isa.Reg) { b.Op3(isa.XOR, dst, src1, src2) }

// Slt emits dst = (src1 < src2) ? 1 : 0.
func (b *Builder) Slt(dst, src1, src2 isa.Reg) { b.Op3(isa.SLT, dst, src1, src2) }

// FAdd emits a floating-point-class add.
func (b *Builder) FAdd(dst, src1, src2 isa.Reg) { b.Op3(isa.FADD, dst, src1, src2) }

// FMul emits a floating-point-class multiply.
func (b *Builder) FMul(dst, src1, src2 isa.Reg) { b.Op3(isa.FMUL, dst, src1, src2) }

// FDiv emits a floating-point-class divide.
func (b *Builder) FDiv(dst, src1, src2 isa.Reg) { b.Op3(isa.FDIV, dst, src1, src2) }

// AddI emits dst = src + imm.
func (b *Builder) AddI(dst, src isa.Reg, imm int64) { b.OpI(isa.ADDI, dst, src, imm) }

// AndI emits dst = src & imm.
func (b *Builder) AndI(dst, src isa.Reg, imm int64) { b.OpI(isa.ANDI, dst, src, imm) }

// OrI emits dst = src | imm.
func (b *Builder) OrI(dst, src isa.Reg, imm int64) { b.OpI(isa.ORI, dst, src, imm) }

// XorI emits dst = src ^ imm.
func (b *Builder) XorI(dst, src isa.Reg, imm int64) { b.OpI(isa.XORI, dst, src, imm) }

// SllI emits dst = src << imm.
func (b *Builder) SllI(dst, src isa.Reg, imm int64) { b.OpI(isa.SLLI, dst, src, imm) }

// SrlI emits dst = src >> imm (logical).
func (b *Builder) SrlI(dst, src isa.Reg, imm int64) { b.OpI(isa.SRLI, dst, src, imm) }

// SltI emits dst = (src < imm) ? 1 : 0.
func (b *Builder) SltI(dst, src isa.Reg, imm int64) { b.OpI(isa.SLTI, dst, src, imm) }

// LoadImm loads an arbitrary 64-bit constant into dst using LUI/ORI/shift
// sequences.  Small constants use a single ADDI from the zero register.
func (b *Builder) LoadImm(dst isa.Reg, value int64) {
	if value >= -32768 && value < 32768 {
		b.AddI(dst, isa.Zero, value)
		return
	}
	// Build the constant 16 bits at a time.  LUI writes imm<<16; subsequent
	// shifts and ORs assemble wider values.
	if value >= 0 && value < (1<<32) {
		b.OpI(isa.LUI, dst, isa.Zero, (value>>16)&0xffff)
		b.OrI(dst, dst, value&0xffff)
		return
	}
	b.OpI(isa.LUI, dst, isa.Zero, (value>>48)&0xffff)
	b.OrI(dst, dst, (value>>32)&0xffff)
	b.SllI(dst, dst, 16)
	b.OrI(dst, dst, (value>>16)&0xffff)
	b.SllI(dst, dst, 16)
	b.OrI(dst, dst, value&0xffff)
}

// LoadAddr loads the address of a data symbol into dst.
func (b *Builder) LoadAddr(dst isa.Reg, symbol string) {
	b.LoadImm(dst, int64(b.Symbol(symbol)))
}

// Move emits dst = src.
func (b *Builder) Move(dst, src isa.Reg) { b.AddI(dst, src, 0) }

// Load emits dst = mem[base + off].
func (b *Builder) Load(dst, base isa.Reg, off int64) {
	b.emit(isa.Instruction{Op: isa.LW, Dst: dst, Src1: base, Imm: off})
}

// Store emits mem[base + off] = src.
func (b *Builder) Store(src, base isa.Reg, off int64) {
	b.emit(isa.Instruction{Op: isa.SW, Src1: base, Src2: src, Imm: off})
}

// Branch emits a conditional branch to label.
func (b *Builder) Branch(op isa.Op, src1, src2 isa.Reg, label string) {
	idx := b.emit(isa.Instruction{Op: op, Src1: src1, Src2: src2})
	b.fixups = append(b.fixups, fixup{instr: idx, label: label})
}

// Beq emits branch-if-equal to label.
func (b *Builder) Beq(src1, src2 isa.Reg, label string) { b.Branch(isa.BEQ, src1, src2, label) }

// Bne emits branch-if-not-equal to label.
func (b *Builder) Bne(src1, src2 isa.Reg, label string) { b.Branch(isa.BNE, src1, src2, label) }

// Blt emits branch-if-less-than to label.
func (b *Builder) Blt(src1, src2 isa.Reg, label string) { b.Branch(isa.BLT, src1, src2, label) }

// Bge emits branch-if-greater-or-equal to label.
func (b *Builder) Bge(src1, src2 isa.Reg, label string) { b.Branch(isa.BGE, src1, src2, label) }

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) {
	idx := b.emit(isa.Instruction{Op: isa.J})
	b.fixups = append(b.fixups, fixup{instr: idx, label: label})
}

// Call emits a jump-and-link to label, writing the return address to RA.
func (b *Builder) Call(label string) {
	idx := b.emit(isa.Instruction{Op: isa.JAL, Dst: isa.RA})
	b.fixups = append(b.fixups, fixup{instr: idx, label: label})
}

// Ret emits a return through RA.
func (b *Builder) Ret() {
	b.emit(isa.Instruction{Op: isa.JR, Src1: isa.RA})
}

// JumpReg emits an indirect jump through reg.
func (b *Builder) JumpReg(reg isa.Reg) {
	b.emit(isa.Instruction{Op: isa.JR, Src1: reg})
}

// --- structured helpers -------------------------------------------------------

// loopCarryRegs are the registers the builder uses to carry the induction
// variable of task-per-iteration loops across iterations.  The update of the
// carry register is hoisted to the top of the loop body so that the next
// iteration's task does not have to wait for the end of the current one --
// this mirrors the induction-variable hoisting the Multiscalar compiler
// performs so that consecutive loop-iteration tasks can overlap.  RV and FP
// are free for this purpose by convention: RV is written only after all loops
// finish, and FP is never used by the synthetic workloads.
var loopCarryRegs = [...]isa.Reg{isa.FP, isa.RV}

// Loop emits a counted loop: the body runs with the counter register holding
// the iteration index (0, 1, ..., limit-1) and repeats until the counter
// reaches the value in the limit register.  Each iteration is marked as a
// task entry when taskPerIteration is true, mirroring the per-iteration task
// partitioning the Multiscalar compiler applies to small loop bodies; for
// such loops the loop-carried induction update is hoisted to the top of the
// iteration (using a dedicated carry register) so that consecutive tasks are
// not serialised on the counter.  The body must not write the counter, the
// limit, or the carry registers (RV, FP).
func (b *Builder) Loop(counter, limit isa.Reg, taskPerIteration bool, body func()) {
	head := fmt.Sprintf(".L%d_head", len(b.code))
	done := fmt.Sprintf(".L%d_done", len(b.code))
	hoist := taskPerIteration && b.taskLoopDepth < len(loopCarryRegs)
	if hoist {
		carry := loopCarryRegs[b.taskLoopDepth]
		b.taskLoopDepth++
		b.AddI(carry, isa.Zero, 0)
		b.Label(head)
		b.TaskEntry()
		b.Move(counter, carry)      // counter = i (reads the early-written carry)
		b.Bge(counter, limit, done) // exit check
		b.AddI(carry, carry, 1)     // carry = i+1, available at the top of the task
		body()
		b.Jump(head)
		b.Label(done)
		b.taskLoopDepth--
		return
	}
	b.AddI(counter, isa.Zero, 0)
	b.Label(head)
	if taskPerIteration {
		b.TaskEntry()
	}
	b.Bge(counter, limit, done)
	body()
	b.AddI(counter, counter, 1)
	b.Jump(head)
	b.Label(done)
}

// Func defines a leaf-callable function: a label, a task entry, the body and
// a return.  The body is responsible for its own stack discipline.
func (b *Builder) Func(name string, body func()) {
	b.Label(name)
	b.TaskEntry()
	body()
	b.Ret()
}

// PushRA spills the return address to the stack (pre-decrementing SP) so the
// function can make further calls.
func (b *Builder) PushRA() {
	b.AddI(isa.SP, isa.SP, -isa.WordSize)
	b.Store(isa.RA, isa.SP, 0)
}

// PopRA restores the return address from the stack (post-incrementing SP).
func (b *Builder) PopRA() {
	b.Load(isa.RA, isa.SP, 0)
	b.AddI(isa.SP, isa.SP, isa.WordSize)
}

// Push spills a register to the stack.
func (b *Builder) Push(r isa.Reg) {
	b.AddI(isa.SP, isa.SP, -isa.WordSize)
	b.Store(r, isa.SP, 0)
}

// Pop restores a register from the stack.
func (b *Builder) Pop(r isa.Reg) {
	b.Load(r, isa.SP, 0)
	b.AddI(isa.SP, isa.SP, isa.WordSize)
}

// Build resolves labels and returns the assembled program.  It returns an
// error describing the first problem found if the program is malformed.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q", b.name, f.label)
		}
		b.code[f.instr].Target = target
	}
	entry := 0
	if b.entryLabel != "" {
		idx, ok := b.labels[b.entryLabel]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined entry label %q", b.name, b.entryLabel)
		}
		entry = idx
	}
	taskEntries := make(map[int]bool, len(b.taskEntries)+1)
	for k, v := range b.taskEntries {
		if v {
			taskEntries[k] = true
		}
	}
	taskEntries[entry] = true
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	symbols := make(map[string]uint64, len(b.symbols))
	for k, v := range b.symbols {
		symbols[k] = v
	}
	dataInit := make(map[uint64]int64, len(b.dataInit))
	for k, v := range b.dataInit {
		dataInit[k] = v
	}
	p := &Program{
		Name:        b.name,
		Code:        append([]isa.Instruction(nil), b.code...),
		Entry:       entry,
		DataBase:    b.dataBase,
		DataSize:    b.dataNext - b.dataBase,
		DataInit:    dataInit,
		StackBase:   b.stackBase,
		TaskEntries: taskEntries,
		Labels:      labels,
		Symbols:     symbols,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is like Build but panics on error.  It is intended for the
// workload constructors, whose programs are fixed at compile time and whose
// assembly errors are programming bugs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("program %q failed to build: %v", b.name, err))
	}
	return p
}
