// Package cache models the memory hierarchy of the simulated Multiscalar
// processor: per-processing-unit instruction caches, a banked, interleaved
// data cache shared by all units through a crossbar, and the single
// split-transaction memory bus they contend for.  The structural parameters
// default to the configuration in section 5.2 of the paper.
//
// The models are timing models: they answer "at which cycle does this access
// complete" and keep hit/miss statistics.  Data values are irrelevant (the
// functional simulator in internal/trace is the reference for values).
package cache

import "fmt"

// SetAssoc is a set-associative cache tag array with LRU replacement.  It
// tracks presence of block addresses only.
//
//memdep:resettable
type SetAssoc struct {
	sets      int  //lint:reset-exempt cache geometry fixed at construction
	ways      int  //lint:reset-exempt cache geometry fixed at construction
	blockBits uint //lint:reset-exempt cache geometry fixed at construction
	clock     uint64
	// tags is one flat backing array of sets*ways entries (row-major by
	// set), allocated in a single shot so constructing a hierarchy costs a
	// handful of allocations rather than one per set.
	tags []tagEntry

	hits   uint64
	misses uint64
}

type tagEntry struct {
	valid   bool
	tag     uint64
	lastUse uint64
}

// NewSetAssoc constructs a cache with the given total size, associativity and
// block size (all in bytes).  Size must be a multiple of ways*blockSize.
func NewSetAssoc(sizeBytes, ways, blockSize int) (*SetAssoc, error) {
	if sizeBytes <= 0 || ways <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry (%d,%d,%d)", sizeBytes, ways, blockSize)
	}
	if blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d is not a power of two", blockSize)
	}
	sets := sizeBytes / (ways * blockSize)
	if sets <= 0 || sizeBytes%(ways*blockSize) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte blocks",
			sizeBytes, ways, blockSize)
	}
	blockBits := uint(0)
	for 1<<blockBits < blockSize {
		blockBits++
	}
	c := &SetAssoc{sets: sets, ways: ways, blockBits: blockBits}
	c.tags = make([]tagEntry, sets*ways)
	return c, nil
}

// MustNewSetAssoc is like NewSetAssoc but panics on error (for fixed
// configurations).
func MustNewSetAssoc(sizeBytes, ways, blockSize int) *SetAssoc {
	c, err := NewSetAssoc(sizeBytes, ways, blockSize)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// BlockSize returns the block size in bytes.
func (c *SetAssoc) BlockSize() int { return 1 << c.blockBits }

func (c *SetAssoc) index(addr uint64) (set int, tag uint64) {
	block := addr >> c.blockBits
	return int(block % uint64(c.sets)), block / uint64(c.sets)
}

// Access looks up the block containing addr, allocating it on a miss (and
// evicting the LRU way if necessary).  It returns true on a hit.
func (c *SetAssoc) Access(addr uint64) bool {
	c.clock++
	set, tag := c.index(addr)
	ways := c.tags[set*c.ways : (set+1)*c.ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lastUse = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	ways[victim] = tagEntry{valid: true, tag: tag, lastUse: c.clock}
	return false
}

// Probe reports whether the block containing addr is present without
// modifying any state.
func (c *SetAssoc) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.tags[set*c.ways : (set+1)*c.ways] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Hits returns the number of hits so far.
func (c *SetAssoc) Hits() uint64 { return c.hits }

// Misses returns the number of misses so far.
func (c *SetAssoc) Misses() uint64 { return c.misses }

// MissRate returns the miss fraction in [0,1].
func (c *SetAssoc) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset clears contents and statistics.
func (c *SetAssoc) Reset() {
	for i := range c.tags {
		c.tags[i] = tagEntry{}
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}
