package cache

import (
	"testing"
	"testing/quick"
)

func TestSetAssocGeometry(t *testing.T) {
	c := MustNewSetAssoc(8*1024, 1, 64)
	if c.Sets() != 128 || c.Ways() != 1 || c.BlockSize() != 64 {
		t.Errorf("geometry = %d sets, %d ways, %d block", c.Sets(), c.Ways(), c.BlockSize())
	}
	c2 := MustNewSetAssoc(32*1024, 2, 64)
	if c2.Sets() != 256 || c2.Ways() != 2 {
		t.Errorf("geometry = %d sets, %d ways", c2.Sets(), c2.Ways())
	}
}

func TestNewSetAssocErrors(t *testing.T) {
	if _, err := NewSetAssoc(0, 1, 64); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := NewSetAssoc(1024, 1, 60); err == nil {
		t.Error("non-power-of-two block must fail")
	}
	if _, err := NewSetAssoc(100, 3, 64); err == nil {
		t.Error("indivisible size must fail")
	}
}

func TestMustNewSetAssocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewSetAssoc(0, 0, 0)
}

func TestSetAssocHitMiss(t *testing.T) {
	c := MustNewSetAssoc(1024, 1, 64)
	if c.Access(0x100) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x100) {
		t.Error("second access must hit")
	}
	if !c.Access(0x13f) {
		t.Error("same block must hit")
	}
	if c.Access(0x140) {
		t.Error("next block must miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestSetAssocConflictDirectMapped(t *testing.T) {
	c := MustNewSetAssoc(1024, 1, 64) // 16 sets
	a := uint64(0x0000)
	b := uint64(0x0000 + 1024) // same set, different tag
	c.Access(a)
	c.Access(b) // evicts a
	if c.Probe(a) {
		t.Error("direct-mapped conflict must evict the old block")
	}
	if !c.Probe(b) {
		t.Error("newly inserted block must be present")
	}
}

func TestSetAssocTwoWayAvoidsConflict(t *testing.T) {
	c := MustNewSetAssoc(2048, 2, 64)
	a := uint64(0x0000)
	b := a + uint64(c.Sets()*c.BlockSize())
	c.Access(a)
	c.Access(b)
	if !c.Probe(a) || !c.Probe(b) {
		t.Error("two-way cache must hold both conflicting blocks")
	}
	// A third conflicting block evicts the LRU (a).
	d := a + 2*uint64(c.Sets()*c.BlockSize())
	c.Access(a) // touch a so b becomes LRU
	c.Access(d)
	if c.Probe(b) {
		t.Error("LRU block must be evicted")
	}
	if !c.Probe(a) {
		t.Error("recently used block must survive")
	}
}

func TestSetAssocReset(t *testing.T) {
	c := MustNewSetAssoc(1024, 1, 64)
	c.Access(0x100)
	c.Reset()
	if c.Probe(0x100) || c.Hits() != 0 || c.Misses() != 0 {
		t.Error("reset must clear contents and counters")
	}
}

func TestMissRateEmpty(t *testing.T) {
	c := MustNewSetAssoc(1024, 1, 64)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate must be 0")
	}
}

// Property: the number of cached blocks never exceeds sets*ways, and a block
// just accessed is always present.
func TestSetAssocInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNewSetAssoc(512, 2, 64)
		for _, a := range addrs {
			addr := uint64(a)
			c.Access(addr)
			if !c.Probe(addr) {
				return false
			}
		}
		return c.Hits()+c.Misses() == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusSerialisesTransfers(t *testing.T) {
	b := NewBus(4)
	if got := b.Acquire(10); got != 10 {
		t.Errorf("first transfer starts at %d, want 10", got)
	}
	if got := b.Acquire(11); got != 14 {
		t.Errorf("second transfer starts at %d, want 14 (queued)", got)
	}
	if got := b.Acquire(100); got != 100 {
		t.Errorf("late transfer starts at %d, want 100", got)
	}
	if b.Transfers() != 3 {
		t.Errorf("transfers = %d", b.Transfers())
	}
	if b.TotalWait() != 3 {
		t.Errorf("total wait = %d, want 3", b.TotalWait())
	}
	b.Reset()
	if b.Transfers() != 0 || b.TotalWait() != 0 {
		t.Error("reset must clear counters")
	}
}

func TestBusOccupancyClamp(t *testing.T) {
	b := NewBus(0)
	b.Acquire(0)
	if got := b.Acquire(0); got != 1 {
		t.Errorf("occupancy must clamp to 1, second start = %d", got)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(8)
	if c.ICacheSize != 32*1024 || c.ICacheWays != 2 || c.ICacheBlock != 64 {
		t.Errorf("icache config = %+v", c)
	}
	if c.DBankSize != 8*1024 || c.DBankWays != 1 {
		t.Errorf("dbank config = %+v", c)
	}
	if c.DHitLatency != 2 || c.IHitLatency != 1 {
		t.Errorf("latencies = %+v", c)
	}
	if DefaultConfig(0).Units != 1 {
		t.Error("units must clamp to 1")
	}
}

func TestHierarchyBankCount(t *testing.T) {
	h := NewHierarchy(DefaultConfig(4))
	if h.Banks() != 8 {
		t.Errorf("banks = %d, want 8 (twice the units)", h.Banks())
	}
	h8 := NewHierarchy(DefaultConfig(8))
	if h8.Banks() != 16 {
		t.Errorf("banks = %d, want 16", h8.Banks())
	}
}

func TestHierarchyDataHitAndMissLatency(t *testing.T) {
	cfg := DefaultConfig(4)
	h := NewHierarchy(cfg)
	// Cold access: miss.
	missDone := h.DataAccess(0x1000, 100)
	if missDone < 100+int64(cfg.DHitLatency)+int64(cfg.MissPenalty) {
		t.Errorf("miss completes at %d, too early", missDone)
	}
	// Warm access to the same block: hit at hit latency.
	hitDone := h.DataAccess(0x1008, 200)
	if hitDone != 200+int64(cfg.DHitLatency) {
		t.Errorf("hit completes at %d, want %d", hitDone, 200+int64(cfg.DHitLatency))
	}
	st := h.Stats()
	if st.DataAccesses != 2 || st.DataMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHierarchyBankConflictSerialises(t *testing.T) {
	cfg := DefaultConfig(4)
	h := NewHierarchy(cfg)
	// Warm up two addresses mapping to the same bank (same block).
	h.DataAccess(0x2000, 0)
	done1 := h.DataAccess(0x2000, 100)
	done2 := h.DataAccess(0x2008, 100) // same bank, same cycle
	if done2 <= done1 {
		t.Errorf("bank conflict must serialise: %d vs %d", done1, done2)
	}
}

func TestHierarchyDifferentBanksParallel(t *testing.T) {
	cfg := DefaultConfig(4)
	h := NewHierarchy(cfg)
	// Warm both blocks.
	h.DataAccess(0x2000, 0)
	h.DataAccess(0x2040, 0) // next block, next bank
	d1 := h.DataAccess(0x2000, 100)
	d2 := h.DataAccess(0x2040, 100)
	if d1 != d2 {
		t.Errorf("independent banks must serve in parallel: %d vs %d", d1, d2)
	}
}

func TestHierarchyInstrFetch(t *testing.T) {
	cfg := DefaultConfig(2)
	h := NewHierarchy(cfg)
	missDone := h.InstrFetch(0, 0x400, 10)
	if missDone <= 10+int64(cfg.IHitLatency) {
		t.Errorf("instruction miss completes at %d, too early", missDone)
	}
	hitDone := h.InstrFetch(0, 0x404, 50)
	if hitDone != 50+int64(cfg.IHitLatency) {
		t.Errorf("instruction hit completes at %d", hitDone)
	}
	// A different unit has its own instruction cache: same PC misses again.
	otherDone := h.InstrFetch(1, 0x404, 50)
	if otherDone == hitDone {
		t.Error("per-unit instruction caches must be independent")
	}
	st := h.Stats()
	if st.InstrAccesses != 3 || st.InstrMisses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultConfig(2))
	h.DataAccess(0x100, 0)
	h.InstrFetch(0, 0x200, 0)
	h.Reset()
	st := h.Stats()
	if st.DataAccesses != 0 || st.InstrAccesses != 0 || st.BusTransfers != 0 {
		t.Errorf("reset must clear stats: %+v", st)
	}
}

// Property: access completion time is never before the request time plus the
// hit latency, and the access counters always balance.
func TestHierarchyCompletionLowerBound(t *testing.T) {
	f := func(addrs []uint16) bool {
		cfg := DefaultConfig(2)
		h := NewHierarchy(cfg)
		now := int64(0)
		for _, a := range addrs {
			addr := uint64(a%256) * 8
			done := h.DataAccess(addr, now)
			if done < now+int64(cfg.DHitLatency) {
				return false
			}
			now += 2
		}
		st := h.Stats()
		return st.DataAccesses == uint64(len(addrs)) && st.DataMisses <= st.DataAccesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
