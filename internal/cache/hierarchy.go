package cache

// Config describes the memory hierarchy, defaulting to the configuration of
// section 5.2 of the paper.
type Config struct {
	// Units is the number of processing units; the data cache has twice as
	// many interleaved banks.
	Units int
	// ICacheSize, ICacheWays, ICacheBlock configure the per-unit instruction
	// cache (32 KB, 2-way, 64-byte blocks).
	ICacheSize  int
	ICacheWays  int
	ICacheBlock int
	// DBankSize, DBankWays, DBankBlock configure each data bank (8 KB direct
	// mapped, 64-byte blocks).
	DBankSize  int
	DBankWays  int
	DBankBlock int
	// DHitLatency is the data bank hit time in cycles (2).
	DHitLatency int
	// IHitLatency is the instruction cache hit time in cycles (1).
	IHitLatency int
	// MissPenalty is the additional latency of a miss before bus transfer
	// (10+3 cycles in the paper).
	MissPenalty int
	// BusOccupancy is the number of cycles a miss occupies the shared bus
	// (one 4-word transfer on the 4-word split-transaction bus).
	BusOccupancy int
}

// DefaultConfig returns the paper's memory configuration for the given number
// of processing units.
func DefaultConfig(units int) Config {
	if units < 1 {
		units = 1
	}
	return Config{
		Units:        units,
		ICacheSize:   32 * 1024,
		ICacheWays:   2,
		ICacheBlock:  64,
		DBankSize:    8 * 1024,
		DBankWays:    1,
		DBankBlock:   64,
		DHitLatency:  2,
		IHitLatency:  1,
		MissPenalty:  13,
		BusOccupancy: 4,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Units)
	if c.ICacheSize <= 0 {
		c.ICacheSize = d.ICacheSize
	}
	if c.ICacheWays <= 0 {
		c.ICacheWays = d.ICacheWays
	}
	if c.ICacheBlock <= 0 {
		c.ICacheBlock = d.ICacheBlock
	}
	if c.DBankSize <= 0 {
		c.DBankSize = d.DBankSize
	}
	if c.DBankWays <= 0 {
		c.DBankWays = d.DBankWays
	}
	if c.DBankBlock <= 0 {
		c.DBankBlock = d.DBankBlock
	}
	if c.DHitLatency <= 0 {
		c.DHitLatency = d.DHitLatency
	}
	if c.IHitLatency <= 0 {
		c.IHitLatency = d.IHitLatency
	}
	if c.MissPenalty <= 0 {
		c.MissPenalty = d.MissPenalty
	}
	if c.BusOccupancy <= 0 {
		c.BusOccupancy = d.BusOccupancy
	}
	if c.Units <= 0 {
		c.Units = d.Units
	}
	return c
}

// Bus models the single split-transaction memory bus: each miss occupies it
// for a fixed number of cycles, and requests queue behind one another.
//
//memdep:resettable
type Bus struct {
	occupancy int64 //lint:reset-exempt transfer latency fixed at construction
	nextFree  int64
	transfers uint64
	waitTotal uint64
}

// NewBus creates a bus whose transfers occupy the given number of cycles.
func NewBus(occupancy int) *Bus {
	if occupancy < 1 {
		occupancy = 1
	}
	return &Bus{occupancy: int64(occupancy)}
}

// Acquire schedules a transfer requested at cycle `now` and returns the cycle
// at which the transfer begins (>= now).
func (b *Bus) Acquire(now int64) int64 {
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	b.waitTotal += uint64(start - now)
	b.nextFree = start + b.occupancy
	b.transfers++
	return start
}

// Transfers returns the number of transfers performed.
func (b *Bus) Transfers() uint64 { return b.transfers }

// TotalWait returns the total number of cycles requests spent queued.
func (b *Bus) TotalWait() uint64 { return b.waitTotal }

// Reset clears the bus state.
func (b *Bus) Reset() { b.nextFree, b.transfers, b.waitTotal = 0, 0, 0 }

// Hierarchy bundles the per-unit instruction caches, the shared banked data
// cache and the memory bus, and answers timing queries.
//
//memdep:resettable
type Hierarchy struct {
	cfg    Config //lint:reset-exempt construction-time configuration, immutable across runs
	icache []*SetAssoc
	dbanks []*SetAssoc
	// bankFree is the next cycle at which each data bank can accept an
	// access (banks serve one access per cycle).
	bankFree []int64
	bus      *Bus

	iAccesses uint64
	dAccesses uint64
	bankWait  uint64
}

// NewHierarchy builds the memory hierarchy for the configuration.
func NewHierarchy(cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	h := &Hierarchy{cfg: cfg, bus: NewBus(cfg.BusOccupancy)}
	for i := 0; i < cfg.Units; i++ {
		h.icache = append(h.icache, MustNewSetAssoc(cfg.ICacheSize, cfg.ICacheWays, cfg.ICacheBlock))
	}
	banks := 2 * cfg.Units
	for i := 0; i < banks; i++ {
		h.dbanks = append(h.dbanks, MustNewSetAssoc(cfg.DBankSize, cfg.DBankWays, cfg.DBankBlock))
		h.bankFree = append(h.bankFree, 0)
	}
	return h
}

// Config returns the effective configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Banks returns the number of data banks.
func (h *Hierarchy) Banks() int { return len(h.dbanks) }

// bank selects the data bank serving addr (interleaved on block address).
func (h *Hierarchy) bank(addr uint64) int {
	return int((addr / uint64(h.cfg.DBankBlock)) % uint64(len(h.dbanks)))
}

// InstrFetch models an instruction fetch by the given unit at cycle now and
// returns the cycle at which the instruction is available.
func (h *Hierarchy) InstrFetch(unit int, pc uint64, now int64) int64 {
	h.iAccesses++
	c := h.icache[unit%len(h.icache)]
	if c.Access(pc) {
		return now + int64(h.cfg.IHitLatency)
	}
	start := h.bus.Acquire(now + int64(h.cfg.IHitLatency))
	return start + int64(h.cfg.MissPenalty)
}

// DataAccess models a load or store by any unit at cycle now and returns the
// cycle at which the access completes.  Stores complete when they reach the
// bank; loads complete when the data returns.
func (h *Hierarchy) DataAccess(addr uint64, now int64) int64 {
	h.dAccesses++
	b := h.bank(addr)
	start := now
	if h.bankFree[b] > start {
		h.bankWait += uint64(h.bankFree[b] - start)
		start = h.bankFree[b]
	}
	h.bankFree[b] = start + 1
	if h.dbanks[b].Access(addr) {
		return start + int64(h.cfg.DHitLatency)
	}
	busStart := h.bus.Acquire(start + int64(h.cfg.DHitLatency))
	return busStart + int64(h.cfg.MissPenalty)
}

// Stats summarises hierarchy activity.
type Stats struct {
	InstrAccesses uint64
	InstrMisses   uint64
	DataAccesses  uint64
	DataMisses    uint64
	BusTransfers  uint64
	BusWait       uint64
	BankWait      uint64
}

// Stats returns a snapshot of the hierarchy counters.
func (h *Hierarchy) Stats() Stats {
	var s Stats
	s.InstrAccesses = h.iAccesses
	s.DataAccesses = h.dAccesses
	for _, c := range h.icache {
		s.InstrMisses += c.Misses()
	}
	for _, c := range h.dbanks {
		s.DataMisses += c.Misses()
	}
	s.BusTransfers = h.bus.Transfers()
	s.BusWait = h.bus.TotalWait()
	s.BankWait = h.bankWait
	return s
}

// Reset clears all caches, the bus and the counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.icache {
		c.Reset()
	}
	for _, c := range h.dbanks {
		c.Reset()
	}
	for i := range h.bankFree {
		h.bankFree[i] = 0
	}
	h.bus.Reset()
	h.iAccesses, h.dAccesses, h.bankWait = 0, 0, 0
}
