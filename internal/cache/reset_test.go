package cache

import (
	"reflect"
	"testing"
)

// xorshift64 with a fixed seed keeps the drives deterministic.
type resetRand uint64

func (r *resetRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = resetRand(x)
	return x
}

// TestResetEquivalence drives each cache structure, Resets it and drives it
// again: the second drive must observably match a fresh instance.  Leaked
// tags, LRU clocks or bus occupancy diverge the digests.
func TestResetEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		fresh func() interface{ Reset() }
		drive func(r interface{ Reset() }) any
	}{
		{
			name:  "SetAssoc",
			fresh: func() interface{ Reset() } { return MustNewSetAssoc(4*1024, 2, 64) },
			drive: func(r interface{ Reset() }) any {
				c := r.(*SetAssoc)
				rnd := resetRand(1)
				var digest []any
				for i := 0; i < 500; i++ {
					addr := (rnd.next() % 256) * 64
					if i%5 == 4 {
						digest = append(digest, c.Probe(addr))
					} else {
						digest = append(digest, c.Access(addr))
					}
				}
				return append(digest, c.Hits(), c.Misses())
			},
		},
		{
			name:  "Bus",
			fresh: func() interface{ Reset() } { return NewBus(4) },
			drive: func(r interface{ Reset() }) any {
				b := r.(*Bus)
				rnd := resetRand(2)
				var digest []any
				now := int64(0)
				for i := 0; i < 100; i++ {
					now += int64(rnd.next() % 6)
					digest = append(digest, b.Acquire(now))
				}
				return append(digest, b.Transfers(), b.TotalWait())
			},
		},
		{
			name:  "Hierarchy",
			fresh: func() interface{ Reset() } { return NewHierarchy(DefaultConfig(4)) },
			drive: func(r interface{ Reset() }) any {
				h := r.(*Hierarchy)
				rnd := resetRand(3)
				var digest []any
				now := int64(0)
				for i := 0; i < 400; i++ {
					now += int64(rnd.next() % 4)
					if i%2 == 0 {
						digest = append(digest, h.InstrFetch(int(rnd.next()%uint64(h.Config().Units)), (rnd.next()%512)*64, now))
					} else {
						digest = append(digest, h.DataAccess((rnd.next()%512)*64, now))
					}
				}
				return append(digest, h.Stats())
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reused := tc.fresh()
			tc.drive(reused)
			reused.Reset()
			got := tc.drive(reused)
			want := tc.drive(tc.fresh())
			if !reflect.DeepEqual(got, want) {
				t.Errorf("drive after Reset diverges from fresh instance:\nreset: %+v\nfresh: %+v", got, want)
			}
		})
	}
}
