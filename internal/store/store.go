// Package store is the disk-backed, content-addressed second tier beneath
// the engine's in-memory result cache.  Objects are keyed on the canonical
// cache keys the engine job kinds already produce (normalized-spec JSON and
// configuration strings), hashed with SHA-256 and laid out as
//
//	<dir>/objects/<kind>/<hh>/<hash>
//
// where <kind> is the job kind with path separators flattened, <hash> is the
// hex digest of the engine key and <hh> its first two characters (the shard).
// Each file is a versioned envelope (schema version, key digest, payload
// checksum -- see envelope.go) written atomically via an O_EXCL temp file and
// rename, so concurrent writers in any number of processes race benignly:
// both write the same content and the last rename wins.
//
// The store is an optimization layer, never a source of truth: corrupt,
// truncated or version-mismatched entries are treated as misses and
// rewritten on the next computation, and a write failure only bumps a
// counter.  Kinds opt in through their Codec -- a kind without a registered
// codec bypasses the disk entirely, which keeps cheap or non-deterministic
// jobs memory-only.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Codec translates one job kind's results to and from persistable bytes.
// Encodings must be self-contained (the payload is the only input to Decode)
// and loss-free: a decoded value must be indistinguishable from the computed
// one, since warm results feed the same drivers, goldens and experiment
// tables as cold ones.
type Codec interface {
	// Kind returns the engine job kind this codec persists.
	Kind() string
	// Encode renders a result value of the kind to bytes.
	Encode(v any) ([]byte, error)
	// Decode reconstructs a result value from Encode's bytes.  It must
	// return an error, never panic, on bytes it cannot decode.
	Decode(data []byte) (any, error)
}

// Counters is a snapshot of one kind's (or the whole store's) traffic.
type Counters struct {
	// Hits counts loads served from an intact on-disk object.
	Hits uint64 `json:"hits"`
	// Misses counts loads that found no object (including objects written
	// under another schema version, which are expected invalidations).
	Misses uint64 `json:"misses"`
	// Bypassed counts loads of kinds with no registered codec.
	Bypassed uint64 `json:"bypassed"`
	// Corrupt counts objects that were present but undecodable -- truncated,
	// checksum-mismatched or rejected by the codec.  They are treated as
	// misses and rewritten by the following computation.
	Corrupt uint64 `json:"corrupt"`
	// Writes counts objects persisted.
	Writes uint64 `json:"writes"`
	// WriteErrors counts failed persists (encoding or I/O); the result is
	// still returned to the caller, only the disk copy is lost.
	WriteErrors uint64 `json:"write_errors"`
}

// add accumulates o into c.
func (c *Counters) add(o Counters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Bypassed += o.Bypassed
	c.Corrupt += o.Corrupt
	c.Writes += o.Writes
	c.WriteErrors += o.WriteErrors
}

// Store is a handle on one store directory.  It is safe for concurrent use
// within a process, and any number of processes may share the directory.
type Store struct {
	dir    string
	codecs map[string]Codec

	mu sync.Mutex
	//memdep:guardedby mu
	perKind map[string]*Counters
}

// Open returns a handle on the store rooted at dir with the given kinds
// registered.  Nothing is validated or created eagerly: a directory that
// does not exist yet reads as all-misses and is created by the first write,
// so Open cannot fail and a misconfigured path degrades to a cold cache, not
// a crash.
func Open(dir string, codecs ...Codec) *Store {
	s := &Store{
		dir:     dir,
		codecs:  make(map[string]Codec, len(codecs)),
		perKind: make(map[string]*Counters),
	}
	for _, c := range codecs {
		s.codecs[c.Kind()] = c
	}
	return s
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counters returns the aggregate traffic counters since Open.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total Counters
	for _, c := range s.perKind {
		total.add(*c)
	}
	return total
}

// KindCounters returns a snapshot of the per-kind traffic counters.
func (s *Store) KindCounters() map[string]Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Counters, len(s.perKind))
	for kind, c := range s.perKind {
		out[kind] = *c
	}
	return out
}

// bump applies f to the kind's counters.
func (s *Store) bump(kind string, f func(*Counters)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.perKind[kind]
	if c == nil {
		c = &Counters{}
		s.perKind[kind] = c
	}
	f(c)
}

// keyDigest hashes the engine-wide identity of a job, matching engine.Key's
// "kind\x00cachekey" composition.
func keyDigest(kind, key string) [sha256.Size]byte {
	return sha256.Sum256([]byte(kind + "\x00" + key))
}

// sanitizeKind flattens a job kind into one path element.
func sanitizeKind(kind string) string { return strings.ReplaceAll(kind, "/", "-") }

// objectPath returns the sharded object path for a key digest.
func (s *Store) objectPath(kind string, digest [sha256.Size]byte) string {
	h := hex.EncodeToString(digest[:])
	return filepath.Join(s.dir, "objects", sanitizeKind(kind), h[:2], h)
}

// Load implements the read side of engine.Tier: it returns the persisted
// result of a (kind, key) job, or reports a miss.  A hit refreshes the
// object's timestamp, which is the access stamp GC's LRU eviction sorts on
// (mtime rather than atime, because atime is unreliable under the relatime
// and noatime mount options common on CI hosts).
func (s *Store) Load(kind, key string) (any, bool) {
	codec := s.codecs[kind]
	if codec == nil {
		s.bump(kind, func(c *Counters) { c.Bypassed++ })
		return nil, false
	}
	digest := keyDigest(kind, key)
	path := s.objectPath(kind, digest)
	data, err := os.ReadFile(path)
	if err != nil {
		s.bump(kind, func(c *Counters) { c.Misses++ })
		return nil, false
	}
	payload, err := decodeEnvelope(data, digest)
	if err != nil {
		if errors.Is(err, errWrongVersion) {
			s.bump(kind, func(c *Counters) { c.Misses++ })
		} else {
			s.bump(kind, func(c *Counters) { c.Corrupt++ })
		}
		return nil, false
	}
	v, err := codec.Decode(payload)
	if err != nil {
		s.bump(kind, func(c *Counters) { c.Corrupt++ })
		return nil, false
	}
	s.bump(kind, func(c *Counters) { c.Hits++ })
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort LRU touch
	return v, true
}

// encBuffer is the reusable envelope-assembly buffer Save draws from a pool:
// work-item payloads run to a megabyte, and pooling the backing array keeps
// repeated saves from re-growing it every time.
//
//memdep:resettable
type encBuffer struct {
	b []byte
}

// Reset empties the buffer, keeping its capacity.
func (e *encBuffer) Reset() { e.b = e.b[:0] }

var encPool = sync.Pool{New: func() any { return new(encBuffer) }}

// Save implements the write side of engine.Tier: it persists a computed
// result, atomically (temp file + rename) and best-effort -- every failure
// is counted, none is surfaced, because the caller already holds the result
// and the disk copy is only an optimization.  Kinds without a codec are
// ignored (Load already counted the bypass for the job).
func (s *Store) Save(kind, key string, v any) {
	codec := s.codecs[kind]
	if codec == nil {
		return
	}
	payload, err := codec.Encode(v)
	if err != nil {
		s.bump(kind, func(c *Counters) { c.WriteErrors++ })
		return
	}
	digest := keyDigest(kind, key)
	buf := encPool.Get().(*encBuffer)
	defer encPool.Put(buf)
	buf.Reset()
	buf.b = appendEnvelope(buf.b, digest, payload)
	if err := writeAtomic(s.objectPath(kind, digest), buf.b); err != nil {
		s.bump(kind, func(c *Counters) { c.WriteErrors++ })
		return
	}
	s.bump(kind, func(c *Counters) { c.Writes++ })
}

// tmpPattern names in-flight temp files; maintenance walks skip (and GC
// eventually reaps) anything matching it.
const tmpPattern = ".tmp-*"

// writeAtomic publishes data at path via an exclusively created temp file in
// the same directory and an atomic rename, so readers -- in this process or
// any other -- only ever observe complete objects, and concurrent writers of
// the same object cannot interleave.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, tmpPattern) // O_EXCL: the temp name is ours alone
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
	}
	return err
}
