package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"time"
)

// ObjectInfo describes one on-disk object during a maintenance walk.
type ObjectInfo struct {
	// Path is the object's absolute (or dir-relative, as given) path.
	Path string
	// Kind is the flattened kind directory the object lives under.
	Kind string
	// Size is the file size in bytes (envelope included).
	Size int64
	// ModTime is the object's timestamp; Load refreshes it on every hit, so
	// it orders objects by last use.
	ModTime time.Time
}

// walkObjects visits every object under dir's objects tree in a fixed
// lexical order, skipping in-flight temp files.  A missing objects tree is
// an empty store, not an error.
func walkObjects(dir string, fn func(ObjectInfo) error) error {
	root := filepath.Join(dir, "objects")
	kinds, err := sortedNames(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, kind := range kinds {
		shards, err := sortedNames(filepath.Join(root, kind))
		if err != nil {
			return err
		}
		for _, shard := range shards {
			shardDir := filepath.Join(root, kind, shard)
			names, err := sortedNames(shardDir)
			if err != nil {
				return err
			}
			for _, name := range names {
				if ok, _ := filepath.Match(tmpPattern, name); ok {
					continue
				}
				path := filepath.Join(shardDir, name)
				fi, err := os.Stat(path)
				if err != nil {
					continue // racing eviction or writer; skip
				}
				if err := fn(ObjectInfo{Path: path, Kind: kind, Size: fi.Size(), ModTime: fi.ModTime()}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortedNames lists a directory's entry names in lexical order.
func sortedNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	slices.Sort(names)
	return names, nil
}

// KindUsage is the on-disk footprint of one kind.
type KindUsage struct {
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
}

// DiskUsage is the on-disk footprint of a store directory.
type DiskUsage struct {
	Objects int                  `json:"objects"`
	Bytes   int64                `json:"bytes"`
	Kinds   map[string]KindUsage `json:"kinds,omitempty"`
}

// Usage walks a store directory and returns its footprint per kind.
func Usage(dir string) (DiskUsage, error) {
	u := DiskUsage{Kinds: map[string]KindUsage{}}
	err := walkObjects(dir, func(o ObjectInfo) error {
		u.Objects++
		u.Bytes += o.Size
		k := u.Kinds[o.Kind]
		k.Objects++
		k.Bytes += o.Size
		u.Kinds[o.Kind] = k
		return nil
	})
	return u, err
}

// GCResult reports what an eviction pass did.
type GCResult struct {
	Evicted      int   `json:"evicted"`
	EvictedBytes int64 `json:"evicted_bytes"`
	Kept         int   `json:"kept"`
	KeptBytes    int64 `json:"kept_bytes"`
}

// tmpMaxAge is how long an in-flight temp file may linger before GC reaps it
// as the debris of a crashed writer.
const tmpMaxAge = time.Hour

// GC evicts least-recently-used objects until the store fits maxBytes.
// "Recently used" is the object timestamp Load refreshes on every hit;
// ties break on the object path, so eviction is deterministic for a given
// set of timestamps.  Stale temp files from crashed writers are reaped as a
// side effect.  Eviction races benignly with readers and writers: a reader
// that loses its object takes a miss and recomputes.
func GC(dir string, maxBytes int64) (GCResult, error) {
	reapTempFiles(dir)
	var objects []ObjectInfo
	var total int64
	err := walkObjects(dir, func(o ObjectInfo) error {
		objects = append(objects, o)
		total += o.Size
		return nil
	})
	if err != nil {
		return GCResult{}, err
	}
	sort.Slice(objects, func(i, j int) bool {
		if !objects[i].ModTime.Equal(objects[j].ModTime) {
			return objects[i].ModTime.Before(objects[j].ModTime)
		}
		return objects[i].Path < objects[j].Path
	})
	res := GCResult{Kept: len(objects), KeptBytes: total}
	for _, o := range objects {
		if res.KeptBytes <= maxBytes {
			break
		}
		if err := os.Remove(o.Path); err != nil {
			continue // racing eviction; the object is gone either way
		}
		res.Evicted++
		res.EvictedBytes += o.Size
		res.Kept--
		res.KeptBytes -= o.Size
	}
	return res, nil
}

// reapTempFiles removes temp files older than tmpMaxAge anywhere under the
// objects tree.
func reapTempFiles(dir string) {
	_ = filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil //nolint:nilerr // best-effort hygiene, never fatal
		}
		if ok, _ := filepath.Match(tmpPattern, d.Name()); !ok {
			return nil
		}
		if fi, err := d.Info(); err == nil && time.Since(fi.ModTime()) > tmpMaxAge {
			_ = os.Remove(path)
		}
		return nil
	})
}

// BadObject is one object Verify could not validate.
type BadObject struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

// VerifyResult reports an integrity walk.
type VerifyResult struct {
	// Checked counts the objects visited.
	Checked int `json:"checked"`
	// Stale counts intact objects written under another schema version;
	// they are not corrupt, just awaiting rewrite (or GC).
	Stale int `json:"stale"`
	// Bad lists the objects that failed validation.
	Bad []BadObject `json:"bad,omitempty"`
}

// Verify walks every object and validates it end to end: the file name must
// be a well-formed digest, the envelope's key digest must match it, and the
// payload must match its checksum.  With deleteBad set, failing objects are
// removed (they would otherwise be rewritten on their next miss anyway; this
// just reclaims the space immediately).
func Verify(dir string, deleteBad bool) (VerifyResult, error) {
	var res VerifyResult
	err := walkObjects(dir, func(o ObjectInfo) error {
		res.Checked++
		reason := verifyObject(o)
		if reason == "" {
			return nil
		}
		if reason == reasonStale {
			res.Stale++
			return nil
		}
		res.Bad = append(res.Bad, BadObject{Path: o.Path, Reason: reason})
		if deleteBad {
			_ = os.Remove(o.Path)
		}
		return nil
	})
	return res, err
}

// reasonStale marks a version-mismatched (but intact) object.
const reasonStale = "stale schema version"

// verifyObject validates one object file, returning "" when it is intact.
func verifyObject(o ObjectInfo) string {
	name := filepath.Base(o.Path)
	digestBytes, err := hex.DecodeString(name)
	if err != nil || len(digestBytes) != sha256.Size {
		return "file name is not a SHA-256 digest"
	}
	if !strings.HasPrefix(name, filepath.Base(filepath.Dir(o.Path))) {
		return "object filed under the wrong shard"
	}
	data, err := os.ReadFile(o.Path)
	if err != nil {
		return fmt.Sprintf("unreadable: %v", err)
	}
	if _, err := decodeEnvelope(data, [sha256.Size]byte(digestBytes)); err != nil {
		if errors.Is(err, errWrongVersion) {
			return reasonStale
		}
		return err.Error()
	}
	return ""
}
