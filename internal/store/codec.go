package store

import (
	"encoding/json"
	"fmt"

	"memdep/internal/multiscalar"
	"memdep/internal/program"
	"memdep/internal/synth"
)

// DefaultCodecs returns the persisted kinds of the simulation stack: timing
// results, preprocessed work items and built synthetic programs.  The
// remaining kinds stay memory-only deliberately -- workload/build assembles a
// committed static program in microseconds, and trace/run and window/analyze
// results are intermediate products the persisted kinds already subsume.
func DefaultCodecs() []Codec {
	return []Codec{resultCodec{}, workItemCodec{}, programCodec{}}
}

// resultCodec persists multiscalar/simulate results as JSON.  The encoding
// is pinned loss-free by the multiscalar JSON round-trip test (PairKey map
// keys included), which is exactly the property a warm run needs to be
// byte-identical to a cold one.
type resultCodec struct{}

func (resultCodec) Kind() string { return multiscalar.SimulateKind }

func (resultCodec) Encode(v any) ([]byte, error) {
	res, ok := v.(multiscalar.Result)
	if !ok {
		return nil, fmt.Errorf("store: %s result is %T, want multiscalar.Result", multiscalar.SimulateKind, v)
	}
	return json.Marshal(res)
}

func (resultCodec) Decode(data []byte) (any, error) {
	var res multiscalar.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	return res, nil
}

// workItemCodec persists multiscalar/preprocess state in the compact binary
// work-item encoding (the dominant payload: ~20 bytes per committed
// instruction, versus a functional re-run to recompute it).
type workItemCodec struct{}

func (workItemCodec) Kind() string { return multiscalar.PreprocessKind }

func (workItemCodec) Encode(v any) ([]byte, error) {
	w, ok := v.(*multiscalar.WorkItem)
	if !ok {
		return nil, fmt.Errorf("store: %s result is %T, want *multiscalar.WorkItem", multiscalar.PreprocessKind, v)
	}
	return multiscalar.AppendWorkItem(nil, w), nil
}

func (workItemCodec) Decode(data []byte) (any, error) {
	return multiscalar.DecodeWorkItem(data)
}

// programCodec persists synth/build programs as JSON (every Program field is
// exported, and map keys marshal deterministically).  Decoded programs are
// re-validated: a payload that passes its checksum but fails structural
// validation is treated as corrupt rather than handed to the simulator.
type programCodec struct{}

func (programCodec) Kind() string { return synth.BuildKind }

func (programCodec) Encode(v any) ([]byte, error) {
	p, ok := v.(*program.Program)
	if !ok {
		return nil, fmt.Errorf("store: %s result is %T, want *program.Program", synth.BuildKind, v)
	}
	return json.Marshal(p)
}

func (programCodec) Decode(data []byte) (any, error) {
	p := &program.Program{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
