package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the envelope schema version.  Bumping it invalidates every
// object written by earlier builds: readers treat the mismatch as a cache
// miss and rewrite the entry, so a format change never needs a migration.
const Version = 1

// magic brands every object file so that a foreign file dropped into the
// store tree is recognized as garbage rather than misdecoded.
var magic = [4]byte{'M', 'D', 'S', 'O'}

// envelope layout, all integers little-endian:
//
//	offset  size  field
//	     0     4  magic "MDSO"
//	     4     4  schema version (uint32)
//	     8    32  key digest: SHA-256 of the engine key "kind\x00cachekey"
//	    40    32  payload checksum: SHA-256 of the payload bytes
//	    72     8  payload length (uint64)
//	    80     -  payload
//
// The header is fully determined by (key digest, payload), so an envelope
// that decodes successfully re-encodes byte-identically -- the property
// FuzzStoreDecode pins.
const headerLen = 4 + 4 + 32 + 32 + 8

// errWrongVersion marks an intact envelope written under another schema
// version.  Load counts it as a miss (an expected invalidation), not as
// corruption.
var errWrongVersion = errors.New("store: envelope schema version mismatch")

// appendEnvelope appends the enveloped payload to dst and returns the
// extended slice.
func appendEnvelope(dst []byte, keyDigest [sha256.Size]byte, payload []byte) []byte {
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, Version)
	dst = append(dst, keyDigest[:]...)
	sum := sha256.Sum256(payload)
	dst = append(dst, sum[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// decodeEnvelope validates an envelope against the expected key digest and
// returns its payload.  Every failure -- truncation, foreign magic, a length
// that disagrees with the file size, a checksum or key mismatch -- is an
// error, never a panic; callers treat all of them as cache misses.  The check
// is strict (no trailing bytes tolerated), which is what makes a successful
// decode re-encode byte-identically.
func decodeEnvelope(data []byte, keyDigest [sha256.Size]byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: envelope truncated: %d bytes, header is %d", len(data), headerLen)
	}
	if [4]byte(data[0:4]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("%w: object version %d, running version %d", errWrongVersion, v, Version)
	}
	if [sha256.Size]byte(data[8:40]) != keyDigest {
		return nil, fmt.Errorf("store: key digest mismatch (object stored under the wrong name)")
	}
	payloadLen := binary.LittleEndian.Uint64(data[72:80])
	if payloadLen != uint64(len(data)-headerLen) {
		return nil, fmt.Errorf("store: payload length %d disagrees with the %d payload bytes present",
			payloadLen, len(data)-headerLen)
	}
	payload := data[headerLen:]
	if sha256.Sum256(payload) != [sha256.Size]byte(data[40:72]) {
		return nil, fmt.Errorf("store: payload checksum mismatch")
	}
	return payload, nil
}
