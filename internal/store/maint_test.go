package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fill saves n distinct single-kind objects and returns their paths in key
// order, with strictly increasing mtimes so LRU order is fully determined.
func fill(t *testing.T, s *Store, n int) []string {
	t.Helper()
	base := time.Now().Add(-time.Duration(n+1) * time.Hour)
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		key := string(rune('a' + i))
		s.Save(testKind, key, strings.Repeat(key, 10))
		paths[i] = objectFile(t, s, testKind, key)
		stamp := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(paths[i], stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

func TestUsage(t *testing.T) {
	s := openTest(t)
	fill(t, s, 3)
	u, err := Usage(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if u.Objects != 3 || u.Bytes != 3*(headerLen+10) {
		t.Fatalf("usage = %+v, want 3 objects of %d bytes each", u, headerLen+10)
	}
	ku, ok := u.Kinds[sanitizeKind(testKind)]
	if !ok || ku.Objects != 3 {
		t.Fatalf("kind usage = %+v", u.Kinds)
	}
	// An empty (even nonexistent) store has zero usage, not an error.
	u, err = Usage(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || u.Objects != 0 {
		t.Fatalf("empty usage = %+v, %v", u, err)
	}
}

// TestGCEvictsDeterministically pins LRU eviction: with fully ordered
// timestamps, GC removes exactly the oldest objects needed to meet the byte
// budget and nothing else.
func TestGCEvictsDeterministically(t *testing.T) {
	s := openTest(t)
	paths := fill(t, s, 5)
	objSize := int64(headerLen + 10)

	// Budget for exactly three objects: the two oldest must go.
	res, err := GC(s.Dir(), 3*objSize)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 2 || res.Kept != 3 || res.KeptBytes != 3*objSize {
		t.Fatalf("gc = %+v", res)
	}
	for i, p := range paths {
		_, err := os.Stat(p)
		if gone := os.IsNotExist(err); gone != (i < 2) {
			t.Fatalf("object %d: exists=%v, want evicted only for the two oldest", i, !gone)
		}
	}

	// A second pass under the same budget is a no-op: eviction is stable.
	res, err = GC(s.Dir(), 3*objSize)
	if err != nil || res.Evicted != 0 || res.Kept != 3 {
		t.Fatalf("second gc = %+v, %v", res, err)
	}

	// A zero budget empties the store.
	res, err = GC(s.Dir(), 0)
	if err != nil || res.Kept != 0 || res.Evicted != 3 {
		t.Fatalf("gc to zero = %+v, %v", res, err)
	}
}

// TestGCHonorsLoadRecency pins the LRU signal end to end: touching an old
// object via Load saves it from an eviction that claims its untouched peer.
func TestGCHonorsLoadRecency(t *testing.T) {
	s := openTest(t)
	paths := fill(t, s, 2)
	// Object 0 is older; a hit refreshes its stamp past object 1's.
	if _, ok := s.Load(testKind, "a"); !ok {
		t.Fatal("miss on object 0")
	}
	res, err := GC(s.Dir(), int64(headerLen+10))
	if err != nil || res.Evicted != 1 {
		t.Fatalf("gc = %+v, %v", res, err)
	}
	if _, err := os.Stat(paths[0]); err != nil {
		t.Fatal("recently loaded object was evicted")
	}
	if _, err := os.Stat(paths[1]); !os.IsNotExist(err) {
		t.Fatal("stale object survived")
	}
}

func TestGCReapsStaleTempFiles(t *testing.T) {
	s := openTest(t)
	fill(t, s, 1)
	shard := filepath.Dir(objectFile(t, s, testKind, "a"))
	stale := filepath.Join(shard, ".tmp-123")
	fresh := filepath.Join(shard, ".tmp-456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(s.Dir(), 1<<30); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("in-flight temp file was reaped")
	}
}

func TestVerifyWalk(t *testing.T) {
	s := openTest(t)
	fill(t, s, 3)

	// All intact.
	res, err := Verify(s.Dir(), false)
	if err != nil || res.Checked != 3 || len(res.Bad) != 0 || res.Stale != 0 {
		t.Fatalf("verify = %+v, %v", res, err)
	}

	// Corrupt one object; verify reports it but leaves it unless asked.
	victim := objectFile(t, s, testKind, "b")
	if err := os.WriteFile(victim, []byte("MDSOgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = Verify(s.Dir(), false)
	if err != nil || len(res.Bad) != 1 || res.Bad[0].Path != victim {
		t.Fatalf("verify = %+v, %v", res, err)
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatal("verify without -delete removed the object")
	}

	// With delete, the bad object is reclaimed; intact ones survive.
	if res, err = Verify(s.Dir(), true); err != nil || len(res.Bad) != 1 {
		t.Fatalf("verify -delete = %+v, %v", res, err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatal("verify -delete left the bad object")
	}
	res, err = Verify(s.Dir(), false)
	if err != nil || res.Checked != 2 || len(res.Bad) != 0 {
		t.Fatalf("verify after delete = %+v, %v", res, err)
	}
}

func TestVerifyFlagsForeignAndMisfiledObjects(t *testing.T) {
	s := openTest(t)
	fill(t, s, 1)
	good := objectFile(t, s, testKind, "a")
	shard := filepath.Dir(good)

	// A foreign file with a non-digest name.
	if err := os.WriteFile(filepath.Join(shard, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An intact object copied under the wrong shard.
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	wrongShard := filepath.Join(filepath.Dir(shard), "zz")
	if err := os.MkdirAll(wrongShard, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wrongShard, filepath.Base(good)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Verify(s.Dir(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 3 || len(res.Bad) != 2 {
		t.Fatalf("verify = %+v", res)
	}
}
