package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// stringCodec persists strings of one synthetic kind; decode failures are
// injectable through the payload itself (a payload starting with "!" refuses
// to decode, standing in for a codec-level rejection).
type stringCodec struct{ kind string }

func (c stringCodec) Kind() string { return c.kind }

func (c stringCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("not a string: %T", v)
	}
	return []byte(s), nil
}

func (c stringCodec) Decode(data []byte) (any, error) {
	if strings.HasPrefix(string(data), "!") {
		return nil, fmt.Errorf("injected decode failure")
	}
	return string(data), nil
}

const testKind = "test/kind"

func openTest(t *testing.T) *Store {
	t.Helper()
	return Open(t.TempDir(), stringCodec{kind: testKind})
}

// objectFile locates the single object a one-save store holds.
func objectFile(t *testing.T, s *Store, kind, key string) string {
	t.Helper()
	path := s.objectPath(kind, keyDigest(kind, key))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("object for (%s, %s) not on disk: %v", kind, key, err)
	}
	return path
}

func TestMissThenSaveThenHit(t *testing.T) {
	s := openTest(t)
	if _, ok := s.Load(testKind, "k1"); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Save(testKind, "k1", "v1")
	v, ok := s.Load(testKind, "k1")
	if !ok || v != "v1" {
		t.Fatalf("Load = %v, %v; want v1, true", v, ok)
	}
	c := s.Counters()
	want := Counters{Hits: 1, Misses: 1, Writes: 1}
	if c != want {
		t.Fatalf("counters = %+v, want %+v", c, want)
	}
	kc := s.KindCounters()
	if kc[testKind] != want {
		t.Fatalf("kind counters = %+v, want %+v", kc[testKind], want)
	}
}

func TestCrossHandleSharing(t *testing.T) {
	// Two handles on the same directory model two processes: a result saved
	// through one is a hit through the other.
	dir := t.TempDir()
	a := Open(dir, stringCodec{kind: testKind})
	b := Open(dir, stringCodec{kind: testKind})
	a.Save(testKind, "shared", "payload")
	v, ok := b.Load(testKind, "shared")
	if !ok || v != "payload" {
		t.Fatalf("second handle Load = %v, %v", v, ok)
	}
}

func TestBypassWithoutCodec(t *testing.T) {
	s := openTest(t)
	if _, ok := s.Load("other/kind", "k"); ok {
		t.Fatal("kind without a codec reported a hit")
	}
	s.Save("other/kind", "k", "v") // silently ignored
	c := s.Counters()
	if c.Bypassed != 1 || c.Writes != 0 || c.Misses != 0 {
		t.Fatalf("counters = %+v, want exactly one bypass", c)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "objects")); !os.IsNotExist(err) {
		t.Fatal("bypassed kind left objects on disk")
	}
}

func TestKeysDoNotCollide(t *testing.T) {
	s := openTest(t)
	s.Save(testKind, "k1", "v1")
	s.Save(testKind, "k2", "v2")
	if v, _ := s.Load(testKind, "k1"); v != "v1" {
		t.Fatalf("k1 = %v", v)
	}
	if v, _ := s.Load(testKind, "k2"); v != "v2" {
		t.Fatalf("k2 = %v", v)
	}
}

// TestTruncatedObjectIsMissAndRepaired pins the corruption contract: a
// truncated object reads as a (corrupt-counted) miss, never an error, and the
// next save repairs it in place.
func TestTruncatedObjectIsMissAndRepaired(t *testing.T) {
	s := openTest(t)
	s.Save(testKind, "k", "value")
	path := objectFile(t, s, testKind, "k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, headerLen - 1, headerLen, len(data) - 1} {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Load(testKind, "k"); ok {
			t.Fatalf("truncation to %d bytes still read as a hit", n)
		}
	}
	if c := s.Counters(); c.Corrupt == 0 {
		t.Fatalf("counters = %+v, want corrupt loads counted", c)
	}
	// The envelope-level truncations (and the flipped-bit case below) must
	// all be recoverable by a rewrite.
	s.Save(testKind, "k", "value")
	if v, ok := s.Load(testKind, "k"); !ok || v != "value" {
		t.Fatalf("after repair: Load = %v, %v", v, ok)
	}
}

func TestFlippedPayloadBitIsCorrupt(t *testing.T) {
	s := openTest(t)
	s.Save(testKind, "k", "value")
	path := objectFile(t, s, testKind, "k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(testKind, "k"); ok {
		t.Fatal("checksum-mismatched object read as a hit")
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("counters = %+v, want Corrupt = 1", c)
	}
}

func TestCodecRejectionIsCorrupt(t *testing.T) {
	s := openTest(t)
	s.Save(testKind, "k", "!poison") // intact envelope, payload the codec refuses
	if _, ok := s.Load(testKind, "k"); ok {
		t.Fatal("codec-rejected object read as a hit")
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("counters = %+v, want Corrupt = 1", c)
	}
}

// TestVersionBumpInvalidates pins the schema-version contract: an object
// written under another version is a plain miss (an expected invalidation,
// not corruption) and is rewritten by the next save.
func TestVersionBumpInvalidates(t *testing.T) {
	s := openTest(t)
	s.Save(testKind, "k", "old")
	path := objectFile(t, s, testKind, "k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the envelope's version field in place; everything else stays
	// intact, exactly what a binary from another schema era leaves behind.
	binary.LittleEndian.PutUint32(data[4:8], Version+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(testKind, "k"); ok {
		t.Fatal("version-mismatched object read as a hit")
	}
	c := s.Counters()
	if c.Misses != 1 || c.Corrupt != 0 {
		t.Fatalf("counters = %+v, want the mismatch counted as a miss, not corruption", c)
	}
	s.Save(testKind, "k", "new")
	if v, ok := s.Load(testKind, "k"); !ok || v != "new" {
		t.Fatalf("after rewrite: Load = %v, %v", v, ok)
	}
}

// TestConcurrentWritersSameKey races many goroutines saving and loading one
// key (run under -race in CI): every load must observe either a miss or the
// one complete value -- never a torn object, never a panic.
func TestConcurrentWritersSameKey(t *testing.T) {
	dir := t.TempDir()
	const writers = 8
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A private handle per goroutine models separate processes
			// sharing the directory.
			s := Open(dir, stringCodec{kind: testKind})
			for i := 0; i < 50; i++ {
				s.Save(testKind, "contended", "stable-value")
				if v, ok := s.Load(testKind, "contended"); ok && v != "stable-value" {
					t.Errorf("torn read: %q", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := Open(dir, stringCodec{kind: testKind})
	if v, ok := s.Load(testKind, "contended"); !ok || v != "stable-value" {
		t.Fatalf("after the race: Load = %v, %v", v, ok)
	}
	// No temp-file debris: every writer either renamed or cleaned up.
	found := 0
	_ = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if ok, _ := filepath.Match(tmpPattern, d.Name()); ok {
				found++
			}
		}
		return nil
	})
	if found != 0 {
		t.Fatalf("%d temp files left behind", found)
	}
}

func TestUnwritableDirDegradesToColdCache(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(dir, 0o755) })
	s := Open(filepath.Join(dir, "store"), stringCodec{kind: testKind})
	s.Save(testKind, "k", "v") // must not panic or error out
	if _, ok := s.Load(testKind, "k"); ok {
		t.Fatal("unwritable store reported a hit")
	}
	if c := s.Counters(); c.WriteErrors != 1 {
		t.Fatalf("counters = %+v, want WriteErrors = 1", c)
	}
}
