package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzDigest is the fixed key digest FuzzStoreDecode validates against; the
// seed corpus is built for it, and mutated inputs that carry any other digest
// exercise the key-mismatch path.
var fuzzDigest = sha256.Sum256([]byte("fuzz/kind\x00fuzz-key"))

// fuzzSeeds returns the committed seed corpus: one intact envelope plus the
// canonical near-misses (each failure branch of decodeEnvelope).
func fuzzSeeds() [][]byte {
	intact := appendEnvelope(nil, fuzzDigest, []byte("payload"))
	empty := appendEnvelope(nil, fuzzDigest, nil)

	badMagic := append([]byte{}, intact...)
	badMagic[0] = 'X'

	wrongVersion := append([]byte{}, intact...)
	wrongVersion[4] = Version + 1

	wrongKey := append([]byte{}, intact...)
	wrongKey[8] ^= 0xff

	badSum := append([]byte{}, intact...)
	badSum[40] ^= 0xff

	badLen := append([]byte{}, intact...)
	badLen[72] ^= 0x01

	return [][]byte{
		intact,
		empty,
		intact[:headerLen-1],            // truncated header
		intact[:len(intact)-2],          // truncated payload
		append([]byte{}, intact[:0]...), // empty input
		badMagic,
		wrongVersion,
		wrongKey,
		badSum,
		badLen,
		append(append([]byte{}, intact...), 0xaa), // trailing byte
	}
}

// FuzzStoreDecode fuzzes the envelope reader with the contract the store
// relies on: decodeEnvelope never panics, and any input it accepts is exactly
// the canonical encoding of its payload -- so a successful decode re-encodes
// byte-identically, and everything else is a miss.
func FuzzStoreDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decodeEnvelope(data, fuzzDigest)
		if err != nil {
			return // a miss; the store recomputes
		}
		if got := appendEnvelope(nil, fuzzDigest, payload); !bytes.Equal(got, data) {
			t.Fatalf("accepted envelope is not canonical:\ninput    %x\nreencode %x", data, got)
		}
	})
}

// TestFuzzSeedCorpusCommitted pins that the committed corpus under
// testdata/fuzz/FuzzStoreDecode stays in sync with fuzzSeeds: every seed is
// on disk (go test runs committed corpus entries even without -fuzz), and
// regenerates the files when MEMDEP_UPDATE_CORPUS=1 is set.
func TestFuzzSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStoreDecode")
	seeds := fuzzSeeds()
	if os.Getenv("MEMDEP_UPDATE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with MEMDEP_UPDATE_CORPUS=1): %v", err)
		}
	}
}
