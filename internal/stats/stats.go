// Package stats provides small helpers for presenting experiment results:
// aligned text tables (in the spirit of the paper's tables) and CSV output.
package stats

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Note is free-form text rendered under the table (provenance, caveats).
	Note string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row.  Rows shorter than the header are padded with empty
// cells; longer rows are accepted as-is.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	for len(row) < len(t.Columns) {
		row = append(row, "")
	}
	t.Rows = append(t.Rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Cell returns the cell at (row, col), or "" if out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}

// widths computes the rendered width of each column.
func (t *Table) widths() []int {
	n := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, c := range t.Columns {
		if len(c) > w[i] {
			w[i] = len(c)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i := 0; i < len(w); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				// Left-align the first (label) column.
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", w[i]-len(cell)))
			} else {
				b.WriteString(strings.Repeat(" ", w[i]-len(cell)))
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Columns) > 0 {
		writeRow(t.Columns)
		total := 0
		for _, x := range w {
			total += x
		}
		b.WriteString(strings.Repeat("-", total+2*(len(w)-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Note != "" {
		b.WriteString(t.Note)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).  Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(strconv.Quote(c))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatCount renders a count the way the paper's tables do: plain digits up
// to 9999, then thousands (K) or millions (M) with two decimals.
func FormatCount(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 100_000:
		return fmt.Sprintf("%.2fK", float64(n)/1e3)
	default:
		return strconv.FormatUint(n, 10)
	}
}

// FormatFloat renders a float with the given number of decimals.
func FormatFloat(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// FormatPercent renders a percentage with two decimals.
func FormatPercent(v float64) string { return fmt.Sprintf("%.2f", v) }

// FormatSpeedup renders a speedup percentage with one decimal and a sign.
func FormatSpeedup(v float64) string { return fmt.Sprintf("%+.1f%%", v) }
