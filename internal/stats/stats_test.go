package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := NewTable("Table X", "bench", "value", "pct")
	tab.AddRow("compress", "123", "4.56")
	tab.AddRow("x", "7", "0.1")
	out := tab.Render()
	if !strings.Contains(out, "Table X") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, underline, header, separator, 2 rows
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "bench") {
		t.Errorf("header line = %q", lines[2])
	}
	// Data rows must be equal length (alignment).
	if len(lines[4]) != len(lines[5]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[4], lines[5])
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only")
	if got := tab.Cell(0, 2); got != "" {
		t.Errorf("padded cell = %q", got)
	}
	if tab.NumRows() != 1 {
		t.Errorf("rows = %d", tab.NumRows())
	}
	if tab.Cell(5, 5) != "" {
		t.Error("out-of-range cell must be empty")
	}
}

func TestTableNote(t *testing.T) {
	tab := NewTable("T", "a")
	tab.Note = "measured, not matched"
	if !strings.Contains(tab.Render(), "measured, not matched") {
		t.Error("note missing from rendering")
	}
}

func TestCSV(t *testing.T) {
	tab := NewTable("T", "bench", "note")
	tab.AddRow("compress", `has,comma`)
	tab.AddRow("sc", "plain")
	csv := tab.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "bench,note" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"has,comma"`) {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[uint64]string{
		0:          "0",
		42:         "42",
		9999:       "9999",
		123456:     "123.46K",
		12_345_678: "12.35M",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatFloat(3.14159, 2); got != "3.14" {
		t.Errorf("FormatFloat = %q", got)
	}
	if got := FormatPercent(12.345); got != "12.35" {
		t.Errorf("FormatPercent = %q", got)
	}
	if got := FormatSpeedup(7.25); got != "+7.2%" && got != "+7.3%" {
		t.Errorf("FormatSpeedup = %q", got)
	}
	if got := FormatSpeedup(-3.5); !strings.HasPrefix(got, "-3.5") {
		t.Errorf("FormatSpeedup(-3.5) = %q", got)
	}
}

// Property: rendering never panics and every data row appears in the output.
func TestRenderContainsAllCells(t *testing.T) {
	f := func(rows [][3]string) bool {
		tab := NewTable("T", "a", "b", "c")
		for _, r := range rows {
			cells := []string{sanitize(r[0]), sanitize(r[1]), sanitize(r[2])}
			tab.AddRow(cells...)
		}
		out := tab.Render()
		for _, r := range tab.Rows {
			for _, c := range r {
				if c != "" && !strings.Contains(out, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	s = strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, s)
	if len(s) > 12 {
		s = s[:12]
	}
	return s
}
