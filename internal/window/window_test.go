package window

import (
	"testing"
	"testing/quick"

	"memdep/internal/isa"
	"memdep/internal/memdep"
	"memdep/internal/program"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

// synthInst builds a minimal DynInst for driving the analyzer directly.
func synthInst(seq uint64, op isa.Op, pc, addr uint64) trace.DynInst {
	return trace.DynInst{Seq: seq, Op: op, PC: pc, Addr: addr}
}

func TestAnalyzerCountsDependenceWithinWindow(t *testing.T) {
	a := NewAnalyzer(Config{WindowSizes: []int{4, 16}, DDCSizes: []int{32}})
	// store @pc=0x10 to addr A at seq 0; load @pc=0x20 from A at seq 5.
	a.Observe(synthInst(0, isa.SW, 0x10, 0xA0))
	for s := uint64(1); s < 5; s++ {
		a.Observe(synthInst(s, isa.ADD, 0x14, 0))
	}
	a.Observe(synthInst(5, isa.LW, 0x20, 0xA0))

	res := a.Results()
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	// Distance is 5: outside a window of 4, inside a window of 16.
	if res[0].WindowSize != 4 || res[0].Misspeculations != 0 {
		t.Errorf("window 4: %+v", res[0])
	}
	if res[1].WindowSize != 16 || res[1].Misspeculations != 1 {
		t.Errorf("window 16: %+v", res[1])
	}
	if res[1].StaticPairs != 1 || res[1].PairsForCoverage != 1 {
		t.Errorf("window 16 pair stats: %+v", res[1])
	}
	if res[1].Loads != 1 {
		t.Errorf("loads = %d, want 1", res[1].Loads)
	}
}

func TestAnalyzerUsesMostRecentStore(t *testing.T) {
	a := NewAnalyzer(Config{WindowSizes: []int{64}, DDCSizes: []int{32}})
	a.Observe(synthInst(0, isa.SW, 0x10, 0xA0)) // old store
	a.Observe(synthInst(1, isa.SW, 0x18, 0xA0)) // most recent store to A
	a.Observe(synthInst(2, isa.LW, 0x20, 0xA0))
	res := a.Results()[0]
	if res.Misspeculations != 1 {
		t.Fatalf("misspeculations = %d, want 1", res.Misspeculations)
	}
	pair := memdep.PairKey{LoadPC: 0x20, StorePC: 0x18}
	if res.PairCounts[pair] != 1 {
		t.Errorf("dependence must be attributed to the most recent store: %v", res.PairCounts)
	}
}

func TestAnalyzerLoadWithNoPriorStore(t *testing.T) {
	a := NewAnalyzer(Config{WindowSizes: []int{64}})
	a.Observe(synthInst(0, isa.LW, 0x20, 0xA0))
	res := a.Results()[0]
	if res.Misspeculations != 0 || res.Loads != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestAnalyzerDifferentAddressesIndependent(t *testing.T) {
	a := NewAnalyzer(Config{WindowSizes: []int{64}})
	a.Observe(synthInst(0, isa.SW, 0x10, 0xA0))
	a.Observe(synthInst(1, isa.LW, 0x20, 0xB0)) // different address
	res := a.Results()[0]
	if res.Misspeculations != 0 {
		t.Errorf("load from unrelated address must not be a dependence: %+v", res)
	}
}

func TestMisspecRate(t *testing.T) {
	r := Result{Loads: 200, Misspeculations: 50}
	if got := r.MisspecRate(); got != 0.25 {
		t.Errorf("rate = %v, want 0.25", got)
	}
	if (Result{}).MisspecRate() != 0 {
		t.Error("zero loads must give rate 0")
	}
}

func TestPairsForCoverage(t *testing.T) {
	pairs := map[memdep.PairKey]uint64{
		{LoadPC: 1}: 900,
		{LoadPC: 2}: 90,
		{LoadPC: 3}: 9,
		{LoadPC: 4}: 1,
	}
	// 99.9% of 1000 = 999: needs the top three pairs (900+90+9 = 999).
	if got := pairsForCoverage(pairs, 1000, 0.999); got != 3 {
		t.Errorf("pairsForCoverage = %d, want 3", got)
	}
	// 50% needs only the top pair.
	if got := pairsForCoverage(pairs, 1000, 0.5); got != 1 {
		t.Errorf("pairsForCoverage(0.5) = %d, want 1", got)
	}
	if got := pairsForCoverage(nil, 0, 0.999); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	a := NewAnalyzer(Config{})
	res := a.Results()
	if len(res) != len(DefaultWindowSizes()) {
		t.Fatalf("results = %d, want %d", len(res), len(DefaultWindowSizes()))
	}
	for i, r := range res {
		if r.WindowSize != DefaultWindowSizes()[i] {
			t.Errorf("window %d = %d", i, r.WindowSize)
		}
		if len(r.DDCMissRate) != len(DefaultDDCSizes()) {
			t.Errorf("DDC sizes = %d", len(r.DDCMissRate))
		}
	}
}

// Property: mis-speculation counts are monotonically non-decreasing in the
// window size (a dependence visible in a small window is visible in every
// larger window).
func TestMisspecsMonotoneInWindowSize(t *testing.T) {
	f := func(ops []struct {
		Store bool
		PC    uint8
		Addr  uint8
	}) bool {
		a := NewAnalyzer(Config{WindowSizes: []int{4, 16, 64, 256}, DDCSizes: []int{16}})
		for i, op := range ops {
			opcode := isa.LW
			if op.Store {
				opcode = isa.SW
			}
			a.Observe(synthInst(uint64(i), opcode, uint64(op.PC)*4, uint64(op.Addr)*8))
		}
		res := a.Results()
		for i := 1; i < len(res); i++ {
			if res[i].Misspeculations < res[i-1].Misspeculations {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the analyzer agrees with a brute-force reference that scans the
// previous n-1 instructions for each load.
func TestAnalyzerMatchesBruteForce(t *testing.T) {
	f := func(ops []struct {
		Store bool
		PC    uint8
		Addr  uint8
	}) bool {
		const ws = 8
		a := NewAnalyzer(Config{WindowSizes: []int{ws}, DDCSizes: []int{16}})
		type rec struct {
			isStore bool
			pc      uint64
			addr    uint64
		}
		var stream []rec
		for i, op := range ops {
			opcode := isa.LW
			if op.Store {
				opcode = isa.SW
			}
			pc := uint64(op.PC) * 4
			addr := uint64(op.Addr%16) * 8
			a.Observe(synthInst(uint64(i), opcode, pc, addr))
			stream = append(stream, rec{isStore: op.Store, pc: pc, addr: addr})
		}
		// Brute force: for each load, find the most recent prior store to the
		// same address; count a mis-speculation if it is within ws.
		var want uint64
		for i, r := range stream {
			if r.isStore {
				continue
			}
			for j := i - 1; j >= 0; j-- {
				if stream[j].isStore && stream[j].addr == r.addr {
					if uint64(i-j) < ws {
						want++
					}
					break
				}
			}
		}
		return a.Results()[0].Misspeculations == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAnalyzeWorkloadShapes checks the paper's qualitative claims on a real
// workload: mis-speculations grow sharply with window size, few static pairs
// dominate, and moderate DDCs capture most of them.
func TestAnalyzeWorkloadShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping workload analysis in -short mode")
	}
	w := workload.MustGet("compress")
	results, err := Analyze(w.Build(1), Config{
		WindowSizes: []int{8, 32, 512},
		DDCSizes:    []int{32, 512},
		Trace:       trace.Config{MaxInstructions: 150_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	w8, w32, w512 := results[0], results[1], results[2]
	if w32.Misspeculations <= w8.Misspeculations {
		t.Errorf("mis-speculations must grow with window size: ws8=%d ws32=%d",
			w8.Misspeculations, w32.Misspeculations)
	}
	if w512.Misspeculations < w32.Misspeculations {
		t.Errorf("mis-speculations must not shrink: ws32=%d ws512=%d",
			w32.Misspeculations, w512.Misspeculations)
	}
	if w512.Misspeculations == 0 {
		t.Fatal("expected mis-speculations for compress")
	}
	// Few static pairs cover 99.9% of mis-speculations.
	if w512.PairsForCoverage > 200 {
		t.Errorf("99.9%% coverage needs %d pairs, expected a small number", w512.PairsForCoverage)
	}
	// A 512-entry DDC captures (nearly) all of them.
	if w512.DDCMissRate[512] > 10 {
		t.Errorf("DDC-512 miss rate %.2f%%, expected < 10%%", w512.DDCMissRate[512])
	}
	// Larger DDCs never do worse.
	if w512.DDCMissRate[512] > w512.DDCMissRate[32] {
		t.Errorf("DDC miss rate must not increase with capacity: 32=%v 512=%v",
			w512.DDCMissRate[32], w512.DDCMissRate[512])
	}
}

// TestAnalyzeProgramError checks error propagation from the functional run.
func TestAnalyzeProgramError(t *testing.T) {
	// A program whose only instruction jumps to itself never halts; bound it.
	b := program.NewBuilder("spin")
	b.Label("top")
	b.Jump("top")
	p := b.MustBuild()
	res, err := Analyze(p, Config{Trace: trace.Config{MaxInstructions: 1000}})
	if err != nil {
		t.Fatalf("bounded analysis must succeed: %v", err)
	}
	if res[0].Loads != 0 {
		t.Error("spin program has no loads")
	}
}
