package window

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/program"
)

// AnalyzeKind is the engine job kind for the unrealistic OOO window analysis.
const AnalyzeKind = "window/analyze"

// AnalyzeJob is the engine spec for running the window analyzer over a
// program.  Program must resolve to a *program.Program (typically a
// workload.BuildJob).  The job resolves to a []window.Result, one per window
// size in increasing order.
type AnalyzeJob struct {
	Program engine.Spec
	Config  Config
}

// JobKind implements engine.Spec.
func (AnalyzeJob) JobKind() string { return AnalyzeKind }

// CacheKey implements engine.Spec.
func (j AnalyzeJob) CacheKey() string {
	cfg := j.Config.withDefaults()
	return fmt.Sprintf("%s|ws=%v,ddc=%v,max=%d,tasklen=%d",
		engine.Key(j.Program), cfg.WindowSizes, cfg.DDCSizes,
		cfg.Trace.MaxInstructions, cfg.Trace.MaxTaskLen)
}

// analyzeSimulator executes AnalyzeJob specs.
type analyzeSimulator struct{}

// AnalyzeSimulator returns the engine simulator for the window/analyze kind.
func AnalyzeSimulator() engine.Simulator { return analyzeSimulator{} }

func (analyzeSimulator) JobKind() string { return AnalyzeKind }

func (analyzeSimulator) Simulate(ctx context.Context, eng *engine.Engine, spec engine.Spec) (any, error) {
	job, ok := spec.(AnalyzeJob)
	if !ok {
		return nil, fmt.Errorf("window: spec %T is not an AnalyzeJob", spec)
	}
	p, err := engine.Resolve[*program.Program](ctx, eng, job.Program)
	if err != nil {
		return nil, err
	}
	return Analyze(p, job.Config)
}
