// Package window implements the "unrealistic" out-of-order execution model of
// section 5 of the paper: a processor able to establish a perfect, continuous
// instruction window of a given size, in which every load is mis-speculated
// whenever a store it depends on appears fewer than n instructions earlier in
// the sequential order.  The model is the worst case with respect to the
// number of mis-speculations and is used to characterise the dynamic
// behaviour of memory dependences (Tables 3, 4 and 5).
package window

import (
	"fmt"
	"sort"

	"memdep/internal/memdep"
	"memdep/internal/program"
	"memdep/internal/trace"
)

// DefaultWindowSizes are the window sizes of Tables 3-5.
func DefaultWindowSizes() []int { return []int{8, 16, 32, 64, 128, 256, 512} }

// DefaultDDCSizes are the data dependence cache sizes of Table 5.
func DefaultDDCSizes() []int { return []int{32, 128, 512} }

// Coverage is the fraction of dynamic mis-speculations that Table 4 requires
// the counted static dependences to cover (99.9%).
const Coverage = 0.999

// Result holds the dependence statistics observed for one window size.
type Result struct {
	// WindowSize is the instruction window size n.
	WindowSize int
	// Loads is the number of committed loads in the analysed stream.
	Loads uint64
	// Misspeculations is the number of loads whose producing store lies
	// within the window (every such load is counted as mis-speculated under
	// the worst-case model).
	Misspeculations uint64
	// StaticPairs is the number of distinct static store→load pairs that
	// produced at least one mis-speculation.
	StaticPairs int
	// PairsForCoverage is the number of static pairs, taken in decreasing
	// order of frequency, needed to cover Coverage (99.9%) of all
	// mis-speculations (Table 4).
	PairsForCoverage int
	// DDCMissRate maps DDC size to the percentage of mis-speculations whose
	// pair was not found in a DDC of that size (Table 5), in [0,100].
	DDCMissRate map[int]float64
	// PairCounts holds the per-pair mis-speculation counts (for further
	// analysis and tests).
	PairCounts map[memdep.PairKey]uint64
}

// MisspecRate returns mis-speculations per committed load.
func (r Result) MisspecRate() float64 {
	if r.Loads == 0 {
		return 0
	}
	return float64(r.Misspeculations) / float64(r.Loads)
}

// Config controls an analysis run.
type Config struct {
	// WindowSizes lists the window sizes to evaluate (default
	// DefaultWindowSizes).
	WindowSizes []int
	// DDCSizes lists the data dependence cache sizes to evaluate per window
	// (default DefaultDDCSizes).
	DDCSizes []int
	// Trace configures the underlying functional run.
	Trace trace.Config
}

func (c Config) withDefaults() Config {
	if len(c.WindowSizes) == 0 {
		c.WindowSizes = DefaultWindowSizes()
	}
	if len(c.DDCSizes) == 0 {
		c.DDCSizes = DefaultDDCSizes()
	}
	return c
}

// perWindow is the per-window-size accumulation state.
type perWindow struct {
	size     int
	misspecs uint64
	pairs    map[memdep.PairKey]uint64
	ddcs     []*memdep.DDC
}

// Analyzer accumulates dependence statistics over a committed instruction
// stream.  Feed it with Observe (typically from trace.Run) and harvest with
// Results.
type Analyzer struct {
	cfg     Config
	windows []*perWindow
	loads   uint64

	// lastStore maps a data address to the most recent store that wrote it.
	lastStore map[uint64]storeRecord
}

type storeRecord struct {
	seq uint64
	pc  uint64
}

// NewAnalyzer creates an analyzer for the given configuration.
func NewAnalyzer(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	a := &Analyzer{
		cfg:       cfg,
		lastStore: make(map[uint64]storeRecord),
	}
	sizes := append([]int(nil), cfg.WindowSizes...)
	sort.Ints(sizes)
	for _, ws := range sizes {
		pw := &perWindow{
			size:  ws,
			pairs: make(map[memdep.PairKey]uint64),
		}
		for _, ds := range cfg.DDCSizes {
			pw.ddcs = append(pw.ddcs, memdep.NewDDC(ds))
		}
		a.windows = append(a.windows, pw)
	}
	return a
}

// Observe processes one committed dynamic instruction.
func (a *Analyzer) Observe(d trace.DynInst) {
	switch {
	case d.IsStore():
		a.lastStore[d.Addr] = storeRecord{seq: d.Seq, pc: d.PC}
	case d.IsLoad():
		a.loads++
		st, ok := a.lastStore[d.Addr]
		if !ok {
			return
		}
		dist := d.Seq - st.seq
		pair := memdep.PairKey{LoadPC: d.PC, StorePC: st.pc}
		for _, pw := range a.windows {
			if dist < uint64(pw.size) {
				pw.misspecs++
				pw.pairs[pair]++
				for _, ddc := range pw.ddcs {
					ddc.Access(pair)
				}
			}
		}
	}
}

// Results returns the accumulated statistics, one Result per window size in
// increasing order.
func (a *Analyzer) Results() []Result {
	out := make([]Result, 0, len(a.windows))
	for _, pw := range a.windows {
		r := Result{
			WindowSize:       pw.size,
			Loads:            a.loads,
			Misspeculations:  pw.misspecs,
			StaticPairs:      len(pw.pairs),
			PairsForCoverage: pairsForCoverage(pw.pairs, pw.misspecs, Coverage),
			DDCMissRate:      make(map[int]float64, len(pw.ddcs)),
			PairCounts:       pw.pairs,
		}
		for _, ddc := range pw.ddcs {
			r.DDCMissRate[ddc.Capacity()] = ddc.MissRate() * 100
		}
		out = append(out, r)
	}
	return out
}

// pairsForCoverage returns how many static pairs, in decreasing frequency
// order, are needed to account for the given fraction of all mis-speculations.
func pairsForCoverage(pairs map[memdep.PairKey]uint64, total uint64, coverage float64) int {
	if total == 0 {
		return 0
	}
	counts := make([]uint64, 0, len(pairs))
	for _, c := range pairs {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	need := uint64(float64(total) * coverage)
	var acc uint64
	for i, c := range counts {
		acc += c
		if acc >= need {
			return i + 1
		}
	}
	return len(counts)
}

// Analyze runs the program under the functional simulator and returns the
// dependence statistics for every configured window size.
func Analyze(p *program.Program, cfg Config) ([]Result, error) {
	a := NewAnalyzer(cfg)
	_, err := trace.Run(p, cfg.Trace, func(d trace.DynInst) bool {
		a.Observe(d)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("window: analysis of %q failed: %w", p.Name, err)
	}
	return a.Results(), nil
}
