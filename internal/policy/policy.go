// Package policy enumerates the data dependence speculation policies compared
// in section 5.4 and 5.5 of the paper.
package policy

import (
	"fmt"
	"strings"

	"memdep/internal/memdep"
)

// Kind identifies a data dependence speculation policy.
type Kind int

const (
	// Never performs no data dependence speculation: a load waits until all
	// stores of all earlier in-flight tasks have executed.
	Never Kind = iota
	// Always speculates blindly: every load issues as soon as its operands
	// are ready; violations are detected afterwards and squash the offending
	// task (the policy of the modern processors cited by the paper).
	Always
	// Wait is selective speculation with perfect dependence prediction: loads
	// that have a true dependence on an in-flight store are not speculated
	// and wait for all earlier stores to resolve; independent loads issue
	// freely.  No explicit synchronization is performed.
	Wait
	// PerfectSync is ideal speculation/synchronization: dependent loads wait
	// exactly for the store that produces their value; independent loads
	// issue freely; no mis-speculations occur.
	PerfectSync
	// Sync uses the MDPT/MDST mechanism with the baseline up/down counter
	// predictor.
	Sync
	// ESync uses the MDPT/MDST mechanism with the enhanced predictor that
	// also records the producing task's PC.
	ESync

	numKinds
)

// All returns every policy in presentation order.
func All() []Kind {
	return []Kind{Never, Always, Wait, PerfectSync, Sync, ESync}
}

// OraclePolicies returns the policies of Figure 5 (no hardware predictor).
func OraclePolicies() []Kind { return []Kind{Never, Always, Wait, PerfectSync} }

// MechanismPolicies returns the policies of Figure 6 (the proposed mechanism
// and its ideal bound).
func MechanismPolicies() []Kind { return []Kind{Sync, ESync, PerfectSync} }

// String implements fmt.Stringer using the paper's names.
func (k Kind) String() string {
	switch k {
	case Never:
		return "NEVER"
	case Always:
		return "ALWAYS"
	case Wait:
		return "WAIT"
	case PerfectSync:
		return "PSYNC"
	case Sync:
		return "SYNC"
	case ESync:
		return "ESYNC"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Valid reports whether k names a defined policy.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Parse converts a policy name back to its Kind.  It accepts the canonical
// paper names printed by String (case-insensitively) plus the long-form
// aliases some tools and documents use for the perfect-synchronization
// oracle: "PERFECT-SYNC" and "PERFECTSYNC" parse to the same Kind as
// "PSYNC", and String always canonicalizes back to the paper's spelling.
func Parse(name string) (Kind, error) {
	n := strings.ToUpper(strings.TrimSpace(name))
	for _, k := range All() {
		if k.String() == n {
			return k, nil
		}
	}
	switch n {
	case "PERFECT-SYNC", "PERFECTSYNC":
		return PerfectSync, nil
	}
	return 0, fmt.Errorf("policy: unknown policy %q", name)
}

// MarshalText implements encoding.TextMarshaler using the paper's spelling,
// so Kind fields encode as "ESYNC" etc. in JSON.
func (k Kind) MarshalText() ([]byte, error) {
	if !k.Valid() {
		return nil, fmt.Errorf("policy: cannot marshal invalid policy %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via Parse, so the JSON
// encoding round-trips (case-insensitively, aliases included).
func (k *Kind) UnmarshalText(text []byte) error {
	v, err := Parse(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Speculates reports whether the policy ever lets a load bypass unresolved
// earlier stores.
func (k Kind) Speculates() bool { return k != Never }

// UsesOracle reports whether the policy relies on perfect knowledge of the
// program's true dependences (available only to the simulator, not to
// realizable hardware).
func (k Kind) UsesOracle() bool { return k == Wait || k == PerfectSync }

// UsesPredictor reports whether the policy drives the MDPT/MDST hardware.
func (k Kind) UsesPredictor() bool { return k == Sync || k == ESync }

// PredictorKind returns the memdep predictor used by the policy; ok is false
// for policies that do not use the prediction hardware.
func (k Kind) PredictorKind() (memdep.PredictorKind, bool) {
	switch k {
	case Sync:
		return memdep.PredictSync, true
	case ESync:
		return memdep.PredictESync, true
	default:
		return 0, false
	}
}

// Description returns a one-line description suitable for documentation and
// tool output.
func (k Kind) Description() string {
	switch k {
	case Never:
		return "no data dependence speculation: loads wait for all prior in-flight stores"
	case Always:
		return "blind speculation: loads never wait; violations squash the offending task"
	case Wait:
		return "selective speculation (perfect prediction): dependent loads wait for all prior stores"
	case PerfectSync:
		return "perfect prediction and synchronization: dependent loads wait only for their producer"
	case Sync:
		return "MDPT/MDST mechanism with up/down counter predictor"
	case ESync:
		return "MDPT/MDST mechanism with counter + producing-task PC predictor"
	default:
		return "unknown policy"
	}
}
