package policy

import (
	"testing"

	"memdep/internal/memdep"
)

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, k := range All() {
		got, err := Parse(k.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("Parse(String(%v)) = %v", k, got)
		}
	}
	if _, err := Parse("BOGUS"); err == nil {
		t.Error("unknown policy must fail to parse")
	}
}

// TestParseAliases pins the accepted alternative spellings: the long-form
// PERFECT-SYNC aliases parse to the same Kind as the paper's PSYNC, parsing
// is case-insensitive, and String canonicalizes every alias back to the
// paper's name (so alias → Parse → String → Parse round-trips).
func TestParseAliases(t *testing.T) {
	aliases := map[string]Kind{
		"PSYNC":        PerfectSync,
		"PERFECT-SYNC": PerfectSync,
		"PERFECTSYNC":  PerfectSync,
		"psync":        PerfectSync,
		"perfect-sync": PerfectSync,
		" esync ":      ESync,
		"sync":         Sync,
		"always":       Always,
	}
	for name, want := range aliases {
		got, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", name, got, want)
		}
		// Round-trip through the canonical spelling.
		canon, err := Parse(got.String())
		if err != nil || canon != want {
			t.Errorf("Parse(String(%v)) = %v, %v", want, canon, err)
		}
	}
	if PerfectSync.String() != "PSYNC" {
		t.Errorf("canonical spelling = %q, want the paper's PSYNC", PerfectSync.String())
	}
}

func TestNamesMatchPaper(t *testing.T) {
	want := map[Kind]string{
		Never:       "NEVER",
		Always:      "ALWAYS",
		Wait:        "WAIT",
		PerfectSync: "PSYNC",
		Sync:        "SYNC",
		ESync:       "ESYNC",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}

func TestAllContainsSixPolicies(t *testing.T) {
	if len(All()) != 6 {
		t.Errorf("All() = %d policies, want 6", len(All()))
	}
	for _, k := range All() {
		if !k.Valid() {
			t.Errorf("%v must be valid", k)
		}
		if k.Description() == "" || k.Description() == "unknown policy" {
			t.Errorf("%v has no description", k)
		}
	}
	if Kind(99).Valid() {
		t.Error("out-of-range kind must be invalid")
	}
}

func TestOracleAndMechanismSubsets(t *testing.T) {
	if len(OraclePolicies()) != 4 {
		t.Errorf("oracle policies = %v", OraclePolicies())
	}
	if len(MechanismPolicies()) != 3 {
		t.Errorf("mechanism policies = %v", MechanismPolicies())
	}
	for _, k := range OraclePolicies() {
		if k.UsesPredictor() {
			t.Errorf("%v must not use the predictor", k)
		}
	}
}

func TestClassificationPredicates(t *testing.T) {
	if Never.Speculates() {
		t.Error("NEVER must not speculate")
	}
	if !Always.Speculates() || !Sync.Speculates() {
		t.Error("ALWAYS and SYNC speculate")
	}
	if !Wait.UsesOracle() || !PerfectSync.UsesOracle() {
		t.Error("WAIT and PSYNC are oracle policies")
	}
	if Always.UsesOracle() || Sync.UsesOracle() {
		t.Error("ALWAYS and SYNC are not oracle policies")
	}
	if !Sync.UsesPredictor() || !ESync.UsesPredictor() {
		t.Error("SYNC and ESYNC use the predictor")
	}
	if Always.UsesPredictor() || PerfectSync.UsesPredictor() {
		t.Error("ALWAYS and PSYNC do not use the predictor")
	}
}

func TestPredictorKindMapping(t *testing.T) {
	if pk, ok := Sync.PredictorKind(); !ok || pk != memdep.PredictSync {
		t.Errorf("Sync predictor = %v/%v", pk, ok)
	}
	if pk, ok := ESync.PredictorKind(); !ok || pk != memdep.PredictESync {
		t.Errorf("ESync predictor = %v/%v", pk, ok)
	}
	if _, ok := Always.PredictorKind(); ok {
		t.Error("Always must not map to a predictor")
	}
}
