package arb

import (
	"reflect"
	"testing"
)

// xorshift64 with a fixed seed keeps the drive deterministic.
type resetRand uint64

func (r *resetRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = resetRand(x)
	return x
}

// TestResetEquivalence drives the ARB through loads, stores, commits and
// squashes, Resets it and drives it again: the second drive must observably
// match a fresh instance.  A bank entry, touched-address list or free-list
// record surviving Reset diverges the digests.
func TestResetEquivalence(t *testing.T) {
	drive := func(a *ARB) any {
		rnd := resetRand(7)
		var digest []any
		for i := 0; i < 400; i++ {
			addr := (rnd.next() % 64) * 8
			task := rnd.next() % 6
			switch i % 5 {
			case 0, 1:
				digest = append(digest, a.Load(addr, task, 0x1000+addr))
			case 2:
				v, violated, ok := a.Store(addr, task)
				digest = append(digest, v, violated, ok)
			case 3:
				a.CommitTask(task)
			case 4:
				a.SquashTask(task)
			}
		}
		return append(digest, a.Entries(), a.Stats())
	}

	cfg := Config{Banks: 2, EntriesPerBank: 8, BlockSize: 64}
	reused := New(cfg)
	drive(reused)
	reused.Reset()
	got := drive(reused)
	want := drive(New(cfg))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("drive after Reset diverges from fresh instance:\nreset: %+v\nfresh: %+v", got, want)
	}
}
