package arb

import (
	"testing"
	"testing/quick"
)

func newTestARB() *ARB {
	return New(Config{Banks: 2, EntriesPerBank: 8, BlockSize: 64})
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(4)
	if c.Banks != 8 || c.EntriesPerBank != 32 || c.BlockSize != 64 {
		t.Errorf("config = %+v", c)
	}
	if DefaultConfig(0).Banks != 2 {
		t.Error("units must clamp to 1")
	}
}

func TestStoreAfterPrematureLoadIsViolation(t *testing.T) {
	a := newTestARB()
	// Task 5 (younger) loads address A before task 4 (older) stores it.
	if ok := a.Load(0x100, 5, 0x40); !ok {
		t.Fatal("load must be accepted")
	}
	v, violated, ok := a.Store(0x100, 4)
	if !ok {
		t.Fatal("store must be accepted")
	}
	if !violated {
		t.Fatal("expected a violation")
	}
	if v.LoadTask != 5 || v.StoreTask != 4 || v.LoadPC != 0x40 || v.Addr != 0x100 {
		t.Errorf("violation = %+v", v)
	}
	if a.Stats().Violations != 1 {
		t.Errorf("violations = %d", a.Stats().Violations)
	}
}

func TestStoreBeforeLoadNoViolation(t *testing.T) {
	a := newTestARB()
	if _, violated, _ := a.Store(0x100, 4); violated {
		t.Fatal("store with no younger load must not violate")
	}
	// The younger load now happens after the store: no violation to detect
	// (the timing simulator would have forwarded or re-read the value).
	if ok := a.Load(0x100, 5, 0x40); !ok {
		t.Fatal("load must be accepted")
	}
	if a.Stats().Violations != 0 {
		t.Error("no violation expected")
	}
}

func TestOlderLoadNotAViolation(t *testing.T) {
	a := newTestARB()
	// Task 3 (older than the store's task 4) loads first; a store by task 4
	// must not squash an older task.
	a.Load(0x100, 3, 0x40)
	if v, violated, _ := a.Store(0x100, 4); violated {
		t.Errorf("older load must not be reported: %+v", v)
	}
}

func TestLoadCoveredByOwnStoreIsNotExposed(t *testing.T) {
	a := newTestARB()
	// Task 5 stores to A and then loads it: the load reads its own version
	// and must not be vulnerable to an older store.
	a.Store(0x100, 5)
	a.Load(0x100, 5, 0x40)
	if v, violated, _ := a.Store(0x100, 4); violated {
		t.Errorf("load covered by the task's own store must be safe: %+v", v)
	}
}

func TestInterveningStoreInsulatesYoungerLoads(t *testing.T) {
	a := newTestARB()
	// Task 5 stores to A; task 6 loads A (reads task 5's version).
	a.Store(0x100, 5)
	a.Load(0x100, 6, 0x60)
	// Task 4 now stores A.  Task 6 read task 5's version, which is still the
	// closest preceding store, so no violation.
	if v, violated, _ := a.Store(0x100, 4); violated {
		t.Errorf("younger load insulated by intervening store must be safe: %+v", v)
	}
}

func TestViolationReportsOldestOffendingTask(t *testing.T) {
	a := newTestARB()
	a.Load(0x100, 5, 0x50)
	a.Load(0x100, 6, 0x60)
	v, violated, _ := a.Store(0x100, 4)
	if !violated || v.LoadTask != 5 {
		t.Errorf("violation must name the oldest offending task: %+v", v)
	}
}

func TestDifferentAddressesDoNotConflict(t *testing.T) {
	a := newTestARB()
	a.Load(0x100, 5, 0x50)
	if v, violated, _ := a.Store(0x180, 4); violated {
		t.Errorf("different address must not conflict: %+v", v)
	}
}

func TestCommitTaskClearsState(t *testing.T) {
	a := newTestARB()
	a.Load(0x100, 5, 0x50)
	a.CommitTask(5)
	if v, violated, _ := a.Store(0x100, 4); violated {
		t.Errorf("committed task must not be reported: %+v", v)
	}
	if a.Entries() != 1 {
		// The store itself re-allocated the entry.
		t.Errorf("entries = %d, want 1", a.Entries())
	}
}

func TestSquashTaskClearsState(t *testing.T) {
	a := newTestARB()
	a.Load(0x100, 5, 0x50)
	a.SquashTask(5)
	if v, violated, _ := a.Store(0x100, 4); violated {
		t.Errorf("squashed task must not be reported: %+v", v)
	}
}

func TestBankCapacityStalls(t *testing.T) {
	a := New(Config{Banks: 1, EntriesPerBank: 2, BlockSize: 64})
	if ok := a.Load(0x000, 1, 0x10); !ok {
		t.Fatal("first entry must fit")
	}
	if ok := a.Load(0x040, 1, 0x14); !ok {
		t.Fatal("second entry must fit")
	}
	if ok := a.Load(0x080, 1, 0x18); ok {
		t.Fatal("third address must stall (bank full)")
	}
	if a.Stats().StallsFull != 1 {
		t.Errorf("stalls = %d", a.Stats().StallsFull)
	}
	// Committing the task frees the entries and the access can proceed.
	a.CommitTask(1)
	if ok := a.Load(0x080, 1, 0x18); !ok {
		t.Fatal("access must succeed after space frees up")
	}
}

func TestExistingAddressDoesNotStallWhenFull(t *testing.T) {
	a := New(Config{Banks: 1, EntriesPerBank: 1, BlockSize: 64})
	a.Load(0x000, 1, 0x10)
	// The same address is already tracked: accesses to it must not stall even
	// though the bank has no free entries.
	if ok := a.Load(0x000, 2, 0x20); !ok {
		t.Fatal("tracked address must not stall")
	}
	if _, _, ok := a.Store(0x000, 1); !ok {
		t.Fatal("tracked address store must not stall")
	}
}

func TestStatsAndReset(t *testing.T) {
	a := newTestARB()
	a.Load(0x100, 5, 0x50)
	a.Store(0x100, 4)
	st := a.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v", st)
	}
	a.Reset()
	if a.Entries() != 0 || a.Stats() != (Stats{}) {
		t.Error("reset must clear everything")
	}
}

// Property: the ARB detects exactly the violations a brute-force oracle finds
// for a random sequence of accesses by two tasks (older task 1, younger task
// 2) to a single address, where the older task's stores arrive after the
// younger task's loads.
func TestARBMatchesOracleTwoTasks(t *testing.T) {
	type op struct {
		Older bool // task 1 if true, else task 2
		Store bool
	}
	f := func(ops []op) bool {
		a := New(Config{Banks: 1, EntriesPerBank: 8, BlockSize: 64})
		const addr = 0x40
		youngerExposedLoad := false
		youngerStored := false
		wantViolations := 0
		gotViolations := 0
		for _, o := range ops {
			task := uint64(2)
			if o.Older {
				task = 1
			}
			if o.Store {
				_, violated, ok := a.Store(addr, task)
				if !ok {
					return false
				}
				if o.Older {
					// Oracle: violation iff the younger task has an exposed
					// load and has not produced its own version first.
					if youngerExposedLoad && !youngerStoredBeforeLoad(youngerStored, youngerExposedLoad) {
						wantViolations++
					}
					if violated {
						gotViolations++
					}
				} else {
					youngerStored = true
					if violated {
						return false // a younger store can never violate here
					}
				}
			} else {
				if !a.Load(addr, task, 0x99) {
					return false
				}
				if !o.Older && !youngerStored {
					youngerExposedLoad = true
				}
			}
		}
		return wantViolations == gotViolations
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// youngerStoredBeforeLoad mirrors the exposure rule: once the younger task
// has an exposed load recorded, later stores by the younger task do not
// retroactively cover it.
func youngerStoredBeforeLoad(stored, exposed bool) bool {
	_ = stored
	return !exposed
}

// Property: entries never exceed banks*entriesPerBank.
func TestARBCapacityInvariant(t *testing.T) {
	f := func(addrs []uint8, tasks []uint8) bool {
		a := New(Config{Banks: 2, EntriesPerBank: 4, BlockSize: 64})
		for i, ad := range addrs {
			task := uint64(1)
			if i < len(tasks) {
				task = uint64(tasks[i]%4) + 1
			}
			a.Load(uint64(ad)*16, task, 0)
			if a.Entries() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
