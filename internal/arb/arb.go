// Package arb implements an Address Resolution Buffer in the style of
// Franklin and Sohi (reference [8] of the paper), the hardware that a
// Multiscalar processor uses to detect memory dependence mis-speculations
// among concurrently executing tasks.
//
// The ARB tracks, per data address, which in-flight tasks have loaded or
// stored the address and in what order within each task.  When a store from
// an older task executes, any younger task that has already performed an
// "exposed" load of the same address (a load not preceded, within its own
// task, by a store to that address) has consumed a stale value: a
// mis-speculation is signalled and the younger task (and its successors) must
// be squashed.
//
// The buffer is organised in banks indexed by block address; each bank has a
// bounded number of address entries, mirroring the 32-entry-per-bank
// configuration of section 5.2.  When a bank is full, new addresses cannot be
// tracked and the requesting memory operation must stall until space frees up
// (entries are reclaimed when tasks commit or are squashed).
//
// Because only the processor's in-flight window (a handful of tasks) can
// touch an entry at a time, per-address bookkeeping is a small linear-scanned
// slice rather than a map, entries are pooled across allocate/reclaim
// cycles, and a per-task index of touched addresses makes commit/squash
// reclamation proportional to the task's footprint -- the ARB sits on the
// timing simulator's per-memory-operation hot path.
package arb

// Violation describes a detected memory dependence mis-speculation.
type Violation struct {
	// Addr is the conflicting data address.
	Addr uint64
	// StoreTask is the (older) task whose store detected the violation.
	StoreTask uint64
	// LoadTask is the (younger) task that performed the premature load.
	LoadTask uint64
	// LoadPC is the program counter of the first exposed load of Addr in
	// LoadTask (used to index the dependence prediction table).
	LoadPC uint64
}

// taskRecord records how one task has touched one address.  At least one of
// exposedLoad/stored is set on every stored record.
type taskRecord struct {
	id          uint64 // task identifier
	exposedLoad bool   // the task loaded the address before storing to it
	stored      bool   // the task has stored to the address
	loadPC      uint64 // PC of the first exposed load
}

// entry tracks one data address: the (unordered) access summaries of the
// in-flight tasks that touched it.
type entry struct {
	tasks []taskRecord
}

// find returns the task's record, or nil.
func (e *entry) find(taskID uint64) *taskRecord {
	for i := range e.tasks {
		if e.tasks[i].id == taskID {
			return &e.tasks[i]
		}
	}
	return nil
}

// Config describes the ARB geometry.
type Config struct {
	// Banks is the number of ARB banks (the paper uses twice the number of
	// processing units, matching the data cache banks).
	Banks int
	// EntriesPerBank is the number of addresses each bank can track (32).
	EntriesPerBank int
	// BlockSize is the interleaving granularity in bytes (64).
	BlockSize int
}

// DefaultConfig returns the paper's ARB configuration for the given number of
// processing units.
func DefaultConfig(units int) Config {
	if units < 1 {
		units = 1
	}
	return Config{Banks: 2 * units, EntriesPerBank: 32, BlockSize: 64}
}

func (c Config) withDefaults() Config {
	if c.Banks <= 0 {
		c.Banks = 8
	}
	if c.EntriesPerBank <= 0 {
		c.EntriesPerBank = 32
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64
	}
	return c
}

// ARB is the address resolution buffer.  touched indexes the tracked
// addresses by task, so reclaiming a committed or squashed task costs
// O(addresses that task touched) instead of a walk over every entry;
// entryFree and touchedFree recycle the backing storage.
//
//memdep:resettable
type ARB struct {
	cfg     Config //lint:reset-exempt construction-time configuration, immutable across runs
	banks   []map[uint64]*entry
	touched map[uint64][]uint64 // taskID -> tracked addrs

	entryFree   []*entry
	touchedFree [][]uint64

	loads      uint64
	stores     uint64
	violations uint64
	stallsFull uint64
}

// New creates an ARB with the given configuration.
func New(cfg Config) *ARB {
	cfg = cfg.withDefaults()
	a := &ARB{cfg: cfg, touched: make(map[uint64][]uint64)}
	a.banks = make([]map[uint64]*entry, cfg.Banks)
	for i := range a.banks {
		a.banks[i] = make(map[uint64]*entry, cfg.EntriesPerBank)
	}
	return a
}

// Config returns the effective configuration.
func (a *ARB) Config() Config { return a.cfg }

func (a *ARB) bankOf(addr uint64) int {
	return int((addr / uint64(a.cfg.BlockSize)) % uint64(len(a.banks)))
}

// lookup finds or allocates the entry for addr.  It returns nil when the bank
// is full and the address is not yet tracked.
//
//memdep:hotpath
func (a *ARB) lookup(addr uint64, alloc bool) *entry {
	b := a.banks[a.bankOf(addr)]
	if e, ok := b[addr]; ok {
		return e
	}
	if !alloc {
		return nil
	}
	if len(b) >= a.cfg.EntriesPerBank {
		return nil
	}
	var e *entry
	if n := len(a.entryFree); n > 0 {
		e = a.entryFree[n-1]
		a.entryFree = a.entryFree[:n-1]
		e.tasks = e.tasks[:0]
	} else {
		e = &entry{} //lint:alloc-ok pool miss: grows the entry pool once, reused thereafter
	}
	b[addr] = e
	return e
}

// access returns the task's record for the entry, creating it (and
// registering the address in the task's touched index) on first contact.
//
//memdep:hotpath
func (a *ARB) access(e *entry, addr, taskID uint64) *taskRecord {
	if ta := e.find(taskID); ta != nil {
		return ta
	}
	ts, ok := a.touched[taskID]
	if !ok {
		if n := len(a.touchedFree); n > 0 {
			ts = a.touchedFree[n-1][:0]
			a.touchedFree = a.touchedFree[:n-1]
		}
	}
	a.touched[taskID] = append(ts, addr)              //lint:alloc-ok amortized: per-task touched list reuses pooled backing
	e.tasks = append(e.tasks, taskRecord{id: taskID}) //lint:alloc-ok amortized: per-entry task list grows to working-set size once
	return &e.tasks[len(e.tasks)-1]
}

// Load records a load of addr by taskID.  ok is false when the ARB bank is
// full and the access must stall; the caller should retry later.
//
//memdep:hotpath
func (a *ARB) Load(addr uint64, taskID uint64, loadPC uint64) (ok bool) {
	e := a.lookup(addr, true)
	if e == nil {
		a.stallsFull++
		return false
	}
	a.loads++
	ta := a.access(e, addr, taskID)
	if !ta.stored && !ta.exposedLoad {
		ta.exposedLoad = true
		ta.loadPC = loadPC
	}
	return true
}

// Store records a store of addr by taskID and returns any mis-speculation it
// exposes: the youngest-preceding rule of the ARB scans younger tasks in
// ascending order and reports the first task with an exposed load of addr,
// unless an intervening younger task has already stored to addr (in which
// case later tasks read that closer version and are safe).  Because every
// tracked access has loaded or stored, only the closest younger task can
// decide the outcome, so the scan is a single min-reduction over the entry
// (order-independent, hence deterministic).  The violation is returned by
// value (violated reports whether it is meaningful) so the per-store hot
// path never allocates.  ok is false when the ARB bank is full and the
// store must stall.
//
//memdep:hotpath
func (a *ARB) Store(addr uint64, taskID uint64) (v Violation, violated, ok bool) {
	e := a.lookup(addr, true)
	if e == nil {
		a.stallsFull++
		return Violation{}, false, false
	}
	a.stores++
	ta := a.access(e, addr, taskID)
	ta.stored = true

	var closest *taskRecord
	for i := range e.tasks {
		r := &e.tasks[i]
		if r.id > taskID && (closest == nil || r.id < closest.id) {
			closest = r
		}
	}
	if closest != nil && closest.exposedLoad {
		a.violations++
		return Violation{Addr: addr, StoreTask: taskID, LoadTask: closest.id, LoadPC: closest.loadPC}, true, true
	}
	// Either no younger task touched the address, or the closest one
	// produced its own version first and insulates the tasks beyond it.
	return Violation{}, false, true
}

// CommitTask discards the bookkeeping of a task that has committed.  Empty
// address entries are reclaimed.
//
//memdep:hotpath
func (a *ARB) CommitTask(taskID uint64) {
	a.dropTask(taskID)
}

// SquashTask discards the bookkeeping of a task that has been squashed (its
// accesses never happened as far as the ARB is concerned; the re-execution
// will re-insert them).
//
//memdep:hotpath
func (a *ARB) SquashTask(taskID uint64) {
	a.dropTask(taskID)
}

//memdep:hotpath
func (a *ARB) dropTask(taskID uint64) {
	addrs, ok := a.touched[taskID]
	if !ok {
		return
	}
	for _, addr := range addrs {
		bank := a.banks[a.bankOf(addr)]
		e, ok := bank[addr]
		if !ok {
			continue
		}
		for i := range e.tasks {
			if e.tasks[i].id == taskID {
				last := len(e.tasks) - 1
				e.tasks[i] = e.tasks[last]
				e.tasks = e.tasks[:last]
				break
			}
		}
		if len(e.tasks) == 0 {
			delete(bank, addr)
			a.entryFree = append(a.entryFree, e) //lint:alloc-ok pooled free list grows to working-set size once
		}
	}
	a.touchedFree = append(a.touchedFree, addrs[:0]) //lint:alloc-ok pooled free list grows to working-set size once
	delete(a.touched, taskID)
}

// Entries returns the total number of addresses currently tracked.
func (a *ARB) Entries() int {
	n := 0
	for _, b := range a.banks {
		n += len(b)
	}
	return n
}

// Stats summarises ARB activity.
type Stats struct {
	Loads      uint64
	Stores     uint64
	Violations uint64
	StallsFull uint64
}

// Stats returns a snapshot of the counters.
func (a *ARB) Stats() Stats {
	return Stats{Loads: a.loads, Stores: a.stores, Violations: a.violations, StallsFull: a.stallsFull}
}

// Reset clears all entries and counters in place: live address entries and
// touched-index slices are drained back into the free pools, so a reused ARB
// performs no steady-state allocations.
func (a *ARB) Reset() {
	for _, b := range a.banks {
		for addr, e := range b {
			e.tasks = e.tasks[:0]
			a.entryFree = append(a.entryFree, e)
			delete(b, addr)
		}
	}
	for taskID, addrs := range a.touched {
		a.touchedFree = append(a.touchedFree, addrs[:0])
		delete(a.touched, taskID)
	}
	a.loads, a.stores, a.violations, a.stallsFull = 0, 0, 0, 0
}
