// Package isa defines the instruction set of the synthetic RISC machine used
// throughout this repository.
//
// The paper evaluates its mechanism on annotated MIPS binaries produced by the
// Multiscalar compiler.  Those binaries (and the SPEC inputs they consume) are
// not available, so this package defines a small, regular load/store ISA that
// the synthetic workloads in internal/workload are written in.  The ISA is
// deliberately simple: 32 integer registers, word-addressed memory accessed
// through explicit loads and stores, and a handful of arithmetic, logic and
// control operations.  Instruction classes map onto the functional-unit
// latencies reported in Table 2 of the paper.
package isa

import "fmt"

// WordSize is the size, in bytes, of a machine word.  All memory accesses in
// the ISA are word sized and word aligned; addresses are byte addresses.
const WordSize = 8

// InstrBytes is the architectural size of one instruction.  Program counters
// advance by InstrBytes per instruction, matching the fixed-width encoding of
// the MIPS-like machine in the paper.
const InstrBytes = 4

// Reg names an architectural integer register.  R0 is hardwired to zero, as
// on MIPS; writes to it are discarded.
type Reg uint8

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Well-known register aliases used by the program builder and the workloads.
const (
	Zero Reg = 0  // hardwired zero
	RV   Reg = 1  // return value
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

// String implements fmt.Stringer for registers.
func (r Reg) String() string {
	switch r {
	case Zero:
		return "zero"
	case SP:
		return "sp"
	case FP:
		return "fp"
	case RA:
		return "ra"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op enumerates the operations of the ISA.
type Op uint8

// The operations.  Arithmetic operations are three-register; the *I variants
// take a sign-extended immediate in place of the second source.
const (
	NOP Op = iota

	// Simple integer ALU.
	ADD
	SUB
	AND
	OR
	XOR
	SLL // shift left logical
	SRL // shift right logical
	SRA // shift right arithmetic
	SLT // set if less than (signed)
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SLTI
	LUI // load upper immediate (dst = imm << 16)

	// Complex integer.
	MUL
	DIV
	REM

	// Floating point (modelled on the integer register file; only the
	// latency class differs -- the workloads use these for the FP kernels).
	FADD
	FMUL
	FDIV

	// Memory.
	LW // load word:  dst = mem[src1 + imm]
	SW // store word: mem[src1 + imm] = src2

	// Control.
	BEQ  // branch if src1 == src2
	BNE  // branch if src1 != src2
	BLT  // branch if src1 <  src2 (signed)
	BGE  // branch if src1 >= src2 (signed)
	J    // unconditional jump
	JAL  // jump and link (dst <- return address, conventionally RA)
	JR   // jump register (to src1), used for returns and indirect calls
	HALT // stop the machine

	numOps
)

var opNames = [...]string{
	NOP:  "nop",
	ADD:  "add",
	SUB:  "sub",
	AND:  "and",
	OR:   "or",
	XOR:  "xor",
	SLL:  "sll",
	SRL:  "srl",
	SRA:  "sra",
	SLT:  "slt",
	ADDI: "addi",
	ANDI: "andi",
	ORI:  "ori",
	XORI: "xori",
	SLLI: "slli",
	SRLI: "srli",
	SLTI: "slti",
	LUI:  "lui",
	MUL:  "mul",
	DIV:  "div",
	REM:  "rem",
	FADD: "fadd",
	FMUL: "fmul",
	FDIV: "fdiv",
	LW:   "lw",
	SW:   "sw",
	BEQ:  "beq",
	BNE:  "bne",
	BLT:  "blt",
	BGE:  "bge",
	J:    "j",
	JAL:  "jal",
	JR:   "jr",
	HALT: "halt",
}

// String implements fmt.Stringer for operations.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Class groups operations by the functional unit that executes them.  The
// classes correspond to the functional units of the Multiscalar processing
// unit described in section 5.2 of the paper: 2 simple integer units, 1
// complex integer unit, 1 floating-point unit, 1 branch unit and 1 memory
// unit.
type Class uint8

// The instruction classes.
const (
	ClassSimpleInt Class = iota
	ClassComplexInt
	ClassFloat
	ClassMemory
	ClassBranch
	ClassOther // NOP, HALT

	NumClasses
)

var classNames = [...]string{
	ClassSimpleInt:  "simple-int",
	ClassComplexInt: "complex-int",
	ClassFloat:      "float",
	ClassMemory:     "memory",
	ClassBranch:     "branch",
	ClassOther:      "other",
}

// String implements fmt.Stringer for instruction classes.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf returns the functional-unit class of an operation.
func ClassOf(op Op) Class {
	switch op {
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT,
		ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI, LUI:
		return ClassSimpleInt
	case MUL, DIV, REM:
		return ClassComplexInt
	case FADD, FMUL, FDIV:
		return ClassFloat
	case LW, SW:
		return ClassMemory
	case BEQ, BNE, BLT, BGE, J, JAL, JR:
		return ClassBranch
	default:
		return ClassOther
	}
}

// IsLoad reports whether op reads memory.
func IsLoad(op Op) bool { return op == LW }

// IsStore reports whether op writes memory.
func IsStore(op Op) bool { return op == SW }

// IsMem reports whether op accesses memory.
func IsMem(op Op) bool { return op == LW || op == SW }

// IsBranch reports whether op may redirect control flow.
func IsBranch(op Op) bool {
	switch op {
	case BEQ, BNE, BLT, BGE, J, JAL, JR:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool {
	switch op {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsCall reports whether op is a call (jump-and-link).
func IsCall(op Op) bool { return op == JAL }

// IsReturn reports whether op is an indirect jump used as a return.  JR
// through RA is the conventional return in this ISA.
func IsReturn(op Op, src Reg) bool { return op == JR && src == RA }

// HasDest reports whether op writes a destination register.
func HasDest(op Op) bool {
	switch op {
	case SW, BEQ, BNE, BLT, BGE, J, JR, NOP, HALT:
		return false
	}
	return op.Valid()
}

// Instruction is one static instruction of a program.  The interpretation of
// the fields depends on the operation:
//
//	ALU reg:   Dst = Src1 op Src2
//	ALU imm:   Dst = Src1 op Imm
//	LUI:       Dst = Imm << 16
//	LW:        Dst = mem[Src1 + Imm]
//	SW:        mem[Src1 + Imm] = Src2
//	BEQ/...:   if Src1 cmp Src2 goto Target
//	J/JAL:     goto Target (JAL also writes Dst = PC + InstrBytes)
//	JR:        goto Src1
//
// Target is an instruction index into the containing program (not a byte
// address); the assembler in internal/program resolves labels to indices.
type Instruction struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target int
}

// Uses returns the source registers read by the instruction.  The second
// return value reports how many of the two slots are meaningful.
func (ins Instruction) Uses() ([2]Reg, int) {
	switch ins.Op {
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, MUL, DIV, REM, FADD, FMUL, FDIV,
		BEQ, BNE, BLT, BGE:
		return [2]Reg{ins.Src1, ins.Src2}, 2
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI, LW, JR:
		return [2]Reg{ins.Src1}, 1
	case SW:
		return [2]Reg{ins.Src1, ins.Src2}, 2
	case LUI, J, JAL, NOP, HALT:
		return [2]Reg{}, 0
	default:
		return [2]Reg{}, 0
	}
}

// Writes returns the destination register written by the instruction and
// whether there is one.
func (ins Instruction) Writes() (Reg, bool) {
	if !HasDest(ins.Op) {
		return 0, false
	}
	return ins.Dst, true
}

// String renders the instruction in a compact assembly-like syntax.
func (ins Instruction) String() string {
	switch ins.Op {
	case NOP, HALT:
		return ins.Op.String()
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, MUL, DIV, REM, FADD, FMUL, FDIV:
		return fmt.Sprintf("%s %s, %s, %s", ins.Op, ins.Dst, ins.Src1, ins.Src2)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SLTI:
		return fmt.Sprintf("%s %s, %s, %d", ins.Op, ins.Dst, ins.Src1, ins.Imm)
	case LUI:
		return fmt.Sprintf("lui %s, %d", ins.Dst, ins.Imm)
	case LW:
		return fmt.Sprintf("lw %s, %d(%s)", ins.Dst, ins.Imm, ins.Src1)
	case SW:
		return fmt.Sprintf("sw %s, %d(%s)", ins.Src2, ins.Imm, ins.Src1)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s %s, %s, @%d", ins.Op, ins.Src1, ins.Src2, ins.Target)
	case J:
		return fmt.Sprintf("j @%d", ins.Target)
	case JAL:
		return fmt.Sprintf("jal %s, @%d", ins.Dst, ins.Target)
	case JR:
		return fmt.Sprintf("jr %s", ins.Src1)
	default:
		return fmt.Sprintf("%s ?", ins.Op)
	}
}
