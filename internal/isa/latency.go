package isa

// Latency describes the execution latency, in cycles, of one instruction
// class on its functional unit.  The values reproduce Table 2 of the paper
// ("Functional Unit Latencies"): simple integer operations complete in one
// cycle, complex integer operations and floating point take longer, branches
// resolve in a cycle, and memory operations pay the cache access on top of
// the one-cycle address generation.
type Latency struct {
	// Issue is the number of cycles before a dependent instruction can use
	// the result (the effective execution latency).
	Issue int
	// Pipelined reports whether a new operation of this class can start on
	// the unit every cycle (true for everything except divides in this
	// model).
	Pipelined bool
}

// LatencyTable maps instruction classes to latencies.
type LatencyTable [NumClasses]Latency

// DefaultLatencies returns the functional-unit latencies used throughout the
// evaluation, mirroring Table 2 of the paper: 1-cycle simple integer and
// branch, 4-cycle multiply / 12-cycle divide on the complex integer unit
// (modelled as 8 cycles for the class, with divides unpipelined), 4-cycle
// floating point, and 1 cycle of address generation for memory operations
// (cache access latency is charged by the memory system, not here).
func DefaultLatencies() LatencyTable {
	return LatencyTable{
		ClassSimpleInt:  {Issue: 1, Pipelined: true},
		ClassComplexInt: {Issue: 8, Pipelined: false},
		ClassFloat:      {Issue: 4, Pipelined: true},
		ClassMemory:     {Issue: 1, Pipelined: true},
		ClassBranch:     {Issue: 1, Pipelined: true},
		ClassOther:      {Issue: 1, Pipelined: true},
	}
}

// OpLatency is a convenience that returns the issue latency of an individual
// operation under the table.  Divide-class operations are given a longer
// latency than multiplies to reflect the unpipelined divider.
func (t LatencyTable) OpLatency(op Op) int {
	base := t[ClassOf(op)].Issue
	switch op {
	case DIV, REM, FDIV:
		return base + 4
	}
	return base
}

// FUCount describes how many functional units of each class a processing
// unit has.  The defaults follow section 5.2 of the paper: 2 simple integer
// units, 1 complex integer unit, 1 floating point unit, 1 branch unit and 1
// memory unit per processing unit.
type FUCount [NumClasses]int

// DefaultFUCount returns the per-processing-unit functional unit mix from the
// paper's configuration.
func DefaultFUCount() FUCount {
	return FUCount{
		ClassSimpleInt:  2,
		ClassComplexInt: 1,
		ClassFloat:      1,
		ClassMemory:     1,
		ClassBranch:     1,
		ClassOther:      2,
	}
}
