package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		Zero: "zero",
		SP:   "sp",
		FP:   "fp",
		RA:   "ra",
		5:    "r5",
		17:   "r17",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if !r.Valid() {
			t.Errorf("register %d should be valid", r)
		}
	}
	if Reg(NumRegs).Valid() {
		t.Errorf("register %d should be invalid", NumRegs)
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v share the name %q", prev, op, s)
		}
		seen[s] = op
	}
	if got := Op(200).String(); !strings.HasPrefix(got, "op(") {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestOpValid(t *testing.T) {
	if !ADD.Valid() || !HALT.Valid() {
		t.Error("defined ops must be valid")
	}
	if Op(numOps).Valid() {
		t.Error("numOps must not be a valid op")
	}
}

func TestClassOfCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		c := ClassOf(op)
		if c >= NumClasses {
			t.Errorf("op %v has out-of-range class %v", op, c)
		}
	}
}

func TestClassAssignments(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{ADD, ClassSimpleInt},
		{ADDI, ClassSimpleInt},
		{LUI, ClassSimpleInt},
		{MUL, ClassComplexInt},
		{DIV, ClassComplexInt},
		{FADD, ClassFloat},
		{FDIV, ClassFloat},
		{LW, ClassMemory},
		{SW, ClassMemory},
		{BEQ, ClassBranch},
		{JAL, ClassBranch},
		{JR, ClassBranch},
		{NOP, ClassOther},
		{HALT, ClassOther},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestMemPredicates(t *testing.T) {
	if !IsLoad(LW) || IsLoad(SW) || IsLoad(ADD) {
		t.Error("IsLoad misclassifies")
	}
	if !IsStore(SW) || IsStore(LW) || IsStore(ADD) {
		t.Error("IsStore misclassifies")
	}
	if !IsMem(LW) || !IsMem(SW) || IsMem(BEQ) {
		t.Error("IsMem misclassifies")
	}
}

func TestBranchPredicates(t *testing.T) {
	branches := []Op{BEQ, BNE, BLT, BGE, J, JAL, JR}
	for _, op := range branches {
		if !IsBranch(op) {
			t.Errorf("IsBranch(%v) = false", op)
		}
	}
	nonBranches := []Op{ADD, LW, SW, NOP, HALT, MUL}
	for _, op := range nonBranches {
		if IsBranch(op) {
			t.Errorf("IsBranch(%v) = true", op)
		}
	}
	if !IsCondBranch(BEQ) || !IsCondBranch(BGE) || IsCondBranch(J) || IsCondBranch(JAL) {
		t.Error("IsCondBranch misclassifies")
	}
	if !IsCall(JAL) || IsCall(J) {
		t.Error("IsCall misclassifies")
	}
	if !IsReturn(JR, RA) || IsReturn(JR, 5) || IsReturn(J, RA) {
		t.Error("IsReturn misclassifies")
	}
}

func TestHasDest(t *testing.T) {
	withDest := []Op{ADD, ADDI, LUI, MUL, FADD, LW, JAL, SLT}
	for _, op := range withDest {
		if !HasDest(op) {
			t.Errorf("HasDest(%v) = false", op)
		}
	}
	withoutDest := []Op{SW, BEQ, BNE, J, JR, NOP, HALT}
	for _, op := range withoutDest {
		if HasDest(op) {
			t.Errorf("HasDest(%v) = true", op)
		}
	}
}

func TestUsesAndWrites(t *testing.T) {
	ins := Instruction{Op: ADD, Dst: 3, Src1: 4, Src2: 5}
	uses, n := ins.Uses()
	if n != 2 || uses[0] != 4 || uses[1] != 5 {
		t.Errorf("ADD uses = %v/%d", uses, n)
	}
	if d, ok := ins.Writes(); !ok || d != 3 {
		t.Errorf("ADD writes = %v/%v", d, ok)
	}

	sw := Instruction{Op: SW, Src1: 7, Src2: 8, Imm: 16}
	uses, n = sw.Uses()
	if n != 2 || uses[0] != 7 || uses[1] != 8 {
		t.Errorf("SW uses = %v/%d", uses, n)
	}
	if _, ok := sw.Writes(); ok {
		t.Error("SW must not write a register")
	}

	lw := Instruction{Op: LW, Dst: 2, Src1: 7, Imm: 8}
	uses, n = lw.Uses()
	if n != 1 || uses[0] != 7 {
		t.Errorf("LW uses = %v/%d", uses, n)
	}

	jr := Instruction{Op: JR, Src1: RA}
	uses, n = jr.Uses()
	if n != 1 || uses[0] != RA {
		t.Errorf("JR uses = %v/%d", uses, n)
	}

	j := Instruction{Op: J, Target: 12}
	if _, n := j.Uses(); n != 0 {
		t.Error("J must not read registers")
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: NOP}, "nop"},
		{Instruction{Op: ADD, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
		{Instruction{Op: ADDI, Dst: 1, Src1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Instruction{Op: LW, Dst: 5, Src1: SP, Imm: 16}, "lw r5, 16(sp)"},
		{Instruction{Op: SW, Src1: SP, Src2: 5, Imm: 16}, "sw r5, 16(sp)"},
		{Instruction{Op: BEQ, Src1: 1, Src2: 2, Target: 9}, "beq r1, r2, @9"},
		{Instruction{Op: J, Target: 3}, "j @3"},
		{Instruction{Op: JAL, Dst: RA, Target: 3}, "jal ra, @3"},
		{Instruction{Op: JR, Src1: RA}, "jr ra"},
		{Instruction{Op: LUI, Dst: 4, Imm: 10}, "lui r4, 10"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDefaultLatencies(t *testing.T) {
	lat := DefaultLatencies()
	if lat[ClassSimpleInt].Issue != 1 {
		t.Errorf("simple int latency = %d, want 1", lat[ClassSimpleInt].Issue)
	}
	if lat[ClassComplexInt].Issue <= lat[ClassSimpleInt].Issue {
		t.Error("complex int must be slower than simple int")
	}
	if lat[ClassFloat].Issue <= 1 {
		t.Error("float latency must exceed one cycle")
	}
	for c := Class(0); c < NumClasses; c++ {
		if lat[c].Issue <= 0 {
			t.Errorf("class %v has non-positive latency", c)
		}
	}
	if lat.OpLatency(DIV) <= lat.OpLatency(MUL) {
		t.Error("divide must be slower than multiply")
	}
	if lat.OpLatency(FDIV) <= lat.OpLatency(FMUL) {
		t.Error("fp divide must be slower than fp multiply")
	}
	if lat.OpLatency(ADD) != 1 {
		t.Errorf("add latency = %d, want 1", lat.OpLatency(ADD))
	}
}

func TestDefaultFUCount(t *testing.T) {
	fu := DefaultFUCount()
	if fu[ClassSimpleInt] != 2 {
		t.Errorf("simple int units = %d, want 2", fu[ClassSimpleInt])
	}
	for _, c := range []Class{ClassComplexInt, ClassFloat, ClassMemory, ClassBranch} {
		if fu[c] != 1 {
			t.Errorf("class %v units = %d, want 1", c, fu[c])
		}
	}
}

func TestClassStringTotal(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if s := Class(99).String(); !strings.HasPrefix(s, "class(") {
		t.Errorf("unknown class string = %q", s)
	}
}

// Property: every operation with a destination register reports exactly that
// register via Writes, and operations without one never do.
func TestWritesConsistentWithHasDest(t *testing.T) {
	f := func(opRaw uint8, dst uint8) bool {
		op := Op(opRaw % uint8(numOps))
		ins := Instruction{Op: op, Dst: Reg(dst % NumRegs)}
		r, ok := ins.Writes()
		if HasDest(op) != ok {
			return false
		}
		if ok && r != ins.Dst {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the register slots reported by Uses are always valid registers
// when the instruction's registers are valid.
func TestUsesAreValidRegs(t *testing.T) {
	f := func(opRaw, s1, s2 uint8) bool {
		op := Op(opRaw % uint8(numOps))
		ins := Instruction{Op: op, Src1: Reg(s1 % NumRegs), Src2: Reg(s2 % NumRegs)}
		uses, n := ins.Uses()
		for i := 0; i < n; i++ {
			if !uses[i].Valid() {
				return false
			}
		}
		return n >= 0 && n <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
