package experiments

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/window"
	"memdep/internal/workload"
)

// Table1DynamicCounts reproduces Table 1: committed dynamic instruction
// counts per benchmark.
func (r *Runner) Table1DynamicCounts(ctx context.Context) (*stats.Table, error) {
	var names []string
	names = append(names, workload.SPECint92Names()...)
	names = append(names, workload.SPEC95Names()...)

	b := r.eng.NewBatch()
	refs := make([]engine.Ref, len(names))
	for i, name := range names {
		refs[i] = b.Add(r.workItemSpec(name))
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	t := stats.NewTable("Table 1: committed dynamic instruction count per benchmark",
		"benchmark", "suite", "instructions", "loads", "stores", "tasks", "avg task")
	for i, name := range names {
		w := engine.Get[*multiscalar.WorkItem](b, refs[i])
		wl := workload.MustGet(name)
		t.AddRow(name, wl.Suite.String(),
			stats.FormatCount(w.Instructions),
			stats.FormatCount(w.Loads),
			stats.FormatCount(w.Stores),
			stats.FormatCount(uint64(w.Tasks())),
			stats.FormatFloat(w.AvgTaskSize(), 1))
	}
	t.Note = "Synthetic stand-ins for the paper's SPEC binaries; see DESIGN.md for the substitution."
	return t, nil
}

// windowSizes returns the window sizes of Tables 3-5.
func windowSizes() []int { return []int{8, 16, 32, 64, 128, 256, 512} }

// windowBatch runs the unrealistic OOO analysis for every SPECint92 benchmark
// as one parallel job set and returns the per-benchmark results in
// window-size order.
func (r *Runner) windowBatch(ctx context.Context, ddcSizes []int) (map[string][]window.Result, error) {
	b := r.eng.NewBatch()
	refs := map[string]engine.Ref{}
	for _, name := range workload.SPECint92Names() {
		refs[name] = b.Add(r.windowSpec(name, windowSizes(), ddcSizes))
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}
	perBench := make(map[string][]window.Result, len(refs))
	for _, name := range workload.SPECint92Names() {
		perBench[name] = engine.Get[[]window.Result](b, refs[name])
	}
	return perBench, nil
}

// Table3WindowMisspec reproduces Table 3: the number of dynamic memory
// dependences (worst-case mis-speculations) observed as a function of the
// window size, under the unrealistic OOO model.
func (r *Runner) Table3WindowMisspec(ctx context.Context) (*stats.Table, error) {
	perBench, err := r.windowBatch(ctx, []int{32})
	if err != nil {
		return nil, err
	}
	cols := append([]string{"WS"}, workload.SPECint92Names()...)
	t := stats.NewTable("Table 3: unrealistic OOO model, dynamic memory dependences vs window size", cols...)
	for i, ws := range windowSizes() {
		row := []string{fmt.Sprint(ws)}
		for _, name := range workload.SPECint92Names() {
			row = append(row, stats.FormatCount(perBench[name][i].Misspeculations))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table4StaticCoverage reproduces Table 4: the number of static dependences
// responsible for 99.9% of all mis-speculations, per window size.
func (r *Runner) Table4StaticCoverage(ctx context.Context) (*stats.Table, error) {
	perBench, err := r.windowBatch(ctx, []int{32})
	if err != nil {
		return nil, err
	}
	cols := append([]string{"WS"}, workload.SPECint92Names()...)
	t := stats.NewTable("Table 4: static dependences covering 99.9% of mis-speculations", cols...)
	for i, ws := range windowSizes() {
		row := []string{fmt.Sprint(ws)}
		for _, name := range workload.SPECint92Names() {
			row = append(row, fmt.Sprint(perBench[name][i].PairsForCoverage))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table5DDCMissRate reproduces Table 5: the miss rate (%) of data dependence
// caches of 32, 128 and 512 entries as a function of the window size.
func (r *Runner) Table5DDCMissRate(ctx context.Context) (*stats.Table, error) {
	ddcSizes := window.DefaultDDCSizes()
	perBench, err := r.windowBatch(ctx, ddcSizes)
	if err != nil {
		return nil, err
	}
	cols := []string{"WS", "CS"}
	cols = append(cols, workload.SPECint92Names()...)
	t := stats.NewTable("Table 5: unrealistic OOO model, DDC miss rate (%) vs window size and DDC size", cols...)
	for i, ws := range windowSizes() {
		for _, cs := range ddcSizes {
			row := []string{fmt.Sprint(ws), fmt.Sprint(cs)}
			for _, name := range workload.SPECint92Names() {
				row = append(row, stats.FormatPercent(perBench[name][i].DDCMissRate[cs]))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Table6MultiscalarMisspec reproduces Table 6: the number of mis-speculations
// observed on the Multiscalar model (blind speculation) for 4 and 8 stages.
func (r *Runner) Table6MultiscalarMisspec(ctx context.Context) (*stats.Table, error) {
	b := r.eng.NewBatch()
	type rowRefs struct {
		stages int
		refs   []engine.Ref
	}
	var grid []rowRefs
	for _, stages := range r.opts.Stages {
		rr := rowRefs{stages: stages}
		for _, name := range workload.SPECint92Names() {
			rr.refs = append(rr.refs, b.Add(r.simSpec(name, stages, policy.Always)))
		}
		grid = append(grid, rr)
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	cols := append([]string{"stages"}, workload.SPECint92Names()...)
	t := stats.NewTable("Table 6: Multiscalar model, mis-speculations under blind speculation", cols...)
	for _, rr := range grid {
		row := []string{fmt.Sprint(rr.stages)}
		for _, ref := range rr.refs {
			row = append(row, stats.FormatCount(engine.Get[multiscalar.Result](b, ref).Misspeculations))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// table7DDCSizes are the DDC sizes of Table 7.
func table7DDCSizes() []int { return []int{16, 32, 64, 128, 256, 512, 1024} }

// Table7MultiscalarDDC reproduces Table 7: DDC miss rates on the 8-stage
// Multiscalar configuration as a function of the DDC size.
func (r *Runner) Table7MultiscalarDDC(ctx context.Context) (*stats.Table, error) {
	b := r.eng.NewBatch()
	refs := map[string]engine.Ref{}
	for _, name := range workload.SPECint92Names() {
		cfg := r.simConfig(8, policy.Always)
		cfg.DDCSizes = table7DDCSizes()
		refs[name] = b.Add(r.simSpecWith(name, cfg))
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	cols := append([]string{"CS"}, workload.SPECint92Names()...)
	t := stats.NewTable("Table 7: 8-stage Multiscalar, DDC miss rate (%) vs DDC size", cols...)
	for _, cs := range table7DDCSizes() {
		row := []string{fmt.Sprint(cs)}
		for _, name := range workload.SPECint92Names() {
			res := engine.Get[multiscalar.Result](b, refs[name])
			row = append(row, stats.FormatPercent(res.DDCMissRate[cs]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table8PredictionBreakdown reproduces Table 8: the breakdown of dependence
// predictions (predicted/actual) for the SYNC and ESYNC predictors.
func (r *Runner) Table8PredictionBreakdown(ctx context.Context) (*stats.Table, error) {
	b := r.eng.NewBatch()
	type cellKey struct {
		stages int
		pol    policy.Kind
		name   string
	}
	refs := map[cellKey]engine.Ref{}
	for _, stages := range r.opts.Stages {
		for _, pol := range []policy.Kind{policy.Sync, policy.ESync} {
			for _, name := range workload.SPECint92Names() {
				refs[cellKey{stages, pol, name}] = b.Add(r.simSpec(name, stages, pol))
			}
		}
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	cols := append([]string{"stages", "predictor", "P/A"}, workload.SPECint92Names()...)
	t := stats.NewTable("Table 8: dependence prediction breakdown (% of committed loads)", cols...)
	categories := []struct {
		label     string
		pred, act int
	}{
		{"N/N", 0, 0},
		{"N/Y", 0, 1},
		{"Y/N", 1, 0},
		{"Y/Y", 1, 1},
	}
	for _, stages := range r.opts.Stages {
		for _, pol := range []policy.Kind{policy.Sync, policy.ESync} {
			for _, cat := range categories {
				row := []string{fmt.Sprint(stages), pol.String(), cat.label}
				for _, name := range workload.SPECint92Names() {
					res := engine.Get[multiscalar.Result](b, refs[cellKey{stages, pol, name}])
					row = append(row, stats.FormatPercent(res.Breakdown.Percent(cat.pred, cat.act)))
				}
				t.AddRow(row...)
			}
		}
	}
	t.Note = "N/Y rows are mis-speculations; Y/N rows are false dependence predictions (unnecessary delays)."
	return t, nil
}

// Table9MisspecPerLoad reproduces Table 9: mis-speculations per committed
// load under blind speculation and with the prediction/synchronization
// mechanism in place.
func (r *Runner) Table9MisspecPerLoad(ctx context.Context) (*stats.Table, error) {
	pols := []policy.Kind{policy.Always, policy.Sync, policy.ESync}

	b := r.eng.NewBatch()
	type rowKey struct {
		stages int
		pol    policy.Kind
	}
	refs := map[rowKey][]engine.Ref{}
	for _, stages := range r.opts.Stages {
		for _, pol := range pols {
			var rr []engine.Ref
			for _, name := range workload.SPECint92Names() {
				rr = append(rr, b.Add(r.simSpec(name, stages, pol)))
			}
			refs[rowKey{stages, pol}] = rr
		}
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	cols := append([]string{"stages", "policy"}, workload.SPECint92Names()...)
	t := stats.NewTable("Table 9: mis-speculations per committed load", cols...)
	for _, stages := range r.opts.Stages {
		for _, pol := range pols {
			row := []string{fmt.Sprint(stages), pol.String()}
			for _, ref := range refs[rowKey{stages, pol}] {
				res := engine.Get[multiscalar.Result](b, ref)
				row = append(row, stats.FormatFloat(res.MisspecsPerCommittedLoad(), 4))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
