// Package experiments contains one driver per table and figure of the
// paper's evaluation (section 5), plus ablation studies for the design
// choices called out in DESIGN.md.  Each driver returns a stats.Table whose
// rows mirror the corresponding table or figure, regenerated on the synthetic
// workload suite.
//
// The drivers share a Runner, which caches functional traces (as Multiscalar
// work items) and timing-simulation results so that, for example, the ALWAYS
// baseline computed for Figure 5 is reused by Figure 6 and Table 9.
package experiments

import (
	"fmt"

	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/program"
	"memdep/internal/trace"
	"memdep/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale overrides every workload's default scale when positive.
	Scale int
	// MaxInstructions caps the number of committed instructions per
	// benchmark (0 = run each benchmark to completion at its scale).  The
	// quick presets use this to keep unit-test and benchmark runs short.
	MaxInstructions uint64
	// Stages lists the Multiscalar configurations to simulate (default 4, 8).
	Stages []int
	// MDPTEntries sets the prediction-table size (default 64, the paper's
	// evaluated configuration).
	MDPTEntries int
}

// Quick returns options suitable for unit tests and Go benchmarks: the same
// experiments on truncated runs.
func Quick() Options {
	return Options{Scale: 1, MaxInstructions: 40_000}
}

// Full returns the options used to produce EXPERIMENTS.md: every workload at
// its default scale, run to completion.
func Full() Options {
	return Options{}
}

func (o Options) withDefaults() Options {
	if len(o.Stages) == 0 {
		o.Stages = []int{4, 8}
	}
	if o.MDPTEntries <= 0 {
		o.MDPTEntries = 64
	}
	return o
}

// simKey identifies a cached timing simulation.
type simKey struct {
	bench   string
	stages  int
	pol     policy.Kind
	entries int
	tagAddr bool
	ddc     bool
}

// Runner executes experiments, caching programs, work items and simulation
// results across drivers.
type Runner struct {
	opts      Options
	programs  map[string]*program.Program
	workItems map[string]*multiscalar.WorkItem
	simCache  map[simKey]multiscalar.Result
}

// NewRunner creates a runner for the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:      opts.withDefaults(),
		programs:  map[string]*program.Program{},
		workItems: map[string]*multiscalar.WorkItem{},
		simCache:  map[simKey]multiscalar.Result{},
	}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opts }

// Program builds (and caches) the program of a benchmark at the configured
// scale.
func (r *Runner) Program(name string) (*program.Program, error) {
	if p, ok := r.programs[name]; ok {
		return p, nil
	}
	w, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	scale := w.DefaultScale
	if r.opts.Scale > 0 {
		scale = r.opts.Scale
	}
	p := w.Build(scale)
	r.programs[name] = p
	return p, nil
}

// traceConfig returns the functional-run bounds for the current options.
func (r *Runner) traceConfig() trace.Config {
	return trace.Config{MaxInstructions: r.opts.MaxInstructions}
}

// WorkItem preprocesses (and caches) a benchmark for timing simulation.
func (r *Runner) WorkItem(name string) (*multiscalar.WorkItem, error) {
	if w, ok := r.workItems[name]; ok {
		return w, nil
	}
	p, err := r.Program(name)
	if err != nil {
		return nil, err
	}
	w, err := multiscalar.Preprocess(p, r.traceConfig())
	if err != nil {
		return nil, err
	}
	r.workItems[name] = w
	return w, nil
}

// simConfig builds the Multiscalar configuration for a policy and stage
// count.
func (r *Runner) simConfig(stages int, pol policy.Kind) multiscalar.Config {
	cfg := multiscalar.DefaultConfig(stages, pol)
	cfg.MemDep.Entries = r.opts.MDPTEntries
	return cfg
}

// Simulate runs (and caches) one benchmark under one configuration.
func (r *Runner) Simulate(name string, stages int, pol policy.Kind) (multiscalar.Result, error) {
	key := simKey{bench: name, stages: stages, pol: pol, entries: r.opts.MDPTEntries}
	if res, ok := r.simCache[key]; ok {
		return res, nil
	}
	w, err := r.WorkItem(name)
	if err != nil {
		return multiscalar.Result{}, err
	}
	res, err := multiscalar.Simulate(w, r.simConfig(stages, pol))
	if err != nil {
		return multiscalar.Result{}, fmt.Errorf("experiments: %s/%d-stage/%v: %w", name, stages, pol, err)
	}
	r.simCache[key] = res
	return res, nil
}

// simulateWith runs a benchmark with a customised configuration (used by the
// ablation drivers); results are cached by the distinguishing fields.
func (r *Runner) simulateWith(name string, cfg multiscalar.Config) (multiscalar.Result, error) {
	key := simKey{
		bench:   name,
		stages:  cfg.Stages,
		pol:     cfg.Policy,
		entries: cfg.MemDep.Entries,
		tagAddr: cfg.MemDep.TagByAddress,
		ddc:     len(cfg.DDCSizes) > 0,
	}
	if res, ok := r.simCache[key]; ok {
		return res, nil
	}
	w, err := r.WorkItem(name)
	if err != nil {
		return multiscalar.Result{}, err
	}
	res, err := multiscalar.Simulate(w, cfg)
	if err != nil {
		return multiscalar.Result{}, err
	}
	r.simCache[key] = res
	return res, nil
}
