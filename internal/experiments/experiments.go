// Package experiments contains one driver per table and figure of the
// paper's evaluation (section 5), plus ablation studies for the design
// choices called out in DESIGN.md.  Each driver returns a stats.Table whose
// rows mirror the corresponding table or figure, regenerated on the synthetic
// workload suite.
//
// The drivers share a Runner built on the job engine (internal/engine): each
// driver declares its whole benchmark × configuration grid as a job set, the
// engine executes the set on a worker pool, and the driver assembles the
// table from the positional results.  Jobs are memoized engine-wide with
// singleflight deduplication, so for example the ALWAYS baseline computed for
// Figure 5 is reused by Figure 6 and Table 9 -- even when those drivers run
// concurrently from different goroutines.  Because assembly is positional and
// the simulators are deterministic, a driver's output is byte-identical at
// every worker count.
package experiments

import (
	"context"

	"memdep/internal/engine"
	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/program"
	"memdep/internal/synth"
	"memdep/internal/trace"
	"memdep/internal/window"
	"memdep/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale overrides every workload's default scale when positive.
	Scale int
	// MaxInstructions caps the number of committed instructions per
	// benchmark (0 = run each benchmark to completion at its scale).  The
	// quick presets use this to keep unit-test and benchmark runs short.
	MaxInstructions uint64
	// Stages lists the Multiscalar configurations to simulate (default 4, 8).
	Stages []int
	// MDPTEntries sets the prediction-table size (default 64, the paper's
	// evaluated configuration).
	MDPTEntries int
	// PredictorTable selects the prediction-table organization applied to
	// every standard simulation (default: the paper's fully associative
	// MDPT).  The sensitivity-sweep driver varies the organization itself
	// and ignores this override.
	PredictorTable memdep.TableKind
	// MDPTWays sets the associativity for the set-associative and store-set
	// organizations (0 = the memdep default of 4).
	MDPTWays int
	// Core selects the timing-simulator run loop (default: the event-driven
	// core).  The stepped reference core produces byte-identical tables and
	// exists for equivalence testing.
	Core multiscalar.CoreMode
	// Jobs is the engine worker-pool size used to execute each driver's job
	// set (0 = GOMAXPROCS).  The results are identical at every setting;
	// only the wall-clock time changes.
	Jobs int
	// SynthBase overrides the base synthetic-workload spec swept by the
	// sensitivity-synth driver (nil = the synth package defaults).  The
	// driver varies the dependence-distance histogram and alias-set size on
	// top of this base.
	SynthBase *synth.Spec
}

// Quick returns options suitable for unit tests and Go benchmarks: the same
// experiments on truncated runs.
func Quick() Options {
	return Options{Scale: 1, MaxInstructions: 40_000}
}

// Full returns the options used to produce EXPERIMENTS.md: every workload at
// its default scale, run to completion.
func Full() Options {
	return Options{}
}

func (o Options) withDefaults() Options {
	if len(o.Stages) == 0 {
		o.Stages = []int{4, 8}
	}
	if o.MDPTEntries <= 0 {
		o.MDPTEntries = 64
	}
	return o
}

// NewEngine creates a job engine with every evaluation layer registered:
// workload building (committed suite and synthetic generator), functional
// tracing, window analysis, Multiscalar preprocessing and timing simulation.
func NewEngine(workers int) *engine.Engine {
	e := engine.New(workers)
	e.Register(
		workload.BuildSimulator(),
		synth.BuildSimulator(),
		trace.RunSimulator(),
		window.AnalyzeSimulator(),
		multiscalar.PreprocessSimulator(),
		multiscalar.SimulateSimulator(),
	)
	return e
}

// Runner executes experiments.  It carries no mutable state of its own --
// programs, work items and simulation results are memoized inside the shared
// engine -- so one Runner may be used from any number of goroutines.
type Runner struct {
	opts Options
	eng  *engine.Engine
}

// NewRunner creates a runner with a fresh engine sized by opts.Jobs.
func NewRunner(opts Options) *Runner {
	return NewRunnerWithEngine(opts, NewEngine(opts.Jobs))
}

// NewRunnerWithEngine creates a runner on an existing engine, sharing its job
// cache with every other runner on that engine.
func NewRunnerWithEngine(opts Options, eng *engine.Engine) *Runner {
	return &Runner{opts: opts.withDefaults(), eng: eng}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opts }

// Engine returns the runner's job engine.
func (r *Runner) Engine() *engine.Engine { return r.eng }

// traceConfig returns the functional-run bounds for the current options.
func (r *Runner) traceConfig() trace.Config {
	return trace.Config{MaxInstructions: r.opts.MaxInstructions}
}

// --- job-spec builders -------------------------------------------------------

// programSpec declares the program-build job of a benchmark at the configured
// scale.
func (r *Runner) programSpec(name string) engine.Spec {
	return workload.BuildJob{Name: name, Scale: r.opts.Scale}
}

// workItemSpec declares the preprocessing job of a benchmark.
func (r *Runner) workItemSpec(name string) engine.Spec {
	return multiscalar.PreprocessJob{Program: r.programSpec(name), Trace: r.traceConfig()}
}

// simConfig builds the Multiscalar configuration for a policy and stage
// count.
func (r *Runner) simConfig(stages int, pol policy.Kind) multiscalar.Config {
	cfg := multiscalar.DefaultConfig(stages, pol)
	cfg.MemDep.Entries = r.opts.MDPTEntries
	cfg.MemDep.Table = r.opts.PredictorTable
	cfg.MemDep.Ways = r.opts.MDPTWays
	cfg.Core = r.opts.Core
	return cfg
}

// simSpec declares the timing simulation of one benchmark under the standard
// configuration for a policy and stage count.
func (r *Runner) simSpec(name string, stages int, pol policy.Kind) engine.Spec {
	return r.simSpecWith(name, r.simConfig(stages, pol))
}

// simSpecWith declares a timing simulation under a customised configuration
// (used by Table 7 and the ablation drivers).
func (r *Runner) simSpecWith(name string, cfg multiscalar.Config) engine.Spec {
	return multiscalar.SimulateJob{Item: r.workItemSpec(name), Config: cfg}
}

// windowSpec declares the unrealistic-OOO analysis of one benchmark.
func (r *Runner) windowSpec(name string, windows, ddcSizes []int) engine.Spec {
	return window.AnalyzeJob{
		Program: r.programSpec(name),
		Config: window.Config{
			WindowSizes: windows,
			DDCSizes:    ddcSizes,
			Trace:       r.traceConfig(),
		},
	}
}

// --- direct resolution (single jobs through the memoized engine) ------------

// Program builds (and caches) the program of a benchmark at the configured
// scale.
func (r *Runner) Program(ctx context.Context, name string) (*program.Program, error) {
	return engine.Resolve[*program.Program](ctx, r.eng, r.programSpec(name))
}

// WorkItem preprocesses (and caches) a benchmark for timing simulation.
func (r *Runner) WorkItem(ctx context.Context, name string) (*multiscalar.WorkItem, error) {
	return engine.Resolve[*multiscalar.WorkItem](ctx, r.eng, r.workItemSpec(name))
}

// Simulate runs (and caches) one benchmark under one configuration.
func (r *Runner) Simulate(ctx context.Context, name string, stages int, pol policy.Kind) (multiscalar.Result, error) {
	return engine.Resolve[multiscalar.Result](ctx, r.eng, r.simSpec(name, stages, pol))
}
