package experiments

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/synth"
)

// synthDistances are the dependence-distance points of the synthetic sweep:
// within-task, a few tasks back, and far across the in-flight window.
func synthDistances() []int { return []int{8, 64, 256} }

// synthAliasSizes are the alias-set sizes of the sweep: every engineered
// dependence fires every iteration (1), every 4th, or every 16th -- the
// mispredict-prone regimes the committed suite barely exercises.
func synthAliasSizes() []int { return []int{1, 4, 16} }

// synthVariant is one prediction mechanism of the sweep.
type synthVariant struct {
	label string
	pol   policy.Kind
	table memdep.TableKind
}

// synthVariants returns the swept mechanisms: blind speculation (the ALWAYS
// baseline the paper's Figure 6 speedups are measured against), the SYNC and
// ESYNC predictors on the paper's fully associative MDPT, and ESYNC on the
// store-set organization (whose set merging behaves differently under heavy
// aliasing).
func synthVariants() []synthVariant {
	return []synthVariant{
		{"ALWAYS", policy.Always, memdep.TableFullAssoc},
		{"SYNC", policy.Sync, memdep.TableFullAssoc},
		{"ESYNC", policy.ESync, memdep.TableFullAssoc},
		{"storeset", policy.ESync, memdep.TableStoreSet},
	}
}

// SensitivitySynth sweeps synthetic workloads over the dependence-distance ×
// alias-intensity plane for the SYNC, ESYNC and store-set mechanisms on the
// 8-stage configuration.  Unlike every other driver it runs on generated
// workloads (internal/synth), not the committed suite: each cell is the same
// seeded base spec with a single-bucket distance histogram and an alias-set
// size applied, so the study isolates how dependence distance (how far
// speculation must reach) and dependence intermittency (how often a learned
// pair actually fires) move the mechanisms.  Like every driver it is one
// engine job set, so output is byte-identical at every -jobs setting.
func (r *Runner) SensitivitySynth(ctx context.Context) (*stats.Table, error) {
	const stages = 8
	base := synth.Spec{Seed: 1}
	if r.opts.SynthBase != nil {
		base = *r.opts.SynthBase
	}
	base = base.Normalize()

	b := r.eng.NewBatch()
	type row struct {
		dist, alias int
		refs        []engine.Ref
	}
	var rows []row
	for _, dist := range synthDistances() {
		for _, alias := range synthAliasSizes() {
			spec := base
			spec.DepDists = []synth.DistBucket{{Dist: dist, Weight: 1}}
			spec.AliasSetSize = alias
			rw := row{dist: dist, alias: alias}
			for _, v := range synthVariants() {
				cfg := r.simConfig(stages, v.pol)
				cfg.MemDep.Table = v.table
				rw.refs = append(rw.refs, b.Add(multiscalar.SimulateJob{
					Item: multiscalar.PreprocessJob{
						Program: synth.BuildJob{Spec: spec, Scale: r.opts.Scale},
						Trace:   r.traceConfig(),
					},
					Config: cfg,
				}))
			}
			rows = append(rows, rw)
		}
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	cols := []string{"distance", "alias set"}
	for _, v := range synthVariants() {
		cols = append(cols, v.label+" IPC")
	}
	for _, v := range synthVariants() {
		cols = append(cols, v.label+" ms/ld")
	}
	t := stats.NewTable(
		fmt.Sprintf("Sensitivity: synthetic workloads, dependence distance × alias intensity (%d stages, seed %d)",
			stages, base.Seed), cols...)
	for _, rw := range rows {
		out := []string{fmt.Sprint(rw.dist), fmt.Sprint(rw.alias)}
		for _, ref := range rw.refs {
			out = append(out, stats.FormatFloat(engine.Get[multiscalar.Result](b, ref).IPC(), 2))
		}
		for _, ref := range rw.refs {
			out = append(out, stats.FormatFloat(engine.Get[multiscalar.Result](b, ref).MisspecsPerCommittedLoad(), 4))
		}
		t.AddRow(out...)
	}
	t.Note = "Generated workloads (internal/synth): single-bucket distance histogram, alias-set size k fires each dependence every k-th iteration; \"storeset\" is ESYNC on the store-set table."
	return t, nil
}
