package experiments

import (
	"context"
	"sync"
	"testing"

	"memdep/internal/multiscalar"
	"memdep/internal/stats"
)

// TestDriversDeterministicAcrossWorkerCounts checks the engine's central
// guarantee: the same experiment grid run with 1 worker and with N workers
// produces byte-identical stats.Table output.
func TestDriversDeterministicAcrossWorkerCounts(t *testing.T) {
	drivers := []struct {
		id  string
		run func(*Runner, context.Context) (*stats.Table, error)
	}{
		{"table6", (*Runner).Table6MultiscalarMisspec},
		{"table8", (*Runner).Table8PredictionBreakdown},
		{"table9", (*Runner).Table9MisspecPerLoad},
		{"figure5", (*Runner).Figure5PolicyComparison},
		{"sensitivity-predictor", (*Runner).SensitivityPredictorOrg},
	}
	render := func(jobs int) map[string]string {
		opts := Quick()
		opts.Jobs = jobs
		r := NewRunner(opts)
		out := map[string]string{}
		for _, d := range drivers {
			tab, err := d.run(r, context.Background())
			if err != nil {
				t.Fatalf("jobs=%d %s: %v", jobs, d.id, err)
			}
			out[d.id] = tab.Render()
		}
		return out
	}
	serial := render(1)
	for _, jobs := range []int{2, 8} {
		parallel := render(jobs)
		for _, d := range drivers {
			if serial[d.id] != parallel[d.id] {
				t.Errorf("%s: output differs between 1 worker and %d workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
					d.id, jobs, serial[d.id], jobs, parallel[d.id])
			}
		}
	}
}

// TestDriversIdenticalAcrossCoreModes checks the event-driven timing core's
// equivalence guarantee at the experiment level: the exact tables that make
// up EXPERIMENTS.md are byte-identical whether the simulations run on the
// event-driven core or on the stepped per-cycle reference core.
func TestDriversIdenticalAcrossCoreModes(t *testing.T) {
	drivers := []struct {
		id  string
		run func(*Runner, context.Context) (*stats.Table, error)
	}{
		{"table6", (*Runner).Table6MultiscalarMisspec},
		{"table8", (*Runner).Table8PredictionBreakdown},
		{"table9", (*Runner).Table9MisspecPerLoad},
		{"figure5", (*Runner).Figure5PolicyComparison},
		{"figure6", (*Runner).Figure6MechanismSpeedup},
	}
	render := func(core multiscalar.CoreMode) map[string]string {
		opts := Quick()
		opts.MaxInstructions = 20_000 // two full grids; keep the run short
		opts.Core = core
		r := NewRunner(opts)
		out := map[string]string{}
		for _, d := range drivers {
			tab, err := d.run(r, context.Background())
			if err != nil {
				t.Fatalf("core=%v %s: %v", core, d.id, err)
			}
			out[d.id] = tab.Render()
		}
		return out
	}
	event := render(multiscalar.CoreEvent)
	stepped := render(multiscalar.CoreStepped)
	for _, d := range drivers {
		if event[d.id] != stepped[d.id] {
			t.Errorf("%s: output differs between cores:\n--- event ---\n%s\n--- stepped ---\n%s",
				d.id, event[d.id], stepped[d.id])
		}
	}
}

// TestConcurrentDriversShareOneRunner fires every table and figure driver
// from its own goroutine against one shared Runner.  Run under -race this
// exercises the engine's concurrent cache path: the drivers overlap heavily
// (shared work items, shared ALWAYS baselines), so the singleflight
// deduplication and the memoized cache are both hit from many goroutines at
// once.
func TestConcurrentDriversShareOneRunner(t *testing.T) {
	opts := Quick()
	opts.MaxInstructions = 10_000 // keep the -race run short
	r := NewRunner(opts)

	var wg sync.WaitGroup
	for _, e := range All() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tab, err := e.Run(r, context.Background())
			if err != nil {
				t.Errorf("%s: %v", e.ID, err)
				return
			}
			if tab.NumRows() == 0 {
				t.Errorf("%s: empty table", e.ID)
			}
		}()
	}
	wg.Wait()

	// The concurrent drivers must have deduplicated their shared jobs: every
	// executed job is memoized exactly once, so the number of cache entries
	// must equal the number of executions.
	eng := r.Engine()
	if eng.Executed() != uint64(eng.CacheLen()) {
		t.Errorf("executed %d jobs but cache holds %d: duplicate executions slipped through",
			eng.Executed(), eng.CacheLen())
	}
	if eng.Hits() == 0 {
		t.Error("concurrent drivers shared no jobs; expected heavy cache reuse")
	}
}
