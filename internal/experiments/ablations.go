package experiments

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/workload"
)

// AblationTagging compares the two dynamic-instance tagging schemes of
// section 3: the dependence-distance scheme (the paper's choice, evaluated
// everywhere else) and the data-address scheme, on the 8-stage configuration
// with the SYNC predictor.
func (r *Runner) AblationTagging(ctx context.Context) (*stats.Table, error) {
	const stages = 8

	b := r.eng.NewBatch()
	type cell struct {
		name       string
		dist, addr engine.Ref
	}
	var cells []cell
	for _, name := range workload.SPECint92Names() {
		cfg := r.simConfig(stages, policy.Sync)
		cfg.MemDep.TagByAddress = true
		cells = append(cells, cell{
			name: name,
			dist: b.Add(r.simSpec(name, stages, policy.Sync)),
			addr: b.Add(r.simSpecWith(name, cfg)),
		})
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation: dynamic-instance tagging scheme (8 stages, SYNC predictor)",
		"benchmark", "distance IPC", "address IPC", "distance misspec/load", "address misspec/load")
	for _, c := range cells {
		dist := engine.Get[multiscalar.Result](b, c.dist)
		addr := engine.Get[multiscalar.Result](b, c.addr)
		t.AddRow(c.name,
			stats.FormatFloat(dist.IPC(), 2),
			stats.FormatFloat(addr.IPC(), 2),
			stats.FormatFloat(dist.MisspecsPerCommittedLoad(), 4),
			stats.FormatFloat(addr.MisspecsPerCommittedLoad(), 4))
	}
	return t, nil
}

// AblationPredictor compares the prediction policies attached to MDPT entries
// (always-synchronize, SYNC counter, ESYNC counter + task PC) on the 8-stage
// configuration.
func (r *Runner) AblationPredictor(ctx context.Context) (*stats.Table, error) {
	const stages = 8

	b := r.eng.NewBatch()
	type cell struct {
		name                           string
		alwaysSync, sync, esync, psync engine.Ref
	}
	var cells []cell
	for _, name := range workload.SPECint92Names() {
		cfg := r.simConfig(stages, policy.Sync)
		cfg.MemDep.Predictor = memdep.PredictAlways
		cells = append(cells, cell{
			name:       name,
			alwaysSync: b.Add(r.simSpecWith(name, cfg)),
			sync:       b.Add(r.simSpec(name, stages, policy.Sync)),
			esync:      b.Add(r.simSpec(name, stages, policy.ESync)),
			psync:      b.Add(r.simSpec(name, stages, policy.PerfectSync)),
		})
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation: MDPT prediction policy (8 stages)",
		"benchmark", "ALWAYS-SYNC IPC", "SYNC IPC", "ESYNC IPC", "PSYNC IPC")
	for _, c := range cells {
		t.AddRow(c.name,
			stats.FormatFloat(engine.Get[multiscalar.Result](b, c.alwaysSync).IPC(), 2),
			stats.FormatFloat(engine.Get[multiscalar.Result](b, c.sync).IPC(), 2),
			stats.FormatFloat(engine.Get[multiscalar.Result](b, c.esync).IPC(), 2),
			stats.FormatFloat(engine.Get[multiscalar.Result](b, c.psync).IPC(), 2))
	}
	t.Note = "ALWAYS-SYNC omits the prediction counter: any matching MDPT entry forces synchronization."
	return t, nil
}

// ablationTableSizes are the MDPT sizes swept by AblationTableSize.
func ablationTableSizes() []int { return []int{16, 32, 64, 128, 256} }

// AblationTableSize sweeps the MDPT size (the paper evaluates 64 entries and
// discusses capacity problems for 103.su2cor and 145.fpppp).
func (r *Runner) AblationTableSize(ctx context.Context) (*stats.Table, error) {
	const stages = 8
	benchmarks := append(append([]string{}, workload.SPECint92Names()...),
		"103.su2cor", "145.fpppp")

	b := r.eng.NewBatch()
	type cell struct {
		name string
		refs []engine.Ref
	}
	var cells []cell
	for _, name := range benchmarks {
		c := cell{name: name}
		for _, entries := range ablationTableSizes() {
			cfg := r.simConfig(stages, policy.ESync)
			cfg.MemDep.Entries = entries
			c.refs = append(c.refs, b.Add(r.simSpecWith(name, cfg)))
		}
		cells = append(cells, c)
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	cols := []string{"benchmark"}
	for _, n := range ablationTableSizes() {
		cols = append(cols, fmt.Sprintf("%d entries", n))
	}
	t := stats.NewTable("Ablation: MDPT size, ESYNC IPC (8 stages)", cols...)
	for _, c := range cells {
		row := []string{c.name}
		for _, ref := range c.refs {
			row = append(row, stats.FormatFloat(engine.Get[multiscalar.Result](b, ref).IPC(), 2))
		}
		t.AddRow(row...)
	}
	t.Note = "103.su2cor and 145.fpppp carry dependence working sets larger than small tables (section 5.5)."
	return t, nil
}

// NamedExperiment couples an experiment identifier with its driver.
type NamedExperiment struct {
	// ID is the table/figure identifier used by the paper (for example
	// "table3" or "figure6").
	ID string
	// Description summarises what the experiment reports.
	Description string
	// Run produces the table.
	Run func(*Runner, context.Context) (*stats.Table, error)
}

// All returns every experiment in presentation order.
func All() []NamedExperiment {
	return []NamedExperiment{
		{"table1", "committed dynamic instruction counts", (*Runner).Table1DynamicCounts},
		{"table3", "unrealistic OOO: mis-speculations vs window size", (*Runner).Table3WindowMisspec},
		{"table4", "static dependences covering 99.9% of mis-speculations", (*Runner).Table4StaticCoverage},
		{"table5", "unrealistic OOO: DDC miss rates", (*Runner).Table5DDCMissRate},
		{"table6", "Multiscalar: mis-speculations under blind speculation", (*Runner).Table6MultiscalarMisspec},
		{"table7", "8-stage Multiscalar: DDC miss rates", (*Runner).Table7MultiscalarDDC},
		{"figure5", "speculation policies vs NEVER", (*Runner).Figure5PolicyComparison},
		{"table8", "dependence prediction breakdown", (*Runner).Table8PredictionBreakdown},
		{"table9", "mis-speculations per committed load", (*Runner).Table9MisspecPerLoad},
		{"figure6", "mechanism speedup over blind speculation", (*Runner).Figure6MechanismSpeedup},
		{"figure7", "SPEC95 speedups on 8 stages", (*Runner).Figure7Spec95},
		{"ablation-tagging", "instance tagging: distance vs address", (*Runner).AblationTagging},
		{"ablation-predictor", "prediction policy: always/SYNC/ESYNC", (*Runner).AblationPredictor},
		{"ablation-tablesize", "MDPT size sweep", (*Runner).AblationTableSize},
		{"sensitivity-predictor", "predictor organization: entries × ways × counter bits", (*Runner).SensitivityPredictorOrg},
		{"sensitivity-synth", "synthetic workloads: dependence distance × alias intensity", (*Runner).SensitivitySynth},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (NamedExperiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return NamedExperiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
