package experiments

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/workload"
)

// predictorOrg is one prediction-table organization of the sensitivity sweep.
type predictorOrg struct {
	label       string
	table       memdep.TableKind
	entries     int
	ways        int
	counterBits int
}

// sensitivityOrgs returns the organizations swept by the predictor
// sensitivity study: the paper's fully associative table (the baseline every
// other EXPERIMENTS.md table uses), a narrower counter, the set-associative
// table at 1/2/4 ways and at reduced capacity, and the store-set variant.
func sensitivityOrgs() []predictorOrg {
	return []predictorOrg{
		{"full 64e 3b", memdep.TableFullAssoc, 64, 0, 3},
		{"full 64e 2b", memdep.TableFullAssoc, 64, 0, 2},
		{"setassoc 64e/1w 3b", memdep.TableSetAssoc, 64, 1, 3},
		{"setassoc 64e/2w 3b", memdep.TableSetAssoc, 64, 2, 3},
		{"setassoc 64e/4w 3b", memdep.TableSetAssoc, 64, 4, 3},
		{"setassoc 16e/4w 3b", memdep.TableSetAssoc, 16, 4, 3},
		{"storeset 64e/4w 3b", memdep.TableStoreSet, 64, 4, 3},
	}
}

// sensitivityPolicies returns the predictor-driven policies of the sweep.
func sensitivityPolicies() []policy.Kind { return []policy.Kind{policy.Sync, policy.ESync} }

// SensitivityPredictorOrg sweeps the prediction-table organization --
// {entries, associativity, counter bits} across the fully associative,
// set-associative and store-set tables -- for the SYNC and ESYNC policies on
// the 8-stage configuration.  It is the table-organization counterpart of
// AblationTableSize: where that study grows one fully associative table, this
// one holds the paper's operating point and asks how much organization (and
// hence lookup cost and conflict behaviour) the prediction quality tolerates.
// Like every driver it is one engine job set, so output is byte-identical at
// every -jobs setting.
func (r *Runner) SensitivityPredictorOrg(ctx context.Context) (*stats.Table, error) {
	const stages = 8

	b := r.eng.NewBatch()
	type row struct {
		pol  policy.Kind
		org  predictorOrg
		refs []engine.Ref
	}
	var rows []row
	for _, pol := range sensitivityPolicies() {
		for _, org := range sensitivityOrgs() {
			rw := row{pol: pol, org: org}
			for _, name := range workload.SPECint92Names() {
				cfg := r.simConfig(stages, pol)
				cfg.MemDep.Table = org.table
				cfg.MemDep.Entries = org.entries
				cfg.MemDep.Ways = org.ways
				cfg.MemDep.CounterBits = org.counterBits
				rw.refs = append(rw.refs, b.Add(r.simSpecWith(name, cfg)))
			}
			rows = append(rows, rw)
		}
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	cols := append([]string{"policy", "organization"}, workload.SPECint92Names()...)
	t := stats.NewTable(
		fmt.Sprintf("Sensitivity: predictor organization, IPC (%d stages)", stages), cols...)
	for _, rw := range rows {
		out := []string{rw.pol.String(), rw.org.label}
		for _, ref := range rw.refs {
			out = append(out, stats.FormatFloat(engine.Get[multiscalar.Result](b, ref).IPC(), 2))
		}
		t.AddRow(out...)
	}
	t.Note = "Organizations are <table> <entries>e[/<ways>w] <counter bits>b; \"full 64e 3b\" is the configuration of every other table."
	return t, nil
}
