package experiments

import (
	"fmt"

	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/workload"
)

// Figure5PolicyComparison reproduces Figure 5: the IPC of the NEVER policy
// and the speedups (%) of ALWAYS, WAIT and PSYNC relative to NEVER, for 4-
// and 8-stage Multiscalar processors on the SPECint92 benchmarks.
func (r *Runner) Figure5PolicyComparison() (*stats.Table, error) {
	t := stats.NewTable("Figure 5: dependence speculation policies, speedup (%) over NEVER",
		"stages", "benchmark", "NEVER IPC", "ALWAYS", "WAIT", "PSYNC")
	for _, stages := range r.opts.Stages {
		for _, name := range workload.SPECint92Names() {
			never, err := r.Simulate(name, stages, policy.Never)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprint(stages), name, stats.FormatFloat(never.IPC(), 2)}
			for _, pol := range []policy.Kind{policy.Always, policy.Wait, policy.PerfectSync} {
				res, err := r.Simulate(name, stages, pol)
				if err != nil {
					return nil, err
				}
				row = append(row, stats.FormatSpeedup(res.SpeedupOver(never)))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Figure6MechanismSpeedup reproduces Figure 6: the speedup (%) of the
// proposed mechanism (SYNC and ESYNC predictors) and of perfect
// synchronization (PSYNC) over blind speculation (ALWAYS), for 4- and 8-stage
// configurations on the SPECint92 benchmarks.
func (r *Runner) Figure6MechanismSpeedup() (*stats.Table, error) {
	t := stats.NewTable("Figure 6: mechanism speedup (%) over blind speculation (ALWAYS)",
		"stages", "benchmark", "ALWAYS IPC", "SYNC", "ESYNC", "PSYNC")
	for _, stages := range r.opts.Stages {
		for _, name := range workload.SPECint92Names() {
			always, err := r.Simulate(name, stages, policy.Always)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprint(stages), name, stats.FormatFloat(always.IPC(), 2)}
			for _, pol := range []policy.Kind{policy.Sync, policy.ESync, policy.PerfectSync} {
				res, err := r.Simulate(name, stages, pol)
				if err != nil {
					return nil, err
				}
				row = append(row, stats.FormatSpeedup(res.SpeedupOver(always)))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Figure7Spec95 reproduces Figure 7: for the SPEC95 programs on an 8-stage
// Multiscalar processor, the IPC obtained with the ESYNC mechanism and the
// speedups of ESYNC and PSYNC over blind speculation.
func (r *Runner) Figure7Spec95() (*stats.Table, error) {
	t := stats.NewTable("Figure 7: SPEC95, 8-stage Multiscalar, speedup (%) over ALWAYS",
		"benchmark", "suite", "ESYNC IPC", "ESYNC", "PSYNC")
	const stages = 8
	for _, name := range workload.SPEC95Names() {
		always, err := r.Simulate(name, stages, policy.Always)
		if err != nil {
			return nil, err
		}
		esync, err := r.Simulate(name, stages, policy.ESync)
		if err != nil {
			return nil, err
		}
		psync, err := r.Simulate(name, stages, policy.PerfectSync)
		if err != nil {
			return nil, err
		}
		wl := workload.MustGet(name)
		t.AddRow(name, wl.Suite.String(),
			stats.FormatFloat(esync.IPC(), 2),
			stats.FormatSpeedup(esync.SpeedupOver(always)),
			stats.FormatSpeedup(psync.SpeedupOver(always)))
	}
	return t, nil
}
