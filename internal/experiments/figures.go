package experiments

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/stats"
	"memdep/internal/workload"
)

// Figure5PolicyComparison reproduces Figure 5: the IPC of the NEVER policy
// and the speedups (%) of ALWAYS, WAIT and PSYNC relative to NEVER, for 4-
// and 8-stage Multiscalar processors on the SPECint92 benchmarks.
func (r *Runner) Figure5PolicyComparison(ctx context.Context) (*stats.Table, error) {
	compared := []policy.Kind{policy.Always, policy.Wait, policy.PerfectSync}

	b := r.eng.NewBatch()
	type cell struct {
		stages int
		name   string
		never  engine.Ref
		pols   []engine.Ref
	}
	var cells []cell
	for _, stages := range r.opts.Stages {
		for _, name := range workload.SPECint92Names() {
			c := cell{stages: stages, name: name, never: b.Add(r.simSpec(name, stages, policy.Never))}
			for _, pol := range compared {
				c.pols = append(c.pols, b.Add(r.simSpec(name, stages, pol)))
			}
			cells = append(cells, c)
		}
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	t := stats.NewTable("Figure 5: dependence speculation policies, speedup (%) over NEVER",
		"stages", "benchmark", "NEVER IPC", "ALWAYS", "WAIT", "PSYNC")
	for _, c := range cells {
		never := engine.Get[multiscalar.Result](b, c.never)
		row := []string{fmt.Sprint(c.stages), c.name, stats.FormatFloat(never.IPC(), 2)}
		for _, ref := range c.pols {
			res := engine.Get[multiscalar.Result](b, ref)
			row = append(row, stats.FormatSpeedup(res.SpeedupOver(never)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure6MechanismSpeedup reproduces Figure 6: the speedup (%) of the
// proposed mechanism (SYNC and ESYNC predictors) and of perfect
// synchronization (PSYNC) over blind speculation (ALWAYS), for 4- and 8-stage
// configurations on the SPECint92 benchmarks.
func (r *Runner) Figure6MechanismSpeedup(ctx context.Context) (*stats.Table, error) {
	compared := []policy.Kind{policy.Sync, policy.ESync, policy.PerfectSync}

	b := r.eng.NewBatch()
	type cell struct {
		stages int
		name   string
		always engine.Ref
		pols   []engine.Ref
	}
	var cells []cell
	for _, stages := range r.opts.Stages {
		for _, name := range workload.SPECint92Names() {
			c := cell{stages: stages, name: name, always: b.Add(r.simSpec(name, stages, policy.Always))}
			for _, pol := range compared {
				c.pols = append(c.pols, b.Add(r.simSpec(name, stages, pol)))
			}
			cells = append(cells, c)
		}
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	t := stats.NewTable("Figure 6: mechanism speedup (%) over blind speculation (ALWAYS)",
		"stages", "benchmark", "ALWAYS IPC", "SYNC", "ESYNC", "PSYNC")
	for _, c := range cells {
		always := engine.Get[multiscalar.Result](b, c.always)
		row := []string{fmt.Sprint(c.stages), c.name, stats.FormatFloat(always.IPC(), 2)}
		for _, ref := range c.pols {
			res := engine.Get[multiscalar.Result](b, ref)
			row = append(row, stats.FormatSpeedup(res.SpeedupOver(always)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure7Spec95 reproduces Figure 7: for the SPEC95 programs on an 8-stage
// Multiscalar processor, the IPC obtained with the ESYNC mechanism and the
// speedups of ESYNC and PSYNC over blind speculation.
func (r *Runner) Figure7Spec95(ctx context.Context) (*stats.Table, error) {
	const stages = 8

	b := r.eng.NewBatch()
	type cell struct {
		name                 string
		always, esync, psync engine.Ref
	}
	var cells []cell
	for _, name := range workload.SPEC95Names() {
		cells = append(cells, cell{
			name:   name,
			always: b.Add(r.simSpec(name, stages, policy.Always)),
			esync:  b.Add(r.simSpec(name, stages, policy.ESync)),
			psync:  b.Add(r.simSpec(name, stages, policy.PerfectSync)),
		})
	}
	if err := b.Run(ctx); err != nil {
		return nil, err
	}

	t := stats.NewTable("Figure 7: SPEC95, 8-stage Multiscalar, speedup (%) over ALWAYS",
		"benchmark", "suite", "ESYNC IPC", "ESYNC", "PSYNC")
	for _, c := range cells {
		always := engine.Get[multiscalar.Result](b, c.always)
		esync := engine.Get[multiscalar.Result](b, c.esync)
		psync := engine.Get[multiscalar.Result](b, c.psync)
		wl := workload.MustGet(c.name)
		t.AddRow(c.name, wl.Suite.String(),
			stats.FormatFloat(esync.IPC(), 2),
			stats.FormatSpeedup(esync.SpeedupOver(always)),
			stats.FormatSpeedup(psync.SpeedupOver(always)))
	}
	return t, nil
}
