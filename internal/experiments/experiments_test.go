package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"memdep/internal/policy"
	"memdep/internal/workload"
)

func quickRunner() *Runner {
	return NewRunner(Quick())
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Stages) != 2 || o.Stages[0] != 4 || o.Stages[1] != 8 {
		t.Errorf("stages = %v", o.Stages)
	}
	if o.MDPTEntries != 64 {
		t.Errorf("entries = %d", o.MDPTEntries)
	}
	if Quick().MaxInstructions == 0 {
		t.Error("quick options must cap instructions")
	}
	if Full().MaxInstructions != 0 {
		t.Error("full options must not cap instructions")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := quickRunner()
	w1, err := r.WorkItem(context.Background(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := r.WorkItem(context.Background(), "compress")
	if w1 != w2 {
		t.Error("work items must be cached")
	}
	res1, err := r.Simulate(context.Background(), "compress", 4, policy.Always)
	if err != nil {
		t.Fatal(err)
	}
	executed := r.Engine().Executed()
	res2, _ := r.Simulate(context.Background(), "compress", 4, policy.Always)
	if res1.Cycles != res2.Cycles {
		t.Error("cached simulation must return the same result")
	}
	if r.Engine().Executed() != executed {
		t.Error("repeated simulation must be served from the engine cache")
	}
	// program + work item + one timing simulation.
	if n := r.Engine().CacheLen(); n != 3 {
		t.Errorf("engine cache has %d entries, want 3", n)
	}
	if _, err := r.Program(context.Background(), "no-such-benchmark"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestTable1(t *testing.T) {
	r := quickRunner()
	tab, err := r.Table1DynamicCounts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := len(workload.SPECint92Names()) + len(workload.SPEC95Names())
	if tab.NumRows() != want {
		t.Errorf("rows = %d, want %d", tab.NumRows(), want)
	}
	if !strings.Contains(tab.Render(), "compress") {
		t.Error("table must mention compress")
	}
}

func TestTable3And4Shapes(t *testing.T) {
	r := quickRunner()
	t3, err := r.Table3WindowMisspec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if t3.NumRows() != len(windowSizes()) {
		t.Fatalf("table 3 rows = %d", t3.NumRows())
	}
	t4, err := r.Table4StaticCoverage(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if t4.NumRows() != len(windowSizes()) {
		t.Fatalf("table 4 rows = %d", t4.NumRows())
	}
	// The number of static pairs covering 99.9% of mis-speculations at the
	// largest window must be small relative to the dynamic counts.
	last := t4.NumRows() - 1
	for col := 1; col <= len(workload.SPECint92Names()); col++ {
		n, err := strconv.Atoi(t4.Cell(last, col))
		if err != nil {
			t.Fatalf("cell not an integer: %q", t4.Cell(last, col))
		}
		if n > 500 {
			t.Errorf("column %d: %d static pairs for 99.9%% coverage, expected a small number", col, n)
		}
	}
}

func TestTable5MissRatesDecreaseWithDDCSize(t *testing.T) {
	r := quickRunner()
	tab, err := r.Table5DDCMissRate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in groups of three DDC sizes per window size; within each
	// group the miss rate must not increase with capacity.
	for g := 0; g < tab.NumRows(); g += 3 {
		for col := 2; col < 2+len(workload.SPECint92Names()); col++ {
			small, _ := strconv.ParseFloat(tab.Cell(g, col), 64)
			large, _ := strconv.ParseFloat(tab.Cell(g+2, col), 64)
			if large > small+1e-9 {
				t.Errorf("row group %d col %d: miss rate grew with DDC size (%v -> %v)",
					g, col, small, large)
			}
		}
	}
}

func TestTable6And9Consistency(t *testing.T) {
	r := quickRunner()
	t6, err := r.Table6MultiscalarMisspec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if t6.NumRows() != len(r.Options().Stages) {
		t.Errorf("table 6 rows = %d", t6.NumRows())
	}
	t9, err := r.Table9MisspecPerLoad(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Table 9: the mechanism rows (SYNC/ESYNC) must show lower
	// mis-speculation rates than the ALWAYS rows for most benchmarks.
	better := 0
	total := 0
	rowsPerStage := 3
	for s := 0; s < len(r.Options().Stages); s++ {
		base := s * rowsPerStage
		for col := 2; col < 2+len(workload.SPECint92Names()); col++ {
			always, _ := strconv.ParseFloat(t9.Cell(base, col), 64)
			sync, _ := strconv.ParseFloat(t9.Cell(base+1, col), 64)
			total++
			if sync <= always {
				better++
			}
		}
	}
	if better*2 < total {
		t.Errorf("SYNC reduced the mis-speculation rate in only %d/%d cases", better, total)
	}
}

func TestTable8PercentagesSum(t *testing.T) {
	r := quickRunner()
	tab, err := r.Table8PredictionBreakdown(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in groups of four categories; each benchmark column must sum
	// to ~100% within a group.
	for g := 0; g+3 < tab.NumRows(); g += 4 {
		for col := 3; col < 3+len(workload.SPECint92Names()); col++ {
			sum := 0.0
			for k := 0; k < 4; k++ {
				v, _ := strconv.ParseFloat(tab.Cell(g+k, col), 64)
				sum += v
			}
			if sum < 99.0 || sum > 101.0 {
				t.Errorf("group %d col %d: breakdown sums to %.2f%%", g, col, sum)
			}
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	r := quickRunner()
	tab, err := r.Figure5PolicyComparison(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(r.Options().Stages)*len(workload.SPECint92Names()) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// ALWAYS and PSYNC speedups over NEVER must be positive for every
	// benchmark (the paper's headline observation).
	for row := 0; row < tab.NumRows(); row++ {
		for _, col := range []int{3, 5} { // ALWAYS, PSYNC
			v := strings.TrimSuffix(strings.TrimPrefix(tab.Cell(row, col), "+"), "%")
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("cell %q not a speedup", tab.Cell(row, col))
			}
			if f <= 0 {
				t.Errorf("row %d (%s): %s speedup over NEVER is %v, want > 0",
					row, tab.Cell(row, 1), tab.Columns[col], f)
			}
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	r := quickRunner()
	tab, err := r.Figure6MechanismSpeedup(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() == 0 {
		t.Fatal("empty table")
	}
	// PSYNC (the ideal bound) must never be clearly below ALWAYS.
	for row := 0; row < tab.NumRows(); row++ {
		v := strings.TrimSuffix(strings.TrimPrefix(tab.Cell(row, 5), "+"), "%")
		f, _ := strconv.ParseFloat(v, 64)
		if f < -2.0 {
			t.Errorf("row %d (%s): PSYNC %v%% below ALWAYS", row, tab.Cell(row, 1), f)
		}
	}
}

func TestLookupAndAll(t *testing.T) {
	all := All()
	if len(all) < 14 {
		t.Fatalf("experiments = %d, want >= 14", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, id := range []string{"table3", "figure5", "figure7", "ablation-tagging"} {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("table99"); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestSensitivitySweepShape checks the predictor-organization sweep: one row
// per policy × organization, the baseline row present, and every cell a
// positive IPC.
func TestSensitivitySweepShape(t *testing.T) {
	r := quickRunner()
	tab, err := r.SensitivityPredictorOrg(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(sensitivityPolicies()) * len(sensitivityOrgs())
	if tab.NumRows() != wantRows {
		t.Fatalf("rows = %d, want %d", tab.NumRows(), wantRows)
	}
	if !strings.Contains(tab.Render(), "full 64e 3b") {
		t.Error("the paper's baseline organization must appear in the sweep")
	}
	for row := 0; row < tab.NumRows(); row++ {
		for col := 2; col < 2+len(workload.SPECint92Names()); col++ {
			ipc, err := strconv.ParseFloat(tab.Cell(row, col), 64)
			if err != nil || ipc <= 0 {
				t.Errorf("row %d col %d: IPC cell %q", row, col, tab.Cell(row, col))
			}
		}
	}
}

// TestSensitivityBaselineMatchesAblation cross-checks the sweep against the
// standard grid: the sweep's fully-associative 64-entry 3-bit row is the same
// configuration as the plain 8-stage simulation, so the IPCs must agree.
func TestSensitivityBaselineMatchesAblation(t *testing.T) {
	r := quickRunner()
	tab, err := r.SensitivityPredictorOrg(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for col, name := range workload.SPECint92Names() {
		res, err := r.Simulate(context.Background(), name, 8, policy.Sync)
		if err != nil {
			t.Fatal(err)
		}
		want := tab.Cell(0, 2+col) // first row is SYNC / full 64e 3b
		got := strconv.FormatFloat(res.IPC(), 'f', 2, 64)
		if got != want {
			t.Errorf("%s: sweep baseline IPC %s != standard grid IPC %s", name, want, got)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow; skipped in -short mode")
	}
	r := quickRunner()
	if _, err := r.AblationTagging(context.Background()); err != nil {
		t.Errorf("tagging ablation: %v", err)
	}
	if _, err := r.AblationPredictor(context.Background()); err != nil {
		t.Errorf("predictor ablation: %v", err)
	}
}
