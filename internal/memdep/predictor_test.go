package memdep

import (
	"fmt"
	"reflect"
	"testing"
)

// allTableKinds returns every defined organization.
func allTableKinds() []TableKind {
	return []TableKind{TableFullAssoc, TableSetAssoc, TableStoreSet}
}

func TestTableKindStringParseRoundTrip(t *testing.T) {
	for _, k := range allTableKinds() {
		got, err := ParseTableKind(k.String())
		if err != nil {
			t.Errorf("ParseTableKind(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("ParseTableKind(String(%v)) = %v", k, got)
		}
		if !k.Valid() {
			t.Errorf("%v must be valid", k)
		}
	}
	// Case-insensitive, like policy.Parse.
	for name, want := range map[string]TableKind{"FULL": TableFullAssoc, "SetAssoc": TableSetAssoc, " storeset ": TableStoreSet} {
		if got, err := ParseTableKind(name); err != nil || got != want {
			t.Errorf("ParseTableKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseTableKind("bogus"); err == nil {
		t.Error("unknown table kind must fail to parse")
	}
	if TableKind(42).Valid() {
		t.Error("out-of-range table kind must be invalid")
	}
	if TableKind(42).String() == "" {
		t.Error("unknown table kind must produce a string")
	}
}

func TestNewPredictorSelectsOrganization(t *testing.T) {
	for _, k := range allTableKinds() {
		p := NewPredictor(Config{Entries: 16, Table: k})
		if p.Kind() != k {
			t.Errorf("NewPredictor(%v).Kind() = %v", k, p.Kind())
		}
	}
	if _, ok := NewPredictor(Config{}).(*MDPT); !ok {
		t.Error("default organization must be the fully associative MDPT")
	}
	if _, ok := NewPredictor(Config{Table: TableSetAssoc}).(*SetAssocMDPT); !ok {
		t.Error("TableSetAssoc must build a SetAssocMDPT")
	}
	if _, ok := NewPredictor(Config{Table: TableStoreSet}).(*StoreSetPredictor); !ok {
		t.Error("TableStoreSet must build a StoreSetPredictor")
	}
}

// TestPredictorConformance drives every organization through the same
// learn/lookup/strengthen/weaken/reset scenario.
func TestPredictorConformance(t *testing.T) {
	for _, kind := range allTableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p := NewPredictor(Config{Entries: 16, SyncSlots: 4, Predictor: PredictSync, Table: kind, Ways: 4})
			pair := PairKey{LoadPC: 0x400, StorePC: 0x200}

			if _, ok := p.Lookup(pair); ok {
				t.Fatal("empty table must not contain the pair")
			}
			if got := p.MatchesForLoad(pair.LoadPC, nil); len(got) != 0 {
				t.Fatalf("empty table matched: %v", got)
			}

			p.RecordMisspeculation(pair, 2, 0x1000)
			pred, ok := p.Lookup(pair)
			if !ok {
				t.Fatal("pair must be present after a mis-speculation")
			}
			if pred.Pair != pair || pred.Dist != 2 || pred.StoreTaskPC != 0x1000 {
				t.Errorf("prediction = %+v", pred)
			}
			if !pred.Sync {
				t.Error("freshly allocated entry must predict synchronization")
			}

			ld := p.MatchesForLoad(pair.LoadPC, nil)
			if len(ld) != 1 || ld[0].Pair != pair {
				t.Errorf("load matches = %v", ld)
			}
			st := p.MatchesForStore(pair.StorePC, nil)
			if len(st) != 1 || st[0].Pair != pair || st[0].Dist != 2 {
				t.Errorf("store matches = %v", st)
			}

			// Counters saturate in [0, 7] and cross the threshold both ways.
			for i := 0; i < 20; i++ {
				p.Strengthen(pair)
			}
			if pred, _ = p.Lookup(pair); pred.Counter != 7 {
				t.Errorf("counter = %d, want saturation at 7", pred.Counter)
			}
			for i := 0; i < 20; i++ {
				p.Weaken(pair)
			}
			if pred, _ = p.Lookup(pair); pred.Counter != 0 || pred.Sync {
				t.Errorf("fully weakened entry = %+v, want counter 0, no sync", pred)
			}

			// Strengthen/Weaken of unknown pairs must not allocate.
			before := p.Len()
			p.Strengthen(PairKey{LoadPC: 0x9999, StorePC: 0x8888})
			p.Weaken(PairKey{LoadPC: 0x9999, StorePC: 0x8888})
			if p.Len() != before {
				t.Error("strengthen/weaken of unknown pairs must not allocate")
			}

			p.Reset()
			if p.Len() != 0 {
				t.Error("reset must clear entries")
			}
			if p.Stats() != (MDPTStats{}) {
				t.Errorf("reset must clear stats: %+v", p.Stats())
			}
		})
	}
}

// TestMatchesBufferNotInvalidated is the regression test for the
// scratch-slice aliasing hazard: with the old scratch-backed API, the second
// MatchesForLoad call overwrote the backing array of the first call's result.
// With the append-into-caller-buffer API, results held by the caller must
// stay intact across any number of subsequent lookups on the same table.
func TestMatchesBufferNotInvalidated(t *testing.T) {
	for _, kind := range allTableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p := NewPredictor(Config{Entries: 16, Predictor: PredictSync, Table: kind, Ways: 4})
			a := PairKey{LoadPC: 0x100, StorePC: 0x80}
			b := PairKey{LoadPC: 0x200, StorePC: 0x90}
			p.RecordMisspeculation(a, 1, 0xAAAA)
			p.RecordMisspeculation(b, 3, 0xBBBB)

			first := p.MatchesForLoad(a.LoadPC, nil)
			held := append([]Prediction(nil), first...)
			// Interleave lookups that used to clobber the scratch backing.
			p.MatchesForLoad(b.LoadPC, nil)
			p.MatchesForStore(b.StorePC, nil)
			p.MatchesForLoad(b.LoadPC, nil)
			if !reflect.DeepEqual(first, held) {
				t.Errorf("held result invalidated by later lookups:\nheld %+v\nnow  %+v", held, first)
			}
			if len(first) != 1 || first[0].Pair != a {
				t.Errorf("first lookup = %+v, want the %v entry", first, a)
			}

			// Appending into one shared buffer accumulates both results.
			buf := p.MatchesForLoad(a.LoadPC, nil)
			buf = p.MatchesForLoad(b.LoadPC, buf)
			if len(buf) != 2 {
				t.Errorf("accumulated buffer = %+v, want 2 predictions", buf)
			}
		})
	}
}

// TestPredictorCapacityPressure fills every organization far past capacity
// and checks the replacement machinery: Len never exceeds Capacity and the
// allocation/replacement counters account for the evictions.
func TestPredictorCapacityPressure(t *testing.T) {
	for _, kind := range allTableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p := NewPredictor(Config{Entries: 8, Predictor: PredictSync, Table: kind, Ways: 2})
			const n = 64
			for i := 0; i < n; i++ {
				pair := PairKey{LoadPC: uint64(0x1000 + 16*i), StorePC: uint64(0x2000 + 16*i)}
				p.RecordMisspeculation(pair, 1, 0)
				if p.Len() > p.Capacity() {
					t.Fatalf("after %d inserts: Len %d exceeds Capacity %d", i+1, p.Len(), p.Capacity())
				}
			}
			st := p.Stats()
			if st.Allocations == 0 || st.Replacements == 0 {
				t.Errorf("pressure must allocate and replace: %+v", st)
			}
			if st.LiveEntries != p.Len() {
				t.Errorf("LiveEntries %d != Len %d", st.LiveEntries, p.Len())
			}
			if p.Len() > p.Capacity() {
				t.Errorf("Len %d exceeds Capacity %d", p.Len(), p.Capacity())
			}
		})
	}
}

// TestSetAssocLRUWithinSet pins the per-set LRU policy: with 2 ways, three
// pairs that index the same set evict the least recently touched way.
func TestSetAssocLRUWithinSet(t *testing.T) {
	m := NewSetAssocMDPT(Config{Entries: 8, Ways: 2, Predictor: PredictSync, Table: TableSetAssoc})
	if m.Sets() != 4 || m.Ways() != 2 {
		t.Fatalf("geometry = %d sets × %d ways, want 4×2", m.Sets(), m.Ways())
	}
	// Load PCs 16k all index set 0 ((pc>>2) % 4 == 0).
	pairs := []PairKey{
		{LoadPC: 0x10, StorePC: 0x200},
		{LoadPC: 0x20, StorePC: 0x204},
		{LoadPC: 0x30, StorePC: 0x208},
	}
	m.RecordMisspeculation(pairs[0], 1, 0)
	m.RecordMisspeculation(pairs[1], 1, 0)
	// Touch pair 0 so pair 1 is the set's LRU way.
	m.MatchesForLoad(pairs[0].LoadPC, nil)
	m.RecordMisspeculation(pairs[2], 1, 0)

	if _, ok := m.Lookup(pairs[1]); ok {
		t.Error("LRU way (pair 1) should have been evicted")
	}
	if _, ok := m.Lookup(pairs[0]); !ok {
		t.Error("recently used way (pair 0) should survive")
	}
	if _, ok := m.Lookup(pairs[2]); !ok {
		t.Error("newly allocated pair must be present")
	}
	st := m.Stats()
	if st.Allocations != 3 || st.Replacements != 1 {
		t.Errorf("stats = %+v, want 3 allocations / 1 replacement", st)
	}
	// The evicted entry must also be gone from the store-side index.
	if got := m.MatchesForStore(pairs[1].StorePC, nil); len(got) != 0 {
		t.Errorf("evicted entry still visible through the store index: %v", got)
	}
	if got := m.MatchesForStore(pairs[0].StorePC, nil); len(got) != 1 {
		t.Errorf("surviving entry missing from the store index: %v", got)
	}
}

// TestConstructorsImplyTheirOrganization: the exported constructors must
// honour cfg.Ways even when the caller leaves cfg.Table at its zero value
// (the full-assoc normalization would otherwise silently zero it).
func TestConstructorsImplyTheirOrganization(t *testing.T) {
	m := NewSetAssocMDPT(Config{Entries: 64, Ways: 1})
	if m.Ways() != 1 || m.Sets() != 64 {
		t.Errorf("geometry = %d sets × %d ways, want 64×1", m.Sets(), m.Ways())
	}
	if NewSetAssocMDPT(Config{Entries: 64}).Ways() != 4 {
		t.Error("unset ways must default to 4")
	}
	if got := NewStoreSetPredictor(Config{Entries: 64, Ways: 2}).Capacity(); got != 32 {
		t.Errorf("store-set pool = %d sets, want 64/2 = 32", got)
	}
}

// TestStoreSetStrengthensCountsOnlyKnownPairs aligns the Stats bookkeeping
// with the pair tables: a first mis-speculation is an allocation, not a
// strengthen; only a repeat of an already-known pair strengthens.
func TestStoreSetStrengthensCountsOnlyKnownPairs(t *testing.T) {
	p := NewStoreSetPredictor(Config{Entries: 16, Ways: 4})
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	p.RecordMisspeculation(pair, 1, 0)
	if st := p.Stats(); st.Allocations != 1 || st.Strengthens != 0 {
		t.Errorf("after first mis-speculation: %+v, want 1 allocation / 0 strengthens", st)
	}
	p.RecordMisspeculation(pair, 1, 0)
	if st := p.Stats(); st.Strengthens != 1 {
		t.Errorf("after repeat mis-speculation: %+v, want 1 strengthen", st)
	}
}

// TestSetAssocIsolatedSets checks that pairs in different sets do not evict
// each other and that load lookups only probe the indexed set.
func TestSetAssocIsolatedSets(t *testing.T) {
	m := NewSetAssocMDPT(Config{Entries: 8, Ways: 2, Predictor: PredictSync, Table: TableSetAssoc})
	// One pair per set: load PCs 4k index sets 0..3.
	for i := 0; i < 4; i++ {
		m.RecordMisspeculation(PairKey{LoadPC: uint64(4 * i), StorePC: uint64(0x100 + 4*i)}, 1, 0)
	}
	for i := 0; i < 4; i++ {
		pair := PairKey{LoadPC: uint64(4 * i), StorePC: uint64(0x100 + 4*i)}
		if _, ok := m.Lookup(pair); !ok {
			t.Errorf("pair %v lost despite spare capacity in its set", pair)
		}
		if got := m.MatchesForLoad(pair.LoadPC, nil); len(got) != 1 || got[0].Pair != pair {
			t.Errorf("MatchesForLoad(%#x) = %v", pair.LoadPC, got)
		}
	}
	if m.Stats().Replacements != 0 {
		t.Errorf("replacements = %d, want 0", m.Stats().Replacements)
	}
}

// TestStoreSetMergesRelatedDependences checks the defining behaviour of the
// store-set organization: dependences that share a load (or a store) collapse
// into one set, so lookups generalize across the set's members.
func TestStoreSetMergesRelatedDependences(t *testing.T) {
	p := NewStoreSetPredictor(Config{Entries: 16, Ways: 4, Predictor: PredictSync, Table: TableStoreSet})
	ld1, ld2 := uint64(0x400), uint64(0x500)
	st1, st2 := uint64(0x200), uint64(0x300)

	// ld1 mis-speculates against both stores: one set with two store members.
	p.RecordMisspeculation(PairKey{LoadPC: ld1, StorePC: st1}, 1, 0xA)
	p.RecordMisspeculation(PairKey{LoadPC: ld1, StorePC: st2}, 2, 0xB)
	got := p.MatchesForLoad(ld1, nil)
	if len(got) != 2 {
		t.Fatalf("load matches = %v, want predictions for both stores", got)
	}
	if got[0].Pair.StorePC != st1 || got[0].Dist != 1 || got[1].Pair.StorePC != st2 || got[1].Dist != 2 {
		t.Errorf("per-store state lost: %+v", got)
	}

	// ld2 mis-speculates against st1 in a fresh interaction: it must join the
	// existing set, so st1 now matches both loads.
	p.RecordMisspeculation(PairKey{LoadPC: ld2, StorePC: st1}, 3, 0xC)
	stMatches := p.MatchesForStore(st1, nil)
	if len(stMatches) != 2 {
		t.Fatalf("store matches = %v, want both member loads", stMatches)
	}
	for _, m := range stMatches {
		if m.Dist != 3 {
			t.Errorf("store member distance = %d, want the updated 3", m.Dist)
		}
	}
	if p.Len() != 1 {
		t.Errorf("live sets = %d, want 1 merged set", p.Len())
	}

	// The generalized pair (ld2, st2) is now predicted too -- the store-set
	// trade-off this organization exists to study.
	if _, ok := p.Lookup(PairKey{LoadPC: ld2, StorePC: st2}); !ok {
		t.Error("members of one set must predict against all its stores")
	}
}

// TestStoreSetMergeOfTwoSets merges two established sets through a bridging
// mis-speculation and checks the SSIT remapping.
func TestStoreSetMergeOfTwoSets(t *testing.T) {
	p := NewStoreSetPredictor(Config{Entries: 16, Ways: 4, Predictor: PredictSync, Table: TableStoreSet})
	p.RecordMisspeculation(PairKey{LoadPC: 0x100, StorePC: 0x10}, 1, 0)
	p.RecordMisspeculation(PairKey{LoadPC: 0x200, StorePC: 0x20}, 1, 0)
	if p.Len() != 2 {
		t.Fatalf("live sets = %d, want 2 before the merge", p.Len())
	}
	// Bridge: the first load against the second store.
	p.RecordMisspeculation(PairKey{LoadPC: 0x100, StorePC: 0x20}, 2, 0)
	if p.Len() != 1 {
		t.Errorf("live sets = %d, want 1 after the merge", p.Len())
	}
	// Every original member must be reachable in the merged set.
	for _, pair := range []PairKey{
		{LoadPC: 0x100, StorePC: 0x10},
		{LoadPC: 0x200, StorePC: 0x10},
		{LoadPC: 0x100, StorePC: 0x20},
		{LoadPC: 0x200, StorePC: 0x20},
	} {
		if _, ok := p.Lookup(pair); !ok {
			t.Errorf("pair %v not reachable after merge", pair)
		}
	}
}

// TestConfigValidation is the table-driven config-validation test: raw
// configurations that are inconsistent must be rejected by Validate, and
// withDefaults must clamp what it documents to clamp.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"zero value", Config{}, false},
		{"paper default", DefaultConfig(4), false},
		{"explicit counter bits", Config{CounterBits: 5, Threshold: 20}, false},
		{"threshold beyond counter", Config{CounterBits: 2, Threshold: 5}, true},
		{"threshold at saturation", Config{CounterBits: 2, Threshold: 3}, false},
		{"initial counter beyond saturation", Config{CounterBits: 3, InitialCounter: 9}, true},
		{"initial counter at saturation", Config{CounterBits: 3, InitialCounter: 7}, false},
		{"counter bits absurd", Config{CounterBits: 40}, true},
		{"invalid table kind", Config{Table: TableKind(9)}, true},
		{"set assoc defaults", Config{Table: TableSetAssoc}, false},
		{"ways beyond entries clamped", Config{Table: TableSetAssoc, Entries: 8, Ways: 100}, false},
		{"store set defaults", Config{Table: TableStoreSet}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr && err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tc.cfg)
			}
			if !tc.wantErr && err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", tc.cfg, err)
			}
		})
	}
}

// TestConfigDefaultsClamp pins the clamping contract of withDefaults: a
// constructed table can never be born stronger than its counter saturates
// at, whatever the raw configuration said.
func TestConfigDefaultsClamp(t *testing.T) {
	// CounterBits <= 0 takes the default width instead of a zero-range
	// counter (the old hazard: counterMax() == 0 with InitialCounter > 0).
	c := Config{CounterBits: 0, InitialCounter: 9}.withDefaults()
	if c.CounterBits != 3 {
		t.Errorf("CounterBits = %d, want default 3", c.CounterBits)
	}
	if c.InitialCounter > c.counterMax() {
		t.Errorf("InitialCounter %d exceeds saturation %d", c.InitialCounter, c.counterMax())
	}
	// A 1-bit counter clamps the default initial value of threshold+1.
	c = Config{CounterBits: 1, Threshold: 1}.withDefaults()
	if c.InitialCounter != 1 {
		t.Errorf("InitialCounter = %d, want clamped to 1", c.InitialCounter)
	}
	// Every constructed organization starts its entries at or below max.
	for _, kind := range allTableKinds() {
		p := NewPredictor(Config{Entries: 8, CounterBits: 1, Threshold: 1, InitialCounter: 9, Table: kind})
		pair := PairKey{LoadPC: 0x10, StorePC: 0x20}
		p.RecordMisspeculation(pair, 1, 0)
		pred, ok := p.Lookup(pair)
		if !ok {
			t.Fatalf("%v: pair missing", kind)
		}
		if pred.Counter > 1 {
			t.Errorf("%v: entry born at counter %d, saturation is 1", kind, pred.Counter)
		}
	}
	// Ways normalization: ignored (zeroed) for the fully associative table,
	// defaulted and clamped otherwise.
	if c := (Config{Table: TableFullAssoc, Ways: 8}).withDefaults(); c.Ways != 0 {
		t.Errorf("full-assoc Ways = %d, want normalized 0", c.Ways)
	}
	if c := (Config{Table: TableSetAssoc}).withDefaults(); c.Ways != 4 {
		t.Errorf("set-assoc default Ways = %d, want 4", c.Ways)
	}
	if c := (Config{Table: TableSetAssoc, Entries: 2, Ways: 64}).withDefaults(); c.Ways != 2 {
		t.Errorf("set-assoc Ways = %d, want clamped to Entries", c.Ways)
	}
}

// TestSystemAcrossOrganizations drives the full System protocol (learn, wait,
// signal, release) over every organization: the synchronization behaviour of
// the paper's working example must be organization-independent.
func TestSystemAcrossOrganizations(t *testing.T) {
	for _, kind := range allTableKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			s := NewSystem(Config{Entries: 16, SyncSlots: 4, Predictor: PredictSync, Table: kind, Ways: 4})
			if s.Predictor().Kind() != kind {
				t.Fatalf("system predictor kind = %v", s.Predictor().Kind())
			}
			pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
			s.RecordMisspeculation(pair, 1, 0x1000)

			d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 11})
			if !d.Predicted || !d.Wait {
				t.Fatalf("load must be predicted and wait: %+v", d)
			}
			sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: 6, STID: 21, TaskPC: 0x1000})
			if !sd.Matched || len(sd.ReleasedLoads) != 1 || sd.ReleasedLoads[0] != 11 {
				t.Fatalf("store decision = %+v, want release of load 11", sd)
			}
			if s.MDST().HasWaiter(11) {
				t.Error("no waiter must remain after the signal")
			}
		})
	}
}

// ExamplePredictor shows the append-into-buffer lookup contract shared by all
// organizations.
func ExamplePredictor() {
	p := NewPredictor(Config{Entries: 16, Predictor: PredictSync, Table: TableSetAssoc, Ways: 4})
	p.RecordMisspeculation(PairKey{LoadPC: 0x400, StorePC: 0x200}, 1, 0)

	var buf []Prediction
	buf = p.MatchesForLoad(0x400, buf[:0])
	fmt.Printf("%s: %d match, sync=%v\n", p.Kind(), len(buf), buf[0].Sync)
	// Output: setassoc: 1 match, sync=true
}
