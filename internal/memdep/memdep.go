// Package memdep implements the paper's primary contribution: dynamic memory
// dependence prediction and synchronization.
//
// The package provides:
//
//   - MDPT, the memory dependence prediction table (section 4.1): identifies
//     static store→load pairs whose dynamic instances have caused
//     mis-speculations and predicts whether future instances should be
//     synchronized.
//   - MDST, the memory dependence synchronization table (section 4.2): a pool
//     of condition variables (full/empty flags) used to synchronize a dynamic
//     instance of a predicted store→load pair.
//   - System, the combined structure evaluated in section 5.5 of the paper
//     (one prediction entry carrying one synchronization slot per stage),
//     which is the interface the Multiscalar timing simulator drives.
//   - Predictors: always-synchronize, the 3-bit up/down counter ("SYNC") and
//     the counter enhanced with the producing task's PC ("ESYNC").
//   - DDC, the data dependence cache used by the dependence-locality studies
//     of section 5.3 (Tables 5 and 7).
//
// Dynamic instances of a static dependence are distinguished with the
// dependence-distance scheme of section 3: instance numbers are approximated
// by Multiscalar task numbers, and an MDPT entry records the distance between
// the mis-speculated store and load instances.  The data-address tagging
// alternative the paper sketches is available behind Config.TagByAddress for
// ablation studies.
package memdep

import (
	"fmt"
	"sort"
	"strings"
)

// PairKey identifies a static dependence edge by the program counters of the
// load and the store.
type PairKey struct {
	LoadPC  uint64
	StorePC uint64
}

// String implements fmt.Stringer.
func (k PairKey) String() string {
	return fmt.Sprintf("(st@%#x -> ld@%#x)", k.StorePC, k.LoadPC)
}

// MarshalText implements encoding.TextMarshaler with a compact "st@0x..->
// ld@0x.." spelling, which is what lets maps keyed by PairKey (mis-speculation
// counts, DDC studies) encode directly to JSON objects.
func (k PairKey) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("st@%#x->ld@%#x", k.StorePC, k.LoadPC)), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, inverting MarshalText.
func (k *PairKey) UnmarshalText(text []byte) error {
	var st, ld uint64
	if _, err := fmt.Sscanf(string(text), "st@0x%x->ld@0x%x", &st, &ld); err != nil {
		return fmt.Errorf("memdep: malformed pair key %q: %w", text, err)
	}
	k.StorePC, k.LoadPC = st, ld
	return nil
}

// PairCount couples a static dependence pair with an observed event count.
type PairCount struct {
	Pair PairKey
	N    uint64
}

// SortedPairCounts flattens a pair→count map into a slice ordered by
// decreasing count, with ties broken by store then load PC so the order is
// deterministic across runs.
func SortedPairCounts(counts map[PairKey]uint64) []PairCount {
	out := make([]PairCount, 0, len(counts))
	for k, v := range counts {
		out = append(out, PairCount{Pair: k, N: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		if out[i].Pair.StorePC != out[j].Pair.StorePC {
			return out[i].Pair.StorePC < out[j].Pair.StorePC
		}
		return out[i].Pair.LoadPC < out[j].Pair.LoadPC
	})
	return out
}

// PredictorKind selects the prediction policy attached to MDPT entries.
type PredictorKind int

const (
	// PredictAlways omits the prediction field: any matching entry predicts
	// synchronization (section 4.1 notes the field is optional).
	PredictAlways PredictorKind = iota
	// PredictSync is the baseline 3-bit up/down saturating counter with a
	// threshold of 3 ("SYNC" in section 5.5).
	PredictSync
	// PredictESync is the enhanced predictor: the counter plus the PC of the
	// task that issued the store; synchronization is enforced only when the
	// task at the recorded dependence distance matches ("ESYNC").
	PredictESync
)

// String implements fmt.Stringer.
func (k PredictorKind) String() string {
	switch k {
	case PredictAlways:
		return "ALWAYS-SYNC"
	case PredictSync:
		return "SYNC"
	case PredictESync:
		return "ESYNC"
	default:
		return fmt.Sprintf("predictor(%d)", int(k))
	}
}

// ParsePredictorKind parses the String spellings of the prediction policies
// ("ALWAYS-SYNC", "SYNC", "ESYNC"), case-insensitively.
func ParsePredictorKind(s string) (PredictorKind, error) {
	n := strings.ToUpper(strings.TrimSpace(s))
	for k := PredictAlways; k <= PredictESync; k++ {
		if k.String() == n {
			return k, nil
		}
	}
	return 0, fmt.Errorf("memdep: unknown predictor kind %q", s)
}

// MarshalText implements encoding.TextMarshaler using the String spelling.
func (k PredictorKind) MarshalText() ([]byte, error) {
	if k < PredictAlways || k > PredictESync {
		return nil, fmt.Errorf("memdep: cannot marshal invalid predictor kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParsePredictorKind.
func (k *PredictorKind) UnmarshalText(text []byte) error {
	v, err := ParsePredictorKind(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Config describes a prediction/synchronization system.
type Config struct {
	// Entries is the number of MDPT entries (the paper evaluates 64).
	Entries int
	// SyncSlots is the number of MDST entries carried per prediction entry in
	// the combined structure -- one per stage in the paper's evaluated
	// configuration.
	SyncSlots int
	// Predictor selects the prediction policy.
	Predictor PredictorKind
	// Table selects the prediction-table organization (default: the paper's
	// fully associative MDPT).
	Table TableKind
	// Ways is the associativity of the set-associative organization and the
	// per-set member bound of the store-set organization (default 4, clamped
	// to Entries).  Ignored -- and normalized to zero -- for the fully
	// associative table.
	Ways int
	// CounterBits is the width of the up/down counter (default 3).
	CounterBits int
	// Threshold is the counter value at or above which a dependence (and
	// hence synchronization) is predicted (default 3).
	Threshold int
	// InitialCounter is the counter value given to a newly allocated entry
	// (default Threshold+1, so a fresh mis-speculation predicts
	// synchronization with a little hysteresis).  Values above the counter's
	// saturation point are clamped by withDefaults and reported by Validate:
	// an entry must never be born stronger than the counter can represent.
	InitialCounter int
	// TagByAddress switches dynamic-instance tagging from the dependence
	// distance scheme to the data-address scheme (ablation).
	TagByAddress bool
}

// DefaultConfig returns the configuration evaluated in the paper: a 64-entry
// combined table with as many synchronization slots per entry as stages and
// the 3-bit counter predictor.
func DefaultConfig(stages int) Config {
	if stages < 1 {
		stages = 1
	}
	return Config{
		Entries:     64,
		SyncSlots:   stages,
		Predictor:   PredictSync,
		CounterBits: 3,
		Threshold:   3,
	}
}

// maxCounterBits bounds the counter width so 1<<CounterBits cannot overflow.
const maxCounterBits = 16

// withDefaults fills unset fields and clamps inconsistent ones.  Clamping is
// deliberately forgiving (a constructed table always behaves sanely);
// Validate reports the raw inconsistencies for callers that want an error
// instead of a silent repair.
func (c Config) withDefaults() Config {
	if c.Entries <= 0 {
		c.Entries = 64
	}
	if c.SyncSlots <= 0 {
		c.SyncSlots = 4
	}
	if c.CounterBits <= 0 {
		c.CounterBits = 3
	}
	if c.CounterBits > maxCounterBits {
		c.CounterBits = maxCounterBits
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.InitialCounter <= 0 {
		c.InitialCounter = c.Threshold + 1
	}
	if max := c.counterMax(); c.InitialCounter > max {
		// An entry must not be born stronger than the counter saturates at.
		c.InitialCounter = max
	}
	if c.Table == TableFullAssoc {
		c.Ways = 0 // ignored; normalized so equivalent configs share cache keys
	} else {
		if c.Ways <= 0 {
			c.Ways = 4
		}
		if c.Ways > c.Entries {
			c.Ways = c.Entries
		}
	}
	return c
}

// Effective returns the configuration a table built from c actually runs
// with: defaults applied and inconsistent fields clamped.  Tools that echo a
// configuration should report these values, not the raw inputs.
func (c Config) Effective() Config { return c.withDefaults() }

// counterMax returns the saturation value of the up/down counter.
func (c Config) counterMax() int { return (1 << c.CounterBits) - 1 }

// syncPredicted applies the prediction policy to a counter value.
func (c Config) syncPredicted(counter int) bool {
	if c.Predictor == PredictAlways {
		return true
	}
	return counter >= c.Threshold
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CounterBits > maxCounterBits {
		return fmt.Errorf("memdep: %d counter bits is unreasonably wide (max %d)",
			c.CounterBits, maxCounterBits)
	}
	d := c.withDefaults()
	if !d.Table.Valid() {
		return fmt.Errorf("memdep: invalid predictor table %d", int(d.Table))
	}
	if d.Threshold > d.counterMax() {
		return fmt.Errorf("memdep: threshold %d does not fit in %d counter bits",
			d.Threshold, d.CounterBits)
	}
	// Report the raw inconsistency that withDefaults silently clamps: an
	// explicitly requested InitialCounter beyond saturation is a misconfig.
	if c.InitialCounter > d.counterMax() {
		return fmt.Errorf("memdep: initial counter %d exceeds the %d-bit saturation value %d",
			c.InitialCounter, d.CounterBits, d.counterMax())
	}
	return nil
}
