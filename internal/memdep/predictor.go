package memdep

import (
	"fmt"
	"strings"
)

// Predictor is the interface of a memory dependence prediction table.  The
// MDPT of the paper (section 4.1) is one organization of it; the package
// provides three:
//
//   - MDPT: the fully associative, LRU-managed table evaluated in the paper
//     (TableFullAssoc, the default)
//   - SetAssocMDPT: a set-associative, load-PC-indexed organization with
//     per-set LRU and O(ways) lookups (TableSetAssoc)
//   - StoreSetPredictor: a store-set-style organization that groups the
//     loads and stores of transitively related dependences into one set with
//     a shared confidence counter (TableStoreSet)
//
// All implementations are driven through the same dynamic events: lookups on
// load/store issue, learning on mis-speculation, and non-speculative
// strengthen/weaken updates on commit and release.
//
// MatchesForLoad and MatchesForStore append into a caller-owned buffer and
// return the extended slice.  Because the predictor never retains or reuses
// the buffer, results held by the caller stay intact across subsequent calls
// -- the earlier scratch-slice contract ("valid until the next call") is
// gone, and with it the aliasing hazard it carried.  Callers that want an
// allocation-free hot path pass a reusable buffer (see System).
type Predictor interface {
	// Kind reports the table organization.
	Kind() TableKind
	// MatchesForLoad appends the predictions of all valid entries whose load
	// PC matches (a load may have multiple static dependences, section 4.4.4)
	// and returns the extended slice.  Matching entries are touched for LRU.
	MatchesForLoad(loadPC uint64, dst []Prediction) []Prediction
	// MatchesForStore appends the predictions of all valid entries whose
	// store PC matches and returns the extended slice.
	MatchesForStore(storePC uint64, dst []Prediction) []Prediction
	// Lookup returns the prediction state for the exact static pair, if
	// present.  It does not touch the entry.
	Lookup(pair PairKey) (Prediction, bool)
	// RecordMisspeculation allocates an entry for the pair (or strengthens an
	// existing one).  dist is the dependence distance and storeTaskPC
	// identifies the task that issued the store (used by ESYNC).
	RecordMisspeculation(pair PairKey, dist uint64, storeTaskPC uint64)
	// Strengthen increases the confidence of the pair's entry; unknown pairs
	// are ignored.
	Strengthen(pair PairKey)
	// Weaken decreases the confidence of the pair's entry; unknown pairs are
	// ignored.
	Weaken(pair PairKey)
	// Len returns the number of live entries (valid entries for the pair
	// tables, valid sets for the store-set organization).
	Len() int
	// Capacity returns the table's capacity in the same unit as Len.
	Capacity() int
	// Stats returns a snapshot of the table's counters.
	Stats() MDPTStats
	// Reset invalidates all entries and clears the counters.
	Reset()
}

// TableKind selects the prediction-table organization.
type TableKind int

const (
	// TableFullAssoc is the paper's fully associative, LRU-managed MDPT
	// (the default).
	TableFullAssoc TableKind = iota
	// TableSetAssoc is the set-associative, load-PC-indexed MDPT: Entries
	// slots organized as Entries/Ways sets, per-set LRU, O(ways) lookups.
	TableSetAssoc
	// TableStoreSet is the store-set-style organization: related loads and
	// stores are merged into one set with a shared confidence counter.
	TableStoreSet

	numTableKinds
)

// String returns the flag spelling of the organization.
func (k TableKind) String() string {
	switch k {
	case TableFullAssoc:
		return "full"
	case TableSetAssoc:
		return "setassoc"
	case TableStoreSet:
		return "storeset"
	default:
		return fmt.Sprintf("table(%d)", int(k))
	}
}

// Valid reports whether k names a defined organization.
func (k TableKind) Valid() bool { return k >= 0 && k < numTableKinds }

// ParseTableKind parses the -predictor flag values "full", "setassoc" and
// "storeset", case-insensitively (matching policy.Parse).
func ParseTableKind(s string) (TableKind, error) {
	n := strings.ToLower(strings.TrimSpace(s))
	for k := TableFullAssoc; k < numTableKinds; k++ {
		if k.String() == n {
			return k, nil
		}
	}
	return 0, fmt.Errorf("memdep: unknown predictor table %q (want \"full\", \"setassoc\" or \"storeset\")", s)
}

// MarshalText implements encoding.TextMarshaler using the flag spelling, so
// TableKind fields encode as "full"/"setassoc"/"storeset" in JSON.
func (k TableKind) MarshalText() ([]byte, error) {
	if !k.Valid() {
		return nil, fmt.Errorf("memdep: cannot marshal invalid predictor table %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseTableKind, so
// the JSON encoding round-trips (case-insensitively).
func (k *TableKind) UnmarshalText(text []byte) error {
	v, err := ParseTableKind(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// NewPredictor creates the prediction table selected by cfg.Table.
func NewPredictor(cfg Config) Predictor {
	switch cfg.withDefaults().Table {
	case TableSetAssoc:
		return NewSetAssocMDPT(cfg)
	case TableStoreSet:
		return NewStoreSetPredictor(cfg)
	default:
		return NewMDPT(cfg)
	}
}
