package memdep

// SetAssocMDPT is the set-associative organization of the memory dependence
// prediction table (TableSetAssoc): Entries slots arranged as Entries/Ways
// sets indexed by the load PC, with LRU replacement inside each set.  The
// load-side lookup -- the hottest predictor operation on the simulator's
// per-load path -- probes exactly one set, so it costs O(ways) instead of the
// fully associative table's O(entries) scan.  The store-side lookup is served
// by an inverted index from store PC to the slots currently holding it, so it
// costs O(matches).
//
// Prediction semantics (counters, thresholds, distances, ESYNC task PCs) are
// identical to MDPT; only placement and replacement differ.  A dependence
// working set that conflicts in one set can therefore thrash a low-way table
// even when the table as a whole has room -- exactly the capacity/conflict
// sensitivity the sweep experiment measures.
//
//memdep:resettable
type SetAssocMDPT struct {
	cfg  Config //lint:reset-exempt construction-time configuration, immutable across runs
	ways int    //lint:reset-exempt table geometry fixed at construction
	sets int    //lint:reset-exempt table geometry fixed at construction
	// entries holds the sets back to back: set i occupies
	// entries[i*ways : (i+1)*ways].
	entries []mdptEntry
	// storeIdx maps a store PC to the slots whose valid entry carries it, in
	// allocation order, so MatchesForStore avoids scanning the whole table.
	storeIdx map[uint64][]int
	clock    uint64

	allocations  uint64
	replacements uint64
	strengthens  uint64
	weakens      uint64
}

var _ Predictor = (*SetAssocMDPT)(nil)

// NewSetAssocMDPT creates a set-associative prediction table from the
// configuration: cfg.Entries slots at cfg.Ways associativity (clamped to the
// entry count; a partial trailing set is dropped rather than padded).  The
// constructor implies its own organization, so cfg.Table need not be set.
func NewSetAssocMDPT(cfg Config) *SetAssocMDPT {
	cfg.Table = TableSetAssoc // so withDefaults applies the ways rules, not full-assoc's
	cfg = cfg.withDefaults()
	ways := cfg.Ways
	sets := cfg.Entries / ways
	if sets < 1 {
		sets = 1
	}
	return &SetAssocMDPT{
		cfg:      cfg,
		ways:     ways,
		sets:     sets,
		entries:  make([]mdptEntry, sets*ways),
		storeIdx: make(map[uint64][]int),
	}
}

// Kind implements Predictor.
func (t *SetAssocMDPT) Kind() TableKind { return TableSetAssoc }

// Ways returns the table's associativity.
func (t *SetAssocMDPT) Ways() int { return t.ways }

// Sets returns the number of sets.
func (t *SetAssocMDPT) Sets() int { return t.sets }

// Capacity returns the number of slots.
func (t *SetAssocMDPT) Capacity() int { return len(t.entries) }

// Len returns the number of valid entries.
func (t *SetAssocMDPT) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// setBase returns the first slot of the set the load PC indexes.
// Instructions are word-aligned, so the low PC bits are dropped before the
// modulo to spread consecutive static loads across sets.
func (t *SetAssocMDPT) setBase(loadPC uint64) int {
	return int((loadPC>>2)%uint64(t.sets)) * t.ways
}

func (t *SetAssocMDPT) touch(e *mdptEntry) {
	t.clock++
	e.lastUse = t.clock
}

// find returns the slot holding the exact static pair, or -1.
func (t *SetAssocMDPT) find(pair PairKey) int {
	base := t.setBase(pair.LoadPC)
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if e.valid && e.loadPC == pair.LoadPC && e.storePC == pair.StorePC {
			return i
		}
	}
	return -1
}

func (t *SetAssocMDPT) prediction(e *mdptEntry) Prediction {
	return Prediction{
		Pair:        PairKey{LoadPC: e.loadPC, StorePC: e.storePC},
		Dist:        e.dist,
		Counter:     e.counter,
		StoreTaskPC: e.storeTaskPC,
		Sync:        t.cfg.syncPredicted(e.counter),
	}
}

// Lookup implements Predictor.
func (t *SetAssocMDPT) Lookup(pair PairKey) (Prediction, bool) {
	if i := t.find(pair); i >= 0 {
		return t.prediction(&t.entries[i]), true
	}
	return Prediction{}, false
}

// MatchesForLoad implements Predictor with an O(ways) probe of the load's
// set.  dst is caller-owned: results are never invalidated by a later call.
//
//memdep:hotpath
func (t *SetAssocMDPT) MatchesForLoad(loadPC uint64, dst []Prediction) []Prediction {
	base := t.setBase(loadPC)
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if e.valid && e.loadPC == loadPC {
			t.touch(e)
			dst = append(dst, t.prediction(e)) //lint:alloc-ok caller-owned scratch buffer, growth amortized
		}
	}
	return dst
}

// MatchesForStore implements Predictor through the inverted store index.
// dst is caller-owned: results are never invalidated by a later call.
//
//memdep:hotpath
func (t *SetAssocMDPT) MatchesForStore(storePC uint64, dst []Prediction) []Prediction {
	for _, slot := range t.storeIdx[storePC] {
		e := &t.entries[slot]
		if e.valid && e.storePC == storePC {
			t.touch(e)
			dst = append(dst, t.prediction(e)) //lint:alloc-ok caller-owned scratch buffer, growth amortized
		}
	}
	return dst
}

// RecordMisspeculation implements Predictor: allocate into the load's set (or
// strengthen the existing entry), evicting the set's LRU way under pressure.
func (t *SetAssocMDPT) RecordMisspeculation(pair PairKey, dist uint64, storeTaskPC uint64) {
	if i := t.find(pair); i >= 0 {
		e := &t.entries[i]
		e.dist = dist
		e.storeTaskPC = storeTaskPC
		t.strengthen(e)
		t.touch(e)
		return
	}
	slot := t.victim(pair.LoadPC)
	e := &t.entries[slot]
	if e.valid {
		t.replacements++
		t.dropStoreIdx(e.storePC, slot)
	}
	t.allocations++
	*e = mdptEntry{
		valid:       true,
		loadPC:      pair.LoadPC,
		storePC:     pair.StorePC,
		dist:        dist,
		counter:     t.cfg.InitialCounter,
		storeTaskPC: storeTaskPC,
	}
	t.storeIdx[pair.StorePC] = append(t.storeIdx[pair.StorePC], slot)
	t.touch(e)
}

// victim returns the slot to allocate into within the load's set: an invalid
// way if one exists, otherwise the least recently used way.
func (t *SetAssocMDPT) victim(loadPC uint64) int {
	base := t.setBase(loadPC)
	lru := base
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if !e.valid {
			return i
		}
		if e.lastUse < t.entries[lru].lastUse {
			lru = i
		}
	}
	return lru
}

// dropStoreIdx removes one slot from a store PC's inverted-index list,
// preserving the order of the remaining slots.
func (t *SetAssocMDPT) dropStoreIdx(storePC uint64, slot int) {
	slots := t.storeIdx[storePC]
	for i, s := range slots {
		if s == slot {
			slots = append(slots[:i], slots[i+1:]...)
			break
		}
	}
	if len(slots) == 0 {
		delete(t.storeIdx, storePC)
	} else {
		t.storeIdx[storePC] = slots
	}
}

func (t *SetAssocMDPT) strengthen(e *mdptEntry) {
	if e.counter < t.cfg.counterMax() {
		e.counter++
	}
	t.strengthens++
}

func (t *SetAssocMDPT) weaken(e *mdptEntry) {
	if e.counter > 0 {
		e.counter--
	}
	t.weakens++
}

// Strengthen implements Predictor; unknown pairs are ignored.
func (t *SetAssocMDPT) Strengthen(pair PairKey) {
	if i := t.find(pair); i >= 0 {
		t.strengthen(&t.entries[i])
	}
}

// Weaken implements Predictor; unknown pairs are ignored.
func (t *SetAssocMDPT) Weaken(pair PairKey) {
	if i := t.find(pair); i >= 0 {
		t.weaken(&t.entries[i])
	}
}

// Stats implements Predictor.
func (t *SetAssocMDPT) Stats() MDPTStats {
	return MDPTStats{
		Allocations:  t.allocations,
		Replacements: t.replacements,
		Strengthens:  t.strengthens,
		Weakens:      t.weakens,
		LiveEntries:  t.Len(),
	}
}

// Reset implements Predictor.  The inverted index is cleared in place
// (per-PC slices keep their backing capacity) so a reused table allocates
// little in steady state.
func (t *SetAssocMDPT) Reset() {
	for i := range t.entries {
		t.entries[i] = mdptEntry{}
	}
	for pc, s := range t.storeIdx { //lint:deterministic in-place clear, every key treated identically
		t.storeIdx[pc] = s[:0]
	}
	t.clock = 0
	t.allocations, t.replacements, t.strengthens, t.weakens = 0, 0, 0, 0
}
