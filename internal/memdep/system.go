package memdep

// System is the combined prediction/synchronization structure that the
// Multiscalar timing simulator drives (the implementation evaluated in
// section 5.5 of the paper): an MDPT whose entries carry synchronization
// slots, with the MDST capacity sized as Entries × SyncSlots (one slot per
// stage per static dependence).
//
// The System exposes the four dynamic events of section 4.3:
//
//	RecordMisspeculation  a mis-speculation was detected; learn the pair
//	LoadIssue             a load is about to access memory; decide whether it
//	                      must wait and on which condition variables
//	StoreIssue            a store is about to access memory; signal waiting
//	                      loads (or pre-set the condition variable)
//	CommitLoad            a load committed; update the predictor
//
// plus the bookkeeping of sections 4.4.2/4.4.3 (ReleaseLoad, SquashLoad,
// SquashStore).
//
//memdep:resettable
type System struct {
	cfg  Config //lint:reset-exempt construction-time configuration, immutable across runs
	pred Predictor
	mdst *MDST

	// onRelease, when set, is invoked synchronously from StoreIssue for
	// every load whose last awaited condition variable that store's signal
	// fills.  See SetReleaseHook.
	onRelease func(ldid int64) //lint:reset-exempt wiring owned by SetReleaseHook, not run state

	// Scratch backings for the slices returned in Load/StoreDecision,
	// reused across calls so the per-operation hot path does not allocate.
	waitScratch   []PairKey //lint:reset-exempt scratch backing, overwritten before every read
	readyScratch  []PairKey //lint:reset-exempt scratch backing, overwritten before every read
	signalScratch []PairKey //lint:reset-exempt scratch backing, overwritten before every read

	// Prediction buffers handed to the Predictor's append-into-buffer
	// lookups, one per direction so the hot path stays allocation-free.
	loadPredScratch  []Prediction //lint:reset-exempt scratch backing, overwritten before every read
	storePredScratch []Prediction //lint:reset-exempt scratch backing, overwritten before every read

	stats SystemStats
}

// SystemStats aggregates the counters of a System.
type SystemStats struct {
	// LoadQueries counts calls to LoadIssue.
	LoadQueries uint64
	// LoadsPredictedDependent counts loads for which at least one dependence
	// (and synchronization) was predicted.
	LoadsPredictedDependent uint64
	// LoadsMadeToWait counts loads that had to wait on at least one empty
	// condition variable.
	LoadsMadeToWait uint64
	// LoadsSignalledEarly counts loads whose condition variable was already
	// full when they arrived (store signalled first; no delay).
	LoadsSignalledEarly uint64
	// StoreQueries counts calls to StoreIssue.
	StoreQueries uint64
	// StoresSignalled counts stores that matched a prediction entry and
	// performed a signal.
	StoresSignalled uint64
	// LoadsReleasedByStore counts loads released by a store's signal.
	LoadsReleasedByStore uint64
	// LoadsReleasedStale counts loads released because all prior stores
	// resolved without a signal (incomplete synchronization).
	LoadsReleasedStale uint64
	// Misspeculations counts calls to RecordMisspeculation.
	Misspeculations uint64
	// ESyncFiltered counts prediction-entry matches that ESYNC suppressed
	// because the task PC at the recorded distance did not match.
	ESyncFiltered uint64
}

// NewSystem creates a prediction/synchronization system; the prediction
// table's organization is selected by cfg.Table.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	return &System{
		cfg:  cfg,
		pred: NewPredictor(cfg),
		mdst: NewMDST(cfg.Entries * cfg.SyncSlots),
	}
}

// Config returns the effective configuration (defaults applied).
func (s *System) Config() Config { return s.cfg }

// Predictor exposes the prediction table (read-mostly; used by tests and
// tools).
func (s *System) Predictor() Predictor { return s.pred }

// MDPT exposes the prediction table under its historical name.  It returns
// the Predictor interface: the table is only an MDPT in the paper's default
// fully associative organization.
func (s *System) MDPT() Predictor { return s.pred }

// MDST exposes the synchronization table.
func (s *System) MDST() *MDST { return s.mdst }

// Stats returns a snapshot of the system counters.
func (s *System) Stats() SystemStats { return s.stats }

// SetReleaseHook registers a callback that StoreIssue invokes for every load
// it releases (the event-driven alternative to polling StoreDecision's
// ReleasedLoads).  While a hook is registered, StoreIssue delivers releases
// exclusively through it and leaves ReleasedLoads nil, which also keeps the
// hot path allocation-free.  The callback runs synchronously on the caller's
// goroutine; a nil fn removes the hook.
func (s *System) SetReleaseHook(fn func(ldid int64)) { s.onRelease = fn }

// LoadQuery carries the dynamic context of a load that is about to access
// the memory hierarchy.
type LoadQuery struct {
	// PC is the load's instruction address.
	PC uint64
	// Instance is the load's instance number; the Multiscalar implementation
	// approximates it with the dynamic task number (stage identifiers in the
	// paper).
	Instance uint64
	// LDID uniquely identifies this dynamic load within the current
	// instruction window (for example reservation-station index or simulator
	// sequence number).
	LDID int64
	// Addr is the load's effective address (used only by the address-tagging
	// ablation).
	Addr uint64
	// TaskPCAt returns the task PC of the task with the given instance
	// number, when it is still in the processor's window.  It is consulted by
	// the ESYNC predictor; a nil function disables the filter.
	TaskPCAt func(instance uint64) (uint64, bool)
}

// LoadDecision is the outcome of LoadIssue.  The pair slices share reusable
// backing arrays owned by the System: they are valid until the next LoadIssue
// call and must be copied to be retained.
type LoadDecision struct {
	// Predicted reports whether at least one dependence was predicted (after
	// any ESYNC filtering).
	Predicted bool
	// Wait reports whether the load must wait for at least one signal.
	Wait bool
	// WaitPairs lists the static dependences the load is waiting on.
	WaitPairs []PairKey
	// ReadyPairs lists predicted dependences whose condition variable was
	// already full (no waiting necessary).
	ReadyPairs []PairKey
}

// instanceTag selects how dynamic instances are distinguished: by instance
// number (dependence distance scheme) or by effective address (ablation).
func (s *System) loadInstanceTag(q LoadQuery) uint64 {
	if s.cfg.TagByAddress {
		return q.Addr
	}
	return q.Instance
}

// LoadIssue processes a load that is ready to access memory.  It looks up the
// MDPT by the load's PC; for every matching entry whose predictor warrants
// synchronization it either consumes an already-full condition variable or
// allocates a waiting entry in the MDST.
//
//memdep:hotpath
func (s *System) LoadIssue(q LoadQuery) LoadDecision {
	s.stats.LoadQueries++
	s.waitScratch = s.waitScratch[:0]
	s.readyScratch = s.readyScratch[:0]
	var d LoadDecision
	s.loadPredScratch = s.pred.MatchesForLoad(q.PC, s.loadPredScratch[:0])
	for _, pred := range s.loadPredScratch {
		if !pred.Sync {
			continue
		}
		// ESYNC: enforce the synchronization only if the task at the recorded
		// dependence distance is the task that issued the store last time.
		if s.cfg.Predictor == PredictESync && q.TaskPCAt != nil && !s.cfg.TagByAddress {
			if q.Instance >= pred.Dist {
				if pc, ok := q.TaskPCAt(q.Instance - pred.Dist); ok && pc != pred.StoreTaskPC {
					s.stats.ESyncFiltered++
					continue
				}
			}
		}
		d.Predicted = true
		tag := s.loadInstanceTag(q)
		if s.mdst.AllocWaiting(pred.Pair, tag, q.LDID) {
			d.Wait = true
			s.waitScratch = append(s.waitScratch, pred.Pair) //lint:alloc-ok reusable scratch, growth amortized across queries
		} else {
			s.readyScratch = append(s.readyScratch, pred.Pair) //lint:alloc-ok reusable scratch, growth amortized across queries
		}
	}
	if len(s.waitScratch) > 0 {
		d.WaitPairs = s.waitScratch
	}
	if len(s.readyScratch) > 0 {
		d.ReadyPairs = s.readyScratch
	}
	if d.Predicted {
		s.stats.LoadsPredictedDependent++
	}
	if d.Wait {
		s.stats.LoadsMadeToWait++
	} else if len(d.ReadyPairs) > 0 {
		s.stats.LoadsSignalledEarly++
	}
	return d
}

// StoreQuery carries the dynamic context of a store that is about to access
// the memory hierarchy.
type StoreQuery struct {
	// PC is the store's instruction address.
	PC uint64
	// Instance is the store's instance number (task number).
	Instance uint64
	// STID uniquely identifies this dynamic store within the window.
	STID int64
	// TaskPC is the PC of the task that issued the store (recorded for the
	// ESYNC predictor when a mis-speculation is learned; also informational
	// here).
	TaskPC uint64
	// Addr is the store's effective address (address-tagging ablation).
	Addr uint64
}

// StoreDecision is the outcome of StoreIssue.  SignalledPairs shares a
// reusable backing array owned by the System: it is valid until the next
// StoreIssue call and must be copied to be retained.
type StoreDecision struct {
	// Matched reports whether the store matched at least one prediction entry
	// that warrants synchronization.
	Matched bool
	// ReleasedLoads lists the LDIDs of loads released by this store's signal.
	ReleasedLoads []int64
	// SignalledPairs lists the static dependences signalled (whether or not a
	// load was waiting).
	SignalledPairs []PairKey
}

// StoreIssue processes a store that is ready to access memory.  For every
// matching prediction entry it computes the instance number of the load to
// synchronize (store instance + dependence distance) and performs the signal
// in the MDST.
//
//memdep:hotpath
func (s *System) StoreIssue(q StoreQuery) StoreDecision {
	s.stats.StoreQueries++
	s.signalScratch = s.signalScratch[:0]
	var d StoreDecision
	s.storePredScratch = s.pred.MatchesForStore(q.PC, s.storePredScratch[:0])
	for _, pred := range s.storePredScratch {
		if !pred.Sync {
			continue
		}
		d.Matched = true
		var tag uint64
		if s.cfg.TagByAddress {
			tag = q.Addr
		} else {
			tag = q.Instance + pred.Dist
		}
		ldid, released := s.mdst.Signal(pred.Pair, tag, q.STID)
		s.signalScratch = append(s.signalScratch, pred.Pair) //lint:alloc-ok reusable scratch, growth amortized across queries
		if released {
			// A load released by one signal may still be waiting for other
			// predicted dependences (section 4.4.4); report it only when no
			// empty entries remain.
			if !s.mdst.HasWaiter(ldid) {
				s.stats.LoadsReleasedByStore++
				if s.onRelease != nil {
					s.onRelease(ldid)
				} else {
					d.ReleasedLoads = append(d.ReleasedLoads, ldid) //lint:alloc-ok reusable scratch, growth amortized across queries
				}
			}
		}
	}
	if len(s.signalScratch) > 0 {
		d.SignalledPairs = s.signalScratch
	}
	if d.Matched {
		s.stats.StoresSignalled++
	}
	return d
}

// ReleaseLoad frees the condition variables of a load that is being allowed
// to proceed because all prior stores have resolved without a signal
// (incomplete synchronization, section 4.4.2).  The corresponding prediction
// entries are weakened, since the predicted dependences did not materialise.
// It returns the number of entries freed.
func (s *System) ReleaseLoad(ldid int64) int {
	freed := s.mdst.ReleaseLoad(ldid)
	for _, pair := range freed {
		s.pred.Weaken(pair)
	}
	if len(freed) > 0 {
		s.stats.LoadsReleasedStale++
	}
	return len(freed)
}

// SquashLoad invalidates any condition variables allocated to a load that is
// being squashed (section 4.4.3).  Unlike ReleaseLoad it does not touch the
// predictor: updates are non-speculative.
func (s *System) SquashLoad(ldid int64) int {
	return len(s.mdst.ReleaseLoad(ldid))
}

// SquashStore invalidates condition variables pre-set by a store that is
// being squashed and that no load has consumed.
func (s *System) SquashStore(stid int64) int {
	return len(s.mdst.ReleaseStore(stid))
}

// RecordMisspeculation teaches the prediction table that the given static
// pair caused a mis-speculation at the given dependence distance.
func (s *System) RecordMisspeculation(pair PairKey, dist uint64, storeTaskPC uint64) {
	s.stats.Misspeculations++
	s.pred.RecordMisspeculation(pair, dist, storeTaskPC)
}

// CommitLoad updates the predictor non-speculatively when a load commits.
// waitedPairs are the dependences the load actually waited on; actualStorePC
// is the PC of the store that actually produced the value the load read from
// an earlier in-flight task, or zero if the load had no such dependence.
// Pairs whose wait was justified (the producer matched) are strengthened;
// pairs that delayed the load for a different (or no) producer are weakened.
// The pair naming the actual producer is strengthened even when the load did
// not have to wait for it (its condition variable had already been set), so
// that confirmed dependences do not decay.
func (s *System) CommitLoad(loadPC uint64, actualStorePC uint64, waitedPairs []PairKey) {
	for _, pair := range waitedPairs {
		if pair.LoadPC != loadPC {
			continue
		}
		if actualStorePC != 0 && pair.StorePC == actualStorePC {
			s.pred.Strengthen(pair)
		} else {
			s.pred.Weaken(pair)
		}
	}
	if actualStorePC != 0 {
		waited := false
		for _, pair := range waitedPairs {
			if pair.LoadPC == loadPC && pair.StorePC == actualStorePC {
				waited = true
				break
			}
		}
		if !waited {
			s.pred.Strengthen(PairKey{LoadPC: loadPC, StorePC: actualStorePC})
		}
	}
}

// Reset clears both tables and the counters.
func (s *System) Reset() {
	s.pred.Reset()
	s.mdst.Reset()
	s.stats = SystemStats{}
}
