package memdep

// mdptEntry is one entry of the memory dependence prediction table
// (section 4.1): valid flag, load and store instruction addresses, the
// dependence distance, the optional prediction state (an up/down saturating
// counter), and -- for the ESYNC predictor -- the PC of the task that issued
// the store.
type mdptEntry struct {
	valid       bool
	loadPC      uint64
	storePC     uint64
	dist        uint64
	counter     int
	storeTaskPC uint64
	lastUse     uint64
}

// MDPT is the memory dependence prediction table.  It is a small, fully
// associative, LRU-managed table; an entry identifies a static dependence and
// predicts whether its future dynamic instances should be synchronized.  It
// is the TableFullAssoc implementation of the Predictor interface; see
// SetAssocMDPT and StoreSetPredictor for the other organizations.
//
// Lookups run once per load and store the timing core issues, so the table
// keeps three incrementally maintained indexes over its entry array: pairIdx
// (exact static pair → slot) and loadIdx/storeIdx (PC → slots, in ascending
// slot order).  Ascending order matters: MatchesForLoad/MatchesForStore touch
// every match, each touch advances the LRU clock, and replacement decisions
// observe those clocks -- so index traversal must visit entries in exactly
// the order the former full scan did.
//
//memdep:resettable
type MDPT struct {
	cfg     Config //lint:reset-exempt construction-time configuration, immutable across runs
	entries []mdptEntry
	clock   uint64

	pairIdx  map[PairKey]int32
	loadIdx  map[uint64][]int32
	storeIdx map[uint64][]int32

	allocations  uint64
	replacements uint64
	strengthens  uint64
	weakens      uint64
}

var _ Predictor = (*MDPT)(nil)

// NewMDPT creates a prediction table from the configuration.
func NewMDPT(cfg Config) *MDPT {
	cfg = cfg.withDefaults()
	return &MDPT{
		cfg:      cfg,
		entries:  make([]mdptEntry, cfg.Entries),
		pairIdx:  make(map[PairKey]int32, cfg.Entries),
		loadIdx:  make(map[uint64][]int32, cfg.Entries),
		storeIdx: make(map[uint64][]int32, cfg.Entries),
	}
}

// Len returns the number of valid entries.
func (t *MDPT) Len() int { return len(t.pairIdx) }

// Capacity returns the number of entries in the table.
func (t *MDPT) Capacity() int { return len(t.entries) }

// Kind implements Predictor.
func (t *MDPT) Kind() TableKind { return TableFullAssoc }

func (t *MDPT) counterMax() int { return t.cfg.counterMax() }

func (t *MDPT) touch(e *mdptEntry) {
	t.clock++
	e.lastUse = t.clock
}

// insertSlot adds slot v to the sorted slice s, keeping ascending order.
func insertSlot(s []int32, v int32) []int32 {
	i := len(s)
	s = append(s, 0)
	for i > 0 && s[i-1] > v {
		s[i] = s[i-1]
		i--
	}
	s[i] = v
	return s
}

// removeSlot deletes slot v from the sorted slice s, preserving order.
func removeSlot(s []int32, v int32) []int32 {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// link registers the (already filled) slot in all three indexes.
func (t *MDPT) link(i int32) {
	e := &t.entries[i]
	t.pairIdx[PairKey{LoadPC: e.loadPC, StorePC: e.storePC}] = i
	t.loadIdx[e.loadPC] = insertSlot(t.loadIdx[e.loadPC], i)
	t.storeIdx[e.storePC] = insertSlot(t.storeIdx[e.storePC], i)
}

// unlink removes the slot from all three indexes (the entry still holds its
// old PCs).  Emptied per-PC slices stay in the maps so their capacity is
// reused by later allocations.
func (t *MDPT) unlink(i int32) {
	e := &t.entries[i]
	delete(t.pairIdx, PairKey{LoadPC: e.loadPC, StorePC: e.storePC})
	t.loadIdx[e.loadPC] = removeSlot(t.loadIdx[e.loadPC], i)
	t.storeIdx[e.storePC] = removeSlot(t.storeIdx[e.storePC], i)
}

// find returns the entry for the exact static pair, or nil.
//
//memdep:hotpath
func (t *MDPT) find(pair PairKey) *mdptEntry {
	if i, ok := t.pairIdx[pair]; ok {
		return &t.entries[i]
	}
	return nil
}

// Lookup returns the prediction state for the pair, if present.
//
//memdep:hotpath
func (t *MDPT) Lookup(pair PairKey) (Prediction, bool) {
	if e := t.find(pair); e != nil {
		return t.prediction(e), true
	}
	return Prediction{}, false
}

// Prediction is the externally visible state of one MDPT entry.
type Prediction struct {
	Pair        PairKey
	Dist        uint64
	Counter     int
	StoreTaskPC uint64
	// Sync reports whether the predictor would enforce synchronization for
	// this entry (ignoring the ESYNC task-PC filter, which needs dynamic
	// context -- see System.LoadIssue).
	Sync bool
}

func (t *MDPT) prediction(e *mdptEntry) Prediction {
	return Prediction{
		Pair:        PairKey{LoadPC: e.loadPC, StorePC: e.storePC},
		Dist:        e.dist,
		Counter:     e.counter,
		StoreTaskPC: e.storeTaskPC,
		Sync:        t.predicts(e),
	}
}

// predicts applies the prediction policy to an entry.
func (t *MDPT) predicts(e *mdptEntry) bool {
	return t.cfg.syncPredicted(e.counter)
}

// MatchesForLoad appends to dst the predictions of all valid entries whose
// load PC matches (a load may have multiple static dependences, section
// 4.4.4) and returns the extended slice.  dst is caller-owned: results are
// never invalidated by a later call.
//
//memdep:hotpath
func (t *MDPT) MatchesForLoad(loadPC uint64, dst []Prediction) []Prediction {
	for _, i := range t.loadIdx[loadPC] {
		e := &t.entries[i]
		t.touch(e)
		dst = append(dst, t.prediction(e)) //lint:alloc-ok caller-owned scratch buffer, growth amortized
	}
	return dst
}

// MatchesForStore appends to dst the predictions of all valid entries whose
// store PC matches and returns the extended slice.  dst is caller-owned:
// results are never invalidated by a later call.
//
//memdep:hotpath
func (t *MDPT) MatchesForStore(storePC uint64, dst []Prediction) []Prediction {
	for _, i := range t.storeIdx[storePC] {
		e := &t.entries[i]
		t.touch(e)
		dst = append(dst, t.prediction(e)) //lint:alloc-ok caller-owned scratch buffer, growth amortized
	}
	return dst
}

// RecordMisspeculation allocates an entry for the pair (or strengthens an
// existing one).  dist is the dependence distance -- the difference between
// the load's and the store's instance numbers -- and storeTaskPC identifies
// the task that issued the store (used by ESYNC).
func (t *MDPT) RecordMisspeculation(pair PairKey, dist uint64, storeTaskPC uint64) {
	if e := t.find(pair); e != nil {
		e.dist = dist
		e.storeTaskPC = storeTaskPC
		t.strengthen(e)
		t.touch(e)
		return
	}
	i := t.victim()
	e := &t.entries[i]
	if e.valid {
		t.replacements++
		t.unlink(i)
	}
	t.allocations++
	*e = mdptEntry{
		valid:       true,
		loadPC:      pair.LoadPC,
		storePC:     pair.StorePC,
		dist:        dist,
		counter:     t.cfg.InitialCounter,
		storeTaskPC: storeTaskPC,
	}
	t.link(i)
	t.touch(e)
}

// victim returns the slot to allocate into: an invalid entry if one exists,
// otherwise the least recently used entry.
func (t *MDPT) victim() int32 {
	lru := int32(-1)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			return int32(i)
		}
		if lru < 0 || e.lastUse < t.entries[lru].lastUse {
			lru = int32(i)
		}
	}
	return lru
}

func (t *MDPT) strengthen(e *mdptEntry) {
	if e.counter < t.counterMax() {
		e.counter++
	}
	t.strengthens++
}

func (t *MDPT) weaken(e *mdptEntry) {
	if e.counter > 0 {
		e.counter--
	}
	t.weakens++
}

// Strengthen increases the confidence of the pair's entry (the predicted
// dependence turned out to exist).  Unknown pairs are ignored.
func (t *MDPT) Strengthen(pair PairKey) {
	if e := t.find(pair); e != nil {
		t.strengthen(e)
	}
}

// Weaken decreases the confidence of the pair's entry (the predicted
// dependence did not materialise, so the load was delayed unnecessarily).
// Unknown pairs are ignored.
func (t *MDPT) Weaken(pair PairKey) {
	if e := t.find(pair); e != nil {
		t.weaken(e)
	}
}

// Stats summarises prediction-table activity.
type MDPTStats struct {
	Allocations  uint64
	Replacements uint64
	Strengthens  uint64
	Weakens      uint64
	LiveEntries  int
}

// Stats returns a snapshot of the table's counters.
func (t *MDPT) Stats() MDPTStats {
	return MDPTStats{
		Allocations:  t.allocations,
		Replacements: t.replacements,
		Strengthens:  t.strengthens,
		Weakens:      t.weakens,
		LiveEntries:  t.Len(),
	}
}

// Reset invalidates all entries and clears counters.  Index maps are cleared
// in place (per-PC slices keep their backing capacity) so a reused table
// allocates nothing in steady state.
func (t *MDPT) Reset() {
	for i := range t.entries {
		t.entries[i] = mdptEntry{}
	}
	clear(t.pairIdx)
	for pc, s := range t.loadIdx { //lint:deterministic in-place clear, every key treated identically
		t.loadIdx[pc] = s[:0]
	}
	for pc, s := range t.storeIdx { //lint:deterministic in-place clear, every key treated identically
		t.storeIdx[pc] = s[:0]
	}
	t.clock = 0
	t.allocations, t.replacements, t.strengthens, t.weakens = 0, 0, 0, 0
}
