package memdep

// mdstEntry is one entry of the memory dependence synchronization table
// (section 4.2): valid flag, load and store instruction addresses, load and
// store identifiers (assigned by the out-of-order core), the dynamic instance
// tag, and the full/empty flag that acts as the condition variable.
type mdstEntry struct {
	valid    bool
	loadPC   uint64
	storePC  uint64
	ldid     int64
	stid     int64
	instance uint64
	full     bool
	lastUse  uint64
}

// invalidID marks an identifier slot whose instruction has not been seen yet
// (for example the load identifier of an entry allocated by a store).
const invalidID int64 = -1

// mdstKey identifies one dynamic dependence instance -- the unit of MDST
// lookup.  At most one valid entry exists per key (allocation only happens
// after a failed find), which is what lets the index replace the former
// O(entries) scan without changing which entry a lookup returns.
type mdstKey struct {
	loadPC   uint64
	storePC  uint64
	instance uint64
}

// MDST is the memory dependence synchronization table: a dynamic pool of
// condition variables together with the mechanism to associate them with
// dynamic store→load instruction pairs.
//
// The table sits on the timing simulator's per-memory-operation hot path, so
// the dynamic-instance lookup and the per-load waiter test are backed by
// indexes (index, waiting) instead of scans over the entry array; both are
// maintained incrementally by every allocation, release and replacement and
// carry no information of their own -- the entry array remains the source of
// truth, which TestMDSTIndexConsistency asserts.
//
//memdep:resettable
type MDST struct {
	entries []mdstEntry
	clock   uint64

	// index maps each dynamic dependence instance to its entry slot.
	index map[mdstKey]int32
	// waiting counts, per load identifier, the valid empty entries the load
	// is blocked on (every empty entry carries a valid ldid, see
	// AllocWaiting); it answers HasWaiter in O(1) and lets ReleaseLoad skip
	// the scan entirely for loads that wait on nothing.
	waiting map[int64]int32

	// freedScratch backs the slices returned by ReleaseLoad/ReleaseStore;
	// the result is valid until the next call to either.
	freedScratch []PairKey //lint:reset-exempt scratch backing, overwritten before every read

	allocations    uint64
	replacements   uint64
	waitsRecorded  uint64
	signalsMatched uint64
	freedStale     uint64
}

// NewMDST creates a synchronization table with the given number of entries.
func NewMDST(capacity int) *MDST {
	if capacity < 1 {
		capacity = 1
	}
	return &MDST{
		entries: make([]mdstEntry, capacity),
		index:   make(map[mdstKey]int32, capacity),
		waiting: make(map[int64]int32),
	}
}

// Capacity returns the number of entries.
func (t *MDST) Capacity() int { return len(t.entries) }

// Len returns the number of valid entries.
func (t *MDST) Len() int { return len(t.index) }

func (t *MDST) touch(e *mdstEntry) {
	t.clock++
	e.lastUse = t.clock
}

// find locates the entry for a specific dynamic dependence instance.
func (t *MDST) find(pair PairKey, instance uint64) *mdstEntry {
	if i, ok := t.index[mdstKey{pair.LoadPC, pair.StorePC, instance}]; ok {
		return &t.entries[i]
	}
	return nil
}

// addWaiter/dropWaiter maintain the per-ldid waiter counts for entries whose
// full/empty flag is empty.
func (t *MDST) addWaiter(ldid int64) { t.waiting[ldid]++ }

func (t *MDST) dropWaiter(ldid int64) {
	if n := t.waiting[ldid] - 1; n > 0 {
		t.waiting[ldid] = n
	} else {
		delete(t.waiting, ldid)
	}
}

// invalidate frees the entry, unhooking it from both indexes.
func (t *MDST) invalidate(e *mdstEntry) {
	delete(t.index, mdstKey{e.loadPC, e.storePC, e.instance})
	if !e.full && e.ldid != invalidID {
		t.dropWaiter(e.ldid)
	}
	e.valid = false
}

// victim returns the slot to allocate into: an invalid entry if any,
// otherwise the least recently used entry whose full/empty flag is full (a
// synchronization that has already fired and is only waiting for its load),
// otherwise the least recently used entry overall (section 4.4.2 discusses
// both reclamation policies).  A valid victim is invalidated (and counted as
// a replacement) before being handed out.
func (t *MDST) victim() int {
	lruFull, lruAny := -1, -1
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			return i
		}
		if e.full && (lruFull < 0 || e.lastUse < t.entries[lruFull].lastUse) {
			lruFull = i
		}
		if lruAny < 0 || e.lastUse < t.entries[lruAny].lastUse {
			lruAny = i
		}
	}
	v := lruFull
	if v < 0 {
		v = lruAny
	}
	t.replacements++
	t.invalidate(&t.entries[v])
	return v
}

// install fills a victim slot and registers it in the indexes.
func (t *MDST) install(i int, fill mdstEntry) {
	t.allocations++
	e := &t.entries[i]
	*e = fill
	t.index[mdstKey{e.loadPC, e.storePC, e.instance}] = int32(i)
	if !e.full && e.ldid != invalidID {
		t.addWaiter(e.ldid)
	}
	t.touch(e)
}

// AllocWaiting allocates (or reuses) an entry for a load that must wait: the
// full/empty flag is set to empty and the load identifier recorded.  It
// returns false if an entry for this dynamic dependence already exists with
// the full flag set -- in that case the store has already signalled, the
// entry is consumed (freed) and the load does not need to wait.
func (t *MDST) AllocWaiting(pair PairKey, instance uint64, ldid int64) (mustWait bool) {
	if e := t.find(pair, instance); e != nil {
		t.touch(e)
		if e.full {
			// Wait-after-signal: the store has already set the condition
			// variable; consume the entry and let the load continue
			// (figure 4 parts (e)/(f) of the paper).
			t.signalsMatched++
			t.invalidate(e)
			return false
		}
		// A waiting entry already exists (for example allocated when the
		// prediction was first made); just record the load identifier.
		if e.ldid != ldid {
			if e.ldid != invalidID {
				t.dropWaiter(e.ldid)
			}
			e.ldid = ldid
			t.addWaiter(ldid)
		}
		t.waitsRecorded++
		return true
	}
	t.install(t.victim(), mdstEntry{
		valid:    true,
		loadPC:   pair.LoadPC,
		storePC:  pair.StorePC,
		ldid:     ldid,
		stid:     invalidID,
		instance: instance,
		full:     false,
	})
	t.waitsRecorded++
	return true
}

// Signal is invoked when a store that matches an MDPT entry is ready to
// access memory.  instance is the instance number of the load that should be
// synchronized (store instance + dependence distance).  If a waiting entry is
// found its load identifier is returned (the load may now proceed) and the
// entry is freed.  If no entry exists, a new one is allocated with the
// full/empty flag set to full so that the load, when it arrives, continues
// without delay.
func (t *MDST) Signal(pair PairKey, instance uint64, stid int64) (ldid int64, released bool) {
	if e := t.find(pair, instance); e != nil {
		t.touch(e)
		if !e.full && e.ldid != invalidID {
			// Signal-after-wait: release the waiting load and free the entry
			// (figure 4 part (d)).
			t.signalsMatched++
			id := e.ldid
			t.invalidate(e)
			return id, true
		}
		// The entry is already full (a duplicate signal): nothing to release.
		e.stid = stid
		return invalidID, false
	}
	t.install(t.victim(), mdstEntry{
		valid:    true,
		loadPC:   pair.LoadPC,
		storePC:  pair.StorePC,
		ldid:     invalidID,
		stid:     stid,
		instance: instance,
		full:     true,
	})
	return invalidID, false
}

// ReleaseLoad frees all entries recorded for the given load identifier.  It
// is used both when a waiting load is released because all prior stores have
// resolved (incomplete synchronization, section 4.4.2) and when a load is
// squashed (section 4.4.3).  It returns the static pairs of the freed entries
// so the caller can update the prediction table; the slice shares a scratch
// backing owned by the table and is valid until the next ReleaseLoad or
// ReleaseStore call.
func (t *MDST) ReleaseLoad(ldid int64) []PairKey {
	remaining := t.waiting[ldid]
	if remaining == 0 {
		return nil
	}
	freed := t.freedScratch[:0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.ldid == ldid {
			freed = append(freed, PairKey{LoadPC: e.loadPC, StorePC: e.storePC})
			t.invalidate(e)
			t.freedStale++
			if remaining--; remaining == 0 {
				break
			}
		}
	}
	t.freedScratch = freed
	return freed
}

// ReleaseStore frees all entries allocated by the given store identifier that
// never met their load (used on store squash).  The returned slice shares a
// scratch backing owned by the table and is valid until the next ReleaseLoad
// or ReleaseStore call.
func (t *MDST) ReleaseStore(stid int64) []PairKey {
	freed := t.freedScratch[:0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.stid == stid && e.ldid == invalidID {
			freed = append(freed, PairKey{LoadPC: e.loadPC, StorePC: e.storePC})
			t.invalidate(e)
			t.freedStale++
		}
	}
	t.freedScratch = freed
	return freed
}

// WaitingLoads returns the load identifiers of all entries whose full/empty
// flag is still empty (loads currently blocked on a condition variable).
func (t *MDST) WaitingLoads() []int64 {
	var out []int64
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.full && e.ldid != invalidID {
			out = append(out, e.ldid)
		}
	}
	return out
}

// HasWaiter reports whether the given load identifier still has at least one
// empty (waiting) entry -- used to decide whether a load released by one
// signal must keep waiting for further predicted dependences (section 4.4.4).
func (t *MDST) HasWaiter(ldid int64) bool {
	return t.waiting[ldid] > 0
}

// MDSTStats summarises synchronization-table activity.
type MDSTStats struct {
	Allocations    uint64
	Replacements   uint64
	WaitsRecorded  uint64
	SignalsMatched uint64
	FreedStale     uint64
	LiveEntries    int
}

// Stats returns a snapshot of the table's counters.
func (t *MDST) Stats() MDSTStats {
	return MDSTStats{
		Allocations:    t.allocations,
		Replacements:   t.replacements,
		WaitsRecorded:  t.waitsRecorded,
		SignalsMatched: t.signalsMatched,
		FreedStale:     t.freedStale,
		LiveEntries:    t.Len(),
	}
}

// Reset invalidates all entries and clears counters.  The backing array, the
// indexes and the scratch buffer are retained, so a reset table performs no
// steady-state allocations when reused by a simulator arena.
func (t *MDST) Reset() {
	for i := range t.entries {
		t.entries[i] = mdstEntry{}
	}
	clear(t.index)
	clear(t.waiting)
	t.clock = 0
	t.allocations, t.replacements, t.waitsRecorded, t.signalsMatched, t.freedStale = 0, 0, 0, 0, 0
}
