package memdep

// mdstEntry is one entry of the memory dependence synchronization table
// (section 4.2): valid flag, load and store instruction addresses, load and
// store identifiers (assigned by the out-of-order core), the dynamic instance
// tag, and the full/empty flag that acts as the condition variable.
type mdstEntry struct {
	valid    bool
	loadPC   uint64
	storePC  uint64
	ldid     int64
	stid     int64
	instance uint64
	full     bool
	lastUse  uint64
}

// invalidID marks an identifier slot whose instruction has not been seen yet
// (for example the load identifier of an entry allocated by a store).
const invalidID int64 = -1

// MDST is the memory dependence synchronization table: a dynamic pool of
// condition variables together with the mechanism to associate them with
// dynamic store→load instruction pairs.
type MDST struct {
	entries []mdstEntry
	clock   uint64

	allocations    uint64
	replacements   uint64
	waitsRecorded  uint64
	signalsMatched uint64
	freedStale     uint64
}

// NewMDST creates a synchronization table with the given number of entries.
func NewMDST(capacity int) *MDST {
	if capacity < 1 {
		capacity = 1
	}
	return &MDST{entries: make([]mdstEntry, capacity)}
}

// Capacity returns the number of entries.
func (t *MDST) Capacity() int { return len(t.entries) }

// Len returns the number of valid entries.
func (t *MDST) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

func (t *MDST) touch(e *mdstEntry) {
	t.clock++
	e.lastUse = t.clock
}

// find locates the entry for a specific dynamic dependence instance.
func (t *MDST) find(pair PairKey, instance uint64) *mdstEntry {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.loadPC == pair.LoadPC && e.storePC == pair.StorePC && e.instance == instance {
			return e
		}
	}
	return nil
}

// victim returns an entry to allocate into: an invalid entry if any,
// otherwise the least recently used entry whose full/empty flag is full (a
// synchronization that has already fired and is only waiting for its load),
// otherwise the least recently used entry overall (section 4.4.2 discusses
// both reclamation policies).
func (t *MDST) victim() *mdstEntry {
	var lruFull, lruAny *mdstEntry
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			return e
		}
		if e.full && (lruFull == nil || e.lastUse < lruFull.lastUse) {
			lruFull = e
		}
		if lruAny == nil || e.lastUse < lruAny.lastUse {
			lruAny = e
		}
	}
	if lruFull != nil {
		return lruFull
	}
	return lruAny
}

// AllocWaiting allocates (or reuses) an entry for a load that must wait: the
// full/empty flag is set to empty and the load identifier recorded.  It
// returns false if an entry for this dynamic dependence already exists with
// the full flag set -- in that case the store has already signalled, the
// entry is consumed (freed) and the load does not need to wait.
func (t *MDST) AllocWaiting(pair PairKey, instance uint64, ldid int64) (mustWait bool) {
	if e := t.find(pair, instance); e != nil {
		t.touch(e)
		if e.full {
			// Wait-after-signal: the store has already set the condition
			// variable; consume the entry and let the load continue
			// (figure 4 parts (e)/(f) of the paper).
			t.signalsMatched++
			e.valid = false
			return false
		}
		// A waiting entry already exists (for example allocated when the
		// prediction was first made); just record the load identifier.
		e.ldid = ldid
		t.waitsRecorded++
		return true
	}
	e := t.victim()
	if e.valid {
		t.replacements++
	}
	t.allocations++
	*e = mdstEntry{
		valid:    true,
		loadPC:   pair.LoadPC,
		storePC:  pair.StorePC,
		ldid:     ldid,
		stid:     invalidID,
		instance: instance,
		full:     false,
	}
	t.touch(e)
	t.waitsRecorded++
	return true
}

// Signal is invoked when a store that matches an MDPT entry is ready to
// access memory.  instance is the instance number of the load that should be
// synchronized (store instance + dependence distance).  If a waiting entry is
// found its load identifier is returned (the load may now proceed) and the
// entry is freed.  If no entry exists, a new one is allocated with the
// full/empty flag set to full so that the load, when it arrives, continues
// without delay.
func (t *MDST) Signal(pair PairKey, instance uint64, stid int64) (ldid int64, released bool) {
	if e := t.find(pair, instance); e != nil {
		t.touch(e)
		if !e.full && e.ldid != invalidID {
			// Signal-after-wait: release the waiting load and free the entry
			// (figure 4 part (d)).
			t.signalsMatched++
			id := e.ldid
			e.valid = false
			return id, true
		}
		// The entry is already full (a duplicate signal): nothing to release.
		e.stid = stid
		return invalidID, false
	}
	e := t.victim()
	if e.valid {
		t.replacements++
	}
	t.allocations++
	*e = mdstEntry{
		valid:    true,
		loadPC:   pair.LoadPC,
		storePC:  pair.StorePC,
		ldid:     invalidID,
		stid:     stid,
		instance: instance,
		full:     true,
	}
	t.touch(e)
	return invalidID, false
}

// ReleaseLoad frees all entries recorded for the given load identifier.  It
// is used both when a waiting load is released because all prior stores have
// resolved (incomplete synchronization, section 4.4.2) and when a load is
// squashed (section 4.4.3).  It returns the static pairs of the freed entries
// so the caller can update the prediction table.
func (t *MDST) ReleaseLoad(ldid int64) []PairKey {
	var freed []PairKey
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.ldid == ldid {
			freed = append(freed, PairKey{LoadPC: e.loadPC, StorePC: e.storePC})
			e.valid = false
			t.freedStale++
		}
	}
	return freed
}

// ReleaseStore frees all entries allocated by the given store identifier that
// never met their load (used on store squash).
func (t *MDST) ReleaseStore(stid int64) []PairKey {
	var freed []PairKey
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.stid == stid && e.ldid == invalidID {
			freed = append(freed, PairKey{LoadPC: e.loadPC, StorePC: e.storePC})
			e.valid = false
			t.freedStale++
		}
	}
	return freed
}

// WaitingLoads returns the load identifiers of all entries whose full/empty
// flag is still empty (loads currently blocked on a condition variable).
func (t *MDST) WaitingLoads() []int64 {
	var out []int64
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.full && e.ldid != invalidID {
			out = append(out, e.ldid)
		}
	}
	return out
}

// HasWaiter reports whether the given load identifier still has at least one
// empty (waiting) entry -- used to decide whether a load released by one
// signal must keep waiting for further predicted dependences (section 4.4.4).
func (t *MDST) HasWaiter(ldid int64) bool {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.full && e.ldid == ldid {
			return true
		}
	}
	return false
}

// MDSTStats summarises synchronization-table activity.
type MDSTStats struct {
	Allocations    uint64
	Replacements   uint64
	WaitsRecorded  uint64
	SignalsMatched uint64
	FreedStale     uint64
	LiveEntries    int
}

// Stats returns a snapshot of the table's counters.
func (t *MDST) Stats() MDSTStats {
	return MDSTStats{
		Allocations:    t.allocations,
		Replacements:   t.replacements,
		WaitsRecorded:  t.waitsRecorded,
		SignalsMatched: t.signalsMatched,
		FreedStale:     t.freedStale,
		LiveEntries:    t.Len(),
	}
}

// Reset invalidates all entries and clears counters.
func (t *MDST) Reset() {
	for i := range t.entries {
		t.entries[i] = mdstEntry{}
	}
	t.clock = 0
	t.allocations, t.replacements, t.waitsRecorded, t.signalsMatched, t.freedStale = 0, 0, 0, 0, 0
}
