package memdep

import (
	"testing"
	"testing/quick"
)

func testConfig(pred PredictorKind) Config {
	return Config{Entries: 8, SyncSlots: 4, Predictor: pred}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Entries != 64 || c.CounterBits != 3 || c.Threshold != 3 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.InitialCounter <= c.Threshold-1 {
		t.Errorf("initial counter %d should predict a dependence", c.InitialCounter)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{CounterBits: 2, Threshold: 5}).Validate(); err == nil {
		t.Error("threshold exceeding counter range must be invalid")
	}
}

func TestDefaultConfigStages(t *testing.T) {
	c := DefaultConfig(8)
	if c.SyncSlots != 8 || c.Entries != 64 {
		t.Errorf("unexpected config: %+v", c)
	}
	if DefaultConfig(0).SyncSlots != 1 {
		t.Error("stages < 1 must clamp to 1")
	}
}

func TestPredictorKindString(t *testing.T) {
	if PredictSync.String() != "SYNC" || PredictESync.String() != "ESYNC" || PredictAlways.String() != "ALWAYS-SYNC" {
		t.Error("predictor names wrong")
	}
	if PredictorKind(42).String() == "" {
		t.Error("unknown predictor must produce a string")
	}
}

func TestMDPTAllocateAndLookup(t *testing.T) {
	m := NewMDPT(testConfig(PredictSync))
	pair := PairKey{LoadPC: 0x400, StorePC: 0x200}
	if _, ok := m.Lookup(pair); ok {
		t.Fatal("empty table must not contain the pair")
	}
	m.RecordMisspeculation(pair, 1, 0x1000)
	pred, ok := m.Lookup(pair)
	if !ok {
		t.Fatal("pair must be present after a mis-speculation")
	}
	if pred.Dist != 1 || pred.StoreTaskPC != 0x1000 {
		t.Errorf("prediction = %+v", pred)
	}
	if !pred.Sync {
		t.Error("freshly allocated entry must predict synchronization")
	}
	if m.Len() != 1 {
		t.Errorf("len = %d, want 1", m.Len())
	}
}

func TestMDPTCounterSaturates(t *testing.T) {
	m := NewMDPT(testConfig(PredictSync))
	pair := PairKey{LoadPC: 1, StorePC: 2}
	for i := 0; i < 20; i++ {
		m.RecordMisspeculation(pair, 1, 0)
	}
	pred, _ := m.Lookup(pair)
	if pred.Counter != 7 {
		t.Errorf("counter = %d, want saturation at 7", pred.Counter)
	}
	for i := 0; i < 20; i++ {
		m.Weaken(pair)
	}
	pred, _ = m.Lookup(pair)
	if pred.Counter != 0 {
		t.Errorf("counter = %d, want saturation at 0", pred.Counter)
	}
	if pred.Sync {
		t.Error("fully weakened entry must not predict synchronization")
	}
}

func TestMDPTWeakenBelowThresholdStopsPrediction(t *testing.T) {
	cfg := testConfig(PredictSync)
	m := NewMDPT(cfg)
	pair := PairKey{LoadPC: 1, StorePC: 2}
	m.RecordMisspeculation(pair, 1, 0)
	// Initial counter is threshold+1 = 4; two weakens drop it to 2 (< 3).
	m.Weaken(pair)
	m.Weaken(pair)
	pred, _ := m.Lookup(pair)
	if pred.Sync {
		t.Errorf("counter %d below threshold must not predict", pred.Counter)
	}
	// One more mis-speculation brings it back up.
	m.RecordMisspeculation(pair, 1, 0)
	pred, _ = m.Lookup(pair)
	if !pred.Sync {
		t.Error("mis-speculation must restore the prediction")
	}
}

func TestMDPTAlwaysPredictorIgnoresCounter(t *testing.T) {
	m := NewMDPT(testConfig(PredictAlways))
	pair := PairKey{LoadPC: 1, StorePC: 2}
	m.RecordMisspeculation(pair, 1, 0)
	for i := 0; i < 10; i++ {
		m.Weaken(pair)
	}
	pred, _ := m.Lookup(pair)
	if !pred.Sync {
		t.Error("ALWAYS predictor must always predict for a valid entry")
	}
}

func TestMDPTLRUReplacement(t *testing.T) {
	cfg := testConfig(PredictSync)
	cfg.Entries = 4
	m := NewMDPT(cfg)
	pairs := make([]PairKey, 5)
	for i := range pairs {
		pairs[i] = PairKey{LoadPC: uint64(0x100 + 4*i), StorePC: uint64(0x200 + 4*i)}
	}
	for _, p := range pairs[:4] {
		m.RecordMisspeculation(p, 1, 0)
	}
	// Touch pair 0 so pair 1 is the LRU victim.
	m.MatchesForLoad(pairs[0].LoadPC, nil)
	m.RecordMisspeculation(pairs[4], 1, 0)
	if _, ok := m.Lookup(pairs[1]); ok {
		t.Error("LRU entry (pair 1) should have been replaced")
	}
	if _, ok := m.Lookup(pairs[0]); !ok {
		t.Error("recently used entry (pair 0) should survive")
	}
	st := m.Stats()
	if st.Replacements != 1 || st.Allocations != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMDPTMultipleDependencesPerLoad(t *testing.T) {
	m := NewMDPT(testConfig(PredictSync))
	ld := uint64(0x500)
	m.RecordMisspeculation(PairKey{LoadPC: ld, StorePC: 0x100}, 1, 0)
	m.RecordMisspeculation(PairKey{LoadPC: ld, StorePC: 0x104}, 2, 0)
	matches := m.MatchesForLoad(ld, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(matches))
	}
	stores := map[uint64]bool{}
	for _, p := range matches {
		stores[p.Pair.StorePC] = true
	}
	if !stores[0x100] || !stores[0x104] {
		t.Error("both static dependences must match")
	}
	if got := m.MatchesForStore(0x104, nil); len(got) != 1 {
		t.Errorf("store matches = %d, want 1", len(got))
	}
}

func TestMDPTStrengthenWeakenUnknownPairIgnored(t *testing.T) {
	m := NewMDPT(testConfig(PredictSync))
	m.Strengthen(PairKey{LoadPC: 9, StorePC: 9})
	m.Weaken(PairKey{LoadPC: 9, StorePC: 9})
	if m.Len() != 0 {
		t.Error("strengthen/weaken must not allocate")
	}
}

func TestMDPTDistUpdatedOnRepeatMisspeculation(t *testing.T) {
	m := NewMDPT(testConfig(PredictSync))
	pair := PairKey{LoadPC: 1, StorePC: 2}
	m.RecordMisspeculation(pair, 1, 0xa)
	m.RecordMisspeculation(pair, 3, 0xb)
	pred, _ := m.Lookup(pair)
	if pred.Dist != 3 || pred.StoreTaskPC != 0xb {
		t.Errorf("entry not updated: %+v", pred)
	}
}

func TestMDPTReset(t *testing.T) {
	m := NewMDPT(testConfig(PredictSync))
	m.RecordMisspeculation(PairKey{LoadPC: 1, StorePC: 2}, 1, 0)
	m.Reset()
	if m.Len() != 0 {
		t.Error("reset must clear entries")
	}
	if m.Stats() != (MDPTStats{}) {
		t.Error("reset must clear stats")
	}
}

// Property: the number of valid entries never exceeds the capacity, and a
// pair that was just recorded is always found.
func TestMDPTCapacityInvariant(t *testing.T) {
	f := func(events []uint16) bool {
		cfg := testConfig(PredictSync)
		cfg.Entries = 16
		m := NewMDPT(cfg)
		for _, ev := range events {
			pair := PairKey{LoadPC: uint64(ev % 97), StorePC: uint64(ev % 53)}
			m.RecordMisspeculation(pair, uint64(ev%8), uint64(ev))
			if m.Len() > 16 {
				return false
			}
			if _, ok := m.Lookup(pair); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: counters always stay within [0, 2^bits-1].
func TestMDPTCounterBounds(t *testing.T) {
	f := func(ops []bool) bool {
		m := NewMDPT(testConfig(PredictSync))
		pair := PairKey{LoadPC: 1, StorePC: 2}
		m.RecordMisspeculation(pair, 1, 0)
		for _, strengthen := range ops {
			if strengthen {
				m.Strengthen(pair)
			} else {
				m.Weaken(pair)
			}
			pred, ok := m.Lookup(pair)
			if !ok || pred.Counter < 0 || pred.Counter > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
