package memdep

import (
	"reflect"
	"sort"
	"testing"
)

// resetRand is a fixed-seed xorshift64 so every reset-equivalence drive is
// deterministic and identical across instances.
type resetRand uint64

func (r *resetRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = resetRand(x)
	return x
}

func (r *resetRand) pair() PairKey {
	return PairKey{
		LoadPC:  0x1000 + (r.next()%24)*4,
		StorePC: 0x2000 + (r.next()%24)*4,
	}
}

// TestResetEquivalence is the reset-completeness regression gate for the
// prediction subsystem: driving a deterministic workload on an instance,
// Resetting it and driving the same workload again must observably match a
// fresh instance's run.  Any field Reset forgets -- LRU clocks, index maps,
// counters -- diverges the digests.  (The resetcomplete analyzer proves every
// field is mentioned; this proves the mentioned clears actually restore
// initial behavior.)
func TestResetEquivalence(t *testing.T) {
	cfg := Config{Entries: 16, SyncSlots: 8, Ways: 4}
	cases := []struct {
		name  string
		fresh func() interface{ Reset() }
		drive func(r interface{ Reset() }) any
	}{
		{
			name:  "MDPT",
			fresh: func() interface{ Reset() } { return NewMDPT(cfg) },
			drive: func(r interface{ Reset() }) any { return drivePredictor(r.(Predictor)) },
		},
		{
			name:  "SetAssocMDPT",
			fresh: func() interface{ Reset() } { return NewSetAssocMDPT(cfg) },
			drive: func(r interface{ Reset() }) any { return drivePredictor(r.(Predictor)) },
		},
		{
			name:  "StoreSetPredictor",
			fresh: func() interface{ Reset() } { return NewStoreSetPredictor(cfg) },
			drive: func(r interface{ Reset() }) any { return drivePredictor(r.(Predictor)) },
		},
		{
			name:  "MDST",
			fresh: func() interface{ Reset() } { return NewMDST(8) },
			drive: func(r interface{ Reset() }) any { return driveMDST(r.(*MDST)) },
		},
		{
			name:  "DDC",
			fresh: func() interface{ Reset() } { return NewDDC(8) },
			drive: func(r interface{ Reset() }) any { return driveDDC(r.(*DDC)) },
		},
		{
			name:  "System",
			fresh: func() interface{ Reset() } { return NewSystem(cfg) },
			drive: func(r interface{ Reset() }) any { return driveSystem(r.(*System)) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reused := tc.fresh()
			tc.drive(reused)
			reused.Reset()
			got := tc.drive(reused)
			want := tc.drive(tc.fresh())
			if !reflect.DeepEqual(got, want) {
				t.Errorf("drive after Reset diverges from fresh instance:\nreset: %+v\nfresh: %+v", got, want)
			}
		})
	}
}

// drivePredictor exercises every Predictor entry point with enough pressure
// to force replacements in a 16-entry table.
func drivePredictor(p Predictor) any {
	rnd := resetRand(1)
	var digest []any
	for i := 0; i < 400; i++ {
		pair := rnd.pair()
		switch i % 6 {
		case 0, 1:
			p.RecordMisspeculation(pair, rnd.next()%4, 0x3000+(rnd.next()%8)*4)
		case 2:
			p.Strengthen(pair)
		case 3:
			p.Weaken(pair)
		case 4:
			pred, ok := p.Lookup(pair)
			digest = append(digest, pred, ok)
		case 5:
			preds := p.MatchesForLoad(pair.LoadPC, nil)
			digest = append(digest, append([]Prediction(nil), preds...))
			preds = p.MatchesForStore(pair.StorePC, nil)
			digest = append(digest, append([]Prediction(nil), preds...))
		}
	}
	return append(digest, p.Len(), p.Stats())
}

// driveMDST allocates, signals and releases synchronization entries,
// overflowing the 8-entry table so the victim path runs too.
func driveMDST(m *MDST) any {
	rnd := resetRand(2)
	var digest []any
	for i := 0; i < 200; i++ {
		pair := rnd.pair()
		inst := rnd.next() % 8
		id := int64(rnd.next() % 16)
		switch i % 5 {
		case 0, 1:
			digest = append(digest, m.AllocWaiting(pair, inst, id))
		case 2:
			ldid, released := m.Signal(pair, inst, id)
			digest = append(digest, ldid, released)
		case 3:
			digest = append(digest, append([]PairKey(nil), m.ReleaseLoad(id)...))
		case 4:
			digest = append(digest, append([]PairKey(nil), m.ReleaseStore(id)...), m.HasWaiter(id))
		}
	}
	waiting := append([]int64(nil), m.WaitingLoads()...)
	sort.Slice(waiting, func(i, j int) bool { return waiting[i] < waiting[j] })
	return append(digest, waiting, m.Len(), m.Stats())
}

// driveDDC thrashes the 8-entry dependence cache to exercise LRU eviction.
func driveDDC(d *DDC) any {
	rnd := resetRand(3)
	var digest []any
	for i := 0; i < 100; i++ {
		digest = append(digest, d.Access(rnd.pair()))
	}
	return append(digest, d.Len(), d.Hits(), d.Misses())
}

// driveSystem runs the full load/store protocol: issue, signal, release,
// squash, commit and mis-speculation learning.
func driveSystem(s *System) any {
	rnd := resetRand(4)
	var digest []any
	for i := 0; i < 300; i++ {
		pair := rnd.pair()
		inst := rnd.next() % 8
		id := int64(rnd.next() % 16)
		switch i % 7 {
		case 0, 1:
			dec := s.LoadIssue(LoadQuery{PC: pair.LoadPC, Instance: inst, LDID: id})
			digest = append(digest, dec.Predicted, dec.Wait,
				append([]PairKey(nil), dec.WaitPairs...),
				append([]PairKey(nil), dec.ReadyPairs...))
		case 2, 3:
			dec := s.StoreIssue(StoreQuery{PC: pair.StorePC, Instance: inst, STID: id, TaskPC: 0x3000})
			digest = append(digest, dec.Matched,
				append([]int64(nil), dec.ReleasedLoads...),
				append([]PairKey(nil), dec.SignalledPairs...))
		case 4:
			s.RecordMisspeculation(pair, rnd.next()%4, 0x3000)
		case 5:
			digest = append(digest, s.ReleaseLoad(id), s.SquashStore(id))
		case 6:
			digest = append(digest, s.SquashLoad(id))
			s.CommitLoad(pair.LoadPC, pair.StorePC, nil)
		}
	}
	return append(digest, s.Stats())
}
