package memdep

import (
	"testing"
	"testing/quick"
)

func TestDDCBasicHitMiss(t *testing.T) {
	d := NewDDC(2)
	a := PairKey{LoadPC: 0x100, StorePC: 0x200}
	b := PairKey{LoadPC: 0x104, StorePC: 0x204}
	c := PairKey{LoadPC: 0x108, StorePC: 0x208}

	if d.Access(a) {
		t.Error("first access to a must miss")
	}
	if !d.Access(a) {
		t.Error("second access to a must hit")
	}
	if d.Access(b) {
		t.Error("first access to b must miss")
	}
	// a and b cached; c evicts the LRU (a, since b was touched more recently).
	if d.Access(c) {
		t.Error("first access to c must miss")
	}
	if d.Contains(a) {
		t.Error("a should have been evicted")
	}
	if !d.Contains(b) || !d.Contains(c) {
		t.Error("b and c should be cached")
	}
	if d.Hits() != 1 || d.Misses() != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", d.Hits(), d.Misses())
	}
	if got := d.MissRate(); got != 0.75 {
		t.Errorf("miss rate = %v, want 0.75", got)
	}
}

func TestDDCLRUOrderRespectsAccesses(t *testing.T) {
	d := NewDDC(2)
	a := PairKey{LoadPC: 1}
	b := PairKey{LoadPC: 2}
	c := PairKey{LoadPC: 3}
	d.Access(a)
	d.Access(b)
	d.Access(a) // touch a; b becomes LRU
	d.Access(c) // evicts b
	if !d.Contains(a) {
		t.Error("a must survive (recently used)")
	}
	if d.Contains(b) {
		t.Error("b must be evicted")
	}
}

func TestDDCZeroCapacity(t *testing.T) {
	d := NewDDC(0)
	p := PairKey{LoadPC: 1}
	for i := 0; i < 5; i++ {
		if d.Access(p) {
			t.Fatal("zero-capacity DDC must always miss")
		}
	}
	if d.MissRate() != 1 {
		t.Errorf("miss rate = %v, want 1", d.MissRate())
	}
	if d.Len() != 0 {
		t.Errorf("len = %d, want 0", d.Len())
	}
}

func TestDDCNegativeCapacityClamped(t *testing.T) {
	d := NewDDC(-5)
	if d.Capacity() != 0 {
		t.Errorf("capacity = %d, want 0", d.Capacity())
	}
}

func TestDDCMissRateEmptyCache(t *testing.T) {
	d := NewDDC(4)
	if d.MissRate() != 0 {
		t.Error("miss rate of untouched cache must be 0")
	}
}

func TestDDCReset(t *testing.T) {
	d := NewDDC(4)
	d.Access(PairKey{LoadPC: 1})
	d.Access(PairKey{LoadPC: 1})
	d.Reset()
	if d.Len() != 0 || d.Hits() != 0 || d.Misses() != 0 {
		t.Error("reset must clear contents and counters")
	}
}

// Property: the number of cached pairs never exceeds the capacity, and hits +
// misses equals the number of accesses.
func TestDDCInvariants(t *testing.T) {
	f := func(capacity uint8, accesses []uint16) bool {
		cap := int(capacity%32) + 1
		d := NewDDC(cap)
		for _, a := range accesses {
			// Draw from a small space of pairs to get both hits and misses.
			d.Access(PairKey{LoadPC: uint64(a % 64), StorePC: uint64(a % 16)})
			if d.Len() > cap {
				return false
			}
		}
		return d.Hits()+d.Misses() == uint64(len(accesses))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a DDC with capacity >= number of distinct pairs never misses
// after the first access to each pair (full associativity, LRU never evicts a
// live pair when there is room).
func TestDDCCompulsoryMissesOnly(t *testing.T) {
	f := func(accesses []uint8) bool {
		d := NewDDC(256)
		distinct := map[PairKey]bool{}
		for _, a := range accesses {
			pair := PairKey{LoadPC: uint64(a)}
			hit := d.Access(pair)
			if distinct[pair] && !hit {
				return false // non-compulsory miss
			}
			if !distinct[pair] && hit {
				return false // impossible hit
			}
			distinct[pair] = true
		}
		return d.Misses() == uint64(len(distinct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a larger DDC never has more misses than a smaller one on the same
// access stream (LRU inclusion property for full associativity).
func TestDDCMonotoneInCapacity(t *testing.T) {
	f := func(accesses []uint8) bool {
		small := NewDDC(8)
		large := NewDDC(64)
		for _, a := range accesses {
			pair := PairKey{LoadPC: uint64(a % 32), StorePC: uint64(a % 8)}
			small.Access(pair)
			large.Access(pair)
		}
		return large.Misses() <= small.Misses()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDDCEvictionTieBreakDeterministic forces the situation evictLRU must not
// decide by map iteration order: several entries sharing the same timestamp.
// Access never produces ties (the clock advances on every touch), but the
// eviction policy must stay deterministic even without that invariant, so the
// victim on a tie is pinned to the smallest (LoadPC, StorePC) pair.
func TestDDCEvictionTieBreakDeterministic(t *testing.T) {
	for trial := 0; trial < 32; trial++ {
		d := NewDDC(3)
		d.entries[PairKey{LoadPC: 0x300, StorePC: 0x30}] = 7
		d.entries[PairKey{LoadPC: 0x100, StorePC: 0x20}] = 7
		d.entries[PairKey{LoadPC: 0x100, StorePC: 0x10}] = 7
		d.clock = 7
		// The cache is full; the next miss evicts exactly one tied entry.
		if d.Access(PairKey{LoadPC: 0x400, StorePC: 0x40}) {
			t.Fatal("new pair must miss")
		}
		if d.Contains(PairKey{LoadPC: 0x100, StorePC: 0x10}) {
			t.Fatalf("trial %d: tie-break victim must be the smallest pair (0x100,0x10)", trial)
		}
		if !d.Contains(PairKey{LoadPC: 0x100, StorePC: 0x20}) || !d.Contains(PairKey{LoadPC: 0x300, StorePC: 0x30}) {
			t.Fatalf("trial %d: non-victim tied entries must survive", trial)
		}
	}
}
