package memdep

// StoreSetPredictor is a store-set-style organization of the dependence
// predictor (TableStoreSet), after Chrysos & Emer's store sets: instead of
// keeping one entry per static (store, load) pair, loads and stores that are
// transitively related by mis-speculations are merged into one *store set*
// with a shared confidence counter.  A load that belongs to a set predicts a
// dependence on every store member of that set, so a single mis-speculation
// against one store generalizes to its siblings -- fewer table entries cover
// chains like `a[i] = ...; ... = a[i-1]` reached through several store sites,
// at the price of false dependences when unrelated stores share a set.
//
// The structure is sized like the set-associative table: Entries/Ways sets,
// each holding at most Ways load members and Ways store members (LRU-evicted
// under pressure).  Per-pair state that the MDST protocol needs -- the
// dependence distance and the producing task's PC for ESYNC -- lives on the
// store member, so a store's signal still targets the right load instance.
//
//memdep:resettable
type StoreSetPredictor struct {
	cfg  Config //lint:reset-exempt construction-time configuration, immutable across runs
	ways int    //lint:reset-exempt set capacity fixed at construction
	sets []storeSet
	// loadSSIT / storeSSIT map a PC to the index of the set it belongs to
	// (the store set identifier tables).  A PC belongs to at most one set.
	loadSSIT  map[uint64]int
	storeSSIT map[uint64]int
	clock     uint64

	allocations  uint64
	replacements uint64
	strengthens  uint64
	weakens      uint64
}

var _ Predictor = (*StoreSetPredictor)(nil)

// ssLoad is one load member of a store set.
type ssLoad struct {
	pc      uint64
	lastUse uint64
}

// ssStore is one store member of a store set, carrying the per-dependence
// state the synchronization protocol needs.
type ssStore struct {
	pc          uint64
	dist        uint64
	storeTaskPC uint64
	lastUse     uint64
}

// storeSet is one set: its shared confidence counter and its members in
// insertion order (kept as slices so every walk is deterministic).
type storeSet struct {
	valid   bool
	counter int
	lastUse uint64
	loads   []ssLoad
	stores  []ssStore
}

// NewStoreSetPredictor creates a store-set predictor from the configuration.
// The constructor implies its own organization, so cfg.Table need not be set.
func NewStoreSetPredictor(cfg Config) *StoreSetPredictor {
	cfg.Table = TableStoreSet // so withDefaults applies the ways rules, not full-assoc's
	cfg = cfg.withDefaults()
	ways := cfg.Ways
	sets := cfg.Entries / ways
	if sets < 1 {
		sets = 1
	}
	return &StoreSetPredictor{
		cfg:       cfg,
		ways:      ways,
		sets:      make([]storeSet, sets),
		loadSSIT:  make(map[uint64]int),
		storeSSIT: make(map[uint64]int),
	}
}

// Kind implements Predictor.
func (t *StoreSetPredictor) Kind() TableKind { return TableStoreSet }

// Capacity returns the number of sets in the pool.
func (t *StoreSetPredictor) Capacity() int { return len(t.sets) }

// Len returns the number of valid sets.
func (t *StoreSetPredictor) Len() int {
	n := 0
	for i := range t.sets {
		if t.sets[i].valid {
			n++
		}
	}
	return n
}

func (t *StoreSetPredictor) touchSet(s *storeSet) {
	t.clock++
	s.lastUse = t.clock
}

func (t *StoreSetPredictor) prediction(pair PairKey, st *ssStore, counter int) Prediction {
	return Prediction{
		Pair:        pair,
		Dist:        st.dist,
		Counter:     counter,
		StoreTaskPC: st.storeTaskPC,
		Sync:        t.cfg.syncPredicted(counter),
	}
}

// Lookup implements Predictor: the pair is known when its load and store
// belong to the same set.
func (t *StoreSetPredictor) Lookup(pair PairKey) (Prediction, bool) {
	sid, ok := t.loadSSIT[pair.LoadPC]
	if !ok {
		return Prediction{}, false
	}
	if ssid, sok := t.storeSSIT[pair.StorePC]; !sok || ssid != sid {
		return Prediction{}, false
	}
	s := &t.sets[sid]
	for i := range s.stores {
		if s.stores[i].pc == pair.StorePC {
			return t.prediction(pair, &s.stores[i], s.counter), true
		}
	}
	return Prediction{}, false
}

// MatchesForLoad implements Predictor: a member load predicts a dependence on
// every store member of its set.  dst is caller-owned: results are never
// invalidated by a later call.
func (t *StoreSetPredictor) MatchesForLoad(loadPC uint64, dst []Prediction) []Prediction {
	sid, ok := t.loadSSIT[loadPC]
	if !ok {
		return dst
	}
	s := &t.sets[sid]
	t.touchSet(s)
	for i := range s.loads {
		if s.loads[i].pc == loadPC {
			s.loads[i].lastUse = t.clock
			break
		}
	}
	for i := range s.stores {
		st := &s.stores[i]
		dst = append(dst, t.prediction(PairKey{LoadPC: loadPC, StorePC: st.pc}, st, s.counter))
	}
	return dst
}

// MatchesForStore implements Predictor: a member store matches every load
// member of its set, carrying its own distance and task PC.  dst is
// caller-owned: results are never invalidated by a later call.
func (t *StoreSetPredictor) MatchesForStore(storePC uint64, dst []Prediction) []Prediction {
	sid, ok := t.storeSSIT[storePC]
	if !ok {
		return dst
	}
	s := &t.sets[sid]
	var st *ssStore
	for i := range s.stores {
		if s.stores[i].pc == storePC {
			st = &s.stores[i]
			break
		}
	}
	if st == nil {
		return dst
	}
	t.touchSet(s)
	st.lastUse = t.clock
	for i := range s.loads {
		dst = append(dst, t.prediction(PairKey{LoadPC: s.loads[i].pc, StorePC: storePC}, st, s.counter))
	}
	return dst
}

// RecordMisspeculation implements Predictor: place the load and the store in
// one common set (allocating or merging as needed) and raise its counter.
// Like the pair tables, the strengthens statistic counts only reinforcements
// of an already-known pair, not first allocations (or joins/merges).
func (t *StoreSetPredictor) RecordMisspeculation(pair PairKey, dist uint64, storeTaskPC uint64) {
	lsid, lok := t.loadSSIT[pair.LoadPC]
	ssid, sok := t.storeSSIT[pair.StorePC]
	known := lok && sok && lsid == ssid
	var sid int
	switch {
	case known:
		sid = lsid
	case lok && sok:
		// Two existing sets are related by this mis-speculation: merge into
		// the lower-indexed one (a deterministic tie-break, in the spirit of
		// the store-set "smaller identifier wins" rule).
		sid = t.merge(min(lsid, ssid), max(lsid, ssid))
	case lok:
		sid = lsid
	case sok:
		sid = ssid
	default:
		sid = t.allocSet()
	}
	s := &t.sets[sid]
	t.touchSet(s)
	t.addLoad(sid, pair.LoadPC)
	t.addStore(sid, pair.StorePC, dist, storeTaskPC)
	if s.counter < t.cfg.counterMax() {
		s.counter++
	}
	if known {
		t.strengthens++
	}
}

// allocSet returns the index of a set to allocate into: an invalid set if one
// exists, otherwise the LRU set (whose members are expelled from the SSITs).
func (t *StoreSetPredictor) allocSet() int {
	lru := 0
	for i := range t.sets {
		s := &t.sets[i]
		if !s.valid {
			t.allocations++
			s.valid = true
			s.counter = t.cfg.InitialCounter - 1 // RecordMisspeculation increments
			t.touchSet(s)
			return i
		}
		if s.lastUse < t.sets[lru].lastUse {
			lru = i
		}
	}
	t.replacements++
	t.allocations++
	t.invalidateSet(lru)
	s := &t.sets[lru]
	s.valid = true
	s.counter = t.cfg.InitialCounter - 1
	t.touchSet(s)
	return lru
}

// invalidateSet clears a set and removes its members from the SSITs.
func (t *StoreSetPredictor) invalidateSet(sid int) {
	s := &t.sets[sid]
	for i := range s.loads {
		delete(t.loadSSIT, s.loads[i].pc)
	}
	for i := range s.stores {
		delete(t.storeSSIT, s.stores[i].pc)
	}
	*s = storeSet{loads: s.loads[:0], stores: s.stores[:0]}
}

// merge moves the members of set `from` into set `into` (evicting LRU members
// of `into` if the ways bound overflows) and invalidates `from`.
func (t *StoreSetPredictor) merge(into, from int) int {
	src := &t.sets[from]
	loads := append([]ssLoad(nil), src.loads...)
	stores := append([]ssStore(nil), src.stores...)
	if c := src.counter; c > t.sets[into].counter {
		t.sets[into].counter = c
	}
	t.invalidateSet(from)
	for i := range loads {
		t.addLoad(into, loads[i].pc)
	}
	for i := range stores {
		t.addStore(into, stores[i].pc, stores[i].dist, stores[i].storeTaskPC)
	}
	return into
}

// addLoad makes loadPC a member of the set, evicting the set's LRU load
// member when the ways bound is reached.
func (t *StoreSetPredictor) addLoad(sid int, loadPC uint64) {
	s := &t.sets[sid]
	for i := range s.loads {
		if s.loads[i].pc == loadPC {
			t.clock++
			s.loads[i].lastUse = t.clock
			return
		}
	}
	if len(s.loads) >= t.ways {
		lru := 0
		for i := range s.loads {
			if s.loads[i].lastUse < s.loads[lru].lastUse {
				lru = i
			}
		}
		delete(t.loadSSIT, s.loads[lru].pc)
		s.loads = append(s.loads[:lru], s.loads[lru+1:]...)
		t.replacements++
	}
	t.clock++
	s.loads = append(s.loads, ssLoad{pc: loadPC, lastUse: t.clock})
	t.loadSSIT[loadPC] = sid
}

// addStore makes storePC a member of the set (updating its distance and task
// PC if already present), evicting the LRU store member under pressure.
func (t *StoreSetPredictor) addStore(sid int, storePC uint64, dist uint64, storeTaskPC uint64) {
	s := &t.sets[sid]
	for i := range s.stores {
		if s.stores[i].pc == storePC {
			t.clock++
			s.stores[i].dist = dist
			s.stores[i].storeTaskPC = storeTaskPC
			s.stores[i].lastUse = t.clock
			return
		}
	}
	if len(s.stores) >= t.ways {
		lru := 0
		for i := range s.stores {
			if s.stores[i].lastUse < s.stores[lru].lastUse {
				lru = i
			}
		}
		delete(t.storeSSIT, s.stores[lru].pc)
		s.stores = append(s.stores[:lru], s.stores[lru+1:]...)
		t.replacements++
	}
	t.clock++
	s.stores = append(s.stores, ssStore{pc: storePC, dist: dist, storeTaskPC: storeTaskPC, lastUse: t.clock})
	t.storeSSIT[storePC] = sid
}

// pairSet returns the set shared by the pair's load and store, or nil.
func (t *StoreSetPredictor) pairSet(pair PairKey) *storeSet {
	lsid, lok := t.loadSSIT[pair.LoadPC]
	ssid, sok := t.storeSSIT[pair.StorePC]
	if !lok || !sok || lsid != ssid {
		return nil
	}
	return &t.sets[lsid]
}

// Strengthen implements Predictor on the set's shared counter; pairs whose
// members do not share a set are ignored.
func (t *StoreSetPredictor) Strengthen(pair PairKey) {
	if s := t.pairSet(pair); s != nil {
		if s.counter < t.cfg.counterMax() {
			s.counter++
		}
		t.strengthens++
	}
}

// Weaken implements Predictor on the set's shared counter; pairs whose
// members do not share a set are ignored.
func (t *StoreSetPredictor) Weaken(pair PairKey) {
	if s := t.pairSet(pair); s != nil {
		if s.counter > 0 {
			s.counter--
		}
		t.weakens++
	}
}

// Stats implements Predictor.  LiveEntries counts valid sets.
func (t *StoreSetPredictor) Stats() MDPTStats {
	return MDPTStats{
		Allocations:  t.allocations,
		Replacements: t.replacements,
		Strengthens:  t.strengthens,
		Weakens:      t.weakens,
		LiveEntries:  t.Len(),
	}
}

// Reset implements Predictor.  The SSIT maps are cleared in place so a
// reused predictor allocates little in steady state.
func (t *StoreSetPredictor) Reset() {
	for i := range t.sets {
		s := &t.sets[i]
		*s = storeSet{loads: s.loads[:0], stores: s.stores[:0]}
	}
	clear(t.loadSSIT)
	clear(t.storeSSIT)
	t.clock = 0
	t.allocations, t.replacements, t.strengthens, t.weakens = 0, 0, 0, 0
}
