package memdep

// DDC is the data dependence cache of section 5.3: a fully associative, LRU
// managed cache of static store→load pairs.  A DDC of size n records the
// dependences that caused the n most recent mis-speculations.  The paper uses
// DDC hit/miss rates to show that the static dependences responsible for
// mis-speculations are few and exhibit temporal locality (Tables 5 and 7).
//
//memdep:resettable
type DDC struct {
	capacity int //lint:reset-exempt cache capacity fixed at construction
	clock    uint64
	entries  map[PairKey]uint64 // pair -> last access time
	hits     uint64
	misses   uint64
}

// NewDDC creates a data dependence cache that can hold up to capacity static
// dependence pairs.  A capacity of zero or less creates a cache that always
// misses.
func NewDDC(capacity int) *DDC {
	if capacity < 0 {
		capacity = 0
	}
	return &DDC{
		capacity: capacity,
		entries:  make(map[PairKey]uint64, capacity),
	}
}

// Capacity returns the cache capacity in entries.
func (d *DDC) Capacity() int { return d.capacity }

// Access records a mis-speculation of the given static pair.  It returns true
// if the pair was already cached (a hit).  On a miss the pair is inserted,
// evicting the least recently used entry if the cache is full.
func (d *DDC) Access(pair PairKey) bool {
	d.clock++
	if _, ok := d.entries[pair]; ok {
		d.hits++
		d.entries[pair] = d.clock
		return true
	}
	d.misses++
	if d.capacity == 0 {
		return false
	}
	if len(d.entries) >= d.capacity {
		d.evictLRU()
	}
	d.entries[pair] = d.clock
	return false
}

// evictLRU removes the least recently used pair.  Access stamps every touch
// with a fresh clock value, so timestamps are unique in practice, but the
// victim must not depend on map iteration order: the explicit PairKey
// tie-break keeps eviction deterministic even if that invariant is ever
// relaxed.
func (d *DDC) evictLRU() {
	var victim PairKey
	oldest := uint64(1<<64 - 1)
	first := true
	for pair, when := range d.entries { //lint:deterministic strict min-reduction with PairKey tie-break
		if first || when < oldest || (when == oldest && pairKeyLess(pair, victim)) {
			first = false
			oldest = when
			victim = pair
		}
	}
	delete(d.entries, victim)
}

// pairKeyLess orders PairKeys by (LoadPC, StorePC); it is the eviction
// tie-break, not a semantic ordering.
func pairKeyLess(a, b PairKey) bool {
	if a.LoadPC != b.LoadPC {
		return a.LoadPC < b.LoadPC
	}
	return a.StorePC < b.StorePC
}

// Hits returns the number of accesses that found their pair cached.
func (d *DDC) Hits() uint64 { return d.hits }

// Misses returns the number of accesses that did not find their pair cached.
func (d *DDC) Misses() uint64 { return d.misses }

// Accesses returns the total number of accesses.
func (d *DDC) Accesses() uint64 { return d.hits + d.misses }

// MissRate returns misses divided by total accesses, as a fraction in [0,1].
// It returns 0 when there have been no accesses.
func (d *DDC) MissRate() float64 {
	total := d.Accesses()
	if total == 0 {
		return 0
	}
	return float64(d.misses) / float64(total)
}

// Len returns the number of pairs currently cached.
func (d *DDC) Len() int { return len(d.entries) }

// Contains reports whether the pair is currently cached (without touching LRU
// state or counters).
func (d *DDC) Contains(pair PairKey) bool {
	_, ok := d.entries[pair]
	return ok
}

// Reset clears the cache contents and counters in place, retaining the map's
// storage for reuse.
func (d *DDC) Reset() {
	clear(d.entries)
	d.hits, d.misses, d.clock = 0, 0, 0
}
