package memdep

import (
	"testing"
	"testing/quick"
)

func newTestSystem(pred PredictorKind) *System {
	return NewSystem(Config{Entries: 16, SyncSlots: 4, Predictor: pred})
}

func TestSystemColdLoadDoesNotWait(t *testing.T) {
	s := newTestSystem(PredictSync)
	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 5, LDID: 1})
	if d.Predicted || d.Wait {
		t.Errorf("cold load must not be predicted dependent: %+v", d)
	}
}

func TestSystemLearnsAfterMisspeculation(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}

	// A mis-speculation at distance 1 teaches the pair.
	s.RecordMisspeculation(pair, 1, 0x1000)

	// The next dynamic instance of the load is predicted dependent and waits.
	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 11})
	if !d.Predicted || !d.Wait {
		t.Fatalf("load must be predicted and wait: %+v", d)
	}
	if len(d.WaitPairs) != 1 || d.WaitPairs[0] != pair {
		t.Errorf("wait pairs = %v", d.WaitPairs)
	}

	// The matching store (instance 6 = 7 - dist) signals and releases it.
	sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: 6, STID: 21, TaskPC: 0x1000})
	if !sd.Matched {
		t.Fatal("store must match the prediction entry")
	}
	if len(sd.ReleasedLoads) != 1 || sd.ReleasedLoads[0] != 11 {
		t.Fatalf("released loads = %v, want [11]", sd.ReleasedLoads)
	}
}

func TestSystemReleaseHook(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0x1000)

	var released []int64
	s.SetReleaseHook(func(ldid int64) { released = append(released, ldid) })

	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 11})
	if !d.Wait {
		t.Fatalf("load must wait: %+v", d)
	}
	if len(released) != 0 {
		t.Fatalf("hook fired before any store: %v", released)
	}
	sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: 6, STID: 21, TaskPC: 0x1000})
	if !sd.Matched {
		t.Fatal("store must match the prediction entry")
	}
	if len(released) != 1 || released[0] != 11 {
		t.Errorf("hook releases = %v, want [11]", released)
	}
	// With a hook registered, releases are delivered exclusively through it.
	if sd.ReleasedLoads != nil {
		t.Errorf("ReleasedLoads = %v, want nil while a hook is registered", sd.ReleasedLoads)
	}
	if s.Stats().LoadsReleasedByStore != 1 {
		t.Errorf("LoadsReleasedByStore = %d, want 1", s.Stats().LoadsReleasedByStore)
	}

	// Removing the hook restores the polled interface.
	s.SetReleaseHook(nil)
	s.LoadIssue(LoadQuery{PC: 0x100, Instance: 9, LDID: 13})
	sd = s.StoreIssue(StoreQuery{PC: 0x80, Instance: 8, STID: 23, TaskPC: 0x1000})
	if len(sd.ReleasedLoads) != 1 || sd.ReleasedLoads[0] != 13 {
		t.Errorf("released loads = %v, want [13] after hook removal", sd.ReleasedLoads)
	}
	if len(released) != 1 {
		t.Errorf("hook fired after removal: %v", released)
	}
}

func TestSystemStoreFirstLoadDoesNotWait(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)

	// Store issues first (instance 6 targets load instance 7).
	sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: 6, STID: 21})
	if !sd.Matched || len(sd.ReleasedLoads) != 0 {
		t.Fatalf("store decision = %+v", sd)
	}
	// The load then issues and finds the condition variable full.
	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 11})
	if !d.Predicted {
		t.Error("load must still be predicted dependent")
	}
	if d.Wait {
		t.Error("load must not wait when the store has already signalled")
	}
	if len(d.ReadyPairs) != 1 {
		t.Errorf("ready pairs = %v", d.ReadyPairs)
	}
}

func TestSystemWrongInstanceDoesNotRelease(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)

	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 11})
	if !d.Wait {
		t.Fatal("load must wait")
	}
	// A store of a different instance (distance mismatch) signals instance 9.
	sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: 8, STID: 21})
	if len(sd.ReleasedLoads) != 0 {
		t.Errorf("released loads = %v, want none", sd.ReleasedLoads)
	}
	if !s.MDST().HasWaiter(11) {
		t.Error("load 11 must still be waiting")
	}
}

func TestSystemReleaseLoadWeakensPrediction(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)

	before, _ := s.MDPT().Lookup(pair)
	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 11})
	if !d.Wait {
		t.Fatal("load must wait")
	}
	// All prior stores resolve without a signal: the load is released and the
	// prediction weakened.
	if n := s.ReleaseLoad(11); n != 1 {
		t.Fatalf("released %d entries, want 1", n)
	}
	after, _ := s.MDPT().Lookup(pair)
	if after.Counter >= before.Counter {
		t.Errorf("counter %d -> %d, want weakened", before.Counter, after.Counter)
	}
	if s.MDST().HasWaiter(11) {
		t.Error("entry must be freed")
	}
}

func TestSystemSquashDoesNotTouchPredictor(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)
	before, _ := s.MDPT().Lookup(pair)

	s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 11})
	if n := s.SquashLoad(11); n != 1 {
		t.Fatalf("squash freed %d entries, want 1", n)
	}
	after, _ := s.MDPT().Lookup(pair)
	if after.Counter != before.Counter {
		t.Error("squash must not update the predictor (updates are non-speculative)")
	}
}

func TestSystemSquashStore(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)
	s.StoreIssue(StoreQuery{PC: 0x80, Instance: 6, STID: 21})
	if s.MDST().Len() != 1 {
		t.Fatal("store must have pre-set a condition variable")
	}
	if n := s.SquashStore(21); n != 1 {
		t.Fatalf("squash freed %d entries, want 1", n)
	}
}

func TestSystemCounterLearnsToStopPredicting(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)

	// The dependence stops occurring: commits keep weakening the entry.
	for i := 0; i < 6; i++ {
		d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: uint64(10 + i), LDID: int64(100 + i)})
		if d.Predicted {
			s.ReleaseLoad(int64(100 + i))
			s.CommitLoad(0x100, 0, d.WaitPairs)
		}
	}
	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 50, LDID: 999})
	if d.Predicted {
		t.Error("after repeated false predictions the counter must drop below threshold")
	}
}

func TestSystemCommitLoadStrengthensConfirmedDependence(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)
	before, _ := s.MDPT().Lookup(pair)
	s.CommitLoad(0x100, 0x80, []PairKey{pair})
	after, _ := s.MDPT().Lookup(pair)
	if after.Counter <= before.Counter {
		t.Errorf("counter %d -> %d, want strengthened", before.Counter, after.Counter)
	}
	// A commit whose actual producer differs weakens it.
	s.CommitLoad(0x100, 0x9999, []PairKey{pair})
	final, _ := s.MDPT().Lookup(pair)
	if final.Counter >= after.Counter {
		t.Error("mismatched producer must weaken the entry")
	}
}

func TestSystemESyncFiltersOnTaskPC(t *testing.T) {
	s := newTestSystem(PredictESync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	// The dependence was learned with the producing task at PC 0xAAAA.
	s.RecordMisspeculation(pair, 1, 0xAAAA)

	// Case 1: the task at distance 1 is a different task; ESYNC suppresses
	// the synchronization and the load does not wait.
	d := s.LoadIssue(LoadQuery{
		PC: 0x100, Instance: 7, LDID: 1,
		TaskPCAt: func(inst uint64) (uint64, bool) {
			if inst == 6 {
				return 0xBBBB, true
			}
			return 0, false
		},
	})
	if d.Wait {
		t.Error("ESYNC must suppress synchronization when the producing task differs")
	}
	if s.Stats().ESyncFiltered == 0 {
		t.Error("filter counter must increase")
	}

	// Case 2: the task at distance 1 matches; the load waits.
	d = s.LoadIssue(LoadQuery{
		PC: 0x100, Instance: 9, LDID: 2,
		TaskPCAt: func(inst uint64) (uint64, bool) {
			if inst == 8 {
				return 0xAAAA, true
			}
			return 0, false
		},
	})
	if !d.Wait {
		t.Error("ESYNC must enforce synchronization when the producing task matches")
	}

	// Case 3: unknown task PC falls back to enforcing the synchronization.
	d = s.LoadIssue(LoadQuery{PC: 0x100, Instance: 11, LDID: 3})
	if !d.Wait {
		t.Error("unknown task PC must conservatively synchronize")
	}
}

func TestSystemSyncPredictorIgnoresTaskPC(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0xAAAA)
	d := s.LoadIssue(LoadQuery{
		PC: 0x100, Instance: 7, LDID: 1,
		TaskPCAt: func(uint64) (uint64, bool) { return 0xBBBB, true },
	})
	if !d.Wait {
		t.Error("SYNC predictor must not filter on task PC")
	}
}

func TestSystemMultipleDependencesLoadWaitsForAll(t *testing.T) {
	s := newTestSystem(PredictSync)
	a := PairKey{LoadPC: 0x100, StorePC: 0x80}
	b := PairKey{LoadPC: 0x100, StorePC: 0x84}
	s.RecordMisspeculation(a, 1, 0)
	s.RecordMisspeculation(b, 2, 0)

	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 10, LDID: 5})
	if len(d.WaitPairs) != 2 {
		t.Fatalf("wait pairs = %v, want 2", d.WaitPairs)
	}
	// First store signals: the load must remain waiting (not reported
	// released) because its second dependence is outstanding.
	sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: 9, STID: 1})
	if len(sd.ReleasedLoads) != 0 {
		t.Fatalf("load released too early: %+v", sd)
	}
	// Second store signals: now the load is released.
	sd = s.StoreIssue(StoreQuery{PC: 0x84, Instance: 8, STID: 2})
	if len(sd.ReleasedLoads) != 1 || sd.ReleasedLoads[0] != 5 {
		t.Fatalf("released = %v, want [5]", sd.ReleasedLoads)
	}
}

func TestSystemTagByAddressAblation(t *testing.T) {
	s := NewSystem(Config{Entries: 16, SyncSlots: 4, Predictor: PredictSync, TagByAddress: true})
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)

	d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: 7, LDID: 1, Addr: 0xdead0})
	if !d.Wait {
		t.Fatal("load must wait")
	}
	// A store to a different address must not release it; same address must.
	sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: 6, STID: 2, Addr: 0xbeef0})
	if len(sd.ReleasedLoads) != 0 {
		t.Error("store to unrelated address must not release the load")
	}
	sd = s.StoreIssue(StoreQuery{PC: 0x80, Instance: 6, STID: 2, Addr: 0xdead0})
	if len(sd.ReleasedLoads) != 1 {
		t.Error("store to the same address must release the load")
	}
}

func TestSystemStatsAccumulate(t *testing.T) {
	s := newTestSystem(PredictSync)
	pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
	s.RecordMisspeculation(pair, 1, 0)
	s.LoadIssue(LoadQuery{PC: 0x100, Instance: 3, LDID: 1})
	s.StoreIssue(StoreQuery{PC: 0x80, Instance: 2, STID: 2})
	st := s.Stats()
	if st.Misspeculations != 1 || st.LoadQueries != 1 || st.StoreQueries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LoadsMadeToWait != 1 || st.LoadsReleasedByStore != 1 {
		t.Errorf("stats = %+v", st)
	}
	s.Reset()
	if s.Stats() != (SystemStats{}) || s.MDPT().Len() != 0 || s.MDST().Len() != 0 {
		t.Error("reset must clear everything")
	}
}

// Property: for a single learned dependence, any interleaving of a store
// signal and a load issue with matching instances releases the load exactly
// once and leaves no waiter behind.
func TestSystemSynchronizationAlwaysResolves(t *testing.T) {
	f := func(storeFirst bool, instanceSmall uint8, dist8 uint8) bool {
		dist := uint64(dist8%4 + 1)
		loadInstance := uint64(instanceSmall) + dist // ensure >= dist
		s := newTestSystem(PredictSync)
		pair := PairKey{LoadPC: 0x100, StorePC: 0x80}
		s.RecordMisspeculation(pair, dist, 0)

		released := false
		if storeFirst {
			s.StoreIssue(StoreQuery{PC: 0x80, Instance: loadInstance - dist, STID: 1})
			d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: loadInstance, LDID: 9})
			released = !d.Wait
		} else {
			d := s.LoadIssue(LoadQuery{PC: 0x100, Instance: loadInstance, LDID: 9})
			if !d.Wait {
				return false
			}
			sd := s.StoreIssue(StoreQuery{PC: 0x80, Instance: loadInstance - dist, STID: 1})
			released = len(sd.ReleasedLoads) == 1 && sd.ReleasedLoads[0] == 9
		}
		return released && !s.MDST().HasWaiter(9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
