package memdep

import (
	"testing"
	"testing/quick"
)

func TestMDSTWaitThenSignal(t *testing.T) {
	m := NewMDST(8)
	pair := PairKey{LoadPC: 0x40, StorePC: 0x20}

	// Load arrives first: it must wait (figure 4, parts (c)/(d)).
	if !m.AllocWaiting(pair, 3, 77) {
		t.Fatal("load arriving before the store must wait")
	}
	if got := m.WaitingLoads(); len(got) != 1 || got[0] != 77 {
		t.Fatalf("waiting loads = %v", got)
	}
	// Store signals the instance: the waiting load is released, the entry
	// freed.
	ldid, released := m.Signal(pair, 3, 5)
	if !released || ldid != 77 {
		t.Fatalf("signal returned (%d,%v), want (77,true)", ldid, released)
	}
	if m.Len() != 0 {
		t.Errorf("entry must be freed after synchronization, len = %d", m.Len())
	}
}

func TestMDSTSignalThenWait(t *testing.T) {
	m := NewMDST(8)
	pair := PairKey{LoadPC: 0x40, StorePC: 0x20}

	// Store arrives first: it pre-sets the condition variable (figure 4,
	// parts (e)/(f)).
	ldid, released := m.Signal(pair, 3, 5)
	if released || ldid != invalidID {
		t.Fatal("signal with no waiter must not release a load")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1 (full entry allocated)", m.Len())
	}
	// Load arrives later: it must not wait, and the entry is consumed.
	if m.AllocWaiting(pair, 3, 77) {
		t.Fatal("load arriving after the signal must not wait")
	}
	if m.Len() != 0 {
		t.Errorf("entry must be consumed, len = %d", m.Len())
	}
}

func TestMDSTInstanceDistinguishesDynamicDependences(t *testing.T) {
	m := NewMDST(8)
	pair := PairKey{LoadPC: 0x40, StorePC: 0x20}
	if !m.AllocWaiting(pair, 3, 30) {
		t.Fatal("load instance 3 must wait")
	}
	if !m.AllocWaiting(pair, 4, 40) {
		t.Fatal("load instance 4 must wait independently")
	}
	// Signalling instance 4 must not release instance 3.
	ldid, released := m.Signal(pair, 4, 1)
	if !released || ldid != 40 {
		t.Fatalf("expected release of load 40, got (%d,%v)", ldid, released)
	}
	if got := m.WaitingLoads(); len(got) != 1 || got[0] != 30 {
		t.Fatalf("waiting loads = %v, want [30]", got)
	}
}

func TestMDSTSignalWrongInstanceDoesNotRelease(t *testing.T) {
	m := NewMDST(8)
	pair := PairKey{LoadPC: 1, StorePC: 2}
	m.AllocWaiting(pair, 10, 99)
	if _, released := m.Signal(pair, 11, 0); released {
		t.Fatal("signal for a different instance must not release")
	}
	if !m.HasWaiter(99) {
		t.Error("load 99 must still be waiting")
	}
}

func TestMDSTReleaseLoadFreesAllEntries(t *testing.T) {
	m := NewMDST(8)
	a := PairKey{LoadPC: 1, StorePC: 2}
	b := PairKey{LoadPC: 1, StorePC: 6}
	m.AllocWaiting(a, 5, 42)
	m.AllocWaiting(b, 5, 42)
	if !m.HasWaiter(42) {
		t.Fatal("load 42 must be waiting")
	}
	freed := m.ReleaseLoad(42)
	if len(freed) != 2 {
		t.Fatalf("freed %d entries, want 2", len(freed))
	}
	if m.HasWaiter(42) || m.Len() != 0 {
		t.Error("release must free all entries of the load")
	}
}

func TestMDSTReleaseStoreOnlyFreesUnmatchedEntries(t *testing.T) {
	m := NewMDST(8)
	pair := PairKey{LoadPC: 1, StorePC: 2}
	// Full entry pre-set by store 9, never consumed.
	m.Signal(pair, 3, 9)
	// Waiting entry belonging to a load (different instance).
	m.AllocWaiting(pair, 4, 55)
	freed := m.ReleaseStore(9)
	if len(freed) != 1 {
		t.Fatalf("freed %d entries, want 1", len(freed))
	}
	if !m.HasWaiter(55) {
		t.Error("the waiting load's entry must survive a store squash")
	}
}

func TestMDSTVictimPrefersFullEntries(t *testing.T) {
	m := NewMDST(2)
	// Fill the table with one full (pre-signalled) and one waiting entry.
	m.Signal(PairKey{LoadPC: 1, StorePC: 2}, 1, 9)       // full
	m.AllocWaiting(PairKey{LoadPC: 3, StorePC: 4}, 1, 7) // waiting
	// A new allocation must evict the full entry, not the waiter.
	m.AllocWaiting(PairKey{LoadPC: 5, StorePC: 6}, 1, 8)
	if !m.HasWaiter(7) {
		t.Error("waiting entry must not be evicted while a full entry exists")
	}
	if !m.HasWaiter(8) {
		t.Error("new waiter must be allocated")
	}
}

func TestMDSTHasWaiterMultipleDependences(t *testing.T) {
	m := NewMDST(8)
	a := PairKey{LoadPC: 1, StorePC: 2}
	b := PairKey{LoadPC: 1, StorePC: 6}
	m.AllocWaiting(a, 5, 42)
	m.AllocWaiting(b, 5, 42)
	// One signal releases entry a, but the load still waits on b.
	ldid, released := m.Signal(a, 5, 0)
	if !released || ldid != 42 {
		t.Fatalf("signal = (%d,%v)", ldid, released)
	}
	if !m.HasWaiter(42) {
		t.Error("load 42 must still wait on its second dependence")
	}
	if _, released := m.Signal(b, 5, 0); !released {
		t.Error("second signal must release the remaining entry")
	}
	if m.HasWaiter(42) {
		t.Error("load 42 must not wait any more")
	}
}

func TestMDSTCapacityClamp(t *testing.T) {
	if NewMDST(0).Capacity() != 1 {
		t.Error("capacity must clamp to at least 1")
	}
}

func TestMDSTStatsAndReset(t *testing.T) {
	m := NewMDST(4)
	pair := PairKey{LoadPC: 1, StorePC: 2}
	m.AllocWaiting(pair, 1, 1)
	m.Signal(pair, 1, 2)
	st := m.Stats()
	if st.Allocations == 0 || st.WaitsRecorded == 0 || st.SignalsMatched == 0 {
		t.Errorf("stats = %+v", st)
	}
	m.Reset()
	if m.Len() != 0 || m.Stats() != (MDSTStats{}) {
		t.Error("reset must clear entries and counters")
	}
}

// Property: wait-then-signal and signal-then-wait both result in exactly one
// release of the load and an empty table, regardless of order.
func TestMDSTSynchronizationOrderIndependent(t *testing.T) {
	f := func(storeFirst bool, instance uint64, ldid int64) bool {
		if ldid < 0 {
			ldid = -ldid
		}
		m := NewMDST(4)
		pair := PairKey{LoadPC: 0x10, StorePC: 0x20}
		if storeFirst {
			if _, released := m.Signal(pair, instance, 1); released {
				return false
			}
			if m.AllocWaiting(pair, instance, ldid) {
				return false // must not wait
			}
		} else {
			if !m.AllocWaiting(pair, instance, ldid) {
				return false // must wait
			}
			got, released := m.Signal(pair, instance, 1)
			if !released || got != ldid {
				return false
			}
		}
		return m.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the table never exceeds its capacity and never holds two live
// waiting entries for the same (pair, instance).
func TestMDSTNoDuplicateLiveEntries(t *testing.T) {
	type op struct {
		Store    bool
		Pair     uint8
		Instance uint8
		ID       uint8
	}
	f := func(ops []op) bool {
		m := NewMDST(8)
		for _, o := range ops {
			pair := PairKey{LoadPC: uint64(o.Pair % 4), StorePC: uint64(o.Pair%4) + 100}
			if o.Store {
				m.Signal(pair, uint64(o.Instance%4), int64(o.ID))
			} else {
				m.AllocWaiting(pair, uint64(o.Instance%4), int64(o.ID))
			}
			if m.Len() > m.Capacity() {
				return false
			}
			// Check for duplicate live entries per (pair, instance).
			seen := map[[3]uint64]int{}
			for i := range m.entries {
				e := &m.entries[i]
				if e.valid {
					key := [3]uint64{e.loadPC, e.storePC, e.instance}
					seen[key]++
					if seen[key] > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMDSTIndexConsistency drives a small table through a randomized mix of
// operations and, after every step, rebuilds the dynamic-instance index and
// the per-ldid waiter counts from the entry array (the source of truth).  The
// incremental indexes must match exactly -- they carry no information of
// their own.
func TestMDSTIndexConsistency(t *testing.T) {
	m := NewMDST(8)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	check := func(step int) {
		t.Helper()
		index := make(map[mdstKey]int32)
		waiting := make(map[int64]int32)
		for i := range m.entries {
			e := &m.entries[i]
			if !e.valid {
				continue
			}
			k := mdstKey{e.loadPC, e.storePC, e.instance}
			if prev, dup := index[k]; dup {
				t.Fatalf("step %d: slots %d and %d share key %+v", step, prev, i, k)
			}
			index[k] = int32(i)
			if !e.full && e.ldid != invalidID {
				waiting[e.ldid]++
			}
		}
		if len(index) != len(m.index) {
			t.Fatalf("step %d: index has %d keys, entries have %d valid", step, len(m.index), len(index))
		}
		for k, i := range index {
			if got, ok := m.index[k]; !ok || got != i {
				t.Fatalf("step %d: index[%+v] = %d,%t, want %d", step, k, got, ok, i)
			}
		}
		if len(waiting) != len(m.waiting) {
			t.Fatalf("step %d: waiting has %d ldids, entries imply %d", step, len(m.waiting), len(waiting))
		}
		for id, n := range waiting {
			if got := m.waiting[id]; got != n {
				t.Fatalf("step %d: waiting[%d] = %d, want %d", step, id, got, n)
			}
		}
	}
	for step := 0; step < 4000; step++ {
		pair := PairKey{LoadPC: 0x100 + next(4)*8, StorePC: 0x200 + next(4)*8}
		instance := next(6)
		id := int64(next(12))
		switch next(5) {
		case 0, 1:
			m.AllocWaiting(pair, instance, id)
		case 2:
			m.Signal(pair, instance, id)
		case 3:
			m.ReleaseLoad(id)
		case 4:
			m.ReleaseStore(id)
		}
		check(step)
	}
	m.Reset()
	check(-1)
}
