package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// fakeTier is an in-memory Tier that records its traffic.
type fakeTier struct {
	mu sync.Mutex
	//memdep:guardedby mu
	objects map[string]any
	//memdep:guardedby mu
	loads int
	//memdep:guardedby mu
	saves int
}

func newFakeTier() *fakeTier {
	return &fakeTier{objects: map[string]any{}}
}

func (f *fakeTier) Load(kind, key string) (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	v, ok := f.objects[kind+"\x00"+key]
	return v, ok
}

func (f *fakeTier) Save(kind, key string, v any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.saves++
	f.objects[kind+"\x00"+key] = v
}

func (f *fakeTier) snapshot() (loads, saves int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.loads, f.saves
}

// seed stores a result under the composition Do uses for tier lookups.
func (f *fakeTier) seed(spec Spec, v any) {
	f.Save(spec.JobKind(), spec.CacheKey(), v)
}

func TestTierMissComputesAndSaves(t *testing.T) {
	e, sim := newTestEngine(2)
	tier := newFakeTier()
	e.SetTier(tier)

	v, err := Resolve[string](context.Background(), e, echoSpec{id: "a"})
	if err != nil || v != "a" {
		t.Fatalf("Resolve = %v, %v", v, err)
	}
	if n := sim.computed.Load(); n != 1 {
		t.Fatalf("computed %d, want 1", n)
	}
	loads, saves := tier.snapshot()
	if loads != 1 || saves != 1 {
		t.Fatalf("tier loads=%d saves=%d, want 1/1 (miss then write-behind)", loads, saves)
	}
	if e.Executed() != 1 {
		t.Fatalf("executed = %d, want 1", e.Executed())
	}

	// The in-memory tier answers repeats; the disk tier is not re-consulted.
	if _, err := Resolve[string](context.Background(), e, echoSpec{id: "a"}); err != nil {
		t.Fatal(err)
	}
	if loads, _ := tier.snapshot(); loads != 1 {
		t.Fatalf("tier consulted %d times, want 1 (memory cache must answer first)", loads)
	}
}

func TestTierHitSkipsComputation(t *testing.T) {
	e, sim := newTestEngine(2)
	tier := newFakeTier()
	spec := echoSpec{id: "warm"}
	tier.seed(spec, "from-disk")
	e.SetTier(tier)

	v, err := Resolve[string](context.Background(), e, spec)
	if err != nil || v != "from-disk" {
		t.Fatalf("Resolve = %v, %v; want the tier's value", v, err)
	}
	if n := sim.computed.Load(); n != 0 {
		t.Fatalf("computed %d, want 0 (tier hit must skip the simulator)", n)
	}
	// A tier hit is not an execution: warm runs report Executed() == 0.
	if e.Executed() != 0 {
		t.Fatalf("executed = %d, want 0 on a tier hit", e.Executed())
	}
	if _, saves := tier.snapshot(); saves != 1 {
		t.Fatalf("saves = %d, want 1 (the seed only; hits must not re-save)", saves)
	}
	// The hit is memoized in memory like any other result.
	if _, err := Resolve[string](context.Background(), e, spec); err != nil {
		t.Fatal(err)
	}
	if e.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", e.Hits())
	}
}

func TestTierNeverSeesErrors(t *testing.T) {
	e, _ := newTestEngine(2)
	tier := newFakeTier()
	e.SetTier(tier)

	if _, err := e.Do(context.Background(), echoSpec{id: "bad", fail: true}); err == nil {
		t.Fatal("want error")
	}
	if _, err := e.Do(context.Background(), echoSpec{id: "p", panics: true}); err == nil {
		t.Fatal("want panic error")
	}
	if _, saves := tier.snapshot(); saves != 0 {
		t.Fatalf("saves = %d, want 0 (failed jobs must never persist)", saves)
	}
}

func TestTierCancellationNotPersisted(t *testing.T) {
	e, _ := newTestEngine(2)
	tier := newFakeTier()
	e.SetTier(tier)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Do(ctx, echoSpec{id: "never"}); err == nil {
		t.Fatal("want cancellation error")
	}
	if _, saves := tier.snapshot(); saves != 0 {
		t.Fatalf("saves = %d, want 0 (cancelled jobs must never persist)", saves)
	}
}

func TestTierConcurrentCallersLoadOnce(t *testing.T) {
	e, sim := newTestEngine(8)
	tier := newFakeTier()
	spec := echoSpec{id: "contended"}
	tier.seed(spec, "shared")
	e.SetTier(tier)

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := Resolve[string](context.Background(), e, spec)
			if err != nil || v != "shared" {
				t.Errorf("Resolve = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if loads, _ := tier.snapshot(); loads != 1 {
		t.Fatalf("tier loaded %d times under contention, want 1 (singleflight)", loads)
	}
	if n := sim.computed.Load(); n != 0 {
		t.Fatalf("computed %d, want 0", n)
	}
}

func TestTierDistinctKeysDoNotCollide(t *testing.T) {
	e, _ := newTestEngine(4)
	tier := newFakeTier()
	e.SetTier(tier)
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("job-%d", i)
		v, err := Resolve[string](context.Background(), e, echoSpec{id: id})
		if err != nil || v != id {
			t.Fatalf("Resolve(%s) = %v, %v", id, v, err)
		}
	}
	tier.mu.Lock()
	n := len(tier.objects)
	tier.mu.Unlock()
	if n != 8 {
		t.Fatalf("tier holds %d objects, want 8", n)
	}
}
