package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// blockSpec is a job that blocks until the test releases it (or the context
// is cancelled, if the job honours it).
type blockSpec struct {
	id        string
	honourCtx bool
}

func (blockSpec) JobKind() string    { return "test/block" }
func (s blockSpec) CacheKey() string { return s.id }

type blockSim struct {
	started  chan string
	release  chan struct{}
	computed atomic.Uint64
}

func (*blockSim) JobKind() string { return "test/block" }

func (s *blockSim) Simulate(ctx context.Context, _ *Engine, spec Spec) (any, error) {
	job := spec.(blockSpec)
	s.computed.Add(1)
	s.started <- job.id
	if job.honourCtx {
		select {
		case <-s.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	} else {
		<-s.release
	}
	return job.id, nil
}

func newBlockEngine(workers int) (*Engine, *blockSim) {
	e := New(workers)
	sim := &blockSim{started: make(chan string, 64), release: make(chan struct{})}
	e.Register(sim)
	return e, sim
}

// TestRunAbortsOnCancellation checks the job-set contract: after the context
// is cancelled no new jobs are dispatched, the workers drain the jobs they
// already started, and the undispatched slots report ctx.Err().
func TestRunAbortsOnCancellation(t *testing.T) {
	e, sim := newBlockEngine(2)
	specs := make([]Spec, 16)
	for i := range specs {
		specs[i] = blockSpec{id: fmt.Sprintf("j%02d", i)}
	}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan struct{})
	var results []any
	var runErr error
	go func() {
		defer close(done)
		results, runErr = e.Run(ctx, specs)
	}()

	// Wait for both workers to start a job, then cancel the set and let the
	// in-flight jobs finish.
	<-sim.started
	<-sim.started
	cancel()
	close(sim.release)
	<-done

	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", runErr)
	}
	// The two in-flight jobs drained to completion; nothing else started.
	if n := sim.computed.Load(); n != 2 {
		t.Errorf("computed %d jobs after cancellation, want the 2 in-flight ones", n)
	}
	completed := 0
	for _, r := range results {
		if r != nil {
			completed++
		}
	}
	if completed != 2 {
		t.Errorf("%d results filled in, want 2 (the drained jobs)", completed)
	}
}

// TestDoWaiterUnblocksOnCancellation checks that a caller waiting on another
// caller's in-flight computation returns its own ctx.Err() immediately, while
// the computation itself finishes and is cached.
func TestDoWaiterUnblocksOnCancellation(t *testing.T) {
	e, sim := newBlockEngine(1)
	spec := blockSpec{id: "shared"}

	first := make(chan error, 1)
	go func() {
		_, err := e.Do(context.Background(), spec)
		first <- err
	}()
	<-sim.started // the computation is in flight

	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, spec)
		waiter <- err
	}()
	// Give the waiter time to join the in-flight call, then cancel only it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waiter:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not unblock")
	}

	// The computation itself is unaffected.
	close(sim.release)
	if err := <-first; err != nil {
		t.Fatalf("computing caller failed: %v", err)
	}
	if v, err := e.Do(context.Background(), spec); err != nil || v != "shared" {
		t.Fatalf("cached result = %v, %v", v, err)
	}
	if n := sim.computed.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
}

// TestWaiterWithLiveContextRetriesCancelledComputation checks the converse
// of the waiter-cancellation case: when the COMPUTING caller's context dies,
// a waiter whose own context is live must not inherit the cancellation -- it
// retries the (evicted) job and gets a real result.
func TestWaiterWithLiveContextRetriesCancelledComputation(t *testing.T) {
	e, sim := newBlockEngine(1)
	spec := blockSpec{id: "steal", honourCtx: true}

	ctxA, cancelA := context.WithCancel(context.Background())
	first := make(chan error, 1)
	go func() {
		_, err := e.Do(ctxA, spec)
		first <- err
	}()
	<-sim.started // A is computing

	second := make(chan error, 1)
	var secondVal any
	go func() {
		v, err := e.Do(context.Background(), spec)
		secondVal = v
		second <- err
	}()
	// Give B time to join A's in-flight call, then kill only A.
	time.Sleep(10 * time.Millisecond)
	cancelA()
	if err := <-first; !errors.Is(err, context.Canceled) {
		t.Fatalf("computing caller error = %v, want context.Canceled", err)
	}

	// B must have retried: its recomputation starts and, once released,
	// produces the real value.
	select {
	case <-sim.started:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never retried the cancelled job")
	}
	close(sim.release)
	if err := <-second; err != nil {
		t.Fatalf("live waiter inherited an error: %v", err)
	}
	if secondVal != "steal" {
		t.Fatalf("live waiter got %v, want the recomputed value", secondVal)
	}
	if n := sim.computed.Load(); n != 2 {
		t.Errorf("computed %d times, want 2 (cancelled + retried)", n)
	}
}

// TestCancellationErrorsAreNotMemoized checks that a job aborted by its
// context is evicted from the cache: a later caller with a live context
// recomputes it instead of inheriting the stale cancellation error.
func TestCancellationErrorsAreNotMemoized(t *testing.T) {
	e, sim := newBlockEngine(1)
	spec := blockSpec{id: "retry", honourCtx: true}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, spec)
		errc <- err
	}()
	<-sim.started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("first call error = %v, want context.Canceled", err)
	}
	if n := e.CacheLen(); n != 0 {
		t.Fatalf("cancelled job left %d cache entries, want 0", n)
	}

	// A fresh caller recomputes and succeeds.
	close(sim.release)
	go func() { <-sim.started }() // drain the second start notification
	v, err := e.Do(context.Background(), spec)
	if err != nil || v != "retry" {
		t.Fatalf("recomputed result = %v, %v", v, err)
	}
	if n := sim.computed.Load(); n != 2 {
		t.Errorf("computed %d times, want 2 (cancelled + retried)", n)
	}
}

// TestDoRejectsDeadContext checks the fast path: a context that is already
// cancelled never schedules (or counts) a job.
func TestDoRejectsDeadContext(t *testing.T) {
	e, sim := newBlockEngine(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Do(ctx, blockSpec{id: "never"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := sim.computed.Load(); n != 0 {
		t.Errorf("dead-context Do computed %d jobs, want 0", n)
	}
	if e.CacheLen() != 0 {
		t.Error("dead-context Do left a cache entry")
	}
}
