package engine

import "context"

// Ref is a handle into a Batch: Add returns one, Result and Get accept one
// after the batch has run.
type Ref int

// Batch collects a declarative job set and resolves it in one parallel Run.
// Drivers build their whole simulation grid first (Add deduplicates specs by
// key, so shared baselines cost one job), execute it with Run, and then
// assemble their output from the positional results -- which is what makes
// driver output independent of the worker count.
type Batch struct {
	eng     *Engine
	specs   []Spec
	index   map[string]Ref
	results []any
}

// NewBatch creates an empty batch bound to the engine.
func (e *Engine) NewBatch() *Batch {
	return &Batch{eng: e, index: make(map[string]Ref)}
}

// Add appends a job to the set and returns its handle.  Adding a spec whose
// key is already present returns the existing handle instead of scheduling
// the job twice.
func (b *Batch) Add(spec Spec) Ref {
	k := Key(spec)
	if r, ok := b.index[k]; ok {
		return r
	}
	r := Ref(len(b.specs))
	b.specs = append(b.specs, spec)
	b.index[k] = r
	return r
}

// Len returns the number of distinct jobs in the set.
func (b *Batch) Len() int { return len(b.specs) }

// Run executes the job set on the engine's worker pool.  Cancelling the
// context aborts the set (see Engine.Run).
func (b *Batch) Run(ctx context.Context) error {
	results, err := b.eng.Run(ctx, b.specs)
	b.results = results
	return err
}

// Result returns the raw result of a job after Run has succeeded.
func (b *Batch) Result(r Ref) any { return b.results[r] }

// Get returns the typed result of a job after Run has succeeded.  It panics
// on a type mismatch, which indicates a driver bug (a ref used with the wrong
// kind), not a runtime condition.
func Get[T any](b *Batch, r Ref) T { return b.results[r].(T) }
