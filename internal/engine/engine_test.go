package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// echoSpec is a trivial job: its result is its own id, optionally failing or
// panicking, optionally resolving a dependency first.
type echoSpec struct {
	id     string
	fail   bool
	panics bool
	dep    *echoSpec
}

func (echoSpec) JobKind() string    { return "test/echo" }
func (s echoSpec) CacheKey() string { return s.id }

// echoSim counts how many jobs it actually computed.
type echoSim struct {
	computed atomic.Uint64
}

func (*echoSim) JobKind() string { return "test/echo" }

func (s *echoSim) Simulate(ctx context.Context, eng *Engine, spec Spec) (any, error) {
	job := spec.(echoSpec)
	s.computed.Add(1)
	if job.panics {
		panic("boom")
	}
	if job.fail {
		return nil, fmt.Errorf("job %s failed", job.id)
	}
	if job.dep != nil {
		dep, err := Resolve[string](ctx, eng, *job.dep)
		if err != nil {
			return nil, err
		}
		return dep + "+" + job.id, nil
	}
	return job.id, nil
}

func newTestEngine(workers int) (*Engine, *echoSim) {
	e := New(workers)
	sim := &echoSim{}
	e.Register(sim)
	return e, sim
}

func TestDoMemoizes(t *testing.T) {
	e, sim := newTestEngine(4)
	for i := 0; i < 5; i++ {
		v, err := Resolve[string](context.Background(), e, echoSpec{id: "a"})
		if err != nil {
			t.Fatal(err)
		}
		if v != "a" {
			t.Fatalf("got %q", v)
		}
	}
	if n := sim.computed.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
	if e.Executed() != 1 || e.Hits() != 4 {
		t.Errorf("executed=%d hits=%d, want 1/4", e.Executed(), e.Hits())
	}
	if e.CacheLen() != 1 {
		t.Errorf("cache len = %d, want 1", e.CacheLen())
	}
}

func TestDoDeduplicatesConcurrentCallers(t *testing.T) {
	e, sim := newTestEngine(8)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Do(context.Background(), echoSpec{id: "shared"}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := sim.computed.Load(); n != 1 {
		t.Errorf("computed %d times under concurrency, want 1", n)
	}
}

func TestErrorsAreMemoized(t *testing.T) {
	e, sim := newTestEngine(2)
	for i := 0; i < 3; i++ {
		if _, err := e.Do(context.Background(), echoSpec{id: "bad", fail: true}); err == nil {
			t.Fatal("want error")
		}
	}
	if n := sim.computed.Load(); n != 1 {
		t.Errorf("failing job computed %d times, want 1", n)
	}
}

func TestPanicBecomesError(t *testing.T) {
	e, _ := newTestEngine(2)
	_, err := e.Do(context.Background(), echoSpec{id: "p", panics: true})
	if err == nil {
		t.Fatal("want error from panicking job")
	}
	// The memoized error must be shared, and must not wedge later callers.
	if _, err2 := e.Do(context.Background(), echoSpec{id: "p", panics: true}); err2 == nil {
		t.Fatal("memoized panic error missing")
	}
}

func TestNestedDependencyResolution(t *testing.T) {
	e, sim := newTestEngine(4)
	dep := echoSpec{id: "base"}
	specs := make([]Spec, 16)
	for i := range specs {
		specs[i] = echoSpec{id: fmt.Sprintf("top%d", i), dep: &dep}
	}
	results, err := e.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := fmt.Sprintf("base+top%d", i)
		if r.(string) != want {
			t.Errorf("results[%d] = %v, want %s", i, r, want)
		}
	}
	// 16 top jobs + 1 shared dependency.
	if n := sim.computed.Load(); n != 17 {
		t.Errorf("computed %d jobs, want 17", n)
	}
}

func TestRunOrderingIsPositional(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		e, _ := newTestEngine(workers)
		specs := make([]Spec, 100)
		for i := range specs {
			specs[i] = echoSpec{id: fmt.Sprintf("j%03d", i)}
		}
		results, err := e.Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if want := fmt.Sprintf("j%03d", i); r.(string) != want {
				t.Fatalf("workers=%d: results[%d] = %v, want %s", workers, i, r, want)
			}
		}
	}
}

func TestRunReturnsFirstErrorByIndex(t *testing.T) {
	e, _ := newTestEngine(4)
	specs := []Spec{
		echoSpec{id: "ok0"},
		echoSpec{id: "bad1", fail: true},
		echoSpec{id: "ok2"},
		echoSpec{id: "bad3", fail: true},
	}
	var firstErr error
	for i := 0; i < 5; i++ {
		_, err := e.Run(context.Background(), specs)
		if err == nil {
			t.Fatal("want error")
		}
		if firstErr == nil {
			firstErr = err
		} else if err.Error() != firstErr.Error() {
			t.Fatalf("error not deterministic: %v vs %v", err, firstErr)
		}
	}
	if want := "job bad1 failed"; firstErr.Error() != want {
		t.Errorf("error = %v, want %q (smallest failing index)", firstErr, want)
	}
}

func TestUnknownKindErrors(t *testing.T) {
	e := New(1)
	if _, err := e.Do(context.Background(), echoSpec{id: "x"}); err == nil {
		t.Fatal("unregistered kind must error")
	}
}

func TestResolveTypeMismatch(t *testing.T) {
	e, _ := newTestEngine(1)
	if _, err := Resolve[int](context.Background(), e, echoSpec{id: "a"}); err == nil {
		t.Fatal("type mismatch must error")
	}
	if _, err := Resolve[string](context.Background(), e, echoSpec{id: "gone", fail: true}); err == nil {
		t.Fatal("want propagated job error")
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("default worker count must be at least 1")
	}
	if New(-3).Workers() < 1 {
		t.Error("negative worker count must normalize")
	}
	if New(7).Workers() != 7 {
		t.Error("explicit worker count must stick")
	}
}

func TestBatchDeduplicatesAndOrders(t *testing.T) {
	e, sim := newTestEngine(4)
	b := e.NewBatch()
	r1 := b.Add(echoSpec{id: "x"})
	r2 := b.Add(echoSpec{id: "y"})
	r3 := b.Add(echoSpec{id: "x"}) // duplicate
	if r1 != r3 {
		t.Errorf("duplicate spec got distinct refs %d and %d", r1, r3)
	}
	if b.Len() != 2 {
		t.Errorf("batch len = %d, want 2", b.Len())
	}
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if Get[string](b, r1) != "x" || Get[string](b, r2) != "y" {
		t.Errorf("batch results wrong: %v %v", b.Result(r1), b.Result(r2))
	}
	if n := sim.computed.Load(); n != 2 {
		t.Errorf("computed %d, want 2", n)
	}
}
