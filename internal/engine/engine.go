// Package engine is the job-based parallel execution engine behind the
// experiment drivers.  The three evaluation layers of the reproduction -- the
// functional simulator (internal/trace), the unrealistic OOO window analyzer
// (internal/window) and the Multiscalar timing simulator
// (internal/multiscalar) -- plug into it as job kinds: each layer registers a
// Simulator that knows how to execute the Specs of its kind, and drivers
// submit declarative job sets instead of looping over simulations serially.
//
// The engine provides three guarantees the experiment stack relies on:
//
//   - Memoization with deduplication: Do is a singleflight -- the first
//     caller of a (kind, key) pair computes the job, concurrent callers of
//     the same pair block until that computation finishes, and later callers
//     get the cached value.  Table and figure drivers running concurrently
//     therefore share functional traces, work items and timing results
//     instead of recomputing them.
//
//   - Bounded parallelism: Run executes a job set on a worker pool of a
//     configurable size (default GOMAXPROCS).  Jobs may resolve dependency
//     jobs re-entrantly through Do; dependencies are computed inline on the
//     worker that needs them first, so the pool cannot deadlock as long as
//     specs form a DAG.
//
//   - Deterministic ordering: Run returns results positionally, one per
//     submitted spec, regardless of the order in which workers finish, so
//     driver output is byte-identical at every worker count.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Spec describes one job declaratively: a kind naming the Simulator that can
// execute it, and a cache key unique among all jobs of that kind that produce
// distinct results.  Specs must be comparable-by-key descriptions of work
// (benchmark names, configurations), not the work itself, and may reference
// other Specs as dependencies.  The dependency graph must be acyclic: a job
// that (transitively) resolves its own spec deadlocks.
type Spec interface {
	// JobKind names the simulator that executes this spec.
	JobKind() string
	// CacheKey identifies the job's result within its kind.  Two specs of
	// the same kind with equal keys must describe the same computation.
	CacheKey() string
}

// Simulator executes the jobs of one kind.  Implementations must be safe for
// concurrent use and must be deterministic: the same spec must always produce
// an equivalent result.
type Simulator interface {
	// JobKind returns the kind this simulator handles.
	JobKind() string
	// Simulate executes the job.  The engine is passed in so the job can
	// resolve dependency specs through eng.Do (memoized and re-entrant); the
	// context is the caller's and long-running simulations should abort with
	// ctx.Err() when it is cancelled.
	Simulate(ctx context.Context, eng *Engine, spec Spec) (any, error)
}

// Key returns the engine-wide cache key of a spec.
func Key(spec Spec) string {
	return spec.JobKind() + "\x00" + spec.CacheKey()
}

// Tier is an optional second-level cache beneath the in-memory memo map,
// typically a persistent content-addressed store shared across processes
// (internal/store).  Do consults it read-through on a memory miss and writes
// computed results behind it; errors are never persisted.  Implementations
// must be safe for concurrent use, must treat every failure as a miss (a
// Tier is an optimization, never a source of truth), and Load must return
// values indistinguishable from freshly computed ones -- warm results feed
// the same deterministic drivers as cold ones.
type Tier interface {
	// Load returns the persisted result of a (kind, key) job, if one exists.
	Load(kind, key string) (any, bool)
	// Save persists a computed result.  Concurrent Saves of the same pair
	// (from any number of processes) must race benignly.
	Save(kind, key string, v any)
}

// call is one memoized (possibly in-flight) job execution.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Engine schedules jobs over a worker pool and memoizes their results.
type Engine struct {
	workers int

	// mu guards the two maps below; the Do fast path reads calls under it
	// on every cache probe, so hold it only for map operations.
	mu sync.Mutex
	//memdep:guardedby mu
	sims map[string]Simulator
	//memdep:guardedby mu
	calls map[string]*call
	//memdep:guardedby mu
	tier Tier

	executed atomic.Uint64
	hits     atomic.Uint64
}

// New creates an engine with the given worker-pool size; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		sims:    make(map[string]Simulator),
		calls:   make(map[string]*call),
	}
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Register installs simulators, one per job kind.  Registering a kind twice
// replaces the earlier simulator.  The loop is bounded by its arguments and
// does no blocking work, so there is no cancellation point to thread.
//
//lint:noctx bounded registration loop, no blocking work
func (e *Engine) Register(sims ...Simulator) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range sims {
		e.sims[s.JobKind()] = s
	}
}

// SetTier installs a second-level cache beneath the in-memory memo map.
// Install it before submitting work; jobs already in flight keep the tier
// they started with (none).
//
//lint:noctx setter, no blocking work
func (e *Engine) SetTier(t Tier) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tier = t
}

// Executed returns the number of jobs actually computed (cache misses that
// the second tier, when installed, could not serve either).
func (e *Engine) Executed() uint64 { return e.executed.Load() }

// Hits returns the number of Do calls served from the cache or deduplicated
// onto an in-flight computation.
func (e *Engine) Hits() uint64 { return e.hits.Load() }

// CacheLen returns the number of memoized jobs (including in-flight ones).
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.calls)
}

// Do executes one job, memoized: the first caller computes it inline, and
// every other caller -- concurrent or later -- shares that result.  Errors
// are memoized like values, with one exception: a job that aborts with the
// context's cancellation error is evicted from the cache, so a later call
// with a live context recomputes it instead of inheriting a stale
// cancellation.  Do is re-entrant: a running job may call Do to resolve its
// dependencies.  A caller whose context is cancelled while it waits on
// another caller's in-flight computation returns ctx.Err() immediately; the
// computation itself keeps running and is cached for future callers.  The
// converse also holds: a waiter with a live context never inherits the
// computing caller's cancellation -- it retries the evicted job instead.
func (e *Engine) Do(ctx context.Context, spec Spec) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := Key(spec)
	e.mu.Lock()
	for {
		c, ok := e.calls[k]
		if !ok {
			break
		}
		e.mu.Unlock()
		e.hits.Add(1)
		select {
		case <-c.done:
			if isCancellation(c.err) && ctx.Err() == nil {
				// The computing caller's context died, not ours.  The dying
				// entry was evicted before done closed, so loop and either
				// join a fresh computation or start one.
				e.mu.Lock()
				continue
			}
			return c.val, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	sim, ok := e.sims[spec.JobKind()]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: no simulator registered for job kind %q", spec.JobKind())
	}
	c := &call{done: make(chan struct{})}
	e.calls[k] = c
	tier := e.tier
	e.mu.Unlock()

	// Read through the second tier before computing: a persisted result is
	// memoized under the in-flight call exactly like a computed one, so
	// concurrent callers deduplicate onto the disk read too.
	fromTier := false
	if tier != nil {
		if v, ok := tier.Load(spec.JobKind(), spec.CacheKey()); ok {
			c.val = v
			fromTier = true
		}
	}
	if !fromTier {
		func() {
			defer func() {
				if p := recover(); p != nil {
					c.val = nil
					c.err = fmt.Errorf("engine: %s job %q panicked: %v", spec.JobKind(), spec.CacheKey(), p)
				}
			}()
			c.val, c.err = sim.Simulate(ctx, e, spec)
		}()
	}
	if isCancellation(c.err) {
		// Evict before waking waiters so no caller -- new or currently
		// blocked on done -- can read one request's cancellation as its own
		// failure; blocked waiters with live contexts retry above.
		e.mu.Lock()
		delete(e.calls, k)
		e.mu.Unlock()
	}
	close(c.done)
	if !fromTier {
		e.executed.Add(1)
		if tier != nil && c.err == nil {
			// Write behind: waiters were woken first, so nobody blocks on
			// the disk write; only this computing caller pays for it.
			tier.Save(spec.JobKind(), spec.CacheKey(), c.val)
		}
	}
	return c.val, c.err
}

// isCancellation reports whether err is a context cancellation or deadline.
func isCancellation(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Run executes a job set on the worker pool and returns the results
// positionally: results[i] belongs to specs[i] whatever order the workers
// finish in.  Duplicate specs are deduplicated by the memoized Do.  If any
// job fails, Run returns the error of the smallest failing index (so the
// reported error is deterministic too); the results of successful jobs are
// still filled in.
//
// Cancelling the context aborts the set: no further jobs are dispatched,
// workers drain the jobs they already started, and every undispatched (or
// cancellation-aborted) slot reports ctx.Err().
func (e *Engine) Run(ctx context.Context, specs []Spec) ([]any, error) {
	results := make([]any, len(specs))
	errs := make([]error, len(specs))
	workers := e.workers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		// One scratch store for the whole (serial) set.
		sctx := WithScratch(ctx)
		for i, s := range specs {
			results[i], errs[i] = e.Do(sctx, s)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each worker gets its own scratch store: the jobs it
				// executes reuse one another's arenas without locking.
				wctx := WithScratch(ctx)
				for i := range idx {
					results[i], errs[i] = e.Do(wctx, specs[i])
				}
			}()
		}
	dispatch:
		for i := range specs {
			select {
			case idx <- i:
			case <-ctx.Done():
				for j := i; j < len(specs); j++ {
					errs[j] = ctx.Err()
				}
				break dispatch
			}
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Resolve runs one job through the memoized Do and asserts its result type.
func Resolve[T any](ctx context.Context, e *Engine, spec Spec) (T, error) {
	v, err := e.Do(ctx, spec)
	if err != nil {
		var zero T
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("engine: %s job %q returned %T, want %T",
			spec.JobKind(), spec.CacheKey(), v, zero)
	}
	return t, nil
}

// Scratch is a per-worker store of reusable simulation state -- arenas,
// buffers -- keyed by job kind.  Run hands each worker goroutine its own
// store through the context, so a Simulator that keeps expensive per-run
// state can fetch the arena its worker used for the previous job and reuse
// it instead of allocating afresh.  A Scratch is confined to one worker and
// must not be shared across goroutines; jobs that resolve dependencies
// re-entrantly run on the same worker and may therefore see (and reuse) the
// same store.  All methods tolerate a nil receiver, which stands for "no
// scratch available".
type Scratch struct {
	vals map[string]any
}

// Get returns the value stored under the kind, or nil.
func (s *Scratch) Get(kind string) any {
	if s == nil {
		return nil
	}
	return s.vals[kind]
}

// Put stores a value under the kind, replacing any previous one.
func (s *Scratch) Put(kind string, v any) {
	if s == nil {
		return
	}
	if s.vals == nil {
		s.vals = make(map[string]any)
	}
	s.vals[kind] = v
}

// scratchCtxKey keys the per-worker scratch store in a context.
type scratchCtxKey struct{}

// WithScratch returns a context carrying a fresh per-worker scratch store.
// Run applies it automatically; it is exported for drivers (and tests) that
// call Do directly in a loop and want the same arena reuse.
func WithScratch(ctx context.Context) context.Context {
	return context.WithValue(ctx, scratchCtxKey{}, &Scratch{})
}

// ScratchFrom returns the context's scratch store, or nil when the context
// does not carry one (methods on a nil Scratch are safe no-ops).
func ScratchFrom(ctx context.Context) *Scratch {
	s, _ := ctx.Value(scratchCtxKey{}).(*Scratch)
	return s
}
