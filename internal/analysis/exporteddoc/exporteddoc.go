// Package exporteddoc defines an analyzer that enforces doc comments on the
// repo's public API surface.
//
// `go doc memdep/sim` is the first thing a new user reads, and PR 10 turned
// the doc surface into a contract: docs/API.md documents the HTTP surface,
// and this rule keeps the in-source reference complete.  For the configured
// packages it requires
//
//   - a package comment on some file of the package,
//   - a doc comment on every exported type, function, method (of an exported
//     receiver), constant and variable -- a doc comment on a grouped
//     const/var declaration covers the whole group, and
//   - a doc or trailing line comment on every exported field of an exported
//     struct.
//
// Type, function and method comments must start with the identifier they
// document (an "A", "An" or "The" article prefix is accepted), matching the
// convention godoc renders best.  A declaration that is deliberately
// undocumented carries a //lint:nodoc justification on the line above it.
package exporteddoc

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"

	"memdep/internal/analysis/directive"
)

// DefaultPackages is the documented-surface package set the rule applies to
// by default: the public facade and the fleet layer its server exposes.
const DefaultPackages = "memdep/sim,memdep/internal/fleet"

var Analyzer = &analysis.Analyzer{
	Name: "exporteddoc",
	Doc:  "flags exported identifiers without doc comments in the public-surface packages unless the site carries a //lint:nodoc justification",
	Run:  run,
}

var pkgsFlag string

func init() {
	Analyzer.Flags.StringVar(&pkgsFlag, "pkgs", DefaultPackages, "comma-separated import paths the rule applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path(), pkgsFlag) {
		return nil, nil
	}
	dirs := directive.New(pass.Fset, pass.Files)

	checkPackageDoc(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, dirs, d)
			case *ast.GenDecl:
				checkGenDecl(pass, dirs, d)
			}
		}
	}
	return nil, nil
}

// checkPackageDoc requires a package comment on at least one non-test file;
// without one, `go doc <pkg>` opens with a blank synopsis.  The diagnostic
// lands on the alphabetically first file so it is stable across runs.
func checkPackageDoc(pass *analysis.Pass) {
	var first *ast.File
	firstName := ""
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
		name := pass.Fset.Position(f.Package).Filename
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	if first != nil {
		pass.Reportf(first.Name.Pos(), "package %s has no package comment; add one so go doc shows a synopsis", pass.Pkg.Name())
	}
}

// checkFunc requires a doc comment on exported functions and on exported
// methods of exported receiver types.
func checkFunc(pass *analysis.Pass, dirs *directive.Index, d *ast.FuncDecl) {
	if !d.Name.IsExported() || dirs.Has(d.Pos(), "lint:nodoc") {
		return
	}
	kind, label := "function", d.Name.Name
	if d.Recv != nil {
		recv := receiverName(d.Recv)
		if recv == "" || !token.IsExported(recv) {
			return
		}
		kind, label = "method", recv+"."+d.Name.Name
	}
	reportDoc(pass, dirs, d.Pos(), d.Doc, kind, label, d.Name.Name)
}

// checkGenDecl dispatches a type, const or var declaration.  For grouped
// const/var blocks, a doc comment on the group documents every member.
func checkGenDecl(pass *analysis.Pass, dirs *directive.Index, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			doc := ts.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			pos := ts.Pos()
			if len(d.Specs) == 1 {
				pos = d.Pos()
			}
			if !dirs.Has(pos, "lint:nodoc") {
				reportDoc(pass, dirs, pos, doc, "type", ts.Name.Name, ts.Name.Name)
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				checkFields(pass, dirs, ts.Name.Name, st)
			}
		}
	case token.CONST, token.VAR:
		if d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != "" {
			return
		}
		if dirs.Has(d.Pos(), "lint:nodoc") {
			return
		}
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if hasText(vs.Doc) || hasText(vs.Comment) || dirs.Has(vs.Pos(), "lint:nodoc") {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					pass.Reportf(vs.Pos(), "exported %s %s has no doc comment; document it or annotate //lint:nodoc", kind, name.Name)
					break
				}
			}
		}
	}
}

// checkFields requires a doc or trailing comment on every exported field of
// an exported struct: godoc renders both, and an undocumented field is the
// part of the API most likely to be guessed at.
func checkFields(pass *analysis.Pass, dirs *directive.Index, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if hasText(field.Doc) || hasText(field.Comment) || dirs.Has(field.Pos(), "lint:nodoc") {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				pass.Reportf(field.Pos(), "exported field %s of %s has no doc comment; document it or annotate //lint:nodoc", name.Name, typeName)
				break
			}
		}
		// Exported embedded fields promote API surface too, but naming them is
		// the embedded type's job; they are not required to re-document it.
	}
}

// reportDoc reports a missing doc comment, or one whose first word is not the
// identifier (articles allowed), on the declaration at pos.
func reportDoc(pass *analysis.Pass, dirs *directive.Index, pos token.Pos, doc *ast.CommentGroup, kind, label, name string) {
	if !hasText(doc) {
		pass.Reportf(pos, "exported %s %s has no doc comment; document it or annotate //lint:nodoc", kind, label)
		return
	}
	if !startsWithName(doc, name) {
		pass.Reportf(pos, "doc comment for %s %s should start with %q", kind, label, name)
	}
}

// startsWithName reports whether the doc comment's first word is name,
// optionally preceded by an article, the form godoc links and `go doc`
// searches work best with.  Deprecated markers are accepted as-is.
func startsWithName(doc *ast.CommentGroup, name string) bool {
	words := strings.Fields(doc.Text())
	if len(words) == 0 {
		return false
	}
	if words[0] == name || words[0] == "Deprecated:" {
		return true
	}
	switch words[0] {
	case "A", "An", "The":
		return len(words) > 1 && words[1] == name
	}
	return false
}

// receiverName extracts the receiver's type name, unwrapping pointers and
// generic instantiations.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// hasText reports whether the comment group carries any prose.  Directive
// comments do not count (CommentGroup.Text strips them), and neither do the
// analyzer test harness's own "want" expectations, which occupy the
// trailing-comment position this rule inspects on fields and value specs.
func hasText(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	text := strings.TrimSpace(cg.Text())
	if strings.HasPrefix(text, "want `") || strings.HasPrefix(text, `want "`) {
		return false
	}
	return text != ""
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Package).Filename, "_test.go")
}

func applies(path, pkgs string) bool {
	for _, p := range strings.Split(pkgs, ",") {
		if path == strings.TrimSpace(p) {
			return true
		}
	}
	return false
}
