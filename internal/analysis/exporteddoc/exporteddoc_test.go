package exporteddoc_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/exporteddoc"
)

func TestExporteddoc(t *testing.T) {
	if err := exporteddoc.Analyzer.Flags.Set("pkgs", "a"); err != nil {
		t.Fatal(err)
	}
	defer exporteddoc.Analyzer.Flags.Set("pkgs", exporteddoc.DefaultPackages)
	analyzertest.Run(t, ".", exporteddoc.Analyzer, "a")
}

// TestExporteddocMissingPackageComment pins the package-level rule: a package
// without any package comment is reported once, on its first file.
func TestExporteddocMissingPackageComment(t *testing.T) {
	if err := exporteddoc.Analyzer.Flags.Set("pkgs", "nopkgdoc"); err != nil {
		t.Fatal(err)
	}
	defer exporteddoc.Analyzer.Flags.Set("pkgs", exporteddoc.DefaultPackages)
	analyzertest.Run(t, ".", exporteddoc.Analyzer, "nopkgdoc")
}

// TestExporteddocSkipsOtherPackages pins the scoping: a package outside the
// configured set reports nothing even though it exports bare identifiers.
func TestExporteddocSkipsOtherPackages(t *testing.T) {
	if err := exporteddoc.Analyzer.Flags.Set("pkgs", "not-this-package"); err != nil {
		t.Fatal(err)
	}
	defer exporteddoc.Analyzer.Flags.Set("pkgs", exporteddoc.DefaultPackages)
	analyzertest.Run(t, ".", exporteddoc.Analyzer, "scoped")
}
