package nopkgdoc // want `package nopkgdoc has no package comment`

// Value is documented, so only the package comment is missing.
const Value = 1
