package scoped

type Undocumented int

func Undoc() {}
