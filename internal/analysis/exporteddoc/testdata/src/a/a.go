// Package a exercises the exporteddoc rule.
package a

// Documented is a struct whose fields show every accepted comment form.
type Documented struct {
	// Field carries a doc comment.
	Field int
	Count int // Count carries a trailing comment instead.
	//lint:nodoc internal scaffolding surfaced for tests only
	Escaped int
	Bare    int // want `exported field Bare of Documented has no doc comment`

	unexported int
}

type Undocumented int // want `exported type Undocumented has no doc comment`

// The article form is accepted too.
type Article int // want `doc comment for type Article should start with "Article"`

// A Prefixed type uses an article before its own name.
type Prefixed int

//lint:nodoc deliberately undocumented
type EscapedType int

type hidden struct {
	Exported int // unexported struct: exported fields are unreachable, not checked
}

// DoSomething runs the documented path.
func DoSomething() {}

func Undoc() {} // want `exported function Undoc has no doc comment`

// wrong opening words entirely.
func Misdescribed() {} // want `doc comment for function Misdescribed should start with "Misdescribed"`

//lint:nodoc trivial forwarder
func EscapedFunc() {}

func helper() {}

// Method carries a doc comment.
func (Documented) Method() {}

func (Documented) Undoc2() {} // want `exported method Documented.Undoc2 has no doc comment`

func (*Documented) Undoc3() {} // want `exported method Documented.Undoc3 has no doc comment`

func (Documented) unexportedMethod() {}

func (hidden) Reachable() {} // unexported receiver: not part of the doc surface

// Grouped constants are covered by the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

const Lone = 3 // want `exported const Lone has no doc comment`

const (
	LoneInGroup = 4 // want `exported const LoneInGroup has no doc comment`
	// DocInGroup carries its own doc comment.
	DocInGroup = 5
	Trailing   = 6 // Trailing carries a trailing comment.
	//lint:nodoc escape hatch inside a group
	EscapedInGroup = 7
	internalOnly   = 8
)

var Global int // want `exported var Global has no doc comment`

// Vars grouped under one comment are covered like consts.
var (
	VarA int
	VarB int
)

func init() {
	helper()
	Documented{}.unexportedMethod()
	hidden{}.Reachable()
	_ = internalOnly
}
