package a

type simulator struct {
	//memdep:arena
	doneAll []int64
	//memdep:arena
	loadAll []int32
	scratch []int64
}

// Result is the escaping type: it outlives the run that produced it.
//
//memdep:escapes
type Result struct {
	Done  []int64
	Loads []int32
}

func (s *simulator) build(n int) Result {
	return Result{
		Done:  s.doneAll[:n],   // want `aliases arena-owned storage`
		Loads: s.loadAll[:n:n], // want `aliases arena-owned storage`
	}
}

func (s *simulator) fill(r *Result, n int) {
	r.Done = s.doneAll                              // want `aliases arena-owned storage`
	r.Done = append([]int64(nil), s.doneAll[:n]...) // ok: copies out of the arena
	r.Done = s.scratch                              // ok: scratch is not marked //memdep:arena
	//lint:arenasafe the caller copies before the next run
	r.Loads = s.loadAll
}
