package arenaescape_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/arenaescape"
)

func TestArenaescape(t *testing.T) {
	analyzertest.Run(t, ".", arenaescape.Analyzer, "a")
}
