// Package arenaescape defines an analyzer that flags arena-owned storage
// escaping into cached results.
//
// The multiscalar Simulator arena (PR 6) re-slices flat backing arrays on
// every run; everything carved from them is valid for the current run only.
// Results, by contrast, escape into the engine's memoization cache and
// outlive any number of later runs.  Storing a slice (or subslice) of an
// arena backing array into an escaping result silently corrupts cached
// values on the next run -- the hazard DESIGN.md's ownership rules document.
//
// The analyzer is annotation-driven: struct fields marked //memdep:arena are
// the arena backing arrays, and types marked //memdep:escapes are the
// long-lived destinations.  Any assignment or composite literal that stores
// an expression aliasing a marked field (the selector itself, or any chain of
// slice expressions over it) into a marked type is reported, unless the site
// carries a //lint:arenasafe justification.  Copies (slices.Clone, append
// into a fresh slice) pass the marked selector through a call and are
// naturally accepted.
package arenaescape

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"memdep/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "arenaescape",
	Doc:      "flags //memdep:arena-backed slices stored into //memdep:escapes types without a copy or a //lint:arenasafe justification",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	arenaFields, escaping := collectMarkers(pass)
	if len(arenaFields) == 0 || len(escaping) == 0 {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.New(pass.Fset, pass.Files)

	report := func(at ast.Expr, src types.Object, dst *types.TypeName) {
		if dirs.Has(at.Pos(), "lint:arenasafe") {
			return
		}
		pass.Reportf(at.Pos(), "%s aliases arena-owned storage (field %s is marked //memdep:arena) and escapes into %s (marked //memdep:escapes); store a copy instead or annotate the site with //lint:arenasafe", types.ExprString(at), src.Name(), dst.Name())
	}

	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.CompositeLit)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, lhs := range n.Lhs {
				dst, ok := escapingDest(pass, lhs, escaping)
				if !ok {
					continue
				}
				if src, ok := arenaDerived(pass, n.Rhs[i], arenaFields); ok {
					report(n.Rhs[i], src, dst)
				}
			}
		case *ast.CompositeLit:
			tn, ok := namedTypeName(pass.TypesInfo.TypeOf(n))
			if !ok || !escaping[tn] {
				return
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if src, ok := arenaDerived(pass, val, arenaFields); ok {
					report(val, src, tn)
				}
			}
		}
	})
	return nil, nil
}

// collectMarkers gathers the //memdep:arena fields and //memdep:escapes type
// names declared in this package.
func collectMarkers(pass *analysis.Pass) (map[types.Object]bool, map[*types.TypeName]bool) {
	arenaFields := make(map[types.Object]bool)
	escaping := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if directive.HasMarker(doc, "memdep:escapes") {
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						escaping[tn] = true
					}
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !directive.HasMarker(field.Doc, "memdep:arena") && !directive.HasMarker(field.Comment, "memdep:arena") {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							arenaFields[obj] = true
						}
					}
				}
			}
		}
	}
	return arenaFields, escaping
}

// arenaDerived reports whether the expression aliases a marked arena field:
// the field selector itself or any chain of slice expressions over it.
func arenaDerived(pass *analysis.Pass, e ast.Expr, arenaFields map[types.Object]bool) (types.Object, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[x]
			if !ok {
				return nil, false
			}
			obj := sel.Obj()
			return obj, arenaFields[obj]
		default:
			return nil, false
		}
	}
}

// escapingDest reports whether the assignment destination is a field of a
// marked escaping type.
func escapingDest(pass *analysis.Pass, lhs ast.Expr, escaping map[*types.TypeName]bool) (*types.TypeName, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	tn, ok := namedTypeName(pass.TypesInfo.TypeOf(sel.X))
	if !ok {
		return nil, false
	}
	return tn, escaping[tn]
}

// namedTypeName resolves a (possibly pointer-to) named type to its TypeName.
func namedTypeName(t types.Type) (*types.TypeName, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	return named.Obj(), true
}
