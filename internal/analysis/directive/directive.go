// Package directive indexes the comment directives the memdep-lint
// analyzers honour.
//
// Two families exist.  Marker directives (//memdep:hotpath, //memdep:arena,
// //memdep:escapes, //memdep:soa) opt a declaration into a rule: they live in
// the doc or trailing comment of the function, field or type they mark.
// Suppression directives (//lint:deterministic, //lint:arenasafe,
// //lint:alloc-ok, //lint:noctx) carry a justification for one specific site
// the rule would otherwise flag: they are honoured on the flagged line itself
// or on the line immediately above it, and everything after the directive
// name is free-form rationale text.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Index is a per-file line → directive-name lookup built from the comments of
// a package's syntax trees.
type Index struct {
	fset  *token.FileSet
	lines map[string]map[int][]string
}

// New indexes every //lint: and //memdep: comment in the files.
func New(fset *token.FileSet, files []*ast.File) *Index {
	idx := &Index{fset: fset, lines: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := directiveName(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				m := idx.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					idx.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], name)
			}
		}
	}
	return idx
}

// Has reports whether the named directive (e.g. "lint:deterministic") is
// present on the position's line or on the line immediately above it.
func (idx *Index) Has(pos token.Pos, name string) bool {
	p := idx.fset.Position(pos)
	m := idx.lines[p.Filename]
	if m == nil {
		return false
	}
	return contains(m[p.Line], name) || contains(m[p.Line-1], name)
}

// HasMarker reports whether the comment group carries the named marker
// directive (e.g. "memdep:hotpath").
func HasMarker(cg *ast.CommentGroup, name string) bool {
	_, ok := MarkerArg(cg, name)
	return ok
}

// MarkerArg returns the argument text of the named marker directive in the
// comment group -- everything after the directive name, trimmed -- and whether
// the marker is present at all.  //memdep:guardedby mu yields ("mu", true);
// an argument-less marker yields ("", true).
func MarkerArg(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if got, ok := directiveName(c.Text); ok && got == name {
			rest := strings.TrimPrefix(c.Text, "//"+got)
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// directiveName extracts the directive name from a raw comment: the text
// between "//" and the first space, when it starts with one of the recognized
// prefixes.  Directives are machine-readable comments in the Go toolchain
// sense: no space after "//".
func directiveName(text string) (string, bool) {
	if !strings.HasPrefix(text, "//lint:") && !strings.HasPrefix(text, "//memdep:") {
		return "", false
	}
	name := text[len("//"):]
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	return name, true
}

func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
