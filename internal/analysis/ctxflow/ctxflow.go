// Package ctxflow defines an analyzer that preserves the engine's
// cancellation guarantees (PR 4): exported functions in the execution-engine
// and facade packages that run work loops must accept a context.Context, so
// a cancelled service request stops burning CPU.
//
// A "work loop" is either a non-range for statement that makes calls (poll,
// retry and drain loops) or a range over caller-provided data (a slice, map
// or channel parameter).  Ranges over fixed package-level tables are not
// work loops: their trip count is a compile-time property, not a function of
// the request.  Well-known non-cancellable interface methods (String, Error,
// MarshalJSON, ...) are exempt, and anything else that is deliberately
// synchronous carries a //lint:noctx justification in its doc comment.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"memdep/internal/analysis/directive"
)

// DefaultPackages is the package set whose exported API must stay
// cancellable: the execution engine and the public facade.
const DefaultPackages = "memdep/internal/engine,memdep/sim"

var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "flags exported engine/facade functions that run work loops without accepting a context.Context, unless justified with //lint:noctx",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgsFlag string

func init() {
	Analyzer.Flags.StringVar(&pkgsFlag, "pkgs", DefaultPackages, "comma-separated import paths the rule applies to")
}

// exemptMethods are interface methods whose signatures are fixed by their
// interfaces and that must complete without cancellation.
var exemptMethods = map[string]bool{
	"String": true, "Error": true, "GoString": true, "Format": true,
	"MarshalJSON": true, "UnmarshalJSON": true, "MarshalText": true, "UnmarshalText": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path(), pkgsFlag) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.New(pass.Fset, pass.Files)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !fd.Name.IsExported() || exemptMethods[fd.Name.Name] {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
			return
		}
		if hasContextParam(pass, fd) {
			return
		}
		if directive.HasMarker(fd.Doc, "lint:noctx") || dirs.Has(fd.Pos(), "lint:noctx") {
			return
		}
		if !hasWorkLoop(pass, fd) {
			return
		}
		pass.Reportf(fd.Name.Pos(), "exported %s runs a work loop without accepting a context.Context; thread a ctx through it so the work stays cancellable, or justify with //lint:noctx", fd.Name.Name)
	})
	return nil, nil
}

func applies(path, pkgs string) bool {
	for _, p := range strings.Split(pkgs, ",") {
		if path == strings.TrimSpace(p) {
			return true
		}
	}
	return false
}

func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasWorkLoop reports whether the function body contains a polling for-loop
// with calls, or a range over one of the function's own slice/map/channel
// parameters.
func hasWorkLoop(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	params := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if containsCall(n.Body) {
				found = true
			}
		case *ast.RangeStmt:
			if rangesOverParam(pass, n, params) && containsCall(n.Body) {
				found = true
			}
		}
		return !found
	})
	return found
}

func rangesOverParam(pass *analysis.Pass, rs *ast.RangeStmt, params map[types.Object]bool) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan:
	default:
		return false
	}
	id, ok := ast.Unparen(rs.X).(*ast.Ident)
	return ok && params[pass.TypesInfo.ObjectOf(id)]
}

func containsCall(body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			has = true
		}
		return !has
	})
	return has
}
