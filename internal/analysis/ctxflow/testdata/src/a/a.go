package a

import "context"

var names = []string{"compress", "gcc", "xlisp"}

func work() {}

func Poll() { // want `exported Poll runs a work loop without accepting a context.Context`
	for {
		work()
	}
}

func Drain(jobs []func()) { // want `exported Drain runs a work loop without accepting a context.Context`
	for _, j := range jobs {
		j()
	}
}

func RunAll(ctx context.Context, jobs []func()) {
	for _, j := range jobs {
		if ctx.Err() != nil {
			return
		}
		j()
	}
}

// Names ranges over a fixed package-level table, not caller-provided work.
func Names() []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, n)
	}
	return out
}

// Spin would be flagged, but carries a justification.
//
//lint:noctx bounded three-iteration warmup, microseconds of work
func Spin() {
	for i := 0; i < 3; i++ {
		work()
	}
}

type V struct{}

// String is exempt: fmt.Stringer cannot take a context.
func (V) String() string {
	s := ""
	for {
		if len(s) > 3 {
			return s
		}
		s += "x"
	}
}

func internalLoop(jobs []func()) { // ok: unexported
	for _, j := range jobs {
		j()
	}
}
