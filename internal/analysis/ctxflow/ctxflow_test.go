package ctxflow_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	if err := ctxflow.Analyzer.Flags.Set("pkgs", "a"); err != nil {
		t.Fatal(err)
	}
	defer ctxflow.Analyzer.Flags.Set("pkgs", ctxflow.DefaultPackages)
	analyzertest.Run(t, ".", ctxflow.Analyzer, "a")
}
