// Package analysis assembles memdep-lint, the repo's custom static-analysis
// suite.  Each analyzer turns one historically hand-fixed bug class into a
// machine-checked invariant; DESIGN.md's "Enforced invariants" section
// documents every rule and its annotation escape hatch.
package analysis

import (
	xanalysis "golang.org/x/tools/go/analysis"

	"memdep/internal/analysis/arenaescape"
	"memdep/internal/analysis/ctxflow"
	"memdep/internal/analysis/exporteddoc"
	"memdep/internal/analysis/fieldalign"
	"memdep/internal/analysis/guardedby"
	"memdep/internal/analysis/hotalloc"
	"memdep/internal/analysis/maporder"
	"memdep/internal/analysis/poollifecycle"
	"memdep/internal/analysis/resetcomplete"
)

// All returns the memdep-lint analyzers in a stable order.
func All() []*xanalysis.Analyzer {
	return []*xanalysis.Analyzer{
		arenaescape.Analyzer,
		ctxflow.Analyzer,
		exporteddoc.Analyzer,
		fieldalign.Analyzer,
		guardedby.Analyzer,
		hotalloc.Analyzer,
		maporder.Analyzer,
		poollifecycle.Analyzer,
		resetcomplete.Analyzer,
	}
}
