package a

//memdep:soa
type padded struct { // want `//memdep:soa struct padded occupies 24 bytes; reordering its fields to \(b, a, c\) would occupy 16 bytes`
	a bool
	b int64
	c bool
}

//memdep:soa
type interleaved struct { // want `//memdep:soa struct interleaved occupies 24 bytes; reordering its fields to \(y, w, x, z\) would occupy 16 bytes`
	x byte
	y int64
	z byte
	w int32
}

//memdep:soa
type dense struct { // ok: already optimal
	wake      int64
	committed bool
	seen      bool
}

// unmarked wastes padding but is not opted in: reordering is ABI-visible, so
// the rule only checks annotated hot structs.
type unmarked struct {
	a bool
	b int64
	c bool
}
