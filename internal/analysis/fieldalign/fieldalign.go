// Package fieldalign defines an analyzer that checks the field layout of
// structs annotated //memdep:soa.
//
// The simulator's hot structs are walked densely (per task, per load, per
// heap entry); padding inflates their stride and wastes cache lines.  For
// every annotated struct the analyzer computes the size an optimal field
// order would occupy (largest alignment first, then largest size -- the
// classic fieldalignment packing) and reports the struct when its declared
// order wastes bytes, naming the suggested order.  It deliberately checks
// only annotated structs: reordering is an ABI-visible change (composite
// literals, reflection), so the rule is opt-in for the layouts the hot path
// actually strides over.
//
// When every field declares exactly one name, the diagnostic carries a
// suggested fix that reorders the declarations in place, each field keeping
// its doc and line comments; memdep-lint -fix applies it.
package fieldalign

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"memdep/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "fieldalign",
	Doc:      "flags //memdep:soa structs whose field order wastes padding bytes against the optimal layout",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		gd := n.(*ast.GenDecl)
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			doc := ts.Doc
			if doc == nil && len(gd.Specs) == 1 {
				doc = gd.Doc
			}
			if !directive.HasMarker(doc, "memdep:soa") {
				continue
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok || st.NumFields() == 0 {
				continue
			}
			cur := pass.TypesSizes.Sizeof(st)
			opt, order := optimalLayout(st, pass.TypesSizes)
			if opt < cur {
				diag := analysis.Diagnostic{
					Pos:     ts.Name.Pos(),
					Message: fmt.Sprintf("//memdep:soa struct %s occupies %d bytes; reordering its fields to (%s) would occupy %d bytes", ts.Name.Name, cur, strings.Join(order, ", "), opt),
				}
				if fix, ok := reorderFix(pass, ts, order); ok {
					diag.SuggestedFixes = []analysis.SuggestedFix{fix}
				}
				pass.Report(diag)
			}
		}
	})
	return nil, nil
}

// reorderFix builds a suggested fix that rewrites the struct's field list in
// the optimal order.  Each field's source snippet spans its doc comment
// through its trailing line comment, so annotations and //lint: escapes
// travel with the field.  The fix is withheld when a declaration carries
// multiple names or is embedded (reordering would have to split it) -- the
// diagnostic still fires, the rewrite is just manual there.
func reorderFix(pass *analysis.Pass, ts *ast.TypeSpec, order []string) (analysis.SuggestedFix, bool) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok || st.Fields == nil || len(st.Fields.List) < 2 {
		return analysis.SuggestedFix{}, false
	}
	byName := make(map[string]*ast.Field, len(st.Fields.List))
	for _, f := range st.Fields.List {
		if len(f.Names) != 1 {
			return analysis.SuggestedFix{}, false
		}
		byName[f.Names[0].Name] = f
	}
	src, err := readFile(pass, pass.Fset.Position(ts.Pos()).Filename)
	if err != nil {
		return analysis.SuggestedFix{}, false
	}
	tf := pass.Fset.File(ts.Pos())
	span := func(f *ast.Field) (start, end token.Pos) {
		start, end = f.Pos(), f.End()
		if f.Doc != nil {
			start = f.Doc.Pos()
		}
		if f.Comment != nil {
			end = f.Comment.End()
		}
		return start, end
	}
	first, _ := span(st.Fields.List[0])
	_, last := span(st.Fields.List[len(st.Fields.List)-1])
	var out bytes.Buffer
	for i, name := range order {
		f := byName[name]
		if f == nil {
			return analysis.SuggestedFix{}, false
		}
		if i > 0 {
			out.WriteString("\n\t")
		}
		start, end := span(f)
		out.Write(src[tf.Offset(start):tf.Offset(end)])
	}
	return analysis.SuggestedFix{
		Message: "reorder fields to the optimal layout",
		TextEdits: []analysis.TextEdit{{
			Pos:     first,
			End:     last,
			NewText: out.Bytes(),
		}},
	}, true
}

// readFile uses the pass's file reader when the driver provides one (the
// unitchecker does) and falls back to the filesystem under test harnesses.
func readFile(pass *analysis.Pass, filename string) ([]byte, error) {
	if pass.ReadFile != nil {
		return pass.ReadFile(filename)
	}
	return os.ReadFile(filename)
}

// optimalLayout computes the size of the struct under the canonical packing
// order -- fields sorted by decreasing alignment, then decreasing size, then
// declaration order -- and the field names in that order.
func optimalLayout(st *types.Struct, sizes types.Sizes) (int64, []string) {
	n := st.NumFields()
	fields := make([]*types.Var, n)
	for i := range fields {
		fields[i] = st.Field(i)
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ai, aj := sizes.Alignof(fields[i].Type()), sizes.Alignof(fields[j].Type())
		if ai != aj {
			return ai > aj
		}
		return sizes.Sizeof(fields[i].Type()) > sizes.Sizeof(fields[j].Type())
	})
	names := make([]string, n)
	fresh := make([]*types.Var, n)
	for i, f := range fields {
		names[i] = f.Name()
		fresh[i] = types.NewField(token.NoPos, f.Pkg(), f.Name(), f.Type(), f.Embedded())
	}
	return sizes.Sizeof(types.NewStruct(fresh, nil)), names
}
