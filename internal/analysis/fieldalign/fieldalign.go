// Package fieldalign defines an analyzer that checks the field layout of
// structs annotated //memdep:soa.
//
// The simulator's hot structs are walked densely (per task, per load, per
// heap entry); padding inflates their stride and wastes cache lines.  For
// every annotated struct the analyzer computes the size an optimal field
// order would occupy (largest alignment first, then largest size -- the
// classic fieldalignment packing) and reports the struct when its declared
// order wastes bytes, naming the suggested order.  It deliberately checks
// only annotated structs: reordering is an ABI-visible change (composite
// literals, reflection), so the rule is opt-in for the layouts the hot path
// actually strides over.
package fieldalign

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"memdep/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "fieldalign",
	Doc:      "flags //memdep:soa structs whose field order wastes padding bytes against the optimal layout",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		gd := n.(*ast.GenDecl)
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			doc := ts.Doc
			if doc == nil && len(gd.Specs) == 1 {
				doc = gd.Doc
			}
			if !directive.HasMarker(doc, "memdep:soa") {
				continue
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok || st.NumFields() == 0 {
				continue
			}
			cur := pass.TypesSizes.Sizeof(st)
			opt, order := optimalLayout(st, pass.TypesSizes)
			if opt < cur {
				pass.Reportf(ts.Name.Pos(), "//memdep:soa struct %s occupies %d bytes; reordering its fields to (%s) would occupy %d bytes", ts.Name.Name, cur, strings.Join(order, ", "), opt)
			}
		}
	})
	return nil, nil
}

// optimalLayout computes the size of the struct under the canonical packing
// order -- fields sorted by decreasing alignment, then decreasing size, then
// declaration order -- and the field names in that order.
func optimalLayout(st *types.Struct, sizes types.Sizes) (int64, []string) {
	n := st.NumFields()
	fields := make([]*types.Var, n)
	for i := range fields {
		fields[i] = st.Field(i)
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ai, aj := sizes.Alignof(fields[i].Type()), sizes.Alignof(fields[j].Type())
		if ai != aj {
			return ai > aj
		}
		return sizes.Sizeof(fields[i].Type()) > sizes.Sizeof(fields[j].Type())
	})
	names := make([]string, n)
	fresh := make([]*types.Var, n)
	for i, f := range fields {
		names[i] = f.Name()
		fresh[i] = types.NewField(token.NoPos, f.Pkg(), f.Name(), f.Type(), f.Embedded())
	}
	return sizes.Sizeof(types.NewStruct(fresh, nil)), names
}
