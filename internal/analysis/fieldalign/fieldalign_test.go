package fieldalign_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/fieldalign"
)

func TestFieldalign(t *testing.T) {
	analyzertest.Run(t, ".", fieldalign.Analyzer, "a")
}
