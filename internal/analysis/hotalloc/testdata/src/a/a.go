package a

type queue struct {
	buf []int64
}

// push is the pooled-heap idiom: the append is deliberate amortized growth.
//
//memdep:hotpath
func (q *queue) push(c int64) {
	q.buf = append(q.buf, c) // want `append to q.buf may grow its backing array`
}

//memdep:hotpath
func hot(n int) []int64 {
	out := make([]int64, n) // want `make\(\[\]int64\) allocates`
	seen := map[int]bool{}  // want `map literal allocates`
	_ = seen
	xs := []int{1, 2, 3} // want `slice literal allocates`
	_ = xs
	p := new(queue) // want `new\(queue\) allocates`
	_ = p
	e := &queue{} // want `&queue composite literal escapes to the heap`
	_ = e
	f := func() {} // want `function literal allocates a closure`
	f()
	return out
}

//memdep:hotpath
func reuse(buf, vals []int64) []int64 {
	out := append(buf[:0], vals...) // ok: arena reuse, grows only past high-water mark
	//lint:alloc-ok grow-once arena append, amortized to zero per op
	out = append(out, 1)
	return out
}

// cold is unannotated: allocations here are not the hot path's business.
func cold(n int) []int64 {
	return make([]int64, n)
}
