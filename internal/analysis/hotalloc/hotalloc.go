// Package hotalloc defines an analyzer that flags heap allocations inside
// functions annotated //memdep:hotpath.
//
// The timing core's allocation discipline (DESIGN.md: a warmed simulation
// performs essentially zero heap allocations) is gated at runtime by
// cmd/benchgate's allocs/op ceiling.  That gate tells you THAT a regression
// happened; this analyzer tells you WHERE, at compile time: inside an
// annotated function it reports make/new calls, map, slice and escaping
// composite literals, function literals (closures), and appends that may grow
// their backing array.  append(x[:0], ...) -- the arena-reuse idiom -- is
// accepted, and any deliberate allocation (sizing paths, amortized arena
// growth) is justified in place with //lint:alloc-ok.
//
// Only directly annotated functions are checked; the marker does not
// propagate through calls.  Seed it on every function a profile shows on the
// per-instruction path.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"memdep/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "flags allocation sites (make, new, map/slice/escaping composite literals, closures, growing appends) inside //memdep:hotpath functions unless justified with //lint:alloc-ok",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.New(pass.Fset, pass.Files)

	report := func(n ast.Node, format string, args ...interface{}) bool {
		if dirs.Has(n.Pos(), "lint:alloc-ok") {
			return true
		}
		pass.Reportf(n.Pos(), format+" on a //memdep:hotpath function; restructure to reuse arena storage or justify with //lint:alloc-ok", args...)
		return true
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !directive.HasMarker(fd.Doc, "memdep:hotpath") || fd.Body == nil {
			return
		}
		if strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				report(n, "function literal allocates a closure")
				return false
			case *ast.CallExpr:
				switch {
				case isBuiltin(pass, n, "make"):
					report(n, "make(%s) allocates", types.ExprString(n.Args[0]))
				case isBuiltin(pass, n, "new"):
					report(n, "new(%s) allocates", types.ExprString(n.Args[0]))
				case isBuiltin(pass, n, "append") && !isArenaReuse(n):
					report(n, "append to %s may grow its backing array", types.ExprString(n.Args[0]))
				}
			case *ast.UnaryExpr:
				if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
					report(n, "&%s composite literal escapes to the heap", types.ExprString(cl.Type))
					return false
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Map:
					report(n, "map literal allocates")
				case *types.Slice:
					report(n, "slice literal allocates")
				}
			}
			return true
		})
	})
	return nil, nil
}

// isArenaReuse recognizes append(x[:0], ...): the append re-fills x's
// existing backing array, only growing when the input outsizes every previous
// one -- the arena idiom used throughout the simulator.
func isArenaReuse(call *ast.CallExpr) bool {
	se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	lit, ok := se.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
