package hotalloc_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analyzertest.Run(t, ".", hotalloc.Analyzer, "a")
}
