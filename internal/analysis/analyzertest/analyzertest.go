// Package analyzertest runs a go/analysis analyzer over a testdata package
// and checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which is not vendored with
// the Go toolchain's x/tools subset, so the suite carries this small
// offline-friendly equivalent).
//
// A want comment asserts the diagnostics reported on its own line:
//
//	for k := range m { // want `range over map`
//
// The backquoted (or double-quoted) strings are regular expressions; each
// must match exactly one diagnostic on the line, and every diagnostic must be
// matched by exactly one expectation.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Run loads the package rooted at testdata/src/<pkg> under dir, applies the
// analyzer, and reports every mismatch between the diagnostics and the
// // want expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "testdata", "src", pkg)
	fset := token.NewFileSet()
	files, err := parseDir(fset, pkgdir)
	if err != nil {
		t.Fatal(err)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking %s: %v", pkgdir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
	}
	for _, req := range a.Requires {
		if req == inspect.Analyzer {
			pass.ResultOf[req] = inspector.New(files)
			continue
		}
		t.Fatalf("analyzer %s requires %s, which this harness does not provide", a.Name, req.Name)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	check(t, fset, files, diags)
}

// parseDir parses every .go file directly inside dir.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}

// wantRE extracts the quoted or backquoted expectation patterns from a
// Comment whose text begins with "want".
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type key struct {
	file string
	line int
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[key][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, q := range wantRE.FindAllString(text[len("want "):], -1) {
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], q[1:len(q)-1])
				}
			}
		}
	}

	got := make(map[key][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	for k, patterns := range wants {
		msgs := append([]string(nil), got[k]...)
		for _, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				t.Errorf("%s:%d: bad expectation %q: %v", k.file, k.line, p, err)
				continue
			}
			matched := -1
			for i, m := range msgs {
				if m != "" && re.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", k.file, k.line, p, got[k])
				continue
			}
			msgs[matched] = ""
		}
		for _, m := range msgs {
			if m != "" {
				t.Errorf("%s:%d: unexpected diagnostic %q", k.file, k.line, m)
			}
		}
	}
	var stray []string
	for k, msgs := range got {
		if _, ok := wants[k]; ok {
			continue
		}
		for _, m := range msgs {
			stray = append(stray, fmt.Sprintf("%s:%d: unexpected diagnostic %q", k.file, k.line, m))
		}
	}
	sort.Strings(stray)
	for _, s := range stray {
		t.Error(s)
	}
}
