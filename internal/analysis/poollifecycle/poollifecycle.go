// Package poollifecycle defines an analyzer that checks the lifecycle of
// values drawn from a sync.Pool.
//
// The arena-reuse layer leans on pooling (the SimulateContext simulator pool,
// per-worker scratch arenas): a Get whose value is not Put back on some
// return path silently degrades the pool to an allocator, and a value used
// after it was Put races with the next Get of the same object -- both defects
// that no test catches until the pool is contended.  The analyzer builds the
// control-flow graph of every function that calls (*sync.Pool).Get, and
// verifies along every path to every return that the value is Put back
// exactly once and never touched after the Put.  `defer pool.Put(v)`
// discharges the obligation on every path at once.
//
// The check is flow-sensitive but condition-blind (both arms of an `if` are
// explored); a site where the lifecycle is managed through a condition the
// analysis cannot see carries a //lint:pool-ok justification on the Get.
// Paths that end in panic carry no obligation: losing a pooled value on a
// panic is the documented sync.Pool failure mode, not a leak.
package poollifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"memdep/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "poollifecycle",
	Doc:      "checks that sync.Pool values are Put back on every return path exactly once and never used after Put",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// Per-variable lifecycle state, a set of path facts merged by union.
const (
	bitAbsent uint8 = 1 << iota // Get not yet executed on this path
	bitLive                     // value drawn and not yet returned
	bitPut                      // value returned to the pool
	bitDefer                    // a deferred Put will return it at exit
)

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.New(pass.Fset, pass.Files)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body != nil {
			checkFunc(pass, dirs, body)
		}
	})
	return nil, nil
}

// poolMethod reports whether the call invokes the named method of sync.Pool.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// getSite is one tracked (*sync.Pool).Get whose result is bound to a
// variable.
type getSite struct {
	obj  types.Object
	call *ast.CallExpr
}

// trackedGets finds the Get calls in the body whose results are bound to
// variables, excluding nested function literals (analyzed on their own) and
// sites justified with //lint:pool-ok.
func trackedGets(pass *analysis.Pass, dirs *directive.Index, body *ast.BlockStmt) []getSite {
	var sites []getSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !poolMethod(pass, call, "Get") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || dirs.Has(call.Pos(), "lint:pool-ok") {
			return true
		}
		sites = append(sites, getSite{obj: obj, call: call})
		return true
	})
	return sites
}

type state map[types.Object]uint8

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s { //lint:deterministic map copy, order-independent
		c[k] = v
	}
	return c
}

// merge unions the path facts of two predecessor states; it reports whether
// the destination changed.
func (s state) merge(from state) bool {
	changed := false
	for k, v := range from { //lint:deterministic bitwise union, order-independent
		if s[k]|v != s[k] {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

func checkFunc(pass *analysis.Pass, dirs *directive.Index, body *ast.BlockStmt) {
	sites := trackedGets(pass, dirs, body)
	if len(sites) == 0 {
		return
	}
	tracked := make(map[types.Object]*getSite, len(sites))
	for i := range sites {
		tracked[sites[i].obj] = &sites[i]
	}

	g := cfg.New(body, mayReturn)

	// Fixpoint over block entry states, then one reporting pass with the
	// stable states so diagnostics are not duplicated per worklist visit.
	in := make(map[*cfg.Block]state)
	entry := make(state, len(tracked))
	for obj := range tracked { //lint:deterministic state initialization, order-independent
		entry[obj] = bitAbsent
	}
	in[g.Blocks[0]] = entry
	work := []*cfg.Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		s := in[b].clone()
		tr := transfer{pass: pass, tracked: tracked, s: s}
		for _, n := range b.Nodes {
			tr.node(n)
		}
		for _, succ := range b.Succs {
			if in[succ] == nil {
				in[succ] = s.clone()
				work = append(work, succ)
			} else if in[succ].merge(s) {
				work = append(work, succ)
			}
		}
	}
	leaked := make(map[types.Object]bool)
	for _, b := range g.Blocks {
		if in[b] == nil {
			continue
		}
		tr := transfer{pass: pass, tracked: tracked, s: in[b].clone(), report: true, leaked: leaked}
		for _, n := range b.Nodes {
			tr.node(n)
		}
	}
}

// mayReturn treats panic and the conventional process-exit helpers as
// no-return calls, so paths into them carry no Put obligation.
func mayReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name != "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return !(name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln" || strings.HasPrefix(name, "Skip"))
	}
	return true
}

// transfer interprets one CFG node, updating the lifecycle state and (in the
// reporting pass) emitting diagnostics.
type transfer struct {
	pass    *analysis.Pass
	tracked map[types.Object]*getSite
	s       state
	report  bool
	leaked  map[types.Object]bool // sites already reported as not-Put, one diagnostic per Get
}

func (t *transfer) reportf(pos token.Pos, format string, args ...interface{}) {
	if t.report {
		t.pass.Reportf(pos, format, args...)
	}
}

func (t *transfer) node(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if t.isPut(n.Call) {
				t.put(n.Call, true)
				return false
			}
			return true
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						t.use(id)
					}
					_, isLit := m.(*ast.FuncLit)
					return !isLit
				})
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					ast.Inspect(lhs, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							t.use(id)
						}
						return true
					})
					continue
				}
				obj := t.pass.TypesInfo.ObjectOf(id)
				site, ok := t.tracked[obj]
				if !ok {
					continue
				}
				if i == 0 && len(n.Rhs) == 1 && containsCall(n.Rhs[0], site.call) {
					t.s[obj] = bitLive
				} else {
					// Rebinding the variable to something else ends the
					// analysis of the original value.
					delete(t.s, obj)
				}
			}
			return false
		case *ast.CallExpr:
			if t.isPut(n) {
				t.put(n, false)
				return false
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						t.use(id)
					}
					_, isLit := m.(*ast.FuncLit)
					return !isLit
				})
			}
			t.checkReturn(n)
			return false
		case *ast.Ident:
			t.use(n)
		}
		return true
	})
}

func containsCall(e ast.Expr, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == ast.Node(call) {
			found = true
		}
		return !found
	})
	return found
}

func (t *transfer) isPut(call *ast.CallExpr) bool {
	return len(call.Args) == 1 && poolMethod(t.pass, call, "Put")
}

// put transitions the argument's state for pool.Put(v) / defer pool.Put(v).
func (t *transfer) put(call *ast.CallExpr, deferred bool) {
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := t.pass.TypesInfo.ObjectOf(id)
	if _, tracked := t.tracked[obj]; !tracked {
		return
	}
	st, live := t.s[obj]
	if !live {
		return
	}
	if st&(bitPut|bitDefer) != 0 {
		t.reportf(call.Pos(), "%s may be returned to the pool twice", id.Name)
	}
	if deferred {
		t.s[obj] = bitDefer
	} else {
		t.s[obj] = bitPut
	}
}

// use flags reads of a value after it went back to the pool.
func (t *transfer) use(id *ast.Ident) {
	obj := t.pass.TypesInfo.ObjectOf(id)
	if _, tracked := t.tracked[obj]; !tracked {
		return
	}
	if t.s[obj]&bitPut != 0 {
		t.reportf(id.Pos(), "%s is used after being returned to the pool", id.Name)
	}
}

// checkReturn flags values still live (on at least one path) at a return.
func (t *transfer) checkReturn(ret *ast.ReturnStmt) {
	if !t.report {
		return
	}
	for obj, st := range t.s { //lint:deterministic reports keyed to stable Get positions, one per site
		if st&bitLive != 0 && !t.leaked[obj] {
			t.leaked[obj] = true
			site := t.tracked[obj]
			t.pass.Reportf(site.call.Pos(), "%s obtained from the pool is not returned to it on every return path; Put it before returning or annotate the Get with //lint:pool-ok <why>", obj.Name())
		}
	}
}
