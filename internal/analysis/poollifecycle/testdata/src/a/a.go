package a

import "sync"

var pool = sync.Pool{New: func() interface{} { return new([]byte) }}

// leakOnOnePath forgets the Put on the early-return branch.
func leakOnOnePath(n int) int {
	buf := pool.Get().(*[]byte) // want `buf obtained from the pool is not returned to it on every return path`
	if n < 0 {
		return 0
	}
	m := len(*buf)
	pool.Put(buf)
	return m
}

// leakEverywhere never Puts at all.
func leakEverywhere() *[]byte {
	buf := pool.Get().(*[]byte) // want `buf obtained from the pool is not returned to it on every return path`
	other := new([]byte)
	_ = buf
	return other
}

// useAfterPut touches the value after handing it back.
func useAfterPut() int {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
	return len(*buf) // want `buf is used after being returned to the pool`
}

// doublePut returns the same value twice.
func doublePut(cond bool) {
	buf := pool.Get().(*[]byte)
	if cond {
		pool.Put(buf)
	}
	pool.Put(buf) // want `buf may be returned to the pool twice`
}

// deferredOK discharges the obligation on every path with one defer.
func deferredOK(n int) int {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
	if n < 0 {
		return 0
	}
	return len(*buf)
}

// straightLineOK puts before the single return.
func straightLineOK() int {
	buf := pool.Get().(*[]byte)
	n := len(*buf)
	pool.Put(buf)
	return n
}

// panicPathOK carries no obligation into panic: sync.Pool tolerates losing
// values, and the analyzer must not demand a Put before the panic.
func panicPathOK(n int) int {
	buf := pool.Get().(*[]byte)
	if n < 0 {
		panic("negative")
	}
	pool.Put(buf)
	return n
}

// suppressed documents a lifecycle the analysis cannot follow.
func suppressed(sink chan *[]byte) {
	buf := pool.Get().(*[]byte) //lint:pool-ok ownership transfers to the receiver, which Puts it
	sink <- buf
}

// notAPool uses a Get/Put pair on a type that merely looks like a pool; the
// analyzer must key on sync.Pool, not on method names.
type freelist struct{ items []*[]byte }

func (f *freelist) Get() *[]byte {
	if n := len(f.items); n > 0 {
		v := f.items[n-1]
		f.items = f.items[:n-1]
		return v
	}
	return new([]byte)
}

func (f *freelist) Put(v *[]byte) { f.items = append(f.items, v) }

func notAPool(f *freelist) *[]byte {
	v := f.Get()
	return v
}

// rebound hands the first value back, then reuses the variable for a fresh
// Get whose leak is charged to the second site.
func rebound() *[]byte {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
	buf = pool.Get().(*[]byte) // want `buf obtained from the pool is not returned to it on every return path`
	return buf
}
