package poollifecycle_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/poollifecycle"
)

func TestPoolLifecycle(t *testing.T) {
	analyzertest.Run(t, ".", poollifecycle.Analyzer, "a")
}
