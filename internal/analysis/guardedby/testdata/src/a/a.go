package a

import "sync"

type registry struct {
	mu sync.Mutex
	//memdep:guardedby mu
	entries map[string]int
	count   int //memdep:guardedby mu
	free    int // unguarded on purpose
}

// unlocked reads the guarded field with no lock at all.
func unlocked(r *registry) int {
	return r.entries["x"] // want `r\.entries is accessed without holding r\.mu`
}

// locked is the canonical pattern.
func locked(r *registry) int {
	r.mu.Lock()
	n := r.entries["x"]
	r.count++
	r.mu.Unlock()
	return n
}

// deferred holds the mutex through every return via defer.
func deferred(r *registry, k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k == "" {
		return 0
	}
	return r.entries[k]
}

// afterUnlock touches the field once the lock is gone.
func afterUnlock(r *registry) int {
	r.mu.Lock()
	r.mu.Unlock()
	return r.count // want `r\.count is accessed without holding r\.mu`
}

// branchLock acquires on only one arm, so the merged state is unlocked.
func branchLock(r *registry, cond bool) int {
	if cond {
		r.mu.Lock()
	}
	n := r.entries["x"] // want `r\.entries is accessed without holding r\.mu`
	if cond {
		r.mu.Unlock()
	}
	return n
}

// bothArms locks on every path into the access.
func bothArms(r *registry, cond bool) int {
	if cond {
		r.mu.Lock()
	} else {
		r.mu.Lock()
	}
	n := r.count
	r.mu.Unlock()
	return n
}

// lockedHelper declares the caller-holds-the-lock contract.
//
//memdep:locked mu
func (r *registry) lockedHelper() int {
	return r.count + r.free
}

// wrongBase holds one instance's mutex while touching another instance.
func wrongBase(a, b *registry) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.count // want `b\.count is accessed without holding b\.mu`
}

// construction publishes nothing yet; the justified escape applies.
func construction() *registry {
	r := &registry{entries: make(map[string]int)}
	r.count = 1 //lint:unguarded not yet shared, constructor-local
	return r
}

// missingArg exercises the malformed annotation diagnostic.
type missingArg struct {
	mu sync.Mutex
	//memdep:guardedby
	x int // want `//memdep:guardedby needs the name of the guarding mutex field`
}
