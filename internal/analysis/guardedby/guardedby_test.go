package guardedby_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analyzertest.Run(t, ".", guardedby.Analyzer, "a")
}
