// Package guardedby defines an analyzer enforcing lock discipline on fields
// annotated //memdep:guardedby <mutex>.
//
// The annotation lives on a struct field and names a sibling mutex field; the
// analyzer then proves, on the control-flow graph of every function in the
// package, that each access to the guarded field happens while that mutex is
// held on every path reaching the access.  Lock() and RLock() acquire,
// Unlock() and RUnlock() release, `defer mu.Unlock()` keeps the mutex held
// through to the returns, and the held-set is intersected at join points, so
// a lock taken on only one arm of a branch does not count after the merge.
//
// The analysis is intraprocedural and syntactic about identity: the mutex of
// the access `e.sims` is the expression `e.mu` -- same base path, annotated
// field name.  A helper that is only ever called with the lock held declares
// that contract with //memdep:locked <mutex> on the function, which seeds the
// held-set with the receiver's mutex.  Accesses that are safe for reasons the
// analysis cannot see (construction before publication, test-only
// single-goroutine use) carry //lint:unguarded <why> on the access line.
// Function literals are analyzed as separate functions and inherit nothing.
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"memdep/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "guardedby",
	Doc:      "checks that fields annotated //memdep:guardedby <mu> are only accessed with the named mutex held",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.New(pass.Fset, pass.Files)

	guarded := collectGuarded(pass, ins)
	if len(guarded) == 0 {
		return nil, nil
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		held := make(map[string]bool)
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
			// //memdep:locked mu on a helper seeds the held-set with the
			// receiver's mutex: the contract is "only called locked".
			if arg, ok := directive.MarkerArg(n.Doc, "memdep:locked"); ok && arg != "" && n.Recv != nil && len(n.Recv.List) == 1 && len(n.Recv.List[0].Names) == 1 {
				held[n.Recv.List[0].Names[0].Name+"."+arg] = true
			}
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return
		}
		if f := pass.Fset.File(body.Pos()); f != nil && strings.HasSuffix(f.Name(), "_test.go") {
			return // single-goroutine test access needs no locking
		}
		checkFunc(pass, dirs, guarded, held, body)
	})
	return nil, nil
}

// collectGuarded maps each annotated field object to the name of the sibling
// mutex field that guards it.
func collectGuarded(pass *analysis.Pass, ins *inspector.Inspector) map[types.Object]string {
	guarded := make(map[types.Object]string)
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, field := range st.Fields.List {
			mu, ok := directive.MarkerArg(field.Doc, "memdep:guardedby")
			if !ok {
				mu, ok = directive.MarkerArg(field.Comment, "memdep:guardedby")
			}
			if !ok {
				continue
			}
			if mu == "" {
				pass.Reportf(field.Pos(), "//memdep:guardedby needs the name of the guarding mutex field")
				continue
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					guarded[obj] = mu
				}
			}
		}
	})
	return guarded
}

type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k := range s { //lint:deterministic set copy, order-independent
		c[k] = true
	}
	return c
}

// intersect drops keys absent from the other predecessor; a mutex counts as
// held at a join only when it is held on every path into it.
func (s lockSet) intersect(from lockSet) bool {
	changed := false
	for k := range s { //lint:deterministic set intersection, order-independent
		if !from[k] {
			delete(s, k)
			changed = true
		}
	}
	return changed
}

func checkFunc(pass *analysis.Pass, dirs *directive.Index, guarded map[types.Object]string, entry lockSet, body *ast.BlockStmt) {
	// Cheap pre-scan: most functions touch no guarded field.
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
				if _, ok := guarded[obj]; ok {
					touches = true
				}
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	g := cfg.New(body, func(*ast.CallExpr) bool { return true })
	in := make(map[*cfg.Block]lockSet)
	in[g.Blocks[0]] = entry
	work := []*cfg.Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		s := in[b].clone()
		w := walker{pass: pass, guarded: guarded, held: s}
		for _, n := range b.Nodes {
			w.node(n)
		}
		for _, succ := range b.Succs {
			if in[succ] == nil {
				in[succ] = s.clone()
				work = append(work, succ)
			} else if in[succ].intersect(s) {
				work = append(work, succ)
			}
		}
	}
	for _, b := range g.Blocks {
		if in[b] == nil {
			continue
		}
		w := walker{pass: pass, guarded: guarded, held: in[b].clone(), dirs: dirs, report: true}
		for _, n := range b.Nodes {
			w.node(n)
		}
	}
}

type walker struct {
	pass    *analysis.Pass
	guarded map[types.Object]string
	held    lockSet
	dirs    *directive.Index
	report  bool
}

func (w *walker) node(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred Unlock runs at return, after every access in the
			// body: the mutex stays held for checking purposes.
			if key, op, ok := w.lockOp(n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				_ = key
				return false
			}
			return true
		case *ast.CallExpr:
			if key, op, ok := w.lockOp(n); ok {
				switch op {
				case "Lock", "RLock":
					w.held[key] = true
				case "Unlock", "RUnlock":
					delete(w.held, key)
				}
				return false
			}
			return true
		case *ast.SelectorExpr:
			w.access(n)
			// Keep descending: the base expression may itself contain
			// guarded accesses (e.g. e.calls[e.key].x).
			return true
		}
		return true
	})
}

// lockOp recognizes m.Lock / m.RLock / m.Unlock / m.RUnlock / m.TryLock for a
// sync mutex m and returns the rendered mutex expression and operation name.
// TryLock is conditional and deliberately unrecognized as an acquire.
func (w *walker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	fn, isFn := typeutil.Callee(w.pass.TypesInfo, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// access checks one field selection against the held-set.
func (w *walker) access(sel *ast.SelectorExpr) {
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	mu, ok := w.guarded[obj]
	if !ok || !w.report {
		return
	}
	key := types.ExprString(sel.X) + "." + mu
	if w.held[key] {
		return
	}
	if w.dirs.Has(sel.Sel.Pos(), "lint:unguarded") {
		return
	}
	w.pass.Reportf(sel.Sel.Pos(), "%s is accessed without holding %s (guarded by //memdep:guardedby %s); lock it, mark the function //memdep:locked %s, or annotate the access with //lint:unguarded <why>", types.ExprString(sel), key, mu, mu)
}
