package a

import (
	"slices"
	"sort"
)

func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m has nondeterministic iteration order`
		total += v
	}
	return total
}

func firstKey(ms map[int]map[string]int) string {
	for _, inner := range ms { // want `range over map ms has nondeterministic iteration order`
		for k := range inner { // want `range over map inner has nondeterministic iteration order`
			return k
		}
	}
	return ""
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: keys are collected and sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysSlices(m map[int]bool) []int {
	var keys []int
	for k := range m { // ok: keys are collected and sorted before use
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func collectedButNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m has nondeterministic iteration order`
		keys = append(keys, k)
	}
	return keys
}

func justifiedCount(m map[string]int) int {
	n := 0
	//lint:deterministic pure count, order-independent
	for range m {
		n++
	}
	return n
}

func sliceRangeIsFine(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
