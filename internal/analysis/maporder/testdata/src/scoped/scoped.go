package scoped

// This package is outside the configured -maporder.pkgs set, so its map
// ranges are not result-producing and report nothing.

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
