package maporder_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	if err := maporder.Analyzer.Flags.Set("pkgs", "a"); err != nil {
		t.Fatal(err)
	}
	defer maporder.Analyzer.Flags.Set("pkgs", maporder.DefaultPackages)
	analyzertest.Run(t, ".", maporder.Analyzer, "a")
}

// TestMaporderSkipsOtherPackages pins the scoping: a package outside the
// configured set reports nothing even though it ranges over maps.
func TestMaporderSkipsOtherPackages(t *testing.T) {
	if err := maporder.Analyzer.Flags.Set("pkgs", "not-this-package"); err != nil {
		t.Fatal(err)
	}
	defer maporder.Analyzer.Flags.Set("pkgs", maporder.DefaultPackages)
	analyzertest.Run(t, ".", maporder.Analyzer, "scoped")
}
