// Package maporder defines an analyzer that flags range statements over maps
// inside the repo's result-producing packages.
//
// Simulation results must be bit-for-bit deterministic: EXPERIMENTS.md is
// diffed byte-for-byte in CI, the engine memoizes results by key, and the
// golden tests pin exact outputs.  Iterating a map while producing any of
// that state is the exact bug class PR 2 had to fix (commit- and squash-time
// MDPT/MDST updates used to apply in nondeterministic map order).  A range
// over a map is accepted only when the loop demonstrably collects the keys
// (or values) into a slice that is later sorted in the same function, or when
// it carries a //lint:deterministic justification on or above the loop.
//
// For the key-only form `for k := range m` over an ordered key type, the
// diagnostic carries a suggested fix rewriting the loop to
// `for _, k := range slices.Sorted(maps.Keys(m))` (importing slices and maps
// when the file lacks them); memdep-lint -fix applies it.  The key/value form
// has no mechanical rewrite and is reported without a fix.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"memdep/internal/analysis/directive"
)

// DefaultPackages is the result-producing package set the rule applies to by
// default: the timing simulator, the predictor subsystem, the experiment
// drivers and the public facade.
const DefaultPackages = "memdep/internal/multiscalar,memdep/internal/memdep,memdep/internal/experiments,memdep/sim"

var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flags nondeterministic map iteration in result-producing code unless the keys are sorted before use or the site carries a //lint:deterministic justification",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var pkgsFlag string

func init() {
	Analyzer.Flags.StringVar(&pkgsFlag, "pkgs", DefaultPackages, "comma-separated import paths the rule applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path(), pkgsFlag) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.New(pass.Fset, pass.Files)

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rs := n.(*ast.RangeStmt)
		if strings.HasSuffix(pass.Fset.Position(rs.Pos()).Filename, "_test.go") {
			return true
		}
		typ := pass.TypesInfo.TypeOf(rs.X)
		if typ == nil {
			return true
		}
		if _, ok := typ.Underlying().(*types.Map); !ok {
			return true
		}
		if dirs.Has(rs.Pos(), "lint:deterministic") {
			return true
		}
		if collectsThenSorts(pass, rs, stack) {
			return true
		}
		diag := analysis.Diagnostic{
			Pos:     rs.Pos(),
			Message: fmt.Sprintf("range over map %s has nondeterministic iteration order in result-producing code; sort the keys before use or annotate the loop with //lint:deterministic", types.ExprString(rs.X)),
		}
		if fix, ok := sortedKeysFix(pass, rs); ok {
			diag.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(diag)
		return true
	})
	return nil, nil
}

// sortedKeysFix rewrites the key-only range `for k := range m` into
// `for _, k := range slices.Sorted(maps.Keys(m))`.  It applies only when the
// key type is ordered (so slices.Sorted instantiates) and adds the slices and
// maps imports when the file's import block lacks them.  The key/value form
// would need the body rewritten to index the map, so it gets no fix.
func sortedKeysFix(pass *analysis.Pass, rs *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil || rs.Tok != token.DEFINE {
		return analysis.SuggestedFix{}, false
	}
	m, ok := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	basic, ok := m.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return analysis.SuggestedFix{}, false
	}
	edits := []analysis.TextEdit{{
		Pos:     rs.Key.Pos(),
		End:     rs.X.End(),
		NewText: []byte(fmt.Sprintf("_, %s := range slices.Sorted(maps.Keys(%s))", key.Name, types.ExprString(rs.X))),
	}}
	importEdits, ok := ensureImports(pass, rs.Pos(), "maps", "slices")
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message:   "iterate over the sorted keys",
		TextEdits: append(importEdits, edits...),
	}, true
}

// ensureImports returns the text edits that add the named imports to the file
// containing pos, skipping paths already imported.  It requires a grouped
// import block to splice into; files without one forgo the fix.
func ensureImports(pass *analysis.Pass, pos token.Pos, paths ...string) ([]analysis.TextEdit, bool) {
	var file *ast.File
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			file = f
			break
		}
	}
	if file == nil {
		return nil, false
	}
	have := make(map[string]bool)
	for _, imp := range file.Imports {
		have[strings.Trim(imp.Path.Value, `"`)] = true
	}
	var missing []string
	for _, p := range paths {
		if !have[p] {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil, true
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		var b strings.Builder
		for _, p := range missing {
			fmt.Fprintf(&b, "\t%q\n", p)
		}
		return []analysis.TextEdit{{
			Pos:     gd.Rparen,
			End:     gd.Rparen,
			NewText: []byte(b.String()),
		}}, true
	}
	return nil, false
}

func applies(path, pkgs string) bool {
	for _, p := range strings.Split(pkgs, ",") {
		if path == strings.TrimSpace(p) {
			return true
		}
	}
	return false
}

// collectsThenSorts recognizes the sanctioned pattern: the loop body is a
// single append of the iteration variable(s) into a slice, and the enclosing
// function later sorts that slice (sort.Strings/Ints/Float64s/Slice/
// SliceStable or slices.Sort/SortFunc/SortStableFunc), making every
// subsequent use order-independent.
func collectsThenSorts(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call, "append") {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(lhs)
	if obj == nil {
		return false
	}

	// Innermost enclosing function body.
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}

	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if isSortCall(pass, call, obj) {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// isSortCall reports whether call sorts the slice bound to obj via one of the
// recognized sort/slices functions.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	names, ok := sortFuncs[pkgName.Imported().Path()]
	if !ok || !names[sel.Sel.Name] {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(arg) == obj
}
