package resetcomplete_test

import (
	"testing"

	"memdep/internal/analysis/analyzertest"
	"memdep/internal/analysis/resetcomplete"
)

func TestResetComplete(t *testing.T) {
	analyzertest.Run(t, ".", resetcomplete.Analyzer, "a")
}
