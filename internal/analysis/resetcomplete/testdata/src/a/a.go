package a

// missing exercises the plain case: two fields never mentioned by Reset.
//
//memdep:resettable
type missing struct {
	entries []int
	clock   uint64
	hits    uint64 // want `field hits of //memdep:resettable type missing is never cleared`
	scratch []int  // want `field scratch of //memdep:resettable type missing is never cleared`
}

func (m *missing) Reset() {
	for i := range m.entries {
		m.entries[i] = 0
	}
	m.clock = 0
}

// complete covers every clearing form the analyzer recognizes: direct
// assignment, clear(), element writes in a range loop, sub-reset calls,
// helper methods on the same receiver, and an exempted constant.
//
//memdep:resettable
type complete struct {
	capacity int //lint:reset-exempt config-constant geometry
	idx      map[int]int
	tags     []int
	sub      *sub
	count    uint64
	buckets  map[int][]int
}

func (c *complete) Reset() {
	clear(c.idx)
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.sub.Reset()
	c.clearCounters()
	for k, s := range c.buckets {
		c.buckets[k] = s[:0]
	}
}

func (c *complete) clearCounters() { c.count = 0 }

//memdep:resettable
type sub struct {
	vals []int
	top  int
}

func (s *sub) Reset() {
	s.vals = s.vals[:0]
	s.top = 0
}

// delegated clears its inner state through an alias, the Simulator-arena
// idiom; inner.stale is reachable only through the alias and never written.
//
//memdep:resettable
type delegated struct {
	state inner
	built bool
}

type inner struct {
	cursor int
	buf    []int
	stale  uint64 // want `field state.stale of //memdep:resettable type delegated is never cleared`
}

func (d *delegated) reset() {
	s := &d.state
	s.cursor = 0
	s.buf = s.buf[:0]
	d.built = false
}

// wholesale resets by overwriting the receiver, which covers every field.
//
//memdep:resettable
type wholesale struct {
	a int
	b []int
}

func (w *wholesale) Reset() {
	*w = wholesale{}
}

// noreset is marked but has no Reset method at all.
//
//memdep:resettable
type noreset struct { // want `//memdep:resettable type noreset has no Reset \(or reset\) method`
	x int
}
