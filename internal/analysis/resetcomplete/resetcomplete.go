// Package resetcomplete defines an analyzer that checks the Reset methods of
// types annotated //memdep:resettable for completeness.
//
// The arena-reuse discipline (DESIGN.md "Arena & SoA layout") makes "stale
// state surviving a Reset" the most dangerous bug class in the repo: a field
// added to a pooled predictor, cache or simulator arena but forgotten in its
// Reset silently leaks one run's state into the next, and only a specific
// config alternation on a reused arena ever exposes it.  This analyzer turns
// that hazard into a diagnostic: for every marked type it verifies that the
// type's Reset method (or unexported reset) mentions every field as a write
// target -- directly, through an alias (s := &sm.s), through a helper method
// on the same receiver, or via a sub-reset call (t.f.Reset(), clear(t.f),
// delete(...), element writes in a range loop).  Fields that are genuinely
// configuration-constant carry a //lint:reset-exempt justification on their
// declaration.
//
// The check is any-path ("is the field ever a write target in the reset call
// graph"), not all-paths: conditional clearing (rebuild-vs-reset arms) is the
// normal idiom, and the bug class is the field that is never mentioned at
// all.  When a field's struct type is defined in the same package and Reset
// only writes it through an alias, the analyzer recurses and requires every
// field of the inner struct to be covered -- this is what lets the Simulator
// arena delegate the whole of its sim state through s := &sm.s.
package resetcomplete

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"memdep/internal/analysis/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "resetcomplete",
	Doc:      "checks that the Reset method of every //memdep:resettable type clears all fields not annotated //lint:reset-exempt",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// maxDepth bounds the interprocedural recursion through helper methods and
// functions; reset call graphs are shallow, and the bound keeps pathological
// cycles cheap even before the visited set cuts them.
const maxDepth = 6

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.New(pass.Fset, pass.Files)

	// Index every method and function declared in the package: methods by
	// (receiver base type, name) for sub-reset recursion, functions by object
	// for helper recursion.
	methods := make(map[*types.TypeName]map[string]*ast.FuncDecl)
	funcs := make(map[types.Object]*ast.FuncDecl)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		if fd.Recv == nil {
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				funcs[obj] = fd
			}
			return
		}
		tn := recvTypeName(pass, fd)
		if tn == nil {
			return
		}
		m := methods[tn]
		if m == nil {
			m = make(map[string]*ast.FuncDecl)
			methods[tn] = m
		}
		m[fd.Name.Name] = fd
	})

	ins.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		gd := n.(*ast.GenDecl)
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			doc := ts.Doc
			if doc == nil && len(gd.Specs) == 1 {
				doc = gd.Doc
			}
			if !directive.HasMarker(doc, "memdep:resettable") {
				continue
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				pass.Reportf(ts.Name.Pos(), "//memdep:resettable type %s is not a struct", ts.Name.Name)
				continue
			}
			reset := methods[tn]["Reset"]
			if reset == nil {
				reset = methods[tn]["reset"]
			}
			if reset == nil {
				pass.Reportf(ts.Name.Pos(), "//memdep:resettable type %s has no Reset (or reset) method", ts.Name.Name)
				continue
			}
			a := &analyzer{pass: pass, methods: methods, funcs: funcs, covered: make(map[string]bool), visited: make(map[visitKey]bool)}
			a.analyzeFunc(reset, recvObject(pass, reset), "", 0)
			a.checkStruct(dirs, tn.Name(), reset.Name.Name, st, "", nil)
		}
	})
	return nil, nil
}

// recvTypeName resolves a method's receiver base type (pointer stripped) to
// its package-level TypeName, or nil.
func recvTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// recvObject returns the types.Object of a method's named receiver, or nil
// for an anonymous receiver.
func recvObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

type visitKey struct {
	fn   *ast.FuncDecl
	path string
}

type analyzer struct {
	pass    *analysis.Pass
	methods map[*types.TypeName]map[string]*ast.FuncDecl
	funcs   map[types.Object]*ast.FuncDecl
	covered map[string]bool
	visited map[visitKey]bool
}

// record marks the path as written.  Writing an element (a ".[*]" segment)
// also covers the container holding it: a range loop that clears every entry
// resets the field that owns the entries.
func (a *analyzer) record(path string) {
	a.covered[path] = true
	for {
		i := strings.LastIndex(path, ".[*]")
		if i < 0 {
			return
		}
		path = path[:i]
		a.covered[path] = true
	}
}

// analyzeFunc walks one function with its receiver (or a parameter standing
// in for it) bound to the given path prefix, collecting write targets.
func (a *analyzer) analyzeFunc(fn *ast.FuncDecl, bound types.Object, prefix string, depth int) {
	if fn == nil || bound == nil || depth > maxDepth {
		return
	}
	k := visitKey{fn, prefix}
	if a.visited[k] {
		return
	}
	a.visited[k] = true
	w := &walker{a: a, bindings: map[types.Object]string{bound: prefix}, depth: depth}
	ast.Inspect(fn.Body, w.visit)
}

// walker tracks, inside one function, which local objects alias which
// receiver-rooted paths.
type walker struct {
	a        *analyzer
	bindings map[types.Object]string
	depth    int
}

// resolve maps an expression to the receiver-rooted path it denotes, if any.
// Index and slice expressions resolve to the element path (".[*]").
func (w *walker) resolve(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.a.pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return "", false
		}
		p, ok := w.bindings[obj]
		return p, ok
	case *ast.SelectorExpr:
		p, ok := w.resolve(e.X)
		if !ok {
			return "", false
		}
		if p == "" {
			return e.Sel.Name, true
		}
		return p + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		p, ok := w.resolve(e.X)
		return p + ".[*]", ok
	case *ast.SliceExpr:
		p, ok := w.resolve(e.X)
		return p + ".[*]", ok
	case *ast.ParenExpr:
		return w.resolve(e.X)
	case *ast.StarExpr:
		return w.resolve(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.resolve(e.X)
		}
	}
	return "", false
}

// referenceLike reports whether values of the type share their underlying
// storage when copied, so that writes through a copy count as writes through
// the original.
func referenceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

// resetish reports whether a method name announces that the call clears its
// receiver.
func resetish(name string) bool {
	switch {
	case name == "Reset" || name == "reset":
		return true
	case name == "Clear" || name == "clear":
		return true
	case strings.HasPrefix(name, "Reset") || strings.HasPrefix(name, "reset"):
		return true
	}
	return false
}

func (w *walker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// Closures run on their own schedule; writes inside them do not
		// prove the reset path clears the field.
		return false
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if p, ok := w.resolve(lhs); ok {
				w.a.record(p)
			}
		}
		// Alias creation: a fresh local bound to &recv.f (or to a
		// reference-typed recv.f) forwards its writes to f.
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := w.a.pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				if p, ok := w.resolve(n.Rhs[i]); ok {
					if u, isAddr := n.Rhs[i].(*ast.UnaryExpr); (isAddr && u.Op == token.AND) || referenceLike(w.a.pass.TypesInfo.TypeOf(n.Rhs[i])) {
						w.bindings[obj] = p
						continue
					}
				}
				// Reassignment severs a previous alias.
				delete(w.bindings, obj)
			}
		}
	case *ast.IncDecStmt:
		if p, ok := w.resolve(n.X); ok {
			w.a.record(p)
		}
	case *ast.RangeStmt:
		if p, ok := w.resolve(n.X); ok {
			if id, ok := n.Value.(*ast.Ident); ok && n.Tok == token.DEFINE {
				if obj := w.a.pass.TypesInfo.ObjectOf(id); obj != nil {
					w.bindings[obj] = p + ".[*]"
				}
			}
		}
	case *ast.CallExpr:
		w.call(n)
	}
	return true
}

// call handles the covering call forms: clear/delete builtins, sub-reset
// method calls, and recursion into same-package helpers.
func (w *walker) call(call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := w.a.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			if (b.Name() == "clear" || b.Name() == "delete") && len(call.Args) > 0 {
				if p, ok := w.resolve(call.Args[0]); ok {
					w.a.record(p)
				}
			}
			return
		}
		// Same-package helper function: bind any parameter that receives an
		// aliased path and recurse.
		obj := w.a.pass.TypesInfo.ObjectOf(fun)
		fd := w.a.funcs[obj]
		if fd == nil {
			return
		}
		w.recurseArgs(fd, call)
	case *ast.SelectorExpr:
		p, ok := w.resolve(fun.X)
		if !ok {
			return
		}
		if resetish(fun.Sel.Name) {
			w.a.record(p)
			return
		}
		// A helper method on a package-local type: analyze its body with the
		// receiver bound to the same path.
		t := w.a.pass.TypesInfo.TypeOf(fun.X)
		if t == nil {
			return
		}
		if ptr, okp := t.(*types.Pointer); okp {
			t = ptr.Elem()
		}
		named, okn := t.(*types.Named)
		if !okn {
			return
		}
		fd := w.a.methods[named.Obj()][fun.Sel.Name]
		if fd == nil {
			return
		}
		w.a.analyzeFunc(fd, recvObject(w.a.pass, fd), p, w.depth+1)
	}
}

// recurseArgs analyzes a same-package function called with aliased arguments,
// binding each such parameter to the argument's path.
func (w *walker) recurseArgs(fd *ast.FuncDecl, call *ast.CallExpr) {
	params := fd.Type.Params
	if params == nil {
		return
	}
	i := 0
	for _, f := range params.List {
		for _, name := range f.Names {
			if i >= len(call.Args) {
				return
			}
			arg := call.Args[i]
			if p, ok := w.resolve(arg); ok {
				if u, isAddr := arg.(*ast.UnaryExpr); (isAddr && u.Op == token.AND) || referenceLike(w.a.pass.TypesInfo.TypeOf(arg)) {
					w.a.analyzeFunc(fd, w.a.pass.TypesInfo.Defs[name], p, w.depth+1)
				}
			}
			i++
		}
	}
}

// checkStruct verifies coverage of every field of st reachable from the
// prefix path, recursing into package-local struct fields that are written
// only through aliases.
func (a *analyzer) checkStruct(dirs *directive.Index, typeName, resetName string, st *types.Struct, prefix string, seen []*types.Struct) {
	if a.covered[""] {
		return // *t = T{} clears everything
	}
	for _, s := range seen {
		if s == st {
			return
		}
	}
	seen = append(seen, st)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		path := f.Name()
		if prefix != "" {
			path = prefix + "." + f.Name()
		}
		if a.covered[path] {
			continue
		}
		if dirs.Has(f.Pos(), "lint:reset-exempt") {
			continue
		}
		// Delegated clearing: the reset writes through an alias into this
		// field's struct; require the inner fields instead.
		if inner := localStruct(a.pass, f.Type()); inner != nil && a.coveredPrefix(path+".") {
			a.checkStruct(dirs, typeName, resetName, inner, path, seen)
			continue
		}
		a.pass.Reportf(f.Pos(), "field %s of //memdep:resettable type %s is never cleared by (%s).%s; assign or sub-reset it there, or annotate it with //lint:reset-exempt <why>", path, typeName, typeName, resetName)
	}
}

func (a *analyzer) coveredPrefix(prefix string) bool {
	for p := range a.covered {
		if strings.HasPrefix(p, prefix) {
			return true
		}
	}
	return false
}

// localStruct returns the struct underlying t (through one pointer) when its
// named type is declared in the package under analysis, else nil.
func localStruct(pass *analysis.Pass, t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}
