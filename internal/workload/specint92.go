package workload

import (
	"memdep/internal/isa"
	"memdep/internal/program"
)

// This file defines the five SPECint92 stand-ins used for the bulk of the
// paper's experiments (Tables 3-9, Figures 5-6).  Each constructor documents
// which dependence behaviour of the original benchmark it reproduces.

func init() {
	register(Workload{
		Name:  "compress",
		Suite: SPECint92,
		Description: "LZW-style compressor stand-in: a hash table of codes keyed by " +
			"(prefix, char) pairs plus a handful of scalar globals (prefix code, " +
			"checksum, counters, free entry index).  The scalar globals are hot " +
			"loop-carried store→load recurrences; the hash and code tables add " +
			"dependences that occur only along the hit or miss control path, the " +
			"pattern that defeats a plain counter predictor in the paper.",
		DefaultScale: 3,
		Build:        buildCompress,
	})
	register(Workload{
		Name:  "espresso",
		Suite: SPECint92,
		Description: "Two-level logic minimiser stand-in: cube (bit-vector) set operations " +
			"over a cover, with reductions into globals that are reached both directly " +
			"and through a pointer cell.  Tasks are large (~100 instructions) and the " +
			"dominant dependences are simple loop recurrences, which even a counter " +
			"predictor captures -- matching the paper's large speedups for espresso.",
		DefaultScale: 3,
		Build:        buildEspresso,
	})
	register(Workload{
		Name:  "gcc",
		Suite: SPECint92,
		Description: "Compiler stand-in: a pool of IR nodes processed by several small " +
			"passes selected by node kind (constant folding, symbol substitution, tree " +
			"walking).  Many distinct static store→load pairs with weaker temporal " +
			"locality and small, irregular tasks -- the behaviour that keeps gcc short " +
			"of the ideal mechanism in the paper.",
		DefaultScale: 3,
		Build:        buildGCC92,
	})
	register(Workload{
		Name:  "sc",
		Suite: SPECint92,
		Description: "Spreadsheet stand-in: row-major recalculation of a cell grid where " +
			"each cell reads its left and upper neighbours.  The left-neighbour " +
			"dependence is one task away, the upper-neighbour dependence a full row " +
			"away, and several scalar globals are updated per cell; dependences are " +
			"spread across many unrelated stores, which is why selective (WAIT) " +
			"speculation loses to blind speculation on sc in the paper.",
		DefaultScale: 2,
		Build:        buildSC,
	})
	register(Workload{
		Name:  "xlisp",
		Suite: SPECint92,
		Description: "Lisp interpreter stand-in (the paper runs 7-queens): cons-cell " +
			"allocation from a free list, an explicit evaluation stack in memory, list " +
			"traversal and periodic mark phases.  The free-list head, stack top index " +
			"and allocation counters are hot recurrences; marking adds pointer-chased " +
			"dependences with good temporal locality.",
		DefaultScale: 3,
		Build:        buildXlisp,
	})
}

// buildCompress constructs the compress stand-in.
func buildCompress(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		tableWords = 512
		tableMask  = tableWords - 1
	)
	b := program.NewBuilder("compress")
	g := newGlobals(b, "rng", "prev", "checksum", "in_count", "out_count",
		"free_ent", "hits", "misses")
	b.AllocWords("htab", tableWords)
	b.AllocWords("codetab", tableWords)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "htab")
	b.LoadAddr(regBaseB, "codetab")
	g.initVal(b, "rng", 1)
	g.initVal(b, "free_ent", 257)

	iters := int64(2000 * scale)
	b.LoadImm(regLimit0, iters)
	b.Loop(regCount0, regLimit0, true, func() {
		// Next "input character" from the memory-resident RNG.
		emitRandMem(b, g, "rng", 10, 2)
		b.AndI(11, 10, 0xff) // c

		// key = (prev << 4) ^ c ; prev = c.  The load and store of prev are a
		// hot cross-iteration (cross-task) dependence.
		g.load(b, 12, "prev")
		b.SllI(13, 12, 4)
		b.Xor(13, 13, 11)
		g.store(b, 11, "prev")

		// Probe the hash table.
		emitIndexWord(b, 14, regBaseA, 13, tableMask)
		b.Load(15, 14, 0) // htab[idx]
		ifThenElse(b, isa.BEQ, 15, 13,
			func() {
				// Hit: consume the code stored by an earlier miss.  This load
				// depends on the codetab store on the miss path of an earlier
				// iteration -- a dependence that exists only along one path.
				emitIndexWord(b, 16, regBaseB, 13, tableMask)
				b.Load(17, 16, 0)
				g.add(b, "checksum", 17, 2)
				g.inc(b, "hits", 1, 3)
			},
			func() {
				// Miss: install the key and assign it the next free code.
				b.Store(13, 14, 0)
				g.load(b, 16, "free_ent")
				b.AddI(16, 16, 1)
				g.store(b, 16, "free_ent")
				emitIndexWord(b, 17, regBaseB, 13, tableMask)
				b.Store(16, 17, 0)
				g.inc(b, "misses", 1, 3)
				g.inc(b, "out_count", 1, 4)
			})

		// Per-character bookkeeping: two more hot recurrences.
		g.inc(b, "in_count", 1, 5)
		g.xor(b, "checksum", 11, 6)
	})

	b.Load(isa.RV, regGlobals, g.off("checksum"))
	b.Halt()
	return b.MustBuild()
}

// buildEspresso constructs the espresso stand-in.
func buildEspresso(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		cubes     = 32
		cubeWords = 8
		coverLen  = cubes * cubeWords
	)
	b := program.NewBuilder("espresso")
	g := newGlobals(b, "total", "onset", "offset", "ptr_cell", "rng", "iters", "checkpoint")
	coverA := b.AllocWords("coverA", coverLen)
	coverB := b.AllocWords("coverB", coverLen)
	b.AllocWords("result", coverLen)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "coverA")
	b.LoadAddr(regBaseB, "coverB")
	b.LoadAddr(19, "result")
	g.initVal(b, "ptr_cell", int64(g.base+uint64(g.off("onset"))))

	// The two covers are filled with deterministic pseudo-random cube words
	// at build time.
	seed := int64(12345)
	for i := 0; i < coverLen; i++ {
		seed = buildRand(seed)
		b.InitWord(coverA+uint64(i)*isa.WordSize, seed)
		seed = buildRand(seed)
		b.InitWord(coverB+uint64(i)*isa.WordSize, seed)
	}

	iters := int64(300 * scale)
	b.LoadImm(regLimit0, iters)
	b.Loop(regCount0, regLimit0, true, func() {
		// Select the cube for this iteration: idx = iter mod cubes.
		b.AndI(10, regCount0, cubes-1)
		b.LoadImm(2, cubeWords*isa.WordSize)
		b.Mul(10, 10, 2)
		b.Add(11, 10, regBaseA) // cube in coverA
		b.Add(12, 10, regBaseB) // cube in coverB
		b.Add(13, 10, 19)       // cube in result

		// Every eighth iteration starts with a convergence check that reads
		// the running total produced at the end of the previous iteration.
		// This early read of a late-written value is the costly recurrence of
		// espresso: blind speculation mis-speculates on it and throws away
		// nearly a full task of work, whereas synchronizing with the
		// producing store (PSYNC, SYNC, ESYNC) only stalls the check.
		b.AndI(14, regCount0, 7)
		ifThenElse(b, isa.BEQ, 14, isa.Zero,
			func() {
				g.load(b, 15, "total")
				b.AndI(15, 15, 0xffff)
				g.store(b, 15, "checkpoint")
			},
			func() {})

		// Cover bookkeeping happens before the cube operation (loop-carried
		// state is updated early in the iteration, as the Multiscalar
		// compiler schedules it): simple recurrences a counter predictor can
		// learn (onset/offset, iters) plus one reached through a pointer.
		b.AndI(17, regCount0, 1)
		ifThenElse(b, isa.BNE, 17, isa.Zero,
			func() {
				g.inc(b, "onset", 1, 3)
				b.AddI(4, regGlobals, g.off("onset"))
				g.store(b, 4, "ptr_cell")
			},
			func() {
				g.inc(b, "offset", 1, 3)
				b.AddI(4, regGlobals, g.off("offset"))
				g.store(b, 4, "ptr_cell")
			})
		// Double indirection: *ptr_cell += cube index low bits.
		g.load(b, 5, "ptr_cell")
		b.Load(6, 5, 0)
		b.AndI(7, regCount0, 0xf)
		b.Add(6, 6, 7)
		b.Store(6, 5, 0)
		g.inc(b, "iters", 1, 8)

		// Word-wise cube intersection/union; the popcount proxy accumulates
		// in a register inside the loop body (an intra-task value).
		b.AddI(16, isa.Zero, 0)
		b.LoadImm(regLimit1, cubeWords)
		b.Loop(regCount1, regLimit1, false, func() {
			b.SllI(2, regCount1, 3)
			b.Add(3, 11, 2)
			b.Load(5, 3, 0) // a word
			b.Add(3, 12, 2)
			b.Load(6, 3, 0) // b word
			b.And(7, 5, 6)
			b.Or(8, 5, 6)
			b.Xor(9, 7, 8)
			b.Add(3, 13, 2)
			b.Store(9, 3, 0)
			b.AndI(7, 7, 0xff)
			b.Add(16, 16, 7)
		})

		// The cover-wide total is reduced into memory after the cube has been
		// processed.
		g.add(b, "total", 16, 2)
	})

	b.Load(isa.RV, regGlobals, g.off("total"))
	b.Halt()
	return b.MustBuild()
}

// buildGCC92 constructs the gcc stand-in.
func buildGCC92(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		nodes     = 256
		nodeSize  = 4 // kind, left, right, value (words)
		tableSize = 256
		tableMask = tableSize - 1
		nodeMask  = nodes - 1
	)
	b := program.NewBuilder("gcc")
	g := newGlobals(b, "rng", "nprocessed", "nfolded", "nsubst", "curfn", "depth")
	nodesBase := b.AllocWords("nodes", nodes*nodeSize)
	b.AllocWords("symtab", tableSize)
	b.AllocWords("consttab", tableSize)

	// The IR node pool is built at build time: kinds cycle 0..3, children are
	// pseudo-random node indices, values are small integers.
	g.initVal(b, "rng", 7)
	seed := int64(999)
	for i := 0; i < nodes; i++ {
		node := nodesBase + uint64(i*nodeSize)*isa.WordSize
		b.InitWord(node, int64(i&3))
		seed = buildRand(seed)
		b.InitWord(node+isa.WordSize, seed&nodeMask)
		seed = buildRand(seed)
		b.InitWord(node+2*isa.WordSize, seed&nodeMask)
		b.InitWord(node+3*isa.WordSize, seed&0xffff)
	}

	// Helper passes.  Each is its own Multiscalar task (function entries are
	// task boundaries), giving gcc the small irregular tasks of the paper.
	b.Jump("gcc_main")

	// fold_const(node in r10): read the constant table and fold the value
	// back into the node; only occasionally (when the value divides evenly)
	// update the constant table itself, so the table recurrences are sparse
	// and irregular.
	b.Func("fold_const", func() {
		b.Push(5)
		b.Load(2, 10, 3*isa.WordSize) // node value
		b.LoadAddr(3, "consttab")
		emitIndexWord(b, 4, 3, 2, tableMask)
		b.Load(5, 4, 0)
		b.AddI(5, 5, 1)
		b.AndI(6, 2, 3)
		ifThenElse(b, isa.BEQ, 6, isa.Zero,
			func() { b.Store(5, 4, 0) },
			func() {})
		b.Store(5, 10, 3*isa.WordSize)
		b.Pop(5)
	})

	// subst(node in r10): read the symbol table and substitute into the node;
	// the symbol table itself is updated only for a quarter of the values.
	b.Func("subst", func() {
		b.Push(5)
		b.Load(2, 10, 3*isa.WordSize)
		b.LoadAddr(3, "symtab")
		emitIndexWord(b, 4, 3, 2, tableMask)
		b.Load(5, 4, 0)
		b.Add(5, 5, 2)
		b.AndI(6, 2, 3)
		ifThenElse(b, isa.BEQ, 6, isa.Zero,
			func() { b.Store(5, 4, 0) },
			func() {})
		b.Store(5, 10, 3*isa.WordSize)
		b.Pop(5)
	})

	// walk(node in r10): follow left/right child indices three hops, reading
	// values into a register accumulator that is folded into the curfn
	// global once per walk.
	b.Func("walk", func() {
		b.Push(5)
		b.Move(2, 10)
		b.AddI(8, isa.Zero, 0)
		for hop := 0; hop < 3; hop++ {
			b.Load(3, 2, isa.WordSize)   // left index
			b.Load(4, 2, 2*isa.WordSize) // right index
			b.Add(3, 3, 4)
			b.AndI(3, 3, nodeMask)
			b.LoadImm(5, nodeSize*isa.WordSize)
			b.Mul(3, 3, 5)
			b.LoadAddr(5, "nodes")
			b.Add(2, 3, 5)
			b.Load(6, 2, 3*isa.WordSize)
			b.Add(8, 8, 6)
		}
		g.add(b, "curfn", 8, 7)
		b.Pop(5)
	})

	b.Label("gcc_main")
	b.TaskEntry()
	g.loadBase(b)
	b.LoadAddr(regBaseA, "nodes")

	iters := int64(500 * scale)
	b.LoadImm(regLimit0, iters)
	b.Loop(regCount0, regLimit0, true, func() {
		// Pick a node pseudo-randomly (irregular access pattern).
		emitRandMem(b, g, "rng", 11, 2)
		b.AndI(11, 11, nodeMask)
		b.LoadImm(2, nodeSize*isa.WordSize)
		b.Mul(11, 11, 2)
		b.Add(10, 11, regBaseA) // node address in r10 (argument register)
		b.Load(12, 10, 0)       // kind

		// Count the node as processed and rotate its kind (so the same node
		// takes different paths over time) before dispatching.  These
		// loop-carried updates sit early in the iteration so the per-node
		// pass selection below determines the task mix, not the bookkeeping.
		g.inc(b, "nprocessed", 1, 6)
		b.AddI(13, 12, 1)
		b.AndI(13, 13, 3)
		b.Store(13, 10, 0)

		// Dispatch on kind through a compare chain (switch statement).
		endLbl := uniqueLabel(b, "dispatch_end")
		k1 := uniqueLabel(b, "kind1")
		k2 := uniqueLabel(b, "kind2")
		k3 := uniqueLabel(b, "kind3")
		b.LoadImm(2, 1)
		b.Beq(12, 2, k1)
		b.LoadImm(2, 2)
		b.Beq(12, 2, k2)
		b.LoadImm(2, 3)
		b.Beq(12, 2, k3)
		b.Call("fold_const")
		b.Jump(endLbl)
		b.Label(k1)
		b.Call("subst")
		b.Jump(endLbl)
		b.Label(k2)
		b.Call("walk")
		b.Jump(endLbl)
		b.Label(k3)
		g.inc(b, "depth", 1, 5)
		b.Label(endLbl)
	})

	b.Load(isa.RV, regGlobals, g.off("nprocessed"))
	b.Halt()
	b.SetEntry("gcc_main")
	return b.MustBuild()
}

// buildSC constructs the sc spreadsheet stand-in.
func buildSC(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		rows = 24
		cols = 12
		// lag is how many columns back the "formula" of a cell reaches.  A
		// lag of 3 makes the producing cell three tasks away: close enough to
		// be an in-flight dependence (so WAIT must stall), far enough that
		// blind speculation usually gets away with it.
		lag = 3
	)
	b := program.NewBuilder("sc")
	g := newGlobals(b, "sum", "dirty", "lastval", "recalcs")
	grid := b.AllocWords("grid", rows*cols)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "grid")

	// The grid is initialised at build time: grid[r][c] = r*cols + c.
	for i := 0; i < rows*cols; i++ {
		b.InitWord(grid+uint64(i)*isa.WordSize, int64(i))
	}

	sweeps := int64(20 * scale)
	b.LoadImm(regLimit0, sweeps)
	b.Loop(regCount0, regLimit0, true, func() {
		b.LoadImm(regLimit1, rows-1)
		b.Loop(regCount1, regLimit1, false, func() {
			b.LoadImm(regLimit2, cols-lag)
			b.Loop(regCount2, regLimit2, true, func() {
				// Cell (r+1, c+lag): address = grid + ((r+1)*cols + (c+lag))*8.
				b.AddI(2, regCount1, 1)
				b.LoadImm(3, cols)
				b.Mul(2, 2, 3)
				b.AddI(3, regCount2, lag)
				b.Add(2, 2, 3)
				b.SllI(2, 2, 3)
				b.Add(2, 2, regBaseA) // cell address

				b.Load(4, 2, -int64(lag*isa.WordSize))  // neighbour lag cells left (lag tasks away)
				b.Load(5, 2, -int64(cols*isa.WordSize)) // upper neighbour (a row of tasks away)
				b.Add(6, 4, 5)
				b.SrlI(6, 6, 1)
				b.AddI(6, 6, 1)
				b.AndI(6, 6, 0xffff)

				// Only write the cell when its value changes (conditional
				// producer -- the dependence exists only along this path).
				b.Load(7, 2, 0)
				ifThenElse(b, isa.BEQ, 7, 6,
					func() {},
					func() {
						b.Store(6, 2, 0)
						g.inc(b, "dirty", 1, 8)
					})

				// Scalar recurrences updated for every cell.
				g.add(b, "sum", 6, 9)
				g.store(b, 6, "lastval")
			})
		})
		g.inc(b, "recalcs", 1, 10)
	})

	b.Load(isa.RV, regGlobals, g.off("sum"))
	b.Halt()
	return b.MustBuild()
}

// buildXlisp constructs the xlisp stand-in.
func buildXlisp(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		cells     = 256
		cellWords = 3 // car, cdr, mark
		cellMask  = cells - 1
		stackLen  = 64
	)
	b := program.NewBuilder("xlisp")
	g := newGlobals(b, "freehead", "allocs", "evals", "stacktop", "rng", "marked")
	heap := b.AllocWords("heap", cells*cellWords)
	b.AllocWords("evalstack", stackLen)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "heap")
	b.LoadAddr(regBaseB, "evalstack")

	// The cons-cell heap is built at build time: the cdr fields form a ring
	// (the initial free list), cars hold the cell index, marks start at zero.
	for i := 0; i < cells; i++ {
		cell := heap + uint64(i*cellWords)*isa.WordSize
		next := heap + uint64(((i+1)&cellMask)*cellWords)*isa.WordSize
		b.InitWord(cell, int64(i))
		b.InitWord(cell+isa.WordSize, int64(next))
	}
	g.initVal(b, "freehead", int64(heap))
	g.initVal(b, "rng", 11)

	evals := int64(400 * scale)
	b.LoadImm(regLimit0, evals)
	b.Loop(regCount0, regLimit0, true, func() {
		// cons: pop a cell from the free list (hot recurrence on freehead).
		g.load(b, 10, "freehead")
		b.Load(11, 10, isa.WordSize) // cdr
		g.store(b, 11, "freehead")
		g.inc(b, "allocs", 1, 2)
		emitRandMem(b, g, "rng", 12, 3)
		b.AndI(12, 12, 0xfff)
		b.Store(12, 10, 0) // car = random atom

		// push the new cell onto the eval stack: stack[top] = cell; top++.
		// The stacktop global is read and written every eval -- another hot
		// recurrence -- and the stack slots themselves carry push/pop pairs.
		g.load(b, 13, "stacktop")
		b.AndI(14, 13, stackLen-1)
		b.SllI(14, 14, 3)
		b.Add(14, 14, regBaseB)
		b.Store(10, 14, 0)
		b.AddI(13, 13, 1)
		g.store(b, 13, "stacktop")

		// eval: pop the stack and walk the cdr chain of the popped cell for a
		// few hops, reading cars (pointer-chased loads), then mark the cell
		// the walk ends on.
		g.load(b, 13, "stacktop")
		b.AddI(13, 13, -1)
		g.store(b, 13, "stacktop")
		b.AndI(14, 13, stackLen-1)
		b.SllI(14, 14, 3)
		b.Add(14, 14, regBaseB)
		b.Load(15, 14, 0) // cell pointer
		b.AddI(9, isa.Zero, 0)
		b.LoadImm(regLimit1, 4)
		b.Loop(regCount1, regLimit1, false, func() {
			b.Load(16, 15, 0) // car
			b.Add(9, 9, 16)
			b.Load(15, 15, isa.WordSize) // follow cdr
		})
		b.Load(16, 15, 2*isa.WordSize)
		b.AddI(16, 16, 1)
		b.Store(16, 15, 2*isa.WordSize) // mark the final cell
		g.add(b, "marked", 9, 17)
		g.inc(b, "evals", 1, 18)
	})

	b.Load(isa.RV, regGlobals, g.off("evals"))
	b.Halt()
	return b.MustBuild()
}
