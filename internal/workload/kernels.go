package workload

import (
	"fmt"
	"sync/atomic"

	"memdep/internal/isa"
	"memdep/internal/program"
)

// Register conventions shared by all workload programs.
//
// The builder-written benchmarks use a fixed register plan so that the
// emitters below can be combined without clobbering each other:
//
//	r28        globals block base pointer (set up once, never clobbered)
//	r27, r26   data structure base pointers (tables, arrays, heaps)
//	r25/r24    outer loop limit / counter
//	r23/r22    middle loop limit / counter
//	r21/r20    inner loop limit / counter
//	r2..r19    temporaries and per-iteration locals
const (
	regGlobals = isa.Reg(28)
	regBaseA   = isa.Reg(27)
	regBaseB   = isa.Reg(26)
	regLimit0  = isa.Reg(25)
	regCount0  = isa.Reg(24)
	regLimit1  = isa.Reg(23)
	regCount1  = isa.Reg(22)
	regLimit2  = isa.Reg(21)
	regCount2  = isa.Reg(20)
)

// globalsBlock manages a block of named global scalar variables that live in
// one contiguous data allocation.  Workloads use memory-resident globals
// (rather than registers) because cross-iteration updates to such scalars are
// exactly the store→load dependences the paper studies.
type globalsBlock struct {
	offsets map[string]int64
	symbol  string
	base    uint64
}

// newGlobals allocates one word per name in a single block and returns the
// block.  The block's base address is available through the data symbol
// "globals".
func newGlobals(b *program.Builder, names ...string) *globalsBlock {
	g := &globalsBlock{offsets: make(map[string]int64, len(names)), symbol: "globals"}
	base := b.AllocWords(g.symbol, len(names))
	g.base = base
	for i, n := range names {
		g.offsets[n] = int64(i) * isa.WordSize
	}
	return g
}

// initVal sets the build-time initial value of a global (no code emitted).
func (g *globalsBlock) initVal(b *program.Builder, name string, v int64) {
	b.InitWord(g.base+uint64(g.off(name)), v)
}

// loadBase emits code to load the globals block base into regGlobals.
func (g *globalsBlock) loadBase(b *program.Builder) {
	b.LoadAddr(regGlobals, g.symbol)
}

// off returns the byte offset of a named global within the block.
func (g *globalsBlock) off(name string) int64 {
	o, ok := g.offsets[name]
	if !ok {
		panic("workload: undefined global " + name)
	}
	return o
}

// load emits: dst = global(name).
func (g *globalsBlock) load(b *program.Builder, dst isa.Reg, name string) {
	b.Load(dst, regGlobals, g.off(name))
}

// store emits: global(name) = src.
func (g *globalsBlock) store(b *program.Builder, src isa.Reg, name string) {
	b.Store(src, regGlobals, g.off(name))
}

// inc emits: global(name) += delta, using tmp as scratch.  The load and the
// store of the same global one iteration apart form a classic loop-carried
// memory recurrence.
func (g *globalsBlock) inc(b *program.Builder, name string, delta int64, tmp isa.Reg) {
	g.load(b, tmp, name)
	b.AddI(tmp, tmp, delta)
	g.store(b, tmp, name)
}

// add emits: global(name) += val, using tmp as scratch.
func (g *globalsBlock) add(b *program.Builder, name string, val, tmp isa.Reg) {
	g.load(b, tmp, name)
	b.Add(tmp, tmp, val)
	g.store(b, tmp, name)
}

// xor emits: global(name) ^= val, using tmp as scratch.
func (g *globalsBlock) xor(b *program.Builder, name string, val, tmp isa.Reg) {
	g.load(b, tmp, name)
	b.Xor(tmp, tmp, val)
	g.store(b, tmp, name)
}

// emitRandMem advances a memory-resident linear congruential generator and
// leaves the new state in dst.  The state word lives in the globals block
// under the given name; the load/store pair is itself a hot dependence.
// Clobbers tmp.
func emitRandMem(b *program.Builder, g *globalsBlock, name string, dst, tmp isa.Reg) {
	g.load(b, dst, name)
	b.LoadImm(tmp, 25173)
	b.Mul(dst, dst, tmp)
	b.AddI(dst, dst, 13849)
	b.AndI(dst, dst, 0x3fff_ffff)
	g.store(b, dst, name)
}

// emitRandReg advances a register-resident LCG: state = state*a + c (mod
// 2^30).  Clobbers tmp.
func emitRandReg(b *program.Builder, state, tmp isa.Reg) {
	b.LoadImm(tmp, 9301)
	b.Mul(state, state, tmp)
	b.AddI(state, state, 49297)
	b.AndI(state, state, 0x3fff_ffff)
}

// buildRand is the build-time mirror of emitRandReg, used to pre-compute
// deterministic "input data" into the static data segment instead of running
// an initialisation loop at simulation time.  (Pre-initialising the data
// keeps the measured region of every workload in its steady state, the same
// reason the paper fast-forwards past program start-up.)
func buildRand(state int64) int64 {
	return (state*9301 + 49297) & 0x3fff_ffff
}

// emitIndexWord computes dst = base + (idx & mask) * WordSize, the address of
// element (idx mod (mask+1)) of a word array.  mask must be a power of two
// minus one.  Clobbers dst only.
func emitIndexWord(b *program.Builder, dst, base, idx isa.Reg, mask int64) {
	b.AndI(dst, idx, mask)
	b.SllI(dst, dst, 3)
	b.Add(dst, dst, base)
}

// ifThenElse emits a two-way branch: when "s1 branchOp s2" holds, the then
// block runs, otherwise the else block (which may be nil).  Labels are
// derived from the current code position and therefore unique per call site.
func ifThenElse(b *program.Builder, branchOp isa.Op, s1, s2 isa.Reg, then func(), els func()) {
	thenLbl := uniqueLabel(b, "then")
	endLbl := uniqueLabel(b, "endif")
	b.Branch(branchOp, s1, s2, thenLbl)
	if els != nil {
		els()
	}
	b.Jump(endLbl)
	b.Label(thenLbl)
	then()
	b.Label(endLbl)
}

// labelSeq disambiguates labels generated at the same code position (which
// happens when one helper generates several labels before emitting code).
// Builders may be constructed from parallel tests, so the counter is atomic.
var labelSeq atomic.Uint64

func uniqueLabel(b *program.Builder, kind string) string {
	return fmt.Sprintf(".%s_%d_%d", kind, b.Here(), labelSeq.Add(1))
}

// stencilParams describes a one-dimensional relaxation kernel with a
// loop-carried memory recurrence: a[i] = (a[i-1] + a[i] + a[i+1]) / scale.
// Reading a[i-1] immediately after the previous iteration wrote it is the
// dependence the FP benchmarks of the paper expose as loop recurrences.
type stencilParams struct {
	name       string
	words      int  // array length in words
	sweeps     int  // number of relaxation sweeps (scaled)
	carried    bool // if false, write to a second array (no recurrence)
	taskPerRow int  // instructions between task boundaries (0: per iteration)
	extraWork  int  // extra FP operations per element (lengthens the body)
}

// buildStencil constructs a relaxation workload.  When carried is true the
// kernel updates the array in place, so iteration i's load of a[i-1] depends
// on iteration i-1's store; when false it writes a separate output array and
// only scalar reduction globals carry dependences.
func buildStencil(p stencilParams, scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	b := program.NewBuilder(p.name)
	g := newGlobals(b, "sum", "iters", "residual")
	grid := b.AllocWords("grid", p.words+2)
	b.AllocWords("out", p.words+2)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "grid")
	b.LoadAddr(regBaseB, "out")

	// The grid is initialised at build time: grid[i] = (i*37) & 1023.
	for i := 0; i < p.words+2; i++ {
		b.InitWord(grid+uint64(i)*isa.WordSize, int64(i*37)&1023)
	}

	sweeps := p.sweeps * scale
	b.LoadImm(regLimit0, int64(sweeps))
	b.Loop(regCount0, regLimit0, true, func() {
		b.LoadImm(regLimit1, int64(p.words))
		b.Loop(regCount1, regLimit1, true, func() {
			// addr = grid + (i+1)*8
			b.AddI(2, regCount1, 1)
			b.SllI(2, 2, 3)
			b.Add(2, 2, regBaseA)
			b.Load(3, 2, -int64(isa.WordSize)) // a[i-1] (written last iteration when carried)
			b.Load(4, 2, 0)                    // a[i]
			b.Load(5, 2, int64(isa.WordSize))  // a[i+1]
			b.FAdd(6, 3, 4)
			b.FAdd(6, 6, 5)
			for k := 0; k < p.extraWork; k++ {
				b.FMul(6, 6, 4)
				b.AndI(6, 6, 0xffff)
				b.FAdd(6, 6, 3)
			}
			b.SrlI(6, 6, 1)
			b.AndI(6, 6, 0xfffff) // keep values bounded across sweeps
			if p.carried {
				b.Store(6, 2, 0)
			} else {
				b.AddI(7, regCount1, 1)
				b.SllI(7, 7, 3)
				b.Add(7, 7, regBaseB)
				b.Store(6, 7, 0)
			}
			// Scalar reduction through memory (hot recurrence).
			g.add(b, "sum", 6, 8)
		})
		g.inc(b, "iters", 1, 9)
		// residual = sum of the first element, another recurrence.
		b.Load(10, regBaseA, int64(isa.WordSize))
		g.add(b, "residual", 10, 11)
	})

	b.Load(isa.RV, regGlobals, g.off("sum"))
	b.Halt()
	return b.MustBuild()
}

// chaseParams describes a linked-structure workload: build a pool of nodes,
// link them into lists, then repeatedly traverse, mutate and "allocate" nodes
// from a free list.  The free-list head and allocation counters are hot
// scalar recurrences; the pointer chase produces dependences with moderate
// temporal locality.
type chaseParams struct {
	name       string
	nodes      int // number of nodes in the pool (power of two)
	traversals int // traversals per scale unit
	walkLen    int // nodes visited per traversal
	mutate     bool
}

// Node layout (words): 0 = next pointer, 1 = value, 2 = mark.
const nodeWords = 3

func buildChase(p chaseParams, scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	b := program.NewBuilder(p.name)
	g := newGlobals(b, "freehead", "allocs", "marksum", "rng", "head")
	pool := b.AllocWords("pool", p.nodes*nodeWords)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "pool")

	// The node pool is linked at build time: every node points to its
	// successor (a ring, so traversals never fall off), values hold the node
	// index and marks start at zero.  The list heads start at the pool base.
	for i := 0; i < p.nodes; i++ {
		node := pool + uint64(i*nodeWords)*isa.WordSize
		next := pool + uint64(((i+1)%p.nodes)*nodeWords)*isa.WordSize
		b.InitWord(node, int64(next))
		b.InitWord(node+isa.WordSize, int64(i))
	}
	g.initVal(b, "head", int64(pool))
	g.initVal(b, "freehead", int64(pool))
	g.initVal(b, "rng", 1)

	traversals := p.traversals * scale
	b.LoadImm(regLimit0, int64(traversals))
	b.Loop(regCount0, regLimit0, true, func() {
		// "Allocate" a node: pop the free list head (hot recurrence on
		// freehead), bump the allocation counter, and write the node's value.
		g.load(b, 10, "freehead")
		b.Load(11, 10, 0) // next
		g.store(b, 11, "freehead")
		g.inc(b, "allocs", 1, 12)
		emitRandMem(b, g, "rng", 13, 14)
		b.Store(13, 10, isa.WordSize)

		// Walk the list from head, touching walkLen nodes: read values into a
		// register accumulator and set the mark bits.  The accumulator is
		// folded into the marksum global once per traversal (once per task),
		// which is the loop-carried memory recurrence.
		g.load(b, 15, "head")
		b.AddI(9, isa.Zero, 0)
		b.LoadImm(regLimit1, int64(p.walkLen))
		b.Loop(regCount1, regLimit1, false, func() {
			b.Load(16, 15, isa.WordSize) // value
			b.Add(9, 9, 16)
			if p.mutate {
				b.Load(18, 15, 2*isa.WordSize)
				b.AddI(18, 18, 1)
				b.Store(18, 15, 2*isa.WordSize)
			}
			b.Load(15, 15, 0) // follow next
		})
		g.add(b, "marksum", 9, 17)
		// Rotate the head pointer so successive traversals start elsewhere.
		g.store(b, 15, "head")
	})

	b.Load(isa.RV, regGlobals, g.off("marksum"))
	b.Halt()
	return b.MustBuild()
}
