package workload

import (
	"memdep/internal/isa"
	"memdep/internal/program"
)

// This file defines the SPECfp95 stand-ins for Figure 7.  The paper reports
// that most FP dependences it captures are loop recurrences; that two codes
// (103.su2cor, 145.fpppp) have dependence working sets larger than the
// prediction structures because their tasks are very large; and that several
// codes (102.swim, 104.hydro2d, 107.mgrid, 125.turb3d) gain little because
// another resource saturates.  The stand-ins reproduce those three regimes.

func init() {
	register(Workload{
		Name:  "101.tomcatv",
		Suite: SPECfp95,
		Description: "Mesh generation stand-in: in-place relaxation sweeps whose " +
			"left-neighbour load depends on the previous iteration's store (a loop " +
			"recurrence one task away), plus scalar reductions through memory.",
		DefaultScale: 2,
		Build: func(scale int) *program.Program {
			return buildStencil(stencilParams{
				name: "101.tomcatv", words: 192, sweeps: 12, carried: true, extraWork: 2,
			}, scale)
		},
	})
	register(Workload{
		Name:  "102.swim",
		Suite: SPECfp95,
		Description: "Shallow-water stand-in: sweeps that read one array and write " +
			"another, so the only cross-task dependences are the scalar reduction " +
			"globals; little is gained from dependence synchronization.",
		DefaultScale: 2,
		Build: func(scale int) *program.Program {
			return buildStencil(stencilParams{
				name: "102.swim", words: 256, sweeps: 10, carried: false, extraWork: 1,
			}, scale)
		},
	})
	register(Workload{
		Name:  "103.su2cor",
		Suite: SPECfp95,
		Description: "Quantum physics stand-in: very large loop bodies (one task per " +
			"iteration of a big loop) that update a large set of distinct memory " +
			"temporaries each iteration, so the dependence working set exceeds the " +
			"capacity of a 64-entry prediction table.",
		DefaultScale: 1,
		Build: func(scale int) *program.Program {
			return buildWideRecurrence("103.su2cor", 96, 60, scale)
		},
	})
	register(Workload{
		Name:  "104.hydro2d",
		Suite: SPECfp95,
		Description: "Hydrodynamics stand-in: separate input/output arrays per sweep " +
			"with modest scalar reductions; dependence synchronization has little to " +
			"offer because the memory system dominates.",
		DefaultScale: 2,
		Build: func(scale int) *program.Program {
			return buildStencil(stencilParams{
				name: "104.hydro2d", words: 224, sweeps: 10, carried: false, extraWork: 2,
			}, scale)
		},
	})
	register(Workload{
		Name:  "107.mgrid",
		Suite: SPECfp95,
		Description: "Multigrid stand-in: triple-nested accumulation kept in registers " +
			"and written once per row; almost no cross-task memory recurrences.",
		DefaultScale: 2,
		Build:        buildMgrid,
	})
	register(Workload{
		Name:  "110.applu",
		Suite: SPECfp95,
		Description: "SSOR solver stand-in: in-place wavefront relaxation with a strong " +
			"loop-carried recurrence; the mechanism performs close to ideal.",
		DefaultScale: 2,
		Build: func(scale int) *program.Program {
			return buildStencil(stencilParams{
				name: "110.applu", words: 160, sweeps: 12, carried: true, extraWork: 3,
			}, scale)
		},
	})
	register(Workload{
		Name:  "125.turb3d",
		Suite: SPECfp95,
		Description: "Turbulence stand-in: butterfly-style strided passes writing " +
			"disjoint locations; few memory recurrences, little to gain.",
		DefaultScale: 2,
		Build: func(scale int) *program.Program {
			return buildStencil(stencilParams{
				name: "125.turb3d", words: 256, sweeps: 8, carried: false, extraWork: 3,
			}, scale)
		},
	})
	register(Workload{
		Name:  "141.apsi",
		Suite: SPECfp95,
		Description: "Pollution modelling stand-in: in-place relaxation with moderate " +
			"extra work per element and scalar reductions; moderate gains.",
		DefaultScale: 2,
		Build: func(scale int) *program.Program {
			return buildStencil(stencilParams{
				name: "141.apsi", words: 128, sweeps: 10, carried: true, extraWork: 1,
			}, scale)
		},
	})
	register(Workload{
		Name:  "145.fpppp",
		Suite: SPECfp95,
		Description: "Gaussian chemistry stand-in: an enormous straight-line loop body " +
			"(the paper measures ~1000 instructions per iteration, one task per " +
			"iteration) carrying many distinct memory temporaries across iterations; " +
			"the dependence working set overflows the prediction structures.",
		DefaultScale: 1,
		Build: func(scale int) *program.Program {
			return buildWideRecurrence("145.fpppp", 144, 40, scale)
		},
	})
	register(Workload{
		Name:  "146.wave5",
		Suite: SPECfp95,
		Description: "Particle-in-cell stand-in: gather field values at particle " +
			"positions, update particles, scatter charge back to the field through " +
			"indirect addressing; moderate, address-dependent recurrences.",
		DefaultScale: 2,
		Build:        buildWave5,
	})
}

// buildWideRecurrence constructs a workload whose single loop carries `temps`
// distinct memory-resident temporaries from one iteration to the next.  With
// one task per iteration and `temps` larger than the MDPT, the predictor
// cannot hold the dependence working set -- the regime of 103.su2cor and
// 145.fpppp in the paper.
func buildWideRecurrence(name string, temps, iters, scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	b := program.NewBuilder(name)
	g := newGlobals(b, "sum", "rounds")
	tempsBase := b.AllocWords("temps", temps)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "temps")

	// The temporaries start out holding their own index (build-time init).
	for i := 0; i < temps; i++ {
		b.InitWord(tempsBase+uint64(i)*isa.WordSize, int64(i))
	}

	total := int64(iters * scale)
	b.LoadImm(regLimit0, total)
	b.Loop(regCount0, regLimit0, true, func() {
		// One huge task body: every temporary is loaded, transformed and
		// stored back, so each of the `temps` static load/store pairs is a
		// distinct cross-iteration dependence.
		b.AddI(10, isa.Zero, 0)
		for i := 0; i < temps; i++ {
			off := int64(i * isa.WordSize)
			b.Load(3, regBaseA, off)
			b.FMul(4, 3, 3)
			b.FAdd(4, 4, 3)
			b.AndI(4, 4, 0xfffff)
			b.AddI(4, 4, 1)
			b.Store(4, regBaseA, off)
			b.Add(10, 10, 4)
		}
		g.add(b, "sum", 10, 5)
		g.inc(b, "rounds", 1, 6)
	})

	b.Load(isa.RV, regGlobals, g.off("sum"))
	b.Halt()
	return b.MustBuild()
}

// buildMgrid constructs the 107.mgrid stand-in.
func buildMgrid(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		rows = 24
		cols = 16
	)
	b := program.NewBuilder("107.mgrid")
	g := newGlobals(b, "norm", "cycles")
	fine := b.AllocWords("fine", rows*cols)
	b.AllocWords("coarse", rows*cols)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "fine")
	b.LoadAddr(regBaseB, "coarse")

	// The fine grid is initialised at build time.
	for i := 0; i < rows*cols; i++ {
		b.InitWord(fine+uint64(i)*isa.WordSize, int64(i&255))
	}

	cyclesN := int64(8 * scale)
	b.LoadImm(regLimit0, cyclesN)
	b.Loop(regCount0, regLimit0, true, func() {
		b.LoadImm(regLimit1, rows)
		b.Loop(regCount1, regLimit1, true, func() {
			// Accumulate a whole row in a register, then store the row sum
			// once; the only memory write per task is to a distinct location,
			// so there is no dependence for the predictor to find.
			b.LoadImm(2, cols*isa.WordSize)
			b.Mul(3, regCount1, 2)
			b.Add(10, 3, regBaseA)
			b.Add(11, 3, regBaseB)
			b.AddI(12, isa.Zero, 0)
			b.LoadImm(regLimit2, cols)
			b.Loop(regCount2, regLimit2, false, func() {
				b.SllI(4, regCount2, 3)
				b.Add(4, 4, 10)
				b.Load(5, 4, 0)
				b.FMul(5, 5, 5)
				b.AndI(5, 5, 0xffff)
				b.Add(12, 12, 5)
			})
			b.Store(12, 11, 0)
		})
		g.inc(b, "cycles", 1, 6)
	})

	b.Load(isa.RV, regGlobals, g.off("cycles"))
	b.Halt()
	return b.MustBuild()
}

// buildWave5 constructs the 146.wave5 stand-in.
func buildWave5(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		particles = 128
		cellsN    = 64
		cellMask  = cellsN - 1
	)
	b := program.NewBuilder("146.wave5")
	g := newGlobals(b, "energy", "steps", "rng")
	px := b.AllocWords("px", particles) // particle positions
	pv := b.AllocWords("pv", particles) // particle velocities
	b.AllocWords("field", cellsN)       // field/charge per cell

	g.loadBase(b)
	b.LoadAddr(regBaseA, "px")
	b.LoadAddr(regBaseB, "pv")
	b.LoadAddr(19, "field")

	// Particle positions and velocities are initialised at build time.
	seed := int64(17)
	for i := 0; i < particles; i++ {
		seed = buildRand(seed)
		b.InitWord(px+uint64(i)*isa.WordSize, seed&cellMask)
		b.InitWord(pv+uint64(i)*isa.WordSize, seed&7)
	}

	steps := int64(12 * scale)
	b.LoadImm(regLimit0, steps)
	b.Loop(regCount0, regLimit0, true, func() {
		b.LoadImm(regLimit1, particles)
		b.Loop(regCount1, regLimit1, true, func() {
			b.SllI(10, regCount1, 3)
			b.Add(11, 10, regBaseA) // &px[i]
			b.Add(12, 10, regBaseB) // &pv[i]
			b.Load(13, 11, 0)       // position (cell index)
			b.Load(14, 12, 0)       // velocity

			// Gather the field at the particle's cell.
			b.AndI(15, 13, cellMask)
			b.SllI(15, 15, 3)
			b.Add(15, 15, 19)
			b.Load(16, 15, 0)

			// Push the particle and wrap its position.
			b.Add(14, 14, 16)
			b.AndI(14, 14, 15)
			b.Store(14, 12, 0)
			b.Add(13, 13, 14)
			b.AndI(13, 13, cellMask)
			b.Store(13, 11, 0)

			// Scatter charge back to the (new) cell: an indirect store whose
			// address changes with the data -- the producer of later gathers.
			b.SllI(17, 13, 3)
			b.Add(17, 17, 19)
			b.Load(18, 17, 0)
			b.AddI(18, 18, 1)
			b.Store(18, 17, 0)

			g.add(b, "energy", 16, 2)
		})
		g.inc(b, "steps", 1, 3)
	})

	b.Load(isa.RV, regGlobals, g.off("energy"))
	b.Halt()
	return b.MustBuild()
}
