package workload

import (
	"testing"

	"memdep/internal/program"
	"memdep/internal/trace"
)

func TestRegistryContainsAllPaperBenchmarks(t *testing.T) {
	var all []string
	all = append(all, SPECint92Names()...)
	all = append(all, SPEC95Names()...)
	for _, name := range all {
		w, err := Get(name)
		if err != nil {
			t.Errorf("missing benchmark %q: %v", name, err)
			continue
		}
		if w.Name != name {
			t.Errorf("workload %q registered under wrong name %q", name, w.Name)
		}
		if w.Description == "" {
			t.Errorf("workload %q has no description", name)
		}
		if w.DefaultScale < 1 {
			t.Errorf("workload %q has invalid default scale %d", name, w.DefaultScale)
		}
	}
	if len(SPECint92Names()) != 5 {
		t.Errorf("SPECint92 should have 5 benchmarks, got %d", len(SPECint92Names()))
	}
	if len(SPEC95Names()) != 18 {
		t.Errorf("SPEC95 should have 18 benchmarks, got %d", len(SPEC95Names()))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("does-not-exist"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGet("does-not-exist")
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d entries, registry has %d", len(names), len(registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestBySuitePartitionsRegistry(t *testing.T) {
	total := 0
	for _, s := range []Suite{SPECint92, SPECint95, SPECfp95} {
		ws := BySuite(s)
		total += len(ws)
		for _, w := range ws {
			if w.Suite != s {
				t.Errorf("workload %q has suite %v, expected %v", w.Name, w.Suite, s)
			}
		}
	}
	if total != len(registry) {
		t.Errorf("suites cover %d workloads, registry has %d", total, len(registry))
	}
}

func TestSuiteString(t *testing.T) {
	if SPECint92.String() != "SPECint92" || SPECfp95.String() != "SPECfp95" {
		t.Error("suite names wrong")
	}
	if Suite(99).String() == "" {
		t.Error("unknown suite must still produce a string")
	}
}

// TestAllWorkloadsBuildAndValidate builds every workload at scale 1 and checks
// the program is structurally valid.
func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustGet(name)
			p := w.Build(1)
			if err := p.Validate(); err != nil {
				t.Fatalf("program invalid: %v", err)
			}
			if len(p.StaticLoads()) == 0 {
				t.Error("workload has no loads")
			}
			if len(p.StaticStores()) == 0 {
				t.Error("workload has no stores")
			}
			if len(p.TaskEntries) < 2 {
				t.Error("workload has fewer than 2 task entries")
			}
		})
	}
}

// TestAllWorkloadsRunToCompletion executes every workload at scale 1 in the
// functional simulator and checks that it halts within a sane instruction
// budget and produces memory traffic and tasks.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("functional runs of all workloads are skipped in -short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustGet(name)
			p := w.Build(1)
			st, err := trace.Run(p, trace.Config{MaxInstructions: 5_000_000}, nil)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if !st.Halted {
				t.Fatalf("workload did not halt within 5M instructions (executed %d)", st.Instructions)
			}
			if st.Instructions < 1000 {
				t.Errorf("suspiciously short run: %d instructions", st.Instructions)
			}
			if st.Loads == 0 || st.Stores == 0 {
				t.Error("run produced no memory traffic")
			}
			if st.Tasks < 10 {
				t.Errorf("run produced only %d tasks", st.Tasks)
			}
			if st.Branches == 0 {
				t.Error("run produced no branches")
			}
		})
	}
}

// TestWorkloadsDeterministic checks that building and running a workload twice
// produces identical statistics.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range SPECint92Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustGet(name)
			s1, err := trace.Run(w.Build(1), trace.Config{MaxInstructions: 200_000}, nil)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := trace.Run(w.Build(1), trace.Config{MaxInstructions: 200_000}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if s1 != s2 {
				t.Errorf("non-deterministic run: %+v vs %+v", s1, s2)
			}
		})
	}
}

// TestScaleIncreasesWork checks that larger scales run more instructions.
func TestScaleIncreasesWork(t *testing.T) {
	w := MustGet("compress")
	s1, err := trace.Run(w.Build(1), trace.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := trace.Run(w.Build(2), trace.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Instructions <= s1.Instructions {
		t.Errorf("scale 2 (%d instr) not larger than scale 1 (%d instr)",
			s2.Instructions, s1.Instructions)
	}
}

// TestScaleBelowOneClamped checks that scale 0 behaves like scale 1.
func TestScaleBelowOneClamped(t *testing.T) {
	w := MustGet("espresso")
	s0, err := trace.Run(w.Build(0), trace.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := trace.Run(w.Build(1), trace.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s0.Instructions != s1.Instructions {
		t.Errorf("scale 0 (%d) and scale 1 (%d) differ", s0.Instructions, s1.Instructions)
	}
}

// TestWithNameDoesNotMutateOriginal checks the SPEC95 renaming helper.
func TestWithNameDoesNotMutateOriginal(t *testing.T) {
	p := buildCompress(1)
	q := withName(p, "renamed")
	if q.Name != "renamed" {
		t.Errorf("renamed program has name %q", q.Name)
	}
	if p.Name != "compress" {
		t.Errorf("original program was renamed to %q", p.Name)
	}
	if len(q.Code) != len(p.Code) {
		t.Error("rename must not change the code")
	}
}

// TestCrossTaskDependencesExist verifies, for each SPECint92 workload, that
// the committed trace contains store→load dependences that cross task
// boundaries -- the raw material of the paper's study.  Without these the
// Multiscalar experiments would be vacuous.
func TestCrossTaskDependencesExist(t *testing.T) {
	for _, name := range SPECint92Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustGet(name)
			p := w.Build(1)
			lastStore := map[uint64]trace.DynInst{} // addr -> most recent store
			crossTask := 0
			_, err := trace.Run(p, trace.Config{MaxInstructions: 300_000}, func(d trace.DynInst) bool {
				if d.IsStore() {
					lastStore[d.Addr] = d
				} else if d.IsLoad() {
					if st, ok := lastStore[d.Addr]; ok && st.TaskID != d.TaskID {
						crossTask++
					}
				}
				return crossTask < 100
			})
			if err != nil {
				t.Fatal(err)
			}
			if crossTask < 100 {
				t.Errorf("only %d cross-task store→load dependences observed", crossTask)
			}
		})
	}
}

// TestTaskSizesReasonable checks that average dynamic task sizes are in the
// regime the paper describes (small irregular tasks for gcc, ~100-instruction
// tasks for espresso, very large tasks for 145.fpppp).
func TestTaskSizesReasonable(t *testing.T) {
	avgTask := func(p *program.Program) float64 {
		st, err := trace.Run(p, trace.Config{MaxInstructions: 400_000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Tasks == 0 {
			t.Fatal("no tasks")
		}
		return float64(st.Instructions) / float64(st.Tasks)
	}
	esp := avgTask(MustGet("espresso").Build(1))
	if esp < 50 {
		t.Errorf("espresso average task size %.1f, want >= 50", esp)
	}
	fpppp := avgTask(MustGet("145.fpppp").Build(1))
	if fpppp < 400 {
		t.Errorf("145.fpppp average task size %.1f, want >= 400 (very large tasks)", fpppp)
	}
	comp := avgTask(MustGet("compress").Build(1))
	if comp > 200 {
		t.Errorf("compress average task size %.1f, want <= 200 (per-character tasks)", comp)
	}
}
