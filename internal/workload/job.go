package workload

import (
	"context"
	"fmt"

	"memdep/internal/engine"
)

// BuildKind is the engine job kind that builds a benchmark program.
const BuildKind = "workload/build"

// BuildJob is the engine spec for constructing a benchmark's program at a
// scale.  A Scale of 0 (or negative) selects the benchmark's default scale.
// The job resolves to a *program.Program.
type BuildJob struct {
	Name  string
	Scale int
}

// JobKind implements engine.Spec.
func (BuildJob) JobKind() string { return BuildKind }

// CacheKey implements engine.Spec.
func (j BuildJob) CacheKey() string { return fmt.Sprintf("%s@%d", j.Name, j.Scale) }

// buildSimulator executes BuildJob specs.
type buildSimulator struct{}

// BuildSimulator returns the engine simulator for the workload/build kind.
func BuildSimulator() engine.Simulator { return buildSimulator{} }

func (buildSimulator) JobKind() string { return BuildKind }

func (buildSimulator) Simulate(_ context.Context, _ *engine.Engine, spec engine.Spec) (any, error) {
	job, ok := spec.(BuildJob)
	if !ok {
		return nil, fmt.Errorf("workload: spec %T is not a BuildJob", spec)
	}
	w, err := Get(job.Name)
	if err != nil {
		return nil, err
	}
	scale := job.Scale
	if scale <= 0 {
		scale = w.DefaultScale
	}
	return w.Build(scale), nil
}
