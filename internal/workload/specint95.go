package workload

import (
	"memdep/internal/isa"
	"memdep/internal/program"
)

// This file defines the SPECint95 stand-ins used for Figure 7.  Several of
// them share machinery with the SPECint92 stand-ins (the original programs
// are themselves revisions of the same applications); the rest model the
// dependence behaviour the paper attributes to each program.

// withName returns a shallow copy of p under a different benchmark name.  It
// is used when a SPEC95 program is modelled by the same generator as its
// SPEC92 counterpart.
func withName(p *program.Program, name string) *program.Program {
	q := *p
	q.Name = name
	return &q
}

func init() {
	register(Workload{
		Name:  "099.go",
		Suite: SPECint95,
		Description: "Go-playing program stand-in: repeated evaluation of moves on a " +
			"board array with highly irregular, data-dependent access patterns, " +
			"conditional writes and weak temporal locality.  The paper reports that " +
			"099.go falls short of the ideal mechanism because its dependence patterns " +
			"are irregular and control prediction is poor.",
		DefaultScale: 2,
		Build:        buildGo,
	})
	register(Workload{
		Name:  "124.m88ksim",
		Suite: SPECint95,
		Description: "Microprocessor simulator stand-in: an interpreter loop that fetches " +
			"instructions from a bytecode array and updates a memory-resident register " +
			"file and program counter.  The simulated register file and PC are hot " +
			"recurrences, which is why the mechanism performs close to ideal.",
		DefaultScale: 2,
		Build:        buildM88ksim,
	})
	register(Workload{
		Name:  "126.gcc",
		Suite: SPECint95,
		Description: "Compiler (same model as the SPECint92 gcc stand-in, larger run): " +
			"many static dependences, irregular tasks, modest temporal locality.",
		DefaultScale: 3,
		Build: func(scale int) *program.Program {
			return withName(buildGCC92(scale*2), "126.gcc")
		},
	})
	register(Workload{
		Name:  "129.compress",
		Suite: SPECint95,
		Description: "Compressor (same model as the SPECint92 compress stand-in, larger " +
			"run): scalar globals and hash/code tables with path-dependent producers.",
		DefaultScale: 3,
		Build: func(scale int) *program.Program {
			return withName(buildCompress(scale*2), "129.compress")
		},
	})
	register(Workload{
		Name:  "130.li",
		Suite: SPECint95,
		Description: "Lisp interpreter (same model as the SPECint92 xlisp stand-in): " +
			"free-list allocation, eval stack and mark phases.",
		DefaultScale: 3,
		Build: func(scale int) *program.Program {
			return withName(buildXlisp(scale*2), "130.li")
		},
	})
	register(Workload{
		Name:  "132.ijpeg",
		Suite: SPECint95,
		Description: "Image compression stand-in: blocked 8x8 transforms that read a " +
			"block, compute in registers, and write a separate output block.  Few " +
			"memory recurrences apart from per-block bookkeeping globals, so gains come " +
			"mostly from the scalar counters.",
		DefaultScale: 2,
		Build:        buildIjpeg,
	})
	register(Workload{
		Name:  "134.perl",
		Suite: SPECint95,
		Description: "Perl interpreter stand-in: opcode dispatch over a bytecode buffer " +
			"combined with hash-table updates for variables; hot recurrences on the " +
			"interpreter state plus path-dependent hash-table producers.",
		DefaultScale: 2,
		Build:        buildPerl,
	})
	register(Workload{
		Name:  "147.vortex",
		Suite: SPECint95,
		Description: "Object database stand-in: linked record pool with allocation from a " +
			"free list, traversal and in-place mutation of records.",
		DefaultScale: 2,
		Build: func(scale int) *program.Program {
			return withName(buildChase(chaseParams{
				name:       "147.vortex",
				nodes:      512,
				traversals: 300,
				walkLen:    12,
				mutate:     true,
			}, scale), "147.vortex")
		},
	})
}

// buildGo constructs the 099.go stand-in.
func buildGo(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		boardSize = 361 // 19x19
		boardPad  = 512 // power-of-two padded for masking
		histLen   = 128
	)
	b := program.NewBuilder("099.go")
	g := newGlobals(b, "rng", "moves", "captures", "score", "ko")
	b.AllocWords("board", boardPad)
	b.AllocWords("history", histLen)
	b.AllocWords("liberty", boardPad)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "board")
	b.LoadAddr(regBaseB, "liberty")
	b.LoadAddr(19, "history")
	g.initVal(b, "rng", 31)

	moves := int64(400 * scale)
	b.LoadImm(regLimit0, moves)
	b.Loop(regCount0, regLimit0, true, func() {
		// Pick a point pseudo-randomly; the board and liberty accesses have
		// poor locality on purpose.
		emitRandMem(b, g, "rng", 10, 2)
		b.AndI(11, 10, boardPad-1)
		b.SllI(12, 11, 3)
		b.Add(12, 12, regBaseA) // board cell address
		b.Load(13, 12, 0)       // current stone

		// Evaluate the four neighbours' liberties (reads only).
		b.AddI(14, isa.Zero, 0)
		for _, delta := range []int64{-1, 1, -19, 19} {
			b.AddI(2, 11, delta)
			b.AndI(2, 2, boardPad-1)
			b.SllI(2, 2, 3)
			b.Add(2, 2, regBaseB)
			b.Load(3, 2, 0)
			b.Add(14, 14, 3)
		}

		// Conditionally place or capture: the stores to board and liberty
		// happen only along particular paths.
		ifThenElse(b, isa.BEQ, 13, isa.Zero,
			func() {
				// Empty point: place a stone and set its liberty count.
				b.AddI(3, 14, 1)
				b.Store(3, 12, 0)
				b.SllI(4, 11, 3)
				b.Add(4, 4, regBaseB)
				b.Store(14, 4, 0)
				g.inc(b, "moves", 1, 5)
			},
			func() {
				// Occupied: maybe capture when liberties are exhausted.
				ifThenElse(b, isa.BEQ, 14, isa.Zero,
					func() {
						b.Store(isa.Zero, 12, 0)
						g.inc(b, "captures", 1, 5)
					},
					func() {
						g.inc(b, "ko", 1, 5)
					})
			})

		// Append to the move history ring and update the running score.
		g.load(b, 6, "moves")
		b.AndI(7, 6, histLen-1)
		b.SllI(7, 7, 3)
		b.Add(7, 7, 19)
		b.Store(11, 7, 0)
		g.add(b, "score", 14, 8)
	})

	b.Load(isa.RV, regGlobals, g.off("score"))
	b.Halt()
	return b.MustBuild()
}

// buildM88ksim constructs the 124.m88ksim stand-in.
func buildM88ksim(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		codeLen  = 256
		simRegs  = 32
		memWords = 256
		memMask  = memWords - 1
		codeMask = codeLen - 1
	)
	b := program.NewBuilder("124.m88ksim")
	g := newGlobals(b, "simpc", "icount", "rng", "flags")
	simcode := b.AllocWords("simcode", codeLen)
	b.AllocWords("simregs", simRegs)
	b.AllocWords("simmem", memWords)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "simcode")
	b.LoadAddr(regBaseB, "simregs")
	b.LoadAddr(19, "simmem")

	// The simulated program (packed words encoding op/dst/src/imm) is
	// generated at build time.
	seed := int64(77)
	for i := 0; i < codeLen; i++ {
		seed = buildRand(seed)
		b.InitWord(simcode+uint64(i)*isa.WordSize, seed)
	}

	steps := int64(600 * scale)
	b.LoadImm(regLimit0, steps)
	b.Loop(regCount0, regLimit0, true, func() {
		// Fetch: the simulated PC is a memory-resident hot recurrence.
		g.load(b, 10, "simpc")
		b.AndI(11, 10, codeMask)
		b.SllI(11, 11, 3)
		b.Add(11, 11, regBaseA)
		b.Load(12, 11, 0) // encoded instruction

		// Decode fields.
		b.AndI(13, 12, 3) // op
		b.SrlI(14, 12, 2)
		b.AndI(14, 14, 31) // dst reg
		b.SrlI(15, 12, 7)
		b.AndI(15, 15, 31) // src reg
		b.SrlI(16, 12, 12)
		b.AndI(16, 16, memMask) // imm / mem index

		// Read the simulated source register (register-file recurrence).
		b.SllI(2, 15, 3)
		b.Add(2, 2, regBaseB)
		b.Load(17, 2, 0)

		// Execute: four op kinds (alu, load, store, branch).
		end := uniqueLabel(b, "m88k_end")
		opLoad := uniqueLabel(b, "m88k_load")
		opStore := uniqueLabel(b, "m88k_store")
		opBranch := uniqueLabel(b, "m88k_branch")
		b.LoadImm(2, 1)
		b.Beq(13, 2, opLoad)
		b.LoadImm(2, 2)
		b.Beq(13, 2, opStore)
		b.LoadImm(2, 3)
		b.Beq(13, 2, opBranch)
		// alu: dst = src + imm
		b.Add(18, 17, 16)
		b.SllI(2, 14, 3)
		b.Add(2, 2, regBaseB)
		b.Store(18, 2, 0)
		b.Jump(end)
		b.Label(opLoad)
		b.SllI(2, 16, 3)
		b.Add(2, 2, 19)
		b.Load(18, 2, 0)
		b.SllI(2, 14, 3)
		b.Add(2, 2, regBaseB)
		b.Store(18, 2, 0)
		b.Jump(end)
		b.Label(opStore)
		b.SllI(2, 16, 3)
		b.Add(2, 2, 19)
		b.Store(17, 2, 0)
		b.Jump(end)
		b.Label(opBranch)
		ifThenElse(b, isa.BNE, 17, isa.Zero,
			func() {
				g.store(b, 16, "simpc")
			},
			func() {})
		g.xor(b, "flags", 17, 3)
		b.Label(end)

		// Advance the simulated PC and instruction count (recurrences).
		g.inc(b, "simpc", 1, 4)
		g.inc(b, "icount", 1, 5)
	})

	b.Load(isa.RV, regGlobals, g.off("icount"))
	b.Halt()
	return b.MustBuild()
}

// buildIjpeg constructs the 132.ijpeg stand-in.
func buildIjpeg(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		blockWords = 16
		blocks     = 64
	)
	b := program.NewBuilder("132.ijpeg")
	g := newGlobals(b, "quality", "outbytes", "rng")
	in := b.AllocWords("in", blocks*blockWords)
	b.AllocWords("out", blocks*blockWords)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "in")
	b.LoadAddr(regBaseB, "out")

	// The input image is filled with deterministic pixel data at build time.
	seed := int64(3)
	for i := 0; i < blocks*blockWords; i++ {
		seed = buildRand(seed)
		b.InitWord(in+uint64(i)*isa.WordSize, seed&255)
	}

	passes := int64(30 * scale)
	b.LoadImm(regLimit0, passes)
	b.Loop(regCount0, regLimit0, true, func() {
		b.LoadImm(regLimit1, blocks)
		b.Loop(regCount1, regLimit1, true, func() {
			// Transform one block: load, butterfly-style mixing in registers,
			// store to the output buffer (no cross-block memory recurrence).
			b.LoadImm(2, blockWords*isa.WordSize)
			b.Mul(3, regCount1, 2)
			b.Add(10, 3, regBaseA)
			b.Add(11, 3, regBaseB)
			b.AddI(12, isa.Zero, 0)
			for w := 0; w < blockWords; w += 2 {
				off := int64(w * isa.WordSize)
				b.Load(4, 10, off)
				b.Load(5, 10, off+isa.WordSize)
				b.Add(6, 4, 5)
				b.Sub(7, 4, 5)
				b.FMul(6, 6, 6)
				b.AndI(6, 6, 0xffff)
				b.Store(6, 11, off)
				b.Store(7, 11, off+isa.WordSize)
				b.Add(12, 12, 6)
			}
			// Per-block bookkeeping globals (the only cross-task recurrences).
			g.add(b, "outbytes", 12, 8)
		})
		g.inc(b, "quality", 1, 9)
	})

	b.Load(isa.RV, regGlobals, g.off("outbytes"))
	b.Halt()
	return b.MustBuild()
}

// buildPerl constructs the 134.perl stand-in.
func buildPerl(scale int) *program.Program {
	if scale < 1 {
		scale = 1
	}
	const (
		hashWords = 256
		hashMask  = hashWords - 1
		codeLen   = 128
		codeMask  = codeLen - 1
	)
	b := program.NewBuilder("134.perl")
	g := newGlobals(b, "pc", "sp", "ops", "rng", "accum")
	bytecode := b.AllocWords("bytecode", codeLen)
	b.AllocWords("hash", hashWords)
	b.AllocWords("valstack", 64)

	g.loadBase(b)
	b.LoadAddr(regBaseA, "bytecode")
	b.LoadAddr(regBaseB, "hash")
	b.LoadAddr(19, "valstack")

	// The bytecode program is generated at build time.
	seed := int64(5)
	for i := 0; i < codeLen; i++ {
		seed = buildRand(seed)
		b.InitWord(bytecode+uint64(i)*isa.WordSize, seed)
	}

	steps := int64(500 * scale)
	b.LoadImm(regLimit0, steps)
	b.Loop(regCount0, regLimit0, true, func() {
		// Interpreter state (pc, sp, accum) lives in memory: hot recurrences.
		g.load(b, 10, "pc")
		b.AndI(11, 10, codeMask)
		b.SllI(11, 11, 3)
		b.Add(11, 11, regBaseA)
		b.Load(12, 11, 0) // opcode word
		b.AndI(13, 12, 3) // op kind
		b.SrlI(14, 12, 2)
		b.AndI(14, 14, hashMask) // hash key

		end := uniqueLabel(b, "perl_end")
		opGet := uniqueLabel(b, "perl_get")
		opSet := uniqueLabel(b, "perl_set")
		opAdd := uniqueLabel(b, "perl_add")
		b.LoadImm(2, 1)
		b.Beq(13, 2, opGet)
		b.LoadImm(2, 2)
		b.Beq(13, 2, opSet)
		b.LoadImm(2, 3)
		b.Beq(13, 2, opAdd)
		// default: push the key onto the value stack.
		g.load(b, 3, "sp")
		b.AndI(4, 3, 63)
		b.SllI(4, 4, 3)
		b.Add(4, 4, 19)
		b.Store(14, 4, 0)
		g.inc(b, "sp", 1, 5)
		b.Jump(end)
		b.Label(opGet)
		// hash lookup: depends on a store made by a previous "set" op.
		b.SllI(2, 14, 3)
		b.Add(2, 2, regBaseB)
		b.Load(3, 2, 0)
		g.add(b, "accum", 3, 4)
		b.Jump(end)
		b.Label(opSet)
		// hash store: producer for later "get" ops (path-dependent).
		b.SllI(2, 14, 3)
		b.Add(2, 2, regBaseB)
		b.Load(3, 2, 0)
		b.Add(3, 3, 14)
		b.Store(3, 2, 0)
		b.Jump(end)
		b.Label(opAdd)
		g.load(b, 3, "accum")
		b.Add(3, 3, 14)
		g.store(b, 3, "accum")
		b.Label(end)

		g.inc(b, "pc", 1, 6)
		g.inc(b, "ops", 1, 7)
	})

	b.Load(isa.RV, regGlobals, g.off("accum"))
	b.Halt()
	return b.MustBuild()
}
