// Package trace contains the functional simulator.  It executes a program of
// the synthetic ISA sequentially and produces the committed dynamic
// instruction stream -- the "total order" of section 2 of the paper -- that
// all other components (the unrealistic OOO window model, the dependence
// profiler and the Multiscalar timing simulator) consume.
//
// The functional simulator is the architectural reference: whatever the
// timing simulators do with speculation and squashes, the committed result
// must equal what this package computes.
package trace

import (
	"errors"
	"fmt"

	"memdep/internal/isa"
	"memdep/internal/program"
)

// DynInst describes one committed dynamic instruction.
type DynInst struct {
	// Seq is the position of the instruction in the committed (total) order,
	// starting at zero.
	Seq uint64
	// Index is the static instruction index within the program.
	Index int
	// PC is the byte address of the instruction.
	PC uint64
	// Op is the operation.
	Op isa.Op
	// Addr is the effective memory address for loads and stores.
	Addr uint64
	// Value is the value loaded or stored for memory operations, and the
	// result written for ALU operations (informational; timing models do not
	// depend on it).
	Value int64
	// Taken reports whether a branch was taken.
	Taken bool
	// NextIndex is the static index of the next committed instruction.
	NextIndex int
	// TaskID numbers the dynamic Multiscalar task this instruction belongs
	// to.  Task 0 starts at the program entry.
	TaskID uint64
	// TaskPC is the byte address of the first instruction of the task
	// (the task's identity, used by the ESYNC predictor).
	TaskPC uint64
	// TaskStart reports whether this instruction is the first of its task.
	TaskStart bool
}

// IsLoad reports whether the dynamic instruction is a load.
func (d DynInst) IsLoad() bool { return isa.IsLoad(d.Op) }

// IsStore reports whether the dynamic instruction is a store.
func (d DynInst) IsStore() bool { return isa.IsStore(d.Op) }

// IsMem reports whether the dynamic instruction accesses memory.
func (d DynInst) IsMem() bool { return isa.IsMem(d.Op) }

// Stats summarises a completed functional run.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	TakenBranch  uint64
	Tasks        uint64
	Halted       bool
}

// Config controls functional execution.
type Config struct {
	// MaxInstructions bounds the run; 0 means unlimited.  Runs that hit the
	// bound finish without error but report Halted == false.
	MaxInstructions uint64
	// MaxTaskLen forces a task boundary after this many instructions without
	// reaching a static task entry.  It models the greedy task partitioning
	// of the Multiscalar compiler, which never creates unboundedly large
	// tasks except for very large loop bodies (section 5.5 of the paper).  0
	// uses DefaultMaxTaskLen.
	MaxTaskLen int
}

// DefaultMaxTaskLen is the forced task boundary used when Config.MaxTaskLen
// is zero.
const DefaultMaxTaskLen = 1024

// Machine is the functional simulator state.
type Machine struct {
	prog    *program.Program
	regs    [isa.NumRegs]int64
	mem     *Memory
	pc      int
	seq     uint64
	halted  bool
	taskID  uint64
	taskPC  uint64
	taskLen int
	maxTask int
	started bool
}

// ErrHalted is returned by Step once the machine has executed HALT.
var ErrHalted = errors.New("trace: machine halted")

// NewMachine creates a functional simulator for the program with the data
// segment initialised and the stack pointer set.
func NewMachine(p *program.Program, cfg Config) *Machine {
	m := &Machine{
		prog:    p,
		mem:     NewMemory(),
		pc:      p.Entry,
		taskPC:  p.PC(p.Entry),
		maxTask: cfg.MaxTaskLen,
	}
	if m.maxTask <= 0 {
		m.maxTask = DefaultMaxTaskLen
	}
	for addr, val := range p.DataInit {
		m.mem.WriteWord(addr, val)
	}
	m.regs[isa.SP] = int64(p.StackBase)
	m.regs[isa.FP] = int64(p.StackBase)
	return m
}

// Reg returns the current value of a register.
func (m *Machine) Reg(r isa.Reg) int64 { return m.regs[r] }

// Mem returns the memory image (shared, not copied).
func (m *Machine) Mem() *Memory { return m.mem }

// Halted reports whether the machine has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// Seq returns the number of instructions committed so far.
func (m *Machine) Seq() uint64 { return m.seq }

func (m *Machine) setReg(r isa.Reg, v int64) {
	if r != isa.Zero {
		m.regs[r] = v
	}
}

// Step executes one instruction and returns its dynamic record.  After HALT
// has been executed, Step returns ErrHalted.
func (m *Machine) Step() (DynInst, error) {
	if m.halted {
		return DynInst{}, ErrHalted
	}
	if m.pc < 0 || m.pc >= m.prog.Len() {
		return DynInst{}, fmt.Errorf("trace: pc %d out of range in %q", m.pc, m.prog.Name)
	}

	idx := m.pc
	ins := m.prog.Code[idx]

	taskStart := false
	if !m.started {
		taskStart = true
		m.started = true
	} else if m.prog.IsTaskEntry(idx) || m.taskLen >= m.maxTask {
		taskStart = true
		m.taskID++
	}
	if taskStart {
		m.taskPC = m.prog.PC(idx)
		m.taskLen = 0
	}
	m.taskLen++

	d := DynInst{
		Seq:       m.seq,
		Index:     idx,
		PC:        m.prog.PC(idx),
		Op:        ins.Op,
		TaskID:    m.taskID,
		TaskPC:    m.taskPC,
		TaskStart: taskStart,
	}

	next := idx + 1
	switch ins.Op {
	case isa.NOP:
	case isa.HALT:
		m.halted = true
		next = idx
	case isa.ADD:
		d.Value = m.regs[ins.Src1] + m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.SUB:
		d.Value = m.regs[ins.Src1] - m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.AND:
		d.Value = m.regs[ins.Src1] & m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.OR:
		d.Value = m.regs[ins.Src1] | m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.XOR:
		d.Value = m.regs[ins.Src1] ^ m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.SLL:
		d.Value = m.regs[ins.Src1] << (uint64(m.regs[ins.Src2]) & 63)
		m.setReg(ins.Dst, d.Value)
	case isa.SRL:
		d.Value = int64(uint64(m.regs[ins.Src1]) >> (uint64(m.regs[ins.Src2]) & 63))
		m.setReg(ins.Dst, d.Value)
	case isa.SRA:
		d.Value = m.regs[ins.Src1] >> (uint64(m.regs[ins.Src2]) & 63)
		m.setReg(ins.Dst, d.Value)
	case isa.SLT:
		if m.regs[ins.Src1] < m.regs[ins.Src2] {
			d.Value = 1
		}
		m.setReg(ins.Dst, d.Value)
	case isa.ADDI:
		d.Value = m.regs[ins.Src1] + ins.Imm
		m.setReg(ins.Dst, d.Value)
	case isa.ANDI:
		d.Value = m.regs[ins.Src1] & ins.Imm
		m.setReg(ins.Dst, d.Value)
	case isa.ORI:
		d.Value = m.regs[ins.Src1] | ins.Imm
		m.setReg(ins.Dst, d.Value)
	case isa.XORI:
		d.Value = m.regs[ins.Src1] ^ ins.Imm
		m.setReg(ins.Dst, d.Value)
	case isa.SLLI:
		d.Value = m.regs[ins.Src1] << (uint64(ins.Imm) & 63)
		m.setReg(ins.Dst, d.Value)
	case isa.SRLI:
		d.Value = int64(uint64(m.regs[ins.Src1]) >> (uint64(ins.Imm) & 63))
		m.setReg(ins.Dst, d.Value)
	case isa.SLTI:
		if m.regs[ins.Src1] < ins.Imm {
			d.Value = 1
		}
		m.setReg(ins.Dst, d.Value)
	case isa.LUI:
		d.Value = ins.Imm << 16
		m.setReg(ins.Dst, d.Value)
	case isa.MUL:
		d.Value = m.regs[ins.Src1] * m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.DIV:
		if div := m.regs[ins.Src2]; div != 0 {
			d.Value = m.regs[ins.Src1] / div
		}
		m.setReg(ins.Dst, d.Value)
	case isa.REM:
		if div := m.regs[ins.Src2]; div != 0 {
			d.Value = m.regs[ins.Src1] % div
		}
		m.setReg(ins.Dst, d.Value)
	case isa.FADD:
		d.Value = m.regs[ins.Src1] + m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.FMUL:
		d.Value = m.regs[ins.Src1] * m.regs[ins.Src2]
		m.setReg(ins.Dst, d.Value)
	case isa.FDIV:
		if div := m.regs[ins.Src2]; div != 0 {
			d.Value = m.regs[ins.Src1] / div
		}
		m.setReg(ins.Dst, d.Value)
	case isa.LW:
		addr := alignWord(uint64(m.regs[ins.Src1] + ins.Imm))
		d.Addr = addr
		d.Value = m.mem.ReadWord(addr)
		m.setReg(ins.Dst, d.Value)
	case isa.SW:
		addr := alignWord(uint64(m.regs[ins.Src1] + ins.Imm))
		d.Addr = addr
		d.Value = m.regs[ins.Src2]
		m.mem.WriteWord(addr, d.Value)
	case isa.BEQ:
		d.Taken = m.regs[ins.Src1] == m.regs[ins.Src2]
		if d.Taken {
			next = ins.Target
		}
	case isa.BNE:
		d.Taken = m.regs[ins.Src1] != m.regs[ins.Src2]
		if d.Taken {
			next = ins.Target
		}
	case isa.BLT:
		d.Taken = m.regs[ins.Src1] < m.regs[ins.Src2]
		if d.Taken {
			next = ins.Target
		}
	case isa.BGE:
		d.Taken = m.regs[ins.Src1] >= m.regs[ins.Src2]
		if d.Taken {
			next = ins.Target
		}
	case isa.J:
		d.Taken = true
		next = ins.Target
	case isa.JAL:
		d.Taken = true
		m.setReg(ins.Dst, int64(m.prog.PC(idx+1)))
		next = ins.Target
	case isa.JR:
		d.Taken = true
		next = m.prog.Index(uint64(m.regs[ins.Src1]))
	default:
		return DynInst{}, fmt.Errorf("trace: unimplemented op %v at index %d", ins.Op, idx)
	}

	d.NextIndex = next
	m.pc = next
	m.seq++
	return d, nil
}

func alignWord(addr uint64) uint64 { return addr &^ (isa.WordSize - 1) }

// Run executes the program, invoking visit for every committed instruction,
// until the machine halts, the instruction limit is reached, or visit returns
// false.  A nil visit is allowed.
func Run(p *program.Program, cfg Config, visit func(DynInst) bool) (Stats, error) {
	m := NewMachine(p, cfg)
	var st Stats
	for {
		if cfg.MaxInstructions > 0 && st.Instructions >= cfg.MaxInstructions {
			return st, nil
		}
		d, err := m.Step()
		if err == ErrHalted {
			st.Halted = true
			return st, nil
		}
		if err != nil {
			return st, err
		}
		if d.Op == isa.HALT {
			// HALT terminates the run; it is not counted as committed work
			// and is not passed to the visitor.
			st.Halted = true
			return st, nil
		}
		st.Instructions++
		switch {
		case d.IsLoad():
			st.Loads++
		case d.IsStore():
			st.Stores++
		case isa.IsBranch(d.Op):
			st.Branches++
			if d.Taken {
				st.TakenBranch++
			}
		}
		if d.TaskStart {
			st.Tasks++
		}
		if visit != nil && !visit(d) {
			return st, nil
		}
	}
}

// Collect runs the program and returns the full dynamic instruction stream.
// It is intended for tests and small programs; the experiment drivers stream
// instead of collecting.
func Collect(p *program.Program, cfg Config) ([]DynInst, Stats, error) {
	var out []DynInst
	st, err := Run(p, cfg, func(d DynInst) bool {
		out = append(out, d)
		return true
	})
	return out, st, err
}
