package trace

import "memdep/internal/isa"

// pageBits selects the page size of the sparse memory: 2^pageBits words per
// page.
const pageBits = 9

const (
	pageWords = 1 << pageBits
	pageMask  = pageWords - 1
)

// Memory is a sparse, word-granular memory image.  Addresses are byte
// addresses; accesses are word aligned (the functional simulator aligns them
// before calling in).  The zero value is ready to use.
type Memory struct {
	pages map[uint64]*[pageWords]int64
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]int64)}
}

func split(addr uint64) (page uint64, offset uint64) {
	w := addr / isa.WordSize
	return w >> pageBits, w & pageMask
}

// ReadWord returns the word stored at the (word-aligned) byte address addr.
// Unwritten memory reads as zero.
func (m *Memory) ReadWord(addr uint64) int64 {
	page, off := split(addr)
	p, ok := m.pages[page]
	if !ok {
		return 0
	}
	return p[off]
}

// WriteWord stores value at the (word-aligned) byte address addr.
func (m *Memory) WriteWord(addr uint64, value int64) {
	page, off := split(addr)
	p, ok := m.pages[page]
	if !ok {
		p = new([pageWords]int64)
		m.pages[page] = p
	}
	p[off] = value
}

// Footprint returns the number of distinct pages that have been written.
func (m *Memory) Footprint() int { return len(m.pages) }
