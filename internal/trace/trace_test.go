package trace

import (
	"testing"
	"testing/quick"

	"memdep/internal/isa"
	"memdep/internal/program"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if got := m.ReadWord(0x1000); got != 0 {
		t.Errorf("unwritten memory = %d, want 0", got)
	}
	m.WriteWord(0x1000, 42)
	m.WriteWord(0x1008, -7)
	if got := m.ReadWord(0x1000); got != 42 {
		t.Errorf("read = %d, want 42", got)
	}
	if got := m.ReadWord(0x1008); got != -7 {
		t.Errorf("read = %d, want -7", got)
	}
	// Distant addresses land on separate pages.
	m.WriteWord(0x4000_0000, 9)
	if m.Footprint() < 2 {
		t.Errorf("footprint = %d, want >= 2", m.Footprint())
	}
	if got := m.ReadWord(0x4000_0000); got != 9 {
		t.Errorf("far read = %d, want 9", got)
	}
}

// Property: memory behaves like a map from word-aligned address to value.
func TestMemoryMatchesMap(t *testing.T) {
	f := func(ops []struct {
		Addr  uint32
		Value int64
	}) bool {
		m := NewMemory()
		ref := map[uint64]int64{}
		for _, op := range ops {
			addr := uint64(op.Addr) &^ (isa.WordSize - 1)
			m.WriteWord(addr, op.Value)
			ref[addr] = op.Value
		}
		for addr, want := range ref {
			if m.ReadWord(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildSumProgram computes the sum 0+1+...+n-1 into memory and loads it back.
func buildSumProgram(n int64) *program.Program {
	b := program.NewBuilder("sum")
	b.AllocWords("acc", 1)
	b.LoadImm(10, n)
	b.LoadAddr(11, "acc")
	b.Loop(12, 10, true, func() {
		b.Load(13, 11, 0)  // load accumulator
		b.Add(13, 13, 12)  // add counter
		b.Store(13, 11, 0) // store back
	})
	b.Load(isa.RV, 11, 0)
	b.Halt()
	return b.MustBuild()
}

func TestFunctionalSum(t *testing.T) {
	p := buildSumProgram(10)
	m := NewMachine(p, Config{})
	for !m.Halted() {
		if _, err := m.Step(); err != nil && err != ErrHalted {
			t.Fatalf("Step: %v", err)
		}
	}
	if got := m.Reg(isa.RV); got != 45 {
		t.Errorf("sum = %d, want 45", got)
	}
}

func TestStepAfterHalt(t *testing.T) {
	b := program.NewBuilder("halt")
	b.Halt()
	p := b.MustBuild()
	m := NewMachine(p, Config{})
	if _, err := m.Step(); err != nil {
		t.Fatalf("first step: %v", err)
	}
	if _, err := m.Step(); err != ErrHalted {
		t.Fatalf("second step err = %v, want ErrHalted", err)
	}
}

func TestRunStats(t *testing.T) {
	p := buildSumProgram(8)
	st, err := Run(p, Config{}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !st.Halted {
		t.Error("program should halt")
	}
	if st.Loads != 8+1 {
		t.Errorf("loads = %d, want 9", st.Loads)
	}
	if st.Stores != 8 {
		t.Errorf("stores = %d, want 8", st.Stores)
	}
	if st.Instructions == 0 || st.Branches == 0 {
		t.Error("expected nonzero instruction and branch counts")
	}
	if st.Tasks < 8 {
		t.Errorf("tasks = %d, want >= 8 (one per iteration)", st.Tasks)
	}
}

func TestRunInstructionLimit(t *testing.T) {
	p := buildSumProgram(1000)
	st, err := Run(p, Config{MaxInstructions: 100}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Instructions != 100 {
		t.Errorf("instructions = %d, want 100", st.Instructions)
	}
	if st.Halted {
		t.Error("run must not report halted when the limit stops it")
	}
}

func TestRunVisitEarlyStop(t *testing.T) {
	p := buildSumProgram(1000)
	count := 0
	st, err := Run(p, Config{}, func(DynInst) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 10 {
		t.Errorf("visited %d instructions, want 10", count)
	}
	if st.Instructions != 10 {
		t.Errorf("stats instructions = %d, want 10", st.Instructions)
	}
}

func TestDynInstMemoryRecords(t *testing.T) {
	p := buildSumProgram(4)
	insts, _, err := Collect(p, Config{})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	accAddr := p.Symbols["acc"]
	var loads, stores int
	for _, d := range insts {
		if d.IsLoad() {
			loads++
			if d.Addr != accAddr {
				t.Errorf("load address = %#x, want %#x", d.Addr, accAddr)
			}
		}
		if d.IsStore() {
			stores++
			if d.Addr != accAddr {
				t.Errorf("store address = %#x, want %#x", d.Addr, accAddr)
			}
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatal("expected loads and stores in the trace")
	}
}

func TestSeqIsDense(t *testing.T) {
	p := buildSumProgram(6)
	insts, _, err := Collect(p, Config{})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	for i, d := range insts {
		if d.Seq != uint64(i) {
			t.Fatalf("instruction %d has seq %d", i, d.Seq)
		}
	}
}

func TestTaskBoundaries(t *testing.T) {
	p := buildSumProgram(5)
	insts, _, err := Collect(p, Config{})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !insts[0].TaskStart {
		t.Error("first instruction must start a task")
	}
	lastTask := insts[0].TaskID
	changes := 0
	for _, d := range insts[1:] {
		if d.TaskID < lastTask {
			t.Fatal("task IDs must be non-decreasing")
		}
		if d.TaskID != lastTask {
			changes++
			if !d.TaskStart {
				t.Error("task ID change without TaskStart")
			}
		} else if d.TaskStart {
			t.Error("TaskStart set without task ID change")
		}
		lastTask = d.TaskID
	}
	if changes < 5 {
		t.Errorf("task changes = %d, want >= 5 (one per iteration)", changes)
	}
	// All instructions of a task must share the task's PC.
	taskPCs := map[uint64]uint64{}
	for _, d := range insts {
		if pc, ok := taskPCs[d.TaskID]; ok {
			if pc != d.TaskPC {
				t.Fatal("TaskPC changed within a task")
			}
		} else {
			taskPCs[d.TaskID] = d.TaskPC
		}
	}
}

func TestMaxTaskLenForcesBoundaries(t *testing.T) {
	// A long straight-line program with no task entries must still be carved
	// into tasks of bounded size.
	b := program.NewBuilder("straight")
	for i := 0; i < 300; i++ {
		b.AddI(5, 5, 1)
	}
	b.Halt()
	p := b.MustBuild()
	insts, _, err := Collect(p, Config{MaxTaskLen: 64})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	counts := map[uint64]int{}
	for _, d := range insts {
		counts[d.TaskID]++
	}
	if len(counts) < 4 {
		t.Errorf("tasks = %d, want >= 4", len(counts))
	}
	for id, n := range counts {
		if n > 64 {
			t.Errorf("task %d has %d instructions, want <= 64", id, n)
		}
	}
}

func TestCallAndReturn(t *testing.T) {
	b := program.NewBuilder("call")
	b.AllocWords("out", 1)
	b.Jump("main")
	b.Func("double", func() {
		b.Add(isa.RV, 4, 4)
	})
	b.Label("main")
	b.LoadImm(4, 21)
	b.Call("double")
	b.LoadAddr(9, "out")
	b.Store(isa.RV, 9, 0)
	b.Halt()
	b.SetEntry("main")
	p := b.MustBuild()

	m := NewMachine(p, Config{})
	for !m.Halted() {
		if _, err := m.Step(); err != nil && err != ErrHalted {
			t.Fatalf("Step: %v", err)
		}
	}
	if got := m.Mem().ReadWord(p.Symbols["out"]); got != 42 {
		t.Errorf("out = %d, want 42", got)
	}
}

func TestStackDiscipline(t *testing.T) {
	b := program.NewBuilder("stack")
	b.LoadImm(5, 17)
	b.Push(5)
	b.LoadImm(5, 0)
	b.Pop(6)
	b.Halt()
	p := b.MustBuild()
	m := NewMachine(p, Config{})
	for !m.Halted() {
		if _, err := m.Step(); err != nil && err != ErrHalted {
			t.Fatalf("Step: %v", err)
		}
	}
	if got := m.Reg(6); got != 17 {
		t.Errorf("popped value = %d, want 17", got)
	}
	if got := m.Reg(isa.SP); got != int64(p.StackBase) {
		t.Errorf("stack pointer = %#x, want %#x", got, p.StackBase)
	}
}

func TestZeroRegisterIsImmutable(t *testing.T) {
	b := program.NewBuilder("zero")
	b.AddI(isa.Zero, isa.Zero, 99)
	b.Move(5, isa.Zero)
	b.Halt()
	p := b.MustBuild()
	m := NewMachine(p, Config{})
	for !m.Halted() {
		if _, err := m.Step(); err != nil && err != ErrHalted {
			t.Fatalf("Step: %v", err)
		}
	}
	if got := m.Reg(5); got != 0 {
		t.Errorf("r5 = %d, want 0 (zero register must not be writable)", got)
	}
}

func TestDeterminism(t *testing.T) {
	p := buildSumProgram(64)
	a, sa, err := Collect(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bb, sb, err := Collect(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	if len(a) != len(bb) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(bb))
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], bb[i])
		}
	}
}

func TestDivisionByZeroDoesNotPanic(t *testing.T) {
	b := program.NewBuilder("div0")
	b.LoadImm(5, 10)
	b.Div(6, 5, isa.Zero)
	b.Rem(7, 5, isa.Zero)
	b.FDiv(8, 5, isa.Zero)
	b.Halt()
	p := b.MustBuild()
	if _, err := Run(p, Config{}, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
