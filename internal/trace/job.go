package trace

import (
	"context"
	"fmt"

	"memdep/internal/engine"
	"memdep/internal/program"
)

// RunKind is the engine job kind for a functional simulation run.
const RunKind = "trace/run"

// RunJob is the engine spec for executing a program on the functional
// simulator.  Program must resolve to a *program.Program (typically a
// workload.BuildJob).  The job resolves to a trace.Stats.
type RunJob struct {
	Program engine.Spec
	Config  Config
}

// JobKind implements engine.Spec.
func (RunJob) JobKind() string { return RunKind }

// CacheKey implements engine.Spec.
func (j RunJob) CacheKey() string {
	return fmt.Sprintf("%s|max=%d,tasklen=%d",
		engine.Key(j.Program), j.Config.MaxInstructions, j.Config.MaxTaskLen)
}

// runSimulator executes RunJob specs.
type runSimulator struct{}

// RunSimulator returns the engine simulator for the trace/run kind.
func RunSimulator() engine.Simulator { return runSimulator{} }

func (runSimulator) JobKind() string { return RunKind }

func (runSimulator) Simulate(ctx context.Context, eng *engine.Engine, spec engine.Spec) (any, error) {
	job, ok := spec.(RunJob)
	if !ok {
		return nil, fmt.Errorf("trace: spec %T is not a RunJob", spec)
	}
	p, err := engine.Resolve[*program.Program](ctx, eng, job.Program)
	if err != nil {
		return nil, err
	}
	return Run(p, job.Config, nil)
}
