// Package memdep is the root of a reproduction of "Dynamic Speculation and
// Synchronization of Data Dependences" (Moshovos, Breach, Vijaykumar, Sohi;
// ISCA 1997).
//
// The public API is the sim package (memdep/sim): a JSON-serializable
// request/response facade over the whole toolbox, consumed by the four CLIs,
// the examples and the cmd/memdep-server HTTP service.
//
// The implementation lives under internal/: the MDPT/MDST dependence prediction and
// synchronization structures (internal/memdep), the synthetic workload suite
// and its ISA (internal/isa, internal/program, internal/workload), the
// functional simulator (internal/trace), the unrealistic OOO window model
// (internal/window), the Multiscalar timing simulator and its substrates
// (internal/multiscalar, internal/arb, internal/cache, internal/ctrlflow),
// the speculation policies (internal/policy), the job-based parallel
// execution engine that schedules simulations over a worker pool
// (internal/engine) and the experiment drivers that regenerate every table
// and figure of the paper (internal/experiments).
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the measured results; cmd/memdep-bench regenerates the
// latter.
package memdep
