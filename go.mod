module memdep

go 1.24
