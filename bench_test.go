package memdep_test

import (
	"context"
	"runtime"
	"testing"

	"memdep/internal/experiments"
	"memdep/internal/memdep"
	"memdep/internal/multiscalar"
	"memdep/internal/policy"
	"memdep/internal/trace"
	"memdep/internal/window"
	"memdep/internal/workload"
)

// benchExperiment runs one named experiment end-to-end (workload
// construction, functional simulation, timing simulation, table formatting)
// on the truncated "quick" configuration.  There is one benchmark per table
// and figure of the paper.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(experiments.Quick())
		tab, err := exp.Run(runner, context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if tab.NumRows() == 0 {
			b.Fatal("experiment produced an empty table")
		}
	}
}

// Table 1: committed dynamic instruction counts.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Table 3: unrealistic OOO model, mis-speculations vs window size.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Table 4: static dependences covering 99.9% of mis-speculations.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Table 5: DDC miss rates under the unrealistic OOO model.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Table 6: Multiscalar mis-speculations under blind speculation.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// Table 7: 8-stage Multiscalar DDC miss rates.
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// Table 8: dependence prediction breakdown.
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// Table 9: mis-speculations per committed load.
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9") }

// Figure 5: NEVER/ALWAYS/WAIT/PSYNC policy comparison.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "figure5") }

// Figure 6: SYNC/ESYNC/PSYNC speedups over blind speculation.
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// Figure 7: SPEC95 speedups on the 8-stage configuration.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// Ablation benches for the design choices called out in DESIGN.md.
func BenchmarkAblationTagging(b *testing.B)   { benchExperiment(b, "ablation-tagging") }
func BenchmarkAblationPredictor(b *testing.B) { benchExperiment(b, "ablation-predictor") }
func BenchmarkAblationTableSize(b *testing.B) { benchExperiment(b, "ablation-tablesize") }

// --- engine benchmarks -------------------------------------------------------

// benchEngineGrid runs a representative slice of the experiment grid (the
// Multiscalar timing tables that dominate a full sweep) on a fresh engine
// with the given worker-pool size.  Comparing the Serial and Parallel
// variants measures the engine's wall-clock speedup on a multi-core host;
// the produced tables are byte-identical by construction.
func benchEngineGrid(b *testing.B, jobs int) {
	b.Helper()
	opts := experiments.Quick()
	opts.Jobs = jobs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(opts) // cold cache each iteration
		for _, id := range []string{"table6", "table9", "figure6"} {
			exp, err := experiments.Lookup(id)
			if err != nil {
				b.Fatal(err)
			}
			tab, err := exp.Run(runner, context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if tab.NumRows() == 0 {
				b.Fatal("experiment produced an empty table")
			}
		}
	}
}

// BenchmarkEngineSerial pins the experiment engine to one worker.
func BenchmarkEngineSerial(b *testing.B) { benchEngineGrid(b, 1) }

// BenchmarkEngineParallel runs the same grid on a GOMAXPROCS-sized pool.
func BenchmarkEngineParallel(b *testing.B) { benchEngineGrid(b, runtime.GOMAXPROCS(0)) }

// --- component micro-benchmarks ---------------------------------------------

// BenchmarkFunctionalSimulator measures the functional simulator on the
// compress stand-in (instructions per op reported through b.N scaling).
func BenchmarkFunctionalSimulator(b *testing.B) {
	prog := workload.MustGet("compress").Build(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Run(prog, trace.Config{MaxInstructions: 50_000}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowAnalysis measures the unrealistic OOO dependence analysis.
func BenchmarkWindowAnalysis(b *testing.B) {
	prog := workload.MustGet("espresso").Build(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := window.Analyze(prog, window.Config{
			Trace: trace.Config{MaxInstructions: 50_000},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimingSimulator measures the Multiscalar timing simulator with the
// ESYNC mechanism on the xlisp stand-in.
func BenchmarkTimingSimulator(b *testing.B) {
	item, err := multiscalar.Preprocess(workload.MustGet("xlisp").Build(1),
		trace.Config{MaxInstructions: 50_000})
	if err != nil {
		b.Fatal(err)
	}
	cfg := multiscalar.DefaultConfig(8, policy.ESync)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := multiscalar.Simulate(item, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate compares the event-driven and the stepped reference
// timing core on one simulation (xlisp, 8 stages, ESYNC).  The two produce
// identical Results (TestCoresCycleIdentical); only time/op and allocs/op
// differ.  BENCH_multiscalar.json tracks both (cmd/memdep-perf).
func BenchmarkSimulate(b *testing.B) {
	item, err := multiscalar.Preprocess(workload.MustGet("xlisp").Build(1),
		trace.Config{MaxInstructions: 50_000})
	if err != nil {
		b.Fatal(err)
	}
	for _, core := range []multiscalar.CoreMode{multiscalar.CoreEvent, multiscalar.CoreStepped} {
		b.Run(core.String(), func(b *testing.B) {
			cfg := multiscalar.DefaultConfig(8, policy.ESync)
			cfg.Core = core
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := multiscalar.Simulate(item, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMDPTLookup measures prediction-table lookups on a warm table,
// once per table organization (the fully associative scan vs the
// set-associative probe vs the store-set SSIT lookup).
func BenchmarkMDPTLookup(b *testing.B) {
	for _, table := range []memdep.TableKind{memdep.TableFullAssoc, memdep.TableSetAssoc, memdep.TableStoreSet} {
		b.Run(table.String(), func(b *testing.B) {
			t := memdep.NewPredictor(memdep.Config{Entries: 64, SyncSlots: 8, Table: table, Ways: 4})
			for i := 0; i < 64; i++ {
				t.RecordMisspeculation(memdep.PairKey{LoadPC: uint64(0x1000 + 4*i), StorePC: uint64(0x2000 + 4*i)}, 1, 0)
			}
			var buf []memdep.Prediction
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = t.MatchesForLoad(uint64(0x1000+4*(i%64)), buf[:0])
			}
		})
	}
}

// BenchmarkMDSTSynchronize measures a full wait/signal round trip.
func BenchmarkMDSTSynchronize(b *testing.B) {
	t := memdep.NewMDST(512)
	pair := memdep.PairKey{LoadPC: 0x400, StorePC: 0x380}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst := uint64(i)
		t.AllocWaiting(pair, inst, int64(i))
		t.Signal(pair, inst, int64(i))
	}
}

// BenchmarkDDCAccess measures data dependence cache accesses with a working
// set slightly larger than the cache.
func BenchmarkDDCAccess(b *testing.B) {
	d := memdep.NewDDC(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Access(memdep.PairKey{LoadPC: uint64(i % 160), StorePC: uint64(i % 40)})
	}
}

// BenchmarkWorkloadBuild measures synthetic program construction.
func BenchmarkWorkloadBuild(b *testing.B) {
	w := workload.MustGet("126.gcc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := w.Build(1)
		if p.Len() == 0 {
			b.Fatal("empty program")
		}
	}
}
