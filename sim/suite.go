package sim

import (
	"context"
	"errors"

	"memdep/internal/experiments"
	"memdep/internal/stats"
)

// Experiment identifies one table or figure of the paper's evaluation.
type Experiment struct {
	// ID is the identifier used by the paper ("table3", "figure6", ...).
	ID string `json:"id"`
	// Description summarises what the experiment reports.
	Description string `json:"description"`
}

// Experiments lists every experiment in presentation order.
func Experiments() []Experiment {
	all := experiments.All()
	out := make([]Experiment, len(all))
	for i, e := range all {
		out[i] = Experiment{ID: e.ID, Description: e.Description}
	}
	return out
}

// lookupExperiment resolves an ID to the internal registry entry, shaping
// unknown IDs as a *ValidationError.
func lookupExperiment(id string) (experiments.NamedExperiment, error) {
	e, err := experiments.Lookup(id)
	if err != nil {
		v := &ValidationError{}
		v.add("experiment", id, "unknown experiment")
		return experiments.NamedExperiment{}, v
	}
	return e, nil
}

// LookupExperiment resolves an experiment ID; unknown IDs are reported as a
// *ValidationError.
func LookupExperiment(id string) (Experiment, error) {
	e, err := lookupExperiment(id)
	if err != nil {
		return Experiment{}, err
	}
	return Experiment{ID: e.ID, Description: e.Description}, nil
}

// SuiteOptions configures an experiment run.  The zero value reproduces
// EXPERIMENTS.md: every workload at its default scale, run to completion, on
// the paper's evaluated configuration.
type SuiteOptions struct {
	// Quick truncates every run (the unit-test and CI preset).
	Quick bool `json:"quick,omitempty"`
	// Scale overrides every workload's default scale when positive.
	Scale int `json:"scale,omitempty"`
	// MaxInstructions caps the committed instructions per benchmark.
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// MDPTEntries sets the prediction-table size (0 = 64).
	MDPTEntries int `json:"mdpt_entries,omitempty"`
	// Predictor selects the prediction-table organization ("" = full).
	Predictor TableKind `json:"predictor,omitempty"`
	// MDPTWays sets the associativity of the setassoc/storeset organizations.
	MDPTWays int `json:"mdpt_ways,omitempty"`
	// Core selects the timing core ("" = event).
	Core CoreMode `json:"core,omitempty"`
	// Synth overrides the base synthetic-workload spec swept by the
	// sensitivity-synth experiment (nil = the generator defaults with seed 1).
	// The sweep varies the dependence-distance histogram and alias-set size
	// on top of this base; other experiments ignore it.
	Synth *SynthSpec `json:"synth,omitempty"`
}

// options converts to the internal experiment options.
func (o SuiteOptions) options() (experiments.Options, error) {
	opts := experiments.Full()
	if o.Quick {
		opts = experiments.Quick()
	}
	if o.Scale > 0 {
		opts.Scale = o.Scale
	}
	if o.MaxInstructions > 0 {
		opts.MaxInstructions = o.MaxInstructions
	}
	if o.MDPTEntries > 0 {
		opts.MDPTEntries = o.MDPTEntries
	}
	table, err := o.Predictor.kind()
	if err != nil {
		return opts, err
	}
	opts.PredictorTable = table
	opts.MDPTWays = o.MDPTWays
	core, err := o.Core.mode()
	if err != nil {
		return opts, err
	}
	opts.Core = core
	if o.Synth != nil {
		// Validate through the facade so problems keep the structured
		// synth.-prefixed field shape the rest of the API reports.
		if err := o.Synth.Validate(); err != nil {
			return opts, err
		}
		sp := o.Synth.internal()
		opts.SynthBase = &sp
	}
	return opts, nil
}

// Effective returns the options as the suite actually runs them: the Quick
// preset materialized into its concrete bounds (scale 1, 40k instructions)
// and the enums canonicalized.  Tools that echo a configuration should
// report these values, not the raw inputs.
func (o SuiteOptions) Effective() SuiteOptions {
	if iopts, err := o.options(); err == nil {
		o.Scale = iopts.Scale
		o.MaxInstructions = iopts.MaxInstructions
	}
	if t, err := ParseTableKind(string(defaultedTable(o.Predictor))); err == nil {
		o.Predictor = t
	}
	if m, err := ParseCoreMode(string(defaultedCore(o.Core))); err == nil {
		o.Core = m
	}
	if o.Synth != nil {
		o.Synth = o.Synth.Normalize()
	}
	return o
}

// Table is a titled grid of string cells: the rendered form of one
// experiment, matching the corresponding table or figure of the paper.
type Table struct {
	Title   string     `json:"title"`   // Title is the table's heading.
	Columns []string   `json:"columns"` // Columns is the header row.
	Rows    [][]string `json:"rows"`    // Rows is the cell grid, one slice per row.
	// Note is free-form text rendered under the table.
	Note string `json:"note,omitempty"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row, padding it to the header width.
func (t *Table) AddRow(cells ...string) {
	st := t.internal()
	st.AddRow(cells...)
	t.Rows = st.Rows
}

// internal converts to the rendering representation.
func (t *Table) internal() *stats.Table {
	return &stats.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows, Note: t.Note}
}

// Render returns the aligned-text rendering.
func (t *Table) Render() string { return t.internal().Render() }

// CSV returns the CSV rendering.
func (t *Table) CSV() string { return t.internal().CSV() }

// RunExperiment executes one experiment by ID against the session cache and
// returns its table.  Unknown IDs and malformed options are reported as a
// *ValidationError.
func (s *Session) RunExperiment(ctx context.Context, id string, opts SuiteOptions) (*Table, error) {
	e, err := lookupExperiment(id)
	if err != nil {
		return nil, err
	}
	iopts, err := opts.options()
	if err != nil {
		// Structured per-field errors (a bad synth base spec) pass through
		// unchanged; plain enum-parse errors are wrapped.
		var verr *ValidationError
		if errors.As(err, &verr) {
			return nil, verr
		}
		v := &ValidationError{}
		v.add("options", "", err.Error())
		return nil, v
	}
	runner := experiments.NewRunnerWithEngine(iopts, s.eng)
	tab, err := e.Run(runner, ctx)
	if err != nil {
		return nil, err
	}
	return &Table{Title: tab.Title, Columns: tab.Columns, Rows: tab.Rows, Note: tab.Note}, nil
}
