package sim_test

import (
	"context"
	"fmt"
	"log"

	"memdep/sim"
)

// ExampleSession_Run simulates one synthetic workload.  A synthetic spec is
// fully determined by its seed, so the output is reproducible on any
// platform at any worker count.
func ExampleSession_Run() {
	s := sim.NewSession()
	res, err := s.Run(context.Background(), sim.Request{
		Synth:  &sim.SynthSpec{Seed: 1, Ops: 20000},
		Stages: 4,
		Policy: sim.PolicyESync,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy=%s instructions=%d misspeculations=%d\n",
		res.Request.Policy, res.Instructions, res.Misspeculations)
	fmt.Printf("deterministic=%t\n", res.Cycles > 0)
	// Output:
	// policy=ESYNC instructions=20612 misspeculations=2
	// deterministic=true
}

// ExampleSession_RunGrid sweeps one workload across speculation policies in a
// single grid: the cells share the session's memoized cache, so the workload
// is generated, traced and preprocessed exactly once.
func ExampleSession_RunGrid() {
	s := sim.NewSession()
	base := sim.Request{Synth: &sim.SynthSpec{Seed: 1, Ops: 20000}, Stages: 4}

	var grid []sim.Request
	for _, p := range []sim.Policy{sim.PolicyNever, sim.PolicyAlways, sim.PolicyESync} {
		req := base
		req.Policy = p
		grid = append(grid, req)
	}
	results, err := s.RunGrid(context.Background(), grid)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("%-6s misspeculations=%d\n", res.Request.Policy, res.Misspeculations)
	}
	// Output:
	// NEVER  misspeculations=0
	// ALWAYS misspeculations=80
	// ESYNC  misspeculations=2
}
